package twpp

import (
	"bufio"
	"context"
	"io"
	"os"

	"twpp/internal/core"
	"twpp/internal/segment"
	"twpp/internal/wppfile"
)

// StreamResult reports what a streaming compaction produced.
type StreamResult struct {
	// Stats carries the per-stage compaction sizes (Table 2 data),
	// identical to what CompactOpts reports for the same trace.
	Stats CompactStats
	// TraceBytes and DictBytes are the in-memory TWPP section sizes
	// (TWPP.SizeStats of the compacted result).
	TraceBytes int
	DictBytes  int
	// BytesWritten is the size of the emitted compacted file.
	BytesWritten int64
}

// StreamCompact reads a raw WPP stream from r and writes the compacted
// indexed format to w, running the whole pipeline online: the input is
// consumed through a bounded buffer, each call's path trace is deduped
// by hash the moment the call returns, and the timestamp inversion
// runs once per unique trace as it is interned. Peak memory is
// O(unique traces + open call stack + dynamic call graph), not
// O(trace length).
//
// The bytes written are identical to ReadRawFile + CompactOpts +
// WriteFileOpts on the same input, at any opts.Workers value, and
// malformed input fails with the same errors as ReadRawFile.
func StreamCompact(r io.Reader, w io.Writer, opts CompactOptions) (*StreamResult, error) {
	return StreamCompactContext(context.Background(), r, w, opts)
}

// StreamCompactContext is StreamCompact with cooperative cancellation:
// ctx is polled every few thousand input symbols and between
// per-function assembly steps, so canceling abandons the ingestion
// promptly with ctx.Err().
func StreamCompactContext(ctx context.Context, r io.Reader, w io.Writer, opts CompactOptions) (*StreamResult, error) {
	rr, err := wppfile.NewRawStreamReader(r, streamSize(r))
	if err != nil {
		return nil, err
	}
	s := core.NewStreamCompactor(rr.Names())
	if err := rr.ReplayCtx(ctx, s); err != nil {
		return nil, err
	}
	tw, stats, err := s.FinishCtx(ctx)
	if err != nil {
		return nil, err
	}
	traceB, dictB := tw.SizeStats()
	n, err := wppfile.EncodeCompactedToFormat(w, tw, opts.Workers, opts.Format)
	if err != nil {
		return nil, err
	}
	return &StreamResult{Stats: stats, TraceBytes: traceB, DictBytes: dictB, BytesWritten: n}, nil
}

// StreamCompactSegmentedFileContext runs the streaming pipeline but
// seals the compacted result into a segmented container directory
// instead of one file: the ingestion is the same bounded-memory
// replay, and the flushed compaction feeds segment sealing directly.
// BytesWritten totals the sealed segment files.
func StreamCompactSegmentedFileContext(ctx context.Context, inPath, dir string, segOpts SegmentOptions, opts CompactOptions) (*StreamResult, error) {
	in, err := os.Open(inPath)
	if err != nil {
		return nil, err
	}
	defer in.Close()
	rr, err := wppfile.NewRawStreamReader(in, streamSize(in))
	if err != nil {
		return nil, err
	}
	s := core.NewStreamCompactor(rr.Names())
	if err := rr.ReplayCtx(ctx, s); err != nil {
		return nil, err
	}
	tw, stats, err := s.FinishCtx(ctx)
	if err != nil {
		return nil, err
	}
	traceB, dictB := tw.SizeStats()
	if segOpts.Workers == 0 {
		segOpts.Workers = opts.Workers
	}
	man, err := segment.Write(dir, tw, segOpts)
	if err != nil {
		return nil, err
	}
	res := &StreamResult{Stats: stats, TraceBytes: traceB, DictBytes: dictB}
	for _, e := range man.Segments {
		res.BytesWritten += e.Size
	}
	return res, nil
}

// StreamCompactFile is StreamCompact over named files, buffering the
// output writes.
func StreamCompactFile(inPath, outPath string, opts CompactOptions) (*StreamResult, error) {
	return StreamCompactFileContext(context.Background(), inPath, outPath, opts)
}

// StreamCompactFileContext is StreamCompactFile with cooperative
// cancellation; on any failure (including cancellation) the partial
// output file is removed.
func StreamCompactFileContext(ctx context.Context, inPath, outPath string, opts CompactOptions) (*StreamResult, error) {
	in, err := os.Open(inPath)
	if err != nil {
		return nil, err
	}
	defer in.Close()
	out, err := os.Create(outPath)
	if err != nil {
		return nil, err
	}
	bw := bufio.NewWriterSize(out, 1<<16)
	res, err := StreamCompactContext(ctx, in, bw, opts)
	if err != nil {
		out.Close()
		os.Remove(outPath)
		return nil, err
	}
	if err := bw.Flush(); err != nil {
		out.Close()
		os.Remove(outPath)
		return nil, err
	}
	if err := out.Close(); err != nil {
		os.Remove(outPath)
		return nil, err
	}
	return res, nil
}

// streamSize recovers the total stream size when r can report it
// (files and byte readers), so corrupt length fields fail with the
// same errors as the whole-file reader; -1 means unknown.
func streamSize(r io.Reader) int64 {
	switch v := r.(type) {
	case io.Seeker:
		cur, err := v.Seek(0, io.SeekCurrent)
		if err != nil {
			return -1
		}
		end, err := v.Seek(0, io.SeekEnd)
		if err != nil {
			return -1
		}
		if _, err := v.Seek(cur, io.SeekStart); err != nil {
			return -1
		}
		return end - cur
	case interface{ Len() int }:
		return int64(v.Len())
	}
	return -1
}
