// Tests pinning the streaming pipeline (StreamCompact) to the batch
// pipeline: byte-identical compacted output on every profile at every
// worker count, identical errors on malformed input, and a fuzz
// target over random WPP shapes.
package twpp_test

import (
	"bytes"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"twpp"
	"twpp/internal/bench"
	"twpp/internal/wppfile"
)

// streamPipeline runs StreamCompact over an in-memory raw file image
// and returns the emitted bytes and stats.
func streamPipeline(tb testing.TB, raw []byte, workers int) ([]byte, twpp.CompactStats) {
	tb.Helper()
	var buf bytes.Buffer
	res, err := twpp.StreamCompact(bytes.NewReader(raw), &buf, twpp.CompactOptions{Workers: workers})
	if err != nil {
		tb.Fatal(err)
	}
	if res.BytesWritten != int64(buf.Len()) {
		tb.Fatalf("BytesWritten %d, buffer has %d", res.BytesWritten, buf.Len())
	}
	return buf.Bytes(), res.Stats
}

// TestStreamCompactMatchesBatch checks the streaming pipeline emits
// byte-identical compacted files and identical stats on all five
// SPECint-like profiles at several worker counts.
func TestStreamCompactMatchesBatch(t *testing.T) {
	for _, p := range bench.Profiles() {
		t.Run(p.Name, func(t *testing.T) {
			w := buildWorkloadScale(t, p.Name, 0.02)
			raw := wppfile.EncodeRaw(w)
			want, wantStats := encodePipeline(t, w, 1)
			for _, workers := range []int{1, 2, 8} {
				got, gotStats := streamPipeline(t, raw, workers)
				if gotStats != wantStats {
					t.Errorf("workers=%d: stats %+v != batch %+v", workers, gotStats, wantStats)
				}
				if !bytes.Equal(got, want) {
					t.Errorf("workers=%d: streamed file differs from batch (%d vs %d bytes)",
						workers, len(got), len(want))
				}
			}
		})
	}
}

// TestStreamCompactErrorParity corrupts a raw file image — truncating
// at every prefix length and flipping sampled bytes — and requires
// StreamCompact to fail exactly as ReadRawFile does on the same bytes:
// same nil-ness, same message.
func TestStreamCompactErrorParity(t *testing.T) {
	w := randWPP(rand.New(rand.NewSource(3)))
	raw := wppfile.EncodeRaw(w)
	if len(raw) > 8000 {
		t.Fatalf("trace image too large for exhaustive sweep: %d bytes", len(raw))
	}
	dir := t.TempDir()
	check := func(t *testing.T, data []byte) {
		t.Helper()
		path := filepath.Join(dir, "c.wpp")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		_, batchErr := twpp.ReadRawFile(path)
		_, streamErr := twpp.StreamCompact(bytes.NewReader(data), io.Discard, twpp.CompactOptions{Workers: 1})
		if (batchErr == nil) != (streamErr == nil) {
			t.Fatalf("nil-ness diverges: batch %v, stream %v", batchErr, streamErr)
		}
		if batchErr != nil && batchErr.Error() != streamErr.Error() {
			t.Fatalf("messages diverge:\n  batch:  %v\n  stream: %v", batchErr, streamErr)
		}
	}
	t.Run("truncated", func(t *testing.T) {
		for n := 0; n < len(raw); n++ {
			check(t, raw[:n])
		}
	})
	t.Run("bitflips", func(t *testing.T) {
		for n := 0; n < len(raw); n += 7 {
			data := append([]byte(nil), raw...)
			data[n] ^= 0xff
			check(t, data)
		}
	})
	t.Run("overflow-varint", func(t *testing.T) {
		// A symbol encoded as an 11-byte varint: overflow.
		data := append([]byte(nil), raw...)
		data = append(data, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01)
		check(t, data)
	})
	t.Run("trailing-garbage", func(t *testing.T) {
		check(t, append(append([]byte(nil), raw...), 0x05))
	})
}

// TestStreamCompactFile exercises the file-path variant: output equals
// the in-memory variant, and a failed run leaves no partial file.
func TestStreamCompactFile(t *testing.T) {
	w := buildWorkloadScale(t, "132.ijpeg-like", 0.02)
	raw := wppfile.EncodeRaw(w)
	dir := t.TempDir()
	in := filepath.Join(dir, "t.wpp")
	if err := os.WriteFile(in, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "t.twpp")
	res, err := twpp.StreamCompactFile(in, out, twpp.CompactOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := streamPipeline(t, raw, 2)
	if !bytes.Equal(data, want) {
		t.Error("StreamCompactFile output differs from StreamCompact")
	}
	if res.BytesWritten != int64(len(data)) {
		t.Errorf("BytesWritten %d, file has %d", res.BytesWritten, len(data))
	}
	// The compacted file opens and serves extractions.
	cf, err := twpp.OpenFile(out)
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	if len(cf.Functions()) == 0 {
		t.Error("no functions in streamed file")
	}

	// Failure leaves no partial output behind.
	bad := filepath.Join(dir, "bad.wpp")
	if err := os.WriteFile(bad, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	gone := filepath.Join(dir, "bad.twpp")
	if _, err := twpp.StreamCompactFile(bad, gone, twpp.CompactOptions{}); err == nil {
		t.Fatal("truncated input: want error")
	}
	if _, err := os.Stat(gone); !os.IsNotExist(err) {
		t.Errorf("partial output left behind: %v", err)
	}
	if _, err := twpp.StreamCompactFile(filepath.Join(dir, "absent.wpp"), gone, twpp.CompactOptions{}); err == nil {
		t.Error("absent input: want error")
	}
}

// TestStreamCompactUnknownSize drives StreamCompact through a reader
// that hides its size (no Seek, no Len): parsing must be unaffected.
func TestStreamCompactUnknownSize(t *testing.T) {
	w := buildWorkloadScale(t, "134.perl-like", 0.02)
	raw := wppfile.EncodeRaw(w)
	want, _ := streamPipeline(t, raw, 1)
	var buf bytes.Buffer
	if _, err := twpp.StreamCompact(io.MultiReader(bytes.NewReader(raw)), &buf, twpp.CompactOptions{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Error("unknown-size stream output differs")
	}
	// Corrupt input still fails cleanly without a size up front.
	if _, err := twpp.StreamCompact(io.MultiReader(bytes.NewReader(raw[:len(raw)/3])), io.Discard, twpp.CompactOptions{}); err == nil {
		t.Error("truncated unsized stream: want error")
	}
}

// FuzzStreamCompactDeterminism fuzzes random WPP shapes through the
// streaming pipeline at several worker counts, requiring byte-identity
// with the batch pipeline. The seeded corpus runs in ordinary go test.
func FuzzStreamCompactDeterminism(f *testing.F) {
	for seed := int64(0); seed < 8; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		w := randWPP(rand.New(rand.NewSource(seed)))
		raw := wppfile.EncodeRaw(w)
		want, wantStats := encodePipeline(t, w, 1)
		for _, workers := range []int{1, 2, 8} {
			got, gotStats := streamPipeline(t, raw, workers)
			if gotStats != wantStats {
				t.Fatalf("seed %d workers=%d: stats diverge", seed, workers)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("seed %d workers=%d: bytes diverge", seed, workers)
			}
		}
	})
}
