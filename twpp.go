// Package twpp is the public API of the timestamped whole program path
// (TWPP) library, a reproduction of Zhang & Gupta, "Timestamped Whole
// Program Path Representation and its Applications" (PLDI 2001).
//
// The library covers the full system the paper describes:
//
//   - a tracing substrate: the minilang language, compiled to control
//     flow graphs and executed by an instrumented interpreter that
//     produces whole program paths (WPPs);
//   - the WPP compaction pipeline: partitioning into per-function path
//     traces with a dynamic call graph, redundant trace elimination,
//     dynamic-basic-block dictionaries, and the timestamped (TWPP)
//     representation with arithmetic-series timestamp compression;
//   - an indexed on-disk format answering per-function trace queries
//     with a single seek, plus the uncompacted baseline format;
//   - the Sequitur-based Larus representation as a baseline;
//   - profile-limited data flow analysis: demand-driven GEN-KILL query
//     propagation over timestamp-annotated dynamic CFGs, with three
//     applications — load redundancy detection, the Agrawal-Horgan
//     dynamic slicing algorithms, and dynamic currency determination.
//
// # Quick start
//
//	prog, _ := twpp.Compile(src)
//	run, _ := prog.Trace(nil)
//	t, stats := twpp.Compact(run.WPP)
//	_ = twpp.WriteFile("trace.twpp", t)
//	f, _ := twpp.OpenFile("trace.twpp")
//	hot, _ := f.ExtractFunction(f.Functions()[0])
//
// See the examples/ directory for complete programs.
package twpp

import (
	"context"

	"twpp/internal/cfg"
	"twpp/internal/core"
	"twpp/internal/dataflow"
	"twpp/internal/encoding"
	"twpp/internal/interp"
	"twpp/internal/minilang"
	"twpp/internal/segment"
	"twpp/internal/sequitur"
	"twpp/internal/storage"
	"twpp/internal/trace"
	"twpp/internal/wpp"
	"twpp/internal/wppfile"
)

// Re-exported identifier types.
type (
	// BlockID identifies a basic block within a function (1-based).
	BlockID = cfg.BlockID
	// FuncID identifies a function within a program.
	FuncID = cfg.FuncID
	// Timestamp is a 1-based position within a path trace.
	Timestamp = core.Timestamp
	// Loc is an abstract storage location (scalar variable or array
	// region) used by the dataflow applications.
	Loc = cfg.Loc
)

// Re-exported core representation types.
type (
	// RawWPP is an uncompacted whole program path.
	RawWPP = trace.RawWPP
	// PathTrace is a sequence of block ids.
	PathTrace = wpp.PathTrace
	// CompactStats reports per-stage compaction sizes (Table 2 data).
	CompactStats = wpp.Stats
	// TWPP is the compacted, timestamped whole program path.
	TWPP = core.TWPP
	// FunctionTWPP is one function's unique traces and dictionaries.
	FunctionTWPP = core.FunctionTWPP
	// Seq is a compacted timestamp set (arithmetic series list).
	Seq = core.Seq
	// TGraph is a timestamp-annotated dynamic control flow graph.
	TGraph = dataflow.TGraph
	// File is an opened compacted TWPP file with a per-function index.
	File = wppfile.CompactedFile
)

// CFGMode selects basic-block granularity for compilation.
type CFGMode = cfg.Mode

// CFG granularity options.
const (
	// MaxBlocks groups maximal straight-line statement runs (default;
	// used for trace collection and compaction experiments).
	MaxBlocks = cfg.MaxBlocks
	// PerStatement gives each statement its own block (used by the
	// dataflow, slicing and currency applications, matching the
	// paper's statement-numbered examples).
	PerStatement = cfg.PerStatement
)

// Program is a compiled minilang program ready for traced execution.
type Program struct {
	// CFG holds the per-function control flow graphs.
	CFG *cfg.Program
	// Names lists function names by FuncID.
	Names []string
}

// Compile parses minilang source and builds CFGs with MaxBlocks
// granularity. Use CompileMode for per-statement graphs.
func Compile(src string) (*Program, error) {
	return CompileMode(src, MaxBlocks)
}

// CompileMode parses minilang source and builds CFGs with the given
// granularity.
func CompileMode(src string, mode CFGMode) (*Program, error) {
	parsed, err := minilang.Parse(src)
	if err != nil {
		return nil, err
	}
	built, err := cfg.Build(parsed, mode)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(parsed.Funcs))
	for i, fn := range parsed.Funcs {
		names[i] = fn.Name
	}
	return &Program{CFG: built, Names: names}, nil
}

// FuncByName resolves a function name to its id.
func (p *Program) FuncByName(name string) (FuncID, bool) {
	id, _, ok := p.CFG.FuncByName(name)
	return id, ok
}

// Run is the outcome of a traced execution.
type Run struct {
	// WPP is the collected whole program path.
	WPP *RawWPP
	// Output collects print() values.
	Output []int64
	// Steps counts executed blocks.
	Steps int
}

// Trace executes the program's main function with the given input
// vector (consumed by `read` statements) and collects its WPP.
func (p *Program) Trace(input []int64) (*Run, error) {
	return p.TraceLimits(input, interp.Limits{})
}

// TraceLimits is Trace with explicit execution limits.
func (p *Program) TraceLimits(input []int64, limits interp.Limits) (*Run, error) {
	b := trace.NewBuilder(p.Names)
	res, err := interp.Run(p.CFG, b, input, limits)
	if err != nil {
		return nil, err
	}
	return &Run{WPP: b.Finish(), Output: res.Output, Steps: res.Steps}, nil
}

// Limits bounds a traced execution; zero values select defaults.
type Limits = interp.Limits

// Validate checks a WPP against the program's control flow graphs:
// traces must start at entries, end at exits, and follow CFG edges.
// Run it on traces ingested from elsewhere before compacting or
// analyzing them.
func (p *Program) Validate(w *RawWPP) error {
	return trace.Validate(w, p.CFG)
}

// Compact runs the full compaction pipeline on a raw WPP: partition,
// redundant-trace elimination, DBB dictionaries, and the timestamp
// transformation. The returned stats carry the per-stage sizes.
func Compact(w *RawWPP) (*TWPP, CompactStats) {
	return CompactOpts(w, CompactOptions{Workers: 1})
}

// CompactOptions configures the compaction pipeline.
type CompactOptions struct {
	// Workers bounds the worker pool that fans per-function work
	// (redundant-trace elimination, DBB dictionary discovery, and the
	// timestamp inversion) across goroutines. 0 selects
	// runtime.GOMAXPROCS; 1 runs sequentially. Output is byte-for-byte
	// independent of the worker count.
	Workers int

	// Format selects the on-disk container format for WriteFileOpts
	// and StreamCompact: FormatV2 (sectioned, checksummed; the
	// default when 0) or FormatV1 (the legacy layout, for consumers
	// that have not learned v2 yet). In-memory compaction ignores it.
	Format int
}

// CompactOpts is Compact with explicit options. The produced TWPP is
// identical for every worker count; only wall-clock time changes.
func CompactOpts(w *RawWPP, opts CompactOptions) (*TWPP, CompactStats) {
	t, stats, err := CompactContext(context.Background(), w, opts)
	if err != nil {
		// Background is never canceled; no other error source exists.
		panic(err)
	}
	return t, stats
}

// CompactContext is CompactOpts with cooperative cancellation: the
// pipeline polls ctx between per-function work items (and every few
// thousand DCG nodes), so canceling abandons a large compaction
// promptly with ctx.Err() and discards the partial result.
func CompactContext(ctx context.Context, w *RawWPP, opts CompactOptions) (*TWPP, CompactStats, error) {
	c, stats, err := wpp.CompactWorkersCtx(ctx, w, opts.Workers)
	if err != nil {
		return nil, CompactStats{}, err
	}
	t, err := core.FromCompactedWorkersCtx(ctx, c, opts.Workers)
	if err != nil {
		return nil, CompactStats{}, err
	}
	return t, stats, nil
}

// Reconstruct inverts Compact, recovering a WPP Linear-equal to the
// original.
func Reconstruct(t *TWPP) (*RawWPP, error) {
	c, err := t.ToCompacted()
	if err != nil {
		return nil, err
	}
	return c.Reconstruct(), nil
}

// WriteFile serializes a TWPP in the compacted indexed file format.
func WriteFile(path string, t *TWPP) error {
	return wppfile.WriteCompacted(path, t)
}

// WriteFileOpts is WriteFile with per-function block encoding fanned
// out over opts.Workers goroutines into pooled buffers, writing the
// container format selected by opts.Format. The on-disk bytes are
// identical for every worker count.
func WriteFileOpts(path string, t *TWPP, opts CompactOptions) error {
	return wppfile.WriteCompactedFormat(path, t, opts.Workers, opts.Format)
}

// OpenFile opens a compacted TWPP file with the decode cache disabled,
// reading only its header and function index; per-function extraction
// is a single positioned read.
func OpenFile(path string) (*File, error) {
	return wppfile.OpenCompacted(path)
}

// OpenOptions configures OpenFileOpts: the storage backend
// (Backend), eager checksum verification (VerifyChecksums), the
// decode cache size, the decode resource limits (MaxTraceBytes,
// MaxFuncTraces, MaxSeqValues) enforced against hostile or corrupt
// inputs, and optional Instrument hooks feeding decode-path events to
// a metrics layer.
type OpenOptions = wppfile.OpenOptions

// BackendKind selects how an opened container's bytes are accessed
// (OpenOptions.Backend).
type BackendKind = storage.Kind

// Storage backends for OpenOptions.Backend.
const (
	// BackendFile reads through positioned I/O on a file descriptor
	// (the zero value / default).
	BackendFile = storage.KindFile
	// BackendMmap maps the file read-only into memory; extraction
	// reads become memory copies. Falls back to BackendFile on
	// platforms without mmap support.
	BackendMmap = storage.KindMmap
	// BackendMemory loads the whole file into memory up front.
	BackendMemory = storage.KindMemory
)

// Container formats for CompactOptions.Format
// (File.FormatVersion reports which one an opened file uses).
const (
	// FormatV1 is the legacy compacted layout: implicit sections, no
	// checksums. Still readable; no longer written by default.
	FormatV1 = wppfile.FormatV1
	// FormatV2 is the sectioned container with a trailer section
	// directory and CRC32-C checksums on every section (the default).
	FormatV2 = wppfile.FormatV2
	// DefaultFormat is what a zero CompactOptions.Format writes.
	DefaultFormat = wppfile.DefaultFormat
)

// Instrument carries optional decode-path callbacks (cache hits, block
// decodes) for OpenOptions.Instrument; the twpp-serve observability
// layer uses it to feed its metrics registry.
type Instrument = wppfile.Instrument

// ErrNoFunction matches (errors.Is) extraction of a function that is
// not in the file's index — a lookup miss, distinct from any decode
// failure.
var ErrNoFunction = wppfile.ErrNoFunction

// NoLimit disables an OpenOptions resource limit; zero values select
// the defaults below.
const (
	NoLimit              = wppfile.NoLimit
	DefaultMaxTraceBytes = wppfile.DefaultMaxTraceBytes
	DefaultMaxFuncTraces = wppfile.DefaultMaxFuncTraces
	DefaultMaxSeqValues  = wppfile.DefaultMaxSeqValues
)

// Structured error types reported by the decode surfaces. DecodeError
// carries a machine-dispatchable code and byte offset (errors.As);
// StreamError classifies malformed trace event streams. The
// ErrTruncated sentinel matches any truncation via errors.Is.
type (
	DecodeError = encoding.Error
	StreamError = trace.StreamError
)

// Decode failure codes (DecodeError.Code).
const (
	CodeTruncated  = encoding.CodeTruncated
	CodeOverflow   = encoding.CodeOverflow
	CodeBadMagic   = encoding.CodeBadMagic
	CodeBadVersion = encoding.CodeBadVersion
	CodeCorrupt    = encoding.CodeCorrupt
	CodeLimit      = encoding.CodeLimit
	CodeChecksum   = encoding.CodeChecksum
)

// ErrTruncated matches (errors.Is) every truncated-input failure.
var ErrTruncated = encoding.ErrTruncated

// OpenFileOpts is OpenFile with options: OpenOptions.CacheEntries > 0
// enables a sharded LRU cache of decoded per-function blocks, so
// repeated hot-function extractions skip both I/O and decode. The
// returned File is safe for concurrent use; with the cache enabled,
// extracted blocks are shared and must be treated as read-only.
func OpenFileOpts(path string, opts OpenOptions) (*File, error) {
	return wppfile.OpenCompactedOptions(path, opts)
}

// Container is the read surface shared by a single compacted file
// (*File) and a segmented container (*SegmentedFile): per-function
// extraction, the DCG, section sizes, and cache statistics, agnostic
// of the on-disk layout. OpenContainer returns one.
type Container = wppfile.Container

// SegmentedFile is an opened segmented container: a directory holding
// a manifest plus sealed v2 segment files. Queries merge per-segment
// results transparently; a background SegmentMerger can fold segments
// underneath concurrent readers without blocking them.
type SegmentedFile = segment.Set

// SegmentOptions sizes the segments CompactSegmented seals.
type SegmentOptions = segment.WriteOptions

// SegmentMergeOptions configures NewSegmentMerger.
type SegmentMergeOptions = segment.MergeOptions

// SegmentMerger folds adjacent small segments into larger ones at the
// next manifest generation, atomically and concurrently with readers.
type SegmentMerger = segment.Merger

// CompactSegmented seals t into dir as a new segmented container:
// hottest functions pack first, functions larger than the per-segment
// budget split into trace windows, and the manifest commits the
// container atomically.
func CompactSegmented(dir string, t *TWPP, opts SegmentOptions) error {
	_, err := segment.Write(dir, t, opts)
	return err
}

// OpenSegmented opens a segmented container directory.
func OpenSegmented(dir string, opts OpenOptions) (*SegmentedFile, error) {
	return segment.Open(dir, opts)
}

// NewSegmentMerger returns a Merger folding s's segments in the
// background; see SegmentMerger.MergeOnce and Run.
func NewSegmentMerger(s *SegmentedFile, opts SegmentMergeOptions) *SegmentMerger {
	return segment.NewMerger(s, opts)
}

// IsSegmented reports whether path is a segmented-container directory.
func IsSegmented(path string) bool {
	return segment.IsSegmented(path)
}

// OpenContainer opens path as whichever container kind it is: a
// directory with a manifest opens as a segmented container, anything
// else as a single compacted file.
func OpenContainer(path string, opts OpenOptions) (Container, error) {
	if segment.IsSegmented(path) {
		return segment.Open(path, opts)
	}
	return wppfile.OpenCompactedOptions(path, opts)
}

// WriteRawFile serializes a WPP in the uncompacted linear format (the
// slow-extraction baseline of the paper's Table 4).
func WriteRawFile(path string, w *RawWPP) error {
	return wppfile.WriteRaw(path, w)
}

// ReadRawFile parses an uncompacted WPP file.
func ReadRawFile(path string) (*RawWPP, error) {
	return wppfile.ReadRaw(path)
}

// ScanRawFile extracts one function's path traces from an uncompacted
// file by scanning all of it.
func ScanRawFile(path string, fn FuncID) ([]PathTrace, error) {
	return wppfile.ScanRawForFunction(path, fn)
}

// CompressSequitur compresses a WPP's linear symbol stream with
// Sequitur, the Larus (PLDI 1999) baseline representation.
func CompressSequitur(w *RawWPP) *sequitur.CompressedWPP {
	return sequitur.CompressWPP(w.Linear())
}

// DynamicCFG expands one unique trace of a function through its DBB
// dictionary and builds the timestamp-annotated dynamic control flow
// graph used by the profile-limited analyses.
func DynamicCFG(ft *FunctionTWPP, traceIdx int) (*TGraph, error) {
	return dataflow.Build(ft, traceIdx)
}

// DynamicCFGFromPath builds a timestamp-annotated dynamic CFG directly
// from an expanded path trace.
func DynamicCFGFromPath(path PathTrace) *TGraph {
	return dataflow.BuildFromPath(path)
}
