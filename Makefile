# Development and CI entry points. `make ci` is the gate: vet, build,
# tests, and the wppfile/root concurrency tests under the race
# detector.

GO ?= go

.PHONY: build test race vet lint vuln cover bench bench-json bench-mem bench-serve bench-mmap bench-scale bench-scale-short bench-segments bench-ingest serve-test ingest-test diff-test diff-check passes-test fuzz-seed ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over the packages with concurrency: the parallel
# compaction pipeline (root), its stages (wpp, core), the concurrent
# indexed extraction + decode cache (wppfile), and the segmented
# container's background-merge swap protocol (segment).
race:
	$(GO) test -race ./internal/wppfile/ ./internal/wpp/ ./internal/core/ ./internal/segment/ .

vet:
	$(GO) vet ./...

# staticcheck is optional tooling: run it when the host has it, skip
# quietly (with a note) when it does not, so ci works in hermetic
# containers without network access.
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go vet already ran)"; \
	fi

# Known-vulnerability scan, gated like staticcheck: run when the host
# has govulncheck, skip quietly otherwise (hermetic containers have
# neither the tool nor the network to fetch its database).
vuln:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping"; \
	fi

# Coverage floor on the decode-critical packages: the corruption sweep
# and fuzz targets only mean something if the decoders they exercise
# are actually covered. Fails if either package drops below 70%.
COVER_FLOOR ?= 70
cover:
	@for pkg in ./internal/encoding/ ./internal/wppfile/; do \
		pct=$$($(GO) test -cover $$pkg | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p'); \
		if [ -z "$$pct" ]; then echo "$$pkg: no coverage reported"; exit 1; fi; \
		echo "$$pkg coverage: $$pct% (floor $(COVER_FLOOR)%)"; \
		if [ $$(printf '%.0f' "$$pct") -lt $(COVER_FLOOR) ]; then \
			echo "$$pkg coverage $$pct% below floor $(COVER_FLOOR)%"; exit 1; \
		fi; \
	done

# Quick benchmark sweep of the parallel pipeline and concurrent
# extraction (full tables: `go run ./cmd/twpp-bench`).
bench:
	$(GO) test -run xxx -bench 'ParallelCompact|ConcurrentExtract|Table' -benchtime 1x .

# Machine-readable perf snapshot (BENCH_*.json trajectory format),
# including the batch-vs-streaming memory comparison.
bench-json:
	$(GO) run ./cmd/twpp-bench -scale 0.25 -table 1 -maxfuncs 20 -json BENCH_$(shell date +%Y%m%d).json

# Peak-heap comparison of the batch and streaming compaction pipelines
# (one iteration each; fast enough for local runs and CI).
bench-mem:
	$(GO) test -run xxx -bench StreamCompact -benchtime 1x .

# Serving-layer gate: the full server test suite — parity oracle over
# every generator shape, the 16-client load soak, and the corruption
# sweep — under the race detector, plus the pure-Go serving throughput
# smoke.
serve-test:
	$(GO) test -race ./internal/server/ ./internal/obs/ ./cmd/twpp-serve/
	$(GO) test -run xxx -bench ServeExtract -benchtime 1x ./internal/server/

# Ingestion-layer gate: the write-path test suite — the ingest parity
# oracle over every generator shape, the 16-producer soak with
# kill-and-reconnect, the wire-frame corruption sweep, and the
# end-to-end serve parity acceptance — under the race detector.
ingest-test:
	$(GO) test -race ./internal/ingest/ ./cmd/twpp-ingest/

# Ingest throughput snapshot (BENCH_*_ingest.json trajectory format):
# a 16-producer fleet over real sockets — events/s, seal latency from
# the server's histogram, and server-side peak heap.
bench-ingest:
	INGEST_BENCH_OUT=$(CURDIR)/BENCH_$(shell date +%Y%m%d)_ingest.json \
		$(GO) test -run TestWriteIngestBenchJSON -v ./internal/ingest/

# Serving throughput/latency snapshot (BENCH_*_serve.json trajectory
# format): the 16-client mixed workload over a real listener.
bench-serve:
	SERVE_BENCH_OUT=$(CURDIR)/BENCH_$(shell date +%Y%m%d)_serve.json \
		$(GO) test -run TestWriteServeBenchJSON -v ./internal/server/

# Multi-core serving scale-out (BENCH_*_scale.json trajectory format):
# the full request path swept over GOMAXPROCS 1/4/8 with 4 clients per
# proc, plus the in-process pooled-extraction sweep. The JSON records
# num_cpu: on single-core hosts the curve is expectedly flat.
bench-scale:
	SCALE_BENCH_OUT=$(CURDIR)/BENCH_$(shell date +%Y%m%d)_scale.json \
		$(GO) test -run TestWriteScaleBenchJSON -v ./internal/server/
	$(GO) test -run xxx -bench PooledExtractScale -benchtime 1x .

# CI smoke of the scale sweep: tiny request counts, throwaway output —
# exercises the GOMAXPROCS axis and the JSON writer without the cost.
bench-scale-short:
	SCALE_BENCH_OUT=$(CURDIR)/.bench_scale_ci.json SCALE_BENCH_SHORT=1 \
		$(GO) test -run TestWriteScaleBenchJSON ./internal/server/
	@rm -f $(CURDIR)/.bench_scale_ci.json

# Segmented-container extraction sweep (BENCH_*_segments.json
# trajectory format): warm pooled extraction as the segment count grows
# 1/4/16, before and after background merges. The flat-latency gate:
# the printed worst-case multi-segment ratio should stay near 1x.
bench-segments:
	$(GO) run ./cmd/twpp-bench -scale 0.25 -table 1 -maxfuncs 20 -segments \
		-json BENCH_$(shell date +%Y%m%d)_segments.json

# Storage-backend comparison (BENCH_*_mmap.json trajectory format):
# uncached concurrent extraction through positioned file reads vs a
# read-only memory mapping, same compacted file and workload.
bench-mmap:
	MMAP_BENCH_OUT=$(CURDIR)/BENCH_$(shell date +%Y%m%d)_mmap.json \
		$(GO) test -run TestWriteMmapBenchJSON -v .
	$(GO) test -run xxx -bench 'ConcurrentExtract/backend' -benchtime 1x .

# Differential gate: the diff engine's metamorphic matrix (7 shapes ×
# {v1,v2,segmented} × {file,mmap,memory}), the perturbation-injection
# suite, and the twpp-diff golden/exit-code tests — under the race
# detector. (The /v1/diff parity oracle and the refresh load test live
# in ./internal/server/ and run under serve-test.)
diff-test:
	$(GO) test -race ./internal/diff/ ./cmd/twpp-diff/

# End-to-end diff gate on the example profiles: identical content must
# diff clean across segmentation (exit 0), and a regressed program
# must be flagged with exit 1 — not 0 (missed) and not 2+ (crashed).
diff-check:
	@set -e; tmp=$$(mktemp -d); trap 'rm -rf $$tmp' 0; \
	$(GO) run ./cmd/twpp-trace -src examples/diffcheck/base.mini -o $$tmp/base.wpp -stats=false; \
	$(GO) run ./cmd/twpp-trace -src examples/diffcheck/regressed.mini -o $$tmp/regressed.wpp -stats=false; \
	$(GO) run ./cmd/twpp-compact -in $$tmp/base.wpp -o $$tmp/base.twpp; \
	$(GO) run ./cmd/twpp-compact -in $$tmp/base.wpp -o $$tmp/base.twppd -segment-bytes 4096; \
	$(GO) run ./cmd/twpp-compact -in $$tmp/regressed.wpp -o $$tmp/regressed.twpp; \
	$(GO) run ./cmd/twpp-diff $$tmp/base.twpp $$tmp/base.twppd; \
	echo "diff-check: identical content diffs clean across segmentation"; \
	rc=0; $(GO) run ./cmd/twpp-diff -json $$tmp/base.twpp $$tmp/regressed.twpp >/dev/null || rc=$$?; \
	if [ $$rc -ne 1 ]; then echo "diff-check: regressed profile exited $$rc, want 1"; exit 1; fi; \
	echo "diff-check: regressed profile flagged (exit 1)"

# Analysis-pass gate: the registry and its passes (including the
# k-iteration path profiler), the cross-container matrix, and the
# twpp-query golden/exit-code tests — under the race detector. (The
# analyze-endpoint parity oracle lives in ./internal/server/ and runs
# under serve-test.)
passes-test:
	$(GO) test -race ./internal/passes/ ./cmd/twpp-query/

# Run the fuzz targets on their seed corpora only (no fuzzing time;
# the seeded cases run as ordinary tests): the compaction determinism
# targets at the root, the hostile-input decode targets in wppfile and
# encoding, the segmented-container manifest decoder, the ingest wire
# frame, the diff engine, and the analysis-pass dispatcher.
fuzz-seed:
	$(GO) test -run 'FuzzParallelCompactDeterminism|FuzzStreamCompactDeterminism' .
	$(GO) test -run 'FuzzDecodeCompacted|FuzzStreamRoundTrip' ./internal/wppfile/
	$(GO) test -run 'FuzzUvarintBatchParity' ./internal/encoding/
	$(GO) test -run 'FuzzManifestDecode' ./internal/segment/
	$(GO) test -run 'FuzzIngestFrame' ./internal/ingest/
	$(GO) test -run 'FuzzDiffCompacted' ./internal/diff/
	$(GO) test -run 'FuzzAnalyzePass' ./internal/passes/

ci: lint vuln build test race serve-test ingest-test diff-test diff-check passes-test fuzz-seed cover bench-mem bench-mmap bench-scale-short
