# Development and CI entry points. `make ci` is the gate: vet, build,
# tests, and the wppfile/root concurrency tests under the race
# detector.

GO ?= go

.PHONY: build test race vet bench bench-json bench-mem fuzz-seed ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over the packages with concurrency: the parallel
# compaction pipeline (root), its stages (wpp, core), and the
# concurrent indexed extraction + decode cache (wppfile).
race:
	$(GO) test -race ./internal/wppfile/ ./internal/wpp/ ./internal/core/ .

vet:
	$(GO) vet ./...

# Quick benchmark sweep of the parallel pipeline and concurrent
# extraction (full tables: `go run ./cmd/twpp-bench`).
bench:
	$(GO) test -run xxx -bench 'ParallelCompact|ConcurrentExtract|Table' -benchtime 1x .

# Machine-readable perf snapshot (BENCH_*.json trajectory format),
# including the batch-vs-streaming memory comparison.
bench-json:
	$(GO) run ./cmd/twpp-bench -scale 0.25 -table 1 -maxfuncs 20 -json BENCH_$(shell date +%Y%m%d).json

# Peak-heap comparison of the batch and streaming compaction pipelines
# (one iteration each; fast enough for local runs and CI).
bench-mem:
	$(GO) test -run xxx -bench StreamCompact -benchtime 1x .

# Run the determinism fuzz targets on their seed corpora only (no
# fuzzing time; the seeded cases run as ordinary tests).
fuzz-seed:
	$(GO) test -run 'FuzzParallelCompactDeterminism|FuzzStreamCompactDeterminism' .

ci: vet build test race fuzz-seed bench-mem
