# Development and CI entry points. `make ci` is the gate: vet, build,
# tests, and the wppfile/root concurrency tests under the race
# detector.

GO ?= go

.PHONY: build test race vet bench bench-json ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over the packages with concurrency: the parallel
# compaction pipeline (root), its stages (wpp, core), and the
# concurrent indexed extraction + decode cache (wppfile).
race:
	$(GO) test -race ./internal/wppfile/ ./internal/wpp/ ./internal/core/ .

vet:
	$(GO) vet ./...

# Quick benchmark sweep of the parallel pipeline and concurrent
# extraction (full tables: `go run ./cmd/twpp-bench`).
bench:
	$(GO) test -run xxx -bench 'ParallelCompact|ConcurrentExtract|Table' -benchtime 1x .

# Machine-readable perf snapshot (BENCH_*.json trajectory format).
bench-json:
	$(GO) run ./cmd/twpp-bench -scale 0.25 -table 1 -maxfuncs 20 -json BENCH_$(shell date +%Y%m%d).json

ci: vet build test race
