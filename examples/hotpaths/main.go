// Hotpaths: find a program's hot functions and hot paths from a stored
// TWPP, and compare the access cost against the Sequitur (Larus)
// baseline — the workflow motivating the paper's Tables 4 and 5.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"twpp"
	"twpp/internal/wpp"
)

// An interpreter-like workload: a dispatch loop over opcode handlers
// with realistic skew (some handlers hot, some cold, each with a few
// distinct paths).
const src = `
func main() {
    var pc = 0;
    var acc = 0;
    while (pc < 2000) {
        var op = (pc * 7 + 3) % 10;
        if (op < 5) {
            acc = handleArith(op, acc);
        } else {
            if (op < 8) {
                acc = handleMem(op, acc);
            } else {
                acc = handleBranch(op, acc);
            }
        }
        pc = pc + 1;
    }
    print(acc);
}

func handleArith(op, acc) {
    var k = 0;
    while (k < 6) {
        if (op % 2 == 0) {
            acc = acc + op;
        } else {
            acc = acc - 1;
        }
        k = k + 1;
    }
    return acc;
}

func handleMem(op, acc) {
    var buf = alloc(8);
    buf[op % 8] = acc;
    var k = 0;
    while (k < 4) {
        acc = acc + buf[op % 8];
        k = k + 1;
    }
    return acc % 100000;
}

func handleBranch(op, acc) {
    if (acc % 3 == 0) {
        return acc / 2;
    }
    return acc + op;
}
`

func main() {
	prog, err := twpp.Compile(src)
	if err != nil {
		log.Fatal(err)
	}
	run, err := prog.Trace(nil)
	if err != nil {
		log.Fatal(err)
	}
	tw, stats := twpp.Compact(run.WPP)

	dir, err := os.MkdirTemp("", "twpp-hotpaths-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	compPath := filepath.Join(dir, "t.twpp")
	rawPath := filepath.Join(dir, "t.wpp")
	if err := twpp.WriteFile(compPath, tw); err != nil {
		log.Fatal(err)
	}
	if err := twpp.WriteRawFile(rawPath, run.WPP); err != nil {
		log.Fatal(err)
	}

	f, err := twpp.OpenFile(compPath)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()

	fmt.Printf("%d calls, %d unique traces overall\n\n", stats.Calls, stats.UniqueTraces)
	fmt.Println("functions, hottest first (the on-disk index order):")
	for _, id := range f.Functions() {
		fmt.Printf("  %-14s %6d calls\n", f.FuncNames[id], f.CallCount(id))
	}

	// Hot paths of the hottest function: unique traces ranked by how
	// many calls took them (counted from the stored DCG).
	hottest := f.Functions()[0]
	ft, err := f.ExtractFunction(hottest)
	if err != nil {
		log.Fatal(err)
	}
	root, err := f.ReadDCG()
	if err != nil {
		log.Fatal(err)
	}
	uses := make(map[int]int)
	countTraceUses(root, hottest, uses)
	fmt.Printf("\nhot paths of %s:\n", f.FuncNames[hottest])
	for i := range ft.Traces {
		g, err := twpp.DynamicCFG(ft, i)
		if err != nil {
			log.Fatal(err)
		}
		path := g.Path()
		if len(path) > 16 {
			path = path[:16]
		}
		fmt.Printf("  trace %d: %5d calls, path %v... (length %d)\n",
			i, uses[i], path, g.Len)
	}

	// Access-time comparison: indexed TWPP extraction vs scanning the
	// raw file vs expanding the Sequitur grammar.
	start := time.Now()
	if _, err := f.ExtractFunction(hottest); err != nil {
		log.Fatal(err)
	}
	tIndexed := time.Since(start)

	start = time.Now()
	if _, err := twpp.ScanRawFile(rawPath, hottest); err != nil {
		log.Fatal(err)
	}
	tScan := time.Since(start)

	seq := twpp.CompressSequitur(run.WPP)
	start = time.Now()
	if _, err := seq.ExtractFunction(int(hottest)); err != nil {
		log.Fatal(err)
	}
	tSeq := time.Since(start)

	fmt.Printf("\nextraction of %s:\n", f.FuncNames[hottest])
	fmt.Printf("  TWPP indexed file:   %v\n", tIndexed)
	fmt.Printf("  raw WPP full scan:   %v (%.0fx slower)\n", tScan, float64(tScan)/float64(tIndexed))
	fmt.Printf("  Sequitur grammar:    %v (%.0fx slower; grammar %d bytes vs TWPP file %d)\n",
		tSeq, float64(tSeq)/float64(tIndexed), seq.Size(), fileSize(compPath))
}

// countTraceUses walks the DCG counting, per unique trace index of fn,
// how many invocations used it.
func countTraceUses(n *wpp.CallNode, fn twpp.FuncID, out map[int]int) {
	if n == nil {
		return
	}
	if n.Fn == fn {
		out[n.TraceIdx]++
	}
	for _, c := range n.Children {
		countTraceUses(c, fn, out)
	}
}

func fileSize(path string) int64 {
	fi, err := os.Stat(path)
	if err != nil {
		return 0
	}
	return fi.Size()
}
