// Currency: debugging optimized code with a TWPP (paper §4.3.2,
// Figure 12). Partial dead code elimination sank an assignment of X
// out of a shared block into the branch that uses it; whether the
// user-visible value of X at a breakpoint is *current* depends on the
// path actually executed — which the timestamped trace records.
package main

import (
	"fmt"
	"log"

	"twpp/internal/currency"
	"twpp/internal/dataflow"
	"twpp/internal/wpp"
)

// Unoptimized program (what the user debugs against):
//
//	B1: X = compute(); ...      <- assignment lives here
//	B2: use(X)                   (then-branch)
//	B4: other()                  (else-branch)
//	B3: breakpoint
//
// The optimizer sank "X = compute()" from B1 into B2 because only the
// then-branch uses it. The executing (optimized) program still has
// blocks B1/B2/B4/B3; the trace below is what actually ran.
func main() {
	motion := currency.Motion{Var: "X", From: 1, To: 2}

	fmt.Println("optimization: assignment of X sunk from B1 into B2 (partial dead code elimination)")
	fmt.Println("breakpoint in B3; user asks for the value of X")
	fmt.Println()

	paths := []wpp.PathTrace{
		{1, 2, 3}, // then-branch executed: sunk assignment ran
		{1, 4, 3}, // else-branch executed: sunk assignment skipped
	}
	for _, path := range paths {
		tg := dataflow.BuildFromPath(path)
		v, err := currency.At(tg, motion, 3, 3)
		if err != nil {
			log.Fatal(err)
		}
		state := "NON-CURRENT (report stale value to the user)"
		if v.Current {
			state = "current (safe to display)"
		}
		fmt.Printf("executed path %v:\n  X is %s\n  %s\n\n", path, state, v.Reason)
	}

	// A looped execution mixes both cases; classify every breakpoint
	// instance at once using the compacted timestamp sets.
	looped := wpp.PathTrace{1, 2, 3, 1, 4, 3, 1, 2, 3, 1, 4, 3}
	tg := dataflow.BuildFromPath(looped)
	cur, non, err := currency.AtAll(tg, motion, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("looped execution %v:\n", looped)
	fmt.Printf("  X current at breakpoint times     %s\n", cur)
	fmt.Printf("  X non-current at breakpoint times %s\n", non)

	// Show the underlying timestamp annotations.
	fmt.Println("\ntimestamp annotations of the dynamic CFG:")
	for _, n := range tg.Nodes {
		fmt.Printf("  B%d -> %s\n", n.Block, n.Times)
	}
}
