// Optimize: profile-guided load-redundancy detection (paper §4.3.1,
// Figure 9). A hot loop reloads a value from an array; edge profiles
// can only bound how often the reload is redundant, but the TWPP
// answers exactly, per execution instance, with a handful of
// demand-driven queries.
package main

import (
	"fmt"
	"log"

	"twpp"
	"twpp/internal/cfg"
	"twpp/internal/dataflow"
	"twpp/internal/redundancy"
	"twpp/internal/wpp"
)

// The kernel reloads table[base] after an optional store: on two of
// every three iterations the store is skipped and the reload is
// redundant — exactly the kind of fact a profile-guided optimizer
// wants quantified before cloning and specializing the loop.
const src = `
func main() {
    var table = alloc(16);
    table[0] = 5;
    var sink = 0;
    for (var i = 0; i < 300; i = i + 1) {
        var x = table[0];
        if (i % 3 == 2) {
            table[0] = x + 1;
        }
        var y = table[0];
        sink = sink + y;
    }
    print(sink);
}
`

func main() {
	prog, err := twpp.CompileMode(src, twpp.PerStatement)
	if err != nil {
		log.Fatal(err)
	}
	run, err := prog.Trace(nil)
	if err != nil {
		log.Fatal(err)
	}
	// Build the timestamp-annotated dynamic CFG of main's invocation.
	mainTrace := wpp.PathTrace(run.WPP.Traces[run.WPP.Root.Trace])
	tg := dataflow.BuildFromPath(mainTrace)

	fmt.Println("load sites in main and their dynamic redundancy:")
	reports, err := redundancy.AnalyzeFunction(prog.CFG, 0, tg)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range reports {
		fmt.Printf("  %s\n", r)
	}

	// Drill into the reload site (the load with the largest block id:
	// y = table[0]).
	sites := redundancy.FindLoads(prog.CFG.Graphs[0])
	reload := sites[len(sites)-1]
	rep, err := redundancy.Analyze(prog.CFG, 0, tg, reload)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreload at B%d: %d of %d executions redundant (%.1f%%)\n",
		reload.Block, rep.Redundant, rep.Executions, 100*rep.Degree)
	fmt.Printf("cost: %d demand-driven queries over compacted timestamp vectors\n", rep.Queries)
	if rep.Degree > 0.5 {
		fmt.Println("=> profitable: an optimizer would clone the loop and keep the value in a register")
	}

	// The same machinery at the raw query level, Figure 9 style: show
	// the timestamp vectors driving the analysis.
	fmt.Println("\ntimestamp annotations at the interesting blocks:")
	for _, b := range []cfg.BlockID{reload.Block} {
		fmt.Printf("  T(%d) = %s\n", b, tg.Node(b).Times)
	}
}
