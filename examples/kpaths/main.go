// k-iteration path profiles: two loops whose single-iteration (k=1)
// profiles are indistinguishable, but whose k=2 profiles reveal a
// loop-carried structure only one of them has.
//
// `alternating` takes the then-branch on even iterations and the
// else-branch on odd ones; `blocky` takes the then-branch for the
// first half of the loop and the else-branch for the second. Over 12
// iterations each branch executes 6 times in both functions, so any
// per-iteration profile — Ball-Larus path counts, block counts, the
// /stats numbers — calls them identical. The k=2 profile, built from
// the timestamped whole program path by sliding a window of k
// consecutive iterations, separates them: alternating's hot window is
// then→else (it never repeats an iteration path), blocky's is
// then→then.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"twpp"
)

const src = `
func main() {
    var a = alternating(12);
    var b = blocky(12);
    print(a + b);
}
func alternating(n) {
    var acc = 0;
    for (var i = 0; i < n; i = i + 1) {
        if (i % 2 == 0) {
            acc = acc + 1;
        } else {
            acc = acc + 2;
        }
    }
    return acc;
}
func blocky(n) {
    var acc = 0;
    for (var i = 0; i < n; i = i + 1) {
        if (i < 6) {
            acc = acc + 1;
        } else {
            acc = acc + 2;
        }
    }
    return acc;
}
`

func main() {
	// Trace, compact, and store the program, then reopen the container
	// the way any analysis client would.
	prog, err := twpp.Compile(src)
	if err != nil {
		log.Fatal(err)
	}
	run, err := prog.Trace(nil)
	if err != nil {
		log.Fatal(err)
	}
	tw, _ := twpp.Compact(run.WPP)
	dir, err := os.MkdirTemp("", "twpp-kpaths-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "trace.twpp")
	if err := twpp.WriteFile(path, tw); err != nil {
		log.Fatal(err)
	}
	c, err := twpp.OpenContainer(path, twpp.OpenOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	byName := map[string]twpp.FuncID{}
	for _, fn := range c.Functions() {
		if names := c.Names(); int(fn) < len(names) {
			byName[names[fn]] = fn
		}
	}

	for _, k := range []int{1, 2} {
		fmt.Printf("k=%d iteration paths:\n", k)
		for _, name := range []string{"alternating", "blocky"} {
			res, err := twpp.KPathProfile(c, byName[name], k)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-12s %d calls, %d iterations, %d windows\n",
				name, res.Calls, res.Iterations, res.Windows)
			for _, p := range res.Paths {
				fmt.Printf("    %4dx  %s\n", p.Count, renderWindow(p.Seq))
			}
		}
		if k == 1 {
			fmt.Println("  -> identical: per-iteration counts cannot tell the loops apart")
		} else {
			fmt.Println("  -> the hot k=2 window differs: alternating pairs two distinct")
			fmt.Println("     iteration paths, blocky repeats one — visible only because the")
			fmt.Println("     timestamped WPP preserves cross-iteration order")
		}
	}
}

// renderWindow prints one k-window the way twpp-query -kpaths does:
// iterations separated by " | ", blocks by spaces.
func renderWindow(seq [][]int) string {
	iters := make([]string, len(seq))
	for i, blocks := range seq {
		parts := make([]string, len(blocks))
		for j, b := range blocks {
			parts[j] = fmt.Sprint(b)
		}
		iters[i] = strings.Join(parts, " ")
	}
	return strings.Join(iters, " | ")
}
