// Slicing: the three Agrawal-Horgan dynamic slicing algorithms run off
// one timestamped dynamic CFG (paper §4.3.2, Figures 10-11). The
// program, input, and slicing criterion are exactly the paper's
// example; statement numbers match the figure because the CFG is built
// per-statement.
package main

import (
	"fmt"
	"log"

	"twpp"
	"twpp/internal/cfg"
	"twpp/internal/core"
	"twpp/internal/dataflow"
	"twpp/internal/slicing"
	"twpp/internal/wpp"
)

const src = `
func main() {
    read N;
    var I = 1;
    var J = 0;
    while (I <= N) {
        read X;
        if (X < 0) {
            Y = f1(X);
        } else {
            Y = f2(X);
        }
        Z = f3(Y);
        print(Z);
        J = 1;
        I = I + 1;
    }
    Z = Z + J;
    print(Z);
}
func f1(x) { return 0 - x; }
func f2(x) { return x * 2; }
func f3(y) { return y + 1; }
`

func main() {
	prog, err := twpp.CompileMode(src, twpp.PerStatement)
	if err != nil {
		log.Fatal(err)
	}
	// The paper's input: N = 3, X = -4, 3, -2.
	input := []int64{3, -4, 3, -2}
	run, err := prog.Trace(input)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("input N=%d, X=%v; program output: %v\n", input[0], input[1:], run.Output)

	tg := dataflow.BuildFromPath(wpp.PathTrace(run.WPP.Traces[run.WPP.Root.Trace]))
	s := slicing.New(prog.CFG.Graphs[0], tg)

	// Slice on Z at the breakpoint (statement 14).
	crit := slicing.Criterion{Block: 14, Vars: []cfg.Loc{{Var: "Z"}}}
	fmt.Println("\nslice on Z at statement 14 (breakpoint):")

	a1, err := s.Approach1(crit)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  approach 1 (executed nodes):     %v\n", a1.Blocks)
	a2, err := s.Approach2(crit)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  approach 2 (exercised edges):    %v\n", a2.Blocks)
	a3, err := s.Approach3(crit)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  approach 3 (instance-precise):   %v\n", a3.Blocks)

	fmt.Println("\nwhy they differ:")
	fmt.Println("  - statement 10 (print Z) defines nothing: out of every slice")
	fmt.Println("  - statement 3 (J=0) is never the exercised reaching def of J at 13: out of A2/A3")
	fmt.Println("  - statement 8 (Y=f2) did not feed the LAST Z=f3(Y): out of A3 only")

	// Instance sensitivity: slicing the first vs second execution of
	// print(Z) inside the loop.
	times := tg.Node(10).Times.Expand()
	for i, t := range times[:2] {
		sl, err := s.Approach3(slicing.Criterion{Block: 10, Time: t})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nslice of print(Z) instance %d (t=%d, X=%d): %v\n",
			i+1, t, input[i+1], sl.Blocks)
	}

	// Interprocedural slicing: the same criterion, but following the
	// dependence through the callees f1/f2/f3 instead of treating
	// calls as opaque.
	c, _ := wpp.Compact(run.WPP)
	inter := slicing.NewInter(prog.CFG, core.FromCompacted(c))
	isl, err := inter.Slice(core.FromCompacted(c).Root, slicing.Criterion{
		Block: 14, Vars: []cfg.Loc{{Var: "Z"}},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ninterprocedural slice (function:block sites):")
	for _, site := range isl.Sites {
		fmt.Printf("  %s:B%d\n", prog.Names[site.Fn], site.Block)
	}
	fmt.Printf("(%d statement instances visited)\n", isl.Instances)
}
