// Quickstart: trace a program, compact its whole program path, store
// it, and query one function's traces back — the 30-second tour of the
// library.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"twpp"
)

const src = `
func main() {
    var total = 0;
    for (var i = 0; i < 200; i = i + 1) {
        total = total + compute(i % 4, 10 + (i % 3));
    }
    print(total);
}

func compute(mode, n) {
    var acc = mode;
    var j = 0;
    while (j < n) {
        if (mode % 2 == 0) {
            acc = acc + j;
        } else {
            acc = acc * 2;
            acc = acc % 1000;
        }
        j = j + 1;
    }
    return acc;
}
`

func main() {
	// 1. Compile and run under WPP instrumentation.
	prog, err := twpp.Compile(src)
	if err != nil {
		log.Fatal(err)
	}
	run, err := prog.Trace(nil)
	if err != nil {
		log.Fatal(err)
	}
	dcgBytes, traceBytes := run.WPP.RawSizes()
	fmt.Printf("execution: %d calls, %d block events (raw WPP: %d bytes)\n",
		run.WPP.NumCalls(), run.WPP.NumBlocks(), dcgBytes+traceBytes)

	// 2. Compact: redundant-trace elimination + DBB dictionaries +
	//    timestamp transformation.
	tw, stats := twpp.Compact(run.WPP)
	twppBytes, dictBytes := tw.SizeStats()
	fmt.Printf("compaction: %d calls -> %d unique traces; traces %d B -> %d B (TWPP+dicts)\n",
		stats.Calls, stats.UniqueTraces, stats.RawTraceBytes, twppBytes+dictBytes)

	// 3. Store in the indexed file format.
	dir, err := os.MkdirTemp("", "twpp-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "trace.twpp")
	if err := twpp.WriteFile(path, tw); err != nil {
		log.Fatal(err)
	}
	fi, _ := os.Stat(path)
	fmt.Printf("stored: %s (%d bytes on disk)\n", path, fi.Size())

	// 4. Reopen and extract the hottest function with one seek.
	f, err := twpp.OpenFile(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	hottest := f.Functions()[0]
	ft, err := f.ExtractFunction(hottest)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hottest function: %s, %d calls, %d unique path traces\n",
		f.FuncNames[hottest], ft.CallCount, len(ft.Traces))
	for i, tr := range ft.Traces {
		fmt.Printf("  trace %d (length %d):\n", i, tr.Len)
		for _, bt := range tr.Blocks {
			fmt.Printf("    block %-3d executed at t = %s\n", bt.Block, bt.Times)
		}
	}

	// 5. The compacted form is lossless: rebuild the original WPP.
	back, err := twpp.Reconstruct(tw)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("round trip: reconstructed WPP has %d blocks (original %d)\n",
		back.NumBlocks(), run.WPP.NumBlocks())
}
