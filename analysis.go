package twpp

import (
	"context"
	"fmt"

	"twpp/internal/cfg"
	"twpp/internal/currency"
	"twpp/internal/dataflow"
	"twpp/internal/passes"
	"twpp/internal/redundancy"
	"twpp/internal/slicing"
	"twpp/internal/wpp"
)

// This file exposes the repo's analyses through the facade, in two
// layers with no third dispatch path:
//
//   - Container-level analyses (anything that answers a question about
//     an opened Container) are registered passes in internal/passes;
//     the facade dispatches them through RunAnalysis — the same
//     registry the HTTP server and twpp-query dispatch through — with
//     typed conveniences (KPathProfile) for the common ones.
//   - TGraph-level helpers (Query, QueryAt, Currency, slicing,
//     redundancy — the paper's §4.3 applications) are facade-only:
//     they operate on an in-memory dynamic CFG the caller already
//     built, carry non-JSON inputs like effect functions and code
//     motions, and are deliberately not passes.

// Re-exported analysis types.
type (
	// Effect is a block's effect on a data flow fact (Transparent,
	// GenFact, or KillFact).
	Effect = dataflow.Effect
	// QueryResult is the resolution of a profile-limited data flow
	// query.
	QueryResult = dataflow.Result
	// LoadReport is a load site's dynamic redundancy measurement.
	LoadReport = redundancy.Report
	// LoadSite identifies an array load instruction.
	LoadSite = redundancy.LoadSite
	// SliceCriterion selects what to slice on.
	SliceCriterion = slicing.Criterion
	// Slice is a dynamic slicing result.
	Slice = slicing.Slice
	// Motion describes a code-motion transformation for currency
	// determination.
	Motion = currency.Motion
	// CurrencyVerdict is the current/non-current determination for
	// one breakpoint instance.
	CurrencyVerdict = currency.Verdict
)

// Effect values for GEN-KILL problems.
const (
	// TransparentFact leaves the fact unchanged.
	TransparentFact = dataflow.Transparent
	// GenFact makes the fact true on block exit.
	GenFact = dataflow.Gen
	// KillFact makes the fact false on block exit.
	KillFact = dataflow.Kill
)

// Analysis-pass dispatch: the registry of container-level analyses.

// AnalysisInfo describes one registered analysis pass: its name,
// summary, dedicated HTTP route (when it has one), and parameters.
type AnalysisInfo = passes.Info

// AnalysisParamDoc documents one parameter of a registered pass.
type AnalysisParamDoc = passes.ParamDoc

// KPathsResult is a function's k-iteration Ball-Larus path profile
// (the kpaths pass).
type KPathsResult = passes.KPathsResult

// KPathEntry is one k-iteration path window of a KPathsResult.
type KPathEntry = passes.KPathEntry

// Result shapes of the other registered passes, for callers that
// type-assert RunAnalysis results.
type (
	// FuncsResult is the funcs pass's listing.
	FuncsResult = passes.FuncsResult
	// FuncInfo is one function's row in a FuncsResult.
	FuncInfo = passes.FuncInfo
	// TraceResult is the trace pass's full extraction of one function.
	TraceResult = passes.TraceResult
	// TraceInfo is one unique trace in a TraceResult.
	TraceInfo = passes.TraceInfo
	// BlockInfo is one dynamic block of a TraceInfo.
	BlockInfo = passes.BlockInfo
	// StatsResult is the stats pass's per-function summary.
	StatsResult = passes.StatsResult
	// CFGResult is the cfg pass's dynamic CFG rendering.
	CFGResult = passes.CFGResult
	// CFGNode is one node of a CFGResult.
	CFGNode = passes.CFGNode
	// GenKillQueryResult is the query pass's resolution (the
	// serializable counterpart of QueryResult).
	GenKillQueryResult = passes.QueryResult
)

// Analyses lists every registered analysis pass, in name order.
func Analyses() []AnalysisInfo { return passes.Infos() }

// RunAnalysis executes a registered analysis pass against an opened
// container — the same dispatch the HTTP /analyze endpoint and
// twpp-query use, so results agree byte-for-byte across surfaces.
// source labels the container in the result (the JSON "file" field);
// params holds the pass's parameters as strings, exactly as they would
// appear in a query string. The result is the pass's JSON-marshalable
// result struct.
func RunAnalysis(ctx context.Context, c Container, pass, source string, params map[string]string) (any, error) {
	return passes.Run(ctx, pass, c, passes.Params{Source: source, Values: params})
}

// KPathProfile computes function fn's k-iteration Ball-Larus path
// profile from the container's timestamp series: every window of k
// consecutive loop iterations with execution counts, hottest first.
// At k=1 this is the per-iteration acyclic path profile.
func KPathProfile(c Container, fn FuncID, k int) (*KPathsResult, error) {
	return KPathProfileContext(context.Background(), c, fn, k)
}

// KPathProfileContext is KPathProfile with cooperative cancellation.
func KPathProfileContext(ctx context.Context, c Container, fn FuncID, k int) (*KPathsResult, error) {
	res, err := RunAnalysis(ctx, c, "kpaths", "", map[string]string{
		"func": fmt.Sprint(int(fn)),
		"k":    fmt.Sprint(k),
	})
	if err != nil {
		return nil, err
	}
	return res.(*KPathsResult), nil
}

// Query answers the profile-limited data flow query <T(n), n>_d: does
// the fact defined by effect hold immediately before every execution
// of block n in the given dynamic CFG? effect maps each block to its
// GEN/KILL behaviour. Facade-only: g is an in-memory dynamic CFG and
// effect is a function, so this helper is not a registered pass.
func Query(g *TGraph, effect func(BlockID) Effect, n BlockID) (*QueryResult, error) {
	return dataflow.SolveAll(g, dataflow.ProblemFunc(effect), n)
}

// QueryContext is Query with cooperative cancellation: ctx is polled
// once per backward propagation step, so a per-request deadline bounds
// the work a single query may consume (the twpp-serve request path).
func QueryContext(ctx context.Context, g *TGraph, effect func(BlockID) Effect, n BlockID) (*QueryResult, error) {
	return dataflow.SolveAllCtx(ctx, g, dataflow.ProblemFunc(effect), n)
}

// QueryAt restricts Query to a subset T of n's execution timestamps.
func QueryAt(g *TGraph, effect func(BlockID) Effect, n BlockID, T Seq) (*QueryResult, error) {
	return dataflow.Solve(g, dataflow.ProblemFunc(effect), n, T)
}

// LoadRedundancy measures, for every array load site of function fn,
// how often the loaded value was already available during the
// execution recorded in tg (paper §4.3.1 / Figure 9).
func (p *Program) LoadRedundancy(fn FuncID, tg *TGraph) ([]*LoadReport, error) {
	return redundancy.AnalyzeFunction(p.CFG, fn, tg)
}

// MainTrace builds the dynamic CFG of the root (main) invocation of a
// run — the common starting point for the analyses. The program
// should have been compiled with PerStatement granularity for
// statement-level results.
func (r *Run) MainTrace() *TGraph {
	return dataflow.BuildFromPath(wpp.PathTrace(r.WPP.Traces[r.WPP.Root.Trace]))
}

// NewSlicer prepares dynamic slicing for function fn over the
// execution recorded in tg (paper §4.3.2 / Figures 10-11). The
// returned slicer offers the three Agrawal-Horgan approaches.
func (p *Program) NewSlicer(fn FuncID, tg *TGraph) (*slicing.Slicer, error) {
	g := p.CFG.Graph(cfg.FuncID(fn))
	if g == nil {
		return nil, errNoFunc(fn)
	}
	return slicing.New(g, tg), nil
}

// Currency determines whether Var is current at the breakpoint
// instance (block, t) of the optimized execution in tg, given the
// optimizer's code motion m (paper §4.3.2 / Figure 12).
func Currency(tg *TGraph, m Motion, breakpoint BlockID, t Timestamp) (*CurrencyVerdict, error) {
	return currency.At(tg, m, breakpoint, t)
}

// CurrencyAll classifies every breakpoint instance at once, returning
// the timestamp sets where the variable is current and non-current.
func CurrencyAll(tg *TGraph, m Motion, breakpoint BlockID) (current, nonCurrent Seq, err error) {
	return currency.AtAll(tg, m, breakpoint)
}

type noFuncError FuncID

func (e noFuncError) Error() string { return "twpp: no such function id" }

func errNoFunc(fn FuncID) error { return noFuncError(fn) }
