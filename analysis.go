package twpp

import (
	"context"

	"twpp/internal/cfg"
	"twpp/internal/currency"
	"twpp/internal/dataflow"
	"twpp/internal/redundancy"
	"twpp/internal/slicing"
	"twpp/internal/wpp"
)

// This file exposes the paper's three applications (§4.3) through the
// facade: profile-guided load-redundancy analysis, dynamic slicing,
// and dynamic currency determination, plus the underlying
// profile-limited GEN-KILL query engine.

// Re-exported analysis types.
type (
	// Effect is a block's effect on a data flow fact (Transparent,
	// GenFact, or KillFact).
	Effect = dataflow.Effect
	// QueryResult is the resolution of a profile-limited data flow
	// query.
	QueryResult = dataflow.Result
	// LoadReport is a load site's dynamic redundancy measurement.
	LoadReport = redundancy.Report
	// LoadSite identifies an array load instruction.
	LoadSite = redundancy.LoadSite
	// SliceCriterion selects what to slice on.
	SliceCriterion = slicing.Criterion
	// Slice is a dynamic slicing result.
	Slice = slicing.Slice
	// Motion describes a code-motion transformation for currency
	// determination.
	Motion = currency.Motion
	// CurrencyVerdict is the current/non-current determination for
	// one breakpoint instance.
	CurrencyVerdict = currency.Verdict
)

// Effect values for GEN-KILL problems.
const (
	// TransparentFact leaves the fact unchanged.
	TransparentFact = dataflow.Transparent
	// GenFact makes the fact true on block exit.
	GenFact = dataflow.Gen
	// KillFact makes the fact false on block exit.
	KillFact = dataflow.Kill
)

// Query answers the profile-limited data flow query <T(n), n>_d: does
// the fact defined by effect hold immediately before every execution
// of block n in the given dynamic CFG? effect maps each block to its
// GEN/KILL behaviour.
func Query(g *TGraph, effect func(BlockID) Effect, n BlockID) (*QueryResult, error) {
	return dataflow.SolveAll(g, dataflow.ProblemFunc(effect), n)
}

// QueryContext is Query with cooperative cancellation: ctx is polled
// once per backward propagation step, so a per-request deadline bounds
// the work a single query may consume (the twpp-serve request path).
func QueryContext(ctx context.Context, g *TGraph, effect func(BlockID) Effect, n BlockID) (*QueryResult, error) {
	return dataflow.SolveAllCtx(ctx, g, dataflow.ProblemFunc(effect), n)
}

// QueryAt restricts Query to a subset T of n's execution timestamps.
func QueryAt(g *TGraph, effect func(BlockID) Effect, n BlockID, T Seq) (*QueryResult, error) {
	return dataflow.Solve(g, dataflow.ProblemFunc(effect), n, T)
}

// LoadRedundancy measures, for every array load site of function fn,
// how often the loaded value was already available during the
// execution recorded in tg (paper §4.3.1 / Figure 9).
func (p *Program) LoadRedundancy(fn FuncID, tg *TGraph) ([]*LoadReport, error) {
	return redundancy.AnalyzeFunction(p.CFG, fn, tg)
}

// MainTrace builds the dynamic CFG of the root (main) invocation of a
// run — the common starting point for the analyses. The program
// should have been compiled with PerStatement granularity for
// statement-level results.
func (r *Run) MainTrace() *TGraph {
	return dataflow.BuildFromPath(wpp.PathTrace(r.WPP.Traces[r.WPP.Root.Trace]))
}

// NewSlicer prepares dynamic slicing for function fn over the
// execution recorded in tg (paper §4.3.2 / Figures 10-11). The
// returned slicer offers the three Agrawal-Horgan approaches.
func (p *Program) NewSlicer(fn FuncID, tg *TGraph) (*slicing.Slicer, error) {
	g := p.CFG.Graph(cfg.FuncID(fn))
	if g == nil {
		return nil, errNoFunc(fn)
	}
	return slicing.New(g, tg), nil
}

// Currency determines whether Var is current at the breakpoint
// instance (block, t) of the optimized execution in tg, given the
// optimizer's code motion m (paper §4.3.2 / Figure 12).
func Currency(tg *TGraph, m Motion, breakpoint BlockID, t Timestamp) (*CurrencyVerdict, error) {
	return currency.At(tg, m, breakpoint, t)
}

// CurrencyAll classifies every breakpoint instance at once, returning
// the timestamp sets where the variable is current and non-current.
func CurrencyAll(tg *TGraph, m Motion, breakpoint BlockID) (current, nonCurrent Seq, err error) {
	return currency.AtAll(tg, m, breakpoint)
}

type noFuncError FuncID

func (e noFuncError) Error() string { return "twpp: no such function id" }

func errNoFunc(fn FuncID) error { return noFuncError(fn) }
