module twpp

go 1.22
