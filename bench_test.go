// Benchmarks regenerating each table and figure of Zhang & Gupta
// (PLDI 2001). Each BenchmarkTableN/BenchmarkFigureN times the
// operation the corresponding table or figure measures, on a scaled
// instance of the synthetic workloads; the printed report metrics
// (ReportMetric) carry the paper-facing numbers (compaction factors,
// speedups). Run the full-scale experiment suite with
// cmd/twpp-bench, which prints the tables themselves.
package twpp_test

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"twpp"
	"twpp/internal/bench"
	"twpp/internal/cfg"
	"twpp/internal/core"
	"twpp/internal/currency"
	"twpp/internal/dataflow"
	"twpp/internal/figures"
	"twpp/internal/interp"
	"twpp/internal/lzw"
	"twpp/internal/minilang"
	"twpp/internal/sequitur"
	"twpp/internal/slicing"
	"twpp/internal/storage"
	"twpp/internal/trace"
	"twpp/internal/wpp"
	"twpp/internal/wppfile"
)

// benchScale keeps the per-iteration work small enough for go test
// -bench while preserving workload shape. cmd/twpp-bench runs scale 1.
const benchScale = 0.10

// buildWorkload traces one profile's program (setup helper, untimed).
func buildWorkload(b *testing.B, name string) *trace.RawWPP {
	b.Helper()
	return buildWorkloadScale(b, name, benchScale)
}

// buildWorkloadScale traces one profile's program at an explicit
// scale, for tests and benchmarks alike.
func buildWorkloadScale(tb testing.TB, name string, scale float64) *trace.RawWPP {
	tb.Helper()
	p, err := bench.ProfileByName(name)
	if err != nil {
		tb.Fatal(err)
	}
	src := p.Generate(scale)
	parsed, err := minilang.Parse(src)
	if err != nil {
		tb.Fatal(err)
	}
	prog, err := cfg.Build(parsed, cfg.MaxBlocks)
	if err != nil {
		tb.Fatal(err)
	}
	names := make([]string, len(parsed.Funcs))
	for i, fn := range parsed.Funcs {
		names[i] = fn.Name
	}
	b := trace.NewBuilder(names)
	if _, err := interp.Run(prog, b, nil, interp.Limits{}); err != nil {
		tb.Fatal(err)
	}
	return b.Finish()
}

// BenchmarkTable1 times WPP collection (traced execution), whose
// output sizes are Table 1's rows.
func BenchmarkTable1(b *testing.B) {
	p, err := bench.ProfileByName("130.li-like")
	if err != nil {
		b.Fatal(err)
	}
	src := p.Generate(benchScale)
	parsed, err := minilang.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	prog, err := cfg.Build(parsed, cfg.MaxBlocks)
	if err != nil {
		b.Fatal(err)
	}
	names := make([]string, len(parsed.Funcs))
	for i, fn := range parsed.Funcs {
		names[i] = fn.Name
	}
	b.ReportAllocs()
	b.ResetTimer()
	var blocks int
	for i := 0; i < b.N; i++ {
		tb := trace.NewBuilder(names)
		if _, err := interp.Run(prog, tb, nil, interp.Limits{}); err != nil {
			b.Fatal(err)
		}
		blocks = tb.Finish().NumBlocks()
	}
	b.ReportMetric(float64(blocks), "trace-blocks")
}

// BenchmarkTable2 times the three compaction transformations and
// reports their factors.
func BenchmarkTable2(b *testing.B) {
	w := buildWorkload(b, "130.li-like")
	b.ReportAllocs()
	b.ResetTimer()
	var stats wpp.Stats
	var tb, db int
	for i := 0; i < b.N; i++ {
		c, s := wpp.Compact(w)
		tw := core.FromCompacted(c)
		stats = s
		tb, db = tw.SizeStats()
	}
	b.ReportMetric(float64(stats.RawTraceBytes)/float64(stats.AfterRedundancy), "x-redundancy")
	b.ReportMetric(float64(stats.AfterRedundancy)/float64(stats.AfterDictionary), "x-dictionary")
	b.ReportMetric(float64(stats.AfterDictionary)/float64(tb+db), "x-twpp")
}

// BenchmarkTable3 times full compacted-file production (including the
// LZW-compressed DCG) and reports the overall compaction factor.
func BenchmarkTable3(b *testing.B) {
	w := buildWorkload(b, "132.ijpeg-like")
	dir := b.TempDir()
	path := dir + "/t.twpp"
	rawDCG, rawTr := w.RawSizes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, _ := wpp.Compact(w)
		tw := core.FromCompacted(c)
		if err := wppfile.WriteCompacted(path, tw); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	fi, err := os.Stat(path)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(rawDCG+rawTr)/float64(fi.Size()), "x-overall")
}

// BenchmarkTable4Compacted times indexed per-function extraction (the
// paper's column C).
func BenchmarkTable4Compacted(b *testing.B) {
	w := buildWorkload(b, "126.gcc-like")
	c, _ := wpp.Compact(w)
	tw := core.FromCompacted(c)
	path := b.TempDir() + "/t.twpp"
	if err := wppfile.WriteCompacted(path, tw); err != nil {
		b.Fatal(err)
	}
	cf, err := wppfile.OpenCompacted(path)
	if err != nil {
		b.Fatal(err)
	}
	defer cf.Close()
	fns := cf.Functions()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cf.ExtractFunction(fns[i%len(fns)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4Uncompacted times full-scan extraction (the paper's
// column U).
func BenchmarkTable4Uncompacted(b *testing.B) {
	w := buildWorkload(b, "126.gcc-like")
	path := b.TempDir() + "/t.wpp"
	if err := wppfile.WriteRaw(path, w); err != nil {
		b.Fatal(err)
	}
	c, _ := wpp.Compact(w)
	_ = c
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wppfile.ScanRawForFunction(path, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable5Sequitur times Larus-style extraction: decode the
// grammar and expand it collecting one function's traces.
func BenchmarkTable5Sequitur(b *testing.B) {
	w := buildWorkload(b, "130.li-like")
	comp := sequitur.CompressWPP(w.Linear())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := comp.ExtractFunction(1); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(comp.Size()), "grammar-bytes")
}

// BenchmarkTable5Compress times Sequitur grammar construction itself.
func BenchmarkTable5Compress(b *testing.B) {
	w := buildWorkload(b, "134.perl-like")
	stream := w.Linear()
	b.SetBytes(int64(len(stream) * 4))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sequitur.CompressWPP(stream)
	}
}

// BenchmarkTable6 times construction of timestamp-annotated dynamic
// CFGs (the representation whose sizes Table 6 reports).
func BenchmarkTable6(b *testing.B) {
	w := buildWorkload(b, "099.go-like")
	c, _ := wpp.Compact(w)
	tw := core.FromCompacted(c)
	// Pick the hottest function with at least one trace.
	var ft *core.FunctionTWPP
	for f := range tw.Funcs {
		cand := &tw.Funcs[f]
		if len(cand.Traces) > 0 && (ft == nil || cand.CallCount > ft.CallCount) {
			ft = cand
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dataflow.Build(ft, i%len(ft.Traces)); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	avgC, avgRaw := tw.VectorStats()
	b.ReportMetric(avgC, "avg-vec-compact")
	b.ReportMetric(avgRaw, "avg-vec-raw")
}

// BenchmarkFigure8 times the redundancy-CDF computation.
func BenchmarkFigure8(b *testing.B) {
	w := buildWorkload(b, "126.gcc-like")
	c, _ := wpp.Compact(w)
	uniques, calls := c.UniqueTraceDistribution()
	r := &bench.Result{Uniques: uniques, CallCounts: calls}
	th := []int{1, 2, 5, 10, 25, 50, 100, 200, 300}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.RedundancyCDF(th)
	}
}

// BenchmarkFigure9 times the load-redundancy demand-driven query of
// Figure 9 (the 100-iteration, 3-path loop).
func BenchmarkFigure9(b *testing.B) {
	var path wpp.PathTrace
	add := func(blocks []cfg.BlockID, n int) {
		for i := 0; i < n; i++ {
			path = append(path, blocks...)
		}
	}
	add([]cfg.BlockID{1, 2, 3, 4, 5}, 40)
	add([]cfg.BlockID{1, 2, 7, 4, 5}, 20)
	add([]cfg.BlockID{1, 6, 7, 8, 5}, 40)
	tg := dataflow.BuildFromPath(path)
	prob := &dataflow.GenKillProblem{
		GenBlocks:  map[cfg.BlockID]bool{1: true},
		KillBlocks: map[cfg.BlockID]bool{6: true},
	}
	b.ReportAllocs()
	b.ResetTimer()
	var queries int
	for i := 0; i < b.N; i++ {
		res, err := dataflow.SolveAll(tg, prob, 4)
		if err != nil {
			b.Fatal(err)
		}
		queries = res.Queries
	}
	b.ReportMetric(float64(queries), "queries")
}

// BenchmarkFigure10 times the three dynamic slicing algorithms on the
// paper's example.
func BenchmarkFigure10(b *testing.B) {
	prog, err := twpp.CompileMode(figure10Src, twpp.PerStatement)
	if err != nil {
		b.Fatal(err)
	}
	run, err := prog.Trace([]int64{3, -4, 3, -2})
	if err != nil {
		b.Fatal(err)
	}
	tg := dataflow.BuildFromPath(wpp.PathTrace(run.WPP.Traces[run.WPP.Root.Trace]))
	crit := slicing.Criterion{Block: 14, Vars: []cfg.Loc{{Var: "Z"}}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := slicing.New(prog.CFG.Graphs[0], tg)
		if _, err := s.Approach1(crit); err != nil {
			b.Fatal(err)
		}
		if _, err := s.Approach2(crit); err != nil {
			b.Fatal(err)
		}
		if _, err := s.Approach3(crit); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure12 times currency determination over a looped trace.
func BenchmarkFigure12(b *testing.B) {
	if err := figures.Print(discard{}, 12); err != nil {
		b.Fatal(err)
	}
	var path wpp.PathTrace
	for i := 0; i < 500; i++ {
		if i%2 == 0 {
			path = append(path, 1, 2, 3)
		} else {
			path = append(path, 1, 4, 3)
		}
	}
	tg := dataflow.BuildFromPath(path)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := currencyAtAll(tg); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------
// Parallel pipeline benchmarks.
// ---------------------------------------------------------------------

// parallelWorkerCounts returns the worker counts the parallel
// benchmarks sweep: 1 (the sequential baseline), 2, 4, and GOMAXPROCS
// when it exceeds 4. On a 4+-core machine the gcc-like profile shows
// >= 2x at 4 workers; output is byte-identical at every point.
func parallelWorkerCounts() []int {
	counts := []int{1, 2, 4}
	if p := runtime.GOMAXPROCS(0); p > 4 {
		counts = append(counts, p)
	}
	return counts
}

// BenchmarkParallelCompact times the full compact -> timestamp-invert
// -> encode pipeline at increasing worker counts on each of the five
// SPECint-like profiles.
func BenchmarkParallelCompact(b *testing.B) {
	for _, p := range bench.Profiles() {
		b.Run(p.Name, func(b *testing.B) {
			w := buildWorkload(b, p.Name)
			for _, workers := range parallelWorkerCounts() {
				b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						c, _ := wpp.CompactWorkers(w, workers)
						tw := core.FromCompactedWorkers(c, workers)
						if _, err := wppfile.EncodeCompactedWorkers(tw, workers); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		})
	}
}

// BenchmarkConcurrentExtract hammers one compacted file from
// GOMAXPROCS x 4 goroutines, sweeping the storage backend (positioned
// file reads vs a read-only memory mapping) and the decode cache off
// and on. With the cache enabled, every post-warmup extraction is a
// hit and skips both the read and the decode; the hit rate is
// reported. The uncached backend pair is the file-vs-mmap delta
// `make bench-mmap` records.
func BenchmarkConcurrentExtract(b *testing.B) {
	w := buildWorkload(b, "126.gcc-like")
	c, _ := wpp.Compact(w)
	tw := core.FromCompacted(c)
	path := b.TempDir() + "/t.twpp"
	if err := wppfile.WriteCompacted(path, tw); err != nil {
		b.Fatal(err)
	}
	for _, backend := range []storage.Kind{storage.KindFile, storage.KindMmap} {
		for _, cacheEntries := range []int{0, 256} {
			b.Run(fmt.Sprintf("backend=%s/cache=%d", backend, cacheEntries), func(b *testing.B) {
				cf, err := wppfile.OpenCompactedOptions(path, wppfile.OpenOptions{
					Backend:      backend,
					CacheEntries: cacheEntries,
				})
				if err != nil {
					b.Fatal(err)
				}
				defer cf.Close()
				fns := cf.Functions()
				b.ReportAllocs()
				b.SetParallelism(4)
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					i := 0
					for pb.Next() {
						if _, err := cf.ExtractFunction(fns[i%len(fns)]); err != nil {
							b.Fatal(err)
						}
						i++
					}
				})
				b.StopTimer()
				if hits, misses := cf.CacheStats(); hits+misses > 0 {
					b.ReportMetric(float64(hits)/float64(hits+misses), "hit-rate")
				}
			})
		}
	}
}

// BenchmarkPooledExtractScale sweeps warm pooled extraction
// (ExtractFunctionInto, decode cache off, one private ExtractBuffer
// per goroutine) over the GOMAXPROCS 1/4/8 axis — the in-process half
// of the multi-core scale-out story `make bench-scale` records for
// the serving path. allocs/op must read 0 at every point; ns/op is
// the per-extract latency. The axis is clamped to NumCPU: points past
// it would measure one core's scheduler overhead, not scale-out.
func BenchmarkPooledExtractScale(b *testing.B) {
	w := buildWorkload(b, "126.gcc-like")
	c, _ := wpp.Compact(w)
	path := b.TempDir() + "/scale.twpp"
	if err := wppfile.WriteCompacted(path, core.FromCompacted(c)); err != nil {
		b.Fatal(err)
	}
	for _, procs := range bench.ClampProcs(bench.DefaultScaleProcs, false) {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			old := runtime.GOMAXPROCS(procs)
			defer runtime.GOMAXPROCS(old)
			cf, err := wppfile.OpenCompactedOptions(path, wppfile.OpenOptions{})
			if err != nil {
				b.Fatal(err)
			}
			defer cf.Close()
			fns := cf.Functions()
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				buf := wppfile.GetExtractBuffer()
				defer wppfile.PutExtractBuffer(buf)
				// Warm this goroutine's buffer outside the measured ops
				// would require StopTimer coordination; instead the first
				// len(fns) iterations amortize to zero against b.N.
				i := 0
				for pb.Next() {
					if _, err := cf.ExtractFunctionInto(fns[i%len(fns)], buf); err != nil {
						b.Fatal(err)
					}
					i++
				}
			})
		})
	}
}

// ---------------------------------------------------------------------
// Ablation benchmarks: quantify the design decisions DESIGN.md calls
// out.
// ---------------------------------------------------------------------

// BenchmarkAblationSeriesVsRawTimestamps compares storing a loop
// block's timestamps as arithmetic series against a raw list, the
// core TWPP design decision.
func BenchmarkAblationSeriesVsRawTimestamps(b *testing.B) {
	ts := make([]core.Timestamp, 100000)
	for i := range ts {
		ts[i] = core.Timestamp(2 + 5*i)
	}
	b.Run("series", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := core.CompactSeries(ts)
			_ = s.Shift(-1)
		}
		b.ReportMetric(float64(core.CompactSeries(ts).Words()), "words")
	})
	b.Run("raw", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out := make([]core.Timestamp, len(ts))
			for j, t := range ts {
				out[j] = t - 1
			}
		}
		b.ReportMetric(float64(len(ts)), "words")
	})
}

// BenchmarkAblationDCGCompression compares LZW against storing the
// DCG uncompressed.
func BenchmarkAblationDCGCompression(b *testing.B) {
	w := buildWorkload(b, "126.gcc-like")
	raw := w.EncodeDCG()
	b.Run("lzw", func(b *testing.B) {
		b.SetBytes(int64(len(raw)))
		var n int
		for i := 0; i < b.N; i++ {
			n = len(lzw.Compress(raw))
		}
		b.ReportMetric(float64(len(raw))/float64(n), "x-ratio")
	})
	b.Run("none", func(b *testing.B) {
		b.SetBytes(int64(len(raw)))
		for i := 0; i < b.N; i++ {
			_ = raw
		}
		b.ReportMetric(1.0, "x-ratio")
	})
}

// The paper's Figure 10 program (shared with the slicing benchmark).
const figure10Src = `
func main() {
    read N;
    var I = 1;
    var J = 0;
    while (I <= N) {
        read X;
        if (X < 0) {
            Y = f1(X);
        } else {
            Y = f2(X);
        }
        Z = f3(Y);
        print(Z);
        J = 1;
        I = I + 1;
    }
    Z = Z + J;
    print(Z);
}
func f1(x) { return 0 - x; }
func f2(x) { return x * 2; }
func f3(y) { return y + 1; }
`

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

func currencyAtAll(tg *dataflow.TGraph) (core.Seq, core.Seq, error) {
	return currencyAll(tg)
}

func currencyAll(tg *dataflow.TGraph) (core.Seq, core.Seq, error) {
	m := currency.Motion{Var: "X", From: 1, To: 2}
	return currency.AtAll(tg, m, 3)
}

// BenchmarkStreamCompact compares the batch pipeline (slurp the file,
// compact, invert, encode to a byte slice) against the streaming
// pipeline on the same raw file. The report metrics carry each
// variant's peak heap growth — the number the streaming pipeline
// exists to shrink; both produce byte-identical output (pinned by
// TestStreamCompactMatchesBatch).
func BenchmarkStreamCompact(b *testing.B) {
	// A larger instance than benchScale: the pipelines differ in
	// asymptotics, so the gap needs a trace that dwarfs the fixed
	// costs (unique traces, DCG) both share.
	w := buildWorkloadScale(b, "126.gcc-like", 0.5)
	rawPath := filepath.Join(b.TempDir(), "t.wpp")
	if err := wppfile.WriteRaw(rawPath, w); err != nil {
		b.Fatal(err)
	}
	fi, err := os.Stat(rawPath)
	if err != nil {
		b.Fatal(err)
	}
	// The min over iterations is the cleanest peak estimate: GC
	// pacing can only add to an iteration's observed peak, never
	// subtract from it.
	minPeak := func(b *testing.B, run func() error) uint64 {
		b.Helper()
		var m uint64
		for i := 0; i < b.N; i++ {
			p, _, err := bench.PeakHeap(run)
			if err != nil {
				b.Fatal(err)
			}
			if m == 0 || p < m {
				m = p
			}
		}
		return m
	}
	b.Run("batch", func(b *testing.B) {
		b.SetBytes(fi.Size())
		peak := minPeak(b, func() error {
			w, err := wppfile.ReadRaw(rawPath)
			if err != nil {
				return err
			}
			c, _ := wpp.CompactWorkers(w, 1)
			tw := core.FromCompactedWorkers(c, 1)
			_, err = wppfile.EncodeCompactedWorkers(tw, 1)
			return err
		})
		b.ReportMetric(float64(peak), "peak-heap-bytes")
	})
	b.Run("stream", func(b *testing.B) {
		b.SetBytes(fi.Size())
		peak := minPeak(b, func() error {
			f, err := os.Open(rawPath)
			if err != nil {
				return err
			}
			defer f.Close()
			_, err = twpp.StreamCompact(f, discard{}, twpp.CompactOptions{Workers: 1})
			return err
		})
		b.ReportMetric(float64(peak), "peak-heap-bytes")
	})
}
