package twpp_test

import (
	"encoding/json"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"twpp/internal/core"
	"twpp/internal/storage"
	"twpp/internal/wpp"
	"twpp/internal/wppfile"
)

// mmapBenchBackend is one backend's uncached concurrent-extraction
// measurement in the BENCH_*_mmap.json snapshot.
type mmapBenchBackend struct {
	Backend      string  `json:"backend"`
	Extractions  int     `json:"extractions"`
	WallMs       float64 `json:"wall_ms"`
	ExtractPerS  float64 `json:"extract_per_s"`
	NsPerExtract float64 `json:"ns_per_extract"`
}

// mmapBenchReport is the machine-readable file-vs-mmap comparison
// (BENCH_*_mmap.json trajectory format).
type mmapBenchReport struct {
	Goroutines int                `json:"goroutines"`
	FileBytes  int64              `json:"file_bytes"`
	Functions  int                `json:"functions"`
	GoMaxProcs int                `json:"gomaxprocs"`
	Backends   []mmapBenchBackend `json:"backends"`
	// MmapSpeedup is file ns/extract divided by mmap ns/extract:
	// above 1.0 the mapping wins, below it positioned reads do.
	MmapSpeedup float64 `json:"mmap_speedup"`
}

// TestWriteMmapBenchJSON measures uncached concurrent extraction
// through the file and mmap backends over the same compacted file and
// writes the comparison to $MMAP_BENCH_OUT (skipped otherwise; driven
// by `make bench-mmap`).
func TestWriteMmapBenchJSON(t *testing.T) {
	out := os.Getenv("MMAP_BENCH_OUT")
	if out == "" {
		t.Skip("set MMAP_BENCH_OUT=path to write the mmap benchmark JSON")
	}
	const (
		goroutines   = 8
		perGoroutine = 2000
	)
	w := buildWorkloadScale(t, "126.gcc-like", 0.25)
	c, _ := wpp.Compact(w)
	tw := core.FromCompacted(c)
	path := t.TempDir() + "/t.twpp"
	if err := wppfile.WriteCompacted(path, tw); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}

	rep := mmapBenchReport{
		Goroutines: goroutines,
		FileBytes:  fi.Size(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	for _, kind := range []storage.Kind{storage.KindFile, storage.KindMmap} {
		cf, err := wppfile.OpenCompactedOptions(path, wppfile.OpenOptions{Backend: kind})
		if err != nil {
			t.Fatal(err)
		}
		fns := cf.Functions()
		rep.Functions = len(fns)

		// Warm up once so the first measured pass of either backend
		// sees the same page-cache state.
		for _, fn := range fns {
			if _, err := cf.ExtractFunction(fn); err != nil {
				t.Fatal(err)
			}
		}

		start := time.Now()
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < perGoroutine; i++ {
					if _, err := cf.ExtractFunction(fns[(g+i)%len(fns)]); err != nil {
						t.Error(err)
						return
					}
				}
			}(g)
		}
		wg.Wait()
		wall := time.Since(start)
		cf.Close()

		n := goroutines * perGoroutine
		rep.Backends = append(rep.Backends, mmapBenchBackend{
			Backend:      kind.String(),
			Extractions:  n,
			WallMs:       float64(wall.Nanoseconds()) / 1e6,
			ExtractPerS:  float64(n) / wall.Seconds(),
			NsPerExtract: float64(wall.Nanoseconds()) / float64(n),
		})
	}
	rep.MmapSpeedup = rep.Backends[0].NsPerExtract / rep.Backends[1].NsPerExtract

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (file %.0f ns/extract, mmap %.0f ns/extract, speedup %.2fx)",
		out, rep.Backends[0].NsPerExtract, rep.Backends[1].NsPerExtract, rep.MmapSpeedup)
}
