// Determinism tests for the parallel compaction pipeline: for any
// worker count, partitioning + DBB discovery (wpp.CompactWorkers), the
// timestamp inversion (core.FromCompactedWorkers), and the on-disk
// encoder (wppfile.EncodeCompactedWorkers) must produce results
// byte-identical to the sequential baseline.
package twpp_test

import (
	"bytes"
	"math/rand"
	"testing"

	"twpp"
	"twpp/internal/bench"
	"twpp/internal/cfg"
	"twpp/internal/core"
	"twpp/internal/trace"
	"twpp/internal/wpp"
	"twpp/internal/wppfile"
)

// encodePipeline runs the full compact -> invert -> encode pipeline at
// the given worker count.
func encodePipeline(tb testing.TB, w *trace.RawWPP, workers int) ([]byte, wpp.Stats) {
	tb.Helper()
	c, stats := wpp.CompactWorkers(w, workers)
	tw := core.FromCompactedWorkers(c, workers)
	data, err := wppfile.EncodeCompactedWorkers(tw, workers)
	if err != nil {
		tb.Fatal(err)
	}
	return data, stats
}

// TestParallelCompactDeterminism checks workers = 1, 2, 8 produce
// byte-identical compacted files and identical stats on all five
// SPECint-like profiles.
func TestParallelCompactDeterminism(t *testing.T) {
	for _, p := range bench.Profiles() {
		t.Run(p.Name, func(t *testing.T) {
			w := buildWorkloadScale(t, p.Name, 0.02)
			want, wantStats := encodePipeline(t, w, 1)
			for _, workers := range []int{2, 8} {
				got, gotStats := encodePipeline(t, w, workers)
				if gotStats != wantStats {
					t.Errorf("workers=%d: stats %+v != sequential %+v", workers, gotStats, wantStats)
				}
				if !bytes.Equal(got, want) {
					t.Errorf("workers=%d: encoded file differs from sequential (%d vs %d bytes)",
						workers, len(got), len(want))
				}
			}
		})
	}
}

// TestCompactOptsMatchesCompact checks the facade knob produces the
// same TWPP as the default path.
func TestCompactOptsMatchesCompact(t *testing.T) {
	w := buildWorkloadScale(t, "130.li-like", 0.02)
	twSeq, statsSeq := twpp.Compact(w)
	twPar, statsPar := twpp.CompactOpts(w, twpp.CompactOptions{Workers: 4})
	if statsSeq != statsPar {
		t.Errorf("stats differ: %+v vs %+v", statsSeq, statsPar)
	}
	seq, err := wppfile.EncodeCompacted(twSeq)
	if err != nil {
		t.Fatal(err)
	}
	par, err := wppfile.EncodeCompacted(twPar)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seq, par) {
		t.Error("CompactOpts(Workers:4) produced a different TWPP than Compact")
	}
}

// TestOpenFileOptsCache exercises the decode cache through the public
// facade: repeat extractions hit, and CacheStats reports them.
func TestOpenFileOptsCache(t *testing.T) {
	w := buildWorkloadScale(t, "130.li-like", 0.02)
	tw, _ := twpp.Compact(w)
	path := t.TempDir() + "/t.twpp"
	if err := twpp.WriteFileOpts(path, tw, twpp.CompactOptions{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	f, err := twpp.OpenFileOpts(path, twpp.OpenOptions{CacheEntries: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	fn := f.Functions()[0]
	for i := 0; i < 3; i++ {
		if _, err := f.ExtractFunction(fn); err != nil {
			t.Fatal(err)
		}
	}
	hits, misses := f.CacheStats()
	if misses != 1 || hits != 2 {
		t.Errorf("hits=%d misses=%d, want 2/1", hits, misses)
	}
}

// randWPP builds a pseudo-random WPP: nested calls across a handful of
// functions with random block sequences, exercising dedup, DBB
// discovery and DCG encoding on shapes the profiles don't cover.
func randWPP(rng *rand.Rand) *trace.RawWPP {
	names := []string{"main", "a", "b", "c", "d", "e"}
	b := trace.NewBuilder(names)
	b.EnterCall(0)
	var gen func(depth int)
	gen = func(depth int) {
		steps := 1 + rng.Intn(24)
		for i := 0; i < steps; i++ {
			b.Block(cfg.BlockID(1 + rng.Intn(10)))
			if depth < 4 && rng.Intn(5) == 0 {
				b.EnterCall(cfg.FuncID(1 + rng.Intn(len(names)-1)))
				gen(depth + 1)
				b.ExitCall()
			}
		}
	}
	gen(0)
	b.ExitCall()
	return b.Finish()
}

// FuzzParallelCompactDeterminism fuzzes random WPP shapes through the
// parallel pipeline, requiring byte-identical output at every worker
// count. The seeded corpus runs in ordinary `go test`.
func FuzzParallelCompactDeterminism(f *testing.F) {
	for seed := int64(0); seed < 8; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		w := randWPP(rand.New(rand.NewSource(seed)))
		want, wantStats := encodePipeline(t, w, 1)
		for _, workers := range []int{2, 8} {
			got, gotStats := encodePipeline(t, w, workers)
			if gotStats != wantStats {
				t.Fatalf("seed %d workers=%d: stats diverge", seed, workers)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("seed %d workers=%d: bytes diverge", seed, workers)
			}
		}
	})
}
