package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"twpp"
)

func writeTrace(t *testing.T, dir string) string {
	t.Helper()
	prog, err := twpp.Compile(`
func main() {
    var s = 0;
    for (var i = 0; i < 50; i = i + 1) {
        s = s + w(i % 2);
    }
    print(s);
}
func w(m) {
    var j = 0;
    while (j < 4) {
        j = j + 1;
    }
    return m + j;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	r, err := prog.Trace(nil)
	if err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(dir, "t.wpp")
	if err := twpp.WriteRawFile(p, r.WPP); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRunCompacts(t *testing.T) {
	dir := t.TempDir()
	in := writeTrace(t, dir)
	out := filepath.Join(dir, "t.twpp")
	seq := filepath.Join(dir, "t.seq")
	// -verify exercises the reopen-and-check pass on the fresh output.
	if err := run(context.Background(), compactConfig{in: in, out: out, seq: seq, workers: 2, verify: true}); err != nil {
		t.Fatal(err)
	}
	cf, err := twpp.OpenFile(out)
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	if len(cf.Functions()) != 2 {
		t.Errorf("functions = %v", cf.Functions())
	}
	if fi, err := os.Stat(seq); err != nil || fi.Size() == 0 {
		t.Errorf("sequitur baseline missing: %v", err)
	}
	// Compacted output smaller than the raw input.
	ri, _ := os.Stat(in)
	ci, _ := os.Stat(out)
	if ci.Size() >= ri.Size() {
		t.Errorf("compacted %d >= raw %d", ci.Size(), ri.Size())
	}
}

func TestRunStreamMatchesBatch(t *testing.T) {
	dir := t.TempDir()
	in := writeTrace(t, dir)
	batch := filepath.Join(dir, "batch.twpp")
	stream := filepath.Join(dir, "stream.twpp")
	if err := run(context.Background(), compactConfig{in: in, out: batch, workers: 2}); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), compactConfig{in: in, out: stream, workers: 2, stream: true, verify: true}); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(batch)
	if err != nil {
		t.Fatal(err)
	}
	s, err := os.ReadFile(stream)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, s) {
		t.Error("-stream output differs from batch output")
	}
	// -stream refuses the in-memory-only Sequitur baseline.
	if err := run(context.Background(), compactConfig{in: in, out: stream, seq: filepath.Join(dir, "t.seq"), workers: 1, stream: true}); err == nil {
		t.Error("-stream with -sequitur: want error")
	}
}

// -format 1 writes the legacy layout; -format 2 the sectioned default.
// Both must reopen cleanly and report their version, and v2 must be
// the default when no format is given.
func TestRunFormats(t *testing.T) {
	dir := t.TempDir()
	in := writeTrace(t, dir)
	for _, tc := range []struct {
		name   string
		format int
		want   int
	}{
		{"default is v2", 0, twpp.FormatV2},
		{"explicit v1", twpp.FormatV1, twpp.FormatV1},
		{"explicit v2", twpp.FormatV2, twpp.FormatV2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			out := filepath.Join(dir, tc.name+".twpp")
			if err := run(context.Background(), compactConfig{in: in, out: out, workers: 1, format: tc.format, verify: true}); err != nil {
				t.Fatal(err)
			}
			f, err := twpp.OpenFile(out)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			if got := f.FormatVersion(); got != tc.want {
				t.Errorf("FormatVersion() = %d, want %d", got, tc.want)
			}
		})
	}
	if err := run(context.Background(), compactConfig{in: in, format: 7}); err == nil {
		t.Error("bad -format: want error")
	}
}

func TestRunDefaultOutputName(t *testing.T) {
	dir := t.TempDir()
	in := writeTrace(t, dir)
	if err := run(context.Background(), compactConfig{in: in, workers: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(in + ".twpp"); err != nil {
		t.Errorf("default output missing: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(context.Background(), compactConfig{workers: 1}); err == nil {
		t.Error("missing input: want error")
	}
	if err := run(context.Background(), compactConfig{in: "/nonexistent/file.wpp", workers: 1}); err == nil {
		t.Error("absent input: want error")
	}
}

// -segment-bytes seals a segmented container directory; -verify walks
// the merged read surface, and the stream and batch pipelines seal
// identical segment sets.
func TestRunSegmented(t *testing.T) {
	dir := t.TempDir()
	in := writeTrace(t, dir)
	out := filepath.Join(dir, "t.twppd")
	if err := run(context.Background(), compactConfig{in: in, out: out, workers: 2, segBytes: 16, verify: true}); err != nil {
		t.Fatal(err)
	}
	set, err := twpp.OpenSegmented(out, twpp.OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	if set.SegmentCount() < 2 {
		t.Errorf("segment count = %d, want >= 2 at a 16-byte budget", set.SegmentCount())
	}
	if len(set.Functions()) != 2 {
		t.Errorf("functions = %v", set.Functions())
	}

	stream := filepath.Join(dir, "s.twppd")
	if err := run(context.Background(), compactConfig{in: in, out: stream, workers: 2, segBytes: 16, stream: true, verify: true}); err != nil {
		t.Fatal(err)
	}
	bm, err := os.ReadFile(filepath.Join(out, "MANIFEST"))
	if err != nil {
		t.Fatal(err)
	}
	sm, err := os.ReadFile(filepath.Join(stream, "MANIFEST"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bm, sm) {
		t.Error("-stream segmented manifest differs from batch manifest")
	}

	// Segments are sealed v2 files; the legacy layout cannot carry them.
	if err := run(context.Background(), compactConfig{in: in, segBytes: 16, format: twpp.FormatV1}); err == nil {
		t.Error("-segment-bytes with -format 1: want usage error")
	}
}

// With -segment-bytes and no -o, the default output name gains the
// .twppd directory suffix.
func TestRunSegmentedDefaultName(t *testing.T) {
	dir := t.TempDir()
	in := writeTrace(t, dir)
	if err := run(context.Background(), compactConfig{in: in, workers: 1, segBytes: 1 << 20}); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(in + ".twppd"); err != nil || !fi.IsDir() {
		t.Errorf("default segmented output missing or not a directory: %v", err)
	}
}
