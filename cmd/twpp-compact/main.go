// Command twpp-compact converts a raw WPP file into the compacted,
// indexed TWPP format, reporting the per-stage compaction factors of
// the paper's Table 2. It can also produce the Sequitur (Larus)
// baseline representation for comparison.
//
// Usage:
//
//	twpp-compact -in trace.wpp [-o trace.twpp] [-j workers] [-stream] [-sequitur trace.seq]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"twpp"
	"twpp/internal/cli"
)

func main() {
	var (
		in      = flag.String("in", "", "input raw WPP file (required)")
		out     = flag.String("o", "", "output compacted TWPP file (default: input with .twpp)")
		seq     = flag.String("sequitur", "", "also write the Sequitur-compressed baseline here")
		workers = flag.Int("j", 0, "compaction worker pool size (0 = GOMAXPROCS, 1 = sequential)")
		stream  = flag.Bool("stream", false, "streaming pipeline: bounded-memory ingestion, identical output")
		verb    = flag.Bool("v", true, "print compaction statistics")
	)
	flag.Parse()
	// Interrupt (ctrl-C) cancels the pipeline cooperatively: partial
	// output is removed and the tool exits with cli.ExitCanceled.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	err := run(ctx, *in, *out, *seq, *workers, *stream, *verb)
	stop()
	cli.Exit("twpp-compact", err)
}

func run(ctx context.Context, in, out, seqPath string, workers int, stream, verbose bool) error {
	if in == "" {
		return cli.Usagef("missing -in")
	}
	if out == "" {
		out = in + ".twpp"
	}
	opts := twpp.CompactOptions{Workers: workers}
	var (
		stats         twpp.CompactStats
		traceB, dictB int
		w             *twpp.RawWPP
	)
	if stream {
		if seqPath != "" {
			return cli.Usagef("-sequitur needs the whole WPP in memory; drop -stream")
		}
		res, err := twpp.StreamCompactFileContext(ctx, in, out, opts)
		if err != nil {
			return err
		}
		stats, traceB, dictB = res.Stats, res.TraceBytes, res.DictBytes
	} else {
		var err error
		w, err = twpp.ReadRawFile(in)
		if err != nil {
			return err
		}
		tw, s, err := twpp.CompactContext(ctx, w, opts)
		if err != nil {
			return err
		}
		if err := twpp.WriteFileOpts(out, tw, opts); err != nil {
			return err
		}
		stats = s
		traceB, dictB = tw.SizeStats()
	}
	if verbose {
		fmt.Printf("raw traces:          %10d bytes\n", stats.RawTraceBytes)
		fmt.Printf("after redundancy:    %10d bytes (x%.2f)\n", stats.AfterRedundancy,
			float64(stats.RawTraceBytes)/float64(stats.AfterRedundancy))
		fmt.Printf("after dictionaries:  %10d bytes (x%.2f)\n", stats.AfterDictionary,
			float64(stats.AfterRedundancy)/float64(stats.AfterDictionary))
		fmt.Printf("compacted TWPP:      %10d bytes (x%.2f)\n", traceB+dictB,
			float64(stats.AfterDictionary)/float64(traceB+dictB))
		fmt.Printf("calls %d, unique traces %d\n", stats.Calls, stats.UniqueTraces)
		if fi, err := os.Stat(out); err == nil {
			fmt.Printf("wrote %s (%d bytes on disk)\n", out, fi.Size())
		}
	}
	if seqPath != "" {
		c := twpp.CompressSequitur(w)
		if err := os.WriteFile(seqPath, c.Data, 0o644); err != nil {
			return err
		}
		if verbose {
			fmt.Printf("wrote %s (%d bytes, Sequitur baseline)\n", seqPath, c.Size())
		}
	}
	return nil
}
