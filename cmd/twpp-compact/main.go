// Command twpp-compact converts a raw WPP file into the compacted,
// indexed TWPP format, reporting the per-stage compaction factors of
// the paper's Table 2. It can also produce the Sequitur (Larus)
// baseline representation for comparison.
//
// Usage:
//
//	twpp-compact -in trace.wpp [-o trace.twpp] [-j workers] [-stream]
//	             [-format 2] [-segment-bytes n] [-verify]
//	             [-sequitur trace.seq]
//
// -format selects the container layout (2 = sectioned with checksums,
// the default; 1 = legacy). -segment-bytes writes a segmented
// container directory of sealed v2 segments with roughly that many
// bytes each, instead of one file; the default output name then gains
// a .twppd suffix. -verify reopens the output after writing and
// checks it end to end: every section checksum, plus a full decode of
// the call graph and every function's blocks. Verification failures
// exit with the same structured codes as reads (3 corrupt, 4
// truncated, 5 limit).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"twpp"
	"twpp/internal/cli"
)

// compactConfig carries the validated flag values run consumes.
type compactConfig struct {
	in       string
	out      string
	seq      string
	workers  int
	format   int
	segBytes int64
	stream   bool
	verify   bool
	verbose  bool
}

func main() {
	var c compactConfig
	flag.StringVar(&c.in, "in", "", "input raw WPP file (required)")
	flag.StringVar(&c.out, "o", "", "output compacted TWPP file (default: input with .twpp)")
	flag.StringVar(&c.seq, "sequitur", "", "also write the Sequitur-compressed baseline here")
	flag.IntVar(&c.workers, "j", 0, "compaction worker pool size (0 = GOMAXPROCS, 1 = sequential)")
	flag.IntVar(&c.format, "format", 0, "container format: 2 sectioned+checksums (default), 1 legacy")
	flag.Int64Var(&c.segBytes, "segment-bytes", 0, "write a segmented container directory with this per-segment byte budget (0 = single file)")
	flag.BoolVar(&c.stream, "stream", false, "streaming pipeline: bounded-memory ingestion, identical output")
	flag.BoolVar(&c.verify, "verify", false, "reopen the output and verify checksums plus a full decode")
	flag.BoolVar(&c.verbose, "v", true, "print compaction statistics")
	flag.Parse()
	// Interrupt (ctrl-C) cancels the pipeline cooperatively: partial
	// output is removed and the tool exits with cli.ExitCanceled.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	err := run(ctx, c)
	stop()
	cli.Exit("twpp-compact", err)
}

func run(ctx context.Context, c compactConfig) error {
	in, out, seqPath := c.in, c.out, c.seq
	verbose := c.verbose
	if in == "" {
		return cli.Usagef("missing -in")
	}
	switch c.format {
	case 0, twpp.FormatV1, twpp.FormatV2:
	default:
		return cli.Usagef("unknown -format %d (want 1 or 2)", c.format)
	}
	segmented := c.segBytes > 0
	if segmented && c.format == twpp.FormatV1 {
		return cli.Usagef("-segment-bytes seals v2 segments; drop -format 1")
	}
	if out == "" {
		if segmented {
			out = in + ".twppd"
		} else {
			out = in + ".twpp"
		}
	}
	opts := twpp.CompactOptions{Workers: c.workers, Format: c.format}
	segOpts := twpp.SegmentOptions{SegmentBytes: c.segBytes, Workers: c.workers}
	var (
		stats         twpp.CompactStats
		traceB, dictB int
		w             *twpp.RawWPP
	)
	if c.stream {
		if seqPath != "" {
			return cli.Usagef("-sequitur needs the whole WPP in memory; drop -stream")
		}
		var res *twpp.StreamResult
		var err error
		if segmented {
			res, err = twpp.StreamCompactSegmentedFileContext(ctx, in, out, segOpts, opts)
		} else {
			res, err = twpp.StreamCompactFileContext(ctx, in, out, opts)
		}
		if err != nil {
			return err
		}
		stats, traceB, dictB = res.Stats, res.TraceBytes, res.DictBytes
	} else {
		var err error
		w, err = twpp.ReadRawFile(in)
		if err != nil {
			return err
		}
		tw, s, err := twpp.CompactContext(ctx, w, opts)
		if err != nil {
			return err
		}
		if segmented {
			err = twpp.CompactSegmented(out, tw, segOpts)
		} else {
			err = twpp.WriteFileOpts(out, tw, opts)
		}
		if err != nil {
			return err
		}
		stats = s
		traceB, dictB = tw.SizeStats()
	}
	if c.verify {
		if err := verifyOutput(out); err != nil {
			return err
		}
		if verbose {
			fmt.Printf("verified %s: all section checksums and decodes ok\n", out)
		}
	}
	if verbose {
		fmt.Printf("raw traces:          %10d bytes\n", stats.RawTraceBytes)
		fmt.Printf("after redundancy:    %10d bytes (x%.2f)\n", stats.AfterRedundancy,
			float64(stats.RawTraceBytes)/float64(stats.AfterRedundancy))
		fmt.Printf("after dictionaries:  %10d bytes (x%.2f)\n", stats.AfterDictionary,
			float64(stats.AfterRedundancy)/float64(stats.AfterDictionary))
		fmt.Printf("compacted TWPP:      %10d bytes (x%.2f)\n", traceB+dictB,
			float64(stats.AfterDictionary)/float64(traceB+dictB))
		fmt.Printf("calls %d, unique traces %d\n", stats.Calls, stats.UniqueTraces)
		if fi, err := os.Stat(out); err == nil {
			fmt.Printf("wrote %s (%d bytes on disk)\n", out, fi.Size())
		}
	}
	if seqPath != "" {
		c := twpp.CompressSequitur(w)
		if err := os.WriteFile(seqPath, c.Data, 0o644); err != nil {
			return err
		}
		if verbose {
			fmt.Printf("wrote %s (%d bytes, Sequitur baseline)\n", seqPath, c.Size())
		}
	}
	return nil
}

// verifyOutput reopens the freshly written container and proves it
// readable end to end: eager section-checksum verification at open
// (v2), then a full decode of the dynamic call graph and of every
// function's trace block. Segmented directories get the same sweep
// through the merged read surface, so every sealed segment is
// checked. Errors keep their structured decode classes so
// cli.ExitCode reports 3/4/5 exactly as a later reader would.
func verifyOutput(path string) error {
	f, err := twpp.OpenContainer(path, twpp.OpenOptions{VerifyChecksums: true})
	if err != nil {
		return fmt.Errorf("verify %s: %w", path, err)
	}
	defer f.Close()
	if _, err := f.ReadDCG(); err != nil {
		return fmt.Errorf("verify %s: call graph: %w", path, err)
	}
	for _, fn := range f.Functions() {
		if _, err := f.ExtractFunction(fn); err != nil {
			return fmt.Errorf("verify %s: function %d: %w", path, fn, err)
		}
	}
	return nil
}
