// Command twpp-query answers queries against a compacted TWPP
// container — a single .twpp file or a segmented container directory
// (auto-detected by its manifest): listing functions (hottest first),
// extracting one function's path traces, and running profile-limited
// GEN-KILL data flow queries over a chosen trace.
//
// Usage:
//
//	twpp-query -in trace.twpp -list [-mmap] [-v]
//	twpp-query -in trace.twppd -func 3 [-trace 0] [-show] [-cache 64]
//	twpp-query -in trace.twpp -func 3 -trace 0 -block 4 -gen 1 -kill 6
//
// -cache N keeps up to N decoded function blocks in a sharded LRU so
// repeated extractions of hot functions skip I/O and decode. -mmap
// maps the file read-only instead of using positioned reads. -v first
// prints a header describing the container: format version, function
// count, and per-section sizes.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"twpp"
	"twpp/internal/cfg"
	"twpp/internal/cli"
	"twpp/internal/dataflow"
)

// queryConfig carries the validated flag values run consumes.
type queryConfig struct {
	in      string
	list    bool
	fn      int
	traceIx int
	show    bool
	block   int
	gen     string
	kill    string
	cache   int
	mmap    bool
	verbose bool
}

func main() {
	var c queryConfig
	flag.StringVar(&c.in, "in", "", "compacted TWPP file or segmented container directory (required)")
	flag.BoolVar(&c.list, "list", false, "list functions, hottest first")
	flag.IntVar(&c.fn, "func", -1, "function id to extract")
	flag.IntVar(&c.traceIx, "trace", 0, "unique trace index within the function")
	flag.BoolVar(&c.show, "show", false, "print the trace's timestamp mapping")
	flag.IntVar(&c.block, "block", 0, "query block: ask whether the fact holds before its executions")
	flag.StringVar(&c.gen, "gen", "", "comma-separated block ids that generate the fact")
	flag.StringVar(&c.kill, "kill", "", "comma-separated block ids that kill the fact")
	flag.IntVar(&c.cache, "cache", 0, "decoded-block LRU cache entries (0 = no cache)")
	flag.BoolVar(&c.mmap, "mmap", false, "read through a read-only memory mapping")
	flag.BoolVar(&c.verbose, "v", false, "print a container header: format version and section sizes")
	flag.Parse()
	cli.Exit("twpp-query", run(os.Stdout, c))
}

func run(out io.Writer, c queryConfig) error {
	fn, traceIx := c.fn, c.traceIx
	if c.in == "" {
		return cli.Usagef("missing -in")
	}
	opts := twpp.OpenOptions{CacheEntries: c.cache}
	if c.mmap {
		opts.Backend = twpp.BackendMmap
	}
	f, err := twpp.OpenContainer(c.in, opts)
	if err != nil {
		return err
	}
	defer f.Close()

	if c.verbose {
		hdr, dcg, blocks, err := f.SectionSizes()
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%s: container format v%d, %d functions, sections header=%d dcg=%d blocks=%d bytes\n",
			c.in, f.FormatVersion(), len(f.Functions()), hdr, dcg, blocks)
	}

	if c.list {
		fmt.Fprintf(out, "%-8s %-24s %s\n", "id", "name", "calls")
		names := f.Names()
		for _, id := range f.Functions() {
			name := fmt.Sprintf("func%d", id)
			if int(id) < len(names) {
				name = names[id]
			}
			fmt.Fprintf(out, "%-8d %-24s %d\n", id, name, f.CallCount(id))
		}
		return nil
	}
	if fn < 0 {
		return cli.Usagef("need -list or -func")
	}

	ft, err := f.ExtractFunction(twpp.FuncID(fn))
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "function %d: %d calls, %d unique traces, %d dictionaries\n",
		fn, ft.CallCount, len(ft.Traces), len(ft.Dicts))
	if traceIx < 0 || traceIx >= len(ft.Traces) {
		return cli.Usagef("trace index %d out of range", traceIx)
	}
	tr := ft.Traces[traceIx]
	fmt.Fprintf(out, "trace %d: length %d, %d distinct dynamic blocks\n", traceIx, tr.Len, len(tr.Blocks))
	if c.show {
		for _, bt := range tr.Blocks {
			fmt.Fprintf(out, "  %4d -> %s\n", bt.Block, bt.Times)
		}
	}

	if block := c.block; block > 0 {
		gens, err := parseBlocks(c.gen)
		if err != nil {
			return err
		}
		kills, err := parseBlocks(c.kill)
		if err != nil {
			return err
		}
		g, err := twpp.DynamicCFG(ft, traceIx)
		if err != nil {
			return err
		}
		prob := &dataflow.GenKillProblem{GenBlocks: gens, KillBlocks: kills}
		res, err := dataflow.SolveAll(g, prob, twpp.BlockID(block))
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "query <T(%d), %d>: holds %s\n", block, block, res.Holds())
		fmt.Fprintf(out, "  true:       %s (%d)\n", res.True, res.True.Count())
		fmt.Fprintf(out, "  false:      %s (%d)\n", res.False, res.False.Count())
		fmt.Fprintf(out, "  unresolved: %s (%d)\n", res.Unresolved, res.Unresolved.Count())
		fmt.Fprintf(out, "  frequency %.1f%%, %d queries, %d steps\n",
			100*res.Frequency(), res.Queries, res.Steps)
	}
	return nil
}

func parseBlocks(s string) (map[cfg.BlockID]bool, error) {
	out := map[cfg.BlockID]bool{}
	if s == "" {
		return out, nil
	}
	for _, p := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad block id %q: %w", p, err)
		}
		out[cfg.BlockID(v)] = true
	}
	return out, nil
}
