// Command twpp-query answers queries against a compacted TWPP
// container — a single .twpp file or a segmented container directory
// (auto-detected by its manifest): listing functions (hottest first),
// extracting one function's path traces, running profile-limited
// GEN-KILL data flow queries over a chosen trace, and computing
// k-iteration Ball-Larus path profiles.
//
// Usage:
//
//	twpp-query -in trace.twpp -list [-mmap] [-v]
//	twpp-query -in trace.twppd -func 3 [-trace 0] [-show] [-cache 64]
//	twpp-query -in trace.twpp -func 3 -trace 0 -block 4 -gen 1 -kill 6
//	twpp-query -in trace.twpp -func 3 -kpaths 2 [-top 10]
//
// Every query dispatches through the analysis-pass registry
// (internal/passes) — the same passes the twpp-serve HTTP endpoints
// run — so the underlying results agree across surfaces; this command
// renders them as text. -cache N keeps up to N decoded function
// blocks in a sharded LRU so repeated extractions of hot functions
// skip I/O and decode. -mmap maps the file read-only instead of using
// positioned reads. -v first prints a header describing the
// container: format version, function count, and per-section sizes.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"twpp"
	"twpp/internal/cli"
)

// queryConfig carries the validated flag values run consumes.
type queryConfig struct {
	in      string
	list    bool
	fn      int
	traceIx int
	show    bool
	block   int
	gen     string
	kill    string
	kpaths  int
	top     int
	cache   int
	mmap    bool
	verbose bool
}

func main() {
	var c queryConfig
	flag.StringVar(&c.in, "in", "", "compacted TWPP file or segmented container directory (required)")
	flag.BoolVar(&c.list, "list", false, "list functions, hottest first")
	flag.IntVar(&c.fn, "func", -1, "function id to extract")
	flag.IntVar(&c.traceIx, "trace", 0, "unique trace index within the function")
	flag.BoolVar(&c.show, "show", false, "print the trace's timestamp mapping")
	flag.IntVar(&c.block, "block", 0, "query block: ask whether the fact holds before its executions")
	flag.StringVar(&c.gen, "gen", "", "comma-separated block ids that generate the fact")
	flag.StringVar(&c.kill, "kill", "", "comma-separated block ids that kill the fact")
	flag.IntVar(&c.kpaths, "kpaths", 0, "compute the k-iteration path profile with this window length")
	flag.IntVar(&c.top, "top", 0, "with -kpaths, keep only the top N paths (0 = all)")
	flag.IntVar(&c.cache, "cache", 0, "decoded-block LRU cache entries (0 = no cache)")
	flag.BoolVar(&c.mmap, "mmap", false, "read through a read-only memory mapping")
	flag.BoolVar(&c.verbose, "v", false, "print a container header: format version and section sizes")
	flag.Parse()
	cli.Exit("twpp-query", run(os.Stdout, c))
}

// analyze dispatches one registered pass against the opened container.
func analyze(c twpp.Container, in, pass string, params map[string]string) (any, error) {
	return twpp.RunAnalysis(context.Background(), c, pass, in, params)
}

func run(out io.Writer, c queryConfig) error {
	fn, traceIx := c.fn, c.traceIx
	if c.in == "" {
		return cli.Usagef("missing -in")
	}
	opts := twpp.OpenOptions{CacheEntries: c.cache}
	if c.mmap {
		opts.Backend = twpp.BackendMmap
	}
	f, err := twpp.OpenContainer(c.in, opts)
	if err != nil {
		return err
	}
	defer f.Close()

	if c.verbose {
		hdr, dcg, blocks, err := f.SectionSizes()
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%s: container format v%d, %d functions, sections header=%d dcg=%d blocks=%d bytes\n",
			c.in, f.FormatVersion(), len(f.Functions()), hdr, dcg, blocks)
	}

	if c.list {
		res, err := analyze(f, c.in, "funcs", nil)
		if err != nil {
			return err
		}
		funcs := res.(*twpp.FuncsResult)
		fmt.Fprintf(out, "%-8s %-24s %s\n", "id", "name", "calls")
		for _, fi := range funcs.Functions {
			fmt.Fprintf(out, "%-8d %-24s %d\n", fi.ID, fi.Name, fi.Calls)
		}
		return nil
	}
	if fn < 0 {
		return cli.Usagef("need -list or -func")
	}

	if c.kpaths != 0 {
		res, err := analyze(f, c.in, "kpaths", map[string]string{
			"func": strconv.Itoa(fn),
			"k":    strconv.Itoa(c.kpaths),
			"top":  strconv.Itoa(c.top),
		})
		if err != nil {
			return err
		}
		printKPaths(out, res.(*twpp.KPathsResult))
		return nil
	}

	res, err := analyze(f, c.in, "trace", map[string]string{"func": strconv.Itoa(fn)})
	if err != nil {
		return err
	}
	tres := res.(*twpp.TraceResult)
	fmt.Fprintf(out, "function %d: %d calls, %d unique traces, %d dictionaries\n",
		fn, tres.Calls, len(tres.Traces), tres.Dicts)
	if traceIx < 0 || traceIx >= len(tres.Traces) {
		return cli.Usagef("trace index %d out of range", traceIx)
	}
	tr := tres.Traces[traceIx]
	fmt.Fprintf(out, "trace %d: length %d, %d distinct dynamic blocks\n", traceIx, tr.Len, len(tr.Blocks))
	if c.show {
		for _, bt := range tr.Blocks {
			fmt.Fprintf(out, "  %4d -> %s\n", bt.Block, bt.Times)
		}
	}

	if block := c.block; block > 0 {
		res, err := analyze(f, c.in, "query", map[string]string{
			"func":  strconv.Itoa(fn),
			"trace": strconv.Itoa(traceIx),
			"block": strconv.Itoa(block),
			"gen":   c.gen,
			"kill":  c.kill,
		})
		if err != nil {
			return err
		}
		q := res.(*twpp.GenKillQueryResult)
		fmt.Fprintf(out, "query <T(%d), %d>: holds %s\n", block, block, q.Holds)
		fmt.Fprintf(out, "  true:       %s (%d)\n", q.True, q.TrueCount)
		fmt.Fprintf(out, "  false:      %s (%d)\n", q.False, q.FalseCount)
		fmt.Fprintf(out, "  unresolved: %s (%d)\n", q.Unresolved, q.UnresolvedCount)
		fmt.Fprintf(out, "  frequency %.1f%%, %d queries, %d steps\n",
			100*q.Frequency, q.Queries, q.Steps)
	}
	return nil
}

// printKPaths renders a k-iteration path profile: header, then one row
// per path window, hottest first — iteration paths joined with " | ",
// blocks within an iteration joined with " ".
func printKPaths(out io.Writer, res *twpp.KPathsResult) {
	fmt.Fprintf(out, "k-paths of function %d (%s): k=%d, %d calls, %d iterations, %d windows\n",
		res.Func, res.Name, res.K, res.Calls, res.Iterations, res.Windows)
	for _, p := range res.Paths {
		segs := make([]string, len(p.Seq))
		for i, it := range p.Seq {
			blks := make([]string, len(it))
			for j, b := range it {
				blks[j] = strconv.Itoa(b)
			}
			segs[i] = strings.Join(blks, " ")
		}
		fmt.Fprintf(out, "  %6dx  %s\n", p.Count, strings.Join(segs, " | "))
	}
}
