package main

import (
	"io"
	"path/filepath"
	"strings"
	"testing"

	"twpp"
	"twpp/internal/cli"
)

func writeTWPP(t *testing.T, dir string) string {
	t.Helper()
	prog, err := twpp.Compile(`
func main() {
    var s = 0;
    for (var i = 0; i < 30; i = i + 1) {
        s = s + w(i % 2);
    }
    print(s);
}
func w(m) {
    var j = 0;
    while (j < 5) {
        j = j + 1;
    }
    return m + j;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	r, err := prog.Trace(nil)
	if err != nil {
		t.Fatal(err)
	}
	tw, _ := twpp.Compact(r.WPP)
	p := filepath.Join(dir, "t.twpp")
	if err := twpp.WriteFile(p, tw); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRunList(t *testing.T) {
	p := writeTWPP(t, t.TempDir())
	if err := run(io.Discard, queryConfig{in: p, list: true, fn: -1}); err != nil {
		t.Fatal(err)
	}
}

func TestRunExtractAndQuery(t *testing.T) {
	p := writeTWPP(t, t.TempDir())
	// Extract function 1 (w) with timestamp display and a GEN-KILL
	// query on its loop head.
	if err := run(io.Discard, queryConfig{in: p, fn: 1, show: true, block: 2, gen: "1", kill: "9"}); err != nil {
		t.Fatal(err)
	}
	// Same query through the decode cache.
	if err := run(io.Discard, queryConfig{in: p, fn: 1, show: true, block: 2, gen: "1", kill: "9", cache: 16}); err != nil {
		t.Fatal(err)
	}
	// And through the mmap backend.
	if err := run(io.Discard, queryConfig{in: p, fn: 1, show: true, block: 2, gen: "1", kill: "9", mmap: true}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	p := writeTWPP(t, t.TempDir())
	if err := run(io.Discard, queryConfig{}); err == nil {
		t.Error("missing input: want error")
	}
	if err := run(io.Discard, queryConfig{in: p, fn: -1}); err == nil {
		t.Error("neither list nor func: want error")
	}
	if err := run(io.Discard, queryConfig{in: p, fn: 1, traceIx: 99}); err == nil {
		t.Error("bad trace index: want error")
	}
	if err := run(io.Discard, queryConfig{in: p, fn: 99}); err == nil {
		t.Error("absent function: want error")
	}
	if err := run(io.Discard, queryConfig{in: p, fn: 1, block: 2, gen: "x"}); err == nil {
		t.Error("bad gen list: want error")
	}
	if err := run(io.Discard, queryConfig{in: p, fn: 1, block: 2, kill: "y"}); err == nil {
		t.Error("bad kill list: want error")
	}
}

// Block-list parsing lives in passes.Params (tested there); here we
// pin that a malformed list surfaces as a usage error through run.
func TestBadBlockListIsUsage(t *testing.T) {
	p := writeTWPP(t, t.TempDir())
	err := run(io.Discard, queryConfig{in: p, fn: 1, block: 2, gen: "1,x"})
	if got := cli.ExitCode(err); got != cli.ExitUsage {
		t.Errorf("bad gen list: exit %d, want %d", got, cli.ExitUsage)
	}
}

// A segmented container directory answers the same queries as the
// single file it was sealed from, byte for byte, through the same -in
// flag.
func TestRunSegmentedDir(t *testing.T) {
	dir := t.TempDir()
	p := writeTWPP(t, dir)
	f, err := twpp.OpenFile(p)
	if err != nil {
		t.Fatal(err)
	}
	tw, err := f.ReadAll()
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	segDir := filepath.Join(dir, "t.twppd")
	if err := twpp.CompactSegmented(segDir, tw, twpp.SegmentOptions{SegmentBytes: 16}); err != nil {
		t.Fatal(err)
	}

	// Sealed segments repeat per-segment headers, so -v section sizes
	// legitimately differ; it only needs to run cleanly on a directory.
	if err := run(io.Discard, queryConfig{in: segDir, list: true, fn: -1, verbose: true}); err != nil {
		t.Fatal(err)
	}

	for _, c := range []queryConfig{
		{list: true, fn: -1},
		{fn: 1, show: true, block: 2, gen: "1", kill: "9"},
		{fn: 1, show: true, block: 2, gen: "1", kill: "9", cache: 16, mmap: true},
	} {
		var single, segmented strings.Builder
		c.in = p
		if err := run(&single, c); err != nil {
			t.Fatal(err)
		}
		c.in = segDir
		if err := run(&segmented, c); err != nil {
			t.Fatal(err)
		}
		// The -v header names the input path; normalize it away.
		a := strings.ReplaceAll(single.String(), p, "IN")
		b := strings.ReplaceAll(segmented.String(), segDir, "IN")
		if a != b {
			t.Errorf("segmented output differs:\n--- file ---\n%s\n--- dir ---\n%s", a, b)
		}
	}
}
