package main

import (
	"io"
	"path/filepath"
	"testing"

	"twpp"
)

func writeTWPP(t *testing.T, dir string) string {
	t.Helper()
	prog, err := twpp.Compile(`
func main() {
    var s = 0;
    for (var i = 0; i < 30; i = i + 1) {
        s = s + w(i % 2);
    }
    print(s);
}
func w(m) {
    var j = 0;
    while (j < 5) {
        j = j + 1;
    }
    return m + j;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	r, err := prog.Trace(nil)
	if err != nil {
		t.Fatal(err)
	}
	tw, _ := twpp.Compact(r.WPP)
	p := filepath.Join(dir, "t.twpp")
	if err := twpp.WriteFile(p, tw); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRunList(t *testing.T) {
	p := writeTWPP(t, t.TempDir())
	if err := run(io.Discard, p, true, -1, 0, false, 0, "", "", 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunExtractAndQuery(t *testing.T) {
	p := writeTWPP(t, t.TempDir())
	// Extract function 1 (w) with timestamp display and a GEN-KILL
	// query on its loop head.
	if err := run(io.Discard, p, false, 1, 0, true, 2, "1", "9", 0); err != nil {
		t.Fatal(err)
	}
	// Same query through the decode cache.
	if err := run(io.Discard, p, false, 1, 0, true, 2, "1", "9", 16); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	p := writeTWPP(t, t.TempDir())
	if err := run(io.Discard, "", false, 0, 0, false, 0, "", "", 0); err == nil {
		t.Error("missing input: want error")
	}
	if err := run(io.Discard, p, false, -1, 0, false, 0, "", "", 0); err == nil {
		t.Error("neither list nor func: want error")
	}
	if err := run(io.Discard, p, false, 1, 99, false, 0, "", "", 0); err == nil {
		t.Error("bad trace index: want error")
	}
	if err := run(io.Discard, p, false, 99, 0, false, 0, "", "", 0); err == nil {
		t.Error("absent function: want error")
	}
	if err := run(io.Discard, p, false, 1, 0, false, 2, "x", "", 0); err == nil {
		t.Error("bad gen list: want error")
	}
	if err := run(io.Discard, p, false, 1, 0, false, 2, "", "y", 0); err == nil {
		t.Error("bad kill list: want error")
	}
}

func TestParseBlocks(t *testing.T) {
	m, err := parseBlocks("1, 2,3")
	if err != nil || len(m) != 3 || !m[2] {
		t.Errorf("parseBlocks = %v, %v", m, err)
	}
	if _, err := parseBlocks("a"); err == nil {
		t.Error("want error")
	}
	if m, err := parseBlocks(""); err != nil || len(m) != 0 {
		t.Errorf("empty = %v, %v", m, err)
	}
}
