package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"twpp/internal/cli"
	"twpp/internal/testkit"
)

var update = flag.Bool("update", false, "rewrite golden files")

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	p := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(p)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", p, got, want)
	}
}

func TestGoldenList(t *testing.T) {
	p := writeTWPP(t, t.TempDir())
	var buf bytes.Buffer
	if err := run(&buf, p, true, -1, 0, false, 0, "", "", 0); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "list.golden", buf.Bytes())
}

func TestGoldenExtractAndQuery(t *testing.T) {
	p := writeTWPP(t, t.TempDir())
	var buf bytes.Buffer
	if err := run(&buf, p, false, 1, 0, true, 2, "1", "9", 0); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "query.golden", buf.Bytes())
}

// Exit codes are part of the CLI contract: usage problems exit 2,
// corrupt inputs 3, truncated inputs 4 — asserted through the same
// classifier main uses.
func TestExitCodes(t *testing.T) {
	dir := t.TempDir()
	valid := writeTWPP(t, dir)
	img, err := os.ReadFile(valid)
	if err != nil {
		t.Fatal(err)
	}

	corruptPath := filepath.Join(dir, "corrupt.twpp")
	if err := os.WriteFile(corruptPath, testkit.BitFlip(img, 0, 3), 0o644); err != nil {
		t.Fatal(err)
	}
	truncPath := filepath.Join(dir, "trunc.twpp")
	if err := os.WriteFile(truncPath, testkit.Truncate(img, 9), 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		in   string
		list bool
		want int
	}{
		{"success", valid, true, cli.ExitOK},
		{"missing -in is usage", "", true, cli.ExitUsage},
		{"bad magic is corrupt", corruptPath, true, cli.ExitCorrupt},
		{"truncated header", truncPath, true, cli.ExitTruncated},
		{"absent file is plain failure", filepath.Join(dir, "nope.twpp"), true, cli.ExitFailure},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			err := run(&bytes.Buffer{}, tc.in, tc.list, -1, 0, false, 0, "", "", 0)
			if got := cli.ExitCode(err); got != tc.want {
				t.Fatalf("exit code %d, want %d (err: %v)", got, tc.want, err)
			}
		})
	}

	// Usage classification for the non-list paths.
	if got := cli.ExitCode(run(&bytes.Buffer{}, valid, false, -1, 0, false, 0, "", "", 0)); got != cli.ExitUsage {
		t.Errorf("neither -list nor -func: exit %d, want %d", got, cli.ExitUsage)
	}
	if got := cli.ExitCode(run(&bytes.Buffer{}, valid, false, 1, 99, false, 0, "", "", 0)); got != cli.ExitUsage {
		t.Errorf("trace index out of range: exit %d, want %d", got, cli.ExitUsage)
	}
}
