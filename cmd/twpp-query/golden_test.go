package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"twpp/internal/cli"
	"twpp/internal/testkit"
)

var update = flag.Bool("update", false, "rewrite golden files")

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	p := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(p)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", p, got, want)
	}
}

func TestGoldenList(t *testing.T) {
	p := writeTWPP(t, t.TempDir())
	var buf bytes.Buffer
	if err := run(&buf, queryConfig{in: p, list: true, fn: -1}); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "list.golden", buf.Bytes())
}

// The -v header names the container version and section sizes; its
// first line is asserted by shape, not golden, since section sizes
// shift with encoder changes.
func TestVerboseHeader(t *testing.T) {
	p := writeTWPP(t, t.TempDir())
	var buf bytes.Buffer
	if err := run(&buf, queryConfig{in: p, list: true, fn: -1, verbose: true}); err != nil {
		t.Fatal(err)
	}
	head, _, _ := strings.Cut(buf.String(), "\n")
	if !strings.Contains(head, "container format v2") || !strings.Contains(head, "sections header=") {
		t.Errorf("-v header = %q", head)
	}
}

func TestGoldenExtractAndQuery(t *testing.T) {
	p := writeTWPP(t, t.TempDir())
	var buf bytes.Buffer
	if err := run(&buf, queryConfig{in: p, fn: 1, show: true, block: 2, gen: "1", kill: "9"}); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "query.golden", buf.Bytes())
}

// The k-iteration profile of the test program's loop function: w's
// while-loop iterates 5 times per call, so k=2 windows pair
// consecutive iterations.
func TestGoldenKPaths(t *testing.T) {
	p := writeTWPP(t, t.TempDir())
	var buf bytes.Buffer
	if err := run(&buf, queryConfig{in: p, fn: 1, kpaths: 2}); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "kpaths.golden", buf.Bytes())
}

// -kpaths exit codes follow the same classifier as the rest of the
// CLI: malformed k values are usage (2), an absent function is a
// plain failure (1).
func TestKPathsExitCodes(t *testing.T) {
	p := writeTWPP(t, t.TempDir())
	cases := []struct {
		name string
		c    queryConfig
		want int
	}{
		{"negative k is usage", queryConfig{in: p, fn: 1, kpaths: -1}, cli.ExitUsage},
		{"oversized k is usage", queryConfig{in: p, fn: 1, kpaths: 65}, cli.ExitUsage},
		{"negative top is usage", queryConfig{in: p, fn: 1, kpaths: 1, top: -2}, cli.ExitUsage},
		{"absent function fails", queryConfig{in: p, fn: 99, kpaths: 1}, cli.ExitFailure},
		{"valid profile succeeds", queryConfig{in: p, fn: 1, kpaths: 1}, cli.ExitOK},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			err := run(&bytes.Buffer{}, tc.c)
			if got := cli.ExitCode(err); got != tc.want {
				t.Fatalf("exit code %d, want %d (err: %v)", got, tc.want, err)
			}
		})
	}
}

// Exit codes are part of the CLI contract: usage problems exit 2,
// corrupt inputs 3, truncated inputs 4 — asserted through the same
// classifier main uses.
func TestExitCodes(t *testing.T) {
	dir := t.TempDir()
	valid := writeTWPP(t, dir)
	img, err := os.ReadFile(valid)
	if err != nil {
		t.Fatal(err)
	}

	corruptPath := filepath.Join(dir, "corrupt.twpp")
	if err := os.WriteFile(corruptPath, testkit.BitFlip(img, 0, 3), 0o644); err != nil {
		t.Fatal(err)
	}
	truncPath := filepath.Join(dir, "trunc.twpp")
	if err := os.WriteFile(truncPath, testkit.Truncate(img, 9), 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		in   string
		list bool
		want int
	}{
		{"success", valid, true, cli.ExitOK},
		{"missing -in is usage", "", true, cli.ExitUsage},
		{"bad magic is corrupt", corruptPath, true, cli.ExitCorrupt},
		{"truncated header", truncPath, true, cli.ExitTruncated},
		{"absent file is plain failure", filepath.Join(dir, "nope.twpp"), true, cli.ExitFailure},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			err := run(&bytes.Buffer{}, queryConfig{in: tc.in, list: tc.list, fn: -1})
			if got := cli.ExitCode(err); got != tc.want {
				t.Fatalf("exit code %d, want %d (err: %v)", got, tc.want, err)
			}
		})
	}

	// Usage classification for the non-list paths.
	if got := cli.ExitCode(run(&bytes.Buffer{}, queryConfig{in: valid, fn: -1})); got != cli.ExitUsage {
		t.Errorf("neither -list nor -func: exit %d, want %d", got, cli.ExitUsage)
	}
	if got := cli.ExitCode(run(&bytes.Buffer{}, queryConfig{in: valid, fn: 1, traceIx: 99})); got != cli.ExitUsage {
		t.Errorf("trace index out of range: exit %d, want %d", got, cli.ExitUsage)
	}
}
