package main

import (
	"bytes"
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"twpp"
	"twpp/internal/cli"
	"twpp/internal/testkit"
)

var update = flag.Bool("update", false, "rewrite golden files")

// writeTWPP compiles and traces the same deterministic program the
// twpp-query golden tests use, so the two CLIs' goldens describe the
// same file.
func writeTWPP(t *testing.T, dir string) string {
	t.Helper()
	prog, err := twpp.Compile(`
func main() {
    var s = 0;
    for (var i = 0; i < 30; i = i + 1) {
        s = s + w(i % 2);
    }
    print(s);
}
func w(m) {
    var j = 0;
    while (j < 5) {
        j = j + 1;
    }
    return m + j;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	r, err := prog.Trace(nil)
	if err != nil {
		t.Fatal(err)
	}
	tw, _ := twpp.Compact(r.WPP)
	p := filepath.Join(dir, "t.twpp")
	if err := twpp.WriteFile(p, tw); err != nil {
		t.Fatal(err)
	}
	return p
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	p := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(p)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", p, got, want)
	}
}

func serveGet(t *testing.T, h http.Handler, path string) (int, []byte) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec.Code, rec.Body.Bytes()
}

// The JSON bodies of the query endpoints are golden: a serving-layer
// change that reorders fields or alters values shows up as a diff.
// testConfig wraps a path list in the config the tests share.
func testConfig(in string, maxInflight int) serveConfig {
	return serveConfig{
		in:          in,
		cache:       16,
		maxInflight: maxInflight,
		timeout:     time.Minute,
		quiet:       true,
	}
}

func TestGoldenEndpoints(t *testing.T) {
	p := writeTWPP(t, t.TempDir())
	s, err := newServer(testConfig(p, 8))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	h := s.Handler()

	for _, tc := range []struct {
		golden, path string
	}{
		{"funcs.golden", "/funcs"},
		{"trace.golden", "/trace/1"},
		{"stats.golden", "/stats/1"},
		{"cfg.golden", "/cfg/1"},
		{"query.golden", "/query?func=1&block=2&gen=1&kill=9"},
	} {
		t.Run(tc.golden, func(t *testing.T) {
			status, body := serveGet(t, h, tc.path)
			if status != http.StatusOK {
				t.Fatalf("GET %s: status %d:\n%s", tc.path, status, body)
			}
			checkGolden(t, tc.golden, body)
		})
	}
}

// /metrics values vary run to run, so its shape is asserted by name:
// every serving metric family must be present with a TYPE line.
func TestMetricsShape(t *testing.T) {
	p := writeTWPP(t, t.TempDir())
	s, err := newServer(testConfig(p, 8))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	h := s.Handler()
	for _, warm := range []string{"/funcs", "/trace/1", "/trace/99", "/query?func=1&block=2&gen=1"} {
		serveGet(t, h, warm)
	}
	status, body := serveGet(t, h, "/metrics")
	if status != http.StatusOK {
		t.Fatalf("/metrics: status %d", status)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE twpp_requests_total counter",
		"# TYPE twpp_responses_2xx_total counter",
		"# TYPE twpp_responses_4xx_total counter",
		"# TYPE twpp_responses_5xx_total counter",
		"# TYPE twpp_throttled_total counter",
		"# TYPE twpp_reject_corrupt_total counter",
		"# TYPE twpp_reject_truncated_total counter",
		"# TYPE twpp_reject_limit_total counter",
		"# TYPE twpp_canceled_total counter",
		"# TYPE twpp_cache_hits_total counter",
		"# TYPE twpp_cache_misses_total counter",
		"# TYPE twpp_decode_bytes_total counter",
		"# TYPE twpp_panics_total counter",
		"# TYPE twpp_in_flight gauge",
		"# TYPE twpp_mounted_files gauge",
		"# TYPE twpp_request_seconds histogram",
		"twpp_request_seconds_bucket{le=\"+Inf\"}",
		"twpp_request_seconds_sum",
		"twpp_request_seconds_count",
		"twpp_mounted_files 1",
		"# TYPE twpp_mount_t_requests_total counter",
		"# TYPE twpp_mount_t_errors_total counter",
		"# TYPE twpp_mount_t_cache_hits_total counter",
		"# TYPE twpp_mount_t_cache_misses_total counter",
		"# TYPE twpp_mount_t_decode_bytes_total counter",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if status, body := serveGet(t, h, "/healthz"); status != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Errorf("/healthz: status %d body %q", status, body)
	}
}

// Exit codes are part of the CLI contract: flag problems exit 2, a
// missing file 1, corrupt input 3, truncated input 4 — through the
// same classifier main uses.
func TestExitCodes(t *testing.T) {
	dir := t.TempDir()
	valid := writeTWPP(t, dir)
	img, err := os.ReadFile(valid)
	if err != nil {
		t.Fatal(err)
	}
	corruptPath := filepath.Join(dir, "corrupt.twpp")
	if err := os.WriteFile(corruptPath, testkit.BitFlip(img, 0, 3), 0o644); err != nil {
		t.Fatal(err)
	}
	truncPath := filepath.Join(dir, "trunc.twpp")
	if err := os.WriteFile(truncPath, testkit.Truncate(img, 9), 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name        string
		in          string
		mounts      string
		maxInflight int
		want        int
	}{
		{"success", valid, "", 16, cli.ExitOK},
		{"missing -in is usage", "", "", 16, cli.ExitUsage},
		{"empty -in list is usage", " , ", "", 16, cli.ExitUsage},
		{"zero max-inflight is usage", valid, "", 0, cli.ExitUsage},
		{"bad -mount pair is usage", "", "nameonly", 16, cli.ExitUsage},
		{"explicit -mount works", "", "m=" + valid, 16, cli.ExitOK},
		{"absent file is plain failure", filepath.Join(dir, "nope.twpp"), "", 16, cli.ExitFailure},
		{"bad magic is corrupt", corruptPath, "", 16, cli.ExitCorrupt},
		{"truncated header", truncPath, "", 16, cli.ExitTruncated},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := testConfig(tc.in, tc.maxInflight)
			c.mounts = tc.mounts
			c.timeout = time.Second
			c.cache = 8
			s, err := newServer(c)
			if s != nil {
				s.Close()
			}
			if got := cli.ExitCode(err); got != tc.want {
				t.Fatalf("exit code %d, want %d (err: %v)", got, tc.want, err)
			}
		})
	}
}

// Multiple -in files mount under their base names, first is default.
func TestMultiMount(t *testing.T) {
	dir := t.TempDir()
	a := writeTWPP(t, dir)
	bdir := filepath.Join(dir, "b")
	if err := os.MkdirAll(bdir, 0o755); err != nil {
		t.Fatal(err)
	}
	b := writeTWPP(t, bdir)
	second := filepath.Join(bdir, "second.twpp")
	if err := os.Rename(b, second); err != nil {
		t.Fatal(err)
	}
	c := testConfig(a+","+second, 16)
	c.timeout = time.Second
	c.cache = 8
	s, err := newServer(c)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := s.Mounts(); len(got) != 2 || got[0] != "t" || got[1] != "second" {
		t.Fatalf("Mounts() = %v, want [t second]", got)
	}
	if status, _ := serveGet(t, s.Handler(), "/funcs?file=second"); status != http.StatusOK {
		t.Errorf("/funcs?file=second: status %d", status)
	}
	h := s.Handler()
	// The /v1/{mount}/... namespace routes to the named mount; an
	// unknown mount is a 404.
	for path, want := range map[string]int{
		"/v1/second/funcs":                      http.StatusOK,
		"/v1/t/trace/1":                         http.StatusOK,
		"/v1/second/stats/1":                    http.StatusOK,
		"/v1/t/cfg/1":                           http.StatusOK,
		"/v1/second/query?func=1&block=2&gen=1": http.StatusOK,
		"/v1/nosuch/funcs":                      http.StatusNotFound,
	} {
		if status, body := serveGet(t, h, path); status != want {
			t.Errorf("GET %s: status %d, want %d:\n%s", path, status, want, body)
		}
	}
	// /mounts lists the catalog with formats and section sizes.
	status, body := serveGet(t, h, "/mounts")
	if status != http.StatusOK {
		t.Fatalf("/mounts: status %d", status)
	}
	for _, want := range []string{`"t"`, `"second"`, `"format": 2`, `"block_bytes"`} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/mounts body missing %s:\n%s", want, body)
		}
	}
}

// The -mmap and -verify paths must serve identical bytes to the file
// backend, and a flipped byte in a v2 payload must fail startup with
// the corrupt exit class when -verify is on.
func TestMmapAndVerify(t *testing.T) {
	dir := t.TempDir()
	p := writeTWPP(t, dir)

	base := testConfig(p, 8)
	ref, err := newServer(base)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	_, want := serveGet(t, ref.Handler(), "/trace/1")

	mc := testConfig(p, 8)
	mc.mmap = true
	mc.verify = true
	s, err := newServer(mc)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if status, got := serveGet(t, s.Handler(), "/trace/1"); status != http.StatusOK || !bytes.Equal(got, want) {
		t.Fatalf("mmap /trace/1: status %d, body parity %v", status, bytes.Equal(got, want))
	}

	img, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	flipped := filepath.Join(dir, "flip.twpp")
	// Flip one payload bit past the header; -verify must refuse it.
	if err := os.WriteFile(flipped, testkit.BitFlip(img, len(img)/2, 1), 0o644); err != nil {
		t.Fatal(err)
	}
	fc := testConfig(flipped, 8)
	fc.verify = true
	if s, err := newServer(fc); err == nil {
		s.Close()
		t.Fatal("verify accepted a flipped payload byte")
	} else if got := cli.ExitCode(err); got != cli.ExitCorrupt {
		t.Fatalf("flipped payload exit code %d, want %d (err: %v)", got, cli.ExitCorrupt, err)
	}
}
