// Command twpp-serve is a long-lived HTTP/JSON query server over
// compacted TWPP files: the paper's single-seek per-function
// extraction, per-function stats, dynamic-CFG construction, and
// profile-limited GEN-KILL queries, served concurrently with bounded
// in-flight work, per-request deadlines, Prometheus metrics, and
// pprof.
//
// Usage:
//
//	twpp-serve -in trace.twpp[,more.twpp...] [-addr :7070] [-cache 64]
//	           [-max-inflight 64] [-timeout 5s] [-quiet]
//
// Endpoints (all GET; add ?file=name to select a non-default mount):
//
//	/funcs                functions, hottest first
//	/trace/{fn}[?trace=N] one function's TWPP traces (timestamp maps)
//	/stats/{fn}           per-function stats summary
//	/cfg/{fn}?trace=N     timestamp-annotated dynamic CFG
//	/query?func=F&block=B&gen=ids&kill=ids[&trace=N]
//	                      profile-limited GEN-KILL query
//	/metrics              Prometheus text metrics
//	/debug/pprof/         runtime profiles
//	/healthz              liveness
//
// Mount names are the files' base names without extension. The server
// drains gracefully on SIGINT/SIGTERM: listeners close, in-flight
// requests finish (up to the drain timeout), then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"twpp/internal/cli"
	"twpp/internal/server"
)

func main() {
	var (
		in          = flag.String("in", "", "comma-separated compacted TWPP files to mount (required)")
		addr        = flag.String("addr", ":7070", "listen address")
		cache       = flag.Int("cache", server.DefaultCacheEntries, "decoded-block LRU cache entries per mounted file")
		maxInflight = flag.Int("max-inflight", server.DefaultMaxInFlight, "concurrent query requests before 429")
		timeout     = flag.Duration("timeout", server.DefaultRequestTimeout, "per-request deadline (negative disables)")
		drain       = flag.Duration("drain", 10*time.Second, "graceful shutdown grace period")
		quiet       = flag.Bool("quiet", false, "suppress per-request log lines")
	)
	flag.Parse()
	cli.Exit("twpp-serve", run(*in, *addr, *cache, *maxInflight, *timeout, *drain, *quiet))
}

// newServer validates flags, builds the server, and mounts every file.
// Split from run so tests can drive the full mount path without a
// listener.
func newServer(in string, cache, maxInflight int, timeout time.Duration, quiet bool) (*server.Server, error) {
	if in == "" {
		return nil, cli.Usagef("missing -in")
	}
	if maxInflight < 1 {
		return nil, cli.Usagef("-max-inflight must be >= 1")
	}
	opts := server.Options{
		CacheEntries:   cache,
		MaxInFlight:    maxInflight,
		RequestTimeout: timeout,
	}
	if !quiet {
		opts.LogWriter = os.Stderr
	}
	s := server.New(opts)
	for _, path := range strings.Split(in, ",") {
		path = strings.TrimSpace(path)
		if path == "" {
			continue
		}
		name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		if err := s.Mount(name, path); err != nil {
			s.Close()
			return nil, err
		}
	}
	if len(s.Mounts()) == 0 {
		s.Close()
		return nil, cli.Usagef("-in lists no files")
	}
	return s, nil
}

func run(in, addr string, cache, maxInflight int, timeout, drain time.Duration, quiet bool) error {
	s, err := newServer(in, cache, maxInflight, timeout, quiet)
	if err != nil {
		return err
	}
	defer s.Close()

	hs := &http.Server{Addr: addr, Handler: s.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "twpp-serve: listening on %s (%d mounts)\n", addr, len(s.Mounts()))
		errc <- hs.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		// Drain: stop accepting, let in-flight requests finish.
		stop()
		fmt.Fprintf(os.Stderr, "twpp-serve: shutting down (drain %s)\n", drain)
		sctx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		if err := hs.Shutdown(sctx); err != nil {
			hs.Close()
			return err
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}
