// Command twpp-serve is a long-lived HTTP/JSON query server over
// compacted TWPP containers — single .twpp files or segmented
// container directories (auto-detected by their manifest; a mounted
// directory keeps serving while a background merge folds its
// segments): the paper's single-seek per-function
// extraction, per-function stats, dynamic-CFG construction, and
// profile-limited GEN-KILL queries, served concurrently with bounded
// in-flight work, per-request deadlines, Prometheus metrics, and
// pprof.
//
// Usage:
//
//	twpp-serve -in trace.twpp[,more.twpp...] [-mount name=path,...]
//	           [-addr :7070] [-cache 64] [-resp-cache 256]
//	           [-max-inflight 64] [-timeout 5s] [-mmap] [-verify]
//	           [-quiet]
//
// Endpoints (all GET; select a non-default mount with ?file=name or
// the /v1/{mount}/... prefix):
//
//	/mounts               the catalog: names, formats, section sizes
//	/funcs                functions, hottest first
//	/trace/{fn}[?trace=N] one function's TWPP traces (timestamp maps)
//	/stats/{fn}           per-function stats summary
//	/cfg/{fn}?trace=N     timestamp-annotated dynamic CFG
//	/query?func=F&block=B&gen=ids&kill=ids[&trace=N]
//	                      profile-limited GEN-KILL query
//	/v1/{mount}/...       any of the five query routes, mount in path
//	/v1/{mount}/refresh   (POST) re-read a segmented mount's manifest
//	/refresh              (POST) refresh every mount
//	/metrics              Prometheus text metrics (incl. per-mount)
//	/debug/pprof/         runtime profiles
//	/healthz              liveness
//
// -in paths (files or segment directories) mount under their base
// names without extension; -mount pairs mount under explicit names. -mmap serves reads from read-only
// memory mappings instead of file descriptors; -verify checks every
// section checksum of every mounted v2 file before serving. The
// server drains gracefully on SIGINT/SIGTERM: listeners close,
// in-flight requests finish (up to the drain timeout), then the
// process exits. SIGHUP refreshes every segmented mount (equivalent
// to POST /refresh), picking up sessions another process sealed.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"twpp/internal/cli"
	"twpp/internal/server"
	"twpp/internal/storage"
)

// serveConfig carries the validated flag values newServer consumes.
type serveConfig struct {
	in          string // comma-separated paths, mounted by base name
	mounts      string // comma-separated name=path pairs
	cache       int
	respCache   int
	maxInflight int
	timeout     time.Duration
	mmap        bool
	verify      bool
	quiet       bool
}

func main() {
	var (
		c     serveConfig
		addr  = flag.String("addr", ":7070", "listen address")
		drain = flag.Duration("drain", 10*time.Second, "graceful shutdown grace period")
	)
	flag.StringVar(&c.in, "in", "", "comma-separated compacted TWPP files to mount by base name")
	flag.StringVar(&c.mounts, "mount", "", "comma-separated name=path mounts (explicit names)")
	flag.IntVar(&c.cache, "cache", server.DefaultCacheEntries, "decoded-block LRU cache entries per mounted file")
	flag.IntVar(&c.respCache, "resp-cache", server.DefaultResponseCacheEntries, "rendered-response cache entries (v2 mounts; negative disables)")
	flag.IntVar(&c.maxInflight, "max-inflight", server.DefaultMaxInFlight, "concurrent query requests before 429")
	flag.DurationVar(&c.timeout, "timeout", server.DefaultRequestTimeout, "per-request deadline (negative disables)")
	flag.BoolVar(&c.mmap, "mmap", false, "serve reads from read-only memory mappings")
	flag.BoolVar(&c.verify, "verify", false, "verify every section checksum of mounted v2 files at startup")
	flag.BoolVar(&c.quiet, "quiet", false, "suppress per-request log lines")
	flag.Parse()
	cli.Exit("twpp-serve", run(c, *addr, *drain))
}

// newServer validates flags, builds the server, and mounts every file.
// Split from run so tests can drive the full mount path without a
// listener.
func newServer(c serveConfig) (*server.Server, error) {
	if c.in == "" && c.mounts == "" {
		return nil, cli.Usagef("missing -in or -mount")
	}
	if c.maxInflight < 1 {
		return nil, cli.Usagef("-max-inflight must be >= 1")
	}
	opts := server.Options{
		CacheEntries:         c.cache,
		MaxInFlight:          c.maxInflight,
		RequestTimeout:       c.timeout,
		ResponseCacheEntries: c.respCache,
	}
	opts.Open.VerifyChecksums = c.verify
	if c.mmap {
		opts.Open.Backend = storage.KindMmap
	}
	if !c.quiet {
		opts.LogWriter = os.Stderr
	}
	s := server.New(opts)
	for _, path := range strings.Split(c.in, ",") {
		path = strings.TrimSpace(path)
		if path == "" {
			continue
		}
		name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		if err := s.Mount(name, path); err != nil {
			s.Close()
			return nil, err
		}
	}
	for _, pair := range strings.Split(c.mounts, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		name, path, ok := strings.Cut(pair, "=")
		if !ok || name == "" || path == "" {
			s.Close()
			return nil, cli.Usagef("bad -mount entry %q (want name=path)", pair)
		}
		if err := s.Mount(name, path); err != nil {
			s.Close()
			return nil, err
		}
	}
	if len(s.Mounts()) == 0 {
		s.Close()
		return nil, cli.Usagef("-in and -mount list no files")
	}
	return s, nil
}

func run(c serveConfig, addr string, drain time.Duration) error {
	s, err := newServer(c)
	if err != nil {
		return err
	}
	defer s.Close()

	hs := &http.Server{Addr: addr, Handler: s.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// SIGHUP re-reads every segmented mount's manifest — the
	// operational "pick up what the ingest server sealed" nudge, on a
	// separate channel so it never races the shutdown context.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)
	go func() {
		for range hup {
			n, err := s.RefreshAll()
			if err != nil {
				fmt.Fprintf(os.Stderr, "twpp-serve: refresh: %v\n", err)
				continue
			}
			fmt.Fprintf(os.Stderr, "twpp-serve: refreshed %d of %d mounts\n", n, len(s.Mounts()))
		}
	}()

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "twpp-serve: listening on %s (%d mounts)\n", addr, len(s.Mounts()))
		errc <- hs.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		// Drain: stop accepting, let in-flight requests finish.
		stop()
		fmt.Fprintf(os.Stderr, "twpp-serve: shutting down (drain %s)\n", drain)
		sctx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		if err := hs.Shutdown(sctx); err != nil {
			hs.Close()
			return err
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}
