// Command twpp-ingest is the write-side network service: a long-lived
// server that accepts WPP event streams from many concurrent
// producers, compacts each session online in bounded memory, and
// seals finished sessions into segmented v2 containers that are
// queryable seconds later.
//
// Usage:
//
//	twpp-ingest -dir traces/ [-addr :7071] [-http :7072]
//	            [-serve-addr :7070] [-max-sessions 64]
//	            [-idle-timeout 30s] [-max-frame 1048576]
//	            [-max-session-bytes 1073741824] [-segment-bytes N]
//	            [-j workers] [-drain 5s] [-quiet]
//
// Producers speak a length-prefixed frame protocol over TCP at -addr
// (HELLO declaring a mount name and function table, EVENTS frames of
// uvarint WPP symbols, FINISH; the server answers one RESULT), or
// POST a complete raw WPP file to -http at /v1/ingest/{mount}. Each
// mount seals into <dir>/<mount>.twppd — a standard segmented
// container any twpp tool reads.
//
// With -serve-addr set, a colocated twpp-serve query plane runs in
// the same process: every sealed session is mounted (or refreshed)
// immediately, closing the generate → ingest → seal → query loop with
// no restart. A remote twpp-serve pointed at the same directory picks
// sessions up via SIGHUP or POST /refresh instead.
//
// The server drains gracefully on SIGINT/SIGTERM: listeners close,
// in-flight sessions finish (up to -drain), then the process exits.
// Malformed frames, unbalanced streams, and oversized sessions get
// structured RESULT codes mirroring the CLI exit codes — a hostile
// producer is rejected, never crashes the server.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"twpp/internal/cli"
	"twpp/internal/ingest"
	"twpp/internal/segment"
	"twpp/internal/server"
)

// ingestConfig carries the validated flag values newServers consumes.
type ingestConfig struct {
	dir             string
	maxSessions     int
	idleTimeout     time.Duration
	maxFrame        int
	maxSessionBytes int64
	segmentBytes    int64
	workers         int
	serveAddr       string
	quiet           bool
}

func main() {
	var (
		c        ingestConfig
		addr     = flag.String("addr", ":7071", "TCP ingest listen address")
		httpAddr = flag.String("http", "", "HTTP ingest listen address (POST /v1/ingest/{mount}; empty disables)")
		drain    = flag.Duration("drain", ingest.DefaultDrainTimeout, "graceful shutdown grace period")
	)
	flag.StringVar(&c.dir, "dir", "", "directory sealed containers are written under (required)")
	flag.IntVar(&c.maxSessions, "max-sessions", ingest.DefaultMaxSessions, "concurrent producer sessions before busy rejection")
	flag.DurationVar(&c.idleTimeout, "idle-timeout", ingest.DefaultIdleTimeout, "per-frame read deadline; a silent balanced session seals, an unbalanced one is rejected")
	flag.IntVar(&c.maxFrame, "max-frame", ingest.DefaultMaxFrameBytes, "largest accepted frame payload in bytes")
	flag.Int64Var(&c.maxSessionBytes, "max-session-bytes", ingest.DefaultMaxSessionBytes, "largest accepted per-session event payload total (negative disables)")
	flag.Int64Var(&c.segmentBytes, "segment-bytes", 0, "per-segment payload budget for sealed sessions (0 selects the default)")
	flag.IntVar(&c.workers, "j", 0, "seal encode workers (0 selects GOMAXPROCS)")
	flag.StringVar(&c.serveAddr, "serve-addr", "", "colocated query-plane listen address (empty disables)")
	flag.BoolVar(&c.quiet, "quiet", false, "suppress per-session log lines")
	flag.Parse()
	cli.Exit("twpp-ingest", run(c, *addr, *httpAddr, *drain))
}

// newServers validates flags and builds the ingest server plus the
// optional colocated query server. Split from run so tests can drive
// the full construction path without listeners.
func newServers(c ingestConfig) (*ingest.Server, *server.Server, error) {
	if c.dir == "" {
		return nil, nil, cli.Usagef("missing -dir")
	}
	if c.maxSessions < 1 {
		return nil, nil, cli.Usagef("-max-sessions must be >= 1")
	}
	opts := ingest.Options{
		Dir:             c.dir,
		MaxSessions:     c.maxSessions,
		IdleTimeout:     c.idleTimeout,
		MaxFrameBytes:   c.maxFrame,
		MaxSessionBytes: c.maxSessionBytes,
		SegmentBytes:    c.segmentBytes,
		Workers:         c.workers,
	}
	if !c.quiet {
		opts.LogWriter = os.Stderr
	}

	var qs *server.Server
	if c.serveAddr != "" {
		sopts := server.Options{}
		if !c.quiet {
			sopts.LogWriter = os.Stderr
		}
		qs = server.New(sopts)
		// Every seal mounts (or refreshes) the container in the
		// colocated catalog, making the session queryable immediately.
		cat := qs.Catalog()
		opts.OnSeal = func(mount, dir string, _ *segment.Manifest) {
			if err := cat.Ensure(mount, dir); err != nil {
				fmt.Fprintf(os.Stderr, "twpp-ingest: mount %q: %v\n", mount, err)
			}
		}
		// The shared registry folds the ingest metrics into the query
		// plane's /metrics.
		opts.Registry = qs.Registry()
	}
	is, err := ingest.NewServer(opts)
	if err != nil {
		if qs != nil {
			qs.Close()
		}
		return nil, nil, err
	}
	return is, qs, nil
}

func run(c ingestConfig, addr, httpAddr string, drain time.Duration) error {
	is, qs, err := newServers(c)
	if err != nil {
		return err
	}
	if qs != nil {
		defer qs.Close()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 3)
	go func() {
		fmt.Fprintf(os.Stderr, "twpp-ingest: TCP ingest on %s -> %s\n", addr, c.dir)
		errc <- is.ListenAndServe(addr)
	}()

	var hs, query *http.Server
	if httpAddr != "" {
		hs = &http.Server{Addr: httpAddr, Handler: is.Handler()}
		go func() {
			fmt.Fprintf(os.Stderr, "twpp-ingest: HTTP ingest on %s\n", httpAddr)
			if err := hs.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
				errc <- err
			}
		}()
	}
	if qs != nil {
		query = &http.Server{Addr: c.serveAddr, Handler: qs.Handler()}
		go func() {
			fmt.Fprintf(os.Stderr, "twpp-ingest: query plane on %s\n", c.serveAddr)
			if err := query.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
				errc <- err
			}
		}()
	}

	select {
	case err := <-errc:
		is.Close()
		return err
	case <-ctx.Done():
		stop()
		fmt.Fprintf(os.Stderr, "twpp-ingest: shutting down (drain %s)\n", drain)
		sctx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		var first error
		if hs != nil {
			if err := hs.Shutdown(sctx); err != nil {
				hs.Close()
				first = err
			}
		}
		if query != nil {
			if err := query.Shutdown(sctx); err != nil {
				query.Close()
				if first == nil {
					first = err
				}
			}
		}
		if err := is.Close(); err != nil && first == nil {
			first = err
		}
		return first
	}
}
