package main

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"twpp/internal/cli"
	"twpp/internal/testkit"
)

func TestNewServersUsageErrors(t *testing.T) {
	cases := []ingestConfig{
		{},                                      // missing -dir
		{dir: "x", maxSessions: 0},              // bad -max-sessions
		{dir: "x", maxSessions: -1, workers: 1}, // bad -max-sessions
	}
	for i, c := range cases {
		_, _, err := newServers(c)
		if err == nil {
			t.Fatalf("case %d: no error", i)
		}
		if cli.ExitCode(err) != cli.ExitUsage {
			t.Errorf("case %d: exit code %d, want %d (usage): %v", i, cli.ExitCode(err), cli.ExitUsage, err)
		}
	}
}

// The colocated loop: a producer streams a session over TCP, the seal
// hook mounts it in the same process's query plane, and the query
// plane serves it immediately — then a second session into the same
// mount becomes visible after its seal refreshes the mount, no
// restart anywhere.
func TestColocatedServeLoop(t *testing.T) {
	c := ingestConfig{
		dir:         t.TempDir(),
		maxSessions: 8,
		idleTimeout: 5 * time.Second,
		serveAddr:   "127.0.0.1:0", // presence enables the query plane
		quiet:       true,
		workers:     1,
	}
	is, qs, err := newServers(c)
	if err != nil {
		t.Fatal(err)
	}
	defer qs.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- is.Serve(ln) }()
	defer func() {
		if err := is.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()
	// The query plane is driven in-process; its listener is irrelevant.
	query := httptest.NewServer(qs.Handler())
	defer query.Close()

	w := testkit.Generate(testkit.Config{Shape: testkit.Periodic, Seed: 9})
	p := &testkit.Producer{Addr: ln.Addr().String(), Mount: "live", Names: w.FuncNames, Events: w.Linear()}
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("session rejected: %s (%s)", res.Code, res.Detail)
	}

	getStats := func() StatsProbe {
		resp, err := http.Get(query.URL + "/v1/live/stats/1")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("stats status %d", resp.StatusCode)
		}
		var sp StatsProbe
		if err := json.NewDecoder(resp.Body).Decode(&sp); err != nil {
			t.Fatal(err)
		}
		return sp
	}
	first := getStats()
	if first.Calls == 0 {
		t.Fatal("colocated mount served zero calls")
	}

	// Second session, same mount: the seal hook refreshes in place.
	if res, err = p.Run(); err != nil || !res.OK() {
		t.Fatalf("second session: err=%v res=%+v", err, res)
	}
	second := getStats()
	if second.Calls != 2*first.Calls {
		t.Fatalf("calls after second session = %d, want %d", second.Calls, 2*first.Calls)
	}

	// The shared registry surfaces ingest metrics on the query plane.
	resp, err := http.Get(query.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf [1 << 16]byte
	n, _ := resp.Body.Read(buf[:])
	if got := string(buf[:n]); !containsLine(got, "twpp_ingest_sessions_sealed_total 2") {
		t.Errorf("metrics missing sealed counter:\n%s", got)
	}
}

// StatsProbe picks the fields the test asserts from a stats response.
type StatsProbe struct {
	Calls int `json:"calls"`
}

func containsLine(s, line string) bool {
	for len(s) > 0 {
		i := 0
		for i < len(s) && s[i] != '\n' {
			i++
		}
		if s[:i] == line {
			return true
		}
		if i == len(s) {
			break
		}
		s = s[i+1:]
	}
	return false
}
