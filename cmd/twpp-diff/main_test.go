package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"

	"twpp"
	"twpp/internal/testkit"
)

// compileAndCompact traces a minilang program and returns its
// compacted TWPP.
func compileAndCompact(t *testing.T, src string) *twpp.TWPP {
	t.Helper()
	prog, err := twpp.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	r, err := prog.Trace(nil)
	if err != nil {
		t.Fatal(err)
	}
	tw, _ := twpp.Compact(r.WPP)
	return tw
}

// The baseline program: w alternates between two paths, so the
// profile has a two-path hot set with a stable ranking.
const progA = `
func main() {
    var s = 0;
    for (var i = 0; i < 24; i = i + 1) {
        s = s + w(i % 2);
    }
    print(s);
}
func w(m) {
    var j = 0;
    if (m > 0) {
        j = j + 3;
    }
    while (j < 6) {
        j = j + 1;
    }
    return m + j;
}
`

// The regressed program: w is called more often and only ever takes
// the m=0 path — one hot path disappears and the call count inflates,
// tripping both thresholds.
const progB = `
func main() {
    var s = 0;
    for (var i = 0; i < 40; i = i + 1) {
        s = s + w(0);
    }
    print(s);
}
func w(m) {
    var j = 0;
    if (m > 0) {
        j = j + 3;
    }
    while (j < 6) {
        j = j + 1;
    }
    return m + j;
}
`

// writeDiffFixtures lays out the test containers in dir: the baseline
// as a v2 file (a.twpp) and a segmented directory (a.twppd) with
// identical content, the regressed profile (b.twpp), and a calls-only
// drift (c.twpp: the baseline with one function's hottest path
// invoked ~25% more — same path set, same ranking).
func writeDiffFixtures(t *testing.T, dir string) {
	t.Helper()
	ta := compileAndCompact(t, progA)
	if err := twpp.WriteFile(filepath.Join(dir, "a.twpp"), ta); err != nil {
		t.Fatal(err)
	}
	if err := twpp.CompactSegmented(filepath.Join(dir, "a.twppd"), ta, twpp.SegmentOptions{Segments: 2, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	if err := twpp.WriteFile(filepath.Join(dir, "b.twpp"), compileAndCompact(t, progB)); err != nil {
		t.Fatal(err)
	}
	tc, _, err := testkit.MutateProfile(ta, testkit.MutInflateCalls, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := twpp.WriteFile(filepath.Join(dir, "c.twpp"), tc); err != nil {
		t.Fatal(err)
	}
}

// chdir moves the process into dir until the test ends, so fixture
// labels in reports are stable relative paths instead of temp dirs.
func chdir(t *testing.T, dir string) {
	t.Helper()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chdir(old) })
}

func TestRunIdenticalAcrossSegmentation(t *testing.T) {
	dir := t.TempDir()
	writeDiffFixtures(t, dir)
	chdir(t, dir)
	for _, c := range []diffConfig{
		{pathA: "a.twpp", pathB: "a.twppd", topK: 3, callThresh: 0.10, factorThresh: 0.25},
		{pathA: "a.twppd", pathB: "a.twpp", topK: 3, callThresh: 0.10, factorThresh: 0.25, json: true},
		{pathA: "a.twpp", pathB: "a.twpp", topK: 3, callThresh: 0.10, factorThresh: 0.25, mmap: true},
	} {
		if err := run(io.Discard, c); err != nil {
			t.Fatalf("diff %s vs %s: %v", c.pathA, c.pathB, err)
		}
	}
}

func TestRunRegression(t *testing.T) {
	dir := t.TempDir()
	writeDiffFixtures(t, dir)
	chdir(t, dir)
	var buf bytes.Buffer
	err := run(&buf, diffConfig{pathA: "a.twpp", pathB: "b.twpp", json: true, topK: 3, callThresh: 0.10, factorThresh: 0.25})
	if err == nil {
		t.Fatal("regressed profile diffed clean")
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"regression": true`)) {
		t.Fatalf("JSON report missing regression flag:\n%s", buf.Bytes())
	}
}

func TestRunThresholds(t *testing.T) {
	dir := t.TempDir()
	writeDiffFixtures(t, dir)
	chdir(t, dir)
	// a vs c moves only call counts (same paths, same ranking): the
	// default 10% threshold trips on the ~25% inflation...
	err := run(io.Discard, diffConfig{pathA: "a.twpp", pathB: "c.twpp", topK: 3, callThresh: 0.10, factorThresh: 0.25})
	if err == nil {
		t.Fatal("25% call growth passed the 10% threshold")
	}
	// ...a 150% threshold tolerates it...
	var buf bytes.Buffer
	if err := run(&buf, diffConfig{pathA: "a.twpp", pathB: "c.twpp", topK: 3, callThresh: 1.5, factorThresh: 0.25}); err != nil {
		t.Fatalf("call growth under a loose threshold: %v", err)
	}
	// ...and the delta itself is still reported either way.
	if !bytes.Contains(buf.Bytes(), []byte("[changed]")) {
		t.Fatalf("calls-only delta missing from human report:\n%s", buf.Bytes())
	}
	// Disabling the call check entirely also passes.
	if err := run(io.Discard, diffConfig{pathA: "a.twpp", pathB: "c.twpp", topK: 3, callThresh: -1, factorThresh: -1}); err != nil {
		t.Fatalf("call check disabled: %v", err)
	}
}
