// Command twpp-diff compares two compacted TWPP containers — any mix
// of format v1, v2, and segmented container directories
// (auto-detected) — and reports profile regressions: paths that
// appeared or disappeared (matched by trace identity, not index),
// hot-path rank drift in the top-K, and call-count / compaction-factor
// changes beyond relative thresholds.
//
// Usage:
//
//	twpp-diff [-json] [-k 3] [-call-threshold 0.10] [-factor-threshold 0.25] [-mmap] a.twpp b.twppd
//
// Exit codes make it a CI gate: 0 means the profiles are within
// thresholds (identical content — even across different formats,
// segmentations, or backends — always exits 0), 1 means a regression
// was detected (the report is still printed), 2 is a usage error, and
// 3+ are structured decode failures (corrupt, truncated, resource
// limit) per internal/cli.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"twpp/internal/cli"
	"twpp/internal/diff"
	"twpp/internal/storage"
	"twpp/internal/wppfile"
)

// errRegression maps to cli.ExitFailure (1): the diff worked, the
// profiles regressed.
var errRegression = errors.New("profile regression detected")

type diffConfig struct {
	pathA, pathB string
	json         bool
	topK         int
	callThresh   float64
	factorThresh float64
	mmap         bool
}

func main() {
	var c diffConfig
	d := diff.DefaultOptions()
	flag.BoolVar(&c.json, "json", false, "emit the report as stable JSON instead of human-readable text")
	flag.IntVar(&c.topK, "k", d.TopK, "hot-path rank window compared for drift (0 disables)")
	flag.Float64Var(&c.callThresh, "call-threshold", d.CallThreshold, "relative call-count change flagged as regression (negative disables)")
	flag.Float64Var(&c.factorThresh, "factor-threshold", d.FactorThreshold, "relative compaction-factor drop flagged as regression (negative disables)")
	flag.BoolVar(&c.mmap, "mmap", false, "read through read-only memory mappings")
	flag.Parse()
	if flag.NArg() == 2 {
		c.pathA, c.pathB = flag.Arg(0), flag.Arg(1)
	}
	cli.Exit("twpp-diff", run(os.Stdout, c))
}

func run(out io.Writer, c diffConfig) error {
	if c.pathA == "" || c.pathB == "" {
		return cli.Usagef("usage: twpp-diff [flags] <a.twpp> <b.twpp>")
	}
	open := wppfile.OpenOptions{}
	if c.mmap {
		open.Backend = storage.KindMmap
	}
	opts := diff.Options{
		TopK:            c.topK,
		CallThreshold:   c.callThresh,
		FactorThreshold: c.factorThresh,
	}
	report, err := diff.Files(context.Background(), c.pathA, c.pathB, open, opts)
	if err != nil {
		return err
	}
	if c.json {
		b, err := report.JSON()
		if err != nil {
			return err
		}
		if _, err := out.Write(b); err != nil {
			return err
		}
	} else if err := report.WriteHuman(out); err != nil {
		return err
	}
	if report.Regression {
		return fmt.Errorf("%w: %d threshold violation(s)", errRegression, len(report.Regressions))
	}
	return nil
}
