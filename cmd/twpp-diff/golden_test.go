package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"twpp/internal/cli"
	"twpp/internal/testkit"
)

var update = flag.Bool("update", false, "rewrite golden files")

// testdataDir is resolved before any test chdirs into a fixture
// directory (reports label sides with relative paths, so the golden
// tests run from inside the fixture dir).
var testdataDir, _ = filepath.Abs("testdata")

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	p := filepath.Join(testdataDir, name)
	if *update {
		if err := os.MkdirAll(testdataDir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(p)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", p, got, want)
	}
}

func defaults() diffConfig {
	return diffConfig{topK: 3, callThresh: 0.10, factorThresh: 0.25}
}

// The regressed pair, human-readable: per-function rows, path
// add/remove markers, and the regression table.
func TestGoldenHuman(t *testing.T) {
	dir := t.TempDir()
	writeDiffFixtures(t, dir)
	chdir(t, dir)
	c := defaults()
	c.pathA, c.pathB = "a.twpp", "b.twpp"
	var buf bytes.Buffer
	if err := run(&buf, c); cli.ExitCode(err) != cli.ExitFailure {
		t.Fatalf("regressed pair: exit %d, want %d (err: %v)", cli.ExitCode(err), cli.ExitFailure, err)
	}
	checkGolden(t, "regression_human.golden", buf.Bytes())
}

// The same pair as stable JSON: the exact bytes /v1/diff serves.
func TestGoldenJSON(t *testing.T) {
	dir := t.TempDir()
	writeDiffFixtures(t, dir)
	chdir(t, dir)
	c := defaults()
	c.pathA, c.pathB, c.json = "a.twpp", "b.twpp", true
	var buf bytes.Buffer
	if err := run(&buf, c); cli.ExitCode(err) != cli.ExitFailure {
		t.Fatalf("regressed pair: exit %d, want %d (err: %v)", cli.ExitCode(err), cli.ExitFailure, err)
	}
	checkGolden(t, "regression_json.golden", buf.Bytes())
}

// Identical content across segmentation boundaries: an empty report.
func TestGoldenIdentical(t *testing.T) {
	dir := t.TempDir()
	writeDiffFixtures(t, dir)
	chdir(t, dir)
	c := defaults()
	c.pathA, c.pathB = "a.twpp", "a.twppd"
	var buf bytes.Buffer
	if err := run(&buf, c); err != nil {
		t.Fatalf("identical content: %v", err)
	}
	checkGolden(t, "identical_human.golden", buf.Bytes())
}

// The full exit-code contract: 0 clean, 1 regression, 2 usage, 3
// corrupt, 4 truncated — through the same classifier main uses.
func TestExitCodes(t *testing.T) {
	dir := t.TempDir()
	writeDiffFixtures(t, dir)
	img, err := os.ReadFile(filepath.Join(dir, "a.twpp"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "corrupt.twpp"), testkit.BitFlip(img, 0, 3), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "trunc.twpp"), testkit.Truncate(img, 9), 0o644); err != nil {
		t.Fatal(err)
	}
	chdir(t, dir)

	cases := []struct {
		name string
		a, b string
		want int
	}{
		{"identical file", "a.twpp", "a.twpp", cli.ExitOK},
		{"identical across segmentation", "a.twpp", "a.twppd", cli.ExitOK},
		{"segmented first", "a.twppd", "a.twpp", cli.ExitOK},
		{"regression", "a.twpp", "b.twpp", cli.ExitFailure},
		{"regression reversed", "b.twpp", "a.twpp", cli.ExitFailure},
		{"missing args is usage", "", "", cli.ExitUsage},
		{"one arg is usage", "a.twpp", "", cli.ExitUsage},
		{"corrupt side b", "a.twpp", "corrupt.twpp", cli.ExitCorrupt},
		{"corrupt side a", "corrupt.twpp", "a.twpp", cli.ExitCorrupt},
		{"truncated side b", "a.twpp", "trunc.twpp", cli.ExitTruncated},
		{"absent file is plain failure", "a.twpp", "nope.twpp", cli.ExitFailure},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			c := defaults()
			c.pathA, c.pathB = tc.a, tc.b
			err := run(&bytes.Buffer{}, c)
			if got := cli.ExitCode(err); got != tc.want {
				t.Fatalf("exit code %d, want %d (err: %v)", got, tc.want, err)
			}
		})
	}
}
