// Command twpp-trace executes a minilang program under whole-program-
// path instrumentation and writes the raw (uncompacted) WPP file.
//
// Usage:
//
//	twpp-trace -src prog.mini [-input 1,2,3] [-o trace.wpp] [-stats]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"twpp"
	"twpp/internal/cli"
)

func main() {
	var (
		srcPath = flag.String("src", "", "minilang source file (required)")
		input   = flag.String("input", "", "comma-separated integers consumed by read statements")
		out     = flag.String("o", "trace.wpp", "output raw WPP file")
		stats   = flag.Bool("stats", true, "print trace statistics")
	)
	flag.Parse()
	cli.Exit("twpp-trace", run(*srcPath, *input, *out, *stats))
}

func run(srcPath, input, out string, stats bool) error {
	if srcPath == "" {
		return cli.Usagef("missing -src")
	}
	src, err := os.ReadFile(srcPath)
	if err != nil {
		return err
	}
	prog, err := twpp.Compile(string(src))
	if err != nil {
		return err
	}
	vals, err := parseInput(input)
	if err != nil {
		return err
	}
	run, err := prog.Trace(vals)
	if err != nil {
		return err
	}
	if err := twpp.WriteRawFile(out, run.WPP); err != nil {
		return err
	}
	if stats {
		dcg, traces := run.WPP.RawSizes()
		fmt.Printf("wrote %s: %d calls, %d blocks, DCG %d bytes, traces %d bytes\n",
			out, run.WPP.NumCalls(), run.WPP.NumBlocks(), dcg, traces)
		if len(run.Output) > 0 {
			fmt.Printf("program output: %v\n", run.Output)
		}
	}
	return nil
}

func parseInput(s string) ([]int64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad input value %q: %w", p, err)
		}
		out[i] = v
	}
	return out, nil
}
