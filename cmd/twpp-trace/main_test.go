package main

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"twpp"
)

func TestParseInput(t *testing.T) {
	cases := []struct {
		in   string
		want []int64
		err  bool
	}{
		{"", nil, false},
		{"1", []int64{1}, false},
		{"1, -2, 3", []int64{1, -2, 3}, false},
		{"x", nil, true},
		{"1,,2", nil, true},
	}
	for _, c := range cases {
		got, err := parseInput(c.in)
		if (err != nil) != c.err {
			t.Errorf("parseInput(%q) err = %v", c.in, err)
			continue
		}
		if !c.err && !reflect.DeepEqual(got, c.want) {
			t.Errorf("parseInput(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "p.mini")
	if err := os.WriteFile(src, []byte(`
func main() {
    read n;
    var s = 0;
    for (var i = 0; i < n; i = i + 1) {
        s = s + i;
    }
    print(s);
}
`), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "t.wpp")
	if err := run(src, "5", out, false); err != nil {
		t.Fatal(err)
	}
	w, err := twpp.ReadRawFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if w.NumCalls() != 1 {
		t.Errorf("calls = %d", w.NumCalls())
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	if err := run("", "", "out", false); err == nil {
		t.Error("missing src: want error")
	}
	if err := run(filepath.Join(dir, "absent.mini"), "", "out", false); err == nil {
		t.Error("absent file: want error")
	}
	bad := filepath.Join(dir, "bad.mini")
	os.WriteFile(bad, []byte("not a program"), 0o644)
	if err := run(bad, "", filepath.Join(dir, "o"), false); err == nil {
		t.Error("bad program: want error")
	}
	good := filepath.Join(dir, "good.mini")
	os.WriteFile(good, []byte("func main() { print(1); }"), 0o644)
	if err := run(good, "zzz", filepath.Join(dir, "o"), false); err == nil {
		t.Error("bad input vector: want error")
	}
}
