package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"twpp/internal/bench"
)

func TestRunSingleTableTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("runs all profiles")
	}
	dir := t.TempDir()
	jsonOut := filepath.Join(dir, "bench.json")
	if err := run(0.02, dir, 1, 0, 2, 2, jsonOut, "1,2", false); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(jsonOut)
	if err != nil {
		t.Fatalf("-json output missing: %v", err)
	}
	var rep bench.JSONReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("-json output unparsable: %v", err)
	}
	if len(rep.Profiles) != len(bench.Profiles()) {
		t.Errorf("json profiles = %d, want %d", len(rep.Profiles), len(bench.Profiles()))
	}
	for _, p := range rep.Profiles {
		if p.ThroughputMBPerS <= 0 {
			t.Errorf("%s: non-positive compaction throughput", p.Name)
		}
		if p.ExtractAvgNs <= 0 || p.ExtractSpeedupOverRaw <= 0 {
			t.Errorf("%s: missing extraction latency (%d ns, %.2fx)",
				p.Name, p.ExtractAvgNs, p.ExtractSpeedupOverRaw)
		}
	}
	if rep.ScaleOut == nil {
		t.Error("-scale-procs set but json has no scale_out section")
	} else {
		if rep.ScaleOut.NumCPU < 1 || len(rep.ScaleOut.Runs) != 2 {
			t.Errorf("malformed scale_out: %+v", rep.ScaleOut)
		}
		for _, r := range rep.ScaleOut.Runs {
			if r.OpsPerS <= 0 || r.NsPerExtract <= 0 {
				t.Errorf("scale_out point GOMAXPROCS=%d has no throughput", r.GoMaxProcs)
			}
		}
	}
	if err := run(0.02, dir, 2, 0, 2, 1, "", "", false); err != nil {
		t.Fatal(err)
	}
}

func TestRunFigures(t *testing.T) {
	for _, f := range []int{9, 10, 11, 12} {
		if err := run(1, "", 0, f, 1, 1, "", "", false); err != nil {
			t.Errorf("figure %d: %v", f, err)
		}
	}
}

func TestMinHelper(t *testing.T) {
	if min(1, 2) != 1 || min(5, 3) != 3 {
		t.Error("min broken")
	}
}
