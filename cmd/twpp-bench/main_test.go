package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"twpp/internal/bench"
)

func TestRunSingleTableTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("runs all profiles")
	}
	dir := t.TempDir()
	jsonOut := filepath.Join(dir, "bench.json")
	if err := run(0.02, dir, 1, 0, 2, 2, jsonOut, "1,2", false, true, false); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(jsonOut)
	if err != nil {
		t.Fatalf("-json output missing: %v", err)
	}
	var rep bench.JSONReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("-json output unparsable: %v", err)
	}
	if len(rep.Profiles) != len(bench.Profiles()) {
		t.Errorf("json profiles = %d, want %d", len(rep.Profiles), len(bench.Profiles()))
	}
	for _, p := range rep.Profiles {
		if p.ThroughputMBPerS <= 0 {
			t.Errorf("%s: non-positive compaction throughput", p.Name)
		}
		if p.ExtractAvgNs <= 0 || p.ExtractSpeedupOverRaw <= 0 {
			t.Errorf("%s: missing extraction latency (%d ns, %.2fx)",
				p.Name, p.ExtractAvgNs, p.ExtractSpeedupOverRaw)
		}
	}
	if rep.ScaleOut == nil {
		t.Error("-scale-procs set but json has no scale_out section")
	} else {
		// The requested 1,2 axis is clamped to NumCPU by default, so
		// the honest point count depends on the host.
		want := len(bench.ClampProcs([]int{1, 2}, false))
		if rep.ScaleOut.NumCPU < 1 || len(rep.ScaleOut.Runs) != want {
			t.Errorf("malformed scale_out (want %d clamped runs): %+v", want, rep.ScaleOut)
		}
		for _, r := range rep.ScaleOut.Runs {
			if r.OpsPerS <= 0 || r.NsPerExtract <= 0 {
				t.Errorf("scale_out point GOMAXPROCS=%d has no throughput", r.GoMaxProcs)
			}
			if r.Oversubscribed {
				t.Errorf("clamped sweep produced an oversubscribed point: %+v", r)
			}
		}
	}
	if rep.SegmentScale == nil {
		t.Error("-segments set but json has no segment_scale section")
	} else {
		// 1, 4, 16 live points plus a merged point for each
		// multi-segment container.
		if len(rep.SegmentScale.Runs) != 5 {
			t.Errorf("segment_scale has %d runs, want 5: %+v", len(rep.SegmentScale.Runs), rep.SegmentScale)
		}
		var merged int
		for _, r := range rep.SegmentScale.Runs {
			if r.NsPerExtract <= 0 || r.Segments < 1 {
				t.Errorf("segment_scale point %+v has no measurement", r)
			}
			if r.Merged {
				merged++
				if r.Segments != 1 {
					t.Errorf("merged point still has %d segments", r.Segments)
				}
			}
		}
		if merged != 2 {
			t.Errorf("segment_scale has %d merged points, want 2", merged)
		}
	}
	if err := run(0.02, dir, 2, 0, 2, 1, "", "", false, false, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunFigures(t *testing.T) {
	for _, f := range []int{9, 10, 11, 12} {
		if err := run(1, "", 0, f, 1, 1, "", "", false, false, false); err != nil {
			t.Errorf("figure %d: %v", f, err)
		}
	}
}

func TestMinHelper(t *testing.T) {
	if min(1, 2) != 1 || min(5, 3) != 3 {
		t.Error("min broken")
	}
}
