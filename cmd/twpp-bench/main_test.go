package main

import "testing"

func TestRunSingleTableTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("runs all profiles")
	}
	dir := t.TempDir()
	if err := run(0.02, dir, 1, 0, 2, false); err != nil {
		t.Fatal(err)
	}
	if err := run(0.02, dir, 2, 0, 2, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunFigures(t *testing.T) {
	for _, f := range []int{9, 10, 11, 12} {
		if err := run(1, "", 0, f, 1, false); err != nil {
			t.Errorf("figure %d: %v", f, err)
		}
	}
}

func TestMinHelper(t *testing.T) {
	if min(1, 2) != 1 || min(5, 3) != 3 {
		t.Error("min broken")
	}
}
