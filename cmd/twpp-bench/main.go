// Command twpp-bench regenerates the tables and figures of Zhang &
// Gupta, "Timestamped Whole Program Path Representation and its
// Applications" (PLDI 2001) on the synthetic SPECint95-like workloads.
//
// Usage:
//
//	twpp-bench [-scale f] [-dir path] [-j workers] [-json out.json]
//	           [-scale-procs 1,4,8] [-force-procs] [-segments]
//	           [-table N | -figure N | -all]
//
// With -all (the default) every table (1-6) and figure (8-12) is
// produced. Tables 4 and 5 involve per-function timing runs and
// dominate the runtime. -json additionally writes a machine-readable
// report (compaction throughput and extraction latency per profile,
// the BENCH_*.json trajectory format); -j sizes the compaction worker
// pool. -scale-procs sweeps warm pooled extraction over a GOMAXPROCS
// axis, clamped to NumCPU unless -force-procs marks the
// oversubscribed points explicitly; -segments sweeps segmented
// containers over a growing segment count, pre- and post-merge.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"twpp/internal/bench"
	"twpp/internal/cli"
	"twpp/internal/figures"
)

func main() {
	var (
		scale      = flag.Float64("scale", 1.0, "workload scale factor (driver iterations multiplier)")
		dir        = flag.String("dir", "", "directory for generated WPP files (default: a temp dir)")
		table      = flag.Int("table", 0, "regenerate only this table (1-6)")
		figure     = flag.Int("figure", 0, "regenerate only this figure (8-12)")
		ablation   = flag.Bool("ablation", false, "also print the design-decision ablation study")
		maxFuncs   = flag.Int("maxfuncs", 40, "cap on functions measured per benchmark in timing experiments (0 = all)")
		workers    = flag.Int("j", 0, "compaction worker pool size (0 = GOMAXPROCS, 1 = sequential)")
		jsonOut    = flag.String("json", "", "also write a machine-readable benchmark report to this file")
		scaleProcs = flag.String("scale-procs", "", "comma-separated GOMAXPROCS points for the extraction scale-out sweep (e.g. 1,4,8)")
		forceProcs = flag.Bool("force-procs", false, "run -scale-procs points past NumCPU instead of clamping; such runs are marked oversubscribed")
		segments   = flag.Bool("segments", false, "also sweep segmented-container extraction as segment count grows 1/4/16, pre- and post-merge")
	)
	flag.Parse()
	cli.Exit("twpp-bench", run(*scale, *dir, *table, *figure, *maxFuncs, *workers, *jsonOut, *scaleProcs, *forceProcs, *segments, *ablation))
}

// parseProcs parses the -scale-procs list.
func parseProcs(s string) ([]int, error) {
	var out []int
	for _, p := range strings.Split(s, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		v, err := strconv.Atoi(p)
		if err != nil || v < 1 {
			return nil, cli.Usagef("bad -scale-procs entry %q", p)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, cli.Usagef("-scale-procs lists no points")
	}
	return out, nil
}

func run(scale float64, dir string, table, figure, maxFuncs, workers int, jsonOut, scaleProcs string, forceProcs, segments, ablation bool) error {
	out := os.Stdout

	// Figures 9-12 are worked examples independent of the workload
	// scale; serve them without running the benchmarks.
	if figure >= 9 && figure <= 12 {
		return figures.Print(out, figure)
	}

	if dir == "" {
		tmp, err := os.MkdirTemp("", "twpp-bench-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}

	fmt.Fprintf(out, "Running %d benchmark profiles at scale %.2f (files in %s)\n\n",
		len(bench.Profiles()), scale, dir)
	results, err := bench.RunAllWorkers(scale, dir, workers)
	if err != nil {
		return err
	}

	want := func(n int) bool {
		return (table == 0 && figure == 0) || table == n
	}
	wantFig := func(n int) bool {
		return (table == 0 && figure == 0) || figure == n
	}

	if want(1) {
		bench.Table1(out, results)
		fmt.Fprintln(out)
	}
	if want(2) {
		bench.Table2(out, results)
		fmt.Fprintln(out)
	}
	if want(3) {
		bench.Table3(out, results)
		fmt.Fprintln(out)
	}
	var timings []*bench.ExtractTiming
	if want(4) || jsonOut != "" {
		for _, r := range results {
			t, err := bench.MeasureExtraction(r, maxFuncs)
			if err != nil {
				return err
			}
			timings = append(timings, t)
		}
	}
	if want(4) {
		bench.Table4(out, results, timings)
		fmt.Fprintln(out)
	}
	if want(5) {
		var comps []*bench.SequiturComparison
		for _, r := range results {
			c, err := bench.MeasureSequitur(r, min(maxFuncs, 20))
			if err != nil {
				return err
			}
			comps = append(comps, c)
		}
		bench.Table5(out, results, comps)
		fmt.Fprintln(out)
	}
	if want(6) {
		bench.Table6(out, results)
		fmt.Fprintln(out)
	}
	if wantFig(8) {
		bench.Figure8(out, results)
		fmt.Fprintln(out)
	}
	if ablation {
		var abls []*bench.Ablation
		for _, r := range results {
			a, err := bench.MeasureAblation(r)
			if err != nil {
				return err
			}
			abls = append(abls, a)
		}
		bench.AblationTable(out, abls)
		fmt.Fprintln(out)
	}
	if table == 0 && figure == 0 {
		for _, f := range []int{9, 10, 12} {
			if err := figures.Print(out, f); err != nil {
				return err
			}
			fmt.Fprintln(out)
		}
		bench.Summary(out, results, timings)
	}
	var scaleRep *bench.ScaleReport
	if scaleProcs != "" {
		procs, err := parseProcs(scaleProcs)
		if err != nil {
			return err
		}
		// Sweep the hottest profile's compacted file: the scale curve
		// needs one representative workload, not all five.
		scaleRep, err = bench.RunExtractScale(results[0].CompPath, procs, 0, forceProcs)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "Extraction scale-out (%s):\n", scaleRep.Note)
		for _, r := range scaleRep.Runs {
			over := ""
			if r.Oversubscribed {
				over = "  (oversubscribed)"
			}
			fmt.Fprintf(out, "  GOMAXPROCS=%-2d %10.0f extracts/s  %8d ns/extract  %.2f allocs/op%s\n",
				r.GoMaxProcs, r.OpsPerS, r.NsPerExtract, r.AllocsPerOp, over)
		}
		if sp := scaleRep.Speedup(); sp > 0 {
			fmt.Fprintf(out, "  speedup %d -> %d procs: %.2fx\n\n",
				scaleRep.Runs[0].GoMaxProcs, scaleRep.Runs[len(scaleRep.Runs)-1].GoMaxProcs, sp)
		}
	}
	var segRep *bench.ScaleReport
	if segments {
		segRep, err = bench.RunSegmentScale(results[0].CompPath, dir, nil, 0)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "Segmented extraction (warm pooled path, 1 worker):")
		for _, r := range segRep.Runs {
			state := "live"
			if r.Merged {
				state = "merged"
			}
			fmt.Fprintf(out, "  segments=%-3d %-6s %8d ns/extract  %.2f allocs/op\n",
				r.Segments, state, r.NsPerExtract, r.AllocsPerOp)
		}
		if ratio := segRep.SegmentLatencyRatio(); ratio > 0 {
			fmt.Fprintf(out, "  worst live multi-segment latency: %.2fx the single-segment baseline\n\n", ratio)
		}
	}
	if jsonOut != "" {
		var mems []*bench.MemoryStats
		for _, r := range results {
			m, err := bench.MeasureMemory(r, workers)
			if err != nil {
				return err
			}
			mems = append(mems, m)
		}
		rep := bench.BuildJSONReport(scale, workers, results, timings, mems)
		rep.ScaleOut = scaleRep
		rep.SegmentScale = segRep
		if err := rep.WriteJSON(jsonOut); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", jsonOut)
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
