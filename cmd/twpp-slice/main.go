// Command twpp-slice runs the dynamic slicing algorithms of §4.3.2 on
// a minilang program execution: it traces the program, builds the
// timestamped dynamic CFG, and prints the requested slice.
//
// Usage:
//
//	twpp-slice -src prog.mini [-input 3,-4,3,-2] [-func main] \
//	           -block 14 [-var Z] [-time T] [-approach 3|2|1|inter] [-v]
//	twpp-slice -src prog.mini -in trace.twppd -block 14 [...]
//
// -in replays a previously compacted container of this program's
// execution — a single .twpp file or a segmented container directory
// — instead of re-running the program, so slicing works directly off
// stored traces. -v first prints a header describing the traced
// execution and the container format version its compacted form
// carries.
//
// With -approach inter the slice crosses call boundaries
// (interprocedural, instance-precise); otherwise the named
// Agrawal-Horgan approach runs within the chosen function's first
// invocation.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"twpp"
	"twpp/internal/cfg"
	"twpp/internal/cli"
	"twpp/internal/core"
	"twpp/internal/dataflow"
	"twpp/internal/minilang"
	"twpp/internal/slicing"
	"twpp/internal/trace"
	"twpp/internal/wpp"
)

func main() {
	var (
		srcPath  = flag.String("src", "", "minilang source file (required)")
		inPath   = flag.String("in", "", "compacted container (file or segmented directory) of this program's execution; skips re-tracing")
		input    = flag.String("input", "", "comma-separated integers for read statements")
		funcName = flag.String("func", "main", "function to slice within")
		block    = flag.Int("block", 0, "criterion block (statement number; required)")
		varName  = flag.String("var", "", "criterion variable (default: the block's uses)")
		instant  = flag.Int64("time", 0, "criterion instance timestamp (0 = last execution)")
		approach = flag.String("approach", "3", "1, 2, 3, or inter")
		verbose  = flag.Bool("v", false, "print a trace header with the container format version")
	)
	flag.Parse()
	cli.Exit("twpp-slice", run(*srcPath, *inPath, *input, *funcName, *block, *varName, *instant, *approach, *verbose, os.Stdout))
}

func run(srcPath, inPath, input, funcName string, block int, varName string, instant int64, approach string, verbose bool, out io.Writer) error {
	if srcPath == "" {
		return cli.Usagef("missing -src")
	}
	if block <= 0 {
		return cli.Usagef("missing -block")
	}
	srcBytes, err := os.ReadFile(srcPath)
	if err != nil {
		return err
	}
	prog, err := twpp.CompileMode(string(srcBytes), twpp.PerStatement)
	if err != nil {
		return err
	}
	var w *twpp.RawWPP
	if inPath != "" {
		if input != "" {
			return cli.Usagef("-in replays a stored trace; drop -input")
		}
		f, err := twpp.OpenContainer(inPath, twpp.OpenOptions{VerifyChecksums: true})
		if err != nil {
			return err
		}
		tw, err := f.ReadAll()
		f.Close()
		if err != nil {
			return err
		}
		w, err = twpp.Reconstruct(tw)
		if err != nil {
			return err
		}
		w.FuncNames = prog.Names
	} else {
		vals, err := parseInput(input)
		if err != nil {
			return err
		}
		res, err := prog.Trace(vals)
		if err != nil {
			return err
		}
		w = res.WPP
	}
	if verbose {
		fmt.Fprintf(out, "%s: %d functions, %d unique traces, container format v%d\n",
			srcPath, len(prog.Names), len(w.Traces), twpp.DefaultFormat)
	}

	fnID, ok := prog.FuncByName(funcName)
	if !ok {
		return fmt.Errorf("no function %q", funcName)
	}
	crit := slicing.Criterion{
		Block: cfg.BlockID(block),
		Time:  core.Timestamp(instant),
	}
	if varName != "" {
		crit.Vars = []cfg.Loc{{Var: strings.TrimSuffix(varName, "[]"), Array: strings.HasSuffix(varName, "[]")}}
	}

	if approach == "inter" {
		c, _ := wpp.Compact(w)
		tw := core.FromCompacted(c)
		s := slicing.NewInter(prog.CFG, tw)
		node := findCall(tw.Root, cfg.FuncID(fnID))
		if node == nil {
			return fmt.Errorf("function %q was never called in this execution", funcName)
		}
		sl, err := s.Slice(node, crit)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "interprocedural slice on %s at %s:B%d (%d instances):\n",
			critVarText(varName), funcName, block, sl.Instances)
		for _, site := range sl.Sites {
			fmt.Fprintf(out, "  %s:B%-4d %s\n", prog.Names[site.Fn], site.Block,
				blockText(prog, site.Fn, site.Block))
		}
		return nil
	}

	// Intraprocedural: use the function's first invocation trace.
	path := firstTraceOf(w, cfg.FuncID(fnID))
	if path == nil {
		return fmt.Errorf("function %q was never called in this execution", funcName)
	}
	tg := dataflow.BuildFromPath(path)
	s := slicing.New(prog.CFG.Graph(cfg.FuncID(fnID)), tg)
	var sl *slicing.Slice
	switch approach {
	case "1":
		sl, err = s.Approach1(crit)
	case "2":
		sl, err = s.Approach2(crit)
	case "3":
		sl, err = s.Approach3(crit)
	default:
		return cli.Usagef("unknown approach %q (want 1, 2, 3, or inter)", approach)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "approach %s slice on %s at %s:B%d:\n", approach, critVarText(varName), funcName, block)
	for _, b := range sl.Blocks {
		fmt.Fprintf(out, "  B%-4d %s\n", b, blockText(prog, cfg.FuncID(fnID), b))
	}
	return nil
}

func critVarText(v string) string {
	if v == "" {
		return "(block uses)"
	}
	return v
}

// blockText renders the first statement (or terminator) of a block for
// display.
func blockText(prog *twpp.Program, fn cfg.FuncID, b cfg.BlockID) string {
	g := prog.CFG.Graph(fn)
	if g == nil {
		return ""
	}
	blk := g.Block(b)
	if blk == nil {
		return ""
	}
	if len(blk.Stmts) > 0 {
		return minilang.StmtString(blk.Stmts[0])
	}
	switch t := blk.Term.(type) {
	case *cfg.CondJump:
		return "if (" + minilang.ExprString(t.Cond) + ")"
	case *cfg.Ret:
		if t.Value != nil {
			return "return " + minilang.ExprString(t.Value) + ";"
		}
		return "return;"
	}
	return "(exit)"
}

// firstTraceOf returns the path trace of fn's first invocation
// (preorder over the dynamic call graph), or nil.
func firstTraceOf(w *twpp.RawWPP, fn cfg.FuncID) wpp.PathTrace {
	var out wpp.PathTrace
	w.Walk(func(n *trace.CallNode) {
		if out == nil && n.Fn == fn {
			out = wpp.PathTrace(w.Traces[n.Trace])
		}
	})
	return out
}

// findCall returns the first DCG node invoking fn, preorder.
func findCall(root *wpp.CallNode, fn cfg.FuncID) *wpp.CallNode {
	if root == nil {
		return nil
	}
	if root.Fn == fn {
		return root
	}
	for _, c := range root.Children {
		if n := findCall(c, fn); n != nil {
			return n
		}
	}
	return nil
}

func parseInput(s string) ([]int64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad input value %q: %w", p, err)
		}
		out[i] = v
	}
	return out, nil
}
