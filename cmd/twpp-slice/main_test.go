package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const fig10 = `
func main() {
    read N;
    var I = 1;
    var J = 0;
    while (I <= N) {
        read X;
        if (X < 0) {
            Y = f1(X);
        } else {
            Y = f2(X);
        }
        Z = f3(Y);
        print(Z);
        J = 1;
        I = I + 1;
    }
    Z = Z + J;
    print(Z);
}
func f1(x) { return 0 - x; }
func f2(x) { return x * 2; }
func f3(y) { return y + 1; }
`

func writeSrc(t *testing.T) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "fig10.mini")
	if err := os.WriteFile(p, []byte(fig10), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestAllApproaches(t *testing.T) {
	src := writeSrc(t)
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer null.Close()
	for _, a := range []string{"1", "2", "3", "inter"} {
		if err := run(src, "3,-4,3,-2", "main", 14, "Z", 0, a, false, null); err != nil {
			t.Errorf("approach %s: %v", a, err)
		}
	}
}

// -v prepends a header naming the container format version.
func TestVerboseHeader(t *testing.T) {
	src := writeSrc(t)
	var buf bytes.Buffer
	if err := run(src, "3,-4,3,-2", "main", 14, "Z", 0, "3", true, &buf); err != nil {
		t.Fatal(err)
	}
	head, _, _ := strings.Cut(buf.String(), "\n")
	if !strings.Contains(head, "container format v2") {
		t.Errorf("-v header = %q", head)
	}
}

func TestSliceInCallee(t *testing.T) {
	src := writeSrc(t)
	null, _ := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	defer null.Close()
	// f1's only block is 1.
	if err := run(src, "3,-4,3,-2", "f1", 1, "", 0, "inter", false, null); err != nil {
		t.Errorf("callee slice: %v", err)
	}
	if err := run(src, "3,-4,3,-2", "f1", 1, "", 0, "3", false, null); err != nil {
		t.Errorf("callee intraprocedural slice: %v", err)
	}
}

func TestSliceErrors(t *testing.T) {
	src := writeSrc(t)
	null, _ := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	defer null.Close()
	cases := []struct {
		name string
		err  func() error
	}{
		{"missing src", func() error { return run("", "", "main", 1, "", 0, "3", false, null) }},
		{"missing block", func() error { return run(src, "", "main", 0, "", 0, "3", false, null) }},
		{"bad approach", func() error { return run(src, "1,1", "main", 14, "", 0, "9", false, null) }},
		{"bad function", func() error { return run(src, "1,1", "nope", 14, "", 0, "3", false, null) }},
		{"bad input", func() error { return run(src, "x", "main", 14, "", 0, "3", false, null) }},
		{"absent file", func() error { return run("/no/such/file", "", "main", 1, "", 0, "3", false, null) }},
		{"unexecuted block", func() error { return run(src, "0", "main", 7, "", 0, "3", false, null) }},
	}
	for _, c := range cases {
		if c.err() == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
}
