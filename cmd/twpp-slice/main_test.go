package main

import (
	"io"

	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"twpp"
)

const fig10 = `
func main() {
    read N;
    var I = 1;
    var J = 0;
    while (I <= N) {
        read X;
        if (X < 0) {
            Y = f1(X);
        } else {
            Y = f2(X);
        }
        Z = f3(Y);
        print(Z);
        J = 1;
        I = I + 1;
    }
    Z = Z + J;
    print(Z);
}
func f1(x) { return 0 - x; }
func f2(x) { return x * 2; }
func f3(y) { return y + 1; }
`

func writeSrc(t *testing.T) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "fig10.mini")
	if err := os.WriteFile(p, []byte(fig10), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestAllApproaches(t *testing.T) {
	src := writeSrc(t)
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer null.Close()
	for _, a := range []string{"1", "2", "3", "inter"} {
		if err := run(src, "", "3,-4,3,-2", "main", 14, "Z", 0, a, false, null); err != nil {
			t.Errorf("approach %s: %v", a, err)
		}
	}
}

// -v prepends a header naming the container format version.
func TestVerboseHeader(t *testing.T) {
	src := writeSrc(t)
	var buf bytes.Buffer
	if err := run(src, "", "3,-4,3,-2", "main", 14, "Z", 0, "3", true, &buf); err != nil {
		t.Fatal(err)
	}
	head, _, _ := strings.Cut(buf.String(), "\n")
	if !strings.Contains(head, "container format v2") {
		t.Errorf("-v header = %q", head)
	}
}

func TestSliceInCallee(t *testing.T) {
	src := writeSrc(t)
	null, _ := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	defer null.Close()
	// f1's only block is 1.
	if err := run(src, "", "3,-4,3,-2", "f1", 1, "", 0, "inter", false, null); err != nil {
		t.Errorf("callee slice: %v", err)
	}
	if err := run(src, "", "3,-4,3,-2", "f1", 1, "", 0, "3", false, null); err != nil {
		t.Errorf("callee intraprocedural slice: %v", err)
	}
}

func TestSliceErrors(t *testing.T) {
	src := writeSrc(t)
	null, _ := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	defer null.Close()
	cases := []struct {
		name string
		err  func() error
	}{
		{"missing src", func() error { return run("", "", "", "main", 1, "", 0, "3", false, null) }},
		{"missing block", func() error { return run(src, "", "", "main", 0, "", 0, "3", false, null) }},
		{"bad approach", func() error { return run(src, "", "1,1", "main", 14, "", 0, "9", false, null) }},
		{"bad function", func() error { return run(src, "", "1,1", "nope", 14, "", 0, "3", false, null) }},
		{"bad input", func() error { return run(src, "", "x", "main", 14, "", 0, "3", false, null) }},
		{"absent file", func() error { return run("/no/such/file", "", "", "main", 1, "", 0, "3", false, null) }},
		{"unexecuted block", func() error { return run(src, "", "0", "main", 7, "", 0, "3", false, null) }},
	}
	for _, c := range cases {
		if c.err() == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
}

// -in replays a stored container — single file or segmented directory
// — and yields exactly the slice the live execution yields.
func TestSliceFromContainer(t *testing.T) {
	src := writeSrc(t)
	dir := t.TempDir()

	// Trace once and store the compacted result both ways.
	prog, err := twpp.CompileMode(fig10, twpp.PerStatement)
	if err != nil {
		t.Fatal(err)
	}
	res, err := prog.Trace([]int64{3, -4, 3, -2})
	if err != nil {
		t.Fatal(err)
	}
	tw, _ := twpp.Compact(res.WPP)
	single := filepath.Join(dir, "t.twpp")
	if err := twpp.WriteFile(single, tw); err != nil {
		t.Fatal(err)
	}
	segDir := filepath.Join(dir, "t.twppd")
	if err := twpp.CompactSegmented(segDir, tw, twpp.SegmentOptions{SegmentBytes: 16}); err != nil {
		t.Fatal(err)
	}

	for _, approach := range []string{"3", "inter"} {
		var live, fromFile, fromDir bytes.Buffer
		if err := run(src, "", "3,-4,3,-2", "main", 14, "Z", 0, approach, false, &live); err != nil {
			t.Fatal(err)
		}
		if err := run(src, single, "", "main", 14, "Z", 0, approach, false, &fromFile); err != nil {
			t.Fatal(err)
		}
		if err := run(src, segDir, "", "main", 14, "Z", 0, approach, false, &fromDir); err != nil {
			t.Fatal(err)
		}
		if fromFile.String() != live.String() {
			t.Errorf("approach %s: file replay differs:\n%s\nvs live:\n%s", approach, fromFile.String(), live.String())
		}
		if fromDir.String() != live.String() {
			t.Errorf("approach %s: segmented replay differs:\n%s\nvs live:\n%s", approach, fromDir.String(), live.String())
		}
	}

	// -in and -input are mutually exclusive.
	if err := run(src, single, "1,2", "main", 14, "Z", 0, "3", false, io.Discard); err == nil {
		t.Error("-in with -input: want usage error")
	}
}
