package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"twpp/internal/cli"
)

var update = flag.Bool("update", false, "rewrite golden files")

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	p := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(p)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", p, got, want)
	}
}

// The paper's Figure 10 worked example, sliced on Z at the loop exit:
// approach 3 (intraprocedural) and the instance-precise
// interprocedural slice, pinned as golden output.
func TestGoldenApproach3(t *testing.T) {
	src := writeSrc(t)
	var buf bytes.Buffer
	if err := run(src, "", "3,-4,3,-2", "main", 14, "Z", 0, "3", false, &buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "approach3.golden", buf.Bytes())
}

func TestGoldenInterprocedural(t *testing.T) {
	src := writeSrc(t)
	var buf bytes.Buffer
	if err := run(src, "", "3,-4,3,-2", "main", 14, "Z", 0, "inter", false, &buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "inter.golden", buf.Bytes())
}

func TestSliceExitCodes(t *testing.T) {
	src := writeSrc(t)
	null := &bytes.Buffer{}
	cases := []struct {
		name     string
		src      string
		block    int
		approach string
		want     int
	}{
		{"success", src, 14, "3", cli.ExitOK},
		{"missing -src is usage", "", 14, "3", cli.ExitUsage},
		{"missing -block is usage", src, 0, "3", cli.ExitUsage},
		{"unknown approach is usage", src, 14, "bogus", cli.ExitUsage},
		{"unreadable source is failure", filepath.Join(t.TempDir(), "nope.mini"), 14, "3", cli.ExitFailure},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			err := run(tc.src, "", "3,-4,3,-2", "main", tc.block, "Z", 0, tc.approach, false, null)
			if got := cli.ExitCode(err); got != tc.want {
				t.Fatalf("exit code %d, want %d (err: %v)", got, tc.want, err)
			}
		})
	}
}
