package minilang

import "testing"

// FuzzParse exercises the lexer/parser on arbitrary byte soup: it must
// never panic, and any program that parses must survive a
// Format -> Parse round trip.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"func main() { var x = 0; print(x); }",
		"func main() { for (var i = 0; i < 3; i = i + 1) { if (i % 2 == 0) { continue; } } }",
		"func main() { while (1) { break; } } func g(a, b) { return a[b]; }",
		"func main() { read x; a[0] = alloc(3); }",
		"func main() { x = -(1 + 2) * !3 && 4 || 5; }",
		"func main() {", "}", "/* unterminated", "func func func",
		"func main() { x = 1 }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			return
		}
		text := Format(prog)
		prog2, err := Parse(text)
		if err != nil {
			t.Fatalf("formatted output does not re-parse: %v\nsource: %q\nformatted:\n%s", err, src, text)
		}
		if text2 := Format(prog2); text2 != text {
			t.Fatalf("Format not idempotent for %q", src)
		}
	})
}
