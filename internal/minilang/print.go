package minilang

import (
	"fmt"
	"strings"
)

// Format pretty-prints a program as parseable minilang source.
func Format(p *Program) string {
	var b strings.Builder
	for i, fn := range p.Funcs {
		if i > 0 {
			b.WriteByte('\n')
		}
		formatFunc(&b, fn)
	}
	return b.String()
}

func formatFunc(b *strings.Builder, fn *FuncDecl) {
	fmt.Fprintf(b, "func %s(%s) ", fn.Name, strings.Join(fn.Params, ", "))
	formatBlock(b, fn.Body, 0)
	b.WriteByte('\n')
}

func indent(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("    ")
	}
}

func formatBlock(b *strings.Builder, blk *BlockStmt, depth int) {
	b.WriteString("{\n")
	for _, s := range blk.Stmts {
		formatStmt(b, s, depth+1)
	}
	indent(b, depth)
	b.WriteString("}")
}

func formatStmt(b *strings.Builder, s Stmt, depth int) {
	indent(b, depth)
	switch x := s.(type) {
	case *BlockStmt:
		formatBlock(b, x, depth)
		b.WriteByte('\n')
	case *VarStmt:
		fmt.Fprintf(b, "var %s = %s;\n", x.Name, ExprString(x.Value))
	case *AssignStmt:
		if x.Index != nil {
			fmt.Fprintf(b, "%s[%s] = %s;\n", x.Name, ExprString(x.Index), ExprString(x.Value))
		} else {
			fmt.Fprintf(b, "%s = %s;\n", x.Name, ExprString(x.Value))
		}
	case *IfStmt:
		fmt.Fprintf(b, "if (%s) ", ExprString(x.Cond))
		formatBlock(b, x.Then, depth)
		for x.Else != nil {
			if elif, ok := x.Else.(*IfStmt); ok {
				fmt.Fprintf(b, " else if (%s) ", ExprString(elif.Cond))
				formatBlock(b, elif.Then, depth)
				x = elif
				continue
			}
			b.WriteString(" else ")
			formatBlock(b, x.Else.(*BlockStmt), depth)
			break
		}
		b.WriteByte('\n')
	case *WhileStmt:
		fmt.Fprintf(b, "while (%s) ", ExprString(x.Cond))
		formatBlock(b, x.Body, depth)
		b.WriteByte('\n')
	case *ForStmt:
		b.WriteString("for (")
		if x.Init != nil {
			b.WriteString(clauseString(x.Init))
		}
		b.WriteString("; ")
		if x.Cond != nil {
			b.WriteString(ExprString(x.Cond))
		}
		b.WriteString("; ")
		if x.Post != nil {
			b.WriteString(clauseString(x.Post))
		}
		b.WriteString(") ")
		formatBlock(b, x.Body, depth)
		b.WriteByte('\n')
	case *ReturnStmt:
		if x.Value != nil {
			fmt.Fprintf(b, "return %s;\n", ExprString(x.Value))
		} else {
			b.WriteString("return;\n")
		}
	case *BreakStmt:
		b.WriteString("break;\n")
	case *ContinueStmt:
		b.WriteString("continue;\n")
	case *PrintStmt:
		args := make([]string, len(x.Args))
		for i, a := range x.Args {
			args[i] = ExprString(a)
		}
		fmt.Fprintf(b, "print(%s);\n", strings.Join(args, ", "))
	case *ReadStmt:
		fmt.Fprintf(b, "read %s;\n", x.Name)
	case *ExprStmt:
		fmt.Fprintf(b, "%s;\n", ExprString(x.X))
	default:
		panic(fmt.Sprintf("minilang.formatStmt: unknown statement %T", s))
	}
}

func clauseString(s Stmt) string {
	switch x := s.(type) {
	case *VarStmt:
		return fmt.Sprintf("var %s = %s", x.Name, ExprString(x.Value))
	case *AssignStmt:
		return fmt.Sprintf("%s = %s", x.Name, ExprString(x.Value))
	default:
		panic(fmt.Sprintf("minilang.clauseString: unsupported clause %T", s))
	}
}

var opText = map[TokenKind]string{
	Plus: "+", Minus: "-", Star: "*", Slash: "/", Percent: "%",
	Lt: "<", Le: "<=", Gt: ">", Ge: ">=", EqEq: "==", NotEq: "!=",
	AndAnd: "&&", OrOr: "||", Not: "!",
}

// ExprString renders an expression as source text. Parentheses are
// emitted conservatively around every binary operand, which keeps the
// printer trivially correct (re-parsing yields the same tree shape up
// to redundant grouping).
func ExprString(e Expr) string {
	switch x := e.(type) {
	case *NumberLit:
		return fmt.Sprintf("%d", x.Value)
	case *Ident:
		return x.Name
	case *IndexExpr:
		return fmt.Sprintf("%s[%s]", x.Name, ExprString(x.Index))
	case *BinaryExpr:
		return fmt.Sprintf("(%s %s %s)", ExprString(x.X), opText[x.Op], ExprString(x.Y))
	case *UnaryExpr:
		return fmt.Sprintf("%s%s", opText[x.Op], ExprString(x.X))
	case *CallExpr:
		args := make([]string, len(x.Args))
		for i, a := range x.Args {
			args[i] = ExprString(a)
		}
		return fmt.Sprintf("%s(%s)", x.Name, strings.Join(args, ", "))
	default:
		panic(fmt.Sprintf("minilang.ExprString: unknown expression %T", e))
	}
}

// StmtString renders a single statement as one line of source (used in
// diagnostics and in the slicing application's output).
func StmtString(s Stmt) string {
	var b strings.Builder
	formatStmt(&b, s, 0)
	return strings.TrimRight(b.String(), "\n")
}
