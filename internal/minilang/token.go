// Package minilang implements the small imperative language used as the
// tracing substrate for the TWPP reproduction. The paper (Zhang & Gupta,
// PLDI 2001) collected whole program paths from SPECint95 binaries via
// the Trimaran infrastructure; here, programs written in (or generated
// into) minilang are compiled to control flow graphs and executed by a
// tracing interpreter, which produces structurally equivalent WPPs.
//
// The language is deliberately C-like: integer variables, arrays,
// arithmetic and logical expressions, if/else, while, for,
// break/continue, functions with call-by-value integers and
// by-reference arrays, `read` (from a supplied input vector) and
// `print` (to a collected output vector).
package minilang

import "fmt"

// TokenKind enumerates lexical token types.
type TokenKind int

// Token kinds.
const (
	EOF TokenKind = iota
	IDENT
	NUMBER

	// Keywords.
	KwFunc
	KwIf
	KwElse
	KwWhile
	KwFor
	KwReturn
	KwBreak
	KwContinue
	KwPrint
	KwRead
	KwVar

	// Punctuation.
	LParen
	RParen
	LBrace
	RBrace
	LBracket
	RBracket
	Comma
	Semicolon

	// Operators.
	Assign // =
	Plus
	Minus
	Star
	Slash
	Percent
	Lt
	Le
	Gt
	Ge
	EqEq
	NotEq
	AndAnd
	OrOr
	Not
)

var tokenNames = map[TokenKind]string{
	EOF: "EOF", IDENT: "identifier", NUMBER: "number",
	KwFunc: "func", KwIf: "if", KwElse: "else", KwWhile: "while",
	KwFor: "for", KwReturn: "return", KwBreak: "break",
	KwContinue: "continue", KwPrint: "print", KwRead: "read", KwVar: "var",
	LParen: "(", RParen: ")", LBrace: "{", RBrace: "}",
	LBracket: "[", RBracket: "]", Comma: ",", Semicolon: ";",
	Assign: "=", Plus: "+", Minus: "-", Star: "*", Slash: "/",
	Percent: "%", Lt: "<", Le: "<=", Gt: ">", Ge: ">=",
	EqEq: "==", NotEq: "!=", AndAnd: "&&", OrOr: "||", Not: "!",
}

// String returns the human-readable name of the token kind.
func (k TokenKind) String() string {
	if s, ok := tokenNames[k]; ok {
		return s
	}
	return fmt.Sprintf("TokenKind(%d)", int(k))
}

var keywords = map[string]TokenKind{
	"func": KwFunc, "if": KwIf, "else": KwElse, "while": KwWhile,
	"for": KwFor, "return": KwReturn, "break": KwBreak,
	"continue": KwContinue, "print": KwPrint, "read": KwRead, "var": KwVar,
}

// Pos is a source position (1-based line and column).
type Pos struct {
	Line, Col int
}

// String formats the position as line:col.
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical token.
type Token struct {
	Kind TokenKind
	Text string // identifier name or number literal text
	Num  int64  // value when Kind == NUMBER
	Pos  Pos
}

func (t Token) String() string {
	switch t.Kind {
	case IDENT:
		return fmt.Sprintf("identifier %q", t.Text)
	case NUMBER:
		return fmt.Sprintf("number %d", t.Num)
	default:
		return fmt.Sprintf("%q", t.Kind.String())
	}
}
