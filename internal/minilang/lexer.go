package minilang

import (
	"fmt"
	"strconv"
)

// Lexer tokenizes minilang source text.
type Lexer struct {
	src  string
	pos  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// A LexError reports an invalid character or malformed literal.
type LexError struct {
	Pos Pos
	Msg string
}

func (e *LexError) Error() string {
	return fmt.Sprintf("minilang: lex error at %s: %s", e.Pos, e.Msg)
}

func (l *Lexer) peek() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *Lexer) peek2() byte {
	if l.pos+1 >= len(l.src) {
		return 0
	}
	return l.src[l.pos+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			start := Pos{l.line, l.col}
			l.advance()
			l.advance()
			for {
				if l.pos >= len(l.src) {
					return &LexError{start, "unterminated block comment"}
				}
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					break
				}
				l.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

func isLetter(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	pos := Pos{l.line, l.col}
	if l.pos >= len(l.src) {
		return Token{Kind: EOF, Pos: pos}, nil
	}
	c := l.peek()
	switch {
	case isLetter(c):
		start := l.pos
		for l.pos < len(l.src) && (isLetter(l.peek()) || isDigit(l.peek())) {
			l.advance()
		}
		text := l.src[start:l.pos]
		if kw, ok := keywords[text]; ok {
			return Token{Kind: kw, Text: text, Pos: pos}, nil
		}
		return Token{Kind: IDENT, Text: text, Pos: pos}, nil
	case isDigit(c):
		start := l.pos
		for l.pos < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
		text := l.src[start:l.pos]
		if l.pos < len(l.src) && isLetter(l.peek()) {
			return Token{}, &LexError{pos, fmt.Sprintf("malformed number %q", text+string(l.peek()))}
		}
		n, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return Token{}, &LexError{pos, fmt.Sprintf("number %q out of range", text)}
		}
		return Token{Kind: NUMBER, Text: text, Num: n, Pos: pos}, nil
	}

	single := map[byte]TokenKind{
		'(': LParen, ')': RParen, '{': LBrace, '}': RBrace,
		'[': LBracket, ']': RBracket, ',': Comma, ';': Semicolon,
		'+': Plus, '-': Minus, '*': Star, '/': Slash, '%': Percent,
	}
	l.advance()
	switch c {
	case '=':
		if l.peek() == '=' {
			l.advance()
			return Token{Kind: EqEq, Pos: pos}, nil
		}
		return Token{Kind: Assign, Pos: pos}, nil
	case '<':
		if l.peek() == '=' {
			l.advance()
			return Token{Kind: Le, Pos: pos}, nil
		}
		return Token{Kind: Lt, Pos: pos}, nil
	case '>':
		if l.peek() == '=' {
			l.advance()
			return Token{Kind: Ge, Pos: pos}, nil
		}
		return Token{Kind: Gt, Pos: pos}, nil
	case '!':
		if l.peek() == '=' {
			l.advance()
			return Token{Kind: NotEq, Pos: pos}, nil
		}
		return Token{Kind: Not, Pos: pos}, nil
	case '&':
		if l.peek() == '&' {
			l.advance()
			return Token{Kind: AndAnd, Pos: pos}, nil
		}
		return Token{}, &LexError{pos, "expected && (single & not supported)"}
	case '|':
		if l.peek() == '|' {
			l.advance()
			return Token{Kind: OrOr, Pos: pos}, nil
		}
		return Token{}, &LexError{pos, "expected || (single | not supported)"}
	default:
		if k, ok := single[c]; ok {
			return Token{Kind: k, Pos: pos}, nil
		}
		return Token{}, &LexError{pos, fmt.Sprintf("unexpected character %q", string(c))}
	}
}

// Tokenize lexes all of src, returning the tokens excluding the final
// EOF token.
func Tokenize(src string) ([]Token, error) {
	l := NewLexer(src)
	var out []Token
	for {
		tok, err := l.Next()
		if err != nil {
			return nil, err
		}
		if tok.Kind == EOF {
			return out, nil
		}
		out = append(out, tok)
	}
}
