package minilang

import (
	"strings"
	"testing"
)

func TestTokenKindString(t *testing.T) {
	cases := map[TokenKind]string{
		EOF: "EOF", IDENT: "identifier", NUMBER: "number",
		KwFunc: "func", KwWhile: "while", LParen: "(", Semicolon: ";",
		AndAnd: "&&", NotEq: "!=",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
	if s := TokenKind(999).String(); !strings.Contains(s, "999") {
		t.Errorf("unknown kind string = %q", s)
	}
}

func TestTokenString(t *testing.T) {
	cases := []struct {
		tok  Token
		want string
	}{
		{Token{Kind: IDENT, Text: "x"}, `identifier "x"`},
		{Token{Kind: NUMBER, Num: 42}, "number 42"},
		{Token{Kind: KwIf}, `"if"`},
	}
	for _, c := range cases {
		if got := c.tok.String(); got != c.want {
			t.Errorf("Token.String() = %q, want %q", got, c.want)
		}
	}
}

func TestFormatCoversAllConstructs(t *testing.T) {
	src := `
func main() {
    var a = alloc(3);
    read n;
    a[0] = n;
    for (i = 0; i < n; i = i + 1) {
        if (i == 0) {
            continue;
        } else if (i == 1) {
            helper(i);
        } else {
            break;
        }
    }
    for (; ; ) {
        break;
    }
    while (!(n > 0) || a[0] == 0 && n != 3) {
        n = n + 1;
    }
    {
        var nested = -n;
        print(nested, a[0], len(a));
    }
    return;
}
func helper(v) {
    return v * (1 + 2) / 3 % 4 - 5;
}
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	text := Format(prog)
	prog2, err := Parse(text)
	if err != nil {
		t.Fatalf("formatted output does not re-parse: %v\n%s", err, text)
	}
	if text2 := Format(prog2); text2 != text {
		t.Errorf("Format not idempotent:\n--- first ---\n%s\n--- second ---\n%s", text, text2)
	}
	for _, want := range []string{"for (; ; )", "else if", "continue;", "break;",
		"read n;", "return;", "alloc(3)", "len(a)", "-n"} {
		if !strings.Contains(text, want) {
			t.Errorf("formatted output missing %q:\n%s", want, text)
		}
	}
}

func TestStmtString(t *testing.T) {
	prog, err := Parse(`func main() { x = 1 + 2; }`)
	if err != nil {
		t.Fatal(err)
	}
	s := prog.Funcs[0].Body.Stmts[0]
	if got := StmtString(s); got != "x = (1 + 2);" {
		t.Errorf("StmtString = %q", got)
	}
}

func TestExprStringUnaryNot(t *testing.T) {
	prog, err := Parse(`func main() { x = !(1 < 2); }`)
	if err != nil {
		t.Fatal(err)
	}
	assign := prog.Funcs[0].Body.Stmts[0].(*AssignStmt)
	if got := ExprString(assign.Value); got != "!(1 < 2)" {
		t.Errorf("ExprString = %q", got)
	}
}

func TestForWithVarClause(t *testing.T) {
	prog, err := Parse(`func main() { for (var i = 0; i < 2; i = i + 1) { print(i); } }`)
	if err != nil {
		t.Fatal(err)
	}
	text := Format(prog)
	if !strings.Contains(text, "for (var i = 0; (i < 2); i = (i + 1))") {
		t.Errorf("for clause formatting:\n%s", text)
	}
	if _, err := Parse(text); err != nil {
		t.Fatalf("re-parse: %v", err)
	}
}

func TestPosString(t *testing.T) {
	if got := (Pos{Line: 3, Col: 7}).String(); got != "3:7" {
		t.Errorf("Pos.String = %q", got)
	}
}

func TestParseDeepNesting(t *testing.T) {
	// Deep but balanced nesting must parse without stack trouble.
	var b strings.Builder
	b.WriteString("func main() { var x = 0;\n")
	const depth = 200
	for i := 0; i < depth; i++ {
		b.WriteString("if (x == 0) {\n")
	}
	b.WriteString("x = 1;\n")
	for i := 0; i < depth; i++ {
		b.WriteString("}\n")
	}
	b.WriteString("}\n")
	if _, err := Parse(b.String()); err != nil {
		t.Fatal(err)
	}
}

func TestParenthesizedExpressionPrecedence(t *testing.T) {
	prog, err := Parse(`func main() { x = (1 + 2) * 3; }`)
	if err != nil {
		t.Fatal(err)
	}
	assign := prog.Funcs[0].Body.Stmts[0].(*AssignStmt)
	if got := ExprString(assign.Value); got != "((1 + 2) * 3)" {
		t.Errorf("got %q", got)
	}
}
