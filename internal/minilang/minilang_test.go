package minilang

import (
	"strings"
	"testing"
)

func TestTokenizeBasics(t *testing.T) {
	toks, err := Tokenize("func main() { x = 1 + 23; }")
	if err != nil {
		t.Fatal(err)
	}
	kinds := []TokenKind{KwFunc, IDENT, LParen, RParen, LBrace, IDENT,
		Assign, NUMBER, Plus, NUMBER, Semicolon, RBrace}
	if len(toks) != len(kinds) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(kinds), toks)
	}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Errorf("token %d = %s, want %s", i, toks[i].Kind, k)
		}
	}
	if toks[7].Num != 1 || toks[9].Num != 23 {
		t.Errorf("numbers = %d, %d; want 1, 23", toks[7].Num, toks[9].Num)
	}
}

func TestTokenizeOperators(t *testing.T) {
	toks, err := Tokenize("< <= > >= == != && || ! = - * / %")
	if err != nil {
		t.Fatal(err)
	}
	kinds := []TokenKind{Lt, Le, Gt, Ge, EqEq, NotEq, AndAnd, OrOr, Not,
		Assign, Minus, Star, Slash, Percent}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Errorf("token %d = %s, want %s", i, toks[i].Kind, k)
		}
	}
}

func TestTokenizeComments(t *testing.T) {
	src := `
// a line comment
x /* block
comment */ y
`
	toks, err := Tokenize(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 2 || toks[0].Text != "x" || toks[1].Text != "y" {
		t.Errorf("tokens = %v", toks)
	}
	if toks[1].Pos.Line != 4 {
		t.Errorf("y at line %d, want 4", toks[1].Pos.Line)
	}
}

func TestTokenizeErrors(t *testing.T) {
	cases := []string{"@", "1x", "/* unterminated", "&", "|", "x # y"}
	for _, src := range cases {
		if _, err := Tokenize(src); err == nil {
			t.Errorf("Tokenize(%q): want error", src)
		}
	}
}

func TestParseSmallProgram(t *testing.T) {
	src := `
func main() {
    var x = 0;
    for (var i = 0; i < 10; i = i + 1) {
        if (x < 5) {
            x = f(x);
        } else {
            x = x - 1;
        }
    }
    print(x);
}

func f(a) {
    return a + 2;
}
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Funcs) != 2 {
		t.Fatalf("got %d functions", len(prog.Funcs))
	}
	main := prog.Func("main")
	if main == nil || main.Index != 0 {
		t.Fatalf("main = %+v", main)
	}
	f := prog.Func("f")
	if f == nil || len(f.Params) != 1 || f.Params[0] != "a" {
		t.Fatalf("f = %+v", f)
	}
	if len(main.Body.Stmts) != 3 {
		t.Errorf("main has %d statements, want 3", len(main.Body.Stmts))
	}
	if _, ok := main.Body.Stmts[1].(*ForStmt); !ok {
		t.Errorf("second statement is %T, want *ForStmt", main.Body.Stmts[1])
	}
}

func TestParsePrecedence(t *testing.T) {
	prog, err := Parse("func main() { x = 1 + 2 * 3 < 4 && 5 == 6; }")
	if err != nil {
		t.Fatal(err)
	}
	assign := prog.Funcs[0].Body.Stmts[0].(*AssignStmt)
	// Expect ((1 + (2*3)) < 4) && (5 == 6).
	want := "(((1 + (2 * 3)) < 4) && (5 == 6))"
	if got := ExprString(assign.Value); got != want {
		t.Errorf("parsed %s, want %s", got, want)
	}
}

func TestParseArraysAndBuiltins(t *testing.T) {
	src := `
func main() {
    var a = alloc(10);
    a[0] = 5;
    a[1 + 2] = a[0] * 2;
    var n = len(a);
    print(a[3], n);
}
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	stmts := prog.Funcs[0].Body.Stmts
	st := stmts[2].(*AssignStmt)
	if st.Index == nil {
		t.Fatal("array store lost its index")
	}
	if got := ExprString(st.Value); got != "(a[0] * 2)" {
		t.Errorf("store value = %s", got)
	}
}

func TestParseElseIfChain(t *testing.T) {
	src := `
func main() {
    var x = 1;
    if (x == 1) { x = 2; } else if (x == 2) { x = 3; } else { x = 4; }
}
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	ifs := prog.Funcs[0].Body.Stmts[1].(*IfStmt)
	elif, ok := ifs.Else.(*IfStmt)
	if !ok {
		t.Fatalf("else branch is %T, want *IfStmt", ifs.Else)
	}
	if _, ok := elif.Else.(*BlockStmt); !ok {
		t.Fatalf("final else is %T, want *BlockStmt", elif.Else)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src, wantSub string
	}{
		{"", "no main"},
		{"func f() {}", "no main"},
		{"func main() {} func main() {}", "redeclared"},
		{"func main(a, a) {}", "duplicate parameter"},
		{"func main() { g(); }", "undefined function"},
		{"func main() { f(1, 2); } func f(a) { return a; }", "takes 1 arguments, got 2"},
		{"func main() { alloc(); }", "alloc takes exactly one"},
		{"func main() { len(1, 2); }", "len takes exactly one"},
		{"func main() { x = ; }", "unexpected"},
		{"func main() { if x { } }", "expected"},
		{"func main() { x = 1 }", "expected"},
		{"func main() {", "unexpected EOF"},
		{"func main() { 5; }", "unexpected"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("Parse(%q): want error containing %q", c.src, c.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("Parse(%q) error = %q, want substring %q", c.src, err, c.wantSub)
		}
	}
}

func TestFormatRoundTrip(t *testing.T) {
	src := `
func main() {
    var total = 0;
    read n;
    var i = 0;
    while (i < n) {
        if (i % 2 == 0 && i > 0) {
            total = total + helper(i, total);
        } else if (i % 3 == 0) {
            total = total - 1;
        } else {
            continue;
        }
        i = i + 1;
    }
    for (var j = 0; j < 3; j = j + 1) {
        print(j, total);
    }
    var a = alloc(4);
    a[0] = total;
    print(a[0], len(a));
}

func helper(x, acc) {
    if (x > 100) {
        return acc;
    }
    return x * 2;
}
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	text := Format(prog)
	prog2, err := Parse(text)
	if err != nil {
		t.Fatalf("re-parse of formatted output failed: %v\n%s", err, text)
	}
	text2 := Format(prog2)
	if text != text2 {
		t.Errorf("Format not a fixed point:\nfirst:\n%s\nsecond:\n%s", text, text2)
	}
}

func TestWalkVisitsEverything(t *testing.T) {
	src := `
func main() {
    var x = -f(1, 2) + 3;
    read y;
    if (!(x < y)) { break; } else { continue; }
    while (1) { x[y] = 2; }
    return x;
}
func f(a, b) { return a; }
`
	// break/continue outside loops is semantically dubious but parses;
	// Walk only needs structural coverage.
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, fn := range prog.Funcs {
		Walk(fn, func(n Node) bool {
			switch n.(type) {
			case *CallExpr:
				counts["call"]++
			case *UnaryExpr:
				counts["unary"]++
			case *BreakStmt:
				counts["break"]++
			case *ContinueStmt:
				counts["continue"]++
			case *ReadStmt:
				counts["read"]++
			case *IndexExpr:
				counts["index"]++
			case *NumberLit:
				counts["num"]++
			}
			return true
		})
	}
	if counts["call"] != 1 || counts["unary"] != 2 || counts["break"] != 1 ||
		counts["continue"] != 1 || counts["read"] != 1 {
		t.Errorf("walk counts = %v", counts)
	}
}

func TestPosReporting(t *testing.T) {
	src := "func main() {\n  x = @;\n}"
	_, err := Parse(src)
	if err == nil {
		t.Fatal("want error")
	}
	le, ok := err.(*LexError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if le.Pos.Line != 2 || le.Pos.Col != 7 {
		t.Errorf("error at %v, want 2:7", le.Pos)
	}
}
