package minilang

import "fmt"

// Node is the interface implemented by all AST nodes.
type Node interface {
	Position() Pos
}

// Program is a parsed minilang compilation unit.
type Program struct {
	Funcs []*FuncDecl
	// ByName maps function name to its declaration.
	ByName map[string]*FuncDecl
}

// Func returns the declaration of the named function, or nil.
func (p *Program) Func(name string) *FuncDecl { return p.ByName[name] }

// FuncDecl is one function definition.
type FuncDecl struct {
	Name   string
	Params []string
	Body   *BlockStmt
	Pos    Pos
	// Index is the function's position in Program.Funcs; it doubles as
	// the FuncID used throughout the tracer.
	Index int
}

// Position implements Node.
func (f *FuncDecl) Position() Pos { return f.Pos }

// ---- Statements ----

// Stmt is the interface implemented by statement nodes.
type Stmt interface {
	Node
	stmtNode()
}

// BlockStmt is a brace-delimited statement list.
type BlockStmt struct {
	Stmts []Stmt
	LPos  Pos
}

// AssignStmt is `name = expr;` or `name[index] = expr;`.
type AssignStmt struct {
	Name  string
	Index Expr // nil for scalar assignment
	Value Expr
	Pos   Pos
}

// VarStmt is `var name = expr;` — identical to assignment at runtime,
// kept distinct so generated code reads naturally.
type VarStmt struct {
	Name  string
	Value Expr
	Pos   Pos
}

// IfStmt is `if (cond) { ... } else { ... }`; Else may be nil or
// another BlockStmt/IfStmt.
type IfStmt struct {
	Cond Expr
	Then *BlockStmt
	Else Stmt // nil, *BlockStmt, or *IfStmt
	Pos  Pos
}

// WhileStmt is `while (cond) { ... }`.
type WhileStmt struct {
	Cond Expr
	Body *BlockStmt
	Pos  Pos
}

// ForStmt is `for (init; cond; post) { ... }`; any clause may be nil
// (Init and Post must be assignments when present).
type ForStmt struct {
	Init Stmt // *AssignStmt or *VarStmt or nil
	Cond Expr // nil means true
	Post Stmt // *AssignStmt or nil
	Body *BlockStmt
	Pos  Pos
}

// ReturnStmt is `return;` or `return expr;`.
type ReturnStmt struct {
	Value Expr // may be nil
	Pos   Pos
}

// BreakStmt is `break;`.
type BreakStmt struct{ Pos Pos }

// ContinueStmt is `continue;`.
type ContinueStmt struct{ Pos Pos }

// PrintStmt is `print(expr, ...);`.
type PrintStmt struct {
	Args []Expr
	Pos  Pos
}

// ReadStmt is `read name;` — assigns the next value from the program
// input vector to name (0 when exhausted).
type ReadStmt struct {
	Name string
	Pos  Pos
}

// ExprStmt is an expression evaluated for effect (a call): `f(x);`.
type ExprStmt struct {
	X   Expr
	Pos Pos
}

// Position implementations.
func (s *BlockStmt) Position() Pos    { return s.LPos }
func (s *AssignStmt) Position() Pos   { return s.Pos }
func (s *VarStmt) Position() Pos      { return s.Pos }
func (s *IfStmt) Position() Pos       { return s.Pos }
func (s *WhileStmt) Position() Pos    { return s.Pos }
func (s *ForStmt) Position() Pos      { return s.Pos }
func (s *ReturnStmt) Position() Pos   { return s.Pos }
func (s *BreakStmt) Position() Pos    { return s.Pos }
func (s *ContinueStmt) Position() Pos { return s.Pos }
func (s *PrintStmt) Position() Pos    { return s.Pos }
func (s *ReadStmt) Position() Pos     { return s.Pos }
func (s *ExprStmt) Position() Pos     { return s.Pos }

func (*BlockStmt) stmtNode()    {}
func (*AssignStmt) stmtNode()   {}
func (*VarStmt) stmtNode()      {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*ForStmt) stmtNode()      {}
func (*ReturnStmt) stmtNode()   {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*PrintStmt) stmtNode()    {}
func (*ReadStmt) stmtNode()     {}
func (*ExprStmt) stmtNode()     {}

// ---- Expressions ----

// Expr is the interface implemented by expression nodes.
type Expr interface {
	Node
	exprNode()
}

// NumberLit is an integer literal.
type NumberLit struct {
	Value int64
	Pos   Pos
}

// Ident is a variable reference.
type Ident struct {
	Name string
	Pos  Pos
}

// IndexExpr is an array element load: name[index].
type IndexExpr struct {
	Name  string
	Index Expr
	Pos   Pos
}

// BinaryExpr is a binary operation; Op is one of the operator token
// kinds (Plus..OrOr).
type BinaryExpr struct {
	Op   TokenKind
	X, Y Expr
	Pos  Pos
}

// UnaryExpr is -x or !x.
type UnaryExpr struct {
	Op  TokenKind // Minus or Not
	X   Expr
	Pos Pos
}

// CallExpr is a function call or builtin (alloc, len).
type CallExpr struct {
	Name string
	Args []Expr
	Pos  Pos
}

// Position implementations.
func (e *NumberLit) Position() Pos  { return e.Pos }
func (e *Ident) Position() Pos      { return e.Pos }
func (e *IndexExpr) Position() Pos  { return e.Pos }
func (e *BinaryExpr) Position() Pos { return e.Pos }
func (e *UnaryExpr) Position() Pos  { return e.Pos }
func (e *CallExpr) Position() Pos   { return e.Pos }

func (*NumberLit) exprNode()  {}
func (*Ident) exprNode()      {}
func (*IndexExpr) exprNode()  {}
func (*BinaryExpr) exprNode() {}
func (*UnaryExpr) exprNode()  {}
func (*CallExpr) exprNode()   {}

// Builtin function names: alloc(n) creates a zeroed array, len(a)
// returns an array's length.
const (
	BuiltinAlloc = "alloc"
	BuiltinLen   = "len"
)

// IsBuiltin reports whether name is a builtin callable.
func IsBuiltin(name string) bool {
	return name == BuiltinAlloc || name == BuiltinLen
}

// Walk traverses the subtree rooted at n in depth-first preorder,
// calling fn for every node. If fn returns false the node's children
// are skipped.
func Walk(n Node, fn func(Node) bool) {
	if n == nil || !fn(n) {
		return
	}
	switch x := n.(type) {
	case *FuncDecl:
		Walk(x.Body, fn)
	case *BlockStmt:
		for _, s := range x.Stmts {
			Walk(s, fn)
		}
	case *AssignStmt:
		if x.Index != nil {
			Walk(x.Index, fn)
		}
		Walk(x.Value, fn)
	case *VarStmt:
		Walk(x.Value, fn)
	case *IfStmt:
		Walk(x.Cond, fn)
		Walk(x.Then, fn)
		if x.Else != nil {
			Walk(x.Else, fn)
		}
	case *WhileStmt:
		Walk(x.Cond, fn)
		Walk(x.Body, fn)
	case *ForStmt:
		if x.Init != nil {
			Walk(x.Init, fn)
		}
		if x.Cond != nil {
			Walk(x.Cond, fn)
		}
		if x.Post != nil {
			Walk(x.Post, fn)
		}
		Walk(x.Body, fn)
	case *ReturnStmt:
		if x.Value != nil {
			Walk(x.Value, fn)
		}
	case *PrintStmt:
		for _, a := range x.Args {
			Walk(a, fn)
		}
	case *ExprStmt:
		Walk(x.X, fn)
	case *IndexExpr:
		Walk(x.Index, fn)
	case *BinaryExpr:
		Walk(x.X, fn)
		Walk(x.Y, fn)
	case *UnaryExpr:
		Walk(x.X, fn)
	case *BreakStmt, *ContinueStmt, *ReadStmt, *NumberLit, *Ident, *CallExpr:
		if c, ok := x.(*CallExpr); ok {
			for _, a := range c.Args {
				Walk(a, fn)
			}
		}
	default:
		panic(fmt.Sprintf("minilang.Walk: unknown node %T", n))
	}
}
