package minilang

import "fmt"

// ParseError reports a syntax error with its source position.
type ParseError struct {
	Pos Pos
	Msg string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("minilang: parse error at %s: %s", e.Pos, e.Msg)
}

type parser struct {
	toks []Token
	pos  int
}

// Parse parses a complete minilang program and performs basic semantic
// checks (duplicate/undefined functions, arity of builtins, presence of
// main).
func Parse(src string) (*Program, error) {
	toks, err := Tokenize(src)
	if err != nil {
		return nil, err
	}
	// Append an explicit EOF sentinel so peeks never run off the end.
	last := Pos{1, 1}
	if n := len(toks); n > 0 {
		last = toks[n-1].Pos
	}
	toks = append(toks, Token{Kind: EOF, Pos: last})

	p := &parser{toks: toks}
	prog := &Program{ByName: make(map[string]*FuncDecl)}
	for p.peek().Kind != EOF {
		fn, err := p.funcDecl()
		if err != nil {
			return nil, err
		}
		if prog.ByName[fn.Name] != nil {
			return nil, &ParseError{fn.Pos, fmt.Sprintf("function %q redeclared", fn.Name)}
		}
		fn.Index = len(prog.Funcs)
		prog.Funcs = append(prog.Funcs, fn)
		prog.ByName[fn.Name] = fn
	}
	if err := checkProgram(prog); err != nil {
		return nil, err
	}
	return prog, nil
}

func (p *parser) peek() Token  { return p.toks[p.pos] }
func (p *parser) peek2() Token { return p.toks[min(p.pos+1, len(p.toks)-1)] }

func (p *parser) next() Token {
	t := p.toks[p.pos]
	if t.Kind != EOF {
		p.pos++
	}
	return t
}

func (p *parser) expect(k TokenKind) (Token, error) {
	t := p.peek()
	if t.Kind != k {
		return t, &ParseError{t.Pos, fmt.Sprintf("expected %q, found %s", k, t)}
	}
	return p.next(), nil
}

func (p *parser) funcDecl() (*FuncDecl, error) {
	kw, err := p.expect(KwFunc)
	if err != nil {
		return nil, err
	}
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	var params []string
	seen := make(map[string]bool)
	for p.peek().Kind != RParen {
		if len(params) > 0 {
			if _, err := p.expect(Comma); err != nil {
				return nil, err
			}
		}
		id, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		if seen[id.Text] {
			return nil, &ParseError{id.Pos, fmt.Sprintf("duplicate parameter %q", id.Text)}
		}
		seen[id.Text] = true
		params = append(params, id.Text)
	}
	p.next() // RParen
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return &FuncDecl{Name: name.Text, Params: params, Body: body, Pos: kw.Pos}, nil
}

func (p *parser) block() (*BlockStmt, error) {
	l, err := p.expect(LBrace)
	if err != nil {
		return nil, err
	}
	b := &BlockStmt{LPos: l.Pos}
	for p.peek().Kind != RBrace {
		if p.peek().Kind == EOF {
			return nil, &ParseError{p.peek().Pos, "unexpected EOF, expected }"}
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.next() // RBrace
	return b, nil
}

func (p *parser) stmt() (Stmt, error) {
	t := p.peek()
	switch t.Kind {
	case LBrace:
		return p.block()
	case KwVar:
		p.next()
		name, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(Assign); err != nil {
			return nil, err
		}
		v, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(Semicolon); err != nil {
			return nil, err
		}
		return &VarStmt{Name: name.Text, Value: v, Pos: t.Pos}, nil
	case KwIf:
		return p.ifStmt()
	case KwWhile:
		p.next()
		if _, err := p.expect(LParen); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: body, Pos: t.Pos}, nil
	case KwFor:
		return p.forStmt()
	case KwReturn:
		p.next()
		var v Expr
		if p.peek().Kind != Semicolon {
			var err error
			v, err = p.expr()
			if err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(Semicolon); err != nil {
			return nil, err
		}
		return &ReturnStmt{Value: v, Pos: t.Pos}, nil
	case KwBreak:
		p.next()
		if _, err := p.expect(Semicolon); err != nil {
			return nil, err
		}
		return &BreakStmt{Pos: t.Pos}, nil
	case KwContinue:
		p.next()
		if _, err := p.expect(Semicolon); err != nil {
			return nil, err
		}
		return &ContinueStmt{Pos: t.Pos}, nil
	case KwPrint:
		p.next()
		if _, err := p.expect(LParen); err != nil {
			return nil, err
		}
		var args []Expr
		for p.peek().Kind != RParen {
			if len(args) > 0 {
				if _, err := p.expect(Comma); err != nil {
					return nil, err
				}
			}
			a, err := p.expr()
			if err != nil {
				return nil, err
			}
			args = append(args, a)
		}
		p.next() // RParen
		if _, err := p.expect(Semicolon); err != nil {
			return nil, err
		}
		return &PrintStmt{Args: args, Pos: t.Pos}, nil
	case KwRead:
		p.next()
		name, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(Semicolon); err != nil {
			return nil, err
		}
		return &ReadStmt{Name: name.Text, Pos: t.Pos}, nil
	case IDENT:
		return p.assignOrCall()
	default:
		return nil, &ParseError{t.Pos, fmt.Sprintf("unexpected %s at start of statement", t)}
	}
}

func (p *parser) ifStmt() (Stmt, error) {
	t := p.next() // if
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	then, err := p.block()
	if err != nil {
		return nil, err
	}
	var els Stmt
	if p.peek().Kind == KwElse {
		p.next()
		if p.peek().Kind == KwIf {
			els, err = p.ifStmt()
		} else {
			els, err = p.block()
		}
		if err != nil {
			return nil, err
		}
	}
	return &IfStmt{Cond: cond, Then: then, Else: els, Pos: t.Pos}, nil
}

func (p *parser) forStmt() (Stmt, error) {
	t := p.next() // for
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	f := &ForStmt{Pos: t.Pos}
	if p.peek().Kind != Semicolon {
		s, err := p.simpleAssign()
		if err != nil {
			return nil, err
		}
		f.Init = s
	}
	if _, err := p.expect(Semicolon); err != nil {
		return nil, err
	}
	if p.peek().Kind != Semicolon {
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		f.Cond = cond
	}
	if _, err := p.expect(Semicolon); err != nil {
		return nil, err
	}
	if p.peek().Kind != RParen {
		s, err := p.simpleAssign()
		if err != nil {
			return nil, err
		}
		f.Post = s
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	f.Body = body
	return f, nil
}

// simpleAssign parses `name = expr` or `var name = expr` (no trailing
// semicolon), for use in for-clauses.
func (p *parser) simpleAssign() (Stmt, error) {
	t := p.peek()
	if t.Kind == KwVar {
		p.next()
		name, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(Assign); err != nil {
			return nil, err
		}
		v, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &VarStmt{Name: name.Text, Value: v, Pos: t.Pos}, nil
	}
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(Assign); err != nil {
		return nil, err
	}
	v, err := p.expr()
	if err != nil {
		return nil, err
	}
	return &AssignStmt{Name: name.Text, Value: v, Pos: t.Pos}, nil
}

// assignOrCall distinguishes `x = e;`, `x[i] = e;`, and `f(...);`.
func (p *parser) assignOrCall() (Stmt, error) {
	name := p.next() // IDENT
	switch p.peek().Kind {
	case Assign:
		p.next()
		v, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(Semicolon); err != nil {
			return nil, err
		}
		return &AssignStmt{Name: name.Text, Value: v, Pos: name.Pos}, nil
	case LBracket:
		p.next()
		idx, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RBracket); err != nil {
			return nil, err
		}
		if _, err := p.expect(Assign); err != nil {
			return nil, err
		}
		v, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(Semicolon); err != nil {
			return nil, err
		}
		return &AssignStmt{Name: name.Text, Index: idx, Value: v, Pos: name.Pos}, nil
	case LParen:
		call, err := p.callRest(name)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(Semicolon); err != nil {
			return nil, err
		}
		return &ExprStmt{X: call, Pos: name.Pos}, nil
	default:
		return nil, &ParseError{p.peek().Pos, fmt.Sprintf("expected =, [, or ( after identifier, found %s", p.peek())}
	}
}

func (p *parser) callRest(name Token) (*CallExpr, error) {
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	call := &CallExpr{Name: name.Text, Pos: name.Pos}
	for p.peek().Kind != RParen {
		if len(call.Args) > 0 {
			if _, err := p.expect(Comma); err != nil {
				return nil, err
			}
		}
		a, err := p.expr()
		if err != nil {
			return nil, err
		}
		call.Args = append(call.Args, a)
	}
	p.next() // RParen
	return call, nil
}

// Operator precedence, loosest first.
var precedence = map[TokenKind]int{
	OrOr:   1,
	AndAnd: 2,
	EqEq:   3, NotEq: 3,
	Lt: 4, Le: 4, Gt: 4, Ge: 4,
	Plus: 5, Minus: 5,
	Star: 6, Slash: 6, Percent: 6,
}

func (p *parser) expr() (Expr, error) { return p.binary(1) }

func (p *parser) binary(minPrec int) (Expr, error) {
	lhs, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		op := p.peek()
		prec, ok := precedence[op.Kind]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		p.next()
		rhs, err := p.binary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &BinaryExpr{Op: op.Kind, X: lhs, Y: rhs, Pos: op.Pos}
	}
}

func (p *parser) unary() (Expr, error) {
	t := p.peek()
	switch t.Kind {
	case Minus, Not:
		p.next()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: t.Kind, X: x, Pos: t.Pos}, nil
	}
	return p.primary()
}

func (p *parser) primary() (Expr, error) {
	t := p.peek()
	switch t.Kind {
	case NUMBER:
		p.next()
		return &NumberLit{Value: t.Num, Pos: t.Pos}, nil
	case LParen:
		p.next()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		return e, nil
	case IDENT:
		p.next()
		switch p.peek().Kind {
		case LParen:
			return p.callRest(t)
		case LBracket:
			p.next()
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(RBracket); err != nil {
				return nil, err
			}
			return &IndexExpr{Name: t.Text, Index: idx, Pos: t.Pos}, nil
		default:
			return &Ident{Name: t.Text, Pos: t.Pos}, nil
		}
	default:
		return nil, &ParseError{t.Pos, fmt.Sprintf("unexpected %s in expression", t)}
	}
}

// checkProgram performs post-parse semantic validation.
func checkProgram(prog *Program) error {
	if prog.Func("main") == nil {
		return &ParseError{Pos{1, 1}, "program has no main function"}
	}
	var err error
	for _, fn := range prog.Funcs {
		Walk(fn, func(n Node) bool {
			if err != nil {
				return false
			}
			call, ok := n.(*CallExpr)
			if !ok {
				return true
			}
			switch {
			case call.Name == BuiltinAlloc:
				if len(call.Args) != 1 {
					err = &ParseError{call.Pos, "alloc takes exactly one argument"}
				}
			case call.Name == BuiltinLen:
				if len(call.Args) != 1 {
					err = &ParseError{call.Pos, "len takes exactly one argument"}
				}
			default:
				callee := prog.Func(call.Name)
				if callee == nil {
					err = &ParseError{call.Pos, fmt.Sprintf("call to undefined function %q", call.Name)}
				} else if len(call.Args) != len(callee.Params) {
					err = &ParseError{call.Pos, fmt.Sprintf("function %q takes %d arguments, got %d",
						call.Name, len(callee.Params), len(call.Args))}
				}
			}
			return true
		})
		if err != nil {
			return err
		}
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
