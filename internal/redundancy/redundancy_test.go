package redundancy

import (
	"testing"

	"twpp/internal/cfg"
	"twpp/internal/dataflow"
	"twpp/internal/interp"
	"twpp/internal/minilang"
	"twpp/internal/trace"
	"twpp/internal/wpp"
)

// runMain executes src with tracing and returns the program CFGs plus
// the dynamic graph of main's invocation.
func runMain(t *testing.T, src string, input []int64) (*cfg.Program, *dataflow.TGraph) {
	t.Helper()
	prog, err := minilang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := cfg.Build(prog, cfg.PerStatement)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(prog.Funcs))
	for i, fn := range prog.Funcs {
		names[i] = fn.Name
	}
	b := trace.NewBuilder(names)
	if _, err := interp.Run(p, b, input, interp.Limits{}); err != nil {
		t.Fatal(err)
	}
	w := b.Finish()
	return p, dataflow.BuildFromPath(wpp.PathTrace(w.Traces[w.Root.Trace]))
}

func TestFullyRedundantLoad(t *testing.T) {
	// The second load of a[0] is always redundant: no store between.
	src := `
func main() {
    var a = alloc(4);
    a[0] = 7;
    var i = 0;
    while (i < 50) {
        var x = a[0];
        var y = a[0];
        i = i + 1;
        print(x + y);
    }
}
`
	p, tg := runMain(t, src, nil)
	g := p.Graphs[0]
	loads := FindLoads(g)
	if len(loads) != 2 {
		t.Fatalf("loads = %v, want 2", loads)
	}
	// The second load (y = a[0]) is later in block order.
	second := loads[1]
	r, err := Analyze(p, 0, tg, second)
	if err != nil {
		t.Fatal(err)
	}
	if r.Executions != 50 {
		t.Errorf("executions = %d, want 50", r.Executions)
	}
	if r.Degree != 1.0 {
		t.Errorf("degree = %v, want 1.0: %s", r.Degree, r)
	}
}

func TestStoreKillsRedundancy(t *testing.T) {
	// A store to a between the loads kills availability every time.
	src := `
func main() {
    var a = alloc(4);
    a[0] = 7;
    var i = 0;
    while (i < 30) {
        var x = a[0];
        a[1] = x + 1;
        var y = a[0];
        i = i + 1;
        print(y);
    }
}
`
	p, tg := runMain(t, src, nil)
	loads := FindLoads(p.Graphs[0])
	// Find the load in the block after the store (y = a[0]).
	last := loads[len(loads)-1]
	r, err := Analyze(p, 0, tg, last)
	if err != nil {
		t.Fatal(err)
	}
	if r.Degree != 0 {
		t.Errorf("degree = %v, want 0 (store kills): %s", r.Degree, r)
	}
}

func TestPartialRedundancy(t *testing.T) {
	// Figure 9 shape: the loop alternates between a path that stores
	// and paths that do not; the queried load is redundant only on
	// iterations following a load-only path.
	src := `
func main() {
    var a = alloc(4);
    a[0] = 1;
    var i = 0;
    while (i < 90) {
        var x = a[0];
        if (i % 3 == 2) {
            a[0] = x + 1;
        }
        var y = a[0];
        i = i + 1;
        print(y);
    }
}
`
	p, tg := runMain(t, src, nil)
	loads := FindLoads(p.Graphs[0])
	last := loads[len(loads)-1]
	r, err := Analyze(p, 0, tg, last)
	if err != nil {
		t.Fatal(err)
	}
	if r.Executions != 90 {
		t.Fatalf("executions = %d", r.Executions)
	}
	// Two of every three iterations skip the store: y = a[0] sees the
	// x = a[0] load unkilled 60 times.
	if r.Redundant != 60 {
		t.Errorf("redundant = %d, want 60: %s", r.Redundant, r)
	}
}

func TestCallKillsViaSummary(t *testing.T) {
	src := `
func main() {
    var a = alloc(4);
    a[0] = 1;
    var i = 0;
    while (i < 20) {
        var x = a[0];
        poke(a);
        var y = a[0];
        i = i + 1;
        print(x + y);
    }
}
func poke(arr) {
    arr[0] = 99;
    return 0;
}
`
	p, tg := runMain(t, src, nil)
	sums := Summaries(p)
	pokeID := cfg.FuncID(p.Src.Func("poke").Index)
	if !sums[pokeID].StoresArrays {
		t.Fatal("poke summary missing StoresArrays")
	}
	mainID := cfg.FuncID(0)
	if !sums[mainID].StoresArrays {
		t.Fatal("main summary should inherit StoresArrays")
	}
	loads := FindLoads(p.Graphs[0])
	last := loads[len(loads)-1]
	r, err := Analyze(p, 0, tg, last)
	if err != nil {
		t.Fatal(err)
	}
	if r.Degree != 0 {
		t.Errorf("degree = %v, want 0 (callee store kills): %s", r.Degree, r)
	}
}

func TestTransitiveSummaries(t *testing.T) {
	src := `
func main() {
    var a = alloc(2);
    touch(a);
}
func touch(x) { deep(x); return 0; }
func deep(x)  { x[0] = 1; return 0; }
`
	prog, err := minilang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := cfg.Build(prog, cfg.MaxBlocks)
	if err != nil {
		t.Fatal(err)
	}
	sums := Summaries(p)
	for _, name := range []string{"main", "touch", "deep"} {
		id := cfg.FuncID(p.Src.Func(name).Index)
		if !sums[id].StoresArrays {
			t.Errorf("%s summary missing transitive StoresArrays", name)
		}
	}
}

func TestAnalyzeFunctionAndUnexecutedSite(t *testing.T) {
	src := `
func main() {
    var a = alloc(4);
    a[0] = 1;
    var c = 0;
    if (c == 1) {
        c = a[2];
    }
    print(a[0]);
}
`
	p, tg := runMain(t, src, nil)
	reports, err := AnalyzeFunction(p, 0, tg)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Fatalf("reports = %d, want 2", len(reports))
	}
	// The a[2] load never executed.
	for _, r := range reports {
		if r.Executions == 0 && r.Redundant != 0 {
			t.Errorf("unexecuted site has redundancy: %s", r)
		}
	}
}

func TestAnalyzeErrors(t *testing.T) {
	src := `func main() { var a = alloc(1); print(a[0]); }`
	p, tg := runMain(t, src, nil)
	if _, err := Analyze(p, 99, tg, LoadSite{Block: 1, Array: "a"}); err == nil {
		t.Error("bad function id: want error")
	}
	if _, err := AnalyzeFunction(p, 99, tg); err == nil {
		t.Error("bad function id: want error")
	}
}
