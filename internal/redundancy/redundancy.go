// Package redundancy implements the profile-guided optimization
// application of §4.3.1 of Zhang & Gupta (PLDI 2001): computing the
// precise degree of redundancy of load instructions from a timestamped
// whole program path.
//
// A load of array a is redundant at a given execution when the loaded
// value is already available in a register: some earlier block loaded
// from a and no intervening block stored to a (nor called a function
// that might). Edge or path profiles can only bound this frequency;
// the TWPP yields the exact count via one demand-driven backward query
// (Figure 9 of the paper).
package redundancy

import (
	"fmt"
	"sort"

	"twpp/internal/cfg"
	"twpp/internal/dataflow"
)

// LoadSite identifies a load instruction: block Block reads an element
// of array Array.
type LoadSite struct {
	Block cfg.BlockID
	Array string
}

// FindLoads returns every load site in the function, sorted by block
// then array name.
func FindLoads(g *cfg.Graph) []LoadSite {
	var out []LoadSite
	seen := map[LoadSite]bool{}
	for _, b := range g.Blocks {
		eff := cfg.BlockEffects(b)
		for _, u := range eff.Uses {
			if !u.Array {
				continue
			}
			s := LoadSite{Block: b.ID, Array: u.Var}
			if !seen[s] {
				seen[s] = true
				out = append(out, s)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Block != out[j].Block {
			return out[i].Block < out[j].Block
		}
		return out[i].Array < out[j].Array
	})
	return out
}

// Summary is a conservative interprocedural effect summary of one
// function: whether calling it may store to any array (arrays are
// passed by reference, so a callee store kills availability in the
// caller).
type Summary struct {
	StoresArrays bool
	LoadsArrays  bool
}

// Summaries computes transitive effect summaries for every function of
// the program by fixpoint iteration over the (static) call graph.
func Summaries(p *cfg.Program) map[cfg.FuncID]Summary {
	out := make(map[cfg.FuncID]Summary, len(p.Graphs))
	// Direct effects and call edges.
	calls := make(map[cfg.FuncID][]cfg.FuncID)
	for f, g := range p.Graphs {
		var s Summary
		for _, b := range g.Blocks {
			eff := cfg.BlockEffects(b)
			for _, d := range eff.Defs {
				if d.Array {
					s.StoresArrays = true
				}
			}
			for _, u := range eff.Uses {
				if u.Array {
					s.LoadsArrays = true
				}
			}
			for _, callee := range eff.Calls {
				if fd := p.Src.Func(callee); fd != nil {
					calls[cfg.FuncID(f)] = append(calls[cfg.FuncID(f)], cfg.FuncID(fd.Index))
				}
			}
		}
		out[cfg.FuncID(f)] = s
	}
	// Propagate to a fixpoint.
	for changed := true; changed; {
		changed = false
		for f, callees := range calls {
			s := out[f]
			for _, c := range callees {
				cs := out[c]
				ns := Summary{
					StoresArrays: s.StoresArrays || cs.StoresArrays,
					LoadsArrays:  s.LoadsArrays || cs.LoadsArrays,
				}
				if ns != s {
					out[f] = ns
					s = ns
					changed = true
				}
			}
		}
	}
	return out
}

// availabilityProblem is the GEN-KILL problem "a value of array arr is
// available": blocks that load arr generate it; blocks that store arr
// — or call a function that may — kill it. Within a single block the
// later statement wins.
type availabilityProblem struct {
	g         *cfg.Graph
	p         *cfg.Program
	arr       string
	summaries map[cfg.FuncID]Summary
}

// Effect implements dataflow.Problem.
func (a *availabilityProblem) Effect(b cfg.BlockID) dataflow.Effect {
	blk := a.g.Block(b)
	if blk == nil {
		return dataflow.Transparent
	}
	eff := dataflow.Transparent
	update := func(stmtEff cfg.Effects) {
		// Statement order within the block: process gen then kill so a
		// statement that both loads and stores the array nets to kill
		// (the store invalidates the register copy).
		loads, stores := false, false
		for _, u := range stmtEff.Uses {
			if u.Array && u.Var == a.arr {
				loads = true
			}
		}
		for _, d := range stmtEff.Defs {
			if d.Array && d.Var == a.arr {
				stores = true
			}
		}
		for _, callee := range stmtEff.Calls {
			if fd := a.p.Src.Func(callee); fd != nil {
				if a.summaries[cfg.FuncID(fd.Index)].StoresArrays {
					stores = true
				}
			}
		}
		if loads {
			eff = dataflow.Gen
		}
		if stores {
			eff = dataflow.Kill
		}
	}
	for _, s := range blk.Stmts {
		update(cfg.StmtEffects(s))
	}
	// Terminator conditions can load too.
	switch t := blk.Term.(type) {
	case *cfg.CondJump:
		var e cfg.Effects
		cfg.ExprEffects(t.Cond, &e)
		update(e)
	case *cfg.Ret:
		if t.Value != nil {
			var e cfg.Effects
			cfg.ExprEffects(t.Value, &e)
			update(e)
		}
	}
	return eff
}

// Report is the redundancy analysis result for one load site.
type Report struct {
	Site LoadSite
	// Executions is how many times the load ran in the analyzed trace.
	Executions int
	// Redundant is how many of those executions found the value
	// already available.
	Redundant int
	// Degree is Redundant/Executions in [0,1].
	Degree float64
	// Queries is the demand-driven query count (paper Figure 9's cost
	// metric).
	Queries int
}

// Analyze computes the degree of redundancy of one load site over one
// path trace of the function.
func Analyze(p *cfg.Program, f cfg.FuncID, tg *dataflow.TGraph, site LoadSite) (*Report, error) {
	g := p.Graph(f)
	if g == nil {
		return nil, fmt.Errorf("redundancy: no function %d", f)
	}
	node := tg.Node(site.Block)
	if node == nil {
		// The load never executed in this trace.
		return &Report{Site: site}, nil
	}
	prob := &availabilityProblem{g: g, p: p, arr: site.Array, summaries: Summaries(p)}
	// The query asks about availability *before* the load executes, so
	// the site's own Gen effect does not apply to itself.
	res, err := dataflow.SolveAll(tg, prob, site.Block)
	if err != nil {
		return nil, err
	}
	execs := node.Times.Count()
	red := res.True.Count()
	return &Report{
		Site:       site,
		Executions: execs,
		Redundant:  red,
		Degree:     float64(red) / float64(execs),
		Queries:    res.Queries,
	}, nil
}

// AnalyzeFunction analyzes every load site of function f over the
// given trace.
func AnalyzeFunction(p *cfg.Program, f cfg.FuncID, tg *dataflow.TGraph) ([]*Report, error) {
	g := p.Graph(f)
	if g == nil {
		return nil, fmt.Errorf("redundancy: no function %d", f)
	}
	var out []*Report
	for _, site := range FindLoads(g) {
		r, err := Analyze(p, f, tg, site)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// String renders the report in one line.
func (r *Report) String() string {
	return fmt.Sprintf("load of %s[] at B%d: %d/%d redundant (%.0f%%), %d queries",
		r.Site.Array, r.Site.Block, r.Redundant, r.Executions, 100*r.Degree, r.Queries)
}

// interface check
var _ dataflow.Problem = (*availabilityProblem)(nil)
