package wppfile

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"twpp/internal/cfg"
	"twpp/internal/core"
	"twpp/internal/trace"
	"twpp/internal/wpp"
)

// sampleWPP builds a traced execution with several functions of
// varying hotness.
func sampleWPP(rng *rand.Rand, calls int) *trace.RawWPP {
	names := []string{"main", "hot", "warm", "cold"}
	b := trace.NewBuilder(names)
	b.EnterCall(0)
	b.Block(1)
	for i := 0; i < calls; i++ {
		b.Block(2)
		// hot called every iteration, warm every 4th, cold once.
		b.EnterCall(1)
		b.Block(1)
		iters := 1 + rng.Intn(3)
		for j := 0; j < iters; j++ {
			b.Block(2)
			b.Block(3)
		}
		b.Block(4)
		b.ExitCall()
		if i%4 == 0 {
			b.EnterCall(2)
			b.Block(1)
			if i%8 == 0 {
				b.Block(2)
			} else {
				b.Block(3)
			}
			b.Block(4)
			b.ExitCall()
		}
		if i == 0 {
			b.EnterCall(3)
			b.Block(1)
			b.Block(2)
			b.ExitCall()
		}
	}
	b.Block(3)
	b.ExitCall()
	return b.Finish()
}

func buildTWPP(t *testing.T, rng *rand.Rand, calls int) (*trace.RawWPP, *core.TWPP) {
	t.Helper()
	w := sampleWPP(rng, calls)
	c, _ := wpp.Compact(w)
	return w, core.FromCompacted(c)
}

func TestRawFileRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	w := sampleWPP(rng, 50)
	path := filepath.Join(t.TempDir(), "trace.wpp")
	if err := WriteRaw(path, w); err != nil {
		t.Fatal(err)
	}
	w2, err := ReadRaw(path)
	if err != nil {
		t.Fatal(err)
	}
	if !trace.Equal(w, w2) {
		t.Error("raw file round trip failed")
	}
	if !reflect.DeepEqual(w2.FuncNames, w.FuncNames) {
		t.Errorf("names = %v", w2.FuncNames)
	}
}

func TestScanRawForFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	w := sampleWPP(rng, 40)
	path := filepath.Join(t.TempDir(), "trace.wpp")
	if err := WriteRaw(path, w); err != nil {
		t.Fatal(err)
	}
	for fn := cfg.FuncID(0); fn < 4; fn++ {
		got, err := ScanRawForFunction(path, fn)
		if err != nil {
			t.Fatal(err)
		}
		// Reference: walk the in-memory WPP in preorder.
		var want []wpp.PathTrace
		w.Walk(func(n *trace.CallNode) {
			if n.Fn == fn {
				want = append(want, wpp.PathTrace(w.Traces[n.Trace]))
			}
		})
		// ScanRaw records traces at EXIT time; for non-recursive calls
		// at the same depth the order matches preorder. Compare as
		// multisets via sorting by content.
		if len(got) != len(want) {
			t.Fatalf("fn %d: got %d traces, want %d", fn, len(got), len(want))
		}
		used := make([]bool, len(want))
		for _, g := range got {
			found := false
			for i, w2 := range want {
				if !used[i] && reflect.DeepEqual(g, w2) {
					used[i] = true
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("fn %d: unexpected trace %v", fn, g)
			}
		}
	}
}

func TestCompactedFileRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	w, tw := buildTWPP(t, rng, 60)
	path := filepath.Join(t.TempDir(), "trace.twpp")
	if err := WriteCompacted(path, tw); err != nil {
		t.Fatal(err)
	}
	cf, err := OpenCompacted(path)
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()

	tw2, err := cf.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	c2, err := tw2.ToCompacted()
	if err != nil {
		t.Fatal(err)
	}
	if !trace.Equal(w, c2.Reconstruct()) {
		t.Error("compacted file did not reconstruct the original WPP")
	}
}

func TestIndexOrderIsHottestFirst(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	_, tw := buildTWPP(t, rng, 60)
	path := filepath.Join(t.TempDir(), "trace.twpp")
	if err := WriteCompacted(path, tw); err != nil {
		t.Fatal(err)
	}
	cf, err := OpenCompacted(path)
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	fns := cf.Functions()
	for i := 1; i < len(fns); i++ {
		if cf.CallCount(fns[i-1]) < cf.CallCount(fns[i]) {
			t.Errorf("index not sorted by hotness: %v", fns)
		}
	}
	// hot (fn 1) must precede cold (fn 3).
	posOf := func(f cfg.FuncID) int {
		for i, x := range fns {
			if x == f {
				return i
			}
		}
		return -1
	}
	if posOf(1) > posOf(3) {
		t.Errorf("hot after cold: %v", fns)
	}
}

func TestExtractFunctionMatchesReadAll(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	_, tw := buildTWPP(t, rng, 80)
	path := filepath.Join(t.TempDir(), "trace.twpp")
	if err := WriteCompacted(path, tw); err != nil {
		t.Fatal(err)
	}
	cf, err := OpenCompacted(path)
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	for _, fn := range cf.Functions() {
		ft, err := cf.ExtractFunction(fn)
		if err != nil {
			t.Fatalf("ExtractFunction(%d): %v", fn, err)
		}
		want := &tw.Funcs[fn]
		if ft.CallCount != want.CallCount || len(ft.Traces) != len(want.Traces) {
			t.Fatalf("fn %d: got %d/%d, want %d/%d",
				fn, ft.CallCount, len(ft.Traces), want.CallCount, len(want.Traces))
		}
		for i := range ft.Traces {
			if !reflect.DeepEqual(ft.Traces[i], want.Traces[i]) {
				t.Errorf("fn %d trace %d mismatch", fn, i)
			}
		}
		if !reflect.DeepEqual(ft.Dicts, want.Dicts) {
			t.Errorf("fn %d dictionaries mismatch", fn)
		}
	}
}

func TestExtractAbsentFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	_, tw := buildTWPP(t, rng, 10)
	path := filepath.Join(t.TempDir(), "trace.twpp")
	if err := WriteCompacted(path, tw); err != nil {
		t.Fatal(err)
	}
	cf, err := OpenCompacted(path)
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	if _, err := cf.ExtractFunction(99); err == nil {
		t.Error("extracting absent function: want error")
	}
}

func TestOpenRejectsCorruptFiles(t *testing.T) {
	dir := t.TempDir()
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": {1, 2, 3, 4, 5, 6, 7, 8},
		"truncated": {0x46, 0x50, 0x57, 0x54, 1}, // magic ok then cut
	}
	for name, data := range cases {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenCompacted(p); err == nil {
			t.Errorf("%s: want error", name)
		}
		if _, err := ReadRaw(p); err == nil {
			t.Errorf("%s (raw): want error", name)
		}
	}
}

func TestSectionSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	_, tw := buildTWPP(t, rng, 60)
	path := filepath.Join(t.TempDir(), "trace.twpp")
	if err := WriteCompacted(path, tw); err != nil {
		t.Fatal(err)
	}
	cf, err := OpenCompacted(path)
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	header, dcg, blocks, err := cf.SectionSizes()
	if err != nil {
		t.Fatal(err)
	}
	st, _ := os.Stat(path)
	if header+dcg+blocks != st.Size() {
		t.Errorf("sections %d+%d+%d != file size %d", header, dcg, blocks, st.Size())
	}
	if dcg <= 0 || blocks <= 0 {
		t.Errorf("degenerate sections: %d %d %d", header, dcg, blocks)
	}
}

func TestCompactedSmallerThanRaw(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	w, tw := buildTWPP(t, rng, 500)
	dir := t.TempDir()
	rawPath := filepath.Join(dir, "raw.wpp")
	compPath := filepath.Join(dir, "comp.twpp")
	if err := WriteRaw(rawPath, w); err != nil {
		t.Fatal(err)
	}
	if err := WriteCompacted(compPath, tw); err != nil {
		t.Fatal(err)
	}
	rs, _ := os.Stat(rawPath)
	cs, _ := os.Stat(compPath)
	if cs.Size() >= rs.Size() {
		t.Errorf("compacted %d >= raw %d", cs.Size(), rs.Size())
	}
}

func TestLargeHeaderRetry(t *testing.T) {
	// A program with very many functions forces the index past the
	// 64KiB header guess, exercising the whole-file retry in Open.
	names := make([]string, 6000)
	for i := range names {
		names[i] = "function_with_a_rather_long_name_" + string(rune('a'+i%26)) + string(rune('0'+i%10))
	}
	b := trace.NewBuilder(names)
	b.EnterCall(0)
	b.Block(1)
	for f := 1; f < len(names); f++ {
		b.EnterCall(cfg.FuncID(f))
		b.Block(1)
		b.Block(2)
		b.ExitCall()
	}
	b.ExitCall()
	w := b.Finish()
	c, _ := wpp.Compact(w)
	tw := core.FromCompacted(c)
	path := filepath.Join(t.TempDir(), "big.twpp")
	if err := WriteCompacted(path, tw); err != nil {
		t.Fatal(err)
	}
	cf, err := OpenCompacted(path)
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	if len(cf.Functions()) != 6000 {
		t.Errorf("functions = %d, want 6000", len(cf.Functions()))
	}
	ft, err := cf.ExtractFunction(5999)
	if err != nil {
		t.Fatal(err)
	}
	if ft.CallCount != 1 {
		t.Errorf("cold function call count = %d", ft.CallCount)
	}
}
