package wppfile_test

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"twpp/internal/testkit"
	"twpp/internal/wppfile"
)

// TestCloseUnderConcurrentExtraction hammers a CompactedFile from 16
// goroutines — extractions (cached and uncached), DCG reads, cache
// stats — while Close lands midway through. Run under -race this pins
// down the teardown contract: every operation either succeeds or fails
// with os.ErrClosed (or a read error from the closed descriptor), and
// Close itself is idempotent from any goroutine.
func TestCloseUnderConcurrentExtraction(t *testing.T) {
	w := testkit.Generate(testkit.Config{Seed: 5, Shape: testkit.Irregular})
	_, compacted, err := testkit.EncodeBoth(w)
	if err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(t.TempDir(), "race.twpp")
	if err := os.WriteFile(p, compacted, 0o644); err != nil {
		t.Fatal(err)
	}

	for trial := 0; trial < 8; trial++ {
		cf, err := wppfile.OpenCompactedOptions(p, wppfile.OpenOptions{CacheEntries: 4})
		if err != nil {
			t.Fatal(err)
		}
		fns := cf.Functions()

		const workers = 16
		var wg sync.WaitGroup
		start := make(chan struct{})
		for g := 0; g < workers; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				<-start
				for i := 0; i < 50; i++ {
					fn := fns[(g+i)%len(fns)]
					if _, err := cf.ExtractFunction(fn); err != nil && !acceptableAfterClose(err) {
						t.Errorf("extract: unexpected error %v", err)
						return
					}
					if i%9 == 0 {
						if _, err := cf.ReadDCG(); err != nil && !acceptableAfterClose(err) {
							t.Errorf("ReadDCG: unexpected error %v", err)
							return
						}
					}
					cf.CacheStats()
					if g == 7 && i == 25 {
						if err := cf.Close(); err != nil {
							t.Errorf("Close: %v", err)
							return
						}
					}
				}
			}(g)
		}
		close(start)
		wg.Wait()
		if err := cf.Close(); err != nil {
			t.Fatalf("final Close: %v", err)
		}
	}
}

// acceptableAfterClose matches the two shapes a closed CompactedFile
// may produce: the deterministic guard (os.ErrClosed) or, for an
// operation that had already passed the guard when Close landed, the
// descriptor-level failure — which os wraps as ErrClosed too.
func acceptableAfterClose(err error) bool {
	return errors.Is(err, os.ErrClosed)
}
