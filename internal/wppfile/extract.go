// Pooled extraction: ExtractBuffer owns every piece of memory a
// function-block decode needs, so a warm extract performs zero heap
// allocations. The allocating path (ExtractFunction) and the pooled
// path (ExtractFunctionInto) share one decoder implementation —
// decodeFunctionBlockInto with a nil buffer allocates exactly as the
// original code did — so the two paths return identical results and
// identical structured errors on identical inputs.
//
// # Ownership contract
//
// A *core.FunctionTWPP returned by ExtractFunctionInto aliases the
// buffer it was decoded into: its trace, dictionary, and timestamp
// storage live in the buffer's arenas. It remains valid until the next
// ExtractFunctionInto call with the same buffer (or until the buffer
// is returned to the pool), at which point its contents are
// overwritten. Callers that need the block past that point must use
// ExtractFunction instead. Cache hits are the one exception: when the
// decode cache holds the block, ExtractFunctionInto returns the shared
// cached block, the buffer is untouched, and the usual read-only
// cache-sharing rules apply. Blocks decoded into a caller buffer are
// deliberately never inserted into the decode cache — the cache must
// only hold blocks it owns.

package wppfile

import (
	"context"
	"sync"

	"twpp/internal/cfg"
	"twpp/internal/core"
	"twpp/internal/wpp"
)

// ExtractBuffer holds reusable decode storage for ExtractFunctionInto.
// The zero value is ready to use; buffers grow to the largest block
// they have decoded and stay there. A buffer must not be used by more
// than one goroutine at a time.
type ExtractBuffer struct {
	// block holds the raw bytes of the function block read from the
	// backend.
	block []byte
	// svals is the signed-varint scratch a block's timestamp values
	// are batch-decoded into before series parsing.
	svals []int64
	// traces backs the *core.Trace values of the result; ptrs holds
	// the pointer slice handed out as FunctionTWPP.Traces.
	traces []core.Trace
	ptrs   []*core.Trace
	dictOf []int
	// dicts retains the dictionary maps across decodes: maps are
	// cleared (buckets kept) rather than reallocated, so warm decodes
	// insert into pre-grown tables.
	dicts []wpp.Dictionary
	// chains, times, and entries are bump arenas carved into the
	// result's chain, block-times, and timestamp-entry slices.
	chains  []cfg.BlockID
	times   []core.BlockTimes
	entries core.Seq
	// ft is the result header, reused across decodes.
	ft core.FunctionTWPP
}

// extractBufPool recycles ExtractBuffers for callers that do not want
// to manage their own.
var extractBufPool = sync.Pool{New: func() any { return new(ExtractBuffer) }}

// GetExtractBuffer returns a pooled ExtractBuffer. Pair with
// PutExtractBuffer once the results decoded into it are dead.
func GetExtractBuffer() *ExtractBuffer {
	return extractBufPool.Get().(*ExtractBuffer)
}

// PutExtractBuffer returns a buffer to the pool. The caller must not
// touch the buffer — or any FunctionTWPP decoded into it — afterwards.
func PutExtractBuffer(b *ExtractBuffer) {
	if b != nil {
		extractBufPool.Put(b)
	}
}

// reset truncates the arenas for a fresh decode. Previously returned
// results alias the underlying arrays and are invalidated.
func (b *ExtractBuffer) reset() {
	b.chains = b.chains[:0]
	b.times = b.times[:0]
	b.entries = b.entries[:0]
}

// blockBuf returns the reusable raw-block read buffer, sized to n.
func (b *ExtractBuffer) blockBuf(n int) []byte {
	if cap(b.block) < n {
		b.block = make([]byte, n)
	}
	b.block = b.block[:n]
	return b.block
}

// funcSlot returns the FunctionTWPP the decode populates: the buffer's
// reused header, or a fresh allocation for the nil (allocating) path.
func (b *ExtractBuffer) funcSlot(fn cfg.FuncID) *core.FunctionTWPP {
	if b == nil {
		return &core.FunctionTWPP{Fn: fn}
	}
	b.ft = core.FunctionTWPP{Fn: fn}
	return &b.ft
}

// signedVals returns an int64 scratch slice of length n.
func (b *ExtractBuffer) signedVals(n int) []int64 {
	if b == nil {
		return make([]int64, n)
	}
	if cap(b.svals) < n {
		b.svals = make([]int64, n)
	}
	b.svals = b.svals[:n]
	return b.svals
}

// allocDicts returns the dictionary slice of length n, retaining any
// previously built maps for reuse.
func (b *ExtractBuffer) allocDicts(n int) []wpp.Dictionary {
	if b == nil {
		return make([]wpp.Dictionary, n)
	}
	if cap(b.dicts) < n {
		nd := make([]wpp.Dictionary, n)
		copy(nd, b.dicts[:cap(b.dicts)])
		b.dicts = nd
	}
	b.dicts = b.dicts[:n]
	return b.dicts
}

// allocTraces returns the trace-pointer and dictionary-index slices of
// length n. For a buffer, the pointers address the buffer's trace
// arena, so the values are reused in place.
func (b *ExtractBuffer) allocTraces(n int) ([]*core.Trace, []int) {
	if b == nil {
		vals := make([]core.Trace, n)
		ptrs := make([]*core.Trace, n)
		for i := range ptrs {
			ptrs[i] = &vals[i]
		}
		return ptrs, make([]int, n)
	}
	if cap(b.traces) < n {
		b.traces = make([]core.Trace, n)
	}
	b.traces = b.traces[:n]
	if cap(b.ptrs) < n {
		b.ptrs = make([]*core.Trace, n)
	}
	b.ptrs = b.ptrs[:n]
	for i := range b.ptrs {
		b.ptrs[i] = &b.traces[i]
	}
	if cap(b.dictOf) < n {
		b.dictOf = make([]int, n)
	}
	b.dictOf = b.dictOf[:n]
	return b.ptrs, b.dictOf
}

// allocChain carves an n-element chain from the chains arena. When the
// arena is full it is replaced with a larger one; slices carved
// earlier keep the old backing array, so they stay valid.
func (b *ExtractBuffer) allocChain(n int) wpp.PathTrace {
	if b == nil {
		return make(wpp.PathTrace, n)
	}
	if cap(b.chains)-len(b.chains) < n {
		b.chains = make([]cfg.BlockID, 0, 2*cap(b.chains)+n)
	}
	l := len(b.chains)
	b.chains = b.chains[: l+n : cap(b.chains)]
	return wpp.PathTrace(b.chains[l : l+n : l+n])
}

// allocTimes carves an n-element block-times slice from the arena.
func (b *ExtractBuffer) allocTimes(n int) []core.BlockTimes {
	if b == nil {
		return make([]core.BlockTimes, n)
	}
	if cap(b.times)-len(b.times) < n {
		b.times = make([]core.BlockTimes, 0, 2*cap(b.times)+n)
	}
	l := len(b.times)
	b.times = b.times[: l+n : cap(b.times)]
	return b.times[l : l+n : l+n]
}

// reserveEntries returns a zero-length Seq with capacity for n entries
// carved from the entries arena; commitEntries records how many of
// them the decode actually produced. A stream of n signed values
// decodes to at most n entries (every entry consumes at least one
// value), so the reservation never overflows.
func (b *ExtractBuffer) reserveEntries(n int) core.Seq {
	if b == nil {
		return nil
	}
	if cap(b.entries)-len(b.entries) < n {
		b.entries = make(core.Seq, 0, 2*cap(b.entries)+n)
	}
	l := len(b.entries)
	return b.entries[l:l : l+n]
}

// commitEntries advances the entries arena past the seq just decoded.
func (b *ExtractBuffer) commitEntries(s core.Seq) {
	if b != nil {
		b.entries = b.entries[:len(b.entries)+len(s)]
	}
}

// ExtractFunctionInto is ExtractFunction decoding into buf's reusable
// storage: a warm extract (buffer already grown to the block's shape)
// performs zero heap allocations. See the package comment on the
// ownership contract — the result is only valid until buf's next use.
// A nil buf is allowed and behaves like ExtractFunction without cache
// insertion.
func (cf *CompactedFile) ExtractFunctionInto(fn cfg.FuncID, buf *ExtractBuffer) (*core.FunctionTWPP, error) {
	return cf.ExtractFunctionIntoCtx(context.Background(), fn, buf)
}

// ExtractFunctionIntoCtx is ExtractFunctionInto with cooperative
// cancellation, mirroring ExtractFunctionCtx.
func (cf *CompactedFile) ExtractFunctionIntoCtx(ctx context.Context, fn cfg.FuncID, buf *ExtractBuffer) (*core.FunctionTWPP, error) {
	return cf.extractCtx(ctx, fn, buf, false)
}
