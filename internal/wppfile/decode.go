// Compacted-format decoders: the per-function block and DCG payload
// decoders shared by both container formats, and the v1/v2 header
// parsers that populate a CompactedFile. Every declared count is
// checked against both the remaining input (CodeCorrupt) and the
// configured resource limits (CodeLimit) before any allocation is
// sized by it; in v2, section checksums are verified before any
// section content is parsed.

package wppfile

import (
	"io"

	"twpp/internal/cfg"
	"twpp/internal/core"
	"twpp/internal/encoding"
	"twpp/internal/storage"
	"twpp/internal/wpp"
)

// decodeFunctionBlock decodes one function's block. Offsets in the
// returned errors are relative to the block start.
func decodeFunctionBlock(data []byte, fn cfg.FuncID, lim limits) (*core.FunctionTWPP, error) {
	return decodeFunctionBlockInto(data, fn, lim, nil)
}

// readBlockIDs batch-decodes len(dst) unsigned varints into dst
// through a fixed chunk scratch, so the decode is bounds-checked once
// per chunk and allocates nothing regardless of the caller's path.
func readBlockIDs(c *encoding.Cursor, dst []cfg.BlockID) error {
	var tmp [64]uint64
	for len(dst) > 0 {
		k := len(dst)
		if k > len(tmp) {
			k = len(tmp)
		}
		if err := c.UvarintBatch(tmp[:k]); err != nil {
			return err
		}
		for i := 0; i < k; i++ {
			dst[i] = cfg.BlockID(tmp[i])
		}
		dst = dst[k:]
	}
	return nil
}

// decodeFunctionBlockInto is decodeFunctionBlock decoding into b's
// reusable storage; a nil b allocates fresh results. Both paths run
// this one implementation, so results and structured errors are
// identical by construction (the parity tests assert it anyway).
func decodeFunctionBlockInto(data []byte, fn cfg.FuncID, lim limits, b *ExtractBuffer) (*core.FunctionTWPP, error) {
	c := encoding.NewCursor(data)
	ft := b.funcSlot(fn)
	cc, err := c.Uvarint()
	if err != nil {
		return nil, err
	}
	ft.CallCount = int(cc)
	nd, err := c.Uvarint()
	if err != nil {
		return nil, err
	}
	if nd > uint64(c.Len()) {
		return nil, encoding.Errf(encoding.CodeCorrupt, int64(c.Pos()), "wppfile: dictionary count %d too large", nd)
	}
	ft.Dicts = b.allocDicts(int(nd))
	for i := range ft.Dicts {
		nh, err := c.Uvarint()
		if err != nil {
			return nil, err
		}
		if nh > uint64(c.Len()) {
			return nil, encoding.Errf(encoding.CodeCorrupt, int64(c.Pos()), "wppfile: chain count %d too large", nh)
		}
		d := ft.Dicts[i]
		if d == nil {
			d = make(wpp.Dictionary, nh)
			ft.Dicts[i] = d
		} else {
			clear(d)
		}
		for j := uint64(0); j < nh; j++ {
			h, err := c.Uvarint()
			if err != nil {
				return nil, err
			}
			cl, err := c.Uvarint()
			if err != nil {
				return nil, err
			}
			if cl > uint64(c.Len()) {
				return nil, encoding.Errf(encoding.CodeCorrupt, int64(c.Pos()), "wppfile: chain length %d too large", cl)
			}
			chain := b.allocChain(int(cl))
			if err := readBlockIDs(c, chain); err != nil {
				return nil, err
			}
			d[cfg.BlockID(h)] = chain
		}
	}
	nt, err := c.Uvarint()
	if err != nil {
		return nil, err
	}
	if nt > uint64(c.Len()) {
		return nil, encoding.Errf(encoding.CodeCorrupt, int64(c.Pos()), "wppfile: trace count %d too large", nt)
	}
	if nt > lim.maxFuncTraces {
		return nil, encoding.Errf(encoding.CodeLimit, int64(c.Pos()),
			"wppfile: function %d declares %d traces, limit %d", fn, nt, lim.maxFuncTraces)
	}
	ft.Traces, ft.DictOf = b.allocTraces(int(nt))
	for i := range ft.Traces {
		di, err := c.Uvarint()
		if err != nil {
			return nil, err
		}
		if di >= nd {
			return nil, encoding.Errf(encoding.CodeCorrupt, int64(c.Pos()),
				"wppfile: dictionary index %d out of range (%d dictionaries)", di, nd)
		}
		ft.DictOf[i] = int(di)
		length, err := c.Uvarint()
		if err != nil {
			return nil, err
		}
		if length > lim.maxSeqValues {
			return nil, encoding.Errf(encoding.CodeLimit, int64(c.Pos()),
				"wppfile: trace length %d exceeds limit %d", length, lim.maxSeqValues)
		}
		nb, err := c.Uvarint()
		if err != nil {
			return nil, err
		}
		if nb > uint64(c.Len()) {
			return nil, encoding.Errf(encoding.CodeCorrupt, int64(c.Pos()), "wppfile: block count %d too large", nb)
		}
		tr := ft.Traces[i]
		*tr = core.Trace{Len: int(length), Blocks: b.allocTimes(int(nb))}
		for j := range tr.Blocks {
			bid, err := c.Uvarint()
			if err != nil {
				return nil, err
			}
			nv, err := c.Uvarint()
			if err != nil {
				return nil, err
			}
			if nv > uint64(c.Len()) {
				return nil, encoding.Errf(encoding.CodeCorrupt, int64(c.Pos()), "wppfile: value count %d too large", nv)
			}
			if nv > lim.maxSeqValues {
				return nil, encoding.Errf(encoding.CodeLimit, int64(c.Pos()),
					"wppfile: timestamp value count %d exceeds limit %d", nv, lim.maxSeqValues)
			}
			vals := b.signedVals(int(nv))
			if err := c.VarintBatch(vals); err != nil {
				return nil, err
			}
			seq, err := core.DecodeSignedAppend(b.reserveEntries(int(nv)), vals)
			if err != nil {
				return nil, encoding.Wrap(encoding.CodeCorrupt, int64(c.Pos()), err, "")
			}
			b.commitEntries(seq)
			if len(seq) == 0 {
				// Match the allocating decoder, whose empty set is nil.
				seq = nil
			}
			tr.Blocks[j] = core.BlockTimes{Block: cfg.BlockID(bid), Times: seq}
		}
	}
	if !c.Done() {
		return nil, encoding.Errf(encoding.CodeCorrupt, int64(c.Pos()), "wppfile: %d trailing bytes in function block", c.Len())
	}
	return ft, nil
}

func decodeDCG(data []byte) (*wpp.CallNode, error) {
	c := encoding.NewCursor(data)
	var rec func(depth int) (*wpp.CallNode, error)
	rec = func(depth int) (*wpp.CallNode, error) {
		if depth > 1<<20 {
			return nil, encoding.Errf(encoding.CodeLimit, int64(c.Pos()), "wppfile: DCG nesting too deep")
		}
		fn, err := c.Uvarint()
		if err != nil {
			return nil, err
		}
		ti, err := c.Uvarint()
		if err != nil {
			return nil, err
		}
		nc, err := c.Uvarint()
		if err != nil {
			return nil, err
		}
		if nc > uint64(c.Len()) {
			return nil, encoding.Errf(encoding.CodeCorrupt, int64(c.Pos()), "wppfile: DCG child count %d too large", nc)
		}
		n := &wpp.CallNode{Fn: cfg.FuncID(fn), TraceIdx: int(ti)}
		prev := 0
		for i := uint64(0); i < nc; i++ {
			delta, err := c.Uvarint()
			if err != nil {
				return nil, err
			}
			pos := prev + int(delta)
			prev = pos
			child, err := rec(depth + 1)
			if err != nil {
				return nil, err
			}
			n.Children = append(n.Children, child)
			n.ChildPos = append(n.ChildPos, pos)
		}
		return n, nil
	}
	root, err := rec(0)
	if err != nil {
		return nil, err
	}
	if !c.Done() {
		return nil, encoding.Errf(encoding.CodeCorrupt, int64(c.Pos()), "wppfile: %d trailing bytes after DCG", c.Len())
	}
	return root, nil
}

// ---------------------------------------------------------------------
// Container header parsing.
// ---------------------------------------------------------------------

// readRange reads exactly n bytes at off from the backend, mapping a
// short read to a structured truncation error naming what was read.
func readRange(b storage.Backend, off, n int64, what string) ([]byte, error) {
	buf := make([]byte, n)
	got, err := b.ReadAt(buf, off)
	if int64(got) == n {
		// A full read ending exactly at EOF may carry io.EOF; the
		// bytes are all there.
		return buf, nil
	}
	if err == io.EOF || err == io.ErrUnexpectedEOF || err == nil {
		return nil, encoding.Errf(encoding.CodeTruncated, off,
			"wppfile: short read of %s (%d of %d bytes)", what, got, n)
	}
	return nil, err
}

// parseHeader sniffs the container version and dispatches to the
// format-specific parser, populating cf.
func (cf *CompactedFile) parseHeader() error {
	// Read a generous prefix: enough for the whole v1 header in the
	// common case, and trivially enough to sniff magic + version.
	headLen := int64(1 << 16)
	if headLen > cf.size {
		headLen = cf.size
	}
	head := make([]byte, headLen)
	if headLen > 0 {
		if n, err := cf.b.ReadAt(head, 0); err != nil && n < len(head) {
			return err
		}
	}
	c := encoding.NewCursor(head)
	magic, err := c.Uint32()
	if err != nil {
		return err
	}
	if magic != MagicCompacted {
		return encoding.Errf(encoding.CodeBadMagic, 0, "wppfile: bad compacted magic %#x", magic)
	}
	ver, err := c.Uvarint()
	if err != nil {
		return err
	}
	switch ver {
	case FormatV1:
		cf.format = FormatV1
		if err := cf.parseV1(head); err != nil {
			// Retry with the whole file if the header prefix was too
			// small; otherwise fail.
			if int64(len(head)) >= cf.size {
				return err
			}
			full, err2 := readRange(cf.b, 0, cf.size, "file")
			if err2 != nil {
				return err2
			}
			return cf.parseV1(full)
		}
		return nil
	case FormatV2:
		cf.format = FormatV2
		return cf.parseV2()
	default:
		return encoding.Errf(encoding.CodeBadVersion, 4, "wppfile: unsupported version %d", ver)
	}
}

// parseV1 parses the legacy implicit layout from a prefix of the file.
// The logic (and every error message) predates format v2 and is kept
// byte-for-byte so v1 files keep failing identically.
func (cf *CompactedFile) parseV1(head []byte) error {
	c := encoding.NewCursor(head)
	magic, err := c.Uint32()
	if err != nil {
		return err
	}
	if magic != MagicCompacted {
		return encoding.Errf(encoding.CodeBadMagic, 0, "wppfile: bad compacted magic %#x", magic)
	}
	ver, err := c.Uvarint()
	if err != nil {
		return err
	}
	if ver != FormatV1 {
		return encoding.Errf(encoding.CodeBadVersion, 4, "wppfile: unsupported version %d", ver)
	}
	nf, err := c.Uvarint()
	if err != nil {
		return err
	}
	if nf > uint64(cf.size) {
		return encoding.Errf(encoding.CodeCorrupt, int64(c.Pos()), "wppfile: function count %d too large", nf)
	}
	cf.FuncNames = make([]string, nf)
	for i := range cf.FuncNames {
		if cf.FuncNames[i], err = c.String(); err != nil {
			return err
		}
	}
	ni, err := c.Uvarint()
	if err != nil {
		return err
	}
	if ni > uint64(cf.size) {
		return encoding.Errf(encoding.CodeCorrupt, int64(c.Pos()), "wppfile: index count %d too large", ni)
	}
	cf.index = make(map[cfg.FuncID]indexEntry, ni)
	cf.order = cf.order[:0]
	for i := uint64(0); i < ni; i++ {
		var e indexEntry
		entryAt := int64(c.Pos())
		v, err := c.Uvarint()
		if err != nil {
			return err
		}
		// The encoder only indexes functions it named; an id beyond
		// the name table would later size allocations (ReadAll's Funcs
		// slice) from an attacker-controlled value.
		if v >= nf {
			return encoding.Errf(encoding.CodeCorrupt, entryAt,
				"wppfile: index entry function id %d beyond name table (%d names)", v, nf)
		}
		e.Fn = cfg.FuncID(v)
		if v, err = c.Uvarint(); err != nil {
			return err
		}
		e.CallCount = int(v)
		if v, err = c.Uvarint(); err != nil {
			return err
		}
		e.Offset = int(v)
		if v, err = c.Uvarint(); err != nil {
			return err
		}
		e.Length = int(v)
		if e.Offset < 0 || e.Length < 0 {
			return encoding.Errf(encoding.CodeCorrupt, entryAt,
				"wppfile: index entry for function %d has negative bounds", e.Fn)
		}
		if int64(e.Length) > cf.lim.maxTraceBytes {
			return encoding.Errf(encoding.CodeLimit, entryAt,
				"wppfile: function %d block is %d bytes, limit %d", e.Fn, e.Length, cf.lim.maxTraceBytes)
		}
		cf.index[e.Fn] = e
		cf.order = append(cf.order, e.Fn)
	}
	dlAt := int64(c.Pos())
	dl, err := c.Uvarint()
	if err != nil {
		return err
	}
	if dl > uint64(cf.size) {
		return encoding.Errf(encoding.CodeCorrupt, dlAt, "wppfile: DCG length %d exceeds file size", dl)
	}
	cf.dcgLen = int(dl)
	cf.dcgOffset = int64(c.Pos())
	cf.dcgCodec = CodecLZW
	cf.blocksOffset = cf.dcgOffset + int64(dl)
	if cf.blocksOffset > cf.size {
		return encoding.Errf(encoding.CodeTruncated, dlAt,
			"wppfile: DCG section (%d bytes at offset %d) extends past end of file", dl, cf.dcgOffset)
	}
	// Every index entry must lie within the blocks section; checked
	// here, once, so extraction is a bounds-trusted positioned read.
	cf.blocksLen = cf.size - cf.blocksOffset
	for _, fn := range cf.order {
		e := cf.index[fn]
		if int64(e.Offset)+int64(e.Length) > cf.blocksLen {
			return encoding.Errf(encoding.CodeTruncated, -1,
				"wppfile: function %d block (%d bytes at offset %d) extends past end of file (%d-byte blocks section)",
				e.Fn, e.Length, e.Offset, cf.blocksLen)
		}
	}
	// v1 has nothing to checksum.
	cf.dcgVerified.Store(true)
	return nil
}

// parseV2 parses the sectioned container: footer, directory (CRC
// verified before decoding), then the META section (CRC verified
// before decoding). The DCG and BLOCKS sections are located but not
// read; their checksums verify lazily on first read, or eagerly via
// verifyAllSections.
func (cf *CompactedFile) parseV2() error {
	if cf.size < V2HeaderLen+V2FooterLen {
		return encoding.Errf(encoding.CodeTruncated, cf.size,
			"wppfile: v2 container too small (%d bytes)", cf.size)
	}
	foot, err := readRange(cf.b, cf.size-V2FooterLen, V2FooterLen, "v2 footer")
	if err != nil {
		return err
	}
	c := encoding.NewCursor(foot)
	dirLen32, _ := c.Uint32()
	dirCRC, _ := c.Uint32()
	magic, _ := c.Uint32()
	if magic != MagicDirectory {
		return encoding.Errf(encoding.CodeCorrupt, cf.size-4,
			"wppfile: missing directory magic at end of v2 container (found %#x)", magic)
	}
	dirLen := int64(dirLen32)
	if dirLen > cf.size-V2HeaderLen-V2FooterLen {
		return encoding.Errf(encoding.CodeCorrupt, cf.size-V2FooterLen,
			"wppfile: directory length %d exceeds container payload", dirLen)
	}
	dirOff := cf.size - V2FooterLen - dirLen
	dir, err := readRange(cf.b, dirOff, dirLen, "section directory")
	if err != nil {
		return err
	}
	if got := Checksum(dir); got != dirCRC {
		return checksumErr("section directory", dirOff, dirCRC, got)
	}
	cf.dirCRC = dirCRC
	secs, err := parseDirectory(dir, dirOff, cf.size)
	if err != nil {
		return err
	}
	meta := findSection(secs, SecMeta)
	dcg := findSection(secs, SecDCG)
	blocks := findSection(secs, SecBlocks)
	if meta == nil || dcg == nil || blocks == nil {
		return encoding.Errf(encoding.CodeCorrupt, dirOff,
			"wppfile: directory missing a required section (META, DCG, BLOCKS)")
	}
	if meta.Codec != CodecRaw || blocks.Codec != CodecRaw {
		return encoding.Errf(encoding.CodeCorrupt, dirOff,
			"wppfile: unsupported codec for META (%d) or BLOCKS (%d) section", meta.Codec, blocks.Codec)
	}
	if dcg.Codec != CodecRaw && dcg.Codec != CodecLZW {
		return encoding.Errf(encoding.CodeCorrupt, dirOff,
			"wppfile: unsupported DCG codec %d", dcg.Codec)
	}
	cf.dcgOffset = dcg.Offset
	cf.dcgLen = int(dcg.Length)
	cf.dcgCodec = dcg.Codec
	cf.dcgCRC = dcg.CRC
	cf.blocksOffset = blocks.Offset
	cf.blocksLen = blocks.Length
	cf.blocksCRC = blocks.CRC

	// META is needed now; verify before parsing so a damaged index
	// reports checksum-mismatch, not some downstream structural error.
	mb, err := readRange(cf.b, meta.Offset, meta.Length, "META section")
	if err != nil {
		return err
	}
	if got := Checksum(mb); got != meta.CRC {
		return checksumErr("META section", meta.Offset, meta.CRC, got)
	}
	return cf.parseMetaV2(mb, meta.Offset)
}

// parseMetaV2 decodes the META section payload (name table + index).
// base is the section's absolute file offset, used in error offsets.
func (cf *CompactedFile) parseMetaV2(mb []byte, base int64) error {
	c := encoding.NewCursor(mb)
	abs := func() int64 { return base + int64(c.Pos()) }
	nf, err := c.Uvarint()
	if err != nil {
		return err
	}
	if nf > uint64(cf.size) {
		return encoding.Errf(encoding.CodeCorrupt, abs(), "wppfile: function count %d too large", nf)
	}
	cf.FuncNames = make([]string, nf)
	for i := range cf.FuncNames {
		if cf.FuncNames[i], err = c.String(); err != nil {
			return err
		}
	}
	ni, err := c.Uvarint()
	if err != nil {
		return err
	}
	if ni > uint64(cf.size) {
		return encoding.Errf(encoding.CodeCorrupt, abs(), "wppfile: index count %d too large", ni)
	}
	cf.index = make(map[cfg.FuncID]indexEntry, ni)
	cf.order = cf.order[:0]
	for i := uint64(0); i < ni; i++ {
		var e indexEntry
		entryAt := abs()
		v, err := c.Uvarint()
		if err != nil {
			return err
		}
		if v >= nf {
			return encoding.Errf(encoding.CodeCorrupt, entryAt,
				"wppfile: index entry function id %d beyond name table (%d names)", v, nf)
		}
		e.Fn = cfg.FuncID(v)
		if v, err = c.Uvarint(); err != nil {
			return err
		}
		e.CallCount = int(v)
		if v, err = c.Uvarint(); err != nil {
			return err
		}
		e.Offset = int(v)
		if v, err = c.Uvarint(); err != nil {
			return err
		}
		e.Length = int(v)
		if e.CRC, err = c.Uint32(); err != nil {
			return err
		}
		if e.Offset < 0 || e.Length < 0 {
			return encoding.Errf(encoding.CodeCorrupt, entryAt,
				"wppfile: index entry for function %d has negative bounds", e.Fn)
		}
		if int64(e.Length) > cf.lim.maxTraceBytes {
			return encoding.Errf(encoding.CodeLimit, entryAt,
				"wppfile: function %d block is %d bytes, limit %d", e.Fn, e.Length, cf.lim.maxTraceBytes)
		}
		if int64(e.Offset)+int64(e.Length) > cf.blocksLen {
			return encoding.Errf(encoding.CodeCorrupt, entryAt,
				"wppfile: function %d block (%d bytes at offset %d) extends past BLOCKS section (%d bytes)",
				e.Fn, e.Length, e.Offset, cf.blocksLen)
		}
		cf.index[e.Fn] = e
		cf.order = append(cf.order, e.Fn)
	}
	if !c.Done() {
		return encoding.Errf(encoding.CodeCorrupt, abs(), "wppfile: %d trailing bytes in META section", c.Len())
	}
	return nil
}

// verifyAllSections eagerly checks every v2 section checksum,
// including the whole BLOCKS section (read in bounded chunks so
// verification never allocates proportionally to the file). The META
// section and directory were already verified during parseV2. On v1
// files it is a no-op: there is nothing to verify.
func (cf *CompactedFile) verifyAllSections() error {
	if cf.format != FormatV2 {
		return nil
	}
	dcg, err := readRange(cf.b, cf.dcgOffset, int64(cf.dcgLen), "DCG section")
	if err != nil {
		return err
	}
	if got := Checksum(dcg); got != cf.dcgCRC {
		return checksumErr("DCG section", cf.dcgOffset, cf.dcgCRC, got)
	}
	cf.dcgVerified.Store(true)

	const chunk = int64(1) << 20
	var crc uint32
	for off := int64(0); off < cf.blocksLen; off += chunk {
		part, err := readRange(cf.b, cf.blocksOffset+off, min64(chunk, cf.blocksLen-off), "BLOCKS section")
		if err != nil {
			return err
		}
		crc = checksumUpdate(crc, part)
	}
	if crc != cf.blocksCRC {
		return checksumErr("BLOCKS section", cf.blocksOffset, cf.blocksCRC, crc)
	}
	return nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
