// Package wppfile defines the two on-disk WPP formats compared in
// Zhang & Gupta (PLDI 2001, Table 4):
//
//   - the uncompacted WPP file: the linear control flow trace as a
//     varint symbol stream, from which extracting one function's path
//     traces requires scanning the entire file (column U);
//
//   - the compacted TWPP file: a per-function index (hottest function
//     first), the LZW-compressed dynamic call graph, and per-function
//     blocks holding the unique TWPP traces and DBB dictionaries — so
//     extracting one function's traces is a single index lookup plus
//     one seek (column C).
//
// Two compacted container layouts exist. Format v1 is the legacy
// implicit layout; format v2 (the default write format) wraps the same
// logical sections in a self-describing container with a trailer
// section directory and CRC32-C checksums on every section. See
// layout.go for the byte-level geometry. All readers open both formats
// transparently; writers emit v2 unless FormatV1 is forced.
//
// The package is split by role: layout.go (container geometry and the
// v2 section machinery), encode.go (writers, batch and streaming),
// decode.go (block/DCG/header decoders), file.go (the CompactedFile
// random-access handle over a storage.Backend), raw.go (the
// uncompacted format), and stream.go (the bounded-memory raw reader).
package wppfile
