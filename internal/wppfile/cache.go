package wppfile

import (
	"container/list"
	"sync"
	"sync/atomic"

	"twpp/internal/cfg"
	"twpp/internal/core"
)

// decodeCache is a sharded LRU of decoded function blocks, keyed by
// FuncID. Sharding keeps lock contention low when many goroutines
// extract concurrently; hit/miss counters are atomic so CacheStats
// never takes a lock. Cached *core.FunctionTWPP values are shared
// between callers and must be treated as read-only.
type decodeCache struct {
	shards []cacheShard
	hits   atomic.Uint64
	misses atomic.Uint64
}

type cacheShard struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recently used
	m   map[cfg.FuncID]*list.Element
}

type cacheEntry struct {
	fn cfg.FuncID
	ft *core.FunctionTWPP
}

// cacheShardCount bounds the shard fan-out; tiny caches use fewer
// shards so each still holds at least one entry.
const cacheShardCount = 8

// newDecodeCache builds a cache holding up to entries decoded blocks
// in total. entries <= 0 returns nil (caching disabled).
func newDecodeCache(entries int) *decodeCache {
	if entries <= 0 {
		return nil
	}
	n := cacheShardCount
	if entries < n {
		n = entries
	}
	c := &decodeCache{shards: make([]cacheShard, n)}
	per := (entries + n - 1) / n
	for i := range c.shards {
		c.shards[i] = cacheShard{
			cap: per,
			ll:  list.New(),
			m:   make(map[cfg.FuncID]*list.Element, per),
		}
	}
	return c
}

func (c *decodeCache) shard(fn cfg.FuncID) *cacheShard {
	return &c.shards[uint32(fn)%uint32(len(c.shards))]
}

// get returns the cached block for fn, updating recency and counters.
func (c *decodeCache) get(fn cfg.FuncID) (*core.FunctionTWPP, bool) {
	s := c.shard(fn)
	s.mu.Lock()
	el, ok := s.m[fn]
	if ok {
		s.ll.MoveToFront(el)
	}
	s.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return el.Value.(cacheEntry).ft, true
}

// put inserts a decoded block, evicting the shard's least recently
// used entry when full.
func (c *decodeCache) put(fn cfg.FuncID, ft *core.FunctionTWPP) {
	s := c.shard(fn)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.m[fn]; ok {
		// A concurrent extraction already cached this block; keep the
		// existing entry so all callers share one decode.
		s.ll.MoveToFront(el)
		return
	}
	if s.ll.Len() >= s.cap {
		oldest := s.ll.Back()
		if oldest != nil {
			s.ll.Remove(oldest)
			delete(s.m, oldest.Value.(cacheEntry).fn)
		}
	}
	s.m[fn] = s.ll.PushFront(cacheEntry{fn: fn, ft: ft})
}

// stats reports cumulative hit and miss counts.
func (c *decodeCache) stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}
