package wppfile

import (
	"sync"
	"sync/atomic"

	"twpp/internal/cfg"
	"twpp/internal/core"
)

// decodeCache is a sharded cache of decoded function blocks, keyed by
// FuncID, designed for a read-mostly workload on many cores:
//
//   - The hit path is lock-free and write-free on shared state. Each
//     shard publishes an immutable map snapshot through an atomic
//     pointer; a get loads the snapshot, looks up the key, and sets
//     the entry's CLOCK reference bit only when it is not already set
//     (a warm hit touches no shared cache line at all).
//   - Hit/miss counters are shard-local and the shard struct is padded
//     past a cache line, so counters on different shards never false
//     share; stats() sums them on demand.
//   - Writers (the decode-miss path, which is rare once warm) take a
//     per-shard mutex, evict with a CLOCK hand over the shard's ring,
//     rebuild the map copy, and publish it atomically.
//
// Eviction is CLOCK (second chance) rather than strict LRU: recency is
// the reference bit set by hits, which is what makes the hit path
// read-only. Cached *core.FunctionTWPP values are shared between
// callers and must be treated as read-only.
type decodeCache struct {
	shards []cacheShard
}

// CacheShardStats is one shard's cumulative hit/miss counts, as
// reported by CompactedFile.CacheShardStats.
type CacheShardStats struct {
	Hits, Misses uint64
}

// cacheView is the immutable snapshot a shard publishes to readers.
// The map is never mutated after being stored; writers replace it
// wholesale.
type cacheView struct {
	m map[cfg.FuncID]*cacheEntry
}

type cacheShard struct {
	// hits/misses are shard-local so the hottest counters in the
	// system are never shared between shards.
	hits   atomic.Uint64
	misses atomic.Uint64
	// view is the published snapshot readers load without locking.
	view atomic.Pointer[cacheView]

	// Writer-owned state, guarded by mu.
	mu   sync.Mutex
	cap  int
	ring []*cacheEntry // CLOCK ring of resident entries
	hand int           // CLOCK hand position in ring

	// Pad the struct past a 64-byte cache line so adjacent shards'
	// counters live on different lines.
	_ [40]byte
}

type cacheEntry struct {
	fn cfg.FuncID
	ft *core.FunctionTWPP
	// ref is the CLOCK reference bit: set by hits, cleared by the
	// eviction hand as it sweeps.
	ref atomic.Bool
}

// cacheShardCount bounds the shard fan-out; tiny caches use fewer
// shards so each still holds at least one entry.
const cacheShardCount = 8

// newDecodeCache builds a cache holding up to entries decoded blocks
// in total. entries <= 0 returns nil (caching disabled).
func newDecodeCache(entries int) *decodeCache {
	if entries <= 0 {
		return nil
	}
	n := cacheShardCount
	if entries < n {
		n = entries
	}
	c := &decodeCache{shards: make([]cacheShard, n)}
	per := (entries + n - 1) / n
	for i := range c.shards {
		c.shards[i].cap = per
	}
	return c
}

func (c *decodeCache) shard(fn cfg.FuncID) *cacheShard {
	return &c.shards[uint32(fn)%uint32(len(c.shards))]
}

// get returns the cached block for fn. The hit path takes no locks
// and, once the reference bit is set, performs no shared writes beyond
// the shard-local hit counter.
func (c *decodeCache) get(fn cfg.FuncID) (*core.FunctionTWPP, bool) {
	s := c.shard(fn)
	if v := s.view.Load(); v != nil {
		if e, ok := v.m[fn]; ok {
			if !e.ref.Load() {
				e.ref.Store(true)
			}
			s.hits.Add(1)
			return e.ft, true
		}
	}
	s.misses.Add(1)
	return nil, false
}

// put inserts a decoded block, evicting via the CLOCK hand when the
// shard is full, and publishes a new snapshot.
func (c *decodeCache) put(fn cfg.FuncID, ft *core.FunctionTWPP) {
	s := c.shard(fn)
	s.mu.Lock()
	defer s.mu.Unlock()
	old := s.view.Load()
	if old != nil {
		if _, ok := old.m[fn]; ok {
			// A concurrent extraction already cached this block; keep the
			// existing entry so all callers share one decode.
			return
		}
	}
	next := make(map[cfg.FuncID]*cacheEntry, len(s.ring)+1)
	if old != nil {
		for k, v := range old.m {
			next[k] = v
		}
	}
	e := &cacheEntry{fn: fn, ft: ft}
	if len(s.ring) < s.cap {
		s.ring = append(s.ring, e)
	} else {
		// CLOCK sweep: clear reference bits until an unreferenced entry
		// is found; two full laps guarantee a victim.
		for {
			victim := s.ring[s.hand]
			if victim.ref.Load() {
				victim.ref.Store(false)
				s.hand = (s.hand + 1) % len(s.ring)
				continue
			}
			delete(next, victim.fn)
			s.ring[s.hand] = e
			s.hand = (s.hand + 1) % len(s.ring)
			break
		}
	}
	next[fn] = e
	s.view.Store(&cacheView{m: next})
}

// stats reports cumulative hit and miss counts summed over shards.
func (c *decodeCache) stats() (hits, misses uint64) {
	for i := range c.shards {
		hits += c.shards[i].hits.Load()
		misses += c.shards[i].misses.Load()
	}
	return hits, misses
}

// shardStats reports each shard's counters.
func (c *decodeCache) shardStats() []CacheShardStats {
	out := make([]CacheShardStats, len(c.shards))
	for i := range c.shards {
		out[i] = CacheShardStats{
			Hits:   c.shards[i].hits.Load(),
			Misses: c.shards[i].misses.Load(),
		}
	}
	return out
}
