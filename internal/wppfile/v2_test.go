package wppfile_test

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"twpp/internal/core"
	"twpp/internal/encoding"
	"twpp/internal/storage"
	"twpp/internal/testkit"
	"twpp/internal/trace"
	"twpp/internal/wpp"
	"twpp/internal/wppfile"
)

// encodeV2 compacts a generated WPP into a default-format image.
func encodeV2(t *testing.T, shape testkit.Shape) []byte {
	t.Helper()
	w := testkit.Generate(testkit.Config{Seed: 300 + int64(shape), Shape: shape})
	c, _ := wpp.Compact(w)
	img, err := wppfile.EncodeCompactedWorkers(core.FromCompacted(c), 1)
	if err != nil {
		t.Fatal(err)
	}
	return img
}

// The default write format is v2: a fresh image opens reporting
// version 2 and carries the directory magic in its footer.
func TestDefaultWriteFormatIsV2(t *testing.T) {
	img := encodeV2(t, testkit.Regular)
	cf, err := wppfile.OpenCompactedBytes(img, wppfile.OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	if got := cf.FormatVersion(); got != wppfile.FormatV2 {
		t.Fatalf("FormatVersion() = %d, want %d", got, wppfile.FormatV2)
	}
}

// Flipping any single bit of a v2 image must surface as a structured
// error under eager verification — and for every byte inside the
// checksummed region (everything between the 5-byte header and the
// 12-byte footer: META, DCG, BLOCKS, and the section directory) that
// error must be exactly CodeChecksum. No flip may decode silently or
// panic. This is the integrity contract the section checksums were
// added for.
func TestV2BitFlipSweepYieldsChecksum(t *testing.T) {
	for _, shape := range testkit.Shapes() {
		shape := shape
		t.Run(shape.String(), func(t *testing.T) {
			t.Parallel()
			img := encodeV2(t, shape)
			for off := 0; off < len(img); off++ {
				flipped := testkit.BitFlip(img, off, off%8)
				cf, err := wppfile.OpenCompactedBytes(flipped, wppfile.OpenOptions{VerifyChecksums: true})
				if err == nil {
					cf.Close()
					t.Fatalf("offset %d: flipped image opened cleanly", off)
				}
				if !testkit.Structured(err) {
					t.Fatalf("offset %d: unstructured error %T: %v", off, err, err)
				}
				inSection := off >= wppfile.V2HeaderLen && off < len(img)-wppfile.V2FooterLen
				if !inSection {
					continue
				}
				var de *encoding.Error
				if !errors.As(err, &de) || de.Code != encoding.CodeChecksum {
					t.Fatalf("offset %d: error %v, want %s", off, err, encoding.CodeChecksum)
				}
			}
		})
	}
}

// Lazy verification (the always-on default) must catch a corrupted
// block the moment it is extracted, and a corrupted DCG the moment it
// is read — never return wrong data.
func TestV2LazyChecksumOnExtraction(t *testing.T) {
	img := encodeV2(t, testkit.Irregular)
	cf, err := wppfile.OpenCompactedBytes(img, wppfile.OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fns := cf.Functions()
	cf.Close()

	// Flip one bit in every byte of the trailing two-thirds of the
	// image (DCG + BLOCKS live there) and demand every read either
	// extracts correct data elsewhere or fails with CodeChecksum.
	for off := len(img) / 3; off < len(img)-wppfile.V2FooterLen; off++ {
		flipped := testkit.BitFlip(img, off, 5)
		cf, err := wppfile.OpenCompactedBytes(flipped, wppfile.OpenOptions{})
		if err != nil {
			// The flip hit META or the directory; open-time checks own it.
			if !testkit.Structured(err) {
				t.Fatalf("offset %d: unstructured open error: %v", off, err)
			}
			continue
		}
		sawChecksum := false
		if _, err := cf.ReadDCG(); err != nil {
			var de *encoding.Error
			if !errors.As(err, &de) || de.Code != encoding.CodeChecksum {
				t.Fatalf("offset %d: ReadDCG error %v, want checksum", off, err)
			}
			sawChecksum = true
		}
		for _, fn := range fns {
			if _, err := cf.ExtractFunction(fn); err != nil {
				var de *encoding.Error
				if !errors.As(err, &de) || de.Code != encoding.CodeChecksum {
					t.Fatalf("offset %d: extract f%d error %v, want checksum", off, fn, err)
				}
				sawChecksum = true
			}
		}
		cf.Close()
		if !sawChecksum {
			t.Fatalf("offset %d: no read path noticed the flipped bit", off)
		}
	}
}

// The committed v1 fixtures were written by the pre-refactor encoder.
// The versioned reader must keep opening them: correct version report,
// every function extractable over every backend, full semantic
// round-trip against the sibling raw capture, and — the strongest
// compatibility statement — re-encoding that raw capture with
// -format=1 must reproduce the fixture byte for byte.
func TestV1FixturesCompat(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("testdata", "v1", "*.twpp"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != len(testkit.Shapes()) {
		t.Fatalf("found %d v1 fixtures, want %d", len(paths), len(testkit.Shapes()))
	}
	for _, p := range paths {
		p := p
		name := strings.TrimSuffix(filepath.Base(p), ".twpp")
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			w, err := wppfile.ReadRaw(filepath.Join("testdata", "v1", name+".wpp"))
			if err != nil {
				t.Fatalf("raw fixture: %v", err)
			}
			for _, kind := range []storage.Kind{storage.KindFile, storage.KindMmap, storage.KindMemory} {
				cf, err := wppfile.OpenCompactedOptions(p, wppfile.OpenOptions{Backend: kind, VerifyChecksums: true})
				if err != nil {
					t.Fatalf("%s open: %v", kind, err)
				}
				if got := cf.FormatVersion(); got != wppfile.FormatV1 {
					t.Errorf("%s: FormatVersion() = %d, want 1", kind, got)
				}
				for _, fn := range cf.Functions() {
					if _, err := cf.ExtractFunction(fn); err != nil {
						t.Errorf("%s: extract f%d: %v", kind, fn, err)
					}
				}
				tw, err := cf.ReadAll()
				cf.Close()
				if err != nil {
					t.Fatalf("%s read all: %v", kind, err)
				}
				c2, err := tw.ToCompacted()
				if err != nil {
					t.Fatalf("%s invert: %v", kind, err)
				}
				if !trace.Equal(w, c2.Reconstruct()) {
					t.Errorf("%s: fixture does not reconstruct the raw capture", kind)
				}
			}

			fixture, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			c, _ := wpp.Compact(w)
			img, err := wppfile.EncodeCompactedFormat(core.FromCompacted(c), 1, wppfile.FormatV1)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(img, fixture) {
				t.Errorf("re-encode with format=1: %d bytes differ from the %d-byte fixture",
					len(img), len(fixture))
			}
		})
	}
}

// Batch and streaming writers must agree byte for byte in both
// formats, not just the default.
func TestBatchStreamParityBothFormats(t *testing.T) {
	for _, format := range []int{wppfile.FormatV1, wppfile.FormatV2} {
		for _, shape := range testkit.Shapes() {
			t.Run(fmt.Sprintf("v%d/%s", format, shape), func(t *testing.T) {
				w := testkit.Generate(testkit.Config{Seed: 500 + int64(shape), Shape: shape})
				c, _ := wpp.Compact(w)
				tw := core.FromCompacted(c)
				batch, err := wppfile.EncodeCompactedFormat(tw, 1, format)
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				if _, err := wppfile.EncodeCompactedToFormat(&buf, tw, 1, format); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(batch, buf.Bytes()) {
					t.Errorf("batch (%d bytes) and stream (%d bytes) images differ", len(batch), buf.Len())
				}
			})
		}
	}
}
