// CompactedFile: the random-access handle over a compacted container,
// reading through a pluggable storage.Backend. Open reads only the
// header/index (plus, for v2, the trailer directory); per-function
// extraction is one positioned read at the function's block offset.

package wppfile

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"sync"
	"sync/atomic"

	"twpp/internal/cfg"
	"twpp/internal/core"
	"twpp/internal/encoding"
	"twpp/internal/lzw"
	"twpp/internal/storage"
	"twpp/internal/wpp"
)

// CompactedFile provides indexed access to a compacted TWPP file.
// Open reads only the header and index; per-function extraction reads
// directly at the function's block offset.
//
// Concurrency contract: a CompactedFile is safe for concurrent use by
// multiple goroutines. All access after Open uses positioned ReadAt
// I/O on the shared backend (never Seek+Read, which would race on a
// file position), and the header, index, and order fields are
// immutable once Open returns. When the decode cache is enabled
// (OpenOptions.CacheEntries > 0), ExtractFunction may return the same
// *core.FunctionTWPP to several goroutines: callers must treat
// extracted blocks as read-only.
type CompactedFile struct {
	b storage.Backend
	// format is the container format the file was written in
	// (FormatV1 or FormatV2), fixed at Open.
	format    int
	FuncNames []string
	index     map[cfg.FuncID]indexEntry
	// order preserves the on-disk (hotness) order of the index.
	order []cfg.FuncID
	// dcgOffset/dcgLen locate the encoded DCG; dcgCodec says how it
	// is stored (always CodecLZW for files this package writes).
	dcgOffset int64
	dcgLen    int
	dcgCodec  uint64
	// dcgCRC is the stored DCG section checksum (v2 only);
	// dcgVerified flips once it has been checked so repeated ReadDCG
	// calls do not re-hash. For v1 files it starts true.
	dcgCRC      uint32
	dcgVerified atomic.Bool
	// blocksOffset/blocksLen bound the blocks section; blocksCRC is
	// the stored whole-section checksum (v2 only), verified by the
	// eager path. size is the total file size.
	blocksOffset int64
	blocksLen    int64
	blocksCRC    uint32
	// dirCRC is the v2 trailer directory checksum. The directory
	// stores every section's CRC, so dirCRC is a free whole-container
	// content hash (ContentHash).
	dirCRC uint32
	size   int64
	// secHeader/secDCG/secBlocks are the SectionSizes breakdown,
	// computed once when the header parse finishes.
	secHeader, secDCG, secBlocks int64
	// lim holds the resolved decode resource limits from OpenOptions.
	lim limits
	// cache, when non-nil, holds recently decoded function blocks.
	cache *decodeCache
	// inst, when non-nil, receives decode-path events (OpenOptions.Instrument).
	inst *Instrument
	// closeOnce/closed make Close idempotent and let extraction fail
	// fast (wrapping os.ErrClosed) instead of racing the backend.
	closeOnce sync.Once
	closeErr  error
	closed    atomic.Bool
}

// NoLimit disables an OpenOptions resource limit (a zero value selects
// the default instead).
const NoLimit = -1

// Default decode resource limits. They are far above anything the
// encoder produces for real profiles, so hitting one means the input
// is hostile or corrupt, not large.
const (
	// DefaultMaxTraceBytes caps a single function block's encoded
	// length and the decompressed DCG size (1 GiB).
	DefaultMaxTraceBytes = int64(1) << 30
	// DefaultMaxFuncTraces caps the declared unique-trace count of one
	// function block.
	DefaultMaxFuncTraces = 1 << 21
	// DefaultMaxSeqValues caps a declared trace length and a declared
	// per-block timestamp value count, bounding the allocation a single
	// length field can demand before any of its values decode.
	DefaultMaxSeqValues = 1 << 24
)

// ErrNoFunction matches (errors.Is) extraction of a function absent
// from the file's index — a lookup miss, not a decode failure. Serving
// surfaces map it to "not found" rather than "bad input".
var ErrNoFunction = errors.New("function not present in WPP")

// Instrument carries optional decode-path callbacks, the hook the
// observability layer uses to count cache behaviour and decode volume
// without the file depending on any metrics package. Callbacks may be
// invoked concurrently and must be cheap and non-blocking; nil fields
// are skipped.
type Instrument struct {
	// OnDecode fires after a function block is read and decoded from
	// disk (with caching enabled, a cache miss), with the block's
	// encoded length in bytes.
	OnDecode func(fn cfg.FuncID, encodedBytes int)
	// OnCacheHit fires when an extraction is served from the decode
	// cache.
	OnCacheHit func(fn cfg.FuncID)
}

// OpenOptions configures OpenCompactedOptions.
type OpenOptions struct {
	// Backend selects how the container bytes are accessed: buffered
	// positioned reads on a file descriptor (KindFile, the zero
	// value), a read-only memory mapping (KindMmap), or an in-memory
	// copy (KindMemory).
	Backend storage.Kind

	// VerifyChecksums forces eager verification of every v2 section
	// checksum at Open, including the whole BLOCKS section. Without
	// it, sections verify lazily: META and the directory at Open, the
	// DCG on first read, and each function block (against its index
	// CRC) on each uncached extraction. No effect on v1 files, which
	// carry no checksums.
	VerifyChecksums bool

	// CacheEntries sizes the sharded LRU cache of decoded function
	// blocks. 0 disables caching (every extraction decodes afresh).
	CacheEntries int

	// Instrument, when non-nil, receives decode-path events (cache
	// hits, block decodes) for metrics.
	Instrument *Instrument

	// MaxTraceBytes caps a single function block's encoded length (as
	// declared by the index) and the decompressed size of the DCG.
	// 0 selects DefaultMaxTraceBytes; NoLimit disables the cap.
	MaxTraceBytes int64
	// MaxFuncTraces caps the unique-trace count a function block may
	// declare. 0 selects DefaultMaxFuncTraces; NoLimit disables.
	MaxFuncTraces int
	// MaxSeqValues caps declared trace lengths and per-block timestamp
	// value counts before anything is allocated for them. 0 selects
	// DefaultMaxSeqValues; NoLimit disables.
	MaxSeqValues int
}

// limits is an OpenOptions with defaults resolved: every field is a
// directly comparable bound.
type limits struct {
	maxTraceBytes int64
	maxFuncTraces uint64
	maxSeqValues  uint64
}

func (o OpenOptions) resolve() limits {
	l := limits{
		maxTraceBytes: o.MaxTraceBytes,
		maxFuncTraces: uint64(o.MaxFuncTraces),
		maxSeqValues:  uint64(o.MaxSeqValues),
	}
	switch {
	case o.MaxTraceBytes == 0:
		l.maxTraceBytes = DefaultMaxTraceBytes
	case o.MaxTraceBytes < 0:
		l.maxTraceBytes = math.MaxInt64
	}
	switch {
	case o.MaxFuncTraces == 0:
		l.maxFuncTraces = DefaultMaxFuncTraces
	case o.MaxFuncTraces < 0:
		l.maxFuncTraces = math.MaxUint64
	}
	switch {
	case o.MaxSeqValues == 0:
		l.maxSeqValues = DefaultMaxSeqValues
	case o.MaxSeqValues < 0:
		l.maxSeqValues = math.MaxUint64
	}
	return l
}

// OpenCompacted opens a compacted TWPP file with caching disabled,
// reading header and index only.
func OpenCompacted(path string) (*CompactedFile, error) {
	return OpenCompactedOptions(path, OpenOptions{})
}

// OpenCompactedOptions opens a compacted TWPP file through the backend
// selected by opts.Backend, reading header and index only (plus a full
// checksum pass when opts.VerifyChecksums is set).
func OpenCompactedOptions(path string, opts OpenOptions) (*CompactedFile, error) {
	b, err := storage.Open(path, opts.Backend)
	if err != nil {
		return nil, err
	}
	cf, err := OpenCompactedBackend(b, opts)
	if err != nil {
		b.Close()
		return nil, err
	}
	return cf, nil
}

// OpenCompactedBytes opens a compacted container held in memory —
// the in-process path for verification and tests. data must not be
// mutated while the file is in use.
func OpenCompactedBytes(data []byte, opts OpenOptions) (*CompactedFile, error) {
	return OpenCompactedBackend(storage.FromBytes(data), opts)
}

// OpenCompactedBackend opens a compacted container over an
// already-open backend. On success the returned file owns b (Close
// closes it); on error the caller still owns b.
func OpenCompactedBackend(b storage.Backend, opts OpenOptions) (*CompactedFile, error) {
	cf := &CompactedFile{
		b:     b,
		index: make(map[cfg.FuncID]indexEntry),
		size:  b.Size(),
		lim:   opts.resolve(),
		cache: newDecodeCache(opts.CacheEntries),
		inst:  opts.Instrument,
	}
	if err := cf.parseHeader(); err != nil {
		return nil, err
	}
	// Precompute the Table 3 section breakdown: the DCG and blocks
	// sections are located, everything else (header, index/META, v2
	// directory and footer) is overhead.
	cf.secDCG = int64(cf.dcgLen)
	cf.secBlocks = cf.blocksLen
	cf.secHeader = cf.size - cf.secDCG - cf.secBlocks
	if opts.VerifyChecksums {
		if err := cf.verifyAllSections(); err != nil {
			return nil, err
		}
	}
	return cf, nil
}

// Close releases the underlying backend. It is idempotent and safe to
// call concurrently with extractions: the first call closes the
// backend and records the result, later calls return that same
// result, and extractions started after Close fail with an error
// wrapping os.ErrClosed.
func (cf *CompactedFile) Close() error {
	cf.closeOnce.Do(func() {
		cf.closed.Store(true)
		cf.closeErr = cf.b.Close()
	})
	return cf.closeErr
}

// FormatVersion reports the container format the file was written in
// (FormatV1 or FormatV2).
func (cf *CompactedFile) FormatVersion() int { return cf.format }

// Functions returns the function ids present, hottest first.
func (cf *CompactedFile) Functions() []cfg.FuncID {
	out := make([]cfg.FuncID, len(cf.order))
	copy(out, cf.order)
	return out
}

// CallCount reports the recorded invocation count of fn (0 if absent).
func (cf *CompactedFile) CallCount(fn cfg.FuncID) int {
	return cf.index[fn].CallCount
}

// ExtractFunction reads exactly one function's block: one positioned
// read plus one decode. This is the fast path of Table 4. With the
// decode cache enabled, repeated extractions of a hot function skip
// both the read and the decode; the returned block is then shared and
// must be treated as read-only.
func (cf *CompactedFile) ExtractFunction(fn cfg.FuncID) (*core.FunctionTWPP, error) {
	return cf.ExtractFunctionCtx(context.Background(), fn)
}

// ExtractFunctionCtx is ExtractFunction with cooperative cancellation:
// ctx is checked before the positioned read and before the decode, so
// an expired per-request deadline skips the remaining work with
// ctx.Err(). Cache hits are returned regardless of ctx — they cost
// nothing. On v2 files the block bytes are CRC-checked against the
// index before decoding, so extraction verifies exactly the bytes it
// read without touching the rest of the file.
func (cf *CompactedFile) ExtractFunctionCtx(ctx context.Context, fn cfg.FuncID) (*core.FunctionTWPP, error) {
	return cf.extractCtx(ctx, fn, nil, true)
}

// extractCtx is the one extraction implementation behind both
// ExtractFunctionCtx (buf == nil, cacheable) and
// ExtractFunctionIntoCtx (caller buffer, never cached: the cache must
// only hold blocks it owns, and a buffer-decoded block is overwritten
// by the buffer's next use).
func (cf *CompactedFile) extractCtx(ctx context.Context, fn cfg.FuncID, ebuf *ExtractBuffer, cacheable bool) (*core.FunctionTWPP, error) {
	if cf.closed.Load() {
		return nil, fmt.Errorf("wppfile: extract function %d: %w", fn, os.ErrClosed)
	}
	if cf.cache != nil {
		if ft, ok := cf.cache.get(fn); ok {
			if cf.inst != nil && cf.inst.OnCacheHit != nil {
				cf.inst.OnCacheHit(fn)
			}
			return ft, nil
		}
	}
	e, ok := cf.index[fn]
	if !ok {
		return nil, fmt.Errorf("wppfile: function %d: %w", fn, ErrNoFunction)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var buf []byte
	if ebuf != nil {
		ebuf.reset()
		buf = ebuf.blockBuf(e.Length)
	} else {
		buf = make([]byte, e.Length)
	}
	if _, err := cf.b.ReadAt(buf, cf.blocksOffset+int64(e.Offset)); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, encoding.Wrap(encoding.CodeTruncated, cf.blocksOffset+int64(e.Offset), err,
				fmt.Sprintf("wppfile: short read of function %d block", fn))
		}
		return nil, err
	}
	if cf.format == FormatV2 {
		if got := Checksum(buf); got != e.CRC {
			return nil, checksumErr(fmt.Sprintf("function %d block", fn),
				cf.blocksOffset+int64(e.Offset), e.CRC, got)
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ft, err := decodeFunctionBlockInto(buf, fn, cf.lim, ebuf)
	if err != nil {
		return nil, err
	}
	if cf.inst != nil && cf.inst.OnDecode != nil {
		cf.inst.OnDecode(fn, e.Length)
	}
	if cacheable && cf.cache != nil {
		cf.cache.put(fn, ft)
	}
	return ft, nil
}

// BlockLength reports the encoded on-disk length of fn's block (0 if
// the function is absent) — the per-function cost a serving layer can
// report without decoding.
func (cf *CompactedFile) BlockLength(fn cfg.FuncID) int {
	return cf.index[fn].Length
}

// CacheStats reports the decode cache's cumulative hit and miss
// counts (both zero when the cache is disabled).
func (cf *CompactedFile) CacheStats() (hits, misses uint64) {
	if cf.cache == nil {
		return 0, 0
	}
	return cf.cache.stats()
}

// CacheShardStats reports per-shard decode-cache hit/miss counts, or
// nil when the cache is disabled. Counters are shard-local (padded,
// never shared between shards), so reading them is contention-free.
func (cf *CompactedFile) CacheShardStats() []CacheShardStats {
	if cf.cache == nil {
		return nil
	}
	return cf.cache.shardStats()
}

// ContentHash returns a stable hash identifying the container's
// content, derived from the v2 trailer: the directory CRC32-C (which
// covers every section's stored CRC, so any payload change propagates
// into it) combined with the file size. ok is false for v1 files,
// which carry no checksums. The serving layer uses this as the basis
// for HTTP ETags.
func (cf *CompactedFile) ContentHash() (uint64, bool) {
	if cf.format != FormatV2 {
		return 0, false
	}
	return uint64(cf.dirCRC)<<32 | uint64(uint32(cf.size)), true
}

// ReadDCG reads and decodes the dynamic call graph. On v2 files the
// section checksum is verified the first time (racing first readers
// may both verify; the check is idempotent). The decompressed size is
// capped by OpenOptions.MaxTraceBytes, so a hostile DCG section cannot
// balloon (LZW expands up to ~65000x).
func (cf *CompactedFile) ReadDCG() (*wpp.CallNode, error) {
	if cf.closed.Load() {
		return nil, fmt.Errorf("wppfile: read DCG: %w", os.ErrClosed)
	}
	buf := make([]byte, cf.dcgLen)
	if _, err := cf.b.ReadAt(buf, cf.dcgOffset); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, encoding.Wrap(encoding.CodeTruncated, cf.dcgOffset, err, "wppfile: short read of DCG section")
		}
		return nil, err
	}
	if !cf.dcgVerified.Load() {
		if got := Checksum(buf); got != cf.dcgCRC {
			return nil, checksumErr("DCG section", cf.dcgOffset, cf.dcgCRC, got)
		}
		cf.dcgVerified.Store(true)
	}
	raw := buf
	if cf.dcgCodec == CodecLZW {
		max := cf.lim.maxTraceBytes
		if max > math.MaxInt {
			max = math.MaxInt
		}
		var err error
		raw, err = lzw.DecompressLimit(buf, int(max))
		if err != nil {
			return nil, encoding.Wrap(encoding.CodeCorrupt, cf.dcgOffset, err, "wppfile: DCG")
		}
	}
	return decodeDCG(raw)
}

// ReadAll reconstructs the complete TWPP from the file.
func (cf *CompactedFile) ReadAll() (*core.TWPP, error) {
	root, err := cf.ReadDCG()
	if err != nil {
		return nil, err
	}
	maxFn := len(cf.FuncNames)
	for _, fn := range cf.order {
		if int(fn) >= maxFn {
			maxFn = int(fn) + 1
		}
	}
	t := &core.TWPP{
		FuncNames: cf.FuncNames,
		Root:      root,
		Funcs:     make([]core.FunctionTWPP, maxFn),
	}
	for f := range t.Funcs {
		t.Funcs[f].Fn = cfg.FuncID(f)
	}
	for _, fn := range cf.order {
		ft, err := cf.ExtractFunction(fn)
		if err != nil {
			return nil, err
		}
		t.Funcs[fn] = *ft
	}
	// Validate every DCG reference against the decoded blocks so
	// downstream walkers (reconstruction, slicing, queries) can index
	// Funcs and Traces without re-checking corrupt input.
	var walk func(n *wpp.CallNode) error
	walk = func(n *wpp.CallNode) error {
		if n == nil {
			return nil
		}
		if int(n.Fn) >= len(t.Funcs) || n.TraceIdx < 0 || n.TraceIdx >= len(t.Funcs[n.Fn].Traces) {
			return encoding.Errf(encoding.CodeCorrupt, cf.dcgOffset,
				"wppfile: DCG node references function %d trace %d, not in file", n.Fn, n.TraceIdx)
		}
		for _, ch := range n.Children {
			if err := walk(ch); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(root); err != nil {
		return nil, err
	}
	return t, nil
}

// SectionSizes reports the on-disk sizes of the compacted file's
// components for the Table 3 breakdown: everything that is not DCG or
// blocks payload (header, index/META, and in v2 the directory and
// footer), the encoded DCG, and the function blocks. The values are
// computed once at Open and never touch the backend, so the call is
// safe and free concurrently with extractions.
func (cf *CompactedFile) SectionSizes() (header, dcg, blocks int64, err error) {
	return cf.secHeader, cf.secDCG, cf.secBlocks, nil
}
