// Compacted-format writers: the batch encoders that assemble a file
// image in memory and the writer-based streaming encoder that never
// materializes the file. Both emit byte-identical output for a given
// (TWPP, format) at any worker count; both write format v2 unless
// FormatV1 is forced.

package wppfile

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"sync"

	"twpp/internal/cfg"
	"twpp/internal/core"
	"twpp/internal/encoding"
	"twpp/internal/lzw"
	"twpp/internal/wpp"
)

// indexEntry describes one function's block in the file.
type indexEntry struct {
	Fn        cfg.FuncID
	CallCount int
	Offset    int // relative to the start of the blocks section
	Length    int
	// CRC is the CRC32-C of the encoded block bytes. Stored in the v2
	// index (and verified on every extraction); zero for v1 files.
	CRC uint32
}

// checkFormat resolves a requested format: 0 selects DefaultFormat.
func checkFormat(format int) (int, error) {
	switch format {
	case 0:
		return DefaultFormat, nil
	case FormatV1, FormatV2:
		return format, nil
	default:
		return 0, fmt.Errorf("wppfile: unknown container format %d", format)
	}
}

// WriteCompacted serializes a TWPP in the compacted indexed format.
func WriteCompacted(path string, t *core.TWPP) error {
	return WriteCompactedWorkers(path, t, 1)
}

// WriteCompactedWorkers is WriteCompacted with per-function block
// encoding fanned out over workers goroutines (<= 0 selects
// runtime.GOMAXPROCS(0)).
func WriteCompactedWorkers(path string, t *core.TWPP, workers int) error {
	return WriteCompactedFormat(path, t, workers, DefaultFormat)
}

// WriteCompactedFormat is WriteCompactedWorkers writing the given
// container format (FormatV1, FormatV2, or 0 for the default).
func WriteCompactedFormat(path string, t *core.TWPP, workers, format int) error {
	data, err := EncodeCompactedFormat(t, workers, format)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// EncodeCompacted produces the compacted file image in memory.
func EncodeCompacted(t *core.TWPP) ([]byte, error) {
	return EncodeCompactedWorkers(t, 1)
}

// encodeBufPool recycles per-function encode buffers across
// EncodeCompactedWorkers calls.
var encodeBufPool = sync.Pool{New: func() any { return new([]byte) }}

// EncodeCompactedWorkers is EncodeCompacted with the per-function
// blocks encoded concurrently into pooled buffers. The index and final
// image are assembled sequentially in hotness order, so the output is
// byte-identical to the sequential (workers == 1) path for any worker
// count.
func EncodeCompactedWorkers(t *core.TWPP, workers int) ([]byte, error) {
	return EncodeCompactedFormat(t, workers, DefaultFormat)
}

// EncodeCompactedFormat is EncodeCompactedWorkers emitting the given
// container format (FormatV1, FormatV2, or 0 for the default).
func EncodeCompactedFormat(t *core.TWPP, workers, format int) ([]byte, error) {
	format, err := checkFormat(format)
	if err != nil {
		return nil, err
	}

	// Per-function blocks, hottest function first (the paper stores
	// the most frequently called function's traces first).
	order := hotOrder(t)

	// Encode each function's block into its own pooled buffer,
	// concurrently when workers allow. Blocks only ever append to
	// their buffer, so the per-function bytes are independent of
	// scheduling.
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	parts := make([]*[]byte, len(order))
	runJobs(len(order), workers, func(i int) {
		bp := encodeBufPool.Get().(*[]byte)
		*bp = encodeFunctionBlock((*bp)[:0], &t.Funcs[order[i]])
		parts[i] = bp
	})

	// Assemble the blocks section and its index sequentially in
	// hotness order, returning buffers to the pool as they are
	// consumed.
	total := 0
	for _, bp := range parts {
		total += len(*bp)
	}
	blocks := make([]byte, 0, total)
	index := make([]indexEntry, 0, len(order))
	for i, f := range order {
		start := len(blocks)
		blocks = append(blocks, *parts[i]...)
		e := indexEntry{
			Fn:        f,
			CallCount: t.Funcs[f].CallCount,
			Offset:    start,
			Length:    len(blocks) - start,
		}
		if format == FormatV2 {
			e.CRC = Checksum(blocks[start:])
		}
		index = append(index, e)
		encodeBufPool.Put(parts[i])
		parts[i] = nil
	}

	dcg := lzw.Compress(encodeDCG(t.Root))

	if format == FormatV1 {
		// v1: header, names, index, DCG, blocks — implicit layout.
		buf := appendCompactedHeader(nil, t, index, len(dcg))
		buf = append(buf, dcg...)
		buf = append(buf, blocks...)
		return buf, nil
	}

	// v2: magic/version, META, DCG, BLOCKS, then the trailer
	// directory locating and checksumming all three.
	buf := appendV2Prefix(nil)
	metaOff := len(buf)
	buf = appendMetaV2(buf, t, index)
	meta := section{ID: SecMeta, Codec: CodecRaw, Offset: int64(metaOff),
		Length: int64(len(buf) - metaOff), CRC: Checksum(buf[metaOff:])}
	dcgOff := len(buf)
	buf = append(buf, dcg...)
	dcgSec := section{ID: SecDCG, Codec: CodecLZW, Offset: int64(dcgOff),
		Length: int64(len(dcg)), CRC: Checksum(dcg)}
	blocksOff := len(buf)
	buf = append(buf, blocks...)
	blocksSec := section{ID: SecBlocks, Codec: CodecRaw, Offset: int64(blocksOff),
		Length: int64(len(blocks)), CRC: Checksum(blocks)}
	return appendDirectory(buf, []section{meta, dcgSec, blocksSec}), nil
}

// appendV2Prefix appends the fixed v2 prefix: magic plus the version
// varint — exactly V2HeaderLen bytes.
func appendV2Prefix(buf []byte) []byte {
	buf = encoding.PutUint32(buf, MagicCompacted)
	return encoding.PutUvarint(buf, FormatV2)
}

// appendCompactedHeader appends the v1 header, name table, index, and
// DCG length prefix — everything that precedes the compressed DCG
// bytes in a v1 file.
func appendCompactedHeader(buf []byte, t *core.TWPP, index []indexEntry, dcgLen int) []byte {
	buf = encoding.PutUint32(buf, MagicCompacted)
	buf = encoding.PutUvarint(buf, FormatV1)
	buf = encoding.PutUvarint(buf, uint64(len(t.FuncNames)))
	for _, n := range t.FuncNames {
		buf = encoding.PutString(buf, n)
	}
	buf = encoding.PutUvarint(buf, uint64(len(index)))
	for _, e := range index {
		buf = encoding.PutUvarint(buf, uint64(e.Fn))
		buf = encoding.PutUvarint(buf, uint64(e.CallCount))
		buf = encoding.PutUvarint(buf, uint64(e.Offset))
		buf = encoding.PutUvarint(buf, uint64(e.Length))
	}
	return encoding.PutUvarint(buf, uint64(dcgLen))
}

// appendMetaV2 appends the v2 META section payload: name table and the
// per-function index, each entry carrying its block's CRC32-C.
func appendMetaV2(buf []byte, t *core.TWPP, index []indexEntry) []byte {
	buf = encoding.PutUvarint(buf, uint64(len(t.FuncNames)))
	for _, n := range t.FuncNames {
		buf = encoding.PutString(buf, n)
	}
	buf = encoding.PutUvarint(buf, uint64(len(index)))
	for _, e := range index {
		buf = encoding.PutUvarint(buf, uint64(e.Fn))
		buf = encoding.PutUvarint(buf, uint64(e.CallCount))
		buf = encoding.PutUvarint(buf, uint64(e.Offset))
		buf = encoding.PutUvarint(buf, uint64(e.Length))
		buf = encoding.PutUint32(buf, e.CRC)
	}
	return buf
}

// encodeFunctionBlock appends one function's dictionaries and TWPP
// traces.
func encodeFunctionBlock(buf []byte, ft *core.FunctionTWPP) []byte {
	buf = encoding.PutUvarint(buf, uint64(ft.CallCount))
	buf = encoding.PutUvarint(buf, uint64(len(ft.Dicts)))
	for _, d := range ft.Dicts {
		buf = AppendDictionary(buf, d)
	}
	buf = encoding.PutUvarint(buf, uint64(len(ft.Traces)))
	for i, tr := range ft.Traces {
		buf = AppendTraceRecord(buf, ft.DictOf[i], tr)
	}
	return buf
}

// AppendDictionary appends one dictionary's canonical encoding (chains
// in ascending head order). The segment writer uses it to size
// trace-window splits with the exact bytes the block encoder emits.
func AppendDictionary(buf []byte, d wpp.Dictionary) []byte {
	heads := make([]cfg.BlockID, 0, len(d))
	for h := range d {
		heads = append(heads, h)
	}
	sort.Slice(heads, func(i, j int) bool { return heads[i] < heads[j] })
	buf = encoding.PutUvarint(buf, uint64(len(heads)))
	for _, h := range heads {
		chain := d[h]
		buf = encoding.PutUvarint(buf, uint64(h))
		buf = encoding.PutUvarint(buf, uint64(len(chain)))
		for _, id := range chain {
			buf = encoding.PutUvarint(buf, uint64(id))
		}
	}
	return buf
}

// AppendTraceRecord appends one TWPP trace record (dictionary index,
// original length, per-block timestamp series) — the per-trace unit of
// a function block.
func AppendTraceRecord(buf []byte, dictIdx int, tr *core.Trace) []byte {
	buf = encoding.PutUvarint(buf, uint64(dictIdx))
	buf = encoding.PutUvarint(buf, uint64(tr.Len))
	buf = encoding.PutUvarint(buf, uint64(len(tr.Blocks)))
	for _, bt := range tr.Blocks {
		buf = encoding.PutUvarint(buf, uint64(bt.Block))
		signed := bt.Times.EncodeSigned(nil)
		buf = encoding.PutUvarint(buf, uint64(len(signed)))
		for _, v := range signed {
			buf = encoding.PutVarint(buf, v)
		}
	}
	return buf
}

// encodeDCG serializes the compacted DCG (function, unique trace
// index, children with positions) in preorder.
func encodeDCG(root *wpp.CallNode) []byte {
	var buf []byte
	var rec func(n *wpp.CallNode)
	rec = func(n *wpp.CallNode) {
		buf = encoding.PutUvarint(buf, uint64(n.Fn))
		buf = encoding.PutUvarint(buf, uint64(n.TraceIdx))
		buf = encoding.PutUvarint(buf, uint64(len(n.Children)))
		prev := 0
		for i, c := range n.Children {
			buf = encoding.PutUvarint(buf, uint64(n.ChildPos[i]-prev))
			prev = n.ChildPos[i]
			rec(c)
		}
	}
	if root != nil {
		rec(root)
	}
	return buf
}

// ---------------------------------------------------------------------
// Writer-based (streaming) compacted encode.
// ---------------------------------------------------------------------

// EncodeCompactedTo writes the compacted format to w without
// materializing the file image: per-function blocks are encoded twice
// (once to size and checksum the index, once to emit) into pooled
// buffers bounded by the worker count, so peak memory is O(header +
// workers * largest block) rather than O(file). The bytes written are
// identical to EncodeCompactedWorkers at any worker count (workers <=
// 0 selects runtime.GOMAXPROCS(0)). It returns the total byte count
// written.
//
// The double encode is forced by the format: the index, which precedes
// the blocks, stores each block's offset, length, and (v2) CRC.
func EncodeCompactedTo(w io.Writer, t *core.TWPP, workers int) (int64, error) {
	return EncodeCompactedToFormat(w, t, workers, DefaultFormat)
}

// EncodeCompactedToFormat is EncodeCompactedTo emitting the given
// container format (FormatV1, FormatV2, or 0 for the default).
func EncodeCompactedToFormat(w io.Writer, t *core.TWPP, workers, format int) (int64, error) {
	format, err := checkFormat(format)
	if err != nil {
		return 0, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	order := hotOrder(t)

	// Pass 1: block lengths and checksums, fanned out over the pool.
	lengths := make([]int, len(order))
	crcs := make([]uint32, len(order))
	runJobs(len(order), workers, func(i int) {
		bp := encodeBufPool.Get().(*[]byte)
		*bp = encodeFunctionBlock((*bp)[:0], &t.Funcs[order[i]])
		lengths[i] = len(*bp)
		if format == FormatV2 {
			crcs[i] = Checksum(*bp)
		}
		encodeBufPool.Put(bp)
	})
	index := make([]indexEntry, len(order))
	off := 0
	for i, f := range order {
		index[i] = indexEntry{Fn: f, CallCount: t.Funcs[f].CallCount,
			Offset: off, Length: lengths[i], CRC: crcs[i]}
		off += lengths[i]
	}

	dcg := lzw.Compress(encodeDCG(t.Root))

	// Everything before the blocks section is small; assemble and
	// write it in one shot. For v2 the section geometry is recorded
	// now and emitted as the trailer directory after the blocks.
	var head []byte
	var meta, dcgSec, blocksSec section
	if format == FormatV1 {
		head = appendCompactedHeader(nil, t, index, len(dcg))
		head = append(head, dcg...)
	} else {
		head = appendV2Prefix(nil)
		metaOff := len(head)
		head = appendMetaV2(head, t, index)
		meta = section{ID: SecMeta, Codec: CodecRaw, Offset: int64(metaOff),
			Length: int64(len(head) - metaOff), CRC: Checksum(head[metaOff:])}
		dcgSec = section{ID: SecDCG, Codec: CodecLZW, Offset: int64(len(head)),
			Length: int64(len(dcg)), CRC: Checksum(dcg)}
		head = append(head, dcg...)
		blocksSec = section{ID: SecBlocks, Codec: CodecRaw,
			Offset: int64(len(head)), Length: int64(off)}
	}
	var written int64
	n, err := w.Write(head)
	written += int64(n)
	if err != nil {
		return written, err
	}

	// Pass 2: re-encode and emit blocks in index order, a
	// workers-sized batch at a time — encode concurrently, write
	// sequentially. The v2 BLOCKS section checksum accumulates over
	// the bytes as they go out.
	var blocksCRC uint32
	parts := make([]*[]byte, len(order))
	for start := 0; start < len(order); start += workers {
		end := start + workers
		if end > len(order) {
			end = len(order)
		}
		runJobs(end-start, workers, func(j int) {
			i := start + j
			bp := encodeBufPool.Get().(*[]byte)
			*bp = encodeFunctionBlock((*bp)[:0], &t.Funcs[order[i]])
			parts[i] = bp
		})
		for i := start; i < end; i++ {
			bp := parts[i]
			parts[i] = nil
			if len(*bp) != lengths[i] {
				encodeBufPool.Put(bp)
				return written, fmt.Errorf("wppfile: function %d block re-encoded to %d bytes, index says %d",
					order[i], len(*bp), lengths[i])
			}
			if format == FormatV2 {
				if got := Checksum(*bp); got != crcs[i] {
					encodeBufPool.Put(bp)
					return written, fmt.Errorf("wppfile: function %d block re-encoded with checksum %08x, index says %08x",
						order[i], got, crcs[i])
				}
				blocksCRC = checksumUpdate(blocksCRC, *bp)
			}
			n, err := w.Write(*bp)
			written += int64(n)
			encodeBufPool.Put(bp)
			if err != nil {
				return written, err
			}
		}
	}
	if format == FormatV1 {
		return written, nil
	}

	blocksSec.CRC = blocksCRC
	tail := appendDirectory(nil, []section{meta, dcgSec, blocksSec})
	n, err = w.Write(tail)
	written += int64(n)
	return written, err
}

// hotOrder returns the called functions hottest-first (call count
// descending, id ascending) — the on-disk block order.
func hotOrder(t *core.TWPP) []cfg.FuncID {
	order := make([]cfg.FuncID, 0, len(t.Funcs))
	for f := range t.Funcs {
		if t.Funcs[f].CallCount > 0 {
			order = append(order, cfg.FuncID(f))
		}
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := &t.Funcs[order[i]], &t.Funcs[order[j]]
		if a.CallCount != b.CallCount {
			return a.CallCount > b.CallCount
		}
		return order[i] < order[j]
	})
	return order
}

// runJobs executes fn(0..n-1) over at most workers goroutines,
// sequentially when workers or n is 1.
func runJobs(n, workers int, fn func(i int)) {
	if workers == 1 || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	if workers > n {
		workers = n
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}

// HotOrder is the exported form of hotOrder: the called functions
// hottest-first (call count descending, id ascending), the canonical
// on-disk block order. The segment writer and merger use it so every
// sealed segment ranks its own blocks exactly as a single-file encode
// would.
func HotOrder(t *core.TWPP) []cfg.FuncID { return hotOrder(t) }
