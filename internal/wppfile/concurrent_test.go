package wppfile

import (
	"math/rand"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"twpp/internal/cfg"
	"twpp/internal/core"
)

// writeSample serializes a sample TWPP and returns its path plus the
// in-memory form for comparison.
func writeSample(t *testing.T, calls int, seed int64) (string, *core.TWPP) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	_, tw := buildTWPP(t, rng, calls)
	p := filepath.Join(t.TempDir(), "c.twpp")
	if err := WriteCompacted(p, tw); err != nil {
		t.Fatal(err)
	}
	return p, tw
}

// TestConcurrentExtraction hammers one CompactedFile from 16
// goroutines, with the decode cache off and on, verifying the
// concurrency contract (run under -race via `make race`). Every
// extraction must decode the same blocks a sequential reader sees.
func TestConcurrentExtraction(t *testing.T) {
	path, _ := writeSample(t, 40, 200)
	for _, cacheEntries := range []int{0, 2, 64} {
		cf, err := OpenCompactedOptions(path, OpenOptions{CacheEntries: cacheEntries})
		if err != nil {
			t.Fatal(err)
		}
		fns := cf.Functions()
		// Sequential reference extraction.
		want := make(map[cfg.FuncID]*core.FunctionTWPP)
		for _, fn := range fns {
			ft, err := cf.ExtractFunction(fn)
			if err != nil {
				t.Fatal(err)
			}
			want[fn] = ft
		}

		const goroutines = 16
		const iters = 50
		var wg sync.WaitGroup
		errs := make(chan error, goroutines)
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(g)))
				for i := 0; i < iters; i++ {
					fn := fns[rng.Intn(len(fns))]
					ft, err := cf.ExtractFunction(fn)
					if err != nil {
						errs <- err
						return
					}
					if ft.Fn != fn || len(ft.Traces) != len(want[fn].Traces) {
						t.Errorf("cache=%d: extracted %d traces for fn %d, want %d",
							cacheEntries, len(ft.Traces), fn, len(want[fn].Traces))
						return
					}
					// Mix in concurrent metadata reads.
					if _, _, _, err := cf.SectionSizes(); err != nil {
						errs <- err
						return
					}
					if i%10 == 0 {
						if _, err := cf.ReadDCG(); err != nil {
							errs <- err
							return
						}
					}
				}
			}(g)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatalf("cache=%d: %v", cacheEntries, err)
		}

		hits, misses := cf.CacheStats()
		if cacheEntries == 0 && (hits != 0 || misses != 0) {
			t.Errorf("cache disabled but stats = %d/%d", hits, misses)
		}
		if cacheEntries >= len(fns) && hits == 0 {
			t.Errorf("cache=%d: expected hits after %d extractions", cacheEntries, goroutines*iters)
		}
		if err := cf.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestDecodeCacheCounters asserts exact hit/miss accounting on a
// deterministic single-goroutine access pattern.
func TestDecodeCacheCounters(t *testing.T) {
	path, _ := writeSample(t, 20, 201)
	cf, err := OpenCompactedOptions(path, OpenOptions{CacheEntries: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	fns := cf.Functions()
	if len(fns) < 2 {
		t.Fatalf("want >= 2 functions, got %v", fns)
	}

	// First touch of each function misses; every repeat hits.
	for _, fn := range fns {
		if _, err := cf.ExtractFunction(fn); err != nil {
			t.Fatal(err)
		}
	}
	hits, misses := cf.CacheStats()
	if hits != 0 || misses != uint64(len(fns)) {
		t.Fatalf("after cold pass: hits=%d misses=%d, want 0/%d", hits, misses, len(fns))
	}
	const repeats = 3
	for r := 0; r < repeats; r++ {
		for _, fn := range fns {
			if _, err := cf.ExtractFunction(fn); err != nil {
				t.Fatal(err)
			}
		}
	}
	hits, misses = cf.CacheStats()
	if hits != uint64(repeats*len(fns)) || misses != uint64(len(fns)) {
		t.Fatalf("after warm passes: hits=%d misses=%d, want %d/%d",
			hits, misses, repeats*len(fns), len(fns))
	}

	// Cached extraction returns an identical block.
	cold, err := OpenCompacted(path)
	if err != nil {
		t.Fatal(err)
	}
	defer cold.Close()
	for _, fn := range fns {
		warmFt, err := cf.ExtractFunction(fn)
		if err != nil {
			t.Fatal(err)
		}
		coldFt, err := cold.ExtractFunction(fn)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(warmFt, coldFt) {
			t.Fatalf("cached block for fn %d differs from fresh decode", fn)
		}
	}
}

// TestDecodeCacheEviction exercises LRU eviction with a cache smaller
// than the function count: everything must still decode correctly and
// misses must exceed the cold-pass count.
func TestDecodeCacheEviction(t *testing.T) {
	path, _ := writeSample(t, 30, 202)
	cf, err := OpenCompactedOptions(path, OpenOptions{CacheEntries: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	fns := cf.Functions()
	for pass := 0; pass < 3; pass++ {
		for _, fn := range fns {
			ft, err := cf.ExtractFunction(fn)
			if err != nil {
				t.Fatal(err)
			}
			if ft.Fn != fn {
				t.Fatalf("got fn %d, want %d", ft.Fn, fn)
			}
		}
	}
	hits, misses := cf.CacheStats()
	if hits+misses != uint64(3*len(fns)) {
		t.Fatalf("hits+misses = %d, want %d", hits+misses, 3*len(fns))
	}
	// Repeated extraction of one function must hit even with a single
	// entry of capacity.
	before, _ := cf.CacheStats()
	if _, err := cf.ExtractFunction(fns[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := cf.ExtractFunction(fns[0]); err != nil {
		t.Fatal(err)
	}
	after, _ := cf.CacheStats()
	if after == before {
		t.Error("expected at least one hit on repeated extraction")
	}
}

// TestEncodeCompactedWorkersDeterministic verifies the pooled-buffer
// concurrent encoder is byte-identical to the sequential one.
func TestEncodeCompactedWorkersDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(203))
	_, tw := buildTWPP(t, rng, 50)
	want, err := EncodeCompacted(tw)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 8} {
		got, err := EncodeCompactedWorkers(tw, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: encoded bytes differ from sequential", workers)
		}
	}
}
