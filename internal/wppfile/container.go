// Container is the read surface shared by a single compacted file and
// a segmented container (internal/segment.Set): everything the serving
// layer, the CLIs, and the facade need to answer per-function queries
// without knowing how the bytes are laid out underneath.

package wppfile

import (
	"context"

	"twpp/internal/cfg"
	"twpp/internal/core"
	"twpp/internal/encoding"
	"twpp/internal/wpp"
)

// Container abstracts an opened TWPP container. Both *CompactedFile
// (one v2/v1 file) and segment.Set (a manifest-described directory of
// sealed v2 segments) implement it. Implementations are safe for
// concurrent use.
//
// ContentHash identifies the current content; for a segmented
// container it changes whenever a background merge swaps the manifest
// generation, so cached responses keyed on it invalidate correctly.
type Container interface {
	// Functions lists present function ids, hottest first.
	Functions() []cfg.FuncID
	// CallCount reports fn's recorded invocation count (0 if absent).
	CallCount(fn cfg.FuncID) int
	// BlockLength reports the encoded on-disk size of fn's block(s).
	BlockLength(fn cfg.FuncID) int
	// Names returns the function name table (indexed by FuncID).
	Names() []string
	// ExtractFunction decodes one function's unique TWPP traces.
	ExtractFunction(fn cfg.FuncID) (*core.FunctionTWPP, error)
	// ExtractFunctionCtx is ExtractFunction with cooperative
	// cancellation.
	ExtractFunctionCtx(ctx context.Context, fn cfg.FuncID) (*core.FunctionTWPP, error)
	// ReadDCG decodes the dynamic call graph.
	ReadDCG() (*wpp.CallNode, error)
	// ReadAll reconstructs the complete TWPP.
	ReadAll() (*core.TWPP, error)
	// SectionSizes reports the Table 3 byte breakdown (header/index,
	// DCG, function blocks), summed across segments when there are
	// several.
	SectionSizes() (header, dcg, blocks int64, err error)
	// FormatVersion reports the container format (FormatV1/FormatV2).
	FormatVersion() int
	// ContentHash returns a stable content identity, ok=false when the
	// container carries no checksums to derive one from (v1).
	ContentHash() (uint64, bool)
	// CacheStats reports cumulative decode-cache hits and misses.
	CacheStats() (hits, misses uint64)
	// CacheShardStats reports per-shard decode-cache counters (nil when
	// caching is disabled).
	CacheShardStats() []CacheShardStats
	// Close releases the container.
	Close() error
}

var _ Container = (*CompactedFile)(nil)

// Names returns the function name table, indexed by FuncID. The slice
// is the file's own (immutable after Open) — callers must not mutate
// it.
func (cf *CompactedFile) Names() []string { return cf.FuncNames }

// ContentHashBytes computes the ContentHash of an in-memory v2
// container image without opening it: the directory CRC sits in the
// fixed footer, so the hash is two reads. ok is false when the image
// is too short or does not end in the v2 directory magic (v1 images
// have no content hash).
func ContentHashBytes(data []byte) (uint64, bool) {
	if len(data) < V2FooterLen {
		return 0, false
	}
	tail := data[len(data)-V2FooterLen:]
	magic, err := encoding.Uint32(tail[8:])
	if err != nil || magic != MagicDirectory {
		return 0, false
	}
	dirCRC, err := encoding.Uint32(tail[4:8])
	if err != nil {
		return 0, false
	}
	return uint64(dirCRC)<<32 | uint64(uint32(len(data))), true
}
