// Package wppfile defines the two on-disk WPP formats compared in
// Zhang & Gupta (PLDI 2001, Table 4):
//
//   - the uncompacted WPP file: the linear control flow trace as a
//     varint symbol stream, from which extracting one function's path
//     traces requires scanning the entire file (column U);
//
//   - the compacted TWPP file: a header with a per-function index
//     (hottest function first), the LZW-compressed dynamic call graph,
//     and per-function blocks holding the unique TWPP traces and DBB
//     dictionaries — so extracting one function's traces is a single
//     index lookup plus one seek (column C).
package wppfile

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"twpp/internal/cfg"
	"twpp/internal/core"
	"twpp/internal/encoding"
	"twpp/internal/lzw"
	"twpp/internal/trace"
	"twpp/internal/wpp"
)

// File format magics and the current version.
const (
	MagicRaw       = 0x57505055 // "WPPU"
	MagicCompacted = 0x54575046 // "TWPF"
	Version        = 1
)

// ---------------------------------------------------------------------
// Uncompacted format.
// ---------------------------------------------------------------------

// EncodeRaw produces the uncompacted linear file image in memory.
func EncodeRaw(w *trace.RawWPP) []byte {
	buf := encoding.PutUint32(nil, MagicRaw)
	buf = encoding.PutUvarint(buf, Version)
	buf = encoding.PutUvarint(buf, uint64(len(w.FuncNames)))
	for _, n := range w.FuncNames {
		buf = encoding.PutString(buf, n)
	}
	for _, sym := range w.Linear() {
		buf = encoding.PutUvarint(buf, uint64(sym))
	}
	return buf
}

// WriteRaw serializes a raw WPP as the uncompacted linear format.
func WriteRaw(path string, w *trace.RawWPP) error {
	return os.WriteFile(path, EncodeRaw(w), 0o644)
}

// ReadRaw parses an uncompacted WPP file, streaming it through a
// bounded buffer rather than loading it whole.
func ReadRaw(path string) (*trace.RawWPP, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	rr, err := NewRawStreamReader(f, st.Size())
	if err != nil {
		return nil, err
	}
	b := trace.NewBuilder(rr.Names())
	if err := rr.Replay(b); err != nil {
		return nil, err
	}
	return b.Finish(), nil
}

// rawHeaderCursor is the cursor subset the raw header decoder needs;
// both encoding.Cursor and encoding.StreamCursor satisfy it.
type rawHeaderCursor interface {
	Uint32() (uint32, error)
	Uvarint() (uint64, error)
	String() (string, error)
	Len() int
	Pos() int
}

func readRawHeader(c rawHeaderCursor) ([]string, error) {
	magic, err := c.Uint32()
	if err != nil {
		return nil, err
	}
	if magic != MagicRaw {
		return nil, encoding.Errf(encoding.CodeBadMagic, 0, "wppfile: bad raw magic %#x", magic)
	}
	verAt := c.Pos()
	ver, err := c.Uvarint()
	if err != nil {
		return nil, err
	}
	if ver != Version {
		return nil, encoding.Errf(encoding.CodeBadVersion, int64(verAt), "wppfile: unsupported raw version %d", ver)
	}
	nfAt := c.Pos()
	nf, err := c.Uvarint()
	if err != nil {
		return nil, err
	}
	if nf > uint64(c.Len()) {
		return nil, encoding.Errf(encoding.CodeCorrupt, int64(nfAt), "wppfile: function count %d exceeds file size", nf)
	}
	// Grow incrementally with a capped initial capacity: a corrupt
	// count from a size-unknown stream then fails on a truncated read
	// instead of a giant allocation.
	capHint := int(nf)
	if capHint > 1<<12 {
		capHint = 1 << 12
	}
	names := make([]string, 0, capHint)
	for i := uint64(0); i < nf; i++ {
		s, err := c.String()
		if err != nil {
			return nil, err
		}
		names = append(names, s)
	}
	return names, nil
}

// scanSink is the trace.EventSink behind ScanRawForFunction: it keeps
// only the open-call stack and collects the traces of the one target
// function. Structural validation (balanced calls, blocks inside
// calls, ENTER ids within the declared table) is the Demux's job.
type scanSink struct {
	target cfg.FuncID
	stack  []scanFrame
	out    []wpp.PathTrace
}

type scanFrame struct {
	isTarget bool
	tr       wpp.PathTrace
}

func (s *scanSink) EnterCall(f cfg.FuncID) {
	s.stack = append(s.stack, scanFrame{isTarget: f == s.target})
}

func (s *scanSink) Block(id cfg.BlockID) {
	top := &s.stack[len(s.stack)-1]
	if top.isTarget {
		top.tr = append(top.tr, id)
	}
}

func (s *scanSink) ExitCall() {
	top := s.stack[len(s.stack)-1]
	s.stack = s.stack[:len(s.stack)-1]
	if top.isTarget {
		s.out = append(s.out, top.tr)
	}
}

// ScanRawForFunction extracts every path trace of function fn from an
// uncompacted WPP file. As in the paper, this must scan the whole
// file — it is the slow baseline of Table 4 — but the scan streams
// through a bounded buffer, holding only the open-call stack and the
// target function's traces. The stream is validated by trace.Demux,
// so malformed input fails with the same structured errors
// (*encoding.Error, *trace.StreamError) as every other decode surface.
func ScanRawForFunction(path string, fn cfg.FuncID) ([]wpp.PathTrace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	rr, err := NewRawStreamReader(f, st.Size())
	if err != nil {
		return nil, err
	}
	sink := &scanSink{target: fn}
	if err := rr.Replay(sink); err != nil {
		return nil, err
	}
	return sink.out, nil
}

// ---------------------------------------------------------------------
// Compacted TWPP format.
// ---------------------------------------------------------------------

// indexEntry describes one function's block in the file.
type indexEntry struct {
	Fn        cfg.FuncID
	CallCount int
	Offset    int // relative to the start of the blocks section
	Length    int
}

// WriteCompacted serializes a TWPP in the compacted indexed format.
func WriteCompacted(path string, t *core.TWPP) error {
	return WriteCompactedWorkers(path, t, 1)
}

// WriteCompactedWorkers is WriteCompacted with per-function block
// encoding fanned out over workers goroutines (<= 0 selects
// runtime.GOMAXPROCS(0)).
func WriteCompactedWorkers(path string, t *core.TWPP, workers int) error {
	data, err := EncodeCompactedWorkers(t, workers)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// EncodeCompacted produces the compacted file image in memory.
func EncodeCompacted(t *core.TWPP) ([]byte, error) {
	return EncodeCompactedWorkers(t, 1)
}

// encodeBufPool recycles per-function encode buffers across
// EncodeCompactedWorkers calls.
var encodeBufPool = sync.Pool{New: func() any { return new([]byte) }}

// EncodeCompactedWorkers is EncodeCompacted with the per-function
// blocks encoded concurrently into pooled buffers. The index and final
// image are assembled sequentially in hotness order, so the output is
// byte-identical to the sequential (workers == 1) path for any worker
// count.
func EncodeCompactedWorkers(t *core.TWPP, workers int) ([]byte, error) {
	// Per-function blocks, hottest function first (the paper stores
	// the most frequently called function's traces first).
	order := hotOrder(t)

	// Encode each function's block into its own pooled buffer,
	// concurrently when workers allow. Blocks only ever append to
	// their buffer, so the per-function bytes are independent of
	// scheduling.
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	parts := make([]*[]byte, len(order))
	runJobs(len(order), workers, func(i int) {
		bp := encodeBufPool.Get().(*[]byte)
		*bp = encodeFunctionBlock((*bp)[:0], &t.Funcs[order[i]])
		parts[i] = bp
	})

	// Assemble the blocks section and its index sequentially in
	// hotness order, returning buffers to the pool as they are
	// consumed.
	total := 0
	for _, bp := range parts {
		total += len(*bp)
	}
	blocks := make([]byte, 0, total)
	index := make([]indexEntry, 0, len(order))
	for i, f := range order {
		start := len(blocks)
		blocks = append(blocks, *parts[i]...)
		encodeBufPool.Put(parts[i])
		parts[i] = nil
		index = append(index, indexEntry{
			Fn:        f,
			CallCount: t.Funcs[f].CallCount,
			Offset:    start,
			Length:    len(blocks) - start,
		})
	}

	dcg := lzw.Compress(encodeDCG(t.Root))

	// Assemble: header, names, index, DCG, blocks.
	buf := appendCompactedHeader(nil, t, index, len(dcg))
	buf = append(buf, dcg...)
	buf = append(buf, blocks...)
	return buf, nil
}

// encodeFunctionBlock appends one function's dictionaries and TWPP
// traces.
func encodeFunctionBlock(buf []byte, ft *core.FunctionTWPP) []byte {
	buf = encoding.PutUvarint(buf, uint64(ft.CallCount))
	buf = encoding.PutUvarint(buf, uint64(len(ft.Dicts)))
	for _, d := range ft.Dicts {
		heads := make([]cfg.BlockID, 0, len(d))
		for h := range d {
			heads = append(heads, h)
		}
		sort.Slice(heads, func(i, j int) bool { return heads[i] < heads[j] })
		buf = encoding.PutUvarint(buf, uint64(len(heads)))
		for _, h := range heads {
			chain := d[h]
			buf = encoding.PutUvarint(buf, uint64(h))
			buf = encoding.PutUvarint(buf, uint64(len(chain)))
			for _, id := range chain {
				buf = encoding.PutUvarint(buf, uint64(id))
			}
		}
	}
	buf = encoding.PutUvarint(buf, uint64(len(ft.Traces)))
	for i, tr := range ft.Traces {
		buf = encoding.PutUvarint(buf, uint64(ft.DictOf[i]))
		buf = encoding.PutUvarint(buf, uint64(tr.Len))
		buf = encoding.PutUvarint(buf, uint64(len(tr.Blocks)))
		for _, bt := range tr.Blocks {
			buf = encoding.PutUvarint(buf, uint64(bt.Block))
			signed := bt.Times.EncodeSigned(nil)
			buf = encoding.PutUvarint(buf, uint64(len(signed)))
			for _, v := range signed {
				buf = encoding.PutVarint(buf, v)
			}
		}
	}
	return buf
}

// decodeFunctionBlock decodes one function's block. Offsets in the
// returned errors are relative to the block start. Every declared
// count is checked against both the remaining input (CodeCorrupt — a
// well-formed block cannot declare more items than it has bytes) and
// the configured resource limits (CodeLimit) before any allocation is
// sized by it.
func decodeFunctionBlock(data []byte, fn cfg.FuncID, lim limits) (*core.FunctionTWPP, error) {
	c := encoding.NewCursor(data)
	ft := &core.FunctionTWPP{Fn: fn}
	cc, err := c.Uvarint()
	if err != nil {
		return nil, err
	}
	ft.CallCount = int(cc)
	nd, err := c.Uvarint()
	if err != nil {
		return nil, err
	}
	if nd > uint64(c.Len()) {
		return nil, encoding.Errf(encoding.CodeCorrupt, int64(c.Pos()), "wppfile: dictionary count %d too large", nd)
	}
	ft.Dicts = make([]wpp.Dictionary, nd)
	for i := range ft.Dicts {
		nh, err := c.Uvarint()
		if err != nil {
			return nil, err
		}
		if nh > uint64(c.Len()) {
			return nil, encoding.Errf(encoding.CodeCorrupt, int64(c.Pos()), "wppfile: chain count %d too large", nh)
		}
		d := make(wpp.Dictionary, nh)
		for j := uint64(0); j < nh; j++ {
			h, err := c.Uvarint()
			if err != nil {
				return nil, err
			}
			cl, err := c.Uvarint()
			if err != nil {
				return nil, err
			}
			if cl > uint64(c.Len()) {
				return nil, encoding.Errf(encoding.CodeCorrupt, int64(c.Pos()), "wppfile: chain length %d too large", cl)
			}
			chain := make(wpp.PathTrace, cl)
			for k := range chain {
				v, err := c.Uvarint()
				if err != nil {
					return nil, err
				}
				chain[k] = cfg.BlockID(v)
			}
			d[cfg.BlockID(h)] = chain
		}
		ft.Dicts[i] = d
	}
	nt, err := c.Uvarint()
	if err != nil {
		return nil, err
	}
	if nt > uint64(c.Len()) {
		return nil, encoding.Errf(encoding.CodeCorrupt, int64(c.Pos()), "wppfile: trace count %d too large", nt)
	}
	if nt > lim.maxFuncTraces {
		return nil, encoding.Errf(encoding.CodeLimit, int64(c.Pos()),
			"wppfile: function %d declares %d traces, limit %d", fn, nt, lim.maxFuncTraces)
	}
	ft.Traces = make([]*core.Trace, nt)
	ft.DictOf = make([]int, nt)
	for i := range ft.Traces {
		di, err := c.Uvarint()
		if err != nil {
			return nil, err
		}
		if di >= nd {
			return nil, encoding.Errf(encoding.CodeCorrupt, int64(c.Pos()),
				"wppfile: dictionary index %d out of range (%d dictionaries)", di, nd)
		}
		ft.DictOf[i] = int(di)
		length, err := c.Uvarint()
		if err != nil {
			return nil, err
		}
		if length > lim.maxSeqValues {
			return nil, encoding.Errf(encoding.CodeLimit, int64(c.Pos()),
				"wppfile: trace length %d exceeds limit %d", length, lim.maxSeqValues)
		}
		nb, err := c.Uvarint()
		if err != nil {
			return nil, err
		}
		if nb > uint64(c.Len()) {
			return nil, encoding.Errf(encoding.CodeCorrupt, int64(c.Pos()), "wppfile: block count %d too large", nb)
		}
		tr := &core.Trace{Len: int(length), Blocks: make([]core.BlockTimes, nb)}
		for j := range tr.Blocks {
			bid, err := c.Uvarint()
			if err != nil {
				return nil, err
			}
			nv, err := c.Uvarint()
			if err != nil {
				return nil, err
			}
			if nv > uint64(c.Len()) {
				return nil, encoding.Errf(encoding.CodeCorrupt, int64(c.Pos()), "wppfile: value count %d too large", nv)
			}
			if nv > lim.maxSeqValues {
				return nil, encoding.Errf(encoding.CodeLimit, int64(c.Pos()),
					"wppfile: timestamp value count %d exceeds limit %d", nv, lim.maxSeqValues)
			}
			vals := make([]int64, nv)
			for k := range vals {
				if vals[k], err = c.Varint(); err != nil {
					return nil, err
				}
			}
			seq, err := core.DecodeSigned(vals)
			if err != nil {
				return nil, encoding.Wrap(encoding.CodeCorrupt, int64(c.Pos()), err, "")
			}
			tr.Blocks[j] = core.BlockTimes{Block: cfg.BlockID(bid), Times: seq}
		}
		ft.Traces[i] = tr
	}
	if !c.Done() {
		return nil, encoding.Errf(encoding.CodeCorrupt, int64(c.Pos()), "wppfile: %d trailing bytes in function block", c.Len())
	}
	return ft, nil
}

// encodeDCG serializes the compacted DCG (function, unique trace
// index, children with positions) in preorder.
func encodeDCG(root *wpp.CallNode) []byte {
	var buf []byte
	var rec func(n *wpp.CallNode)
	rec = func(n *wpp.CallNode) {
		buf = encoding.PutUvarint(buf, uint64(n.Fn))
		buf = encoding.PutUvarint(buf, uint64(n.TraceIdx))
		buf = encoding.PutUvarint(buf, uint64(len(n.Children)))
		prev := 0
		for i, c := range n.Children {
			buf = encoding.PutUvarint(buf, uint64(n.ChildPos[i]-prev))
			prev = n.ChildPos[i]
			rec(c)
		}
	}
	if root != nil {
		rec(root)
	}
	return buf
}

func decodeDCG(data []byte) (*wpp.CallNode, error) {
	c := encoding.NewCursor(data)
	var rec func(depth int) (*wpp.CallNode, error)
	rec = func(depth int) (*wpp.CallNode, error) {
		if depth > 1<<20 {
			return nil, encoding.Errf(encoding.CodeLimit, int64(c.Pos()), "wppfile: DCG nesting too deep")
		}
		fn, err := c.Uvarint()
		if err != nil {
			return nil, err
		}
		ti, err := c.Uvarint()
		if err != nil {
			return nil, err
		}
		nc, err := c.Uvarint()
		if err != nil {
			return nil, err
		}
		if nc > uint64(c.Len()) {
			return nil, encoding.Errf(encoding.CodeCorrupt, int64(c.Pos()), "wppfile: DCG child count %d too large", nc)
		}
		n := &wpp.CallNode{Fn: cfg.FuncID(fn), TraceIdx: int(ti)}
		prev := 0
		for i := uint64(0); i < nc; i++ {
			delta, err := c.Uvarint()
			if err != nil {
				return nil, err
			}
			pos := prev + int(delta)
			prev = pos
			child, err := rec(depth + 1)
			if err != nil {
				return nil, err
			}
			n.Children = append(n.Children, child)
			n.ChildPos = append(n.ChildPos, pos)
		}
		return n, nil
	}
	root, err := rec(0)
	if err != nil {
		return nil, err
	}
	if !c.Done() {
		return nil, encoding.Errf(encoding.CodeCorrupt, int64(c.Pos()), "wppfile: %d trailing bytes after DCG", c.Len())
	}
	return root, nil
}

// CompactedFile provides indexed access to a compacted TWPP file.
// Open reads only the header and index; per-function extraction reads
// directly at the function's block offset.
//
// Concurrency contract: a CompactedFile is safe for concurrent use by
// multiple goroutines. All file access after Open uses positioned
// ReadAt I/O on the shared descriptor (never Seek+Read, which would
// race on the file position), and the header, index, and order fields
// are immutable once Open returns. When the decode cache is enabled
// (OpenOptions.CacheEntries > 0), ExtractFunction may return the same
// *core.FunctionTWPP to several goroutines: callers must treat
// extracted blocks as read-only.
type CompactedFile struct {
	f         *os.File
	FuncNames []string
	index     map[cfg.FuncID]indexEntry
	// order preserves the on-disk (hotness) order of the index.
	order []cfg.FuncID
	// dcgOffset/dcgLen locate the compressed DCG; blocksOffset is the
	// base of the blocks section; size is the total file size.
	dcgOffset    int64
	dcgLen       int
	blocksOffset int64
	size         int64
	// lim holds the resolved decode resource limits from OpenOptions.
	lim limits
	// cache, when non-nil, holds recently decoded function blocks.
	cache *decodeCache
	// inst, when non-nil, receives decode-path events (OpenOptions.Instrument).
	inst *Instrument
	// closeOnce/closed make Close idempotent and let extraction fail
	// fast (wrapping os.ErrClosed) instead of racing the descriptor.
	closeOnce sync.Once
	closeErr  error
	closed    atomic.Bool
}

// NoLimit disables an OpenOptions resource limit (a zero value selects
// the default instead).
const NoLimit = -1

// Default decode resource limits. They are far above anything the
// encoder produces for real profiles, so hitting one means the input
// is hostile or corrupt, not large.
const (
	// DefaultMaxTraceBytes caps a single function block's encoded
	// length and the decompressed DCG size (1 GiB).
	DefaultMaxTraceBytes = int64(1) << 30
	// DefaultMaxFuncTraces caps the declared unique-trace count of one
	// function block.
	DefaultMaxFuncTraces = 1 << 21
	// DefaultMaxSeqValues caps a declared trace length and a declared
	// per-block timestamp value count, bounding the allocation a single
	// length field can demand before any of its values decode.
	DefaultMaxSeqValues = 1 << 24
)

// ErrNoFunction matches (errors.Is) extraction of a function absent
// from the file's index — a lookup miss, not a decode failure. Serving
// surfaces map it to "not found" rather than "bad input".
var ErrNoFunction = errors.New("function not present in WPP")

// Instrument carries optional decode-path callbacks, the hook the
// observability layer uses to count cache behaviour and decode volume
// without the file depending on any metrics package. Callbacks may be
// invoked concurrently and must be cheap and non-blocking; nil fields
// are skipped.
type Instrument struct {
	// OnDecode fires after a function block is read and decoded from
	// disk (with caching enabled, a cache miss), with the block's
	// encoded length in bytes.
	OnDecode func(fn cfg.FuncID, encodedBytes int)
	// OnCacheHit fires when an extraction is served from the decode
	// cache.
	OnCacheHit func(fn cfg.FuncID)
}

// OpenOptions configures OpenCompactedOptions.
type OpenOptions struct {
	// CacheEntries sizes the sharded LRU cache of decoded function
	// blocks. 0 disables caching (every extraction decodes afresh).
	CacheEntries int

	// Instrument, when non-nil, receives decode-path events (cache
	// hits, block decodes) for metrics.
	Instrument *Instrument

	// MaxTraceBytes caps a single function block's encoded length (as
	// declared by the index) and the decompressed size of the DCG.
	// 0 selects DefaultMaxTraceBytes; NoLimit disables the cap.
	MaxTraceBytes int64
	// MaxFuncTraces caps the unique-trace count a function block may
	// declare. 0 selects DefaultMaxFuncTraces; NoLimit disables.
	MaxFuncTraces int
	// MaxSeqValues caps declared trace lengths and per-block timestamp
	// value counts before anything is allocated for them. 0 selects
	// DefaultMaxSeqValues; NoLimit disables.
	MaxSeqValues int
}

// limits is an OpenOptions with defaults resolved: every field is a
// directly comparable bound.
type limits struct {
	maxTraceBytes int64
	maxFuncTraces uint64
	maxSeqValues  uint64
}

func (o OpenOptions) resolve() limits {
	l := limits{
		maxTraceBytes: o.MaxTraceBytes,
		maxFuncTraces: uint64(o.MaxFuncTraces),
		maxSeqValues:  uint64(o.MaxSeqValues),
	}
	switch {
	case o.MaxTraceBytes == 0:
		l.maxTraceBytes = DefaultMaxTraceBytes
	case o.MaxTraceBytes < 0:
		l.maxTraceBytes = math.MaxInt64
	}
	switch {
	case o.MaxFuncTraces == 0:
		l.maxFuncTraces = DefaultMaxFuncTraces
	case o.MaxFuncTraces < 0:
		l.maxFuncTraces = math.MaxUint64
	}
	switch {
	case o.MaxSeqValues == 0:
		l.maxSeqValues = DefaultMaxSeqValues
	case o.MaxSeqValues < 0:
		l.maxSeqValues = math.MaxUint64
	}
	return l
}

// OpenCompacted opens a compacted TWPP file with caching disabled,
// reading header and index only.
func OpenCompacted(path string) (*CompactedFile, error) {
	return OpenCompactedOptions(path, OpenOptions{})
}

// OpenCompactedOptions opens a compacted TWPP file, reading header and
// index only.
func OpenCompactedOptions(path string, opts OpenOptions) (*CompactedFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	// Read a generous prefix for the header; extend if the index is
	// larger.
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	headLen := int64(1 << 16)
	if headLen > st.Size() {
		headLen = st.Size()
	}
	head := make([]byte, headLen)
	if _, err := f.ReadAt(head, 0); err != nil {
		f.Close()
		return nil, err
	}

	cf := &CompactedFile{
		f:     f,
		index: make(map[cfg.FuncID]indexEntry),
		size:  st.Size(),
		lim:   opts.resolve(),
		cache: newDecodeCache(opts.CacheEntries),
		inst:  opts.Instrument,
	}
	parse := func(head []byte) error {
		c := encoding.NewCursor(head)
		magic, err := c.Uint32()
		if err != nil {
			return err
		}
		if magic != MagicCompacted {
			return encoding.Errf(encoding.CodeBadMagic, 0, "wppfile: bad compacted magic %#x", magic)
		}
		ver, err := c.Uvarint()
		if err != nil {
			return err
		}
		if ver != Version {
			return encoding.Errf(encoding.CodeBadVersion, 4, "wppfile: unsupported version %d", ver)
		}
		nf, err := c.Uvarint()
		if err != nil {
			return err
		}
		if nf > uint64(st.Size()) {
			return encoding.Errf(encoding.CodeCorrupt, int64(c.Pos()), "wppfile: function count %d too large", nf)
		}
		cf.FuncNames = make([]string, nf)
		for i := range cf.FuncNames {
			if cf.FuncNames[i], err = c.String(); err != nil {
				return err
			}
		}
		ni, err := c.Uvarint()
		if err != nil {
			return err
		}
		if ni > uint64(st.Size()) {
			return encoding.Errf(encoding.CodeCorrupt, int64(c.Pos()), "wppfile: index count %d too large", ni)
		}
		cf.order = cf.order[:0]
		for i := uint64(0); i < ni; i++ {
			var e indexEntry
			entryAt := int64(c.Pos())
			v, err := c.Uvarint()
			if err != nil {
				return err
			}
			// The encoder only indexes functions it named; an id beyond
			// the name table would later size allocations (ReadAll's Funcs
			// slice) from an attacker-controlled value.
			if v >= nf {
				return encoding.Errf(encoding.CodeCorrupt, entryAt,
					"wppfile: index entry function id %d beyond name table (%d names)", v, nf)
			}
			e.Fn = cfg.FuncID(v)
			if v, err = c.Uvarint(); err != nil {
				return err
			}
			e.CallCount = int(v)
			if v, err = c.Uvarint(); err != nil {
				return err
			}
			e.Offset = int(v)
			if v, err = c.Uvarint(); err != nil {
				return err
			}
			e.Length = int(v)
			if e.Offset < 0 || e.Length < 0 {
				return encoding.Errf(encoding.CodeCorrupt, entryAt,
					"wppfile: index entry for function %d has negative bounds", e.Fn)
			}
			if int64(e.Length) > cf.lim.maxTraceBytes {
				return encoding.Errf(encoding.CodeLimit, entryAt,
					"wppfile: function %d block is %d bytes, limit %d", e.Fn, e.Length, cf.lim.maxTraceBytes)
			}
			cf.index[e.Fn] = e
			cf.order = append(cf.order, e.Fn)
		}
		dlAt := int64(c.Pos())
		dl, err := c.Uvarint()
		if err != nil {
			return err
		}
		if dl > uint64(st.Size()) {
			return encoding.Errf(encoding.CodeCorrupt, dlAt, "wppfile: DCG length %d exceeds file size", dl)
		}
		cf.dcgLen = int(dl)
		cf.dcgOffset = int64(c.Pos())
		cf.blocksOffset = cf.dcgOffset + int64(dl)
		if cf.blocksOffset > cf.size {
			return encoding.Errf(encoding.CodeTruncated, dlAt,
				"wppfile: DCG section (%d bytes at offset %d) extends past end of file", dl, cf.dcgOffset)
		}
		// Every index entry must lie within the blocks section; checked
		// here, once, so extraction is a bounds-trusted positioned read.
		blocksSize := cf.size - cf.blocksOffset
		for _, fn := range cf.order {
			e := cf.index[fn]
			if int64(e.Offset)+int64(e.Length) > blocksSize {
				return encoding.Errf(encoding.CodeTruncated, -1,
					"wppfile: function %d block (%d bytes at offset %d) extends past end of file (%d-byte blocks section)",
					e.Fn, e.Length, e.Offset, blocksSize)
			}
		}
		return nil
	}
	if err := parse(head); err != nil {
		// Retry with the whole file if the header prefix was too
		// small; otherwise fail.
		if int64(len(head)) < st.Size() {
			full := make([]byte, st.Size())
			if _, err2 := f.ReadAt(full, 0); err2 != nil {
				f.Close()
				return nil, err2
			}
			if err2 := parse(full); err2 != nil {
				f.Close()
				return nil, err2
			}
		} else {
			f.Close()
			return nil, err
		}
	}
	return cf, nil
}

// Close releases the underlying file. It is idempotent and safe to
// call concurrently with extractions: the first call closes the
// descriptor and records the result, later calls return that same
// result, and extractions started after Close fail with an error
// wrapping os.ErrClosed.
func (cf *CompactedFile) Close() error {
	cf.closeOnce.Do(func() {
		cf.closed.Store(true)
		cf.closeErr = cf.f.Close()
	})
	return cf.closeErr
}

// Functions returns the function ids present, hottest first.
func (cf *CompactedFile) Functions() []cfg.FuncID {
	out := make([]cfg.FuncID, len(cf.order))
	copy(out, cf.order)
	return out
}

// CallCount reports the recorded invocation count of fn (0 if absent).
func (cf *CompactedFile) CallCount(fn cfg.FuncID) int {
	return cf.index[fn].CallCount
}

// ExtractFunction reads exactly one function's block: one positioned
// read plus one decode. This is the fast path of Table 4. With the
// decode cache enabled, repeated extractions of a hot function skip
// both the read and the decode; the returned block is then shared and
// must be treated as read-only.
func (cf *CompactedFile) ExtractFunction(fn cfg.FuncID) (*core.FunctionTWPP, error) {
	return cf.ExtractFunctionCtx(context.Background(), fn)
}

// ExtractFunctionCtx is ExtractFunction with cooperative cancellation:
// ctx is checked before the positioned read and before the decode, so
// an expired per-request deadline skips the remaining work with
// ctx.Err(). Cache hits are returned regardless of ctx — they cost
// nothing.
func (cf *CompactedFile) ExtractFunctionCtx(ctx context.Context, fn cfg.FuncID) (*core.FunctionTWPP, error) {
	if cf.closed.Load() {
		return nil, fmt.Errorf("wppfile: extract function %d: %w", fn, os.ErrClosed)
	}
	if cf.cache != nil {
		if ft, ok := cf.cache.get(fn); ok {
			if cf.inst != nil && cf.inst.OnCacheHit != nil {
				cf.inst.OnCacheHit(fn)
			}
			return ft, nil
		}
	}
	e, ok := cf.index[fn]
	if !ok {
		return nil, fmt.Errorf("wppfile: function %d: %w", fn, ErrNoFunction)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	buf := make([]byte, e.Length)
	if _, err := cf.f.ReadAt(buf, cf.blocksOffset+int64(e.Offset)); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, encoding.Wrap(encoding.CodeTruncated, cf.blocksOffset+int64(e.Offset), err,
				fmt.Sprintf("wppfile: short read of function %d block", fn))
		}
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ft, err := decodeFunctionBlock(buf, fn, cf.lim)
	if err != nil {
		return nil, err
	}
	if cf.inst != nil && cf.inst.OnDecode != nil {
		cf.inst.OnDecode(fn, e.Length)
	}
	if cf.cache != nil {
		cf.cache.put(fn, ft)
	}
	return ft, nil
}

// BlockLength reports the encoded on-disk length of fn's block (0 if
// the function is absent) — the per-function cost a serving layer can
// report without decoding.
func (cf *CompactedFile) BlockLength(fn cfg.FuncID) int {
	return cf.index[fn].Length
}

// CacheStats reports the decode cache's cumulative hit and miss
// counts (both zero when the cache is disabled).
func (cf *CompactedFile) CacheStats() (hits, misses uint64) {
	if cf.cache == nil {
		return 0, 0
	}
	return cf.cache.stats()
}

// ReadDCG decompresses and decodes the dynamic call graph. The
// decompressed size is capped by OpenOptions.MaxTraceBytes, so a
// hostile DCG section cannot balloon (LZW expands up to ~65000x).
func (cf *CompactedFile) ReadDCG() (*wpp.CallNode, error) {
	if cf.closed.Load() {
		return nil, fmt.Errorf("wppfile: read DCG: %w", os.ErrClosed)
	}
	buf := make([]byte, cf.dcgLen)
	if _, err := cf.f.ReadAt(buf, cf.dcgOffset); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, encoding.Wrap(encoding.CodeTruncated, cf.dcgOffset, err, "wppfile: short read of DCG section")
		}
		return nil, err
	}
	max := cf.lim.maxTraceBytes
	if max > math.MaxInt {
		max = math.MaxInt
	}
	raw, err := lzw.DecompressLimit(buf, int(max))
	if err != nil {
		return nil, encoding.Wrap(encoding.CodeCorrupt, cf.dcgOffset, err, "wppfile: DCG")
	}
	return decodeDCG(raw)
}

// ReadAll reconstructs the complete TWPP from the file.
func (cf *CompactedFile) ReadAll() (*core.TWPP, error) {
	root, err := cf.ReadDCG()
	if err != nil {
		return nil, err
	}
	maxFn := len(cf.FuncNames)
	for _, fn := range cf.order {
		if int(fn) >= maxFn {
			maxFn = int(fn) + 1
		}
	}
	t := &core.TWPP{
		FuncNames: cf.FuncNames,
		Root:      root,
		Funcs:     make([]core.FunctionTWPP, maxFn),
	}
	for f := range t.Funcs {
		t.Funcs[f].Fn = cfg.FuncID(f)
	}
	for _, fn := range cf.order {
		ft, err := cf.ExtractFunction(fn)
		if err != nil {
			return nil, err
		}
		t.Funcs[fn] = *ft
	}
	// Validate every DCG reference against the decoded blocks so
	// downstream walkers (reconstruction, slicing, queries) can index
	// Funcs and Traces without re-checking corrupt input.
	var walk func(n *wpp.CallNode) error
	walk = func(n *wpp.CallNode) error {
		if n == nil {
			return nil
		}
		if int(n.Fn) >= len(t.Funcs) || n.TraceIdx < 0 || n.TraceIdx >= len(t.Funcs[n.Fn].Traces) {
			return encoding.Errf(encoding.CodeCorrupt, cf.dcgOffset,
				"wppfile: DCG node references function %d trace %d, not in file", n.Fn, n.TraceIdx)
		}
		for _, ch := range n.Children {
			if err := walk(ch); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(root); err != nil {
		return nil, err
	}
	return t, nil
}

// SectionSizes reports the on-disk sizes of the compacted file's
// components (header+index, compressed DCG, function blocks) for the
// Table 3 breakdown. It reads only fields fixed at Open, so it is safe
// to call concurrently with extractions.
func (cf *CompactedFile) SectionSizes() (header, dcg, blocks int64, err error) {
	return cf.dcgOffset, int64(cf.dcgLen), cf.size - cf.blocksOffset, nil
}
