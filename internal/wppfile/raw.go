// The uncompacted WPP format: the linear control flow trace as a
// varint symbol stream behind a name-table header. Reading always
// streams through a bounded buffer (RawStreamReader in stream.go);
// the Kind variants select the storage backend the stream is read
// from.

package wppfile

import (
	"os"

	"twpp/internal/cfg"
	"twpp/internal/encoding"
	"twpp/internal/storage"
	"twpp/internal/trace"
	"twpp/internal/wpp"
)

// EncodeRaw produces the uncompacted linear file image in memory.
func EncodeRaw(w *trace.RawWPP) []byte {
	buf := encoding.PutUint32(nil, MagicRaw)
	buf = encoding.PutUvarint(buf, Version)
	buf = encoding.PutUvarint(buf, uint64(len(w.FuncNames)))
	for _, n := range w.FuncNames {
		buf = encoding.PutString(buf, n)
	}
	for _, sym := range w.Linear() {
		buf = encoding.PutUvarint(buf, uint64(sym))
	}
	return buf
}

// WriteRaw serializes a raw WPP as the uncompacted linear format.
func WriteRaw(path string, w *trace.RawWPP) error {
	return os.WriteFile(path, EncodeRaw(w), 0o644)
}

// ReadRaw parses an uncompacted WPP file, streaming it through a
// bounded buffer rather than loading it whole.
func ReadRaw(path string) (*trace.RawWPP, error) {
	return ReadRawKind(path, storage.KindFile)
}

// ReadRawKind is ReadRaw reading through the given storage backend.
func ReadRawKind(path string, kind storage.Kind) (*trace.RawWPP, error) {
	b, err := storage.Open(path, kind)
	if err != nil {
		return nil, err
	}
	defer b.Close()
	rr, err := NewRawStreamReader(storage.Reader(b), b.Size())
	if err != nil {
		return nil, err
	}
	bld := trace.NewBuilder(rr.Names())
	if err := rr.Replay(bld); err != nil {
		return nil, err
	}
	return bld.Finish(), nil
}

// rawHeaderCursor is the cursor subset the raw header decoder needs;
// both encoding.Cursor and encoding.StreamCursor satisfy it.
type rawHeaderCursor interface {
	Uint32() (uint32, error)
	Uvarint() (uint64, error)
	String() (string, error)
	Len() int
	Pos() int
}

func readRawHeader(c rawHeaderCursor) ([]string, error) {
	magic, err := c.Uint32()
	if err != nil {
		return nil, err
	}
	if magic != MagicRaw {
		return nil, encoding.Errf(encoding.CodeBadMagic, 0, "wppfile: bad raw magic %#x", magic)
	}
	verAt := c.Pos()
	ver, err := c.Uvarint()
	if err != nil {
		return nil, err
	}
	if ver != Version {
		return nil, encoding.Errf(encoding.CodeBadVersion, int64(verAt), "wppfile: unsupported raw version %d", ver)
	}
	nfAt := c.Pos()
	nf, err := c.Uvarint()
	if err != nil {
		return nil, err
	}
	if nf > uint64(c.Len()) {
		return nil, encoding.Errf(encoding.CodeCorrupt, int64(nfAt), "wppfile: function count %d exceeds file size", nf)
	}
	// Grow incrementally with a capped initial capacity: a corrupt
	// count from a size-unknown stream then fails on a truncated read
	// instead of a giant allocation.
	capHint := int(nf)
	if capHint > 1<<12 {
		capHint = 1 << 12
	}
	names := make([]string, 0, capHint)
	for i := uint64(0); i < nf; i++ {
		s, err := c.String()
		if err != nil {
			return nil, err
		}
		names = append(names, s)
	}
	return names, nil
}

// scanSink is the trace.EventSink behind ScanRawForFunction: it keeps
// only the open-call stack and collects the traces of the one target
// function. Structural validation (balanced calls, blocks inside
// calls, ENTER ids within the declared table) is the Demux's job.
type scanSink struct {
	target cfg.FuncID
	stack  []scanFrame
	out    []wpp.PathTrace
}

type scanFrame struct {
	isTarget bool
	tr       wpp.PathTrace
}

func (s *scanSink) EnterCall(f cfg.FuncID) {
	s.stack = append(s.stack, scanFrame{isTarget: f == s.target})
}

func (s *scanSink) Block(id cfg.BlockID) {
	top := &s.stack[len(s.stack)-1]
	if top.isTarget {
		top.tr = append(top.tr, id)
	}
}

func (s *scanSink) ExitCall() {
	top := s.stack[len(s.stack)-1]
	s.stack = s.stack[:len(s.stack)-1]
	if top.isTarget {
		s.out = append(s.out, top.tr)
	}
}

// ScanRawForFunction extracts every path trace of function fn from an
// uncompacted WPP file. As in the paper, this must scan the whole
// file — it is the slow baseline of Table 4 — but the scan streams
// through a bounded buffer, holding only the open-call stack and the
// target function's traces. The stream is validated by trace.Demux,
// so malformed input fails with the same structured errors
// (*encoding.Error, *trace.StreamError) as every other decode surface.
func ScanRawForFunction(path string, fn cfg.FuncID) ([]wpp.PathTrace, error) {
	return ScanRawForFunctionKind(path, fn, storage.KindFile)
}

// ScanRawForFunctionKind is ScanRawForFunction reading through the
// given storage backend.
func ScanRawForFunctionKind(path string, fn cfg.FuncID, kind storage.Kind) ([]wpp.PathTrace, error) {
	b, err := storage.Open(path, kind)
	if err != nil {
		return nil, err
	}
	defer b.Close()
	rr, err := NewRawStreamReader(storage.Reader(b), b.Size())
	if err != nil {
		return nil, err
	}
	sink := &scanSink{target: fn}
	if err := rr.Replay(sink); err != nil {
		return nil, err
	}
	return sink.out, nil
}
