// Container layout constants and the format v2 section machinery: the
// section/codec id spaces, CRC32-C checksumming, and the trailer
// section directory that makes a v2 file self-describing.
//
// # Format v1 (legacy, read-only support)
//
//	magic "TWPF" | version=1 | name table | index | dcgLen | DCG | blocks
//
// Everything is implicit: section boundaries are derived while parsing
// the header, and nothing is checksummed.
//
// # Format v2 (default write format)
//
//	magic "TWPF" | version=2 | META | DCG | BLOCKS | directory | footer
//
// The three sections are opaque byte ranges located by the trailer
// directory, so a reader seeks to the footer, loads the directory, and
// then reads only the sections it needs:
//
//	directory: nsec, then per section:
//	           id uvarint | codec uvarint | offset uvarint |
//	           length uvarint | crc32c fixed u32
//	footer:    dirLen fixed u32 | dirCRC fixed u32 | magic "TWPD"
//
// Offsets are absolute file offsets. Every section carries a CRC32-C
// of its stored bytes (compressed, for codec != raw), verified lazily
// the first time the section is read; the directory itself is covered
// by dirCRC. The META section additionally stores a CRC32-C per
// function block inside the index, so single-seek extraction verifies
// exactly the bytes it read without touching the rest of the BLOCKS
// section. Appending new sections (sharding maps, bloom filters,
// aggregate tables) is a directory entry, not a version bump: readers
// skip ids they do not know.

package wppfile

import (
	"hash/crc32"

	"twpp/internal/encoding"
)

// File format magics and versions.
const (
	MagicRaw       = 0x57505055 // "WPPU"
	MagicCompacted = 0x54575046 // "TWPF"
	// MagicDirectory terminates a v2 file ("TWPD"); its presence at
	// size-4 is how the reader distinguishes "v2 container with a
	// trailer" from "truncated garbage".
	MagicDirectory = 0x54575044

	// Version is the raw (uncompacted) format version.
	Version = 1

	// FormatV1 is the legacy compacted layout: implicit sections, no
	// checksums. Readable forever, no longer written by default.
	FormatV1 = 1
	// FormatV2 is the sectioned container with the trailer directory
	// and CRC32-C checksums.
	FormatV2 = 2
	// DefaultFormat is what writers emit when no format is forced.
	DefaultFormat = FormatV2
)

// Section ids. Unknown ids are skipped by readers, so the id space can
// grow without a version bump.
const (
	// SecMeta holds the name table and the per-function index
	// (hottest-first), including per-block CRCs.
	SecMeta = 1
	// SecDCG holds the dynamic call graph (codec-compressed).
	SecDCG = 2
	// SecBlocks holds the concatenated per-function blocks.
	SecBlocks = 3
)

// Codec ids for section payloads.
const (
	// CodecRaw stores the section bytes as-is.
	CodecRaw = 0
	// CodecLZW stores the section LZW-compressed (the DCG codec).
	CodecLZW = 1
)

// V2 fixed-layout geometry, shared with the corruption sweeps so they
// can classify a mutation offset as header, payload, or footer.
const (
	// V2HeaderLen is the byte length of the v2 prefix (magic + the
	// one-byte version varint); sections start here.
	V2HeaderLen = 5
	// V2FooterLen is the fixed footer: dirLen u32, dirCRC u32, magic.
	V2FooterLen = 12
)

// castagnoli is the CRC32-C table used for every checksum in the v2
// container (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum computes the CRC32-C of data.
func Checksum(data []byte) uint32 {
	return crc32.Checksum(data, castagnoli)
}

// checksumUpdate extends an accumulated CRC32-C with more bytes, the
// streaming-writer path of the BLOCKS section checksum.
func checksumUpdate(crc uint32, data []byte) uint32 {
	return crc32.Update(crc, castagnoli, data)
}

// section is one directory entry: a located, checksummed byte range.
type section struct {
	ID     uint64
	Codec  uint64
	Offset int64
	Length int64
	CRC    uint32
}

// appendDirectory appends the section directory and fixed footer. The
// caller passes the sections in file order.
func appendDirectory(buf []byte, secs []section) []byte {
	dirStart := len(buf)
	buf = encoding.PutUvarint(buf, uint64(len(secs)))
	for _, s := range secs {
		buf = encoding.PutUvarint(buf, s.ID)
		buf = encoding.PutUvarint(buf, s.Codec)
		buf = encoding.PutUvarint(buf, uint64(s.Offset))
		buf = encoding.PutUvarint(buf, uint64(s.Length))
		buf = encoding.PutUint32(buf, s.CRC)
	}
	dir := buf[dirStart:]
	buf = encoding.PutUint32(buf, uint32(len(dir)))
	buf = encoding.PutUint32(buf, Checksum(dir))
	return encoding.PutUint32(buf, MagicDirectory)
}

// parseDirectory decodes the directory bytes (footer excluded). base
// is the directory's absolute file offset, used in error offsets.
func parseDirectory(dir []byte, base, fileSize int64) ([]section, error) {
	c := encoding.NewCursor(dir)
	n, err := c.Uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(dir)) {
		return nil, encoding.Errf(encoding.CodeCorrupt, base+int64(c.Pos()),
			"wppfile: directory declares %d sections in %d bytes", n, len(dir))
	}
	secs := make([]section, 0, n)
	seen := make(map[uint64]bool, n)
	for i := uint64(0); i < n; i++ {
		entryAt := base + int64(c.Pos())
		var s section
		if s.ID, err = c.Uvarint(); err != nil {
			return nil, err
		}
		if s.Codec, err = c.Uvarint(); err != nil {
			return nil, err
		}
		off, err := c.Uvarint()
		if err != nil {
			return nil, err
		}
		length, err := c.Uvarint()
		if err != nil {
			return nil, err
		}
		if s.CRC, err = c.Uint32(); err != nil {
			return nil, err
		}
		s.Offset, s.Length = int64(off), int64(length)
		if s.Offset < V2HeaderLen || s.Length < 0 || s.Offset+s.Length > base {
			return nil, encoding.Errf(encoding.CodeCorrupt, entryAt,
				"wppfile: section %d (%d bytes at offset %d) outside payload range [%d, %d)",
				s.ID, s.Length, s.Offset, V2HeaderLen, base)
		}
		if seen[s.ID] {
			return nil, encoding.Errf(encoding.CodeCorrupt, entryAt, "wppfile: duplicate section id %d", s.ID)
		}
		seen[s.ID] = true
		secs = append(secs, s)
	}
	if !c.Done() {
		return nil, encoding.Errf(encoding.CodeCorrupt, base+int64(c.Pos()),
			"wppfile: %d trailing bytes in section directory", c.Len())
	}
	_ = fileSize
	return secs, nil
}

// findSection returns the entry with the given id, or nil.
func findSection(secs []section, id uint64) *section {
	for i := range secs {
		if secs[i].ID == id {
			return &secs[i]
		}
	}
	return nil
}

// checksumErr builds the structured mismatch error every checksum
// failure reports: code CodeChecksum, the section's absolute offset,
// and both sums.
func checksumErr(what string, offset int64, want, got uint32) error {
	return encoding.Errf(encoding.CodeChecksum, offset,
		"wppfile: %s checksum mismatch: stored %08x, computed %08x", what, want, got)
}
