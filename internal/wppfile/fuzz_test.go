package wppfile_test

import (
	"bytes"
	"testing"

	"twpp/internal/testkit"
	"twpp/internal/trace"
	"twpp/internal/wppfile"
)

// FuzzDecodeCompacted feeds arbitrary bytes through every compacted
// decode surface. Tight resource limits keep hostile length fields
// from slowing the fuzzer; the oracle fails on any panic or any
// unstructured error.
func FuzzDecodeCompacted(f *testing.F) {
	for _, w := range testkit.Corpus(42) {
		_, compacted, err := testkit.EncodeBoth(w)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(compacted)
		f.Add(testkit.Truncate(compacted, len(compacted)/2))
		f.Add(testkit.BitFlip(compacted, len(compacted)/3, 2))
	}
	dir := f.TempDir()
	opts := wppfile.OpenOptions{
		MaxTraceBytes: 1 << 20,
		MaxFuncTraces: 1 << 10,
		MaxSeqValues:  1 << 12,
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if err := testkit.CheckCompactedDecode(dir, data, opts); err != nil {
			t.Fatal(err)
		}
	})
}

// FuzzStreamRoundTrip feeds arbitrary bytes through both raw decode
// paths, asserting the batch/stream error-parity invariant, and checks
// that anything that decodes re-encodes to the identical image.
func FuzzStreamRoundTrip(f *testing.F) {
	for _, w := range testkit.Corpus(43) {
		raw, _, err := testkit.EncodeBoth(w)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(raw)
		f.Add(testkit.Truncate(raw, len(raw)-1))
		f.Add(testkit.BitFlip(raw, len(raw)/2, 0))
	}
	dir := f.TempDir()
	f.Fuzz(func(t *testing.T, data []byte) {
		if err := testkit.CheckRawDecode(dir, data); err != nil {
			t.Fatal(err)
		}
		rr, err := wppfile.NewRawStreamReader(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			return
		}
		b := trace.NewBuilder(rr.Names())
		if err := rr.Replay(b); err != nil {
			return
		}
		w := b.Finish()
		again := wppfile.EncodeRaw(w)
		back, err := wppfile.NewRawStreamReader(bytes.NewReader(again), int64(len(again)))
		if err != nil {
			t.Fatalf("re-encoded image rejected: %v", err)
		}
		b2 := trace.NewBuilder(back.Names())
		if err := back.Replay(b2); err != nil {
			t.Fatalf("re-encoded image replay failed: %v", err)
		}
		if !trace.Equal(w, b2.Finish()) {
			t.Fatal("stream round trip not identical")
		}
	})
}
