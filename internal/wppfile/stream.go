// Streaming I/O for the WPP formats: the raw-file reader that replays
// a file as trace events through a bounded buffer (never slurping the
// file), and the writer-based compacted encoder that emits the file
// without assembling it in memory. Together with wpp.StreamCompactor
// and core.StreamCompactor these close the bounded-memory ingestion
// pipeline: raw file -> events -> online compaction -> compacted file.
package wppfile

import (
	"context"
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"sync"

	"twpp/internal/cfg"
	"twpp/internal/core"
	"twpp/internal/encoding"
	"twpp/internal/lzw"
	"twpp/internal/sequitur"
	"twpp/internal/trace"
)

// RawStreamReader reads an uncompacted WPP file incrementally. The
// header (magic, version, function names) is consumed at construction;
// Replay then demultiplexes the symbol stream into any trace.EventSink
// one buffered read at a time, so memory stays constant no matter the
// trace length. Errors — including on truncated or corrupt input — are
// identical to ReadRaw's, which is itself built on this reader.
type RawStreamReader struct {
	c     *encoding.StreamCursor
	names []string
}

// NewRawStreamReader starts reading an uncompacted WPP stream from r.
// size is the total byte size of the stream, or < 0 when unknown (a
// known size gives corrupt length fields crisper errors; parsing is
// identical either way).
func NewRawStreamReader(r io.Reader, size int64) (*RawStreamReader, error) {
	c := encoding.NewStreamCursor(r, size)
	names, err := readRawHeader(c)
	if err != nil {
		return nil, err
	}
	return &RawStreamReader{c: c, names: names}, nil
}

// Names returns the function name table from the file header.
func (rr *RawStreamReader) Names() []string { return rr.names }

// Replay decodes the remaining symbol stream and feeds it into sink as
// validated trace events, consuming the reader.
func (rr *RawStreamReader) Replay(sink trace.EventSink) error {
	return rr.ReplayCtx(context.Background(), sink)
}

// ReplayCtx is Replay with cooperative cancellation, polled every few
// thousand symbols so a canceled context abandons an arbitrarily long
// stream promptly. The header declares every function, so the demux is
// armed with that bound (trace.Demux.NumFuncs): an ENTER beyond the
// name table is rejected as a structured *trace.StreamError before any
// sink sizes per-function state by an attacker-controlled id.
func (rr *RawStreamReader) ReplayCtx(ctx context.Context, sink trace.EventSink) error {
	d := &trace.Demux{Sink: sink, NumFuncs: len(rr.names)}
	const cancelStride = 1 << 13
	n := 0
	for !rr.c.Done() {
		if n%cancelStride == 0 && ctx.Err() != nil {
			return ctx.Err()
		}
		n++
		symAt := rr.c.Pos()
		sym, err := rr.c.Uvarint()
		if err != nil {
			return err
		}
		if sym > math.MaxUint32 {
			return encoding.Errf(encoding.CodeCorrupt, int64(symAt), "wppfile: symbol %d out of range", sym)
		}
		// A header with an empty name table declares no callable
		// functions at all; Demux treats NumFuncs == 0 as "no bound", so
		// keep the historical strictness here.
		if f, ok := sequitur.IsEnter(uint32(sym)); ok && len(rr.names) == 0 {
			return &trace.StreamError{Kind: trace.StreamUnknownFunc, Pos: n - 1, Sym: uint32(sym), Func: cfg.FuncID(f)}
		}
		if err := d.Feed(uint32(sym)); err != nil {
			return err
		}
	}
	return d.Close()
}

// ---------------------------------------------------------------------
// Writer-based compacted encode.
// ---------------------------------------------------------------------

// EncodeCompactedTo writes the compacted indexed format to w without
// materializing the file image: per-function blocks are encoded twice
// (once to size the index, once to emit) into pooled buffers bounded
// by the worker count, so peak memory is O(header + workers * largest
// block) rather than O(file). The bytes written are identical to
// EncodeCompactedWorkers at any worker count (workers <= 0 selects
// runtime.GOMAXPROCS(0)). It returns the total byte count written.
//
// The double encode is forced by the format: the index, which precedes
// the blocks, stores each block's offset and length.
func EncodeCompactedTo(w io.Writer, t *core.TWPP, workers int) (int64, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	order := hotOrder(t)

	// Pass 1: block lengths only, fanned out over the pool.
	lengths := make([]int, len(order))
	runJobs(len(order), workers, func(i int) {
		bp := encodeBufPool.Get().(*[]byte)
		*bp = encodeFunctionBlock((*bp)[:0], &t.Funcs[order[i]])
		lengths[i] = len(*bp)
		encodeBufPool.Put(bp)
	})
	index := make([]indexEntry, len(order))
	off := 0
	for i, f := range order {
		index[i] = indexEntry{Fn: f, CallCount: t.Funcs[f].CallCount, Offset: off, Length: lengths[i]}
		off += lengths[i]
	}

	dcg := lzw.Compress(encodeDCG(t.Root))
	head := appendCompactedHeader(nil, t, index, len(dcg))
	head = append(head, dcg...)
	var written int64
	n, err := w.Write(head)
	written += int64(n)
	if err != nil {
		return written, err
	}

	// Pass 2: re-encode and emit blocks in index order, a
	// workers-sized batch at a time — encode concurrently, write
	// sequentially.
	parts := make([]*[]byte, len(order))
	for start := 0; start < len(order); start += workers {
		end := start + workers
		if end > len(order) {
			end = len(order)
		}
		runJobs(end-start, workers, func(j int) {
			i := start + j
			bp := encodeBufPool.Get().(*[]byte)
			*bp = encodeFunctionBlock((*bp)[:0], &t.Funcs[order[i]])
			parts[i] = bp
		})
		for i := start; i < end; i++ {
			bp := parts[i]
			parts[i] = nil
			if len(*bp) != lengths[i] {
				encodeBufPool.Put(bp)
				return written, fmt.Errorf("wppfile: function %d block re-encoded to %d bytes, index says %d",
					order[i], len(*bp), lengths[i])
			}
			n, err := w.Write(*bp)
			written += int64(n)
			encodeBufPool.Put(bp)
			if err != nil {
				return written, err
			}
		}
	}
	return written, nil
}

// hotOrder returns the called functions hottest-first (call count
// descending, id ascending) — the on-disk block order.
func hotOrder(t *core.TWPP) []cfg.FuncID {
	order := make([]cfg.FuncID, 0, len(t.Funcs))
	for f := range t.Funcs {
		if t.Funcs[f].CallCount > 0 {
			order = append(order, cfg.FuncID(f))
		}
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := &t.Funcs[order[i]], &t.Funcs[order[j]]
		if a.CallCount != b.CallCount {
			return a.CallCount > b.CallCount
		}
		return order[i] < order[j]
	})
	return order
}

// appendCompactedHeader appends the header, name table, index, and DCG
// length prefix — everything that precedes the compressed DCG bytes.
func appendCompactedHeader(buf []byte, t *core.TWPP, index []indexEntry, dcgLen int) []byte {
	buf = encoding.PutUint32(buf, MagicCompacted)
	buf = encoding.PutUvarint(buf, Version)
	buf = encoding.PutUvarint(buf, uint64(len(t.FuncNames)))
	for _, n := range t.FuncNames {
		buf = encoding.PutString(buf, n)
	}
	buf = encoding.PutUvarint(buf, uint64(len(index)))
	for _, e := range index {
		buf = encoding.PutUvarint(buf, uint64(e.Fn))
		buf = encoding.PutUvarint(buf, uint64(e.CallCount))
		buf = encoding.PutUvarint(buf, uint64(e.Offset))
		buf = encoding.PutUvarint(buf, uint64(e.Length))
	}
	return encoding.PutUvarint(buf, uint64(dcgLen))
}

// runJobs executes fn(0..n-1) over at most workers goroutines,
// sequentially when workers or n is 1.
func runJobs(n, workers int, fn func(i int)) {
	if workers == 1 || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	if workers > n {
		workers = n
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}
