// The bounded-memory raw-file reader: replays an uncompacted WPP file
// as trace events through a bounded buffer, never slurping the file.
// Together with wpp.StreamCompactor, core.StreamCompactor, and the
// writer-based encoder in encode.go these close the bounded-memory
// ingestion pipeline: raw file -> events -> online compaction ->
// compacted file.

package wppfile

import (
	"context"
	"io"
	"math"

	"twpp/internal/cfg"
	"twpp/internal/encoding"
	"twpp/internal/sequitur"
	"twpp/internal/trace"
)

// RawStreamReader reads an uncompacted WPP file incrementally. The
// header (magic, version, function names) is consumed at construction;
// Replay then demultiplexes the symbol stream into any trace.EventSink
// one buffered read at a time, so memory stays constant no matter the
// trace length. Errors — including on truncated or corrupt input — are
// identical to ReadRaw's, which is itself built on this reader.
type RawStreamReader struct {
	c     *encoding.StreamCursor
	names []string
}

// NewRawStreamReader starts reading an uncompacted WPP stream from r.
// size is the total byte size of the stream, or < 0 when unknown (a
// known size gives corrupt length fields crisper errors; parsing is
// identical either way).
func NewRawStreamReader(r io.Reader, size int64) (*RawStreamReader, error) {
	c := encoding.NewStreamCursor(r, size)
	names, err := readRawHeader(c)
	if err != nil {
		return nil, err
	}
	return &RawStreamReader{c: c, names: names}, nil
}

// Names returns the function name table from the file header.
func (rr *RawStreamReader) Names() []string { return rr.names }

// Replay decodes the remaining symbol stream and feeds it into sink as
// validated trace events, consuming the reader.
func (rr *RawStreamReader) Replay(sink trace.EventSink) error {
	return rr.ReplayCtx(context.Background(), sink)
}

// ReplayCtx is Replay with cooperative cancellation, polled every few
// thousand symbols so a canceled context abandons an arbitrarily long
// stream promptly. The header declares every function, so the demux is
// armed with that bound (trace.Demux.NumFuncs): an ENTER beyond the
// name table is rejected as a structured *trace.StreamError before any
// sink sizes per-function state by an attacker-controlled id.
func (rr *RawStreamReader) ReplayCtx(ctx context.Context, sink trace.EventSink) error {
	d := &trace.Demux{Sink: sink, NumFuncs: len(rr.names)}
	// Symbols are batch-decoded from the cursor's buffered window (at
	// most replayBatch per outer iteration, so cancellation stays
	// prompt). A symbol whose varint straddles the buffer edge — or is
	// malformed — falls through to the per-value path, which reports
	// errors with exact parity to the historical symbol-at-a-time loop.
	const replayBatch = 512
	var vals [replayBatch]uint64
	var offs [replayBatch]int
	n := 0
	for !rr.c.Done() {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		k := rr.c.UvarintBatchBuffered(vals[:], offs[:])
		if k == 0 {
			symAt := rr.c.Pos()
			sym, err := rr.c.Uvarint()
			if err != nil {
				return err
			}
			n++
			if err := rr.feedSym(d, sym, symAt, n); err != nil {
				return err
			}
			continue
		}
		for i := 0; i < k; i++ {
			n++
			if err := rr.feedSym(d, vals[i], offs[i], n); err != nil {
				return err
			}
		}
	}
	return d.Close()
}

// feedSym validates one decoded symbol and feeds it to the demux.
// symAt is the stream offset of the symbol's first byte; n is the
// 1-based symbol count so far.
func (rr *RawStreamReader) feedSym(d *trace.Demux, sym uint64, symAt, n int) error {
	if sym > math.MaxUint32 {
		return encoding.Errf(encoding.CodeCorrupt, int64(symAt), "wppfile: symbol %d out of range", sym)
	}
	// A header with an empty name table declares no callable
	// functions at all; Demux treats NumFuncs == 0 as "no bound", so
	// keep the historical strictness here.
	if f, ok := sequitur.IsEnter(uint32(sym)); ok && len(rr.names) == 0 {
		return &trace.StreamError{Kind: trace.StreamUnknownFunc, Pos: n - 1, Sym: uint32(sym), Func: cfg.FuncID(f)}
	}
	return d.Feed(uint32(sym))
}
