package wppfile

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"twpp/internal/core"
	"twpp/internal/wpp"
)

// TestCompactedTruncationRobustness verifies that no prefix of a valid
// compacted file can panic the reader: every truncation must either
// fail to open, fail to read, or decode cleanly (a prefix that happens
// to end exactly at a section boundary can be partially readable).
func TestCompactedTruncationRobustness(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	_, tw := buildTWPP(t, rng, 30)
	full, err := EncodeCompacted(tw)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	for n := 0; n < len(full); n += 1 + n/16 {
		p := filepath.Join(dir, "trunc")
		if err := os.WriteFile(p, full[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic at truncation %d: %v", n, r)
				}
			}()
			cf, err := OpenCompacted(p)
			if err != nil {
				return
			}
			defer cf.Close()
			for _, fn := range cf.Functions() {
				_, _ = cf.ExtractFunction(fn)
			}
			_, _ = cf.ReadDCG()
		}()
	}
}

// TestCompactedBitflipRobustness flips bytes throughout a valid file
// and requires error-or-success without panics.
func TestCompactedBitflipRobustness(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	_, tw := buildTWPP(t, rng, 20)
	full, err := EncodeCompacted(tw)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	for trial := 0; trial < 200; trial++ {
		mut := append([]byte(nil), full...)
		for k := 0; k < 1+rng.Intn(4); k++ {
			mut[rng.Intn(len(mut))] ^= byte(1 + rng.Intn(255))
		}
		p := filepath.Join(dir, "mut")
		if err := os.WriteFile(p, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on mutated file (trial %d): %v", trial, r)
				}
			}()
			cf, err := OpenCompacted(p)
			if err != nil {
				return
			}
			defer cf.Close()
			for _, fn := range cf.Functions() {
				if ft, err := cf.ExtractFunction(fn); err == nil {
					// Decoded data may be wrong but must be safe to
					// walk.
					for i := range ft.Traces {
						_, _ = ft.Traces[i].ToPath()
					}
				}
			}
			_, _ = cf.ReadDCG()
		}()
	}
}

// TestRawTruncationRobustness does the same for the uncompacted
// format.
func TestRawTruncationRobustness(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	w := sampleWPP(rng, 20)
	dir := t.TempDir()
	p := filepath.Join(dir, "full")
	if err := WriteRaw(p, w); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(full); n += 1 + n/16 {
		tp := filepath.Join(dir, "trunc")
		if err := os.WriteFile(tp, full[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadRaw(tp); err == nil && n < len(full)-1 {
			// A shorter stream can still be well-formed only if it
			// ends exactly at a call boundary, which the builder's
			// stream shape makes impossible except at full length.
			t.Errorf("truncation to %d bytes read without error", n)
		}
		_, _ = ScanRawForFunction(tp, 0)
	}
}

// TestEncodeCompactedEmptyTWPP covers the degenerate single-call WPP.
func TestEncodeCompactedDegenerate(t *testing.T) {
	tw := &core.TWPP{
		FuncNames: []string{"main"},
		Root:      &wpp.CallNode{Fn: 0, TraceIdx: 0},
		Funcs: []core.FunctionTWPP{{
			Fn:        0,
			Traces:    []*core.Trace{core.FromPath(wpp.PathTrace{1})},
			Dicts:     []wpp.Dictionary{{}},
			DictOf:    []int{0},
			CallCount: 1,
		}},
	}
	p := filepath.Join(t.TempDir(), "tiny.twpp")
	if err := WriteCompacted(p, tw); err != nil {
		t.Fatal(err)
	}
	cf, err := OpenCompacted(p)
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	tw2, err := cf.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(tw2.Funcs) != 1 || tw2.Funcs[0].CallCount != 1 {
		t.Errorf("degenerate round trip: %+v", tw2.Funcs)
	}
}
