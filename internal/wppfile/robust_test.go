package wppfile_test

import (
	"os"
	"path/filepath"
	"testing"

	"twpp/internal/core"
	"twpp/internal/testkit"
	"twpp/internal/wpp"
	"twpp/internal/wppfile"
)

// The corruption sweeps drive every decode surface over systematically
// damaged images via the shared fault-injection kit: any panic or any
// unstructured (stringly-typed) error fails the test. The exhaustive
// every-offset sweep over all shapes lives in the root hardening test;
// these keep per-package coverage fast with strided sweeps.

func sweepImages(t *testing.T, shape testkit.Shape) (raw, compacted []byte) {
	t.Helper()
	w := testkit.Generate(testkit.Config{Seed: 100 + int64(shape), Shape: shape})
	raw, compacted, err := testkit.EncodeBoth(w)
	if err != nil {
		t.Fatal(err)
	}
	return raw, compacted
}

func TestCompactedCorruptionSweep(t *testing.T) {
	for _, shape := range []testkit.Shape{testkit.Regular, testkit.Irregular, testkit.DeepRecursion} {
		shape := shape
		t.Run(shape.String(), func(t *testing.T) {
			t.Parallel()
			_, compacted := sweepImages(t, shape)
			dir := t.TempDir()
			check := func(m testkit.Mutation) {
				if err := testkit.CheckCompactedDecode(dir, m.Data, wppfile.OpenOptions{}); err != nil {
					t.Fatalf("%s: %v", m.Desc, err)
				}
			}
			testkit.SweepTruncations(compacted, 1+len(compacted)/256, check)
			testkit.SweepBitFlips(compacted, 1+len(compacted)/128, check)
			testkit.SweepInflations(compacted, 1+len(compacted)/128, check)
			testkit.SweepSplices(compacted, 1+len(compacted)/128, check)
		})
	}
}

func TestRawCorruptionSweep(t *testing.T) {
	for _, shape := range []testkit.Shape{testkit.Regular, testkit.Irregular} {
		shape := shape
		t.Run(shape.String(), func(t *testing.T) {
			t.Parallel()
			raw, _ := sweepImages(t, shape)
			dir := t.TempDir()
			check := func(m testkit.Mutation) {
				if err := testkit.CheckRawDecode(dir, m.Data); err != nil {
					t.Fatalf("%s: %v", m.Desc, err)
				}
			}
			testkit.SweepTruncations(raw, 1+len(raw)/256, check)
			testkit.SweepBitFlips(raw, 1+len(raw)/128, check)
			testkit.SweepInflations(raw, 1+len(raw)/128, check)
			testkit.SweepSplices(raw, 1+len(raw)/128, check)
		})
	}
}

// Every strict prefix of a raw file must fail to read: the symbol
// stream always ends mid-call or mid-varint except at full length.
func TestRawTruncationAlwaysErrors(t *testing.T) {
	raw, _ := sweepImages(t, testkit.Periodic)
	dir := t.TempDir()
	p := filepath.Join(dir, "trunc.wpp")
	testkit.SweepTruncations(raw, 1, func(m testkit.Mutation) {
		if err := os.WriteFile(p, m.Data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := wppfile.ReadRaw(p); err == nil {
			t.Errorf("%s: read without error", m.Desc)
		}
	})
}

// TestEncodeCompactedDegenerate covers the degenerate single-call WPP.
func TestEncodeCompactedDegenerate(t *testing.T) {
	tw := &core.TWPP{
		FuncNames: []string{"main"},
		Root:      &wpp.CallNode{Fn: 0, TraceIdx: 0},
		Funcs: []core.FunctionTWPP{{
			Fn:        0,
			Traces:    []*core.Trace{core.FromPath(wpp.PathTrace{1})},
			Dicts:     []wpp.Dictionary{{}},
			DictOf:    []int{0},
			CallCount: 1,
		}},
	}
	p := filepath.Join(t.TempDir(), "tiny.twpp")
	if err := wppfile.WriteCompacted(p, tw); err != nil {
		t.Fatal(err)
	}
	cf, err := wppfile.OpenCompacted(p)
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	tw2, err := cf.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(tw2.Funcs) != 1 || tw2.Funcs[0].CallCount != 1 {
		t.Errorf("degenerate round trip: %+v", tw2.Funcs)
	}
}
