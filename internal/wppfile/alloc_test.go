package wppfile_test

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"twpp/internal/storage"
	"twpp/internal/testkit"
	"twpp/internal/wppfile"
)

// writeCorpusImage writes a compacted image of the given shape and
// returns its path.
func writeCorpusImage(t *testing.T, shape testkit.Shape) string {
	t.Helper()
	w := testkit.Generate(testkit.Config{Seed: 11, Shape: shape})
	_, compacted, err := testkit.EncodeBoth(w)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "a.twpp")
	if err := os.WriteFile(path, compacted, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestExtractIntoZeroAllocs is the regression guard for the tentpole
// zero-allocation property: once an ExtractBuffer has decoded a block
// shape, re-extracting through it performs zero heap allocations.
func TestExtractIntoZeroAllocs(t *testing.T) {
	for _, kind := range []storage.Kind{storage.KindFile, storage.KindMemory} {
		t.Run(kind.String(), func(t *testing.T) {
			path := writeCorpusImage(t, testkit.Irregular)
			cf, err := wppfile.OpenCompactedOptions(path, wppfile.OpenOptions{Backend: kind})
			if err != nil {
				t.Fatal(err)
			}
			defer cf.Close()
			buf := wppfile.GetExtractBuffer()
			defer wppfile.PutExtractBuffer(buf)
			fns := cf.Functions()
			if len(fns) == 0 {
				t.Fatal("corpus has no functions")
			}
			// Warm: grow the buffer's arenas and dictionary maps to the
			// corpus's largest shapes.
			for round := 0; round < 3; round++ {
				for _, fn := range fns {
					if _, err := cf.ExtractFunctionInto(fn, buf); err != nil {
						t.Fatal(err)
					}
				}
			}
			for _, fn := range fns {
				fn := fn
				n := testing.AllocsPerRun(100, func() {
					if _, err := cf.ExtractFunctionInto(fn, buf); err != nil {
						t.Fatal(err)
					}
				})
				if n != 0 {
					t.Errorf("fn %d (%s): %.1f allocs/op on warm pooled extract, want 0", fn, kind, n)
				}
			}
		})
	}
}

// TestExtractCacheHitZeroAllocs guards the other warm path: a decode
// cache hit in ExtractFunction must not allocate (the lock-free read
// path loads a snapshot and touches only shard-local state).
func TestExtractCacheHitZeroAllocs(t *testing.T) {
	path := writeCorpusImage(t, testkit.Periodic)
	cf, err := wppfile.OpenCompactedOptions(path, wppfile.OpenOptions{CacheEntries: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	fns := cf.Functions()
	for _, fn := range fns {
		if _, err := cf.ExtractFunction(fn); err != nil {
			t.Fatal(err)
		}
	}
	for _, fn := range fns {
		fn := fn
		n := testing.AllocsPerRun(100, func() {
			if _, err := cf.ExtractFunction(fn); err != nil {
				t.Fatal(err)
			}
		})
		if n != 0 {
			t.Errorf("fn %d: %.1f allocs/op on warm cached extract, want 0", fn, n)
		}
	}
	hits, _ := cf.CacheStats()
	if hits == 0 {
		t.Error("cache reported no hits; the test did not exercise the hit path")
	}
}

// TestExtractIntoConcurrent runs 16 goroutines, each with a private
// ExtractBuffer, against one shared CompactedFile (run under -race via
// make race) and checks every pooled result against the allocating
// path.
func TestExtractIntoConcurrent(t *testing.T) {
	path := writeCorpusImage(t, testkit.DeepRecursion)
	cf, err := wppfile.OpenCompactedOptions(path, wppfile.OpenOptions{CacheEntries: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	fns := cf.Functions()

	ref, err := wppfile.OpenCompactedOptions(path, wppfile.OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()

	const goroutines = 16
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := wppfile.GetExtractBuffer()
			defer wppfile.PutExtractBuffer(buf)
			for i := 0; i < 40; i++ {
				fn := fns[(g+i)%len(fns)]
				ift, err := cf.ExtractFunctionInto(fn, buf)
				if err != nil {
					errs <- err
					return
				}
				want, err := ref.ExtractFunction(fn)
				if err != nil {
					errs <- err
					return
				}
				if perr := testkit.EqualFunctionTWPP(want, ift); perr != nil {
					errs <- perr
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
