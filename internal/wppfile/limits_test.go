package wppfile_test

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"twpp/internal/encoding"
	"twpp/internal/testkit"
	"twpp/internal/wppfile"
)

// writeCompactedImage encodes the shape's WPP and writes it to a file.
func writeCompactedImage(t *testing.T, shape testkit.Shape) (string, []byte) {
	t.Helper()
	w := testkit.Generate(testkit.Config{Seed: 11, Shape: shape})
	_, compacted, err := testkit.EncodeBoth(w)
	if err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(t.TempDir(), "lim.twpp")
	if err := os.WriteFile(p, compacted, 0o644); err != nil {
		t.Fatal(err)
	}
	return p, compacted
}

func isLimit(err error) bool {
	var de *encoding.Error
	return errors.As(err, &de) && de.Code == encoding.CodeLimit
}

// A MaxTraceBytes below any real block must reject the file at Open
// with CodeLimit (the index declares block lengths up front).
func TestMaxTraceBytesRejectsAtOpen(t *testing.T) {
	p, _ := writeCompactedImage(t, testkit.Regular)
	_, err := wppfile.OpenCompactedOptions(p, wppfile.OpenOptions{MaxTraceBytes: 4})
	if !isLimit(err) {
		t.Fatalf("want CodeLimit, got %v", err)
	}
}

// A MaxFuncTraces below a function's unique-trace count must fail that
// extraction with CodeLimit — before the trace array is allocated.
func TestMaxFuncTracesRejectsExtraction(t *testing.T) {
	p, _ := writeCompactedImage(t, testkit.Irregular)
	cf, err := wppfile.OpenCompactedOptions(p, wppfile.OpenOptions{MaxFuncTraces: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	var sawLimit bool
	for _, fn := range cf.Functions() {
		_, err := cf.ExtractFunction(fn)
		if err != nil {
			if !isLimit(err) {
				t.Fatalf("f%d: want CodeLimit, got %v", fn, err)
			}
			sawLimit = true
		}
	}
	if !sawLimit {
		t.Fatal("no function tripped MaxFuncTraces=1")
	}
}

// A MaxSeqValues of 1 must reject any trace longer than one block with
// CodeLimit.
func TestMaxSeqValuesRejectsExtraction(t *testing.T) {
	p, _ := writeCompactedImage(t, testkit.MaxChain)
	cf, err := wppfile.OpenCompactedOptions(p, wppfile.OpenOptions{MaxSeqValues: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	var sawLimit bool
	for _, fn := range cf.Functions() {
		if _, err := cf.ExtractFunction(fn); err != nil {
			if !isLimit(err) {
				t.Fatalf("f%d: want CodeLimit, got %v", fn, err)
			}
			sawLimit = true
		}
	}
	if !sawLimit {
		t.Fatal("no function tripped MaxSeqValues=1")
	}
}

// NoLimit must disable every cap: the same file opens and reads fully.
func TestNoLimitDisablesCaps(t *testing.T) {
	p, _ := writeCompactedImage(t, testkit.Irregular)
	cf, err := wppfile.OpenCompactedOptions(p, wppfile.OpenOptions{
		MaxTraceBytes: wppfile.NoLimit,
		MaxFuncTraces: wppfile.NoLimit,
		MaxSeqValues:  wppfile.NoLimit,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	if _, err := cf.ReadAll(); err != nil {
		t.Fatalf("ReadAll under NoLimit: %v", err)
	}
}

// An inflated declared timestamp-set length must yield CodeLimit under
// default limits, never an allocation attempt: this is the
// length-field-inflation attack the limits exist for.
func TestInflatedLengthHitsLimitNotAllocator(t *testing.T) {
	p, compacted := writeCompactedImage(t, testkit.Periodic)
	dir := filepath.Dir(p)
	var hits int
	testkit.SweepInflations(compacted, 1, func(m testkit.Mutation) {
		if err := testkit.CheckCompactedDecode(dir, m.Data, wppfile.OpenOptions{}); err != nil {
			t.Fatalf("%s: %v", m.Desc, err)
		}
		hits++
	})
	if hits == 0 {
		t.Fatal("inflation sweep visited nothing")
	}
}

// Extraction after Close must fail deterministically with os.ErrClosed
// rather than racing the descriptor.
func TestExtractAfterClose(t *testing.T) {
	p, _ := writeCompactedImage(t, testkit.Regular)
	cf, err := wppfile.OpenCompacted(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := cf.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cf.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	fns := cf.Functions()
	if len(fns) == 0 {
		t.Fatal("no functions")
	}
	if _, err := cf.ExtractFunction(fns[0]); !errors.Is(err, os.ErrClosed) {
		t.Fatalf("want os.ErrClosed, got %v", err)
	}
	if _, err := cf.ReadDCG(); !errors.Is(err, os.ErrClosed) {
		t.Fatalf("ReadDCG: want os.ErrClosed, got %v", err)
	}
}
