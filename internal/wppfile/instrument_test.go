package wppfile

import (
	"context"
	"errors"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"

	"twpp/internal/cfg"
)

// The Instrument hooks are the observability layer's view of the
// decode path: every cache miss fires OnDecode with the block's
// on-disk length, every hit fires OnCacheHit, and the callback totals
// must agree with CacheStats.
func TestInstrumentHooks(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	_, tw := buildTWPP(t, rng, 20)
	path := filepath.Join(t.TempDir(), "trace.twpp")
	if err := WriteCompacted(path, tw); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	decodes, hits, bytes := 0, 0, 0
	cf, err := OpenCompactedOptions(path, OpenOptions{
		CacheEntries: 16,
		Instrument: &Instrument{
			OnDecode: func(fn cfg.FuncID, n int) {
				mu.Lock()
				decodes++
				bytes += n
				mu.Unlock()
			},
			OnCacheHit: func(fn cfg.FuncID) {
				mu.Lock()
				hits++
				mu.Unlock()
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()

	fns := cf.Functions()
	for pass := 0; pass < 3; pass++ {
		for _, fn := range fns {
			if _, err := cf.ExtractFunction(fn); err != nil {
				t.Fatal(err)
			}
		}
	}

	wantBytes := 0
	for _, fn := range fns {
		wantBytes += cf.BlockLength(fn)
	}
	if decodes != len(fns) {
		t.Errorf("OnDecode fired %d times, want %d (one per cold extraction)", decodes, len(fns))
	}
	if hits != 2*len(fns) {
		t.Errorf("OnCacheHit fired %d times, want %d", hits, 2*len(fns))
	}
	if bytes != wantBytes {
		t.Errorf("OnDecode reported %d bytes, want %d (sum of block lengths)", bytes, wantBytes)
	}
	ch, cm := cf.CacheStats()
	if int(ch) != hits || int(cm) != decodes {
		t.Errorf("CacheStats (%d, %d) disagrees with hooks (%d, %d)", ch, cm, hits, decodes)
	}
}

// A canceled per-request context must abort extraction before the read
// and decode — but cache hits still succeed, since they cost nothing.
func TestExtractFunctionCtxCanceled(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	_, tw := buildTWPP(t, rng, 10)
	path := filepath.Join(t.TempDir(), "trace.twpp")
	if err := WriteCompacted(path, tw); err != nil {
		t.Fatal(err)
	}
	cf, err := OpenCompactedOptions(path, OpenOptions{CacheEntries: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	fn := cf.Functions()[0]
	if _, err := cf.ExtractFunctionCtx(ctx, fn); !errors.Is(err, context.Canceled) {
		t.Fatalf("cold extraction under canceled ctx: err = %v, want context.Canceled", err)
	}
	if _, err := cf.ExtractFunctionCtx(context.Background(), fn); err != nil {
		t.Fatal(err)
	}
	if _, err := cf.ExtractFunctionCtx(ctx, fn); err != nil {
		t.Errorf("cached extraction under canceled ctx: err = %v, want cache hit", err)
	}
	// Absent functions classify as a lookup miss regardless of ctx.
	if _, err := cf.ExtractFunctionCtx(context.Background(), 99); !errors.Is(err, ErrNoFunction) {
		t.Errorf("absent function: err = %v, want ErrNoFunction", err)
	}
}
