package wppfile

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"twpp/internal/core"
	"twpp/internal/trace"
)

// TestEncodeCompactedToMatchesBatch pins the streaming encoder's bytes
// to EncodeCompactedWorkers at several worker counts.
func TestEncodeCompactedToMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	_, tw := buildTWPP(t, rng, 60)
	want, err := EncodeCompacted(tw)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8} {
		var buf bytes.Buffer
		n, err := EncodeCompactedTo(&buf, tw, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if n != int64(buf.Len()) {
			t.Errorf("workers=%d: reported %d bytes, wrote %d", workers, n, buf.Len())
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Errorf("workers=%d: streamed encode differs from batch", workers)
		}
	}
}

// TestRawStreamReaderReplay checks the incremental reader reproduces
// the WPP via a Builder sink, from both a sized and an unsized stream.
func TestRawStreamReaderReplay(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	w := sampleWPP(rng, 40)
	raw := EncodeRaw(w)
	for _, size := range []int64{int64(len(raw)), -1} {
		rr, err := NewRawStreamReader(bytes.NewReader(raw), size)
		if err != nil {
			t.Fatalf("size=%d: %v", size, err)
		}
		if !reflect.DeepEqual(rr.Names(), w.FuncNames) {
			t.Fatalf("size=%d: names = %v", size, rr.Names())
		}
		b := trace.NewBuilder(rr.Names())
		if err := rr.Replay(b); err != nil {
			t.Fatalf("size=%d: %v", size, err)
		}
		if got := b.Finish(); !trace.Equal(w, got) {
			t.Errorf("size=%d: replayed WPP differs", size)
		}
	}
}

// TestStreamPipelineEndToEnd drives raw bytes through the full
// streaming path (reader -> online compactor -> streaming encoder) and
// checks the result is byte-identical to the batch pipeline.
func TestStreamPipelineEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	w, tw := buildTWPP(t, rng, 60)
	want, err := EncodeCompacted(tw)
	if err != nil {
		t.Fatal(err)
	}

	raw := EncodeRaw(w)
	rr, err := NewRawStreamReader(bytes.NewReader(raw), int64(len(raw)))
	if err != nil {
		t.Fatal(err)
	}
	s := core.NewStreamCompactor(rr.Names())
	if err := rr.Replay(s); err != nil {
		t.Fatal(err)
	}
	got, _, err := s.Finish()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := EncodeCompactedTo(&buf, got, 4); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Error("streaming pipeline output differs from batch pipeline")
	}
}
