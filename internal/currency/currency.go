// Package currency implements dynamic currency determination for
// debugging optimized code (§4.3.2 of Zhang & Gupta, PLDI 2001,
// Figure 12; after Dhamdhere & Sankaranarayanan, TOPLAS 1998).
//
// The user debugs in terms of the unoptimized program, but the
// executing binary is an optimized version in which an assignment to a
// variable has been moved (e.g. sunk by partial dead code
// elimination). When the user asks for the variable's value at a
// breakpoint, the value is *current* only if the definition that
// actually reached the breakpoint in the optimized execution is the
// same one that would have reached it in the unoptimized execution.
// The timestamped dynamic CFG answers this exactly: the path history
// it encodes decides, per breakpoint instance, which definitions
// executed and in what order.
package currency

import (
	"fmt"

	"twpp/internal/cfg"
	"twpp/internal/core"
	"twpp/internal/dataflow"
)

// Motion describes one code-motion transformation applied by the
// optimizer: the assignment to Var originally in block From now
// executes in block To of the optimized program. Other definitions of
// Var (blocks in OtherDefs) are unchanged by the optimization.
type Motion struct {
	Var       string
	From, To  cfg.BlockID
	OtherDefs []cfg.BlockID
}

// Verdict is the currency determination for one breakpoint instance.
type Verdict struct {
	// Current is true when the optimized value equals the value the
	// unoptimized program would hold.
	Current bool
	// Reason explains the determination.
	Reason string
	// UnoptDefTime is when the reaching definition of the unoptimized
	// program executed (0 = never).
	UnoptDefTime core.Timestamp
	// OptDefTime is when the optimized program's reaching definition
	// executed (0 = never).
	OptDefTime core.Timestamp
}

// At determines whether Var is current at the breakpoint instance
// (block, t) of the optimized execution recorded in tg.
//
// The executed trace is the optimized one; block From still exists in
// the optimized program (minus the moved assignment), so its
// executions mark where the unoptimized program *would have* defined
// Var.
func At(tg *dataflow.TGraph, m Motion, breakpoint cfg.BlockID, t core.Timestamp) (*Verdict, error) {
	node := tg.Node(breakpoint)
	if node == nil {
		return nil, fmt.Errorf("currency: breakpoint block %d never executed", breakpoint)
	}
	if !node.Times.Contains(t) {
		return nil, fmt.Errorf("currency: breakpoint %d did not execute at time %d", breakpoint, t)
	}

	other := make(map[cfg.BlockID]bool, len(m.OtherDefs))
	for _, d := range m.OtherDefs {
		other[d] = true
	}

	lastBefore := func(b cfg.BlockID) core.Timestamp {
		n := tg.Node(b)
		if n == nil {
			return 0
		}
		var best core.Timestamp
		for _, e := range n.Times {
			for ts := e.Lo; ts <= e.Hi; ts += e.Step {
				if ts < t && ts > best {
					best = ts
				}
			}
		}
		return best
	}

	// Most recent unoptimized definition point: the moved assignment's
	// original home or an untouched definition.
	tUnopt, bUnopt := lastBefore(m.From), m.From
	// Most recent optimized definition point: the sunk location or an
	// untouched definition.
	tOpt, bOpt := lastBefore(m.To), m.To
	for d := range other {
		if ts := lastBefore(d); ts > tUnopt {
			tUnopt, bUnopt = ts, d
		}
		if ts := lastBefore(d); ts > tOpt {
			tOpt, bOpt = ts, d
		}
	}
	if tUnopt == 0 && tOpt == 0 {
		return &Verdict{Current: true, Reason: fmt.Sprintf("%s never assigned before the breakpoint in either version", m.Var)}, nil
	}

	v := &Verdict{UnoptDefTime: tUnopt, OptDefTime: tOpt}
	switch {
	case tUnopt == 0:
		v.Current = false
		v.Reason = fmt.Sprintf("optimized code assigned %s at B%d (t=%d) but the unoptimized program would not have", m.Var, bOpt, tOpt)
	case tUnopt > 0 && other[bUnopt]:
		// An untouched definition is the unoptimized reaching def.
		if tOpt == tUnopt {
			v.Current = true
			v.Reason = fmt.Sprintf("both versions take their value of %s from B%d (t=%d)", m.Var, bUnopt, tUnopt)
		} else {
			v.Current = false
			v.Reason = fmt.Sprintf("optimized code overwrote %s at B%d (t=%d) after the shared definition at t=%d", m.Var, bOpt, tOpt, tUnopt)
		}
	default:
		// The moved assignment (at From, t=tUnopt) is the unoptimized
		// reaching def. It is current only if the optimized program
		// executed the sunk copy afterwards.
		if tOpt > tUnopt && bOpt == m.To {
			v.Current = true
			v.Reason = fmt.Sprintf("%s is current: the assignment moved from B%d executed at B%d (t=%d)", m.Var, m.From, m.To, tOpt)
		} else {
			v.Current = false
			v.Reason = fmt.Sprintf("%s is non-current: the unoptimized program would have assigned it at B%d (t=%d) but the moved assignment at B%d has not executed since", m.Var, m.From, tUnopt, m.To)
		}
	}
	return v, nil
}

// AtAll classifies every execution instance of the breakpoint block,
// returning the timestamp sets where the variable is current and
// non-current.
func AtAll(tg *dataflow.TGraph, m Motion, breakpoint cfg.BlockID) (current, nonCurrent core.Seq, err error) {
	node := tg.Node(breakpoint)
	if node == nil {
		return nil, nil, fmt.Errorf("currency: breakpoint block %d never executed", breakpoint)
	}
	var cur, non []core.Timestamp
	for _, ts := range node.Times.Expand() {
		v, err := At(tg, m, breakpoint, ts)
		if err != nil {
			return nil, nil, err
		}
		if v.Current {
			cur = append(cur, ts)
		} else {
			non = append(non, ts)
		}
	}
	return core.CompactSeries(cur), core.CompactSeries(non), nil
}
