package currency

import (
	"testing"

	"twpp/internal/cfg"
	"twpp/internal/dataflow"
	"twpp/internal/wpp"
)

// The paper's Figure 12: the unoptimized program assigns X in block 1;
// partial dead code elimination sinks the assignment into block 2 (the
// branch where X is used). The breakpoint is in block 3, reached
// either via 1.2.3 (X current) or via 1.4.3 (X non-current: the
// unoptimized program would have assigned X at 1, but the optimized
// program never executed the sunk copy).
var fig12Motion = Motion{Var: "X", From: 1, To: 2}

func TestFigure12CurrentPath(t *testing.T) {
	tg := dataflow.BuildFromPath(wpp.PathTrace{1, 2, 3})
	v, err := At(tg, fig12Motion, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Current {
		t.Errorf("path 1.2.3: X should be current: %s", v.Reason)
	}
	if v.OptDefTime != 2 || v.UnoptDefTime != 1 {
		t.Errorf("def times = %d/%d", v.UnoptDefTime, v.OptDefTime)
	}
}

func TestFigure12NonCurrentPath(t *testing.T) {
	tg := dataflow.BuildFromPath(wpp.PathTrace{1, 4, 3})
	v, err := At(tg, fig12Motion, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if v.Current {
		t.Errorf("path 1.4.3: X should be non-current: %s", v.Reason)
	}
}

func TestLoopedBreakpointMixedCurrency(t *testing.T) {
	// Two loop iterations: first takes 1.2.3 (current), second takes
	// 1.4.3 (non-current).
	tg := dataflow.BuildFromPath(wpp.PathTrace{1, 2, 3, 1, 4, 3})
	cur, non, err := AtAll(tg, fig12Motion, 3)
	if err != nil {
		t.Fatal(err)
	}
	if cur.Count() != 1 || !cur.Contains(3) {
		t.Errorf("current = %s, want [3]", cur)
	}
	// Second breakpoint: the last From (t=4) is newer than the last To
	// (t=2) -> non-current.
	if non.Count() != 1 || !non.Contains(6) {
		t.Errorf("non-current = %s, want [6]", non)
	}
}

func TestUntouchedDefinition(t *testing.T) {
	// Block 5 is an untouched assignment to X in both versions. If it
	// is the most recent definition in both, X is current.
	m := Motion{Var: "X", From: 1, To: 2, OtherDefs: []cfg.BlockID{5}}
	tg := dataflow.BuildFromPath(wpp.PathTrace{1, 2, 5, 3})
	v, err := At(tg, m, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Current {
		t.Errorf("untouched def should be current: %s", v.Reason)
	}
	// But if the sunk copy runs after the untouched def while the
	// unoptimized def point has not, the value diverges.
	tg2 := dataflow.BuildFromPath(wpp.PathTrace{5, 2, 3})
	v2, err := At(tg2, m, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if v2.Current {
		t.Errorf("optimized-only overwrite should be non-current: %s", v2.Reason)
	}
}

func TestNeverAssigned(t *testing.T) {
	m := Motion{Var: "X", From: 8, To: 9}
	tg := dataflow.BuildFromPath(wpp.PathTrace{1, 2, 3})
	v, err := At(tg, m, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Current {
		t.Errorf("never-assigned variable should be vacuously current: %s", v.Reason)
	}
}

func TestOptimizedAssignedButUnoptNot(t *testing.T) {
	// Hoisting-like situation: To executed but From never would have.
	m := Motion{Var: "X", From: 8, To: 2}
	tg := dataflow.BuildFromPath(wpp.PathTrace{1, 2, 3})
	v, err := At(tg, m, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if v.Current {
		t.Errorf("want non-current: %s", v.Reason)
	}
}

func TestErrors(t *testing.T) {
	tg := dataflow.BuildFromPath(wpp.PathTrace{1, 2, 3})
	if _, err := At(tg, fig12Motion, 99, 1); err == nil {
		t.Error("unknown breakpoint: want error")
	}
	if _, err := At(tg, fig12Motion, 3, 1); err == nil {
		t.Error("wrong instance time: want error")
	}
	if _, _, err := AtAll(tg, fig12Motion, 99); err == nil {
		t.Error("unknown breakpoint: want error")
	}
}
