// FuzzIngestFrame: the wire protocol under arbitrary bytes. The whole
// session driver — frame parsing, HELLO decoding, symbol validation,
// seal — runs against fuzzer-controlled input; any panic escapes the
// per-session containment as a counter the target asserts on, and any
// internal-error status fails the run. Seeded with a valid session
// image and one representative of each corruption class; `make
// fuzz-seed` replays the corpus as ordinary tests.

package ingest_test

import (
	"bytes"
	"context"
	"io"
	"testing"

	"twpp/internal/cli"
	"twpp/internal/ingest"
	"twpp/internal/testkit"
)

func FuzzIngestFrame(f *testing.F) {
	w := testkit.Generate(testkit.Config{Shape: testkit.Periodic, Seed: 7, Funcs: 3, Calls: 6, MaxLen: 12})
	img := wireImage("fuzz", w.FuncNames, w.Linear())
	f.Add(img)
	f.Add(ingest.AppendHello(nil, "fuzz", w.FuncNames))
	f.Add(testkit.BitFlip(img, len(img)/3, 2))
	f.Add(testkit.Truncate(img, len(img)/2))
	if mut, ok := testkit.InflateLength(img, len(img)-4); ok {
		f.Add(mut)
	}
	f.Add([]byte{})
	f.Add([]byte{ingest.FrameResult, 0, 0, 0, 0})

	dir := f.TempDir()
	s, err := ingest.NewServer(ingest.Options{Dir: dir, Workers: 1, MaxFrameBytes: 1 << 16, MaxSessionBytes: 1 << 20})
	if err != nil {
		f.Fatal(err)
	}
	var panicsBefore uint64

	f.Fuzz(func(t *testing.T, data []byte) {
		res := s.ServeSession(context.Background(), rwPair{bytes.NewReader(data), io.Discard})
		if res.Status == cli.ExitFailure {
			t.Fatalf("internal error status on fuzz input: %s", res.Detail)
		}
		if n := metricValue(t, s, "twpp_ingest_panics_total"); n != panicsBefore {
			panicsBefore = n
			t.Fatalf("session panicked (contained): input %q", data)
		}
	})
}
