// Package ingest is the writer-side network service: it accepts
// length-prefixed WPP event streams from many concurrent producers,
// runs each session through the bounded-memory online compactor, and
// seals finished sessions into v2 segments that a colocated or remote
// twpp-serve picks up without restarting.
//
// Wire protocol (all integers in the frame header are fixed-width
// big-endian; everything inside payloads uses the repo's standard
// uvarint/string encoding from internal/encoding):
//
//	frame   := type:u8 length:u32be payload[length]
//	HELLO   ('H') := magic:u32 "TWPI" | version:uvarint
//	                 | mount:string | numFuncs:uvarint | name:string...
//	EVENTS  ('E') := symbol:uvarint...   (whole symbols only; an empty
//	                 payload is a keepalive)
//	FINISH  ('F') := (empty)
//	RESULT  ('R') := status:uvarint | code:string | detail:string
//	                 | session | generation | segments | events
//	                 | calls | uniqueTraces  (all uvarint)
//
// A session is HELLO, any number of EVENTS, FINISH; the server answers
// with exactly one RESULT and closes. The symbol vocabulary is the
// linear WPP stream (sequitur.EnterMarker(f), block ids,
// sequitur.ExitMarker), validated by trace.Demux exactly as the
// offline raw-file reader validates it — every malformed frame yields
// a structured rejection code, never a crash. RESULT status values
// reuse the cli exit codes (0 ok, 2 usage/protocol, 3 corrupt,
// 4 truncated, 5 limit, 6 canceled/idle) plus 7 "busy" when the
// session semaphore is saturated.
package ingest

import (
	"fmt"
	"io"

	"twpp/internal/cli"
	"twpp/internal/encoding"
)

// Frame type bytes.
const (
	FrameHello  = byte('H')
	FrameEvents = byte('E')
	FrameFinish = byte('F')
	FrameResult = byte('R')
)

// ProtoMagic opens every HELLO payload: "TWPI".
const ProtoMagic = uint32(0x54575049)

// ProtoVersion is the wire protocol version this package speaks.
const ProtoVersion = 1

// StatusBusy is the RESULT status for a session rejected because the
// server's concurrent-session semaphore was saturated; every other
// status is a cli exit code.
const StatusBusy = 7

// frameHeaderLen is type byte + u32 length.
const frameHeaderLen = 5

// MaxMountLen bounds the HELLO mount name.
const MaxMountLen = 64

// ValidMount reports whether name is an acceptable mount name:
// non-empty, at most MaxMountLen bytes, [a-zA-Z0-9_-] only. The same
// alphabet the serve catalog accepts, and path-traversal-free by
// construction.
func ValidMount(name string) bool {
	if name == "" || len(name) > MaxMountLen {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// AppendFrame appends one whole frame (header + payload) to dst.
func AppendFrame(dst []byte, typ byte, payload []byte) []byte {
	dst = append(dst, typ)
	dst = encoding.PutUint32(dst, uint32(len(payload)))
	return append(dst, payload...)
}

// AppendHello appends a HELLO frame declaring the session's mount and
// function name table.
func AppendHello(dst []byte, mount string, names []string) []byte {
	p := encoding.PutUint32(nil, ProtoMagic)
	p = encoding.PutUvarint(p, ProtoVersion)
	p = encoding.PutString(p, mount)
	p = encoding.PutUvarint(p, uint64(len(names)))
	for _, n := range names {
		p = encoding.PutString(p, n)
	}
	return AppendFrame(dst, FrameHello, p)
}

// AppendEvents appends an EVENTS frame carrying syms.
func AppendEvents(dst []byte, syms []uint32) []byte {
	var p []byte
	for _, s := range syms {
		p = encoding.PutUvarint(p, uint64(s))
	}
	return AppendFrame(dst, FrameEvents, p)
}

// AppendFinish appends a FINISH frame.
func AppendFinish(dst []byte) []byte {
	return AppendFrame(dst, FrameFinish, nil)
}

// Hello is a decoded HELLO payload.
type Hello struct {
	Mount string
	Names []string
}

// decodeHello validates and decodes a HELLO payload.
func decodeHello(payload []byte) (Hello, error) {
	c := encoding.NewCursor(payload)
	magic, err := c.Uint32()
	if err != nil {
		return Hello{}, err
	}
	if magic != ProtoMagic {
		return Hello{}, encoding.Errf(encoding.CodeBadMagic, 0, "ingest: bad hello magic %#x", magic)
	}
	ver, err := c.Uvarint()
	if err != nil {
		return Hello{}, err
	}
	if ver != ProtoVersion {
		return Hello{}, encoding.Errf(encoding.CodeBadVersion, int64(c.Pos()), "ingest: protocol version %d (want %d)", ver, ProtoVersion)
	}
	mount, err := c.String()
	if err != nil {
		return Hello{}, err
	}
	if !ValidMount(mount) {
		return Hello{}, encoding.Errf(encoding.CodeCorrupt, int64(c.Pos()), "ingest: invalid mount name %q", mount)
	}
	count, err := c.Uvarint()
	if err != nil {
		return Hello{}, err
	}
	// Every name costs at least its one-byte length prefix, so a count
	// beyond the remaining payload is declared, not real — reject
	// before sizing anything by it (the raw-header discipline).
	if count > uint64(c.Len()) {
		return Hello{}, encoding.Errf(encoding.CodeCorrupt, int64(c.Pos()), "ingest: hello declares %d functions with %d bytes left", count, c.Len())
	}
	names := make([]string, 0, count)
	for i := uint64(0); i < count; i++ {
		n, err := c.String()
		if err != nil {
			return Hello{}, err
		}
		names = append(names, n)
	}
	if !c.Done() {
		return Hello{}, encoding.Errf(encoding.CodeCorrupt, int64(c.Pos()), "ingest: %d trailing bytes after hello", c.Len())
	}
	return Hello{Mount: mount, Names: names}, nil
}

// Result is the server's final word on a session.
type Result struct {
	// Status is a cli exit code, or StatusBusy.
	Status uint64
	// Code is the status's symbolic name ("ok", "corrupt", "busy", ...).
	Code string
	// Detail is a human-readable elaboration (the error message).
	Detail string
	// Session is the write-session id the sealed segments carry.
	Session uint64
	// Generation is the container generation the seal committed.
	Generation uint64
	// Segments is how many segment files the session sealed into.
	Segments uint64
	// Events, Calls, UniqueTraces summarize the compacted session.
	Events, Calls, UniqueTraces uint64
}

// OK reports whether the session sealed successfully.
func (r Result) OK() bool { return r.Status == cli.ExitOK }

// appendResult encodes r's payload.
func appendResult(dst []byte, r Result) []byte {
	p := encoding.PutUvarint(nil, r.Status)
	p = encoding.PutString(p, r.Code)
	p = encoding.PutString(p, r.Detail)
	for _, v := range [...]uint64{r.Session, r.Generation, r.Segments, r.Events, r.Calls, r.UniqueTraces} {
		p = encoding.PutUvarint(p, v)
	}
	return AppendFrame(dst, FrameResult, p)
}

// DecodeResult decodes a RESULT payload (producer side).
func DecodeResult(payload []byte) (Result, error) {
	c := encoding.NewCursor(payload)
	var r Result
	var err error
	if r.Status, err = c.Uvarint(); err != nil {
		return r, err
	}
	if r.Code, err = c.String(); err != nil {
		return r, err
	}
	if r.Detail, err = c.String(); err != nil {
		return r, err
	}
	for _, dst := range [...]*uint64{&r.Session, &r.Generation, &r.Segments, &r.Events, &r.Calls, &r.UniqueTraces} {
		if *dst, err = c.Uvarint(); err != nil {
			return r, err
		}
	}
	return r, nil
}

// ReadFrame reads one frame from r, enforcing maxPayload on the
// declared length before allocating anything. buf is an optional
// reusable payload buffer; the returned payload aliases it when it
// fits. A clean EOF before any header byte returns io.EOF.
func ReadFrame(r io.Reader, maxPayload int, buf []byte) (typ byte, payload []byte, err error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		return 0, nil, err // io.EOF: clean end before a frame
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	n, err := encoding.Uint32(hdr[1:])
	if err != nil {
		return 0, nil, err
	}
	if int64(n) > int64(maxPayload) {
		return 0, nil, encoding.Errf(encoding.CodeLimit, 0, "ingest: frame declares %d bytes (limit %d)", n, maxPayload)
	}
	if uint32(cap(buf)) >= n {
		payload = buf[:n]
	} else {
		payload = make([]byte, n)
	}
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	return hdr[0], payload, nil
}

// ReadResult reads frames until a RESULT arrives and decodes it
// (producer side; the server sends nothing else).
func ReadResult(r io.Reader) (Result, error) {
	typ, payload, err := ReadFrame(r, 1<<20, nil)
	if err != nil {
		return Result{}, err
	}
	if typ != FrameResult {
		return Result{}, fmt.Errorf("ingest: unexpected frame type %q awaiting result", typ)
	}
	return DecodeResult(payload)
}
