package ingest_test

import (
	"net"
	"testing"

	"twpp/internal/core"
	"twpp/internal/ingest"
	"twpp/internal/segment"
	"twpp/internal/testkit"
	"twpp/internal/trace"
	"twpp/internal/wpp"
	"twpp/internal/wppfile"
)

// rawToTWPP compacts a generated WPP in memory (the batch pipeline).
func rawToTWPP(t *testing.T, w *trace.RawWPP) *core.TWPP {
	t.Helper()
	cc, _ := wpp.Compact(w)
	return core.FromCompacted(cc)
}

// openSet opens a sealed container directory with checksum
// verification.
func openSet(t *testing.T, dir string) *segment.Set {
	t.Helper()
	set, err := segment.Open(dir, wppfile.OpenOptions{VerifyChecksums: true})
	if err != nil {
		t.Fatalf("Open %s: %v", dir, err)
	}
	t.Cleanup(func() { set.Close() })
	return set
}

// startServer brings up an ingest server on a loopback listener and
// returns it with its dialable address. Cleanup drains it.
func startServer(t *testing.T, opts ingest.Options) (*ingest.Server, string) {
	t.Helper()
	if opts.Dir == "" {
		opts.Dir = t.TempDir()
	}
	s, err := ingest.NewServer(opts)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve(ln) }()
	t.Cleanup(func() {
		if err := s.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return s, ln.Addr().String()
}

// Every generator shape streamed over a real socket must seal to
// bytes identical to the offline `twpp-compact -stream` pipeline —
// the ingest parity oracle.
func TestIngestParityAllShapes(t *testing.T) {
	s, addr := startServer(t, ingest.Options{Workers: 1})
	for _, shape := range testkit.Shapes() {
		shape := shape
		t.Run(shape.String(), func(t *testing.T) {
			cfg := testkit.Config{Shape: shape, Seed: 41 + int64(shape)}
			if shape == testkit.DeepRecursion {
				cfg.Calls = 300
			}
			w := testkit.Generate(cfg)
			mount := "parity-" + shape.String()
			if err := testkit.CheckIngestParity(addr, mount, s.MountDir(mount), w); err != nil {
				t.Fatal(err)
			}
		})
	}
}
