// The producer-fleet soak: 16 concurrent synthetic producers over
// real sockets — jittered pacing, slowloris trickling, kill-and-
// reconnect mid-session — hammering 4 shared mounts. Run under -race
// by `make ingest-test`. Assertions: every completed session seals,
// every kill is rejected as truncated, the server never panics, and
// every container opens clean afterwards with one manifest session
// per seal.

package ingest_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"twpp/internal/ingest"
	"twpp/internal/segment"
	"twpp/internal/testkit"
)

func TestProducerFleetSoak(t *testing.T) {
	const producers = 16
	srv, addr := startServer(t, ingest.Options{MaxSessions: producers, Workers: 1})

	shapes := testkit.Shapes()
	var wg sync.WaitGroup
	errs := make(chan error, producers)
	var sealedWant, killedWant int64
	var mu sync.Mutex

	for i := 0; i < producers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			cfg := testkit.Config{Shape: shapes[i%len(shapes)], Seed: int64(100 + i)}
			if cfg.Shape == testkit.DeepRecursion {
				cfg.Calls = 120
			}
			w := testkit.Generate(cfg)
			events := w.Linear()
			mount := fmt.Sprintf("soak-%d", i%4)
			p := &testkit.Producer{
				Addr:   addr,
				Mount:  mount,
				Names:  w.FuncNames,
				Events: events,
				Jitter: 200 * time.Microsecond,
				Seed:   int64(i),
			}
			if i%5 == 1 {
				// Slowloris producers trickle single symbols over a
				// short session: pacing, not volume, is the point.
				sw := testkit.Generate(testkit.Config{Shape: testkit.SingleBlock, Seed: int64(i), Calls: 8})
				p.Slowloris = true
				p.BatchSymbols = 1
				p.Names = sw.FuncNames
				p.Events = sw.Linear()
			}
			// Every 4th producer is killed mid-session, then
			// reconnects and streams the whole session again.
			if i%4 == 3 {
				kill := *p
				kill.DisconnectAfter = len(p.Events) / 2
				if _, err := kill.Run(); err != nil {
					errs <- fmt.Errorf("producer %d kill run: %w", i, err)
					return
				}
				mu.Lock()
				killedWant++
				mu.Unlock()
			}
			res, err := p.Run()
			if err != nil {
				errs <- fmt.Errorf("producer %d: %w", i, err)
				return
			}
			if !res.OK() {
				errs <- fmt.Errorf("producer %d rejected: %s (%s)", i, res.Code, res.Detail)
				return
			}
			mu.Lock()
			sealedWant++
			mu.Unlock()
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		return
	}

	// Kill rejections land asynchronously (the server notices EOF on
	// its own schedule); poll the counters to quiescence.
	deadline := time.Now().Add(10 * time.Second)
	for {
		sealed := metricValue(t, srv, "twpp_ingest_sessions_sealed_total")
		rejected := metricValue(t, srv, "twpp_ingest_sessions_rejected_total")
		if sealed == uint64(sealedWant) && rejected == uint64(killedWant) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("counters never quiesced: sealed=%d want %d, rejected=%d want %d",
				sealed, rejected, sealedWant, killedWant)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if n := metricValue(t, srv, "twpp_ingest_panics_total"); n != 0 {
		t.Fatalf("soak caused %d contained panics", n)
	}

	// Every container opens clean and its manifest carries exactly the
	// sealed sessions.
	totalSessions := 0
	for m := 0; m < 4; m++ {
		set := openSet(t, srv.MountDir(fmt.Sprintf("soak-%d", m)))
		totalSessions += countSessions(t, srv.MountDir(fmt.Sprintf("soak-%d", m)))
		if set.SegmentCount() < 1 {
			t.Errorf("mount soak-%d is empty", m)
		}
	}
	if totalSessions != int(sealedWant) {
		t.Errorf("manifests carry %d sessions, want %d", totalSessions, sealedWant)
	}
}

// countSessions reads a container's manifest and counts distinct
// write sessions.
func countSessions(t *testing.T, dir string) int {
	t.Helper()
	man, err := segment.ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	for _, e := range man.Segments {
		seen[e.Session] = true
	}
	return len(seen)
}
