// The acceptance end-to-end: N concurrent producers stream distinct
// workloads over real sockets into distinct mounts; the ingest server
// seals each into a container; a query server mounted on those
// containers must answer every API route byte-identically to a query
// server mounted on files written by the offline pipeline
// (twpp-compact -stream). Run under -race by `make ingest-test`.

package ingest_test

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"twpp/internal/ingest"
	"twpp/internal/server"
	"twpp/internal/testkit"
	"twpp/internal/trace"
)

func TestEndToEndServeParity(t *testing.T) {
	shapes := testkit.Shapes()
	n := len(shapes)
	srv, addr := startServer(t, ingest.Options{MaxSessions: n, Workers: 1})

	// Stream every shape concurrently, one mount per shape.
	workloads := make([]*trace.RawWPP, n)
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i, shape := range shapes {
		i, shape := i, shape
		cfg := testkit.Config{Shape: shape, Seed: 60 + int64(i)}
		if shape == testkit.DeepRecursion {
			cfg.Calls = 200
		}
		workloads[i] = testkit.Generate(cfg)
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := &testkit.Producer{
				Addr:   addr,
				Mount:  mountName(i),
				Names:  workloads[i].FuncNames,
				Events: workloads[i].Linear(),
			}
			res, err := p.Run()
			if err != nil {
				errs <- fmt.Errorf("producer %d: %w", i, err)
				return
			}
			if !res.OK() {
				errs <- fmt.Errorf("producer %d rejected: %s (%s)", i, res.Code, res.Detail)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// The reference: offline-compacted files served by an identical
	// query server.
	offDir := t.TempDir()
	live := server.New(server.Options{})
	ref := server.New(server.Options{})
	for i := range workloads {
		data, err := testkit.OfflineCompact(workloads[i], 1)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(offDir, mountName(i)+".twpp")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := ref.Mount(mountName(i), path); err != nil {
			t.Fatal(err)
		}
		if err := live.Mount(mountName(i), srv.MountDir(mountName(i))); err != nil {
			t.Fatal(err)
		}
	}

	liveTS := httptest.NewServer(live.Handler())
	defer liveTS.Close()
	refTS := httptest.NewServer(ref.Handler())
	defer refTS.Close()

	// Every route on every mount and function must agree byte for byte.
	for i := range workloads {
		mount := mountName(i)
		paths := []string{fmt.Sprintf("/v1/%s/funcs", mount)}
		for fn := range workloads[i].FuncNames {
			paths = append(paths,
				fmt.Sprintf("/v1/%s/trace/%d", mount, fn),
				fmt.Sprintf("/v1/%s/stats/%d", mount, fn),
			)
		}
		for _, path := range paths {
			lst, lb := get(t, liveTS.URL+path)
			rst, rb := get(t, refTS.URL+path)
			if lst != rst {
				t.Errorf("%s: live status %d, reference %d", path, lst, rst)
				continue
			}
			if !bytes.Equal(lb, rb) {
				t.Errorf("%s: body differs\nlive: %s\nref:  %s", path, lb, rb)
			}
		}
	}
}

func mountName(i int) string { return fmt.Sprintf("e2e-%d", i) }

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}
