// The per-producer session state machine. It is factored over a plain
// io.ReadWriter so tests, the corruption sweep, and FuzzIngestFrame
// can drive it deterministically with in-memory byte streams; when the
// underlying stream is a net.Conn the server arms a fresh read
// deadline before every frame, turning producer silence into the
// idle-timeout path.

package ingest

import (
	"context"
	"errors"
	"io"
	"math"
	"net"
	"os"
	"time"

	"twpp/internal/cli"
	"twpp/internal/core"
	"twpp/internal/encoding"
	"twpp/internal/sequitur"
	"twpp/internal/trace"
)

// readDeadliner is the slice of net.Conn the session uses; in-memory
// test streams simply don't implement it.
type readDeadliner interface {
	SetReadDeadline(t time.Time) error
}

// session holds one producer's in-flight state.
type session struct {
	srv   *Server
	rw    io.ReadWriter
	buf   []byte // reusable frame payload buffer
	hello *Hello
	sc    *core.StreamCompactor
	demux *trace.Demux
	// events counts symbols accepted; bytes counts EVENTS payload
	// bytes, bounded by MaxSessionBytes.
	events uint64
	bytes  int64
}

// run drives one session to its RESULT. It always writes exactly one
// RESULT frame (best-effort — the producer may already be gone) and
// returns the terminal outcome for the server's metrics.
func (ss *session) run(ctx context.Context) Result {
	for {
		if err := ctx.Err(); err != nil {
			return ss.reject(err)
		}
		ss.armDeadline()
		typ, payload, err := ReadFrame(ss.rw, ss.srv.opts.MaxFrameBytes, ss.buf)
		if err != nil {
			return ss.readFailed(err)
		}
		if cap(payload) > cap(ss.buf) {
			ss.buf = payload[:cap(payload)]
		}
		ss.srv.mFrames.Inc()
		switch typ {
		case FrameHello:
			if ss.hello != nil {
				return ss.reject(encoding.Errf(encoding.CodeCorrupt, 0, "ingest: duplicate HELLO"))
			}
			h, err := decodeHello(payload)
			if err != nil {
				return ss.reject(err)
			}
			ss.hello = &h
			ss.sc = core.NewStreamCompactor(h.Names)
			ss.demux = &trace.Demux{Sink: ss.sc, NumFuncs: len(h.Names)}
		case FrameEvents:
			if ss.hello == nil {
				return ss.reject(encoding.Errf(encoding.CodeCorrupt, 0, "ingest: EVENTS before HELLO"))
			}
			ss.bytes += int64(len(payload))
			ss.srv.mBytesIn.Add(uint64(len(payload)))
			if max := ss.srv.opts.MaxSessionBytes; max > 0 && ss.bytes > max {
				return ss.reject(encoding.Errf(encoding.CodeLimit, 0, "ingest: session exceeds %d event bytes", max))
			}
			if err := ss.feedEvents(payload); err != nil {
				return ss.reject(err)
			}
		case FrameFinish:
			if ss.hello == nil {
				return ss.reject(encoding.Errf(encoding.CodeCorrupt, 0, "ingest: FINISH before HELLO"))
			}
			return ss.finish(ctx, "")
		default:
			return ss.reject(encoding.Errf(encoding.CodeCorrupt, 0, "ingest: unknown frame type %#x", typ))
		}
	}
}

// feedEvents decodes one EVENTS payload — whole uvarint symbols — and
// feeds each through the demux, mirroring the offline raw reader's
// validation exactly (symbol range check, empty-name-table strictness,
// then trace.Demux structure checks).
func (ss *session) feedEvents(payload []byte) error {
	c := encoding.NewCursor(payload)
	for !c.Done() {
		sym, err := c.Uvarint()
		if err != nil {
			return err
		}
		if sym > math.MaxUint32 {
			return encoding.Errf(encoding.CodeCorrupt, int64(c.Pos()), "ingest: symbol %d out of range", sym)
		}
		if _, ok := sequitur.IsEnter(uint32(sym)); ok && len(ss.hello.Names) == 0 {
			return &trace.StreamError{Kind: trace.StreamUnknownFunc, Pos: int(ss.events), Sym: uint32(sym)}
		}
		if err := ss.demux.Feed(uint32(sym)); err != nil {
			return err
		}
		ss.events++
		ss.srv.mEvents.Inc()
	}
	return nil
}

// finish closes the stream, seals the compacted session into the
// mount's container, and reports the RESULT.
func (ss *session) finish(ctx context.Context, detail string) Result {
	if err := ss.demux.Close(); err != nil {
		return ss.reject(err)
	}
	sealed, err := ss.srv.seal(ctx, ss.hello.Mount, ss.sc)
	if err != nil {
		return ss.reject(err)
	}
	res := Result{
		Status:       cli.ExitOK,
		Code:         cli.CodeName(cli.ExitOK),
		Detail:       detail,
		Session:      sealed.session,
		Generation:   sealed.generation,
		Segments:     sealed.segments,
		Events:       ss.events,
		Calls:        uint64(sealed.calls),
		UniqueTraces: uint64(sealed.uniqueTraces),
	}
	ss.writeResult(res)
	return res
}

// readFailed maps a frame-read failure to the session's outcome. A
// timeout on an armed deadline is the idle path: a producer that went
// quiet after a balanced stream still gets its session sealed (the
// paper's sessions end when the program exits — often without a polite
// FINISH); an unbalanced one is rejected. EOF before HELLO or
// mid-stream is a plain disconnect.
func (ss *session) readFailed(err error) Result {
	var ne net.Error
	idle := (errors.As(err, &ne) && ne.Timeout()) || errors.Is(err, os.ErrDeadlineExceeded)
	if idle && ss.hello != nil {
		if ss.demux.Close() == nil {
			return ss.finish(context.Background(), "sealed on idle timeout")
		}
		return ss.reject(encoding.Errf(encoding.CodeCorrupt, 0, "ingest: idle timeout with unbalanced stream"))
	}
	if idle {
		return ss.reject(encoding.Errf(encoding.CodeCorrupt, 0, "ingest: idle timeout before HELLO"))
	}
	// Disconnects and malformed frames: structured errors keep their
	// class; raw EOFs become truncation.
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		err = encoding.Errf(encoding.CodeTruncated, 0, "ingest: stream ended mid-session")
	}
	return ss.reject(err)
}

// reject writes a failure RESULT carrying err's structured class.
func (ss *session) reject(err error) Result {
	status := cli.ExitCode(err)
	res := Result{
		Status: uint64(status),
		Code:   cli.CodeName(status),
		Detail: err.Error(),
		Events: ss.events,
	}
	ss.writeResult(res)
	return res
}

// writeResult sends the RESULT frame, best-effort: the producer may
// have disconnected, and a dead writer must not mask the session's
// real outcome.
func (ss *session) writeResult(r Result) {
	ss.rw.Write(appendResult(nil, r))
}

// armDeadline sets the per-frame read deadline when the stream
// supports one.
func (ss *session) armDeadline() {
	if d, ok := ss.rw.(readDeadliner); ok {
		d.SetReadDeadline(time.Now().Add(ss.srv.opts.IdleTimeout))
	}
}
