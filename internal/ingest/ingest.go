// The ingest server: accept loop, session semaphore, the seal path
// into segmented containers, metrics, and graceful drain — the serve
// discipline of internal/server applied to the write side.

package ingest

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"runtime/debug"
	"sync"
	"time"

	"twpp/internal/cli"
	"twpp/internal/core"
	"twpp/internal/obs"
	"twpp/internal/segment"
)

// Defaults mirror internal/server's conservative posture.
const (
	DefaultMaxSessions     = 64
	DefaultIdleTimeout     = 30 * time.Second
	DefaultMaxFrameBytes   = 1 << 20
	DefaultMaxSessionBytes = int64(1) << 30
	DefaultDrainTimeout    = 5 * time.Second
)

// MountExt is the directory suffix sealed containers get under
// Options.Dir: mount "web" seals into "<dir>/web.twppd".
const MountExt = ".twppd"

// Options configures a Server.
type Options struct {
	// Dir is where sealed containers live; one segmented container
	// directory per mount name.
	Dir string
	// MaxSessions bounds concurrent sessions (TCP and HTTP combined);
	// excess producers get an immediate "busy" RESULT (or HTTP 429).
	// 0 selects DefaultMaxSessions.
	MaxSessions int
	// IdleTimeout is the per-frame read deadline. A producer silent
	// this long has its session sealed if balanced, rejected otherwise.
	// 0 selects DefaultIdleTimeout.
	IdleTimeout time.Duration
	// MaxFrameBytes bounds a single frame payload; 0 selects
	// DefaultMaxFrameBytes.
	MaxFrameBytes int
	// MaxSessionBytes bounds a session's total EVENTS payload bytes;
	// 0 selects DefaultMaxSessionBytes, < 0 disables the bound.
	MaxSessionBytes int64
	// SegmentBytes is the per-segment payload budget for sealed
	// sessions (segment.WriteOptions.SegmentBytes).
	SegmentBytes int64
	// Workers sizes each seal's encode worker pool.
	Workers int
	// Registry receives the twpp_ingest_* metrics; nil creates a
	// private one.
	Registry *obs.Registry
	// LogWriter receives one structured line per session outcome; nil
	// disables logging.
	LogWriter io.Writer
	// OnSeal, when set, runs after every successful seal with the
	// mount name, its container directory, and the committed manifest
	// — the hook a colocated twpp-serve uses to mount or refresh.
	OnSeal func(mount, dir string, man *segment.Manifest)
	// DrainTimeout bounds how long Close waits for in-flight sessions
	// before force-closing their connections. 0 selects
	// DefaultDrainTimeout.
	DrainTimeout time.Duration
}

func (o Options) withDefaults() Options {
	if o.MaxSessions <= 0 {
		o.MaxSessions = DefaultMaxSessions
	}
	if o.IdleTimeout <= 0 {
		o.IdleTimeout = DefaultIdleTimeout
	}
	if o.MaxFrameBytes <= 0 {
		o.MaxFrameBytes = DefaultMaxFrameBytes
	}
	if o.MaxSessionBytes == 0 {
		o.MaxSessionBytes = DefaultMaxSessionBytes
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = DefaultDrainTimeout
	}
	if o.Registry == nil {
		o.Registry = obs.NewRegistry()
	}
	return o
}

// sealInfo summarizes one committed seal for the session's RESULT.
type sealInfo struct {
	session      uint64
	generation   uint64
	segments     uint64
	calls        int
	uniqueTraces int
}

// Server accepts producer sessions, compacts them online, and seals
// them into per-mount segmented containers.
type Server struct {
	opts Options

	sem chan struct{}

	mu     sync.Mutex // guards ln, conns, closed
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	// sealMu serializes seals per mount: segment.Append is
	// single-writer per container directory.
	sealMu sync.Mutex
	seals  map[string]*sync.Mutex

	mActive    *obs.Gauge
	mSealed    *obs.Counter
	mRejected  *obs.Counter
	mBusy      *obs.Counter
	mBytesIn   *obs.Counter
	mEvents    *obs.Counter
	mFrames    *obs.Counter
	mPanics    *obs.Counter
	mSealSecs  *obs.Histogram
	mHTTPSeals *obs.Counter
}

// NewServer builds a Server; Serve (or the HTTP handler) makes it
// live.
func NewServer(opts Options) (*Server, error) {
	opts = opts.withDefaults()
	if opts.Dir == "" {
		return nil, fmt.Errorf("ingest: Options.Dir is required")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	r := opts.Registry
	s := &Server{
		opts:       opts,
		sem:        make(chan struct{}, opts.MaxSessions),
		conns:      make(map[net.Conn]struct{}),
		seals:      make(map[string]*sync.Mutex),
		mActive:    r.Gauge("twpp_ingest_sessions_active"),
		mSealed:    r.Counter("twpp_ingest_sessions_sealed_total"),
		mRejected:  r.Counter("twpp_ingest_sessions_rejected_total"),
		mBusy:      r.Counter("twpp_ingest_sessions_busy_total"),
		mBytesIn:   r.Counter("twpp_ingest_bytes_in_total"),
		mEvents:    r.Counter("twpp_ingest_events_total"),
		mFrames:    r.Counter("twpp_ingest_frames_total"),
		mPanics:    r.Counter("twpp_ingest_panics_total"),
		mSealSecs:  r.Histogram("twpp_ingest_seal_seconds", obs.DefaultLatencyBuckets),
		mHTTPSeals: r.Counter("twpp_ingest_http_seals_total"),
	}
	return s, nil
}

// Registry exposes the server's metrics registry (for /metrics).
func (s *Server) Registry() *obs.Registry { return s.opts.Registry }

// Serve accepts sessions on ln until Close. It returns nil after a
// clean shutdown.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("ingest: server closed")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			return err
		}
		s.track(conn, true)
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.track(conn, false)
			defer conn.Close()
			s.ServeSession(context.Background(), conn)
		}()
	}
}

// ListenAndServe listens on addr and Serves. The listener's actual
// address is available via Addr once listening.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Addr returns the live listener address, or nil before Serve.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

func (s *Server) track(conn net.Conn, add bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if add {
		s.conns[conn] = struct{}{}
	} else {
		delete(s.conns, conn)
	}
}

// ServeSession runs one complete producer session over rw: semaphore
// admission, the frame loop, sealing, and exactly one RESULT. It is
// exported so tests and the fuzz target can drive the full path over
// in-memory streams. Panics are contained per session and reported as
// internal RESULTs — a hostile producer can be rejected, never crash
// the server.
func (s *Server) ServeSession(ctx context.Context, rw io.ReadWriter) (res Result) {
	select {
	case s.sem <- struct{}{}:
	default:
		s.mBusy.Inc()
		res = Result{Status: StatusBusy, Code: "busy", Detail: "ingest: too many concurrent sessions"}
		rw.Write(appendResult(nil, res))
		return res
	}
	defer func() { <-s.sem }()

	s.mActive.Inc()
	defer s.mActive.Dec()

	ss := &session{srv: s, rw: rw, buf: make([]byte, 4096)}
	defer func() {
		if p := recover(); p != nil {
			s.mPanics.Inc()
			s.mRejected.Inc()
			res = Result{
				Status: cli.ExitFailure,
				Code:   cli.CodeName(cli.ExitFailure),
				Detail: fmt.Sprintf("ingest: internal error: %v", p),
			}
			rw.Write(appendResult(nil, res))
			s.logSession(ss, res, debug.Stack())
		}
	}()
	res = ss.run(ctx)
	if res.OK() {
		s.mSealed.Inc()
	} else {
		s.mRejected.Inc()
	}
	s.logSession(ss, res, nil)
	return res
}

func (s *Server) logSession(ss *session, res Result, stack []byte) {
	w := s.opts.LogWriter
	if w == nil {
		return
	}
	mount := ""
	if ss.hello != nil {
		mount = ss.hello.Mount
	}
	fmt.Fprintf(w, "session mount=%q status=%s events=%d bytes=%d detail=%q\n",
		mount, res.Code, res.Events, ss.bytes, res.Detail)
	if stack != nil {
		w.Write(stack)
	}
}

// mountLock returns the per-mount seal mutex, creating it on first
// use.
func (s *Server) mountLock(mount string) *sync.Mutex {
	s.sealMu.Lock()
	defer s.sealMu.Unlock()
	l := s.seals[mount]
	if l == nil {
		l = &sync.Mutex{}
		s.seals[mount] = l
	}
	return l
}

// MountDir returns the container directory a mount seals into.
func (s *Server) MountDir(mount string) string {
	return filepath.Join(s.opts.Dir, mount+MountExt)
}

// seal finishes the compactor and commits the session into the
// mount's container: segment.Write creates it on the first session,
// segment.Append extends it on every later one. Appends are
// serialized per mount; different mounts seal concurrently.
func (s *Server) seal(ctx context.Context, mount string, sc *core.StreamCompactor) (sealInfo, error) {
	start := time.Now()
	tw, stats, err := sc.FinishCtx(ctx)
	if err != nil {
		return sealInfo{}, err
	}
	l := s.mountLock(mount)
	l.Lock()
	defer l.Unlock()

	dir := s.MountDir(mount)
	wopts := segment.WriteOptions{SegmentBytes: s.opts.SegmentBytes, Workers: s.opts.Workers}
	var man *segment.Manifest
	if segment.IsSegmented(dir) {
		man, err = segment.Append(dir, tw, wopts)
	} else {
		man, err = segment.Write(dir, tw, wopts)
	}
	if err != nil {
		return sealInfo{}, err
	}
	s.mSealSecs.Observe(time.Since(start).Seconds())

	// The appended session's entries are the trailing run sharing the
	// highest session id.
	last := man.Segments[len(man.Segments)-1]
	nseg := uint64(0)
	for i := len(man.Segments) - 1; i >= 0 && man.Segments[i].Session == last.Session; i-- {
		nseg++
	}
	if s.opts.OnSeal != nil {
		s.opts.OnSeal(mount, dir, man)
	}
	return sealInfo{
		session:      last.Session,
		generation:   man.Generation,
		segments:     nseg,
		calls:        stats.Calls,
		uniqueTraces: stats.UniqueTraces,
	}, nil
}

// Close drains the server: stop accepting, wait up to DrainTimeout
// for in-flight sessions, then force-close stragglers.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-time.After(s.opts.DrainTimeout):
	}
	s.mu.Lock()
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	select {
	case <-done:
	case <-time.After(s.opts.DrainTimeout):
		return errors.New("ingest: sessions still running after forced close")
	}
	return nil
}
