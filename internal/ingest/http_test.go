// The HTTP POST fallback under test: a complete raw WPP image POSTed
// to /v1/ingest/{mount} must seal to the exact bytes the offline
// pipeline produces, and every failure class maps to the structured
// HTTP status the serve plane uses — 400 usage, 422 corrupt, 429
// busy. Never a 5xx for client-caused failures.

package ingest_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"twpp/internal/ingest"
	"twpp/internal/segment"
	"twpp/internal/testkit"
	"twpp/internal/wppfile"
)

// postBody POSTs raw bytes to the handler and returns status + body.
func postBody(t *testing.T, h http.Handler, path string, body []byte) (int, []byte) {
	t.Helper()
	req := httptest.NewRequest("POST", path, bytes.NewReader(body))
	req.ContentLength = int64(len(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Code, rec.Body.Bytes()
}

func TestHTTPIngestParity(t *testing.T) {
	s := newInMemServer(t, ingest.Options{})
	h := s.Handler()
	w := testkit.Generate(testkit.Config{Shape: testkit.Irregular, Seed: 21})

	status, body := postBody(t, h, "/v1/ingest/web", wppfile.EncodeRaw(w))
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var res ingest.IngestResponse
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatalf("response not JSON: %v\n%s", err, body)
	}
	if res.Mount != "web" || res.Session != 1 || res.Segments != 1 {
		t.Fatalf("unexpected seal summary %+v", res)
	}

	// Byte parity with the offline pipeline.
	want, err := testkit.OfflineCompact(w, 1)
	if err != nil {
		t.Fatal(err)
	}
	dir := s.MountDir("web")
	man, err := segment.ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(man.Segments) != 1 {
		t.Fatalf("%d segments, want 1", len(man.Segments))
	}
	got, err := os.ReadFile(filepath.Join(dir, man.Segments[0].Name))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("sealed segment differs from offline pipeline: %d vs %d bytes", len(got), len(want))
	}
}

func TestHTTPIngestErrors(t *testing.T) {
	s := newInMemServer(t, ingest.Options{})
	h := s.Handler()
	w := testkit.Generate(testkit.Config{Shape: testkit.Regular, Seed: 22})
	img := wppfile.EncodeRaw(w)

	cases := []struct {
		name   string
		path   string
		body   []byte
		status int
		code   string
	}{
		{"invalid-mount", "/v1/ingest/bad.name", nil, http.StatusBadRequest, "usage"},
		{"empty-body", "/v1/ingest/m", nil, http.StatusUnprocessableEntity, "truncated"},
		{"corrupt-body", "/v1/ingest/m", testkit.BitFlip(img, 2, 3), http.StatusUnprocessableEntity, ""},
		{"truncated-body", "/v1/ingest/m", testkit.Truncate(img, len(img)/2), http.StatusUnprocessableEntity, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, body := postBody(t, h, tc.path, tc.body)
			if status != tc.status {
				t.Fatalf("status %d, want %d: %s", status, tc.status, body)
			}
			var er struct {
				Code  string `json:"code"`
				Error string `json:"error"`
			}
			if err := json.Unmarshal(body, &er); err != nil {
				t.Fatalf("error body not JSON: %v\n%s", err, body)
			}
			if er.Code == "" || er.Error == "" {
				t.Fatalf("unstructured error body: %+v", er)
			}
			if tc.code != "" && er.Code != tc.code {
				t.Fatalf("code %q, want %q", er.Code, tc.code)
			}
		})
	}
	if n := metricValue(t, s, "twpp_ingest_panics_total"); n != 0 {
		t.Fatalf("HTTP ingest caused %d panics", n)
	}
}

// TestHTTPIngestBusy saturates the shared semaphore via a held TCP
// session and asserts the HTTP plane answers 429 with the busy code.
func TestHTTPIngestBusy(t *testing.T) {
	s, addr := startServer(t, ingest.Options{MaxSessions: 1, Workers: 1})
	w := testkit.Generate(testkit.Config{Shape: testkit.Regular, Seed: 23})

	// Hold the only slot with a silent TCP session.
	hold, err := dialAndHello(addr, "hold", w.FuncNames)
	if err != nil {
		t.Fatal(err)
	}
	defer hold.Close()

	h := s.Handler()
	img := wppfile.EncodeRaw(w)
	status := 0
	var body []byte
	// The TCP slot is taken asynchronously after Accept; poll briefly.
	for i := 0; i < 500; i++ {
		status, body = postBody(t, h, "/v1/ingest/m", img)
		if status == http.StatusTooManyRequests {
			break
		}
	}
	if status != http.StatusTooManyRequests {
		t.Fatalf("never saw 429; last status %d: %s", status, body)
	}
	var er struct {
		Code string `json:"code"`
	}
	if err := json.Unmarshal(body, &er); err != nil || er.Code != "busy" {
		t.Fatalf("busy body %s (err %v)", body, err)
	}
}

// TestHTTPMetricsAndHealth covers the observability routes.
func TestHTTPMetricsAndHealth(t *testing.T) {
	s := newInMemServer(t, ingest.Options{})
	h := s.Handler()
	for _, path := range []string{"/metrics", "/healthz"} {
		req := httptest.NewRequest("GET", path, nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Errorf("GET %s: %d", path, rec.Code)
		}
	}
	req := httptest.NewRequest("GET", "/metrics", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if !bytes.Contains(rec.Body.Bytes(), []byte("twpp_ingest_sessions_sealed_total")) {
		t.Error("metrics output missing ingest counters")
	}
}

// dialAndHello opens a TCP session and sends only the HELLO, leaving
// the slot occupied.
func dialAndHello(addr, mount string, names []string) (net.Conn, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	if _, err := conn.Write(ingest.AppendHello(nil, mount, names)); err != nil {
		conn.Close()
		return nil, fmt.Errorf("hello: %w", err)
	}
	return conn, nil
}
