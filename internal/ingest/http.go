// The HTTP POST fallback: producers that cannot hold a TCP session
// open (batch jobs, curl, CI uploaders) POST a complete raw WPP file
// image and get the seal summary back as JSON. The body is decoded by
// the same bounded-memory reader the offline CLI uses, so validation
// — and every structured rejection code — is identical to
// `twpp-compact -stream`; bad input is the client's fault (422),
// never a 5xx.

package ingest

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"twpp/internal/cli"
	"twpp/internal/core"
	"twpp/internal/wppfile"
)

// IngestResponse is the JSON body for a successful HTTP seal.
type IngestResponse struct {
	Mount        string `json:"mount"`
	Session      uint64 `json:"session"`
	Generation   uint64 `json:"generation"`
	Segments     uint64 `json:"segments"`
	Calls        int    `json:"calls"`
	UniqueTraces int    `json:"unique_traces"`
}

// errorResponse mirrors internal/server's error body shape.
type errorResponse struct {
	Code  string `json:"code"`
	Error string `json:"error"`
}

// Handler returns the server's HTTP surface:
//
//	POST /v1/ingest/{mount}  — body: raw WPP file image → seal
//	GET  /metrics            — Prometheus text format
//	GET  /healthz
//
// The observability routes bypass the session semaphore; the ingest
// route shares it with the TCP plane.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/ingest/{mount}", s.handleIngest)
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.opts.Registry.WritePrometheus(w)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	mount := r.PathValue("mount")
	if !ValidMount(mount) {
		writeHTTPError(w, http.StatusBadRequest, "usage", fmt.Sprintf("invalid mount name %q", mount))
		return
	}
	select {
	case s.sem <- struct{}{}:
	default:
		s.mBusy.Inc()
		writeHTTPError(w, http.StatusTooManyRequests, "busy", "too many concurrent sessions")
		return
	}
	defer func() { <-s.sem }()
	s.mActive.Inc()
	defer s.mActive.Dec()

	res, err := s.ingestBody(r, mount)
	if err != nil {
		s.mRejected.Inc()
		status := cli.HTTPStatus(err)
		writeHTTPError(w, status, cli.CodeName(cli.ExitCode(err)), err.Error())
		return
	}
	s.mSealed.Inc()
	s.mHTTPSeals.Inc()
	data, merr := json.MarshalIndent(res, "", "  ")
	if merr != nil {
		writeHTTPError(w, http.StatusInternalServerError, "error", merr.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(data, '\n'))
}

// ingestBody decodes the raw WPP body through the bounded-memory
// reader, compacts it online, and seals it. Panics from deeper layers
// are contained by the caller's discipline in ServeSession; here the
// demux in ReplayCtx guarantees the compactor only sees balanced
// events, so no recovery shim is needed beyond net/http's own.
func (s *Server) ingestBody(r *http.Request, mount string) (IngestResponse, error) {
	size := r.ContentLength
	var body = r.Body
	if max := s.opts.MaxSessionBytes; max > 0 {
		if size > max {
			return IngestResponse{}, cli.Usagef("body of %d bytes exceeds session limit %d", size, max)
		}
		body = http.MaxBytesReader(nil, r.Body, max)
	}
	rr, err := wppfile.NewRawStreamReader(body, size)
	if err != nil {
		return IngestResponse{}, err
	}
	s.mBytesIn.Add(uint64(maxInt64(size, 0)))
	sc := core.NewStreamCompactor(rr.Names())
	if err := rr.ReplayCtx(r.Context(), sc); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return IngestResponse{}, cli.Usagef("body exceeds session limit %d", mbe.Limit)
		}
		return IngestResponse{}, err
	}
	sealed, err := s.seal(r.Context(), mount, sc)
	if err != nil {
		return IngestResponse{}, err
	}
	return IngestResponse{
		Mount:        mount,
		Session:      sealed.session,
		Generation:   sealed.generation,
		Segments:     sealed.segments,
		Calls:        sealed.calls,
		UniqueTraces: sealed.uniqueTraces,
	}, nil
}

func writeHTTPError(w http.ResponseWriter, status int, code, msg string) {
	data, err := json.MarshalIndent(errorResponse{Code: code, Error: msg}, "", "  ")
	if err != nil {
		data = []byte(fmt.Sprintf(`{"code":%q,"error":"marshal failure"}`, code))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(data, '\n'))
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
