// The wire-frame corruption sweep: every bit flip, truncation, and
// length-inflation of a valid session image must produce a structured
// RESULT — a known rejection code or (when the mutation happens to
// keep the stream valid) a clean seal — with zero panics and zero
// internal-error statuses. The session driver is exercised in memory
// so every mutation is deterministic; the real-socket behavior is the
// same code path (ServeSession) plus deadlines.

package ingest_test

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"testing"

	"twpp/internal/cli"
	"twpp/internal/ingest"
	"twpp/internal/testkit"
)

// checkMutation runs one mutated image through a full session and
// fails on panic (surfaced via the panics counter), internal status,
// or an unreadable RESULT frame.
func checkMutation(t *testing.T, s *ingest.Server, mu testkit.Mutation) {
	t.Helper()
	var out bytes.Buffer
	res := s.ServeSession(context.Background(), rwPair{bytes.NewReader(mu.Data), &out})
	if res.Status == cli.ExitFailure {
		t.Fatalf("%s: internal error status: %s", mu.Desc, res.Detail)
	}
	wire, err := ingest.ReadResult(bytes.NewReader(out.Bytes()))
	if err != nil {
		t.Fatalf("%s: RESULT unreadable: %v", mu.Desc, err)
	}
	if wire.Status != res.Status {
		t.Fatalf("%s: wire status %d != returned %d", mu.Desc, wire.Status, res.Status)
	}
}

func TestWireCorruptionSweep(t *testing.T) {
	// A small session keeps the exhaustive per-bit sweep fast; every
	// frame type and payload kind is still present in the image.
	w := testkit.Generate(testkit.Config{Shape: testkit.Periodic, Seed: 6, Funcs: 3, Calls: 6, MaxLen: 12})
	img := wireImage("sweep", w.FuncNames, w.Linear())

	s := newInMemServer(t, ingest.Options{})
	// The pristine image must seal before we trust the sweep.
	if res := s.ServeSession(context.Background(), rwPair{bytes.NewReader(img), io.Discard}); !res.OK() {
		t.Fatalf("pristine image rejected: %s (%s)", res.Code, res.Detail)
	}

	stride := 1
	if testing.Short() {
		stride = 17
	}
	testkit.SweepBitFlips(img, stride, func(mu testkit.Mutation) { checkMutation(t, s, mu) })
	testkit.SweepTruncations(img, stride, func(mu testkit.Mutation) { checkMutation(t, s, mu) })
	testkit.SweepInflations(img, stride, func(mu testkit.Mutation) { checkMutation(t, s, mu) })

	if n := metricValue(t, s, "twpp_ingest_panics_total"); n != 0 {
		t.Fatalf("sweep caused %d contained panics", n)
	}
}

// metricValue scrapes one counter from the server's registry via the
// Prometheus text format — the same surface operators read.
func metricValue(t *testing.T, s *ingest.Server, name string) uint64 {
	t.Helper()
	var buf bytes.Buffer
	if err := s.Registry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	var v uint64
	for _, line := range bytes.Split(buf.Bytes(), []byte("\n")) {
		if n, err := fmt.Sscanf(string(line), name+" %d", &v); err == nil && n == 1 {
			return v
		}
	}
	t.Fatalf("metric %s not found", name)
	return 0
}
