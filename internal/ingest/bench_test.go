// The ingest performance snapshot (BENCH_*_ingest.json trajectory
// format): a producer fleet streams over real sockets and the report
// records end-to-end event throughput, seal latency from the server's
// own histogram, and the server-side peak heap — the bounded-memory
// claim as a measured number. Driven by `make bench-ingest`; skipped
// unless $INGEST_BENCH_OUT is set.

package ingest_test

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"twpp/internal/bench"
	"twpp/internal/ingest"
	"twpp/internal/testkit"
)

type ingestBenchReport struct {
	Producers     int     `json:"producers"`
	Sessions      int     `json:"sessions"`
	Events        uint64  `json:"events"`
	BytesIn       uint64  `json:"bytes_in"`
	WallMs        float64 `json:"wall_ms"`
	EventsPerS    float64 `json:"events_per_s"`
	SealMeanMs    float64 `json:"seal_mean_ms"`
	SessionP50Ms  float64 `json:"session_p50_ms"`
	SessionP99Ms  float64 `json:"session_p99_ms"`
	PeakHeapBytes uint64  `json:"peak_heap_bytes"`
	GoMaxProcs    int     `json:"gomaxprocs"`
	NumCPU        int     `json:"num_cpu"`
}

// TestWriteIngestBenchJSON streams a 16-producer fleet (4 rounds each)
// into the ingest server and writes the measured profile to
// $INGEST_BENCH_OUT.
func TestWriteIngestBenchJSON(t *testing.T) {
	out := os.Getenv("INGEST_BENCH_OUT")
	if out == "" {
		t.Skip("set INGEST_BENCH_OUT=path to write the ingest benchmark JSON")
	}
	const (
		producers = 16
		rounds    = 4
	)
	srv, addr := startServer(t, ingest.Options{MaxSessions: producers, Workers: 1})
	shapes := testkit.Shapes()

	// Pre-generate every workload so generation cost stays out of the
	// measured window.
	type workload struct {
		names  []string
		events []uint32
	}
	loads := make([]workload, producers)
	var totalEvents uint64
	for i := range loads {
		cfg := testkit.Config{Shape: shapes[i%len(shapes)], Seed: 200 + int64(i)}
		if cfg.Shape == testkit.DeepRecursion {
			cfg.Calls = 200
		}
		w := testkit.Generate(cfg)
		loads[i] = workload{names: w.FuncNames, events: w.Linear()}
		totalEvents += uint64(len(w.Linear())) * rounds
	}

	lat := make([][]time.Duration, producers)
	var wg sync.WaitGroup
	start := time.Now()
	peak, _, err := bench.PeakHeap(func() error {
		for i := 0; i < producers; i++ {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				lat[i] = make([]time.Duration, 0, rounds)
				for r := 0; r < rounds; r++ {
					p := &testkit.Producer{
						Addr:   addr,
						Mount:  fmt.Sprintf("bench-%d", i%4),
						Names:  loads[i].names,
						Events: loads[i].events,
					}
					s0 := time.Now()
					res, err := p.Run()
					if err != nil {
						t.Errorf("producer %d round %d: %v", i, r, err)
						return
					}
					if !res.OK() {
						t.Errorf("producer %d round %d rejected: %s (%s)", i, r, res.Code, res.Detail)
						return
					}
					lat[i] = append(lat[i], time.Since(s0))
				}
			}()
		}
		wg.Wait()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	wall := time.Since(start)
	if t.Failed() {
		return
	}

	var all []time.Duration
	for _, l := range lat {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	ms := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }
	reg := srv.Registry()
	seal := reg.Histogram("twpp_ingest_seal_seconds", nil)
	sealMean := 0.0
	if n := seal.Count(); n > 0 {
		sealMean = seal.Sum() / float64(n) * 1e3
	}
	rep := ingestBenchReport{
		Producers:     producers,
		Sessions:      len(all),
		Events:        totalEvents,
		BytesIn:       reg.Counter("twpp_ingest_bytes_in_total").Value(),
		WallMs:        ms(wall.Round(time.Microsecond)),
		EventsPerS:    float64(totalEvents) / wall.Seconds(),
		SealMeanMs:    sealMean,
		SessionP50Ms:  ms(all[len(all)/2]),
		SessionP99Ms:  ms(all[len(all)*99/100]),
		PeakHeapBytes: peak,
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		NumCPU:        runtime.NumCPU(),
	}
	data, merr := json.MarshalIndent(rep, "", "  ")
	if merr != nil {
		t.Fatal(merr)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: %.0f events/s, seal mean %.2fms, session p99 %.1fms, peak heap %d bytes",
		out, rep.EventsPerS, rep.SealMeanMs, rep.SessionP99Ms, rep.PeakHeapBytes)
}
