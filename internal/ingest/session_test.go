package ingest_test

import (
	"bytes"
	"context"
	"io"
	"net"
	"testing"
	"time"

	"twpp/internal/cfg"
	"twpp/internal/cli"
	"twpp/internal/ingest"
	"twpp/internal/segment"
	"twpp/internal/sequitur"
	"twpp/internal/testkit"
)

// rwPair joins a reader and writer into the io.ReadWriter the session
// driver accepts — the in-memory harness for deterministic protocol
// tests.
type rwPair struct {
	io.Reader
	io.Writer
}

// newInMemServer builds a server for in-memory session driving (no
// listener).
func newInMemServer(t *testing.T, opts ingest.Options) *ingest.Server {
	t.Helper()
	if opts.Dir == "" {
		opts.Dir = t.TempDir()
	}
	if opts.Workers == 0 {
		opts.Workers = 1
	}
	s, err := ingest.NewServer(opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// wireImage renders a complete valid session as wire bytes.
func wireImage(mount string, names []string, events []uint32) []byte {
	img := ingest.AppendHello(nil, mount, names)
	img = ingest.AppendEvents(img, events)
	return ingest.AppendFinish(img)
}

// Protocol violations must be rejected with the structured code the
// violation deserves — and the session must never reach the seal path.
func TestProtocolErrors(t *testing.T) {
	w := testkit.Generate(testkit.Config{Shape: testkit.Regular, Seed: 1})
	names, events := w.FuncNames, w.Linear()

	cases := []struct {
		name   string
		image  []byte
		status uint64
	}{
		{"events-before-hello", ingest.AppendEvents(nil, events), cli.ExitCorrupt},
		{"finish-before-hello", ingest.AppendFinish(nil), cli.ExitCorrupt},
		{"double-hello", ingest.AppendHello(ingest.AppendHello(nil, "m", names), "m", names), cli.ExitCorrupt},
		{"unknown-frame", ingest.AppendFrame(nil, 'Z', nil), cli.ExitCorrupt},
		{"empty-stream", nil, cli.ExitTruncated},
		{"hello-only-disconnect", ingest.AppendHello(nil, "m", names), cli.ExitTruncated},
		{"mid-events-disconnect", ingest.AppendEvents(ingest.AppendHello(nil, "m", names), events[:len(events)/2]), cli.ExitTruncated},
		{"unbalanced-finish", ingest.AppendFinish(ingest.AppendEvents(ingest.AppendHello(nil, "m", names), events[:1])), cli.ExitCorrupt},
		{"bad-mount-name", wireImage("../evil", names, events), cli.ExitCorrupt},
		{"empty-mount-name", wireImage("", names, events), cli.ExitCorrupt},
		{"enter-out-of-table", ingest.AppendEvents(ingest.AppendHello(nil, "m", names[:1]), []uint32{sequitur.EnterMarker(5)}), cli.ExitCorrupt},
	}
	s := newInMemServer(t, ingest.Options{})
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out bytes.Buffer
			res := s.ServeSession(context.Background(), rwPair{bytes.NewReader(tc.image), &out})
			if res.Status != tc.status {
				t.Fatalf("status %d (%s: %s), want %d", res.Status, res.Code, res.Detail, tc.status)
			}
			// The producer-visible RESULT frame carries the same verdict.
			got, err := ingest.ReadResult(bytes.NewReader(out.Bytes()))
			if err != nil {
				t.Fatalf("reading RESULT: %v", err)
			}
			if got.Status != tc.status || got.Code != res.Code {
				t.Fatalf("wire RESULT %+v != returned %+v", got, res)
			}
		})
	}
}

// Hellos with a broken preamble get the precise structured code.
func TestHelloPreambleErrors(t *testing.T) {
	s := newInMemServer(t, ingest.Options{})
	run := func(image []byte) ingest.Result {
		return s.ServeSession(context.Background(), rwPair{bytes.NewReader(image), io.Discard})
	}
	// Wrong magic.
	bad := ingest.AppendFrame(nil, ingest.FrameHello, []byte{0, 0, 0, 0, 1, 0, 0})
	if res := run(bad); res.Status != cli.ExitCorrupt {
		t.Errorf("bad magic: status %d (%s)", res.Status, res.Detail)
	}
	// Declared function count beyond the payload.
	p := []byte{0x54, 0x57, 0x50, 0x49, 1, 1, 'm'}
	p = append(p, 0xff, 0xff, 0x03) // numFuncs = 65535
	if res := run(ingest.AppendFrame(nil, ingest.FrameHello, p)); res.Status != cli.ExitCorrupt {
		t.Errorf("inflated func count: status %d (%s)", res.Status, res.Detail)
	}
}

// Resource limits reject with code "limit": an oversized frame, and a
// session whose event payload total exceeds the budget.
func TestLimits(t *testing.T) {
	w := testkit.Generate(testkit.Config{Shape: testkit.Regular, Seed: 2})
	t.Run("frame", func(t *testing.T) {
		s := newInMemServer(t, ingest.Options{MaxFrameBytes: 64})
		img := wireImage("m", w.FuncNames, w.Linear()) // events frame >> 64 bytes
		res := s.ServeSession(context.Background(), rwPair{bytes.NewReader(img), io.Discard})
		if res.Status != cli.ExitLimit {
			t.Fatalf("status %d (%s), want limit", res.Status, res.Detail)
		}
	})
	t.Run("session-bytes", func(t *testing.T) {
		s := newInMemServer(t, ingest.Options{MaxSessionBytes: 16})
		img := wireImage("m", w.FuncNames, w.Linear())
		res := s.ServeSession(context.Background(), rwPair{bytes.NewReader(img), io.Discard})
		if res.Status != cli.ExitLimit {
			t.Fatalf("status %d (%s), want limit", res.Status, res.Detail)
		}
	})
}

// A saturated semaphore answers "busy" immediately instead of queueing.
func TestBusyRejection(t *testing.T) {
	s, addr := startServer(t, ingest.Options{MaxSessions: 1, Workers: 1})
	w := testkit.Generate(testkit.Config{Shape: testkit.Regular, Seed: 3})

	// Hold the only slot open: HELLO, then silence (within the long
	// default idle timeout).
	hold, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer hold.Close()
	if _, err := hold.Write(ingest.AppendHello(nil, "m", w.FuncNames)); err != nil {
		t.Fatal(err)
	}

	// The second producer must get a busy RESULT promptly. The first
	// session is admitted asynchronously after Accept, so tolerate a
	// few ordering retries.
	deadline := time.Now().Add(5 * time.Second)
	for {
		p := &testkit.Producer{Addr: addr, Mount: "n", Names: w.FuncNames, Events: w.Linear()}
		res, err := p.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Status == ingest.StatusBusy {
			if res.Code != "busy" {
				t.Fatalf("busy result code %q", res.Code)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("never saw busy; last result %+v", res)
		}
		time.Sleep(10 * time.Millisecond)
	}
	hold.Close()
	_ = s
}

// Producer silence after a balanced stream seals the session (the
// instrumented program exited without a polite FINISH); silence
// mid-call-stack is a structured rejection.
func TestIdleTimeout(t *testing.T) {
	w := testkit.Generate(testkit.Config{Shape: testkit.Periodic, Seed: 4})
	events := w.Linear()

	t.Run("balanced-seals", func(t *testing.T) {
		s, addr := startServer(t, ingest.Options{IdleTimeout: 150 * time.Millisecond, Workers: 1})
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		img := ingest.AppendEvents(ingest.AppendHello(nil, "idle", w.FuncNames), events)
		if _, err := conn.Write(img); err != nil {
			t.Fatal(err)
		}
		// No FINISH: the idle deadline fires and the server seals.
		res, err := ingest.ReadResult(conn)
		if err != nil {
			t.Fatalf("reading idle RESULT: %v", err)
		}
		if !res.OK() {
			t.Fatalf("idle session not sealed: %s (%s)", res.Code, res.Detail)
		}
		if res.Detail != "sealed on idle timeout" {
			t.Errorf("detail %q", res.Detail)
		}
		if !segment.IsSegmented(s.MountDir("idle")) {
			t.Error("no container sealed")
		}
	})
	t.Run("unbalanced-rejects", func(t *testing.T) {
		_, addr := startServer(t, ingest.Options{IdleTimeout: 150 * time.Millisecond, Workers: 1})
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		// Strip the trailing EXIT: one call stays open.
		img := ingest.AppendEvents(ingest.AppendHello(nil, "idle2", w.FuncNames), events[:len(events)-1])
		if _, err := conn.Write(img); err != nil {
			t.Fatal(err)
		}
		res, err := ingest.ReadResult(conn)
		if err != nil {
			t.Fatalf("reading idle RESULT: %v", err)
		}
		if res.Status != cli.ExitCorrupt {
			t.Fatalf("unbalanced idle session: status %d (%s), want corrupt", res.Status, res.Detail)
		}
	})
}

// Three sessions streamed into one mount must extract identically to
// the offline Writer fed the same sessions in the same order — the
// multi-session merged view is semantic (per-segment bytes stay
// covered by the parity oracle).
func TestMultiSessionMountMatchesOfflineWriter(t *testing.T) {
	seeds := []int64{10, 11, 12}
	srv, addr := startServer(t, ingest.Options{Workers: 1})

	offDir := t.TempDir() + "/off"
	ow, err := segment.NewWriter(offDir, segment.WriteOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range seeds {
		w := testkit.Generate(testkit.Config{Shape: testkit.Irregular, Seed: seed})
		p := &testkit.Producer{Addr: addr, Mount: "multi", Names: w.FuncNames, Events: w.Linear()}
		res, err := p.Run()
		if err != nil || !res.OK() {
			t.Fatalf("seed %d: err=%v res=%+v", seed, err, res)
		}
		if err := ow.Add(rawToTWPP(t, w)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ow.Finish(); err != nil {
		t.Fatal(err)
	}

	got := openSet(t, srv.MountDir("multi"))
	want := openSet(t, offDir)
	nf := len(testkit.Generate(testkit.Config{Shape: testkit.Irregular, Seed: seeds[0]}).FuncNames)
	for fn := 0; fn < nf; fn++ {
		wf, werr := want.ExtractFunction(cfg.FuncID(fn))
		gf, gerr := got.ExtractFunction(cfg.FuncID(fn))
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("fn %d: offline err=%v ingest err=%v", fn, werr, gerr)
		}
		if werr != nil {
			continue
		}
		if err := testkit.EqualFunctionTWPP(wf, gf); err != nil {
			t.Errorf("fn %d: %v", fn, err)
		}
	}
}
