// Package slicing implements the three dynamic slicing algorithms of
// Agrawal & Horgan on top of the timestamped dynamic control flow
// graph, as described in §4.3.2 of Zhang & Gupta (PLDI 2001). All
// three run off one shared representation — the timestamp-annotated
// dynamic CFG — instead of the three specialized dependence graphs of
// the original paper:
//
//   - Approach 1 traverses the static program dependence graph
//     restricted to executed nodes (imprecise but cheap);
//   - Approach 2 traverses only dependence edges that were exercised
//     during the execution, at node granularity;
//   - Approach 3 distinguishes statement instances via timestamps,
//     yielding the precise dynamic slice.
//
// The approaches are ordered by precision: Slice3 ⊆ Slice2 ⊆ Slice1.
//
// Slicing operates on per-statement CFGs (cfg.PerStatement) so block
// ids coincide with statement numbers, as in the paper's Figures 10-11.
package slicing

import (
	"fmt"
	"sort"

	"twpp/internal/cfg"
	"twpp/internal/core"
	"twpp/internal/dataflow"
	"twpp/internal/wpp"
)

// Criterion identifies what to slice on: the values of Vars at the
// given block. Time selects the execution instance for the
// instance-precise Approach 3 (0 means the block's last execution);
// Approaches 1 and 2 ignore it.
type Criterion struct {
	Block cfg.BlockID
	Vars  []cfg.Loc
	Time  core.Timestamp
}

// Slice is the result: the set of blocks (statements) the criterion
// transitively depends on, criterion included.
type Slice struct {
	Blocks []cfg.BlockID
	// Visited counts dependence queries processed, a rough cost
	// measure.
	Visited int
}

// Contains reports whether block b is in the slice.
func (s *Slice) Contains(b cfg.BlockID) bool {
	for _, x := range s.Blocks {
		if x == b {
			return true
		}
	}
	return false
}

// Slicer prepares the shared state for slicing one function execution:
// the static graph, its dependence information, and the dynamic trace.
type Slicer struct {
	G  *cfg.Graph
	TG *dataflow.TGraph

	path     wpp.PathTrace
	uses     map[cfg.BlockID][]cfg.Loc
	defs     map[cfg.BlockID][]cfg.Loc
	ctrlDeps map[cfg.BlockID][]cfg.BlockID
	reach    *dataflow.ReachInfo

	// dataDepAt[t] lists, per use of the block executing at timestamp
	// t+1, the timestamp of the definition instance it consumed (0 if
	// the value predates the trace).
	dataDepAt [][]depInstance
	// ctrlDepAt[t] is the timestamp of the controlling branch instance
	// of the execution at t+1 (0 if none).
	ctrlDepAt []core.Timestamp
}

type depInstance struct {
	loc  cfg.Loc
	defT core.Timestamp
}

// New builds a Slicer for the given static graph and dynamic trace.
func New(g *cfg.Graph, tg *dataflow.TGraph) *Slicer {
	s := &Slicer{
		G:        g,
		TG:       tg,
		path:     tg.Path(),
		uses:     make(map[cfg.BlockID][]cfg.Loc),
		defs:     make(map[cfg.BlockID][]cfg.Loc),
		ctrlDeps: cfg.ControlDeps(g),
		reach:    dataflow.ReachingDefs(g),
	}
	for _, b := range g.Blocks {
		eff := cfg.BlockEffects(b)
		s.uses[b.ID] = eff.Uses
		s.defs[b.ID] = eff.Defs
	}
	s.replay()
	return s
}

// replay walks the path once, recording per-instance data and control
// dependences.
func (s *Slicer) replay() {
	lastDef := make(map[cfg.Loc]core.Timestamp)
	lastExec := make(map[cfg.BlockID]core.Timestamp)
	s.dataDepAt = make([][]depInstance, len(s.path))
	s.ctrlDepAt = make([]core.Timestamp, len(s.path))
	for i, b := range s.path {
		t := core.Timestamp(i + 1)
		for _, u := range s.uses[b] {
			s.dataDepAt[i] = append(s.dataDepAt[i], depInstance{loc: u, defT: lastDef[u]})
		}
		var ctrl core.Timestamp
		for _, cd := range s.ctrlDeps[b] {
			if le := lastExec[cd]; le > ctrl && le < t {
				ctrl = le
			}
		}
		s.ctrlDepAt[i] = ctrl
		for _, d := range s.defs[b] {
			lastDef[d] = t
		}
		lastExec[b] = t
	}
}

// critVars returns the criterion variables, defaulting to the uses of
// the criterion block.
func (s *Slicer) critVars(c Criterion) []cfg.Loc {
	if len(c.Vars) > 0 {
		return c.Vars
	}
	return s.uses[c.Block]
}

func (s *Slicer) executed(b cfg.BlockID) bool { return s.TG.Node(b) != nil }

// finish sorts and packages a block set.
func finish(set map[cfg.BlockID]bool, visited int) *Slice {
	out := make([]cfg.BlockID, 0, len(set))
	for b := range set {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return &Slice{Blocks: out, Visited: visited}
}

// Approach1 computes the executed-node static-PDG slice: the backward
// closure over static data and control dependence edges, visiting only
// executed nodes.
func (s *Slicer) Approach1(c Criterion) (*Slice, error) {
	if s.G.Block(c.Block) == nil {
		return nil, fmt.Errorf("slicing: unknown block %d", c.Block)
	}
	if !s.executed(c.Block) {
		return nil, fmt.Errorf("slicing: block %d never executed", c.Block)
	}
	slice := map[cfg.BlockID]bool{c.Block: true}
	visited := 0
	var work []cfg.BlockID

	addDefsOf := func(b cfg.BlockID, locs []cfg.Loc) {
		for _, u := range locs {
			for _, d := range s.reach.DefsReaching(b, u) {
				visited++
				if s.executed(d) && !slice[d] {
					slice[d] = true
					work = append(work, d)
				}
			}
		}
	}
	addCtrl := func(b cfg.BlockID) {
		for _, cd := range s.ctrlDeps[b] {
			visited++
			if s.executed(cd) && !slice[cd] {
				slice[cd] = true
				work = append(work, cd)
			}
		}
	}

	addDefsOf(c.Block, s.critVars(c))
	addCtrl(c.Block)
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		addDefsOf(b, s.uses[b])
		addCtrl(b)
	}
	return finish(slice, visited), nil
}

// exercisedEdges computes the dynamic dependence edges at node
// granularity: data edges (def block -> use block, per location) and
// control edges that were exercised by at least one instance.
func (s *Slicer) exercisedEdges() (data map[cfg.BlockID][]cfg.BlockID, ctrl map[cfg.BlockID][]cfg.BlockID) {
	dset := make(map[[2]cfg.BlockID]bool)
	cset := make(map[[2]cfg.BlockID]bool)
	for i, b := range s.path {
		for _, dep := range s.dataDepAt[i] {
			if dep.defT > 0 {
				dset[[2]cfg.BlockID{s.path[dep.defT-1], b}] = true
			}
		}
		if ct := s.ctrlDepAt[i]; ct > 0 {
			cset[[2]cfg.BlockID{s.path[ct-1], b}] = true
		}
	}
	data = make(map[cfg.BlockID][]cfg.BlockID)
	ctrl = make(map[cfg.BlockID][]cfg.BlockID)
	for e := range dset {
		data[e[1]] = append(data[e[1]], e[0])
	}
	for e := range cset {
		ctrl[e[1]] = append(ctrl[e[1]], e[0])
	}
	return data, ctrl
}

// Approach2 computes the exercised-edge slice: backward closure over
// dependence edges that occurred during execution, without
// distinguishing instances.
func (s *Slicer) Approach2(c Criterion) (*Slice, error) {
	if !s.executed(c.Block) {
		return nil, fmt.Errorf("slicing: block %d never executed", c.Block)
	}
	data, ctrl := s.exercisedEdges()
	slice := map[cfg.BlockID]bool{c.Block: true}
	visited := 0
	var work []cfg.BlockID

	// Seed: the exercised definitions of the criterion variables at
	// any execution of the criterion block.
	critVars := map[cfg.Loc]bool{}
	for _, v := range s.critVars(c) {
		critVars[v] = true
	}
	for i, b := range s.path {
		if b != c.Block {
			continue
		}
		for _, dep := range s.dataDepAt[i] {
			if critVars[dep.loc] && dep.defT > 0 {
				db := s.path[dep.defT-1]
				visited++
				if !slice[db] {
					slice[db] = true
					work = append(work, db)
				}
			}
		}
		if ct := s.ctrlDepAt[i]; ct > 0 {
			cb := s.path[ct-1]
			visited++
			if !slice[cb] {
				slice[cb] = true
				work = append(work, cb)
			}
		}
	}

	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		for _, d := range data[b] {
			visited++
			if !slice[d] {
				slice[d] = true
				work = append(work, d)
			}
		}
		for _, cd := range ctrl[b] {
			visited++
			if !slice[cd] {
				slice[cd] = true
				work = append(work, cd)
			}
		}
	}
	return finish(slice, visited), nil
}

// Approach3 computes the precise dynamic slice: the backward closure
// over per-instance dependences starting from one execution instance
// of the criterion block.
func (s *Slicer) Approach3(c Criterion) (*Slice, error) {
	node := s.TG.Node(c.Block)
	if node == nil {
		return nil, fmt.Errorf("slicing: block %d never executed", c.Block)
	}
	t := c.Time
	if t == 0 {
		t = node.Times.Max()
	}
	if !node.Times.Contains(t) {
		return nil, fmt.Errorf("slicing: block %d did not execute at time %d", c.Block, t)
	}

	slice := map[cfg.BlockID]bool{c.Block: true}
	seen := map[core.Timestamp]bool{}
	visited := 0
	var work []core.Timestamp

	critVars := map[cfg.Loc]bool{}
	for _, v := range s.critVars(c) {
		critVars[v] = true
	}
	pushInstance := func(dt core.Timestamp) {
		visited++
		if dt > 0 && !seen[dt] {
			seen[dt] = true
			slice[s.path[dt-1]] = true
			work = append(work, dt)
		}
	}
	// Seed from the chosen instance of the criterion.
	i := int(t - 1)
	for _, dep := range s.dataDepAt[i] {
		if critVars[dep.loc] {
			pushInstance(dep.defT)
		}
	}
	pushInstance(s.ctrlDepAt[i])

	for len(work) > 0 {
		ti := work[len(work)-1]
		work = work[:len(work)-1]
		i := int(ti - 1)
		for _, dep := range s.dataDepAt[i] {
			pushInstance(dep.defT)
		}
		pushInstance(s.ctrlDepAt[i])
	}
	return finish(slice, visited), nil
}
