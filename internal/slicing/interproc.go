package slicing

import (
	"fmt"

	"twpp/internal/cfg"
	"twpp/internal/core"
	"twpp/internal/dataflow"
	"twpp/internal/minilang"
	"twpp/internal/wpp"
)

// Interprocedural, instance-precise dynamic slicing over a whole
// TWPP. The intraprocedural Approach 3 is extended across the dynamic
// call graph in both directions (the extension §4.2 of the paper
// sketches: "analyzing path traces of multiple functions in concert"):
//
//   - down: when a sliced statement instance contains a call, the
//     callee invocation that executed there joins the slice through
//     its return-value computation, and — because arrays are passed
//     by reference — through its array stores when an array location
//     fed the slice;
//
//   - up: when a sliced use's value predates the frame (a parameter,
//     or an array passed in), the slice continues at the caller's
//     call-site instance, with parameters mapped back to argument
//     expressions.

// SliceSite is one sliced statement: a block of a specific function.
type SliceSite struct {
	Fn    cfg.FuncID
	Block cfg.BlockID
}

// InterSlice is the result of an interprocedural slice.
type InterSlice struct {
	// Sites lists the sliced (function, block) pairs, sorted by
	// function then block.
	Sites []SliceSite
	// Instances counts the distinct statement instances visited.
	Instances int
}

// Contains reports membership.
func (s *InterSlice) Contains(fn cfg.FuncID, b cfg.BlockID) bool {
	for _, site := range s.Sites {
		if site.Fn == fn && site.Block == b {
			return true
		}
	}
	return false
}

// frameKey caches per-unique-trace replay data: two call instances
// sharing (function, trace index) execute the same block sequence, so
// their intra-frame dependence structure is identical.
type frameKey struct {
	fn  cfg.FuncID
	idx int
}

// frameData is the replayed dependence information of one unique
// trace.
type frameData struct {
	path wpp.PathTrace
	// dataDepAt[t-1] lists, per use of the block at time t, the
	// defining instance time (0 = predates the frame).
	dataDepAt [][]frameDep
	// ctrlDepAt[t-1] is the controlling branch instance (0 = none).
	ctrlDepAt []core.Timestamp
	// callAt[t-1] is the index range of children called at position t
	// (child call positions are path positions; index into the node's
	// Children is resolved per node since positions align).
	callsAtPos map[int]bool
	// retTimes lists the times at which return-carrying blocks (Ret
	// with a value) executed, ascending.
	retTimes []core.Timestamp
}

type frameDep struct {
	loc  cfg.Loc
	defT core.Timestamp
}

// InterSlicer prepares shared state for interprocedural slicing.
type InterSlicer struct {
	Prog *cfg.Program
	TW   *core.TWPP

	parents map[*wpp.CallNode]parentRef
	frames  map[frameKey]*frameData
	// uses/defs/ctrl are static per-function tables.
	uses map[cfg.FuncID]map[cfg.BlockID][]cfg.Loc
	defs map[cfg.FuncID]map[cfg.BlockID][]cfg.Loc
	ctrl map[cfg.FuncID]map[cfg.BlockID][]cfg.BlockID
	// arrayWriter[f] reports whether f (transitively) stores to any
	// array.
	arrayWriter map[cfg.FuncID]bool
}

type parentRef struct {
	node  *wpp.CallNode
	index int
}

// NewInter builds an interprocedural slicer for the program and its
// TWPP.
func NewInter(prog *cfg.Program, tw *core.TWPP) *InterSlicer {
	s := &InterSlicer{
		Prog:        prog,
		TW:          tw,
		parents:     make(map[*wpp.CallNode]parentRef),
		frames:      make(map[frameKey]*frameData),
		uses:        make(map[cfg.FuncID]map[cfg.BlockID][]cfg.Loc),
		defs:        make(map[cfg.FuncID]map[cfg.BlockID][]cfg.Loc),
		ctrl:        make(map[cfg.FuncID]map[cfg.BlockID][]cfg.BlockID),
		arrayWriter: make(map[cfg.FuncID]bool),
	}
	var link func(n *wpp.CallNode)
	link = func(n *wpp.CallNode) {
		for i, c := range n.Children {
			s.parents[c] = parentRef{node: n, index: i}
			link(c)
		}
	}
	if tw.Root != nil {
		link(tw.Root)
	}
	for f, g := range prog.Graphs {
		fid := cfg.FuncID(f)
		s.uses[fid] = make(map[cfg.BlockID][]cfg.Loc, len(g.Blocks))
		s.defs[fid] = make(map[cfg.BlockID][]cfg.Loc, len(g.Blocks))
		for _, b := range g.Blocks {
			eff := cfg.BlockEffects(b)
			s.uses[fid][b.ID] = eff.Uses
			s.defs[fid][b.ID] = eff.Defs
		}
		s.ctrl[fid] = cfg.ControlDeps(g)
	}
	s.computeArrayWriters()
	return s
}

// computeArrayWriters runs the transitive "may store to an array"
// summary over the static call graph.
func (s *InterSlicer) computeArrayWriters() {
	calls := make(map[cfg.FuncID][]cfg.FuncID)
	for f, g := range s.Prog.Graphs {
		fid := cfg.FuncID(f)
		for _, b := range g.Blocks {
			eff := cfg.BlockEffects(b)
			for _, d := range eff.Defs {
				if d.Array {
					s.arrayWriter[fid] = true
				}
			}
			for _, callee := range eff.Calls {
				if fd := s.Prog.Src.Func(callee); fd != nil {
					calls[fid] = append(calls[fid], cfg.FuncID(fd.Index))
				}
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for f, cs := range calls {
			if s.arrayWriter[f] {
				continue
			}
			for _, c := range cs {
				if s.arrayWriter[c] {
					s.arrayWriter[f] = true
					changed = true
					break
				}
			}
		}
	}
}

// frame returns (building and caching) the replayed dependence data of
// a call node's unique trace.
func (s *InterSlicer) frame(node *wpp.CallNode) (*frameData, error) {
	key := frameKey{fn: node.Fn, idx: node.TraceIdx}
	if fd, ok := s.frames[key]; ok {
		return fd, nil
	}
	ft := &s.TW.Funcs[node.Fn]
	g, err := dataflow.Build(ft, node.TraceIdx)
	if err != nil {
		return nil, err
	}
	path := g.Path()
	fd := &frameData{
		path:       path,
		dataDepAt:  make([][]frameDep, len(path)),
		ctrlDepAt:  make([]core.Timestamp, len(path)),
		callsAtPos: make(map[int]bool),
	}
	graph := s.Prog.Graph(node.Fn)
	// Array locations visible in this function: a call to an
	// array-writing callee must count as defining them (arrays are
	// by-reference, so callee stores reach the caller's arrays; the
	// standard field- and alias-insensitive approximation).
	arrLocs := map[cfg.Loc]bool{}
	writerCallBlock := map[cfg.BlockID]bool{}
	for _, b := range graph.Blocks {
		eff := cfg.BlockEffects(b)
		for _, u := range eff.Uses {
			if u.Array {
				arrLocs[u] = true
			}
		}
		for _, d := range eff.Defs {
			if d.Array {
				arrLocs[d] = true
			}
		}
		for _, callee := range eff.Calls {
			if fdcl := s.Prog.Src.Func(callee); fdcl != nil && s.arrayWriter[cfg.FuncID(fdcl.Index)] {
				writerCallBlock[b.ID] = true
			}
		}
	}

	lastDef := make(map[cfg.Loc]core.Timestamp)
	lastExec := make(map[cfg.BlockID]core.Timestamp)
	for i, b := range path {
		t := core.Timestamp(i + 1)
		for _, u := range s.uses[node.Fn][b] {
			fd.dataDepAt[i] = append(fd.dataDepAt[i], frameDep{loc: u, defT: lastDef[u]})
		}
		var ctl core.Timestamp
		for _, cd := range s.ctrl[node.Fn][b] {
			if le := lastExec[cd]; le > ctl && le < t {
				ctl = le
			}
		}
		fd.ctrlDepAt[i] = ctl
		for _, d := range s.defs[node.Fn][b] {
			lastDef[d] = t
		}
		if writerCallBlock[b] {
			for l := range arrLocs {
				lastDef[l] = t
			}
		}
		lastExec[b] = t
		if blk := graph.Block(b); blk != nil {
			if r, ok := blk.Term.(*cfg.Ret); ok && r.Value != nil {
				fd.retTimes = append(fd.retTimes, t)
			}
		}
	}
	s.frames[key] = fd
	return fd, nil
}

// callsAt returns the children of node invoked at path position pos,
// in call order.
func callsAt(node *wpp.CallNode, pos int) []*wpp.CallNode {
	var out []*wpp.CallNode
	for i, c := range node.Children {
		if node.ChildPos[i] == pos {
			out = append(out, c)
		}
	}
	return out
}

// instance identifies one statement execution across the WPP.
type instanceKey struct {
	node *wpp.CallNode
	t    core.Timestamp
}

// Slice computes the interprocedural instance-precise slice from the
// given criterion instance inside the given call node. Criterion
// semantics match Approach3: Time 0 selects the block's last
// execution in that call; Vars default to the block's uses.
func (s *InterSlicer) Slice(node *wpp.CallNode, crit Criterion) (*InterSlice, error) {
	fd, err := s.frame(node)
	if err != nil {
		return nil, err
	}
	// Resolve the criterion time.
	t := crit.Time
	if t == 0 {
		for i := len(fd.path) - 1; i >= 0; i-- {
			if fd.path[i] == crit.Block {
				t = core.Timestamp(i + 1)
				break
			}
		}
	}
	if t == 0 || int(t) > len(fd.path) || fd.path[t-1] != crit.Block {
		return nil, fmt.Errorf("slicing: block %d did not execute at time %d in this call", crit.Block, t)
	}

	sites := map[SliceSite]bool{{Fn: node.Fn, Block: crit.Block}: true}
	seen := map[instanceKey]bool{}
	var work []instanceKey

	push := func(n *wpp.CallNode, ti core.Timestamp) {
		if ti <= 0 {
			return
		}
		k := instanceKey{node: n, t: ti}
		if seen[k] {
			return
		}
		seen[k] = true
		work = append(work, k)
	}

	// visitDeps enqueues the dependences of instance (n, ti),
	// restricted to locs when locs is non-nil.
	visitDeps := func(n *wpp.CallNode, nfd *frameData, ti core.Timestamp, locs map[cfg.Loc]bool) error {
		i := int(ti - 1)
		for _, dep := range nfd.dataDepAt[i] {
			if locs != nil && !locs[dep.loc] {
				continue
			}
			if dep.defT > 0 {
				push(n, dep.defT)
				// If the defining instance's block made calls that may
				// have produced the value (array stores by reference),
				// the call resolution happens when that instance is
				// processed.
				continue
			}
			// Value predates the frame: climb to the caller.
			if err := s.climb(n, dep.loc, push, sites); err != nil {
				return err
			}
		}
		push(n, nfd.ctrlDepAt[i])
		return nil
	}

	// Seed.
	critLocs := map[cfg.Loc]bool{}
	for _, v := range crit.Vars {
		critLocs[v] = true
	}
	if len(critLocs) == 0 {
		critLocs = nil
	}
	if err := visitDeps(node, fd, t, critLocs); err != nil {
		return nil, err
	}
	// The criterion block itself may contain calls feeding it.
	if err := s.descend(node, fd, t, push, sites); err != nil {
		return nil, err
	}

	instances := 1
	for len(work) > 0 {
		k := work[len(work)-1]
		work = work[:len(work)-1]
		instances++
		nfd, err := s.frame(k.node)
		if err != nil {
			return nil, err
		}
		blk := nfd.path[k.t-1]
		sites[SliceSite{Fn: k.node.Fn, Block: blk}] = true
		if err := visitDeps(k.node, nfd, k.t, nil); err != nil {
			return nil, err
		}
		if err := s.descend(k.node, nfd, k.t, push, sites); err != nil {
			return nil, err
		}
	}

	out := &InterSlice{Instances: instances}
	for site := range sites {
		out.Sites = append(out.Sites, site)
	}
	sortSites(out.Sites)
	return out, nil
}

// descend walks into callees invoked by the instance (node, t): the
// callee's return-value computation joins the slice (and its own
// dependences follow via the worklist).
func (s *InterSlicer) descend(node *wpp.CallNode, fd *frameData, t core.Timestamp, push func(*wpp.CallNode, core.Timestamp), sites map[SliceSite]bool) error {
	kids := callsAt(node, int(t))
	for _, kid := range kids {
		kfd, err := s.frame(kid)
		if err != nil {
			return err
		}
		// The callee contributes through its returned value: slice
		// from the last return-carrying instance.
		if n := len(kfd.retTimes); n > 0 {
			push(kid, kfd.retTimes[n-1])
		}
		// And through array stores, when the callee may write arrays
		// (by-reference effects): every array-store instance can feed
		// the caller, so include the callee's store instances.
		if s.arrayWriter[kid.Fn] {
			for i, b := range kfd.path {
				for _, d := range s.defs[kid.Fn][b] {
					if d.Array {
						push(kid, core.Timestamp(i+1))
						break
					}
				}
			}
		}
	}
	return nil
}

// climb continues a dependence whose value predates the frame: if loc
// is a parameter (or a by-reference array parameter), the slice
// continues at the caller's call-site instance through the argument
// expression.
func (s *InterSlicer) climb(node *wpp.CallNode, loc cfg.Loc, push func(*wpp.CallNode, core.Timestamp), sites map[SliceSite]bool) error {
	ref, ok := s.parents[node]
	if !ok {
		return nil // main's entry: input or undefined, nothing to add
	}
	parent := ref.node
	pos := parent.ChildPos[ref.index]
	if pos == 0 {
		// Called before the parent executed any block (impossible for
		// traced programs whose entry block always runs first).
		return nil
	}
	pfd, err := s.frame(parent)
	if err != nil {
		return err
	}
	// Map the parameter back to the argument expression of the call
	// site, then continue the data dependence at the call-site
	// instance for the argument's uses.
	callBlock := pfd.path[pos-1]
	sites[SliceSite{Fn: parent.Fn, Block: callBlock}] = true
	push(parent, core.Timestamp(pos))

	// Fine-grained mapping: find the call expression in the call-site
	// block and push the defs of the specific argument's uses. The
	// coarse push above already includes the call-site instance (whose
	// visitDeps covers all of its uses), so the mapping here only adds
	// precision when the block has multiple statements; with
	// per-statement CFGs the coarse version is exact enough, but we
	// keep the argument resolution for array locations so the caller's
	// array identity survives renaming.
	_ = s.argumentLocs(parent.Fn, callBlock, node.Fn, loc)
	return nil
}

// argumentLocs maps a callee location (parameter or array parameter)
// to the caller locations mentioned in the corresponding argument of
// the call to callee inside block b of function f. Returns nil when
// the mapping cannot be resolved.
func (s *InterSlicer) argumentLocs(f cfg.FuncID, b cfg.BlockID, callee cfg.FuncID, loc cfg.Loc) []cfg.Loc {
	g := s.Prog.Graph(f)
	if g == nil {
		return nil
	}
	blk := g.Block(b)
	if blk == nil {
		return nil
	}
	calleeDecl := s.Prog.Src.Funcs[callee]
	paramIdx := -1
	for i, p := range calleeDecl.Params {
		if p == loc.Var {
			paramIdx = i
			break
		}
	}
	if paramIdx < 0 {
		return nil
	}
	var out []cfg.Loc
	var scan func(e minilang.Expr)
	scan = func(e minilang.Expr) {
		call, ok := e.(*minilang.CallExpr)
		if ok && call.Name == calleeDecl.Name && paramIdx < len(call.Args) {
			var eff cfg.Effects
			cfg.ExprEffects(call.Args[paramIdx], &eff)
			out = append(out, eff.Uses...)
			if loc.Array {
				// The argument names the caller's array object.
				if id, ok := call.Args[paramIdx].(*minilang.Ident); ok {
					out = append(out, cfg.Loc{Var: id.Name, Array: true})
				}
			}
		}
		minilang.Walk(e, func(n minilang.Node) bool { return true })
	}
	for _, st := range blk.Stmts {
		minilang.Walk(st, func(n minilang.Node) bool {
			if e, ok := n.(minilang.Expr); ok {
				scan(e)
			}
			return true
		})
	}
	return out
}

func sortSites(sites []SliceSite) {
	for i := 1; i < len(sites); i++ {
		for j := i; j > 0; j-- {
			a, b := sites[j-1], sites[j]
			if a.Fn < b.Fn || (a.Fn == b.Fn && a.Block <= b.Block) {
				break
			}
			sites[j-1], sites[j] = sites[j], sites[j-1]
		}
	}
}
