package slicing

import (
	"testing"

	"twpp/internal/cfg"
	"twpp/internal/core"
	"twpp/internal/dataflow"
	"twpp/internal/interp"
	"twpp/internal/minilang"
	"twpp/internal/trace"
	"twpp/internal/wpp"
)

// buildInter traces src and prepares the interprocedural slicer.
func buildInter(t *testing.T, src string, input []int64) (*InterSlicer, *cfg.Program) {
	t.Helper()
	parsed, err := minilang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := cfg.Build(parsed, cfg.PerStatement)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(parsed.Funcs))
	for i, fn := range parsed.Funcs {
		names[i] = fn.Name
	}
	b := trace.NewBuilder(names)
	if _, err := interp.Run(prog, b, input, interp.Limits{}); err != nil {
		t.Fatal(err)
	}
	c, _ := wpp.Compact(b.Finish())
	return NewInter(prog, core.FromCompacted(c)), prog
}

// blockOf finds the block containing the statement with the given
// source text in function fn.
func blockOf(t *testing.T, prog *cfg.Program, fn cfg.FuncID, text string) cfg.BlockID {
	t.Helper()
	g := prog.Graph(fn)
	for _, b := range g.Blocks {
		for _, s := range b.Stmts {
			if minilang.StmtString(s) == text {
				return b.ID
			}
		}
	}
	t.Fatalf("statement %q not found in function %d:\n%s", text, fn, g)
	return 0
}

func fnID(t *testing.T, prog *cfg.Program, name string) cfg.FuncID {
	t.Helper()
	fd := prog.Src.Func(name)
	if fd == nil {
		t.Fatalf("function %q not found", name)
	}
	return cfg.FuncID(fd.Index)
}

func TestInterSliceDescendsIntoCallee(t *testing.T) {
	// The printed value flows through square's return: the slice must
	// include square's return computation, but not the unrelated
	// "noise" statement in main.
	src := `
func main() {
    var a = 3;
    var noise = 99;
    var b = square(a);
    print(b);
}
func square(x) {
    var y = x * x;
    return y;
}
`
	s, prog := buildInter(t, src, nil)
	mainID := fnID(t, prog, "main")
	sqID := fnID(t, prog, "square")
	crit := Criterion{Block: blockOf(t, prog, mainID, "print(b);")}
	sl, err := s.Slice(s.TW.Root, crit)
	if err != nil {
		t.Fatal(err)
	}
	if !sl.Contains(sqID, blockOf(t, prog, sqID, "var y = (x * x);")) {
		t.Errorf("slice missing callee computation: %v", sl.Sites)
	}
	if !sl.Contains(mainID, blockOf(t, prog, mainID, "var a = 3;")) {
		t.Errorf("slice missing argument source (via parameter climb): %v", sl.Sites)
	}
	if sl.Contains(mainID, blockOf(t, prog, mainID, "var noise = 99;")) {
		t.Errorf("slice includes unrelated statement: %v", sl.Sites)
	}
}

func TestInterSliceClimbsToCaller(t *testing.T) {
	// Slicing inside the callee on its parameter must reach the
	// caller's argument definition.
	src := `
func main() {
    var seed = 7;
    var unrelated = 1;
    use(seed + 1);
    print(unrelated);
}
func use(v) {
    var w = v * 2;
    print(w);
}
`
	s, prog := buildInter(t, src, nil)
	mainID := fnID(t, prog, "main")
	useID := fnID(t, prog, "use")
	useNode := s.TW.Root.Children[0]
	if useNode.Fn != useID {
		t.Fatalf("unexpected DCG shape")
	}
	crit := Criterion{Block: blockOf(t, prog, useID, "print(w);")}
	sl, err := s.Slice(useNode, crit)
	if err != nil {
		t.Fatal(err)
	}
	if !sl.Contains(useID, blockOf(t, prog, useID, "var w = (v * 2);")) {
		t.Errorf("slice missing local dep: %v", sl.Sites)
	}
	if !sl.Contains(mainID, blockOf(t, prog, mainID, "var seed = 7;")) {
		t.Errorf("slice missing caller argument source: %v", sl.Sites)
	}
	if sl.Contains(mainID, blockOf(t, prog, mainID, "var unrelated = 1;")) {
		t.Errorf("slice includes unrelated caller statement: %v", sl.Sites)
	}
}

func TestInterSliceArrayEffects(t *testing.T) {
	// The callee stores into the caller's array; the printed element
	// flows through that store.
	src := `
func main() {
    var buf = alloc(4);
    fill(buf, 21);
    print(buf[0]);
}
func fill(arr, v) {
    arr[0] = v * 2;
    return 0;
}
`
	s, prog := buildInter(t, src, nil)
	fillID := fnID(t, prog, "fill")
	mainID := fnID(t, prog, "main")
	crit := Criterion{Block: blockOf(t, prog, mainID, "print(buf[0]);")}
	sl, err := s.Slice(s.TW.Root, crit)
	if err != nil {
		t.Fatal(err)
	}
	if !sl.Contains(fillID, blockOf(t, prog, fillID, "arr[0] = (v * 2);")) {
		t.Errorf("slice missing callee array store: %v", sl.Sites)
	}
}

func TestInterSliceTransitiveCalls(t *testing.T) {
	// Three-deep call chain: main -> outer -> inner.
	src := `
func main() {
    var x = 5;
    print(outer(x));
}
func outer(a) {
    return inner(a) + 1;
}
func inner(b) {
    return b * 3;
}
`
	s, prog := buildInter(t, src, nil)
	innerID := fnID(t, prog, "inner")
	mainID := fnID(t, prog, "main")
	crit := Criterion{Block: blockOf(t, prog, mainID, "print(outer(x));")}
	sl, err := s.Slice(s.TW.Root, crit)
	if err != nil {
		t.Fatal(err)
	}
	// inner's return computation must appear.
	found := false
	for _, site := range sl.Sites {
		if site.Fn == innerID {
			found = true
		}
	}
	if !found {
		t.Errorf("slice missing the transitive callee: %v", sl.Sites)
	}
	if !sl.Contains(mainID, blockOf(t, prog, mainID, "var x = 5;")) {
		t.Errorf("slice missing the original argument: %v", sl.Sites)
	}
}

func TestInterSliceInstancePrecision(t *testing.T) {
	// Two calls to the same function with different arguments: slicing
	// the second print must not pull in the first call's argument
	// chain... at site granularity both calls share blocks, but the
	// sliced *instances* are distinguishable via Instances counting.
	src := `
func main() {
    var p = 1;
    var q = 2;
    var r1 = id(p);
    var r2 = id(q);
    print(r2);
}
func id(v) { return v; }
`
	s, prog := buildInter(t, src, nil)
	mainID := fnID(t, prog, "main")
	crit := Criterion{Block: blockOf(t, prog, mainID, "print(r2);")}
	sl, err := s.Slice(s.TW.Root, crit)
	if err != nil {
		t.Fatal(err)
	}
	if !sl.Contains(mainID, blockOf(t, prog, mainID, "var q = 2;")) {
		t.Errorf("slice missing q: %v", sl.Sites)
	}
	if sl.Contains(mainID, blockOf(t, prog, mainID, "var p = 1;")) {
		t.Errorf("instance precision lost: p in slice %v", sl.Sites)
	}
}

func TestInterSliceErrors(t *testing.T) {
	src := `
func main() {
    var x = 1;
    print(x);
}
`
	s, prog := buildInter(t, src, nil)
	_ = prog
	if _, err := s.Slice(s.TW.Root, Criterion{Block: 99}); err == nil {
		t.Error("unknown block: want error")
	}
	if _, err := s.Slice(s.TW.Root, Criterion{Block: 1, Time: 999}); err == nil {
		t.Error("bad time: want error")
	}
}

func TestInterMatchesIntraOnLeafFrame(t *testing.T) {
	// On a call-free program the interprocedural slicer must agree
	// with Approach3 at block granularity.
	src := `
func main() {
    read n;
    var a = 1;
    var b = 2;
    if (n > 0) {
        a = b + 1;
    }
    print(a);
}
`
	s, prog := buildInter(t, src, []int64{5})
	mainID := fnID(t, prog, "main")
	printBlk := blockOf(t, prog, mainID, "print(a);")

	inter, err := s.Slice(s.TW.Root, Criterion{Block: printBlk})
	if err != nil {
		t.Fatal(err)
	}
	// Intraprocedural reference.
	parsed, _ := minilang.Parse(src)
	p2, _ := cfg.Build(parsed, cfg.PerStatement)
	names := []string{"main"}
	tb := trace.NewBuilder(names)
	if _, err := interp.Run(p2, tb, []int64{5}, interp.Limits{}); err != nil {
		t.Fatal(err)
	}
	w := tb.Finish()
	tg := dataflow.BuildFromPath(wpp.PathTrace(w.Traces[w.Root.Trace]))
	intra := New(p2.Graphs[0], tg)
	a3, err := intra.Approach3(Criterion{Block: printBlk})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range a3.Blocks {
		if !inter.Contains(mainID, b) {
			t.Errorf("interprocedural slice missing intra block %d: %v vs %v", b, inter.Sites, a3.Blocks)
		}
	}
	for _, site := range inter.Sites {
		if !a3.Contains(site.Block) {
			t.Errorf("interprocedural slice has extra block %d: %v vs %v", site.Block, inter.Sites, a3.Blocks)
		}
	}
}
