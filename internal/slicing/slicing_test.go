package slicing

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"twpp/internal/cfg"
	"twpp/internal/dataflow"
	"twpp/internal/interp"
	"twpp/internal/minilang"
	"twpp/internal/trace"
	"twpp/internal/wpp"
)

// figure10Src is the paper's Figure 10 example program. With
// per-statement CFGs the block ids coincide with the paper's statement
// numbers 1-14 (15 is the synthetic exit).
const figure10Src = `
func main() {
    read N;
    var I = 1;
    var J = 0;
    while (I <= N) {
        read X;
        if (X < 0) {
            Y = f1(X);
        } else {
            Y = f2(X);
        }
        Z = f3(Y);
        print(Z);
        J = 1;
        I = I + 1;
    }
    Z = Z + J;
    print(Z);
}
func f1(x) { return 0 - x; }
func f2(x) { return x * 2; }
func f3(y) { return y + 1; }
`

// runMain parses src, executes it under tracing with the given input,
// and returns main's static graph plus the dynamic TGraph of main's
// (single) invocation.
func runMain(t *testing.T, src string, input []int64) (*cfg.Graph, *dataflow.TGraph) {
	t.Helper()
	prog, err := minilang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := cfg.Build(prog, cfg.PerStatement)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(prog.Funcs))
	for i, fn := range prog.Funcs {
		names[i] = fn.Name
	}
	b := trace.NewBuilder(names)
	if _, err := interp.Run(p, b, input, interp.Limits{}); err != nil {
		t.Fatal(err)
	}
	w := b.Finish()
	mainTrace := wpp.PathTrace(w.Traces[w.Root.Trace])
	return p.Graphs[p.MainID()], dataflow.BuildFromPath(mainTrace)
}

func ids(blocks ...int) []cfg.BlockID {
	out := make([]cfg.BlockID, len(blocks))
	for i, b := range blocks {
		out[i] = cfg.BlockID(b)
	}
	return out
}

func TestPaperSlicingExample(t *testing.T) {
	// Input: N = 3, X = -4, 3, -2 (paper Figure 10).
	g, tg := runMain(t, figure10Src, []int64{3, -4, 3, -2})
	s := New(g, tg)
	crit := Criterion{Block: 14, Vars: []cfg.Loc{{Var: "Z"}}}

	a1, err := s.Approach1(crit)
	if err != nil {
		t.Fatal(err)
	}
	// Approach 1: all statements except 10 (write Z).
	want1 := ids(1, 2, 3, 4, 5, 6, 7, 8, 9, 11, 12, 13, 14)
	if !reflect.DeepEqual(a1.Blocks, want1) {
		t.Errorf("Approach1 = %v, want %v", a1.Blocks, want1)
	}

	a2, err := s.Approach2(crit)
	if err != nil {
		t.Fatal(err)
	}
	// Approach 2: additionally excludes 3 (J=0 never the exercised
	// reaching definition of J at 13).
	want2 := ids(1, 2, 4, 5, 6, 7, 8, 9, 11, 12, 13, 14)
	if !reflect.DeepEqual(a2.Blocks, want2) {
		t.Errorf("Approach2 = %v, want %v", a2.Blocks, want2)
	}

	a3, err := s.Approach3(crit)
	if err != nil {
		t.Fatal(err)
	}
	// Approach 3: additionally excludes 8 — the last execution of
	// Z=f3(Y) consumed Y from statement 7 (X=-2 < 0), so statement 8's
	// instances are irrelevant to this criterion instance.
	want3 := ids(1, 2, 4, 5, 6, 7, 9, 11, 12, 13, 14)
	if !reflect.DeepEqual(a3.Blocks, want3) {
		t.Errorf("Approach3 = %v, want %v", a3.Blocks, want3)
	}
}

func TestSlicingAllPositiveInput(t *testing.T) {
	// With all X >= 0 only f2 runs: Approach 2 and 3 must exclude 7;
	// Approach 1 still includes it (it is not executed... actually an
	// unexecuted node is excluded by A1 too).
	g, tg := runMain(t, figure10Src, []int64{2, 5, 6})
	s := New(g, tg)
	crit := Criterion{Block: 14, Vars: []cfg.Loc{{Var: "Z"}}}
	a1, err := s.Approach1(crit)
	if err != nil {
		t.Fatal(err)
	}
	if a1.Contains(7) {
		t.Errorf("Approach1 contains unexecuted node 7: %v", a1.Blocks)
	}
	a3, err := s.Approach3(crit)
	if err != nil {
		t.Fatal(err)
	}
	if a3.Contains(7) {
		t.Errorf("Approach3 contains 7: %v", a3.Blocks)
	}
	if !a3.Contains(8) {
		t.Errorf("Approach3 missing 8: %v", a3.Blocks)
	}
}

func TestSlicingZeroIterations(t *testing.T) {
	// N = 0: the loop never runs; Z = Z + J faults on undefined Z in
	// the real interpreter, so use a variant with Z initialized.
	src := strings.Replace(figure10Src, "var J = 0;", "var J = 0;\n    var Z = 0;", 1)
	g, tg := runMain(t, src, []int64{0})
	s := New(g, tg)
	// Criterion block is now 15 (extra statement shifts ids by one).
	crit := Criterion{Block: 15, Vars: []cfg.Loc{{Var: "Z"}}}
	a3, err := s.Approach3(crit)
	if err != nil {
		t.Fatal(err)
	}
	// Slice: Z=Z+J (14), var Z=0 (4), var J=0 (3), while (5) control
	// ... loop body excluded entirely.
	for _, b := range a3.Blocks {
		if b >= 6 && b <= 13 {
			t.Errorf("loop body node %d in slice of unexecuted loop: %v", b, a3.Blocks)
		}
	}
	if !a3.Contains(14) || !a3.Contains(4) || !a3.Contains(3) {
		t.Errorf("slice missing data deps: %v", a3.Blocks)
	}
}

func TestPrecisionOrdering(t *testing.T) {
	// Random programs: Approach3 ⊆ Approach2 ⊆ Approach1 on every
	// executed-block criterion.
	rng := rand.New(rand.NewSource(80))
	progs := []string{figure10Src, loopyProg, branchyProg}
	for _, src := range progs {
		for trial := 0; trial < 10; trial++ {
			input := make([]int64, 8)
			for i := range input {
				input[i] = int64(rng.Intn(11) - 5)
			}
			// figure10Src requires at least one loop iteration (Z is
			// otherwise undefined at statement 13).
			input[0] = int64(1 + rng.Intn(4))
			g, tg := runMain(t, src, input)
			s := New(g, tg)
			for _, n := range tg.Nodes {
				crit := Criterion{Block: n.Block}
				a1, err1 := s.Approach1(crit)
				a2, err2 := s.Approach2(crit)
				a3, err3 := s.Approach3(crit)
				if err1 != nil || err2 != nil || err3 != nil {
					t.Fatalf("errors: %v %v %v", err1, err2, err3)
				}
				if !subset(a3.Blocks, a2.Blocks) {
					t.Fatalf("A3 ⊄ A2 at block %d: %v vs %v\ninput %v", n.Block, a3.Blocks, a2.Blocks, input)
				}
				if !subset(a2.Blocks, a1.Blocks) {
					t.Fatalf("A2 ⊄ A1 at block %d: %v vs %v\ninput %v", n.Block, a2.Blocks, a1.Blocks, input)
				}
			}
		}
	}
}

const loopyProg = `
func main() {
    read n;
    var a = 0;
    var b = 1;
    var i = 0;
    while (i < n) {
        var t = a + b;
        a = b;
        b = t;
        i = i + 1;
    }
    print(a, b);
}
`

const branchyProg = `
func main() {
    read x;
    read y;
    var r = 0;
    if (x > 0) {
        if (y > 0) {
            r = x + y;
        } else {
            r = x - y;
        }
    } else {
        r = 0 - x;
    }
    print(r);
}
`

func subset(a, b []cfg.BlockID) bool {
	set := map[cfg.BlockID]bool{}
	for _, x := range b {
		set[x] = true
	}
	for _, x := range a {
		if !set[x] {
			return false
		}
	}
	return true
}

func TestCriterionInstances(t *testing.T) {
	// Slicing on different instances of print(Z) (block 10) gives
	// different slices: the first instance (iteration 1, X=-4) must
	// exclude 8, the second (X=3) must include it.
	g, tg := runMain(t, figure10Src, []int64{3, -4, 3, -2})
	s := New(g, tg)
	n := tg.Node(10)
	times := n.Times.Expand()
	if len(times) != 3 {
		t.Fatalf("print(Z) executed %d times", len(times))
	}
	first, err := s.Approach3(Criterion{Block: 10, Time: times[0]})
	if err != nil {
		t.Fatal(err)
	}
	second, err := s.Approach3(Criterion{Block: 10, Time: times[1]})
	if err != nil {
		t.Fatal(err)
	}
	if first.Contains(8) {
		t.Errorf("first instance slice contains 8: %v", first.Blocks)
	}
	if !first.Contains(7) {
		t.Errorf("first instance slice missing 7: %v", first.Blocks)
	}
	if !second.Contains(8) {
		t.Errorf("second instance slice missing 8: %v", second.Blocks)
	}
}

func TestSliceErrors(t *testing.T) {
	g, tg := runMain(t, figure10Src, []int64{1, 5})
	s := New(g, tg)
	if _, err := s.Approach1(Criterion{Block: 99}); err == nil {
		t.Error("unknown block: want error")
	}
	if _, err := s.Approach2(Criterion{Block: 7}); err == nil {
		t.Error("unexecuted block (X=5 skips 7): want error")
	}
	if _, err := s.Approach3(Criterion{Block: 14, Time: 1}); err == nil {
		t.Error("wrong instance time: want error")
	}
}

func TestSliceContains(t *testing.T) {
	s := &Slice{Blocks: ids(1, 3, 5)}
	if !s.Contains(3) || s.Contains(2) {
		t.Error("Contains wrong")
	}
}

func TestVisitedCounts(t *testing.T) {
	g, tg := runMain(t, figure10Src, []int64{3, -4, 3, -2})
	s := New(g, tg)
	crit := Criterion{Block: 14, Vars: []cfg.Loc{{Var: "Z"}}}
	a3, _ := s.Approach3(crit)
	if a3.Visited == 0 {
		t.Error("Visited = 0")
	}
}
