// Package diff compares two compacted TWPP containers — any mix of
// format v1, v2, and segmented directories, over any storage backend —
// and reports the deltas an optimizer consumer cares about: paths that
// appeared or disappeared (matched by trace identity, never by index),
// hot-path rank drift within a configurable top-K window, and
// call-count / compaction-factor regressions beyond configurable
// relative thresholds.
//
// Everything the diff needs is queryable from the compacted form:
// per-function unique traces, dictionaries, call counts, and the
// dynamic call graph. The engine never reconstructs the raw WPP, so
// diffing two containers costs one extraction pass per side.
//
// Two invariants anchor the delta model:
//
//   - Identity, not index. A trace's identity is the hash of its fully
//     dictionary-expanded block sequence (TraceIdentity), so two
//     containers that number their unique traces differently — or
//     split them differently across segments — still match path for
//     path. Derived quantities (compaction factor, rank order) are
//     computed from decoded structures only, never from encoded byte
//     lengths, which keeps diff(A, A') empty whenever A and A' hold
//     identical content in different layouts (v1 vs v2 vs segmented,
//     any backend).
//
//   - Stable snapshots. A summarize pass brackets its reads with the
//     container's content hash and retries if the hash moved, so a
//     live segmented mount being refreshed or merged underneath the
//     diff can never contribute a mixed-generation view.
package diff

import (
	"context"
	"fmt"
	"sort"

	"twpp/internal/cfg"
	"twpp/internal/core"
	"twpp/internal/encoding"
	"twpp/internal/segment"
	"twpp/internal/wpp"
	"twpp/internal/wppfile"
)

// Default thresholds. The zero Options disables nothing and checks
// nothing loosely: callers wanting the CI defaults start from
// DefaultOptions and override.
const (
	// DefaultTopK is the hot-path rank window compared for drift.
	DefaultTopK = 3
	// DefaultCallThreshold flags a function whose call count moved by
	// more than this fraction in either direction.
	DefaultCallThreshold = 0.10
	// DefaultFactorThreshold flags a function whose compaction factor
	// dropped by more than this fraction.
	DefaultFactorThreshold = 0.25
)

// Options configures a diff. Thresholds are taken literally: 0 flags
// any change, negative disables the check; TopK <= 0 disables rank
// comparison.
type Options struct {
	// TopK is how many leading hot paths (by per-trace use count) are
	// compared for rank drift.
	TopK int
	// CallThreshold is the relative call-count change (either
	// direction) beyond which a matched function is a regression.
	CallThreshold float64
	// FactorThreshold is the relative compaction-factor drop beyond
	// which a matched function is a regression.
	FactorThreshold float64
}

// DefaultOptions returns the CI defaults documented above.
func DefaultOptions() Options {
	return Options{
		TopK:            DefaultTopK,
		CallThreshold:   DefaultCallThreshold,
		FactorThreshold: DefaultFactorThreshold,
	}
}

// Containers diffs two opened containers. Labels name the sides in the
// report (file paths for the CLI, mount names for the server). Decode
// failures keep their structured error classes, so a corrupt input
// maps to exit 3 / HTTP 422 downstream — never a panic.
func Containers(ctx context.Context, labelA, labelB string, a, b wppfile.Container, opts Options) (*Report, error) {
	sa, err := summarize(ctx, labelA, a)
	if err != nil {
		return nil, fmt.Errorf("diff side a (%s): %w", labelA, err)
	}
	sb, err := summarize(ctx, labelB, b)
	if err != nil {
		return nil, fmt.Errorf("diff side b (%s): %w", labelB, err)
	}
	return compare(sa, sb, opts), nil
}

// Files opens both paths (single compacted files or segmented
// container directories, auto-detected) and diffs them.
func Files(ctx context.Context, pathA, pathB string, open wppfile.OpenOptions, opts Options) (*Report, error) {
	a, err := openContainer(pathA, open)
	if err != nil {
		return nil, err
	}
	defer a.Close()
	b, err := openContainer(pathB, open)
	if err != nil {
		return nil, err
	}
	defer b.Close()
	return Containers(ctx, pathA, pathB, a, b, opts)
}

func openContainer(path string, open wppfile.OpenOptions) (wppfile.Container, error) {
	if segment.IsSegmented(path) {
		return segment.Open(path, open)
	}
	return wppfile.OpenCompactedOptions(path, open)
}

// TraceIdentity returns the content identity of one unique trace of a
// decoded function block: the 64-bit FNV-1a hash (16 hex digits) of
// its fully dictionary-expanded block sequence, plus the expanded
// length. Identity is what lets a diff match traces across containers
// whose trace indices, dictionaries, or segment layouts differ.
func TraceIdentity(ft *core.FunctionTWPP, idx int) (key string, expLen int, err error) {
	if idx < 0 || idx >= len(ft.Traces) {
		return "", 0, fmt.Errorf("diff: trace index %d out of range (%d traces)", idx, len(ft.Traces))
	}
	path, err := ft.Traces[idx].ToPath()
	if err != nil {
		return "", 0, err
	}
	var dict wpp.Dictionary
	if idx < len(ft.DictOf) {
		di := ft.DictOf[idx]
		if di < 0 || di >= len(ft.Dicts) {
			return "", 0, encoding.Errf(encoding.CodeCorrupt, 0,
				"diff: trace %d references dictionary %d of %d", idx, di, len(ft.Dicts))
		}
		dict = ft.Dicts[di]
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	hash := func(b cfg.BlockID) {
		h ^= uint64(uint32(b))
		h *= prime64
		expLen++
	}
	for _, id := range path {
		if chain, ok := dict[id]; ok {
			for _, b := range chain {
				hash(b)
			}
		} else {
			hash(id)
		}
	}
	return fmt.Sprintf("%016x", h), expLen, nil
}

// pathStat is one unique trace summarized for diffing.
type pathStat struct {
	key    string
	expLen int
	uses   int
}

// funcSummary is everything the comparator needs about one function on
// one side.
type funcSummary struct {
	name   string
	calls  int
	factor float64
	paths  map[string]pathStat
	rank   []string // all trace keys, hottest first
}

type sideSummary struct {
	side  Side
	funcs map[string]*funcSummary
}

// maxSnapshotRetries bounds the content-hash stability loop. Each
// retry means a refresh or merge swapped the container's generation
// mid-summarize; dozens in a row would mean a pathological writer.
const maxSnapshotRetries = 64

// summarize builds one side's summary from a consistent snapshot: the
// container's content hash is read before and after the pass, and the
// pass retries whenever the hash moved, so a mount refreshed or merged
// mid-flight never yields a mixed-generation summary. Containers
// without a content hash (v1) cannot change underneath an open handle
// and take a single pass.
func summarize(ctx context.Context, label string, c wppfile.Container) (*sideSummary, error) {
	for attempt := 0; attempt < maxSnapshotRetries; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		h0, ok0 := c.ContentHash()
		funcs, n, err := summarizeOnce(ctx, c)
		h1, ok1 := c.ContentHash()
		moved := ok0 && ok1 && h0 != h1
		if moved {
			continue // the view swapped mid-pass; try again on the settled one
		}
		if err != nil {
			return nil, err
		}
		side := Side{Label: label, Format: c.FormatVersion(), Functions: n}
		if ok1 {
			side.ContentHash = fmt.Sprintf("%016x", h1)
		}
		return &sideSummary{side: side, funcs: funcs}, nil
	}
	return nil, fmt.Errorf("diff: container %q kept changing underneath the diff", label)
}

func summarizeOnce(ctx context.Context, c wppfile.Container) (map[string]*funcSummary, int, error) {
	fns := c.Functions()
	names := c.Names()
	dup := make(map[string]int, len(names))
	for _, n := range names {
		dup[n]++
	}

	fts := make(map[cfg.FuncID]*core.FunctionTWPP, len(fns))
	for _, fn := range fns {
		ft, err := c.ExtractFunctionCtx(ctx, fn)
		if err != nil {
			return nil, 0, err
		}
		fts[fn] = ft
	}
	root, err := c.ReadDCG()
	if err != nil {
		return nil, 0, err
	}
	uses, err := useCounts(root, fts)
	if err != nil {
		return nil, 0, err
	}

	out := make(map[string]*funcSummary, len(fns))
	for _, fn := range fns {
		ft := fts[fn]
		fs := &funcSummary{
			name:  funcName(names, dup, fn),
			calls: c.CallCount(fn),
			paths: make(map[string]pathStat, len(ft.Traces)),
		}
		words := 0
		var expanded int64
		u := uses[fn]
		for i := range ft.Traces {
			key, el, err := TraceIdentity(ft, i)
			if err != nil {
				return nil, 0, err
			}
			if _, ok := fs.paths[key]; ok {
				return nil, 0, encoding.Errf(encoding.CodeCorrupt, 0,
					"diff: function %d holds two traces with identity %s", fn, key)
			}
			n := 0
			if i < len(u) {
				n = u[i]
			}
			fs.paths[key] = pathStat{key: key, expLen: el, uses: n}
			words += ft.Traces[i].Words()
			expanded += int64(n) * int64(el)
		}
		for _, d := range ft.Dicts {
			words += d.Words()
		}
		if words > 0 {
			fs.factor = float64(expanded) / float64(words)
		}
		fs.rank = rankKeys(fs.paths)
		out[fs.name] = fs
	}
	return out, len(fns), nil
}

// useCounts walks the DCG iteratively (hostile inputs can nest a
// million frames deep — the decoder allows it, so the walker must not
// recurse) and counts invocations per (function, unique trace).
func useCounts(root *wpp.CallNode, fts map[cfg.FuncID]*core.FunctionTWPP) (map[cfg.FuncID][]int, error) {
	out := make(map[cfg.FuncID][]int, len(fts))
	if root == nil {
		return out, nil
	}
	stack := []*wpp.CallNode{root}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n == nil {
			continue
		}
		ft, ok := fts[n.Fn]
		if !ok || n.TraceIdx < 0 || n.TraceIdx >= len(ft.Traces) {
			return nil, encoding.Errf(encoding.CodeCorrupt, 0,
				"diff: DCG references function %d trace %d, not in container", n.Fn, n.TraceIdx)
		}
		u := out[n.Fn]
		if u == nil {
			u = make([]int, len(ft.Traces))
			out[n.Fn] = u
		}
		u[n.TraceIdx]++
		stack = append(stack, n.Children...)
	}
	return out, nil
}

// rankKeys orders a function's trace keys hottest first, ties broken
// by key so the order is stable across containers.
func rankKeys(paths map[string]pathStat) []string {
	keys := make([]string, 0, len(paths))
	for k := range paths {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := paths[keys[i]], paths[keys[j]]
		if a.uses != b.uses {
			return a.uses > b.uses
		}
		return a.key < b.key
	})
	return keys
}

// funcName resolves a function's display name. Matching across sides
// is by name (program versions may renumber ids); names duplicated
// within one side's table get an #id suffix so the mapping stays
// injective and deterministic.
func funcName(names []string, dup map[string]int, fn cfg.FuncID) string {
	if int(fn) < len(names) && names[fn] != "" {
		if dup[names[fn]] > 1 {
			return fmt.Sprintf("%s#%d", names[fn], fn)
		}
		return names[fn]
	}
	return fmt.Sprintf("func%d", fn)
}

// compare builds the delta report from two side summaries.
func compare(a, b *sideSummary, opts Options) *Report {
	r := &Report{
		A:               a.side,
		B:               b.side,
		TopK:            opts.TopK,
		CallThreshold:   opts.CallThreshold,
		FactorThreshold: opts.FactorThreshold,
		Functions:       []FuncDelta{},
	}
	names := make([]string, 0, len(a.funcs)+len(b.funcs))
	for n := range a.funcs {
		names = append(names, n)
	}
	for n := range b.funcs {
		if _, ok := a.funcs[n]; !ok {
			names = append(names, n)
		}
	}
	sort.Strings(names)

	for _, name := range names {
		fa, fb := a.funcs[name], b.funcs[name]
		switch {
		case fa == nil:
			r.Functions = append(r.Functions, FuncDelta{
				Name:        name,
				Status:      StatusAdded,
				CallsB:      fb.calls,
				FactorB:     fb.factor,
				Appeared:    allPaths(fb),
				Disappeared: []PathInfo{},
				RankA:       []string{},
				RankB:       topK(fb.rank, opts.TopK),
			})
		case fb == nil:
			r.Functions = append(r.Functions, FuncDelta{
				Name:        name,
				Status:      StatusRemoved,
				CallsA:      fa.calls,
				FactorA:     fa.factor,
				Appeared:    []PathInfo{},
				Disappeared: allPaths(fa),
				RankA:       topK(fa.rank, opts.TopK),
				RankB:       []string{},
			})
		default:
			appeared := onlyIn(fb, fa)
			disappeared := onlyIn(fa, fb)
			ra, rb := topK(fa.rank, opts.TopK), topK(fb.rank, opts.TopK)
			drift := !equalStrings(ra, rb)
			if fa.calls == fb.calls && fa.factor == fb.factor &&
				len(appeared) == 0 && len(disappeared) == 0 && !drift {
				continue // identical: no delta row
			}
			r.Functions = append(r.Functions, FuncDelta{
				Name:        name,
				Status:      StatusChanged,
				CallsA:      fa.calls,
				CallsB:      fb.calls,
				FactorA:     fa.factor,
				FactorB:     fb.factor,
				Appeared:    appeared,
				Disappeared: disappeared,
				RankA:       ra,
				RankB:       rb,
				RankDrift:   drift,
			})
		}
	}
	r.Regression, r.Regressions = evaluate(r.Functions, opts)
	return r
}

// onlyIn lists the paths present in x but not in y, sorted by key.
func onlyIn(x, y *funcSummary) []PathInfo {
	out := []PathInfo{}
	for k, p := range x.paths {
		if _, ok := y.paths[k]; !ok {
			out = append(out, PathInfo{Key: p.key, Len: p.expLen, Calls: p.uses})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// allPaths lists every path of a side, sorted by key.
func allPaths(f *funcSummary) []PathInfo {
	out := []PathInfo{}
	for _, p := range f.paths {
		out = append(out, PathInfo{Key: p.key, Len: p.expLen, Calls: p.uses})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

func topK(rank []string, k int) []string {
	if k <= 0 {
		return []string{}
	}
	if k > len(rank) {
		k = len(rank)
	}
	out := make([]string, k)
	copy(out, rank[:k])
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
