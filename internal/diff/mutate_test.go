// Perturbation-injection tests: seed a known profile, inject exactly
// one mutation through testkit.MutateProfile, and require the diff to
// report precisely that delta — the right function, the right trace
// identity, the right regression kinds — and nothing else.
package diff_test

import (
	"reflect"
	"testing"

	"twpp/internal/diff"
	"twpp/internal/storage"
	"twpp/internal/testkit"
	"twpp/internal/wppfile"
)

// kinds collects the regression kinds present in a report per kind
// name.
func kinds(r *diff.Report) map[string]int {
	out := map[string]int{}
	for _, reg := range r.Regressions {
		out[reg.Kind]++
	}
	return out
}

func TestDiffReportsExactInjectedDelta(t *testing.T) {
	corpus := testkit.Corpus(7)
	applied := map[testkit.ProfileMutation]int{}
	for _, m := range testkit.ProfileMutations() {
		for _, shape := range testkit.Shapes() {
			orig := compactTWPP(corpus[shape])
			mut, info, err := testkit.MutateProfile(orig, m, int64(100+int(shape)))
			if err != nil {
				// Some shapes cannot host some mutations (a
				// single-function profile has no droppable path);
				// the coverage floor below catches a mutator that
				// never applies.
				continue
			}
			applied[m]++
			name := m.String() + "/" + shape.String()
			dir := t.TempDir()
			v := variant{"v2-file", wppfile.FormatV2, storage.KindFile}
			a := openVariant(t, dir, "a", orig, v)
			b := openVariant(t, dir, "b", mut, v)
			r := mustDiff(t, "a", "b", a, b)

			if len(r.Functions) != 1 {
				t.Fatalf("%s: %d function deltas, want exactly 1: %+v", name, len(r.Functions), r.Functions)
			}
			fd := r.Functions[0]
			if fd.Name != info.Name {
				t.Fatalf("%s: delta names %q, mutation hit %q", name, fd.Name, info.Name)
			}
			if fd.Status != diff.StatusChanged {
				t.Fatalf("%s: status %q, want %q", name, fd.Status, diff.StatusChanged)
			}
			if !r.Regression {
				t.Fatalf("%s: injected delta raised no regression", name)
			}
			k := kinds(r)
			if k[diff.RegFuncAdded] != 0 || k[diff.RegFuncRemoved] != 0 {
				t.Fatalf("%s: spurious func-added/removed regressions: %+v", name, r.Regressions)
			}

			switch m {
			case testkit.MutDropPath:
				if len(fd.Appeared) != 0 {
					t.Fatalf("%s: %d spurious appeared paths", name, len(fd.Appeared))
				}
				if len(fd.Disappeared) != 1 || fd.Disappeared[0].Key != info.Key {
					t.Fatalf("%s: disappeared = %+v, want exactly key %s", name, fd.Disappeared, info.Key)
				}
				if fd.CallsB != fd.CallsA+info.Delta {
					t.Fatalf("%s: calls %d -> %d, mutation removed %d", name, fd.CallsA, fd.CallsB, -info.Delta)
				}
				if k[diff.RegPathVanished] != 1 || k[diff.RegPathAppeared] != 0 {
					t.Fatalf("%s: regression kinds %+v, want one path-disappeared", name, k)
				}
			case testkit.MutSwapRanks:
				if len(fd.Appeared) != 0 || len(fd.Disappeared) != 0 {
					t.Fatalf("%s: path set changed by a pure rank swap: +%d -%d", name, len(fd.Appeared), len(fd.Disappeared))
				}
				if fd.CallsA != fd.CallsB {
					t.Fatalf("%s: call count changed by a pure rank swap: %d -> %d", name, fd.CallsA, fd.CallsB)
				}
				if !fd.RankDrift {
					t.Fatalf("%s: rank swap not reported as drift (rankA=%v rankB=%v)", name, fd.RankA, fd.RankB)
				}
				if k[diff.RegRankDrift] != 1 || k[diff.RegPathAppeared] != 0 || k[diff.RegPathVanished] != 0 || k[diff.RegCallCount] != 0 {
					t.Fatalf("%s: regression kinds %+v, want one rank-drift", name, k)
				}
			case testkit.MutInflateCalls:
				if len(fd.Appeared) != 0 || len(fd.Disappeared) != 0 {
					t.Fatalf("%s: path set changed by call inflation: +%d -%d", name, len(fd.Appeared), len(fd.Disappeared))
				}
				if fd.CallsB != fd.CallsA+info.Delta {
					t.Fatalf("%s: calls %d -> %d, mutation added %d", name, fd.CallsA, fd.CallsB, info.Delta)
				}
				if fd.RankDrift {
					t.Fatalf("%s: inflating the hottest path reordered ranks: %v -> %v", name, fd.RankA, fd.RankB)
				}
				if k[diff.RegCallCount] != 1 || k[diff.RegPathAppeared] != 0 || k[diff.RegPathVanished] != 0 || k[diff.RegRankDrift] != 0 {
					t.Fatalf("%s: regression kinds %+v, want one call-count", name, k)
				}
				// More calls compress better, never worse: inflation
				// must not read as a compaction regression.
				if k[diff.RegFactor] != 0 {
					t.Fatalf("%s: spurious compaction-factor regression: %+v", name, r.Regressions)
				}
			}

			// The injected delta inverts like any other.
			rBA := mustDiff(t, "b", "a", b, a)
			if !reflect.DeepEqual(r.Inverse(), rBA) {
				t.Fatalf("%s: mutated diff does not invert", name)
			}
		}
	}
	for _, m := range testkit.ProfileMutations() {
		if applied[m] == 0 {
			t.Fatalf("mutation %s never applied to any shape", m)
		}
	}
	t.Logf("mutations applied: drop=%d swap=%d inflate=%d",
		applied[testkit.MutDropPath], applied[testkit.MutSwapRanks], applied[testkit.MutInflateCalls])
}

// MutateProfile must not touch its input: the original profile diffs
// empty against a pristine copy after mutation.
func TestMutateProfileLeavesOriginalIntact(t *testing.T) {
	corpus := testkit.Corpus(7)
	mutated := 0
	for _, shape := range testkit.Shapes() {
		orig := compactTWPP(corpus[shape])
		pristine := compactTWPP(corpus[shape])
		for _, m := range testkit.ProfileMutations() {
			if _, _, err := testkit.MutateProfile(orig, m, 5); err == nil {
				mutated++
			}
		}
		dir := t.TempDir()
		v := variant{"v2-file", wppfile.FormatV2, storage.KindFile}
		a := openVariant(t, dir, "a-"+shape.String(), orig, v)
		b := openVariant(t, dir, "b-"+shape.String(), pristine, v)
		requireEmpty(t, mustDiff(t, "a", "b", a, b), shape.String()+" post-mutation original")
	}
	if mutated == 0 {
		t.Fatal("no mutation applied to any shape")
	}
}
