package diff

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
)

// FuncDelta status values.
const (
	StatusChanged = "changed"
	StatusAdded   = "added"
	StatusRemoved = "removed"
)

// Regression kinds.
const (
	RegFuncAdded    = "func-added"
	RegFuncRemoved  = "func-removed"
	RegPathAppeared = "path-appeared"
	RegPathVanished = "path-disappeared"
	RegRankDrift    = "rank-drift"
	RegCallCount    = "call-count"
	RegFactor       = "compaction-factor"
)

// Side identifies one input of the diff.
type Side struct {
	// Label names the side: a file path for the CLI, a mount name for
	// the server.
	Label string `json:"label"`
	// Format is the container format version (1 or 2; segmented
	// containers are 2).
	Format int `json:"format"`
	// ContentHash is the container's content hash as 16 hex digits,
	// empty for v1 containers, which carry none.
	ContentHash string `json:"content_hash,omitempty"`
	// Functions is the number of functions in the container.
	Functions int `json:"functions"`
}

// PathInfo describes one unique path on the side it exists on.
type PathInfo struct {
	// Key is the trace identity: the 64-bit hash of the fully
	// expanded block sequence (see TraceIdentity).
	Key string `json:"key"`
	// Len is the expanded path length in blocks.
	Len int `json:"len"`
	// Calls is how many invocations took this path.
	Calls int `json:"calls"`
}

// FuncDelta is one function's differences between the two sides. Raw
// per-side values are reported rather than derived deltas so the
// report inverts cleanly: diff(B, A) is exactly diff(A, B).Inverse().
type FuncDelta struct {
	Name   string `json:"name"`
	Status string `json:"status"`
	// CallsA/CallsB are the side call counts (0 on a missing side).
	CallsA int `json:"calls_a"`
	CallsB int `json:"calls_b"`
	// FactorA/FactorB are the side compaction factors: expanded words
	// executed divided by words stored (traces + dictionaries).
	FactorA float64 `json:"factor_a"`
	FactorB float64 `json:"factor_b"`
	// Appeared lists paths present only in B; Disappeared paths
	// present only in A. Both sorted by key.
	Appeared    []PathInfo `json:"appeared"`
	Disappeared []PathInfo `json:"disappeared"`
	// RankA/RankB are the top-K path keys, hottest first.
	RankA []string `json:"rank_a"`
	RankB []string `json:"rank_b"`
	// RankDrift is true when RankA and RankB differ.
	RankDrift bool `json:"rank_drift"`
}

// Regression is one threshold violation.
type Regression struct {
	Func   string `json:"func"`
	Kind   string `json:"kind"`
	Detail string `json:"detail"`
}

// Report is the full diff of two containers. It marshals to stable
// JSON: map-free, all slices ordered, byte-identical for identical
// inputs.
type Report struct {
	A    Side `json:"a"`
	B    Side `json:"b"`
	TopK int  `json:"top_k"`
	// CallThreshold / FactorThreshold echo the options the report was
	// evaluated under.
	CallThreshold   float64 `json:"call_threshold"`
	FactorThreshold float64 `json:"factor_threshold"`
	// Functions holds only functions that differ, sorted by name.
	// Identical inputs yield an empty list.
	Functions []FuncDelta `json:"functions"`
	// Regression is true when any threshold was exceeded.
	Regression  bool         `json:"regression"`
	Regressions []Regression `json:"regressions"`
}

// evaluate applies the thresholds to a delta list. It reads only
// FuncDelta fields, so inverting the deltas and re-evaluating yields
// the inverse report's regressions without re-summarizing.
func evaluate(funcs []FuncDelta, opts Options) (bool, []Regression) {
	regs := []Regression{}
	for _, fd := range funcs {
		switch fd.Status {
		case StatusAdded:
			regs = append(regs, Regression{Func: fd.Name, Kind: RegFuncAdded,
				Detail: fmt.Sprintf("function only in b (%d paths, %d calls)", len(fd.Appeared), fd.CallsB)})
			continue
		case StatusRemoved:
			regs = append(regs, Regression{Func: fd.Name, Kind: RegFuncRemoved,
				Detail: fmt.Sprintf("function only in a (%d paths, %d calls)", len(fd.Disappeared), fd.CallsA)})
			continue
		}
		if n := len(fd.Appeared); n > 0 {
			regs = append(regs, Regression{Func: fd.Name, Kind: RegPathAppeared,
				Detail: fmt.Sprintf("%d path(s) only in b", n)})
		}
		if n := len(fd.Disappeared); n > 0 {
			regs = append(regs, Regression{Func: fd.Name, Kind: RegPathVanished,
				Detail: fmt.Sprintf("%d path(s) only in a", n)})
		}
		if opts.TopK > 0 && fd.RankDrift {
			regs = append(regs, Regression{Func: fd.Name, Kind: RegRankDrift,
				Detail: fmt.Sprintf("top-%d hot paths reordered: %v -> %v", opts.TopK, fd.RankA, fd.RankB)})
		}
		if opts.CallThreshold >= 0 && fd.CallsA > 0 {
			rel := math.Abs(float64(fd.CallsB-fd.CallsA)) / float64(fd.CallsA)
			if rel > opts.CallThreshold {
				regs = append(regs, Regression{Func: fd.Name, Kind: RegCallCount,
					Detail: fmt.Sprintf("calls %d -> %d (%+.1f%%, threshold %.1f%%)",
						fd.CallsA, fd.CallsB, 100*float64(fd.CallsB-fd.CallsA)/float64(fd.CallsA),
						100*opts.CallThreshold)})
			}
		}
		if opts.FactorThreshold >= 0 && fd.FactorA > 0 {
			drop := (fd.FactorA - fd.FactorB) / fd.FactorA
			if drop > opts.FactorThreshold {
				regs = append(regs, Regression{Func: fd.Name, Kind: RegFactor,
					Detail: fmt.Sprintf("compaction factor %.2f -> %.2f (-%.1f%%, threshold %.1f%%)",
						fd.FactorA, fd.FactorB, 100*drop, 100*opts.FactorThreshold)})
			}
		}
	}
	return len(regs) > 0, regs
}

// Inverse returns the report of the swapped diff: diff(B, A) computed
// from this report's data alone. Every A/B field swaps sides,
// appeared/disappeared and added/removed exchange roles, and the
// thresholds are re-applied to the swapped deltas — so
// Containers(ctx, lb, la, b, a, opts) equals r.Inverse() exactly.
func (r *Report) Inverse() *Report {
	inv := &Report{
		A:               r.B,
		B:               r.A,
		TopK:            r.TopK,
		CallThreshold:   r.CallThreshold,
		FactorThreshold: r.FactorThreshold,
		Functions:       make([]FuncDelta, len(r.Functions)),
	}
	for i, fd := range r.Functions {
		status := fd.Status
		switch status {
		case StatusAdded:
			status = StatusRemoved
		case StatusRemoved:
			status = StatusAdded
		}
		inv.Functions[i] = FuncDelta{
			Name:        fd.Name,
			Status:      status,
			CallsA:      fd.CallsB,
			CallsB:      fd.CallsA,
			FactorA:     fd.FactorB,
			FactorB:     fd.FactorA,
			Appeared:    append([]PathInfo{}, fd.Disappeared...),
			Disappeared: append([]PathInfo{}, fd.Appeared...),
			RankA:       append([]string{}, fd.RankB...),
			RankB:       append([]string{}, fd.RankA...),
			RankDrift:   fd.RankDrift,
		}
	}
	sort.Slice(inv.Functions, func(i, j int) bool { return inv.Functions[i].Name < inv.Functions[j].Name })
	inv.Regression, inv.Regressions = evaluate(inv.Functions, Options{
		TopK:            inv.TopK,
		CallThreshold:   inv.CallThreshold,
		FactorThreshold: inv.FactorThreshold,
	})
	return inv
}

// JSON renders the report exactly as the server does (indented, with a
// trailing newline), so CLI output and /v1/diff responses are
// byte-comparable.
func (r *Report) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// WriteHuman renders the report for terminals.
func (r *Report) WriteHuman(w io.Writer) error {
	side := func(s Side) string {
		h := s.ContentHash
		if h == "" {
			h = "-"
		}
		return fmt.Sprintf("%s (v%d, %d funcs, hash %s)", s.Label, s.Format, s.Functions, h)
	}
	if _, err := fmt.Fprintf(w, "a: %s\nb: %s\n", side(r.A), side(r.B)); err != nil {
		return err
	}
	if len(r.Functions) == 0 {
		_, err := fmt.Fprintln(w, "no differences")
		return err
	}
	for _, fd := range r.Functions {
		fmt.Fprintf(w, "\n%s [%s]\n", fd.Name, fd.Status)
		fmt.Fprintf(w, "  calls:  %d -> %d\n", fd.CallsA, fd.CallsB)
		fmt.Fprintf(w, "  factor: %.2f -> %.2f\n", fd.FactorA, fd.FactorB)
		for _, p := range fd.Appeared {
			fmt.Fprintf(w, "  + path %s (len %d, %d calls)\n", p.Key, p.Len, p.Calls)
		}
		for _, p := range fd.Disappeared {
			fmt.Fprintf(w, "  - path %s (len %d, %d calls)\n", p.Key, p.Len, p.Calls)
		}
		if fd.RankDrift {
			fmt.Fprintf(w, "  rank:   %v -> %v\n", fd.RankA, fd.RankB)
		}
	}
	fmt.Fprintln(w)
	if !r.Regression {
		_, err := fmt.Fprintln(w, "within thresholds: no regression")
		return err
	}
	fmt.Fprintf(w, "REGRESSIONS (%d):\n", len(r.Regressions))
	for _, reg := range r.Regressions {
		if _, err := fmt.Fprintf(w, "  %-20s %-18s %s\n", reg.Func, reg.Kind, reg.Detail); err != nil {
			return err
		}
	}
	return nil
}
