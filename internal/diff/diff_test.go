// Metamorphic identities of the diff engine, verified across the full
// container matrix: for every testkit shape, every container format
// (v1, v2, segmented) and every storage backend (file, mmap, memory),
//
//   - diff(A, A') is empty whenever A and A' hold identical content —
//     even when they differ in format, segmentation, or backend — and
//   - diff(A, B) is exactly the inverse of diff(B, A), byte for byte
//     after Inverse().
//
// The matrix runs under -race via `make diff-test`.
package diff_test

import (
	"context"
	"path/filepath"
	"reflect"
	"testing"

	"twpp/internal/core"
	"twpp/internal/diff"
	"twpp/internal/segment"
	"twpp/internal/storage"
	"twpp/internal/testkit"
	"twpp/internal/trace"
	"twpp/internal/wpp"
	"twpp/internal/wppfile"
)

// variant is one cell of the {format} x {backend} matrix. format 0
// means a segmented container directory.
type variant struct {
	name   string
	format int
	kind   storage.Kind
}

func variants() []variant {
	formats := []struct {
		n string
		f int
	}{{"v1", wppfile.FormatV1}, {"v2", wppfile.FormatV2}, {"seg", 0}}
	kinds := []struct {
		n string
		k storage.Kind
	}{{"file", storage.KindFile}, {"mmap", storage.KindMmap}, {"memory", storage.KindMemory}}
	var out []variant
	for _, f := range formats {
		for _, k := range kinds {
			out = append(out, variant{f.n + "-" + k.n, f.f, k.k})
		}
	}
	return out
}

// openVariant writes tw in the variant's layout under dir/name and
// opens it through the variant's backend.
func openVariant(t *testing.T, dir, name string, tw *core.TWPP, v variant) wppfile.Container {
	t.Helper()
	opts := wppfile.OpenOptions{Backend: v.kind, VerifyChecksums: true}
	if v.format == 0 {
		segDir := filepath.Join(dir, name+".twppd")
		if _, err := segment.Write(segDir, tw, segment.WriteOptions{Segments: 3, Workers: 1}); err != nil {
			t.Fatalf("%s: segmented write: %v", name, err)
		}
		set, err := segment.Open(segDir, opts)
		if err != nil {
			t.Fatalf("%s: segmented open: %v", name, err)
		}
		t.Cleanup(func() { set.Close() })
		return set
	}
	path := filepath.Join(dir, name+".twpp")
	if err := wppfile.WriteCompactedFormat(path, tw, 1, v.format); err != nil {
		t.Fatalf("%s: write: %v", name, err)
	}
	cf, err := wppfile.OpenCompactedOptions(path, opts)
	if err != nil {
		t.Fatalf("%s: open: %v", name, err)
	}
	t.Cleanup(func() { cf.Close() })
	return cf
}

func compactTWPP(w *trace.RawWPP) *core.TWPP {
	c, _ := wpp.Compact(w)
	return core.FromCompacted(c)
}

func mustDiff(t *testing.T, la, lb string, a, b wppfile.Container) *diff.Report {
	t.Helper()
	r, err := diff.Containers(context.Background(), la, lb, a, b, diff.DefaultOptions())
	if err != nil {
		t.Fatalf("diff %s vs %s: %v", la, lb, err)
	}
	return r
}

// requireEmpty asserts a report shows no differences and no
// regressions.
func requireEmpty(t *testing.T, r *diff.Report, label string) {
	t.Helper()
	if len(r.Functions) != 0 {
		t.Fatalf("%s: %d function deltas on identical content; first: %+v", label, len(r.Functions), r.Functions[0])
	}
	if r.Regression || len(r.Regressions) != 0 {
		t.Fatalf("%s: regression=%v with %d entries on identical content", label, r.Regression, len(r.Regressions))
	}
}

func TestDiffMetamorphicMatrix(t *testing.T) {
	corpusA := testkit.Corpus(11)
	corpusB := testkit.Corpus(29)
	for _, shape := range testkit.Shapes() {
		shape := shape
		t.Run(shape.String(), func(t *testing.T) {
			t.Parallel()
			ta := compactTWPP(corpusA[shape])
			tb := compactTWPP(corpusB[shape])
			dir := t.TempDir()
			// The reference cell everything is compared against.
			ref := openVariant(t, dir, "ref", ta, variant{"v2-file", wppfile.FormatV2, storage.KindFile})
			for _, v := range variants() {
				a := openVariant(t, dir, "a-"+v.name, ta, v)
				b := openVariant(t, dir, "b-"+v.name, tb, v)

				// Identity: same content, different layout — empty
				// diff in both directions.
				requireEmpty(t, mustDiff(t, "ref", v.name, ref, a), shape.String()+"/"+v.name+" ref-vs-variant")
				requireEmpty(t, mustDiff(t, v.name, "ref", a, ref), shape.String()+"/"+v.name+" variant-vs-ref")

				// Inverse: different content — diff(A,B) must be
				// exactly diff(B,A).Inverse(), structurally and in
				// JSON bytes.
				rAB := mustDiff(t, "a", "b", a, b)
				rBA := mustDiff(t, "b", "a", b, a)
				if !reflect.DeepEqual(rAB.Inverse(), rBA) {
					t.Fatalf("%s/%s: diff(A,B).Inverse() != diff(B,A)", shape, v.name)
				}
				jAB, err := rAB.Inverse().JSON()
				if err != nil {
					t.Fatal(err)
				}
				jBA, err := rBA.JSON()
				if err != nil {
					t.Fatal(err)
				}
				if string(jAB) != string(jBA) {
					t.Fatalf("%s/%s: inverse JSON mismatch\ninverse: %s\ndirect:  %s", shape, v.name, jAB, jBA)
				}
				// Involution: inverting twice restores the original.
				if !reflect.DeepEqual(rAB.Inverse().Inverse(), rAB) {
					t.Fatalf("%s/%s: Inverse is not an involution", shape, v.name)
				}
			}
		})
	}
}

// Different-content diffs must actually see the difference: a report
// of A vs B (different seeds, same shape) is non-empty for at least
// one shape — guarding against a comparator that trivially returns ∅.
func TestDiffSeesContentChanges(t *testing.T) {
	corpusA := testkit.Corpus(11)
	corpusB := testkit.Corpus(29)
	sawDelta := false
	for _, shape := range testkit.Shapes() {
		ta := compactTWPP(corpusA[shape])
		tb := compactTWPP(corpusB[shape])
		dir := t.TempDir()
		v := variant{"v2-file", wppfile.FormatV2, storage.KindFile}
		a := openVariant(t, dir, "a", ta, v)
		b := openVariant(t, dir, "b", tb, v)
		if r := mustDiff(t, "a", "b", a, b); len(r.Functions) > 0 {
			sawDelta = true
		}
	}
	if !sawDelta {
		t.Fatal("no shape produced a non-empty diff between different seeds")
	}
}
