// FuzzDiffCompacted: diffing a corrupt or truncated container must
// fail with a structured encoding error — mapping to exit code 3/4/5
// and HTTP 422 — never a panic, and never the unstructured failure
// class that would read as exit 1 ("regression") in CI.
package diff_test

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"twpp/internal/cli"
	"twpp/internal/core"
	"twpp/internal/diff"
	"twpp/internal/testkit"
	"twpp/internal/wpp"
	"twpp/internal/wppfile"
)

func FuzzDiffCompacted(f *testing.F) {
	corpus := testkit.Corpus(3)
	c, _ := wpp.Compact(corpus[testkit.Regular])
	tw := core.FromCompacted(c)
	v2, err := wppfile.EncodeCompactedFormat(tw, 1, wppfile.FormatV2)
	if err != nil {
		f.Fatal(err)
	}
	v1, err := wppfile.EncodeCompactedFormat(tw, 1, wppfile.FormatV1)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(v2)
	f.Add(v1)
	// A different valid profile: the diff succeeds and reports deltas.
	c2, _ := wpp.Compact(corpus[testkit.Periodic])
	other, err := wppfile.EncodeCompactedFormat(core.FromCompacted(c2), 1, wppfile.FormatV2)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(other)
	// Hostile seeds: truncations and bit flips at varied depths.
	for _, n := range []int{0, 4, len(v2) / 4, len(v2) / 2, len(v2) - 3} {
		f.Add(testkit.Truncate(v2, n))
	}
	for _, off := range []int{1, 9, len(v2) / 3, 2 * len(v2) / 3, len(v2) - 5} {
		f.Add(testkit.BitFlip(v2, off, 3))
		f.Add(testkit.BitFlip(v1, off%len(v1), 5))
	}

	goodDir, err := os.MkdirTemp("", "fuzzdiff-*")
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(func() { os.RemoveAll(goodDir) })
	good := filepath.Join(goodDir, "good.twpp")
	if err := os.WriteFile(good, v2, 0o644); err != nil {
		f.Fatal(err)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		bad := filepath.Join(t.TempDir(), "b.twpp")
		if err := os.WriteFile(bad, data, 0o644); err != nil {
			t.Fatal(err)
		}
		check := func(dir string, err error) {
			if err == nil {
				return // valid input, diff produced a report
			}
			if !testkit.Structured(err) {
				t.Fatalf("diff %s: unstructured error on hostile input: %v", dir, err)
			}
			if code := cli.ExitCode(err); code < cli.ExitCorrupt || code > cli.ExitLimit {
				t.Fatalf("diff %s: structured error mapped to exit %d, want 3..5: %v", dir, code, err)
			}
		}
		_, err := diff.Files(context.Background(), good, bad, wppfile.OpenOptions{}, diff.DefaultOptions())
		check("good-vs-bad", err)
		_, err = diff.Files(context.Background(), bad, good, wppfile.OpenOptions{}, diff.DefaultOptions())
		check("bad-vs-good", err)
	})
}
