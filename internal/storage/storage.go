// Package storage abstracts how on-disk WPP containers are read. The
// reader stack above it (wppfile.CompactedFile, the decode cache,
// RawStreamReader, the server mount path) only ever needs positioned
// reads over an immutable byte range, so the whole contract is three
// methods: ReadAt, Size, Close.
//
// Three backends implement it:
//
//   - file: positioned pread on a shared *os.File descriptor — the
//     default, safe everywhere, one syscall per read;
//   - mmap: the file mapped read-only into the address space
//     (syscall.Mmap on linux; transparently falls back to the file
//     backend elsewhere), so hot-path extraction is a memcpy with no
//     syscall;
//   - memory: an in-memory byte slice, for tests, fixtures, and
//     serving images that were built or received without touching disk.
//
// All backends are safe for concurrent ReadAt use by any number of
// goroutines; Close must not race in-flight reads (callers above gate
// on their own closed flag, matching the CompactedFile contract).
package storage

import (
	"fmt"
	"io"
	"os"
)

// Backend is a read-only, randomly accessible byte container. ReadAt
// follows io.ReaderAt semantics: a read past the end returns the bytes
// available and io.EOF, and concurrent calls are safe.
type Backend interface {
	io.ReaderAt
	// Size reports the total byte length of the container.
	Size() int64
	// Close releases the backing resources. The backend must not be
	// used afterwards.
	Close() error
}

// Kind selects a Backend implementation when opening by path.
type Kind int

const (
	// KindFile reads through positioned I/O on an os.File (default).
	KindFile Kind = iota
	// KindMmap maps the file read-only into memory (linux; other
	// platforms silently get KindFile behaviour).
	KindMmap
	// KindMemory slurps the whole file into a byte slice at open.
	KindMemory
)

// String names the kind for flags, logs, and benchmark labels.
func (k Kind) String() string {
	switch k {
	case KindFile:
		return "file"
	case KindMmap:
		return "mmap"
	case KindMemory:
		return "memory"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// ParseKind resolves a backend flag value ("file", "mmap", "memory").
func ParseKind(s string) (Kind, error) {
	switch s {
	case "", "file":
		return KindFile, nil
	case "mmap":
		return KindMmap, nil
	case "memory", "mem":
		return KindMemory, nil
	}
	return 0, fmt.Errorf("storage: unknown backend %q (want file, mmap, or memory)", s)
}

// Open opens path with the chosen backend kind.
func Open(path string, kind Kind) (Backend, error) {
	switch kind {
	case KindFile:
		return OpenFile(path)
	case KindMmap:
		return OpenMmap(path)
	case KindMemory:
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		return FromBytes(data), nil
	default:
		return nil, fmt.Errorf("storage: unknown backend kind %d", int(kind))
	}
}

// OpenFile opens path as a positioned-read file backend.
func OpenFile(path string) (Backend, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &fileBackend{f: f, size: st.Size()}, nil
}

// fileBackend reads through pread on a shared descriptor. os.File's
// ReadAt is already concurrency-safe (it never moves the file offset).
type fileBackend struct {
	f    *os.File
	size int64
}

func (b *fileBackend) ReadAt(p []byte, off int64) (int, error) { return b.f.ReadAt(p, off) }
func (b *fileBackend) Size() int64                             { return b.size }
func (b *fileBackend) Close() error                            { return b.f.Close() }

// FromBytes wraps data as an in-memory backend. The backend aliases
// data; callers must not mutate it afterwards.
func FromBytes(data []byte) Backend {
	return &memBackend{data: data}
}

type memBackend struct {
	data []byte
}

func (b *memBackend) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("storage: negative offset %d", off)
	}
	if off >= int64(len(b.data)) {
		return 0, io.EOF
	}
	n := copy(p, b.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (b *memBackend) Size() int64  { return int64(len(b.data)) }
func (b *memBackend) Close() error { return nil }

// Reader adapts a Backend to a sequential io.Reader over its full
// range, for streaming consumers (RawStreamReader).
func Reader(b Backend) *io.SectionReader {
	return io.NewSectionReader(b, 0, b.Size())
}
