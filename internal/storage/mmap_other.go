//go:build !linux

package storage

// OpenMmap on non-linux platforms falls back to the positioned-read
// file backend: the Backend contract is identical, only the syscall
// profile differs, so callers can request KindMmap unconditionally.
func OpenMmap(path string) (Backend, error) {
	return OpenFile(path)
}
