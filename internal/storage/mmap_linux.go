//go:build linux

package storage

import (
	"fmt"
	"io"
	"os"
	"syscall"
)

// OpenMmap maps path read-only into the address space. The descriptor
// is closed immediately after mapping (the mapping survives it), so an
// mmap backend holds no file descriptor between reads. Empty files get
// a memory backend: mmap of length 0 is an error on linux.
func OpenMmap(path string) (Backend, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	size := st.Size()
	if size == 0 {
		f.Close()
		return FromBytes(nil), nil
	}
	if size != int64(int(size)) {
		f.Close()
		return nil, fmt.Errorf("storage: file %s too large to map (%d bytes)", path, size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	f.Close()
	if err != nil {
		return nil, fmt.Errorf("storage: mmap %s: %w", path, err)
	}
	return &mmapBackend{data: data}, nil
}

// mmapBackend serves reads straight out of the mapping. Reads are pure
// memory copies; Close unmaps.
type mmapBackend struct {
	data []byte
}

func (b *mmapBackend) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("storage: negative offset %d", off)
	}
	if off >= int64(len(b.data)) {
		return 0, io.EOF
	}
	n := copy(p, b.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (b *mmapBackend) Size() int64 { return int64(len(b.data)) }

func (b *mmapBackend) Close() error {
	if b.data == nil {
		return nil
	}
	data := b.data
	b.data = nil
	return syscall.Munmap(data)
}
