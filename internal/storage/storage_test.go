package storage

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func writeTemp(t *testing.T, data []byte) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "data.bin")
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

// Every backend must agree byte for byte with the source data on full
// reads, offset reads, short tails, and past-the-end reads.
func TestBackendContract(t *testing.T) {
	data := make([]byte, 4097)
	for i := range data {
		data[i] = byte(i * 31)
	}
	path := writeTemp(t, data)

	for _, kind := range []Kind{KindFile, KindMmap, KindMemory} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			b, err := Open(path, kind)
			if err != nil {
				t.Fatal(err)
			}
			defer b.Close()
			if b.Size() != int64(len(data)) {
				t.Fatalf("Size = %d, want %d", b.Size(), len(data))
			}

			full := make([]byte, len(data))
			if _, err := b.ReadAt(full, 0); err != nil && err != io.EOF {
				t.Fatalf("full read: %v", err)
			}
			if !bytes.Equal(full, data) {
				t.Fatal("full read differs from source")
			}

			mid := make([]byte, 100)
			if _, err := b.ReadAt(mid, 1000); err != nil {
				t.Fatalf("mid read: %v", err)
			}
			if !bytes.Equal(mid, data[1000:1100]) {
				t.Fatal("mid read differs from source")
			}

			// Short tail: io.ReaderAt semantics require the available
			// bytes plus io.EOF.
			tail := make([]byte, 100)
			n, err := b.ReadAt(tail, int64(len(data))-10)
			if n != 10 || err != io.EOF {
				t.Fatalf("tail read: n=%d err=%v, want 10, io.EOF", n, err)
			}
			if !bytes.Equal(tail[:10], data[len(data)-10:]) {
				t.Fatal("tail bytes differ")
			}

			if n, err := b.ReadAt(make([]byte, 1), int64(len(data))); n != 0 || err != io.EOF {
				t.Fatalf("past-end read: n=%d err=%v, want 0, io.EOF", n, err)
			}

			// The sequential adapter must replay the identical stream.
			seq, err := io.ReadAll(Reader(b))
			if err != nil {
				t.Fatalf("sequential read: %v", err)
			}
			if !bytes.Equal(seq, data) {
				t.Fatal("sequential read differs from source")
			}
		})
	}
}

// Concurrent positioned reads on one backend must be race-free and
// correct (run under -race in ci).
func TestConcurrentReads(t *testing.T) {
	data := make([]byte, 1<<16)
	for i := range data {
		data[i] = byte(i)
	}
	path := writeTemp(t, data)
	for _, kind := range []Kind{KindFile, KindMmap, KindMemory} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			b, err := Open(path, kind)
			if err != nil {
				t.Fatal(err)
			}
			defer b.Close()
			var wg sync.WaitGroup
			for g := 0; g < 16; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					buf := make([]byte, 512)
					for i := 0; i < 64; i++ {
						off := int64((g*64 + i) * 512 % (len(data) - 512))
						if _, err := b.ReadAt(buf, off); err != nil {
							t.Errorf("read at %d: %v", off, err)
							return
						}
						if !bytes.Equal(buf, data[off:off+512]) {
							t.Errorf("read at %d differs", off)
							return
						}
					}
				}(g)
			}
			wg.Wait()
		})
	}
}

func TestEmptyFileBackends(t *testing.T) {
	path := writeTemp(t, nil)
	for _, kind := range []Kind{KindFile, KindMmap, KindMemory} {
		b, err := Open(path, kind)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if b.Size() != 0 {
			t.Errorf("%s: size %d", kind, b.Size())
		}
		if n, err := b.ReadAt(make([]byte, 1), 0); n != 0 || err != io.EOF {
			t.Errorf("%s: read on empty: n=%d err=%v", kind, n, err)
		}
		b.Close()
	}
}

func TestParseKind(t *testing.T) {
	cases := map[string]Kind{"": KindFile, "file": KindFile, "mmap": KindMmap, "memory": KindMemory, "mem": KindMemory}
	for s, want := range cases {
		got, err := ParseKind(s)
		if err != nil || got != want {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseKind("tape"); err == nil {
		t.Error("ParseKind(tape) succeeded")
	}
}

func TestMmapCloseIdempotent(t *testing.T) {
	path := writeTemp(t, []byte("hello"))
	b, err := OpenMmap(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}
