// Package figures reproduces the worked examples of Zhang & Gupta
// (PLDI 2001) Figures 9-12 by actually running the corresponding
// analyses: dynamic load redundancy (Figure 9), the three dynamic
// slicing algorithms (Figures 10-11), and dynamic currency
// determination (Figure 12).
package figures

import (
	"fmt"
	"io"

	"twpp/internal/cfg"
	"twpp/internal/currency"
	"twpp/internal/dataflow"
	"twpp/internal/interp"
	"twpp/internal/minilang"
	"twpp/internal/slicing"
	"twpp/internal/trace"
	"twpp/internal/wpp"
)

// Print writes the named figure's reproduction to w. Figures 10 and
// 11 are one combined experiment.
func Print(w io.Writer, figure int) error {
	switch figure {
	case 9:
		return Figure9(w)
	case 10, 11:
		return Figure10And11(w)
	case 12:
		return Figure12(w)
	default:
		return fmt.Errorf("figures: no figure %d (have 9, 10/11, 12)", figure)
	}
}

// Figure9 reproduces the dynamic load redundancy example: a 100-
// iteration loop over three paths; 1 loads (GEN), 6 stores (KILL),
// 4 re-loads. The TWPP analysis proves 4's load 100% redundant with
// 6 queries in a single backward pass.
func Figure9(w io.Writer) error {
	fmt.Fprintln(w, "Figure 9: detecting dynamic load redundancy")
	fmt.Fprintln(w, "  loop paths: (1.2.3.4.5)^40 (1.2.7.4.5)^20 (1.6.7.8.5)^40")
	fmt.Fprintln(w, "  1 = load (GEN), 6 = store (KILL), query: load at 4")

	var path wpp.PathTrace
	add := func(blocks []cfg.BlockID, n int) {
		for i := 0; i < n; i++ {
			path = append(path, blocks...)
		}
	}
	add([]cfg.BlockID{1, 2, 3, 4, 5}, 40)
	add([]cfg.BlockID{1, 2, 7, 4, 5}, 20)
	add([]cfg.BlockID{1, 6, 7, 8, 5}, 40)

	tg := dataflow.BuildFromPath(path)
	for _, b := range []cfg.BlockID{1, 2, 3, 7, 4, 6} {
		fmt.Fprintf(w, "  T(%d) = %s\n", b, tg.Node(b).Times)
	}
	prob := &dataflow.GenKillProblem{
		GenBlocks:  map[cfg.BlockID]bool{1: true},
		KillBlocks: map[cfg.BlockID]bool{6: true},
	}
	res, err := dataflow.SolveAll(tg, prob, 4)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  query <T(4), 4>_redundant: %d/%d executions redundant (%.0f%%), %s\n",
		res.True.Count(), tg.Node(4).Times.Count(), 100*res.Frequency(), res.Holds())
	fmt.Fprintf(w, "  queries generated: %d (paper: 6), backward steps: %d\n", res.Queries, res.Steps)
	return nil
}

// figure10Src is the paper's Figure 10 program; with per-statement
// CFGs, block ids equal the paper's statement numbers.
const figure10Src = `
func main() {
    read N;
    var I = 1;
    var J = 0;
    while (I <= N) {
        read X;
        if (X < 0) {
            Y = f1(X);
        } else {
            Y = f2(X);
        }
        Z = f3(Y);
        print(Z);
        J = 1;
        I = I + 1;
    }
    Z = Z + J;
    print(Z);
}
func f1(x) { return 0 - x; }
func f2(x) { return x * 2; }
func f3(y) { return y + 1; }
`

// Figure10And11 reproduces the dynamic slicing example: input N=3,
// X = (-4, 3, -2), slice on Z at the breakpoint (statement 14) with
// all three Agrawal-Horgan approaches.
func Figure10And11(w io.Writer) error {
	fmt.Fprintln(w, "Figures 10-11: dynamic slicing (Agrawal-Horgan approaches 1-3)")
	fmt.Fprintln(w, "  program: paper Figure 10; input N=3, X=(-4, 3, -2); slice on Z at statement 14")

	prog, err := minilang.Parse(figure10Src)
	if err != nil {
		return err
	}
	p, err := cfg.Build(prog, cfg.PerStatement)
	if err != nil {
		return err
	}
	names := make([]string, len(prog.Funcs))
	for i, fn := range prog.Funcs {
		names[i] = fn.Name
	}
	b := trace.NewBuilder(names)
	if _, err := interp.Run(p, b, []int64{3, -4, 3, -2}, interp.Limits{}); err != nil {
		return err
	}
	wppTrace := b.Finish()
	tg := dataflow.BuildFromPath(wpp.PathTrace(wppTrace.Traces[wppTrace.Root.Trace]))

	s := slicing.New(p.Graphs[p.MainID()], tg)
	crit := slicing.Criterion{Block: 14, Vars: []cfg.Loc{{Var: "Z"}}}
	for i, approach := range []func(slicing.Criterion) (*slicing.Slice, error){
		s.Approach1, s.Approach2, s.Approach3,
	} {
		sl, err := approach(crit)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  approach %d slice: %v (%d statements)\n", i+1, sl.Blocks, len(sl.Blocks))
	}
	fmt.Fprintln(w, "  paper: A1 = all-{10}, A2 = all-{3,10}, A3 = all-{3,8,10}")
	return nil
}

// Figure12 reproduces dynamic currency determination: partial dead
// code elimination sank an assignment of X from block 1 into block 2;
// at a breakpoint in block 3, X is current on path 1.2.3 and
// non-current on path 1.4.3.
func Figure12(w io.Writer) error {
	fmt.Fprintln(w, "Figure 12: detecting dynamic currency")
	m := currency.Motion{Var: "X", From: 1, To: 2}
	for _, path := range []wpp.PathTrace{{1, 2, 3}, {1, 4, 3}} {
		tg := dataflow.BuildFromPath(path)
		v, err := currency.At(tg, m, 3, 3)
		if err != nil {
			return err
		}
		state := "non-current"
		if v.Current {
			state = "current"
		}
		fmt.Fprintf(w, "  path %v: X is %s — %s\n", path, state, v.Reason)
	}
	fmt.Fprintln(w, "  paper: current on 1.2.3, non-current on 1.4.3")
	return nil
}
