package figures

import (
	"bytes"
	"strings"
	"testing"
)

func TestFigure9Output(t *testing.T) {
	var buf bytes.Buffer
	if err := Figure9(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"T(1) = [1:496:5]",
		"T(2) = [2:297:5]",
		"T(3) = [3:198:5]",
		"T(7) = [203:498:5]",
		"T(4) = [4:299:5]",
		"60/60 executions redundant (100%), always",
		"queries generated: 6",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure 9 output missing %q:\n%s", want, out)
		}
	}
}

func TestFigure10And11Output(t *testing.T) {
	var buf bytes.Buffer
	if err := Figure10And11(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"approach 1 slice: [1 2 3 4 5 6 7 8 9 11 12 13 14]",
		"approach 2 slice: [1 2 4 5 6 7 8 9 11 12 13 14]",
		"approach 3 slice: [1 2 4 5 6 7 9 11 12 13 14]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Figures 10-11 output missing %q:\n%s", want, out)
		}
	}
}

func TestFigure12Output(t *testing.T) {
	var buf bytes.Buffer
	if err := Figure12(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "path [1 2 3]: X is current") {
		t.Errorf("missing current verdict:\n%s", out)
	}
	if !strings.Contains(out, "path [1 4 3]: X is non-current") {
		t.Errorf("missing non-current verdict:\n%s", out)
	}
}

func TestPrintDispatch(t *testing.T) {
	for _, f := range []int{9, 10, 11, 12} {
		var buf bytes.Buffer
		if err := Print(&buf, f); err != nil {
			t.Errorf("Print(%d): %v", f, err)
		}
		if buf.Len() == 0 {
			t.Errorf("Print(%d): empty output", f)
		}
	}
	var buf bytes.Buffer
	if err := Print(&buf, 1); err == nil {
		t.Error("Print(1): want error")
	}
}
