package passes_test

import (
	"context"
	"encoding/json"
	"errors"
	"net/url"
	"testing"

	"twpp/internal/cli"
	"twpp/internal/passes"
	"twpp/internal/testkit"
	"twpp/internal/wppfile"
)

// FuzzAnalyzePass drives the registry the way the analyze endpoint
// does — arbitrary container bytes, an arbitrary pass name, and an
// arbitrary query string — and enforces the pass contract: no panic,
// every failure classifies into a structured exit class (usage,
// corrupt, truncated, limit, canceled) or a not-found sentinel, and
// every success marshals to JSON. An unclassified error would surface
// as a CLI exit 1 or an HTTP 500, which hostile input must never
// cause.
func FuzzAnalyzePass(f *testing.F) {
	for _, w := range testkit.Corpus(77) {
		_, compacted, err := testkit.EncodeBoth(w)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(compacted, "kpaths", "func=0&k=2")
		f.Add(compacted, "trace", "func=1&trace=0")
		f.Add(compacted, "query", "func=0&block=2&gen=1&kill=3&trace=0")
		f.Add(testkit.BitFlip(compacted, len(compacted)/2, 1), "cfg", "func=0&trace=0")
		f.Add(testkit.Truncate(compacted, len(compacted)/2), "funcs", "")
		f.Add(compacted, "stats", "func=%zz&k=-1")
		f.Add(compacted, "nope", "func=0")
	}
	opts := wppfile.OpenOptions{
		MaxTraceBytes: 1 << 20,
		MaxFuncTraces: 1 << 10,
		MaxSeqValues:  1 << 12,
	}
	f.Fuzz(func(t *testing.T, data []byte, pass, query string) {
		c, err := wppfile.OpenCompactedBytes(data, opts)
		if err != nil {
			requireClassified(t, "open", err)
			return
		}
		defer c.Close()

		vals, err := url.ParseQuery(query)
		if err != nil {
			// Malformed query strings are rejected by net/http before a
			// handler (or the registry) ever sees them.
			return
		}
		params := map[string]string{}
		for k, v := range vals {
			if len(v) > 0 {
				params[k] = v[0]
			}
		}
		res, err := passes.Run(context.Background(), pass, c,
			passes.Params{Source: "fuzz", Values: params})
		if err != nil {
			requireClassified(t, "run "+pass, err)
			return
		}
		if _, err := json.Marshal(res); err != nil {
			t.Fatalf("pass %s: unmarshalable result: %v", pass, err)
		}
	})
}

// requireClassified fails the fuzz run on any error the serving and
// CLI surfaces cannot map to a deliberate status: everything must be
// a usage/corrupt/truncated/limit/canceled class or a not-found
// sentinel.
func requireClassified(t *testing.T, op string, err error) {
	t.Helper()
	if errors.Is(err, passes.ErrNotFound) || errors.Is(err, wppfile.ErrNoFunction) {
		return
	}
	if cli.ExitCode(err) == cli.ExitFailure {
		t.Fatalf("%s: unclassified error (would be exit 1 / HTTP 500): %v", op, err)
	}
}
