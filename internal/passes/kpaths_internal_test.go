package passes

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"twpp/internal/cfg"
	"twpp/internal/core"
	"twpp/internal/encoding"
	"twpp/internal/wpp"
)

// Regression: the original windowKey framed iterations with a 0xff
// terminator, but varints for block ids ≡ 127 (mod 128) *begin* with
// 0xff, so the realizable windows [[1],[1,255]] and [[1,255],[1]]
// (from traces 1,1,255 and 1,255,1 of the same function) encoded to
// the same key and had their counts merged. Length-prefix framing must
// keep every distinct window distinct.
func TestWindowKeyUniquelyDecodable(t *testing.T) {
	a := windowKey([][]int{{1}, {1, 255}})
	b := windowKey([][]int{{1, 255}, {1}})
	if a == b {
		t.Fatalf("windowKey collision on the reviewer's case: %x", a)
	}

	// Brute force: every k=2 window over iterations of length 1..2
	// drawn from ids spanning the varint boundary cases, including ids
	// whose encodings start with a continuation byte (127, 255, 16383).
	ids := []int{1, 127, 128, 255, 16383}
	var iters [][]int
	for _, x := range ids {
		iters = append(iters, []int{x})
		for _, y := range ids {
			iters = append(iters, []int{x, y})
		}
	}
	keys := map[string]string{}
	for _, i1 := range iters {
		for _, i2 := range iters {
			win := [][]int{i1, i2}
			repr := fmt.Sprintf("%v", win)
			key := windowKey(win)
			if prev, ok := keys[key]; ok && prev != repr {
				t.Errorf("windows %s and %s share key %x", prev, repr, key)
			}
			keys[key] = repr
		}
	}
}

// synthFT builds a one-trace FunctionTWPP whose single block claims
// every timestamp 1..n, so its expanded length is exactly n without
// materializing anything.
func synthFT(n int64) *core.FunctionTWPP {
	return &core.FunctionTWPP{
		Traces: []*core.Trace{{
			Len:    int(n),
			Blocks: []core.BlockTimes{{Block: 1, Times: core.Seq{{Lo: 1, Hi: n, Step: 1}}}},
		}},
		Dicts:  []wpp.Dictionary{{}},
		DictOf: []int{0},
	}
}

// Regression: window storage is O(expanded blocks × k), so a container
// that passes the plain expansion check must still be rejected when k
// multiplies it past the budget — same structured CodeLimit rejection
// (exit 5, HTTP 422), before any length-proportional allocation.
func TestCheckExpandScaledBoundsProduct(t *testing.T) {
	ft := synthFT(MaxExpandBlocks)
	if err := checkExpand(ft, -1); err != nil {
		t.Fatalf("at-limit container rejected at scale 1: %v", err)
	}
	if err := checkExpandScaled(ft, -1, 1); err != nil {
		t.Fatalf("checkExpandScaled(1) disagrees with checkExpand: %v", err)
	}
	err := checkExpandScaled(ft, -1, 2)
	var ee *encoding.Error
	if !errors.As(err, &ee) || ee.Code != encoding.CodeLimit {
		t.Fatalf("scale 2 over an at-limit container: err %v, want CodeLimit", err)
	}
	// A container small enough that even MaxK windows fit stays accepted.
	if err := checkExpandScaled(synthFT(MaxExpandBlocks/MaxK), -1, MaxK); err != nil {
		t.Fatalf("in-budget product rejected: %v", err)
	}
}

// Cancellation must be observed inside a single trace's expansion and
// window generation, not just between traces.
func TestIterationsPollsContext(t *testing.T) {
	path := make(wpp.PathTrace, 64)
	for i := range path {
		path[i] = cfg.BlockID(i%4 + 1)
	}
	ft := &core.FunctionTWPP{
		Traces: []*core.Trace{core.FromPath(path)},
		Dicts:  []wpp.Dictionary{{}},
		DictOf: []int{0},
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := iterations(ctx, ft, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("iterations under canceled ctx: err %v, want context.Canceled", err)
	}
	if got, err := iterations(context.Background(), ft, 0); err != nil || len(got) != 16 {
		t.Fatalf("iterations = %d windows, %v; want 16 iterations, nil", len(got), err)
	}
}
