// kpaths: k-iteration Ball-Larus path profiles computed from the
// timestamp series the containers already store (the PAPERS.md
// follow-on to the paper: Ball-Larus profiling across multiple loop
// iterations). A classic acyclic path profile ends every path at a
// back edge, so a hot *sequence* of iterations — the alternation
// A,B,A,B against the run A,A,B,B — is invisible at k=1. This pass
// splits each unique trace's expanded path into its loop iterations
// (a new iteration starts at the first repeated block of the current
// one, i.e. at the dynamic back edge), then counts every window of k
// consecutive iterations, weighted by how many calls used that trace
// (recovered from the dynamic call graph, exactly the hot-path walk
// the stats surfaces use). At k=1 this degenerates to the per-
// iteration acyclic profile, so for a loop-free function every path
// count equals the call count reported by stats.

package passes

import (
	"context"
	"encoding/binary"
	"sort"

	"twpp/internal/cfg"
	"twpp/internal/cli"
	"twpp/internal/core"
	"twpp/internal/wpp"
	"twpp/internal/wppfile"
)

// MaxK bounds the window length: windows are materialized as block
// sequences, so k is capped well below anything a real loop nest
// needs.
const MaxK = 64

func init() {
	Register(&Pass{
		Name:    "kpaths",
		Summary: "k-iteration Ball-Larus path profile: hot windows of k consecutive loop iterations",
		Params: []ParamDoc{
			{Name: "func", Kind: "int", Required: true, Doc: "function id"},
			{Name: "k", Kind: "int", Doc: "window length in loop iterations (default 1, max 64)"},
			{Name: "top", Kind: "int", Doc: "keep only the top N paths (default: all)"},
		},
		Run: runKPaths,
	})
}

func runKPaths(ctx context.Context, c wppfile.Container, p Params) (any, error) {
	fn, err := p.Func()
	if err != nil {
		return nil, err
	}
	k, err := p.Int("k", 1)
	if err != nil {
		return nil, err
	}
	if k < 1 || k > MaxK {
		return nil, cli.Usagef("bad k %d: want 1..%d", k, MaxK)
	}
	top, err := p.Int("top", 0)
	if err != nil {
		return nil, err
	}
	if top < 0 {
		return nil, cli.Usagef("bad top %d: want >= 0", top)
	}

	ft, release, err := Extract(ctx, c, fn)
	if err != nil {
		return nil, err
	}
	defer release()
	// Window storage is O(expanded blocks × k): every block lands in up
	// to k distinct windows, each deep-copied on first sight. Bound the
	// product, not just the expansion, so a large k cannot multiply an
	// in-limit container past the allocation budget.
	if err := checkExpandScaled(ft, -1, int64(k)); err != nil {
		return nil, err
	}

	uses, err := traceUses(c, fn, len(ft.Traces))
	if err != nil {
		return nil, err
	}

	res := &KPathsResult{
		File:  p.Source,
		Func:  int(fn),
		Name:  funcName(c, fn),
		K:     k,
		Calls: ft.CallCount,
		Paths: []KPathEntry{},
	}
	acc := map[string]*KPathEntry{}
	for i := range ft.Traces {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if uses[i] == 0 {
			continue
		}
		iters, err := iterations(ctx, ft, i)
		if err != nil {
			return nil, err
		}
		res.Iterations += uses[i] * len(iters)
		for w := 0; w+k <= len(iters); w++ {
			// A single trace at the expansion cap yields millions of
			// windows; poll periodically so deadlines and cancellation
			// bound the pass's longest step, not just its trace loop.
			if w&0xfff == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			win := iters[w : w+k]
			key := windowKey(win)
			e, ok := acc[key]
			if !ok {
				seq := make([][]int, k)
				for j, it := range win {
					seq[j] = append([]int(nil), it...)
				}
				e = &KPathEntry{Seq: seq}
				acc[key] = e
			}
			e.Count += uses[i]
			res.Windows += uses[i]
		}
	}

	for _, e := range acc {
		res.Paths = append(res.Paths, *e)
	}
	sort.Slice(res.Paths, func(a, b int) bool {
		pa, pb := res.Paths[a], res.Paths[b]
		if pa.Count != pb.Count {
			return pa.Count > pb.Count
		}
		return lessSeq(pa.Seq, pb.Seq)
	})
	if top > 0 && len(res.Paths) > top {
		res.Paths = res.Paths[:top]
	}
	return res, nil
}

// iterations expands unique trace i through its dictionary and splits
// the block sequence into loop iterations: a new iteration begins when
// the next block already executed in the current one, which is exactly
// where a Ball-Larus acyclic path terminates at the dynamic back edge.
// A loop-free invocation is a single iteration. Both the expansion and
// the split walk up to MaxExpandBlocks items, so each polls ctx
// periodically.
func iterations(ctx context.Context, ft *core.FunctionTWPP, i int) ([][]int, error) {
	compacted, err := ft.Traces[i].ToPath()
	if err != nil {
		return nil, err
	}
	dict := ft.Dicts[ft.DictOf[i]]
	var path wpp.PathTrace
	for n, id := range compacted {
		if n&0xfff == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if chain, ok := dict[id]; ok {
			path = append(path, chain...)
		} else {
			path = append(path, id)
		}
	}
	var iters [][]int
	seen := map[cfg.BlockID]bool{}
	var cur []int
	for n, b := range path {
		if n&0xfff == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if seen[b] {
			iters = append(iters, cur)
			cur = nil
			clear(seen)
		}
		seen[b] = true
		cur = append(cur, int(b))
	}
	if len(cur) > 0 {
		iters = append(iters, cur)
	}
	return iters, nil
}

// traceUses counts, per unique trace of fn, how many invocations used
// it, by walking the dynamic call graph iteratively (DeepRecursion
// profiles produce DCGs thousands of nodes deep, so no recursion).
func traceUses(c wppfile.Container, fn cfg.FuncID, n int) ([]int, error) {
	uses := make([]int, n)
	root, err := c.ReadDCG()
	if err != nil {
		return nil, err
	}
	stack := []*wpp.CallNode{root}
	for len(stack) > 0 {
		node := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if node == nil {
			continue
		}
		if node.Fn == fn && node.TraceIdx >= 0 && node.TraceIdx < n {
			uses[node.TraceIdx]++
		}
		stack = append(stack, node.Children...)
	}
	return uses, nil
}

// windowKey builds a map key for a window of iterations: each
// iteration is its block count as a varint followed by its block ids
// as varints. Length-prefix framing makes the key uniquely decodable;
// a terminator byte cannot, because varints for block ids >= 128 can
// *begin* with any continuation byte (ids ≡ 127 mod 128 start with
// 0xff), which let distinct windows such as [[1],[1,255]] and
// [[1,255],[1]] encode identically.
func windowKey(win [][]int) string {
	n := 0
	for _, it := range win {
		n += len(it)*2 + 1
	}
	b := make([]byte, 0, n)
	for _, it := range win {
		b = binary.AppendUvarint(b, uint64(len(it)))
		for _, blk := range it {
			b = binary.AppendUvarint(b, uint64(blk))
		}
	}
	return string(b)
}

// lessSeq orders equal-count windows deterministically: lexicographic
// over the flattened (block id, iteration boundary) form.
func lessSeq(a, b [][]int) bool {
	fa, fb := flatten(a), flatten(b)
	for i := 0; i < len(fa) && i < len(fb); i++ {
		if fa[i] != fb[i] {
			return fa[i] < fb[i]
		}
	}
	return len(fa) < len(fb)
}

func flatten(seq [][]int) []int {
	out := make([]int, 0, len(seq)*4)
	for _, it := range seq {
		out = append(out, it...)
		out = append(out, -1)
	}
	return out
}
