package passes_test

import (
	"context"
	"encoding/json"
	"errors"
	"path/filepath"
	"reflect"
	"strconv"
	"testing"

	"twpp"
	"twpp/internal/cli"
	"twpp/internal/passes"
)

// compileToFile traces src and stores it as a v2 file, returning the
// path.
func compileToFile(t *testing.T, src string) string {
	t.Helper()
	prog, err := twpp.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	run, err := prog.Trace(nil)
	if err != nil {
		t.Fatal(err)
	}
	tw, _ := twpp.Compact(run.WPP)
	path := filepath.Join(t.TempDir(), "t.twpp")
	if err := twpp.WriteFile(path, tw); err != nil {
		t.Fatal(err)
	}
	return path
}

func openFile(t *testing.T, path string) twpp.Container {
	t.Helper()
	f, err := twpp.OpenContainer(path, twpp.OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

const loopSrc = `
func main() {
    var a = alternating(12);
    var b = blocky(12);
    print(a + b);
}
func alternating(n) {
    var acc = 0;
    for (var i = 0; i < n; i = i + 1) {
        if (i % 2 == 0) {
            acc = acc + 1;
        } else {
            acc = acc + 2;
        }
    }
    return acc;
}
func blocky(n) {
    var acc = 0;
    for (var i = 0; i < n; i = i + 1) {
        if (i < 6) {
            acc = acc + 1;
        } else {
            acc = acc + 2;
        }
    }
    return acc;
}
`

func TestRegistryContents(t *testing.T) {
	names := passes.Names()
	for _, want := range []string{"cfg", "funcs", "kpaths", "query", "stats", "trace"} {
		if _, ok := passes.Get(want); !ok {
			t.Errorf("pass %q not registered (have %v)", want, names)
		}
	}
	infos := passes.Infos()
	if len(infos) != len(names) {
		t.Fatalf("Infos() = %d entries, Names() = %d", len(infos), len(names))
	}
	for i, info := range infos {
		if info.Name != names[i] {
			t.Errorf("Infos()[%d] = %q, want %q (lexical order)", i, info.Name, names[i])
		}
		if info.Params == nil {
			t.Errorf("pass %q: nil Params in Info (must marshal as [])", info.Name)
		}
	}
}

func TestRunUnknownPass(t *testing.T) {
	f := openFile(t, compileToFile(t, loopSrc))
	_, err := passes.Run(context.Background(), "nope", f, passes.Params{})
	if !errors.Is(err, passes.ErrUnknown) {
		t.Errorf("unknown pass: err %v, want ErrUnknown", err)
	}
	if !errors.Is(err, passes.ErrNotFound) {
		t.Errorf("unknown pass: err %v, want ErrNotFound (so servers answer 404)", err)
	}
}

func TestParams(t *testing.T) {
	p := passes.Params{Values: map[string]string{"k": "3", "bad": "x", "blocks": "1, 2,3", "badblocks": "1,a"}}
	if v, err := p.Int("k", 1); err != nil || v != 3 {
		t.Errorf("Int(k) = %d, %v", v, err)
	}
	if v, err := p.Int("absent", 7); err != nil || v != 7 {
		t.Errorf("Int(absent) = %d, %v", v, err)
	}
	if _, err := p.Int("bad", 0); cli.ExitCode(err) != cli.ExitUsage {
		t.Errorf("Int(bad): %v, want usage", err)
	}
	if m, err := p.Blocks("blocks"); err != nil || len(m) != 3 || !m[2] {
		t.Errorf("Blocks = %v, %v", m, err)
	}
	if m, err := p.Blocks("absent"); err != nil || len(m) != 0 {
		t.Errorf("Blocks(absent) = %v, %v", m, err)
	}
	if _, err := p.Blocks("badblocks"); cli.ExitCode(err) != cli.ExitUsage {
		t.Errorf("Blocks(badblocks): %v, want usage", err)
	}
	if _, err := p.Func(); cli.ExitCode(err) != cli.ExitUsage {
		t.Errorf("Func() without func: %v, want usage", err)
	}
}

// kpaths runs the pass and type-asserts the result.
func kpaths(t *testing.T, c twpp.Container, fn, k int) *passes.KPathsResult {
	t.Helper()
	res, err := passes.Run(context.Background(), "kpaths", c, passes.Params{
		Values: map[string]string{"func": itoa(fn), "k": itoa(k)},
	})
	if err != nil {
		t.Fatalf("kpaths(func=%d, k=%d): %v", fn, k, err)
	}
	return res.(*passes.KPathsResult)
}

func itoa(v int) string { return strconv.Itoa(v) }

// findFunc resolves a function id by name.
func findFunc(t *testing.T, c twpp.Container, name string) int {
	t.Helper()
	for i, n := range c.Names() {
		if n == name {
			return i
		}
	}
	t.Fatalf("no function %q (have %v)", name, c.Names())
	return -1
}

// The tentpole property: alternating (A,B,A,B,...) and blocky
// (A,...,A,B,...,B) loops have identical single-iteration profiles —
// the same iteration paths with the same counts — but different
// k=2 profiles, because only the window view sees iteration order.
func TestKPathsSeesCrossIterationOrder(t *testing.T) {
	f := openFile(t, compileToFile(t, loopSrc))
	alt := findFunc(t, f, "alternating")
	blk := findFunc(t, f, "blocky")

	a1, b1 := kpaths(t, f, alt, 1), kpaths(t, f, blk, 1)
	if !reflect.DeepEqual(a1.Paths, b1.Paths) {
		t.Errorf("k=1 profiles differ:\nalternating: %+v\nblocky:      %+v", a1.Paths, b1.Paths)
	}
	if a1.Calls != 1 || a1.Iterations != b1.Iterations || a1.Windows != b1.Windows {
		t.Errorf("k=1 headers differ: %+v vs %+v", a1, b1)
	}

	a2, b2 := kpaths(t, f, alt, 2), kpaths(t, f, blk, 2)
	if reflect.DeepEqual(a2.Paths, b2.Paths) {
		t.Errorf("k=2 profiles identical — the window view must distinguish iteration order:\n%+v", a2.Paths)
	}
	// The alternating loop's hottest k=2 window pairs the two distinct
	// iteration bodies; the blocky loop's pairs a body with itself.
	if len(a2.Paths) == 0 || len(b2.Paths) == 0 {
		t.Fatal("empty k=2 profiles")
	}
	hot := a2.Paths[0]
	if len(hot.Seq) != 2 || reflect.DeepEqual(hot.Seq[0], hot.Seq[1]) {
		t.Errorf("alternating hot k=2 window should pair two distinct iterations: %+v", hot)
	}
	bhot := b2.Paths[0]
	if len(bhot.Seq) != 2 || !reflect.DeepEqual(bhot.Seq[0], bhot.Seq[1]) {
		t.Errorf("blocky hot k=2 window should repeat one iteration: %+v", bhot)
	}
}

// k=1 agreement with stats: the Calls figure matches the stats pass
// exactly for every function, every call contributes at least one
// iteration, and at k=1 every iteration is a window.
func TestKPathsK1AgreesWithStats(t *testing.T) {
	f := openFile(t, compileToFile(t, loopSrc))
	for _, fn := range f.Functions() {
		sres, err := passes.Run(context.Background(), "stats", f, passes.Params{
			Values: map[string]string{"func": itoa(int(fn))},
		})
		if err != nil {
			t.Fatal(err)
		}
		stats := sres.(*passes.StatsResult)
		kp := kpaths(t, f, int(fn), 1)
		if kp.Calls != stats.Calls {
			t.Errorf("f%d: kpaths calls %d != stats calls %d", fn, kp.Calls, stats.Calls)
		}
		if kp.Iterations < kp.Calls {
			t.Errorf("f%d: %d iterations < %d calls", fn, kp.Iterations, kp.Calls)
		}
		if kp.Windows != kp.Iterations {
			t.Errorf("f%d: k=1 windows %d != iterations %d", fn, kp.Windows, kp.Iterations)
		}
		total := 0
		for _, p := range kp.Paths {
			total += p.Count
		}
		if total != kp.Windows {
			t.Errorf("f%d: path counts sum to %d, windows %d", fn, total, kp.Windows)
		}
	}
}

// A loop-free function has exactly one iteration per call, so its k=1
// path counts equal the call count.
func TestKPathsLoopFree(t *testing.T) {
	f := openFile(t, compileToFile(t, `
func main() {
    var s = 0;
    for (var i = 0; i < 9; i = i + 1) {
        s = s + leaf(i);
    }
    print(s);
}
func leaf(x) {
    if (x % 3 == 0) {
        return x + 1;
    }
    return x;
}
`))
	leaf := findFunc(t, f, "leaf")
	kp := kpaths(t, f, leaf, 1)
	if kp.Iterations != kp.Calls {
		t.Errorf("loop-free: %d iterations != %d calls", kp.Iterations, kp.Calls)
	}
	total := 0
	for _, p := range kp.Paths {
		if len(p.Seq) != 1 {
			t.Errorf("k=1 window with %d iterations", len(p.Seq))
		}
		total += p.Count
	}
	if total != kp.Calls {
		t.Errorf("path counts sum to %d, want calls %d", total, kp.Calls)
	}
}

// kpaths results are identical across {v1, v2, segmented} containers
// on {file, mmap, memory} backends, and match the facade entry point.
func TestKPathsCrossContainerMatrix(t *testing.T) {
	prog, err := twpp.Compile(loopSrc)
	if err != nil {
		t.Fatal(err)
	}
	run, err := prog.Trace(nil)
	if err != nil {
		t.Fatal(err)
	}
	tw, _ := twpp.Compact(run.WPP)

	dir := t.TempDir()
	v1 := filepath.Join(dir, "t1.twpp")
	if err := twpp.WriteFileOpts(v1, tw, twpp.CompactOptions{Format: twpp.FormatV1}); err != nil {
		t.Fatal(err)
	}
	v2 := filepath.Join(dir, "t2.twpp")
	if err := twpp.WriteFile(v2, tw); err != nil {
		t.Fatal(err)
	}
	segDir := filepath.Join(dir, "t.twppd")
	if err := twpp.CompactSegmented(segDir, tw, twpp.SegmentOptions{Segments: 2}); err != nil {
		t.Fatal(err)
	}

	type combo struct {
		kind, path string
		backend    twpp.BackendKind
	}
	var combos []combo
	for _, kp := range []struct{ kind, path string }{{"v1", v1}, {"v2", v2}, {"segmented", segDir}} {
		for _, b := range []struct {
			name    string
			backend twpp.BackendKind
		}{{"file", twpp.BackendFile}, {"mmap", twpp.BackendMmap}, {"memory", twpp.BackendMemory}} {
			combos = append(combos, combo{kind: kp.kind + "/" + b.name, path: kp.path, backend: b.backend})
		}
	}

	var baseline map[int]string
	for _, cb := range combos {
		f, err := twpp.OpenContainer(cb.path, twpp.OpenOptions{Backend: cb.backend})
		if err != nil {
			t.Fatalf("%s: open: %v", cb.kind, err)
		}
		got := map[int]string{}
		for _, fn := range f.Functions() {
			for _, k := range []int{1, 2, 3} {
				res, err := twpp.KPathProfile(f, fn, k)
				if err != nil {
					t.Fatalf("%s: kpaths f%d k=%d: %v", cb.kind, fn, k, err)
				}
				data, err := json.Marshal(res)
				if err != nil {
					t.Fatal(err)
				}
				got[int(fn)*100+k] = string(data)
			}
		}
		f.Close()
		if baseline == nil {
			baseline = got
			continue
		}
		if !reflect.DeepEqual(baseline, got) {
			t.Errorf("%s: kpaths diverge from baseline", cb.kind)
		}
	}
}

// Context cancellation reaches the pass.
func TestRunCanceled(t *testing.T) {
	f := openFile(t, compileToFile(t, loopSrc))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := passes.Run(ctx, "kpaths", f, passes.Params{
		Values: map[string]string{"func": "0", "k": "1"},
	})
	if err == nil {
		t.Error("canceled context: want error")
	}
}

// Usage-class parameter errors from every pass classify as exit 2.
func TestUsageErrors(t *testing.T) {
	f := openFile(t, compileToFile(t, loopSrc))
	cases := []struct {
		pass string
		vals map[string]string
	}{
		{"trace", map[string]string{}},
		{"trace", map[string]string{"func": "x"}},
		{"trace", map[string]string{"func": "0", "trace": "999"}},
		{"cfg", map[string]string{"func": "0", "trace": "-2"}},
		{"query", map[string]string{"func": "0"}},
		{"query", map[string]string{"func": "0", "block": "2", "gen": "a"}},
		{"kpaths", map[string]string{"func": "0", "k": "0"}},
		{"kpaths", map[string]string{"func": "0", "k": "101"}},
		{"kpaths", map[string]string{"func": "0", "k": "1", "top": "-1"}},
	}
	for _, tc := range cases {
		_, err := passes.Run(context.Background(), tc.pass, f, passes.Params{Values: tc.vals})
		if got := cli.ExitCode(err); got != cli.ExitUsage {
			t.Errorf("%s %v: exit %d (err %v), want usage", tc.pass, tc.vals, got, err)
		}
	}
}
