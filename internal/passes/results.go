// Result shapes shared by every dispatch surface. Field order is the
// JSON order, and every set is emitted in a deterministic order (index
// order, block first-execution order, count-then-path order), so
// identical requests yield identical bytes — the property the server's
// response cache and the parity oracles rely on. These structs were
// lifted unchanged from the server's bespoke handlers, so the HTTP
// bodies are byte-identical to the pre-registry responses.

package passes

// FuncInfo is one function's row in a FuncsResult.
type FuncInfo struct {
	ID         int    `json:"id"`
	Name       string `json:"name"`
	Calls      int    `json:"calls"`
	BlockBytes int    `json:"block_bytes"`
}

// FuncsResult lists a container's functions, hottest first.
type FuncsResult struct {
	File      string     `json:"file"`
	Functions []FuncInfo `json:"functions"`
}

// BlockInfo is one dynamic block of a TWPP trace: its id and the
// compacted timestamp set (arithmetic-series string form).
type BlockInfo struct {
	Block int    `json:"block"`
	Count int    `json:"count"`
	Times string `json:"times"`
}

// TraceInfo is one unique trace of a function.
type TraceInfo struct {
	Index  int         `json:"index"`
	Len    int         `json:"len"`
	Dict   int         `json:"dict"`
	Blocks []BlockInfo `json:"blocks"`
}

// TraceResult is the full extraction of one function: the paper's
// single-seek per-function query.
type TraceResult struct {
	File   string      `json:"file"`
	Func   int         `json:"func"`
	Name   string      `json:"name"`
	Calls  int         `json:"calls"`
	Dicts  int         `json:"dicts"`
	Traces []TraceInfo `json:"traces"`
}

// StatsResult summarizes one function without dumping its traces.
type StatsResult struct {
	File         string `json:"file"`
	Func         int    `json:"func"`
	Name         string `json:"name"`
	Calls        int    `json:"calls"`
	UniqueTraces int    `json:"unique_traces"`
	Dicts        int    `json:"dicts"`
	TotalLen     int    `json:"total_len"`
	BlockBytes   int    `json:"block_bytes"`
}

// CFGNode is one node of a dynamic CFG with its timestamp annotation
// and successor blocks.
type CFGNode struct {
	Block int    `json:"block"`
	Count int    `json:"count"`
	Times string `json:"times"`
	Succs []int  `json:"succs"`
}

// CFGResult is the timestamp-annotated dynamic CFG of one trace.
type CFGResult struct {
	File  string    `json:"file"`
	Func  int       `json:"func"`
	Trace int       `json:"trace"`
	Len   int       `json:"len"`
	Edges int       `json:"edges"`
	Nodes []CFGNode `json:"nodes"`
}

// QueryResult is the resolution of a profile-limited GEN-KILL query.
type QueryResult struct {
	File            string  `json:"file"`
	Func            int     `json:"func"`
	Trace           int     `json:"trace"`
	Block           int     `json:"block"`
	Holds           string  `json:"holds"`
	True            string  `json:"true"`
	TrueCount       int     `json:"true_count"`
	False           string  `json:"false"`
	FalseCount      int     `json:"false_count"`
	Unresolved      string  `json:"unresolved"`
	UnresolvedCount int     `json:"unresolved_count"`
	Frequency       float64 `json:"frequency"`
	Queries         int     `json:"queries"`
	Steps           int     `json:"steps"`
}

// KPathEntry is one k-iteration path of a KPathsResult: a sequence of
// k consecutive loop-iteration paths (each a block-id sequence) and
// the number of times the sequence was executed across all calls.
type KPathEntry struct {
	Seq   [][]int `json:"seq"`
	Count int     `json:"count"`
}

// KPathsResult is a function's k-iteration Ball-Larus path profile,
// computed from the stored timestamp series without decompressing the
// container: every window of k consecutive loop iterations, with
// counts, hottest first.
type KPathsResult struct {
	File string `json:"file"`
	Func int    `json:"func"`
	Name string `json:"name"`
	K    int    `json:"k"`
	// Calls is the function's invocation count (equals the stats
	// pass's calls figure exactly).
	Calls int `json:"calls"`
	// Iterations counts loop iterations (acyclic path segments) summed
	// over every call; for a loop-free function it equals Calls.
	Iterations int `json:"iterations"`
	// Windows counts the k-windows profiled: calls whose iteration
	// count is below k contribute none.
	Windows int          `json:"windows"`
	Paths   []KPathEntry `json:"paths"`
}
