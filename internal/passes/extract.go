// Pooled extraction for passes. Every pass that decodes a function
// goes through Extract, which routes to the container's
// zero-allocation pooled path when it has one (the PR 6 discipline:
// warm extractions allocate nothing) and falls back to the plain
// interface method otherwise. The cost of pooling is an ownership
// rule: the decoded FunctionTWPP aliases the pooled buffer, so a pass
// must copy everything it returns out of the extraction before calling
// release — result structs hold ints and strings, never core slices.

package passes

import (
	"context"

	"twpp/internal/cfg"
	"twpp/internal/core"
	"twpp/internal/encoding"
	"twpp/internal/segment"
	"twpp/internal/wppfile"
)

// Extract decodes fn from c through the pooled zero-allocation path
// when available. The returned release func must be called exactly
// once, after the extraction result (and anything aliasing it) is
// dead; the result must not escape the pass.
//
// Containers with a decode cache enabled take the cacheable path
// instead: pooled decodes are never inserted into the cache (the cache
// must own its blocks), so pooling there would starve the cross-request
// sharing a serving layer configures the cache for.
func Extract(ctx context.Context, c wppfile.Container, fn cfg.FuncID) (ft *core.FunctionTWPP, release func(), err error) {
	if c.CacheShardStats() != nil {
		ft, err = c.ExtractFunctionCtx(ctx, fn)
		if err != nil {
			return nil, nil, err
		}
		return ft, func() {}, nil
	}
	switch f := c.(type) {
	case *wppfile.CompactedFile:
		buf := wppfile.GetExtractBuffer()
		ft, err = f.ExtractFunctionIntoCtx(ctx, fn, buf)
		if err != nil {
			wppfile.PutExtractBuffer(buf)
			return nil, nil, err
		}
		return ft, func() { wppfile.PutExtractBuffer(buf) }, nil
	case *segment.Set:
		buf := segment.GetBuffer()
		ft, err = f.ExtractFunctionIntoCtx(ctx, fn, buf)
		if err != nil {
			segment.PutBuffer(buf)
			return nil, nil, err
		}
		return ft, func() { segment.PutBuffer(buf) }, nil
	default:
		ft, err = c.ExtractFunctionCtx(ctx, fn)
		if err != nil {
			return nil, nil, err
		}
		return ft, func() {}, nil
	}
}

// MaxExpandBlocks bounds the total expanded (dictionary-applied) path
// length a single pass invocation may materialize. Expansion is the
// one place an analysis leaves the compacted domain — dynamic-CFG
// construction and iteration splitting need the block sequence — and
// arithmetic-series timestamps let a tiny hostile container declare an
// enormous trace, so the bound is enforced *before* any
// length-proportional allocation. Exceeding it is a structured
// resource-limit rejection (exit 5, HTTP 422), the same class as the
// decode limits in wppfile.OpenOptions.
const MaxExpandBlocks = 1 << 22

// checkExpand validates that expanding the given traces stays under
// MaxExpandBlocks, counting expanded (post-dictionary) lengths.
func checkExpand(ft *core.FunctionTWPP, traceIdx int) error {
	return checkExpandScaled(ft, traceIdx, 1)
}

// checkExpandScaled is checkExpand with a per-block multiplier: a pass
// that may materialize each expanded block up to scale times (kpaths
// copies blocks into up to k overlapping windows) must bound the
// product, or a maximal scale against a container near the limit would
// allocate scale× the budget before any per-window work starts. The
// comparison divides rather than multiplies so a hostile container
// declaring a near-overflow expansion cannot wrap the product.
func checkExpandScaled(ft *core.FunctionTWPP, traceIdx int, scale int64) error {
	total := int64(0)
	if traceIdx >= 0 {
		total = expandedLen(ft, traceIdx)
	} else {
		for i := range ft.Traces {
			total += expandedLen(ft, i)
		}
	}
	if total > MaxExpandBlocks/scale {
		return &encoding.Error{
			Code:   encoding.CodeLimit,
			Offset: -1,
			Detail: "trace expansion exceeds the analysis limit",
		}
	}
	return nil
}

// expandedLen computes trace i's expanded length from compacted
// timestamp counts and dictionary chain lengths, without materializing
// anything: sum over dynamic blocks of count × chain length.
func expandedLen(ft *core.FunctionTWPP, i int) int64 {
	t := ft.Traces[i]
	dict := ft.Dicts[ft.DictOf[i]]
	var n int64
	for _, bt := range t.Blocks {
		chain := 1
		if c, ok := dict[bt.Block]; ok {
			chain = len(c)
		}
		n += int64(bt.Times.Count()) * int64(chain)
	}
	return n
}
