// Package passes is the unified analysis-pass framework over compacted
// TWPP containers: a registry of named analyses, each with one
// execution contract, that the facade, the CLIs, and the HTTP server
// all dispatch through. The paper's central claim is that the
// timestamped representation supports analyses *without decompression*;
// this package is where such analyses live, so adding one means writing
// the algorithm once and registering it — the serving routes, the
// generic /v1/{mount}/analyze/{pass} endpoint, discovery, response
// caching, and the CLI all pick it up from the registry.
//
// The contract:
//
//   - A pass runs against any opened wppfile.Container — a v1 or v2
//     single file or a segmented directory, on any storage backend —
//     and must produce identical results for identical content
//     regardless of layout.
//   - Run receives a context; long work polls it so per-request
//     deadlines and CLI cancellation bound the pass.
//   - Extraction goes through the pooled zero-allocation path when the
//     container provides one (Extract), so hot passes do not regress
//     the PR 6 allocation discipline.
//   - Results are JSON-marshalable structs with deterministic field
//     and element order: identical requests yield identical bytes,
//     which is what makes them cacheable under the server's
//     content-hash/ETag regime.
//   - Errors are structured: parameter problems are cli.UsageError
//     (exit 2, HTTP 400), missing functions/blocks match ErrNotFound
//     or wppfile.ErrNoFunction (HTTP 404), and decode failures keep
//     their encoding.Error codes (exits 3–5, HTTP 422) — a pass never
//     surfaces hostile input as an internal fault.
package passes

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"twpp/internal/cfg"
	"twpp/internal/cli"
	"twpp/internal/wppfile"
)

// ErrUnknown matches (errors.Is) Run with a pass name that is not
// registered.
var ErrUnknown = errors.New("unknown analysis pass")

// ErrNotFound matches (errors.Is) lookups of entities absent from the
// container's content — a block that never executes, for example — as
// opposed to malformed parameters (usage) or damaged bytes (decode
// errors). Serving layers map it to 404.
var ErrNotFound = errors.New("not found")

// Params carries one analysis invocation's parameters: the raw
// key→value map (query-string or CLI flags, uniformly strings) plus
// the source label embedded in results so every surface reports where
// the answer came from (the mount name over HTTP, the input path in a
// CLI).
type Params struct {
	// Source labels the analyzed container in results (the JSON "file"
	// field).
	Source string
	// Values holds the raw parameters. A nil map reads as empty.
	Values map[string]string
}

// Get returns the raw value for key ("" when absent).
func (p Params) Get(key string) string { return p.Values[key] }

// Int parses an integer parameter, returning def when absent and a
// usage error when malformed.
func (p Params) Int(key string, def int) (int, error) {
	s, ok := p.Values[key]
	if !ok || s == "" {
		return def, nil
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, cli.Usagef("bad %s %q", key, s)
	}
	return v, nil
}

// Blocks parses a comma-separated block-id set parameter (empty when
// absent).
func (p Params) Blocks(key string) (map[cfg.BlockID]bool, error) {
	out := map[cfg.BlockID]bool{}
	s := p.Values[key]
	if s == "" {
		return out, nil
	}
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, cli.Usagef("bad block id %q in %s", part, key)
		}
		out[cfg.BlockID(v)] = true
	}
	return out, nil
}

// Func parses the required "func" parameter as a function id.
func (p Params) Func() (cfg.FuncID, error) {
	v, err := p.Int("func", -1)
	if err != nil {
		return 0, err
	}
	if v < 0 {
		return 0, cli.Usagef("missing func parameter")
	}
	return cfg.FuncID(v), nil
}

// ParamDoc documents one parameter of a pass for the discovery
// endpoint and generic clients.
type ParamDoc struct {
	// Name is the parameter key ("func", "trace", "k", ...).
	Name string `json:"name"`
	// Kind is the value syntax: "int" or "blocks" (comma-separated ids).
	Kind string `json:"kind"`
	// Required marks parameters without a usable default.
	Required bool `json:"required"`
	// Doc is a one-line description.
	Doc string `json:"doc"`
}

// Pass is one registered analysis: metadata plus the single execution
// entry point every surface dispatches through.
type Pass struct {
	// Name is the registry key and the {pass} segment of the generic
	// analyze endpoint.
	Name string
	// Summary is a one-line description for discovery.
	Summary string
	// Route, when non-empty, is the dedicated HTTP route pattern the
	// server additionally registers for the pass (relative to the mount
	// root, e.g. "/trace/{fn}"; a {fn} segment maps to the "func"
	// parameter). Analyze-only passes leave it empty.
	Route string
	// Params documents the accepted parameters.
	Params []ParamDoc
	// Run executes the pass. The result must be a JSON-marshalable
	// struct with deterministic order, fully owned by the caller (it
	// must not alias pooled extraction buffers).
	Run func(ctx context.Context, c wppfile.Container, p Params) (any, error)
}

var (
	regMu    sync.RWMutex
	registry = map[string]*Pass{}
)

// Register adds a pass to the registry. It panics on an empty or
// duplicate name or a nil Run — registration bugs are programmer
// errors caught at init.
func Register(p *Pass) {
	if p == nil || p.Name == "" || p.Run == nil {
		panic("passes: Register needs a name and a Run func")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, ok := registry[p.Name]; ok {
		panic("passes: duplicate pass " + p.Name)
	}
	registry[p.Name] = p
}

// Get resolves a pass by name.
func Get(name string) (*Pass, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	p, ok := registry[name]
	return p, ok
}

// Names lists registered pass names in lexical order.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// All lists registered passes in lexical name order.
func All() []*Pass {
	names := Names()
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]*Pass, len(names))
	for i, n := range names {
		out[i] = registry[n]
	}
	return out
}

// Info is the discovery form of a pass.
type Info struct {
	Name    string     `json:"name"`
	Summary string     `json:"summary"`
	Route   string     `json:"route,omitempty"`
	Params  []ParamDoc `json:"params"`
}

// Infos lists every registered pass's discovery record, in lexical
// name order. Params is never nil, so the JSON form is deterministic.
func Infos() []Info {
	all := All()
	out := make([]Info, len(all))
	for i, p := range all {
		params := p.Params
		if params == nil {
			params = []ParamDoc{}
		}
		out[i] = Info{Name: p.Name, Summary: p.Summary, Route: p.Route, Params: params}
	}
	return out
}

// Run executes the named pass against c. Unknown names match
// ErrUnknown (and ErrNotFound, so serving layers answer 404 without a
// special case).
func Run(ctx context.Context, name string, c wppfile.Container, p Params) (any, error) {
	pass, ok := Get(name)
	if !ok {
		return nil, fmt.Errorf("passes: no analysis pass %q: %w", name, errors.Join(ErrUnknown, ErrNotFound))
	}
	return pass.Run(ctx, c, p)
}

// funcName resolves fn's display name from the container's name table,
// with the same "func%d" fallback every surface uses.
func funcName(c wppfile.Container, fn cfg.FuncID) string {
	if names := c.Names(); int(fn) < len(names) && fn >= 0 {
		return names[fn]
	}
	return fmt.Sprintf("func%d", fn)
}
