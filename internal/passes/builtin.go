// The ported query surfaces: funcs, trace, stats, cfg, and query were
// each hand-wired three times (facade, CLI, HTTP handler) before the
// registry existed; they now live here once, and every surface
// dispatches through Run. Their result shapes and validation messages
// are unchanged, so HTTP bodies and CLI renderings are byte-identical
// to the pre-registry code.

package passes

import (
	"context"
	"fmt"

	"twpp/internal/cfg"
	"twpp/internal/cli"
	"twpp/internal/dataflow"
	"twpp/internal/encoding"
	"twpp/internal/wppfile"
)

func init() {
	Register(&Pass{
		Name:    "funcs",
		Summary: "list functions, hottest first (the on-disk index order)",
		Route:   "/funcs",
		Params:  []ParamDoc{},
		Run:     runFuncs,
	})
	Register(&Pass{
		Name:    "trace",
		Summary: "extract one function's unique TWPP traces with their timestamp mappings",
		Route:   "/trace/{fn}",
		Params: []ParamDoc{
			{Name: "func", Kind: "int", Required: true, Doc: "function id"},
			{Name: "trace", Kind: "int", Doc: "restrict to one unique trace index (default: all)"},
		},
		Run: runTrace,
	})
	Register(&Pass{
		Name:    "stats",
		Summary: "per-function stats without the trace dump",
		Route:   "/stats/{fn}",
		Params: []ParamDoc{
			{Name: "func", Kind: "int", Required: true, Doc: "function id"},
		},
		Run: runStats,
	})
	Register(&Pass{
		Name:    "cfg",
		Summary: "the timestamp-annotated dynamic CFG of one trace",
		Route:   "/cfg/{fn}",
		Params: []ParamDoc{
			{Name: "func", Kind: "int", Required: true, Doc: "function id"},
			{Name: "trace", Kind: "int", Doc: "unique trace index (default 0)"},
		},
		Run: runCFG,
	})
	Register(&Pass{
		Name:    "query",
		Summary: "profile-limited GEN-KILL data flow query over one trace's dynamic CFG",
		Route:   "/query",
		Params: []ParamDoc{
			{Name: "func", Kind: "int", Required: true, Doc: "function id"},
			{Name: "block", Kind: "int", Required: true, Doc: "query block: does the fact hold before its executions?"},
			{Name: "trace", Kind: "int", Doc: "unique trace index (default 0)"},
			{Name: "gen", Kind: "blocks", Doc: "block ids that generate the fact"},
			{Name: "kill", Kind: "blocks", Doc: "block ids that kill the fact"},
		},
		Run: runQuery,
	})
}

// corruptTrace classifies a dataflow failure against profile content.
// The dynamic-CFG invariants (every timestamp set has a successor,
// flows nest) hold for every trace a real run produces, so a violation
// means the container holds damage the structural decoder cannot see —
// a corrupt-input error (exit 3, HTTP 422), never a server fault.
// Errors that already classify (cancellation, usage) pass through.
func corruptTrace(err error) error {
	if err == nil || cli.ExitCode(err) != cli.ExitFailure {
		return err
	}
	return &encoding.Error{Code: encoding.CodeCorrupt, Offset: -1, Err: err}
}

func runFuncs(_ context.Context, c wppfile.Container, p Params) (any, error) {
	resp := &FuncsResult{File: p.Source, Functions: []FuncInfo{}}
	for _, fn := range c.Functions() {
		resp.Functions = append(resp.Functions, FuncInfo{
			ID:         int(fn),
			Name:       funcName(c, fn),
			Calls:      c.CallCount(fn),
			BlockBytes: c.BlockLength(fn),
		})
	}
	return resp, nil
}

func runTrace(ctx context.Context, c wppfile.Container, p Params) (any, error) {
	fn, err := p.Func()
	if err != nil {
		return nil, err
	}
	want, err := p.Int("trace", -1)
	if err != nil {
		return nil, err
	}
	ft, release, err := Extract(ctx, c, fn)
	if err != nil {
		return nil, err
	}
	defer release()
	if want >= len(ft.Traces) {
		return nil, cli.Usagef("trace index %d out of range (%d traces)", want, len(ft.Traces))
	}
	resp := &TraceResult{
		File:   p.Source,
		Func:   int(fn),
		Name:   funcName(c, fn),
		Calls:  ft.CallCount,
		Dicts:  len(ft.Dicts),
		Traces: []TraceInfo{},
	}
	for i, tr := range ft.Traces {
		if want >= 0 && i != want {
			continue
		}
		ti := TraceInfo{Index: i, Len: tr.Len, Dict: ft.DictOf[i], Blocks: []BlockInfo{}}
		for _, bt := range tr.Blocks {
			ti.Blocks = append(ti.Blocks, BlockInfo{
				Block: int(bt.Block),
				Count: bt.Times.Count(),
				Times: bt.Times.String(),
			})
		}
		resp.Traces = append(resp.Traces, ti)
	}
	return resp, nil
}

func runStats(ctx context.Context, c wppfile.Container, p Params) (any, error) {
	fn, err := p.Func()
	if err != nil {
		return nil, err
	}
	ft, release, err := Extract(ctx, c, fn)
	if err != nil {
		return nil, err
	}
	defer release()
	total := 0
	for _, tr := range ft.Traces {
		total += tr.Len
	}
	return &StatsResult{
		File:         p.Source,
		Func:         int(fn),
		Name:         funcName(c, fn),
		Calls:        ft.CallCount,
		UniqueTraces: len(ft.Traces),
		Dicts:        len(ft.Dicts),
		TotalLen:     total,
		BlockBytes:   c.BlockLength(fn),
	}, nil
}

func runCFG(ctx context.Context, c wppfile.Container, p Params) (any, error) {
	fn, err := p.Func()
	if err != nil {
		return nil, err
	}
	traceIx, err := p.Int("trace", 0)
	if err != nil {
		return nil, err
	}
	ft, release, err := Extract(ctx, c, fn)
	if err != nil {
		return nil, err
	}
	defer release()
	if traceIx < 0 || traceIx >= len(ft.Traces) {
		return nil, cli.Usagef("trace index %d out of range (%d traces)", traceIx, len(ft.Traces))
	}
	if err := checkExpand(ft, traceIx); err != nil {
		return nil, err
	}
	g, err := dataflow.Build(ft, traceIx)
	if err != nil {
		return nil, corruptTrace(err)
	}
	resp := &CFGResult{
		File:  p.Source,
		Func:  int(fn),
		Trace: traceIx,
		Len:   g.Len,
		Nodes: []CFGNode{},
	}
	for _, n := range g.Nodes {
		node := CFGNode{
			Block: int(n.Block),
			Count: n.Times.Count(),
			Times: n.Times.String(),
			Succs: []int{},
		}
		for _, succ := range n.Succs {
			node.Succs = append(node.Succs, int(succ.Block))
		}
		resp.Edges += len(n.Succs)
		resp.Nodes = append(resp.Nodes, node)
	}
	return resp, nil
}

func runQuery(ctx context.Context, c wppfile.Container, p Params) (any, error) {
	fn, err := p.Func()
	if err != nil {
		return nil, err
	}
	block, err := p.Int("block", -1)
	if err != nil {
		return nil, err
	}
	if block <= 0 {
		return nil, cli.Usagef("missing or non-positive block parameter")
	}
	traceIx, err := p.Int("trace", 0)
	if err != nil {
		return nil, err
	}
	gens, err := p.Blocks("gen")
	if err != nil {
		return nil, err
	}
	kills, err := p.Blocks("kill")
	if err != nil {
		return nil, err
	}
	ft, release, err := Extract(ctx, c, fn)
	if err != nil {
		return nil, err
	}
	defer release()
	if traceIx < 0 || traceIx >= len(ft.Traces) {
		return nil, cli.Usagef("trace index %d out of range (%d traces)", traceIx, len(ft.Traces))
	}
	if err := checkExpand(ft, traceIx); err != nil {
		return nil, err
	}
	g, err := dataflow.Build(ft, traceIx)
	if err != nil {
		return nil, corruptTrace(err)
	}
	if g.Node(cfg.BlockID(block)) == nil {
		return nil, fmt.Errorf("passes: block %d never executes in trace %d: %w", block, traceIx, ErrNotFound)
	}
	prob := &dataflow.GenKillProblem{GenBlocks: gens, KillBlocks: kills}
	res, err := dataflow.SolveAllCtx(ctx, g, prob, cfg.BlockID(block))
	if err != nil {
		return nil, corruptTrace(err)
	}
	return &QueryResult{
		File:            p.Source,
		Func:            int(fn),
		Trace:           traceIx,
		Block:           block,
		Holds:           res.Holds(),
		True:            res.True.String(),
		TrueCount:       res.True.Count(),
		False:           res.False.String(),
		FalseCount:      res.False.Count(),
		Unresolved:      res.Unresolved.String(),
		UnresolvedCount: res.Unresolved.Count(),
		Frequency:       res.Frequency(),
		Queries:         res.Queries,
		Steps:           res.Steps,
	}, nil
}
