package encoding

import (
	"errors"
	"fmt"
	"testing"
)

func TestErrorCodeString(t *testing.T) {
	cases := []struct {
		code ErrorCode
		want string
	}{
		{CodeUnknown, "unknown"},
		{CodeTruncated, "truncated"},
		{CodeOverflow, "overflow"},
		{CodeBadMagic, "bad-magic"},
		{CodeBadVersion, "bad-version"},
		{CodeCorrupt, "corrupt"},
		{CodeLimit, "limit-exceeded"},
		{ErrorCode(200), "unknown"},
	}
	for _, c := range cases {
		if got := c.code.String(); got != c.want {
			t.Errorf("ErrorCode(%d).String() = %q, want %q", c.code, got, c.want)
		}
	}
}

func TestErrorRendering(t *testing.T) {
	cases := []struct {
		name string
		err  *Error
		want string
	}{
		{
			"detail with offset",
			&Error{Code: CodeCorrupt, Offset: 12, Detail: "bad index"},
			"at offset 12: bad index",
		},
		{
			"detail without offset",
			&Error{Code: CodeCorrupt, Offset: -1, Detail: "bad index"},
			"bad index",
		},
		{
			"falls back to wrapped cause",
			&Error{Code: CodeCorrupt, Offset: 3, Err: errors.New("inner")},
			"at offset 3: inner",
		},
		{
			"truncated sentinel text",
			&Error{Code: CodeTruncated, Offset: 7},
			"at offset 7: " + ErrTruncated.Error(),
		},
		{
			"overflow sentinel text",
			&Error{Code: CodeOverflow, Offset: -1},
			ErrOverflow.Error(),
		},
		{
			"bare code",
			&Error{Code: CodeLimit, Offset: -1},
			"encoding: limit-exceeded",
		},
		{
			"detail wins over cause",
			&Error{Code: CodeCorrupt, Offset: -1, Detail: "outer", Err: errors.New("inner")},
			"outer",
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.err.Error(); got != tc.want {
				t.Fatalf("Error() = %q, want %q", got, tc.want)
			}
		})
	}
}

func TestErrorIsSentinels(t *testing.T) {
	tr := Errf(CodeTruncated, 5, "cut")
	ov := Errf(CodeOverflow, 5, "big")
	if !errors.Is(tr, ErrTruncated) {
		t.Error("truncated error must match ErrTruncated")
	}
	if errors.Is(tr, ErrOverflow) {
		t.Error("truncated error must not match ErrOverflow")
	}
	if !errors.Is(ov, ErrOverflow) {
		t.Error("overflow error must match ErrOverflow")
	}
	if errors.Is(ov, ErrTruncated) {
		t.Error("overflow error must not match ErrTruncated")
	}
	if errors.Is(Errf(CodeCorrupt, 0, "x"), ErrTruncated) {
		t.Error("corrupt error must not match ErrTruncated")
	}
}

func TestErrorIsTemplateMatching(t *testing.T) {
	e := Errf(CodeCorrupt, 42, "bad block")
	cases := []struct {
		name   string
		target *Error
		want   bool
	}{
		{"code-only template matches", &Error{Code: CodeCorrupt, Offset: -1}, true},
		{"wrong code does not match", &Error{Code: CodeLimit, Offset: -1}, false},
		{"matching offset narrows", &Error{Code: CodeCorrupt, Offset: 42}, true},
		{"wrong offset rejects", &Error{Code: CodeCorrupt, Offset: 41}, false},
		{"matching detail narrows", &Error{Code: CodeCorrupt, Offset: -1, Detail: "bad block"}, true},
		{"wrong detail rejects", &Error{Code: CodeCorrupt, Offset: -1, Detail: "other"}, false},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			if got := errors.Is(e, tc.target); got != tc.want {
				t.Fatalf("errors.Is(%v, %v) = %v, want %v", e, tc.target, got, tc.want)
			}
		})
	}
	if errors.Is(e, errors.New("not an *Error")) {
		t.Error("foreign target must not match")
	}
}

func TestWrapAndUnwrap(t *testing.T) {
	cause := errors.New("lzw: bad code")
	e := Wrap(CodeCorrupt, 9, cause, "dcg")
	if got, want := e.Error(), "at offset 9: dcg: lzw: bad code"; got != want {
		t.Errorf("Wrap render = %q, want %q", got, want)
	}
	if !errors.Is(e, cause) {
		t.Error("wrapped cause must be reachable via errors.Is")
	}
	if errors.Unwrap(e) != cause {
		t.Error("Unwrap must return the cause")
	}

	// Empty detail: the render falls through to the cause alone.
	bare := Wrap(CodeTruncated, -1, cause, "")
	if got := bare.Error(); got != cause.Error() {
		t.Errorf("empty-detail Wrap render = %q, want %q", got, cause.Error())
	}
	if !errors.Is(bare, ErrTruncated) {
		t.Error("Wrap must preserve code-based sentinel matching")
	}
}

func TestWrapSurvivesFmtChain(t *testing.T) {
	e := fmt.Errorf("open profile: %w", Errf(CodeLimit, 100, "trace too big"))
	var out *Error
	if !errors.As(e, &out) {
		t.Fatal("errors.As must find the *Error through a fmt wrap")
	}
	if out.Code != CodeLimit || out.Offset != 100 {
		t.Fatalf("recovered Code=%v Offset=%d", out.Code, out.Offset)
	}
	if !errors.Is(e, &Error{Code: CodeLimit, Offset: -1}) {
		t.Error("template match must work through a fmt wrap")
	}
}

func TestCursorHelperErrors(t *testing.T) {
	tr := truncatedAt(17)
	if tr.Code != CodeTruncated || tr.Offset != 17 {
		t.Fatalf("truncatedAt = %+v", tr)
	}
	ov := overflowAt(3)
	if ov.Code != CodeOverflow || ov.Offset != 3 {
		t.Fatalf("overflowAt = %+v", ov)
	}
	if tr.Error() == ov.Error() {
		t.Error("truncated and overflow renders must differ")
	}
}
