package encoding

import (
	"bufio"
	"bytes"
	"io"
	"strings"
	"testing"
)

func streamOver(data []byte) *StreamCursor {
	return NewStreamCursor(bytes.NewReader(data), int64(len(data)))
}

func TestStreamCursorSequence(t *testing.T) {
	var buf []byte
	buf = PutUvarint(buf, 300)
	buf = PutVarint(buf, -7)
	buf = PutUint32(buf, 99)
	buf = PutString(buf, "hello")
	buf = PutUint64(buf, 1<<40)

	c := streamOver(buf)
	if u, err := c.Uvarint(); err != nil || u != 300 {
		t.Fatalf("Uvarint = %d, %v", u, err)
	}
	if v, err := c.Varint(); err != nil || v != -7 {
		t.Fatalf("Varint = %d, %v", v, err)
	}
	if v, err := c.Uint32(); err != nil || v != 99 {
		t.Fatalf("Uint32 = %d, %v", v, err)
	}
	if s, err := c.String(); err != nil || s != "hello" {
		t.Fatalf("String = %q, %v", s, err)
	}
	if v, err := c.Uint64(); err != nil || v != 1<<40 {
		t.Fatalf("Uint64 = %d, %v", v, err)
	}
	if !c.Done() {
		t.Errorf("cursor not done: pos=%d len=%d", c.Pos(), c.Len())
	}
	if c.Pos() != len(buf) || c.Len() != 0 {
		t.Errorf("Pos=%d Len=%d, want %d,0", c.Pos(), c.Len(), len(buf))
	}
}

// A StreamCursor over an already-buffered reader must adopt it rather
// than double-buffer.
func TestStreamCursorAdoptsBufio(t *testing.T) {
	br := bufio.NewReader(strings.NewReader("\x05"))
	c := NewStreamCursor(br, 1)
	if v, err := c.Uvarint(); err != nil || v != 5 {
		t.Fatalf("Uvarint = %d, %v", v, err)
	}
}

// With unknown total size, Len must report a value large enough that
// count-vs-remaining sanity checks never reject a valid stream, and
// Bytes must still terminate with a truncation error on lying lengths.
func TestStreamCursorUnknownSize(t *testing.T) {
	c := NewStreamCursor(strings.NewReader("abc"), -1)
	if c.Len() != int(^uint(0)>>1) {
		t.Fatalf("unknown-size Len = %d, want max int", c.Len())
	}
	b, err := c.Bytes(3)
	if err != nil || string(b) != "abc" {
		t.Fatalf("Bytes = %q, %v", b, err)
	}
	// The stream is exhausted; a declared length beyond it must yield a
	// structured truncation error, not an allocation or a hang.
	c = NewStreamCursor(strings.NewReader("ab"), -1)
	if _, err := c.Bytes(10); !IsCode(err, CodeTruncated) {
		t.Fatalf("lying length: want truncated, got %v", err)
	}
}

func TestStreamCursorErrors(t *testing.T) {
	t.Run("truncated uvarint", func(t *testing.T) {
		c := streamOver([]byte{0x80})
		if _, err := c.Uvarint(); !IsCode(err, CodeTruncated) {
			t.Fatalf("want truncated, got %v", err)
		}
	})
	t.Run("overflow uvarint", func(t *testing.T) {
		c := streamOver(bytes.Repeat([]byte{0xff}, 11))
		if _, err := c.Uvarint(); !IsCode(err, CodeOverflow) {
			t.Fatalf("want overflow, got %v", err)
		}
	})
	t.Run("overflow on tenth byte value", func(t *testing.T) {
		// Nine continuation bytes plus a terminator > 1 exceeds 64 bits.
		buf := append(bytes.Repeat([]byte{0xff}, 9), 0x02)
		c := streamOver(buf)
		if _, err := c.Uvarint(); !IsCode(err, CodeOverflow) {
			t.Fatalf("want overflow, got %v", err)
		}
	})
	t.Run("truncated varint propagates", func(t *testing.T) {
		c := streamOver([]byte{0x80})
		if _, err := c.Varint(); !IsCode(err, CodeTruncated) {
			t.Fatalf("want truncated, got %v", err)
		}
	})
	t.Run("truncated uint32", func(t *testing.T) {
		c := streamOver([]byte{1, 2})
		if _, err := c.Uint32(); !IsCode(err, CodeTruncated) {
			t.Fatalf("want truncated, got %v", err)
		}
	})
	t.Run("truncated uint64 second half", func(t *testing.T) {
		c := streamOver([]byte{1, 2, 3, 4, 5, 6})
		if _, err := c.Uint64(); !IsCode(err, CodeTruncated) {
			t.Fatalf("want truncated, got %v", err)
		}
	})
	t.Run("negative byte count", func(t *testing.T) {
		c := streamOver([]byte{1})
		if _, err := c.Bytes(-1); !IsCode(err, CodeTruncated) {
			t.Fatalf("want truncated, got %v", err)
		}
	})
	t.Run("bytes beyond known size", func(t *testing.T) {
		c := streamOver([]byte{1, 2})
		if _, err := c.Bytes(5); !IsCode(err, CodeTruncated) {
			t.Fatalf("want truncated, got %v", err)
		}
	})
	t.Run("negative skip", func(t *testing.T) {
		c := streamOver([]byte{1})
		if err := c.Skip(-1); !IsCode(err, CodeTruncated) {
			t.Fatalf("want truncated, got %v", err)
		}
	})
	t.Run("skip beyond known size", func(t *testing.T) {
		c := streamOver([]byte{1, 2})
		if err := c.Skip(5); !IsCode(err, CodeTruncated) {
			t.Fatalf("want truncated, got %v", err)
		}
	})
	t.Run("string with truncated body", func(t *testing.T) {
		c := streamOver(append(PutUvarint(nil, 40), 'x'))
		if _, err := c.String(); !IsCode(err, CodeTruncated) {
			t.Fatalf("want truncated, got %v", err)
		}
	})
	t.Run("string with truncated length", func(t *testing.T) {
		c := streamOver([]byte{0x80})
		if _, err := c.String(); !IsCode(err, CodeTruncated) {
			t.Fatalf("want truncated, got %v", err)
		}
	})
}

func TestStreamCursorSkip(t *testing.T) {
	c := streamOver([]byte{1, 2, 3, 4})
	if err := c.Skip(3); err != nil {
		t.Fatal(err)
	}
	if c.Pos() != 3 || c.Len() != 1 {
		t.Fatalf("Pos=%d Len=%d after Skip(3)", c.Pos(), c.Len())
	}
	b, err := c.Bytes(1)
	if err != nil || b[0] != 4 {
		t.Fatalf("Bytes = %v, %v", b, err)
	}
	if !c.Done() {
		t.Error("cursor should be done")
	}
}

// A skip that the declared size allows but the underlying stream
// cannot satisfy must surface as a structured truncation error: the
// declared size header lied.
func TestStreamCursorSkipLyingSize(t *testing.T) {
	c := NewStreamCursor(strings.NewReader("ab"), 10)
	if err := c.Skip(5); !IsCode(err, CodeTruncated) {
		t.Fatalf("want truncated, got %v", err)
	}
}

// Batch and stream cursors must produce byte-identical error strings
// on identical corrupt inputs — the parity contract the wppfile decode
// paths rely on.
func TestCursorStreamErrorParity(t *testing.T) {
	inputs := map[string][]byte{
		"truncated uvarint": {0x80, 0x80},
		"overflow uvarint":  bytes.Repeat([]byte{0xff}, 11),
		"short uint32":      {9},
		"empty":             nil,
	}
	for name, data := range inputs {
		name, data := name, data
		t.Run(name, func(t *testing.T) {
			bc := NewCursor(data)
			sc := streamOver(data)
			_, berr := bc.Uvarint()
			_, serr := sc.Uvarint()
			assertSameError(t, "Uvarint", berr, serr)

			bc = NewCursor(data)
			sc = streamOver(data)
			_, berr = bc.Uint32()
			_, serr = sc.Uint32()
			assertSameError(t, "Uint32", berr, serr)
		})
	}
}

func assertSameError(t *testing.T, op string, batch, stream error) {
	t.Helper()
	if (batch == nil) != (stream == nil) {
		t.Fatalf("%s: batch err %v, stream err %v", op, batch, stream)
	}
	if batch != nil && batch.Error() != stream.Error() {
		t.Fatalf("%s error parity broken:\n  batch:  %s\n  stream: %s", op, batch, stream)
	}
}

// Bytes larger than one internal chunk must still round-trip: chunked
// filling is an allocation bound, not a size cap.
func TestStreamCursorLargeBytes(t *testing.T) {
	big := bytes.Repeat([]byte{0xab}, maxChunk+maxChunk/2)
	c := NewStreamCursor(bytes.NewReader(big), int64(len(big)))
	got, err := c.Bytes(len(big))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, big) {
		t.Fatal("large Bytes read corrupted data")
	}
	if !c.Done() {
		t.Error("cursor should be done")
	}
}

// A truncation that strikes mid-way through a multi-chunk read must
// still be reported as a structured error with the right code.
func TestStreamCursorLargeBytesTruncated(t *testing.T) {
	part := bytes.Repeat([]byte{0xcd}, maxChunk+10)
	c := NewStreamCursor(io.LimitReader(bytes.NewReader(part), int64(len(part))), -1)
	if _, err := c.Bytes(maxChunk * 3); !IsCode(err, CodeTruncated) {
		t.Fatalf("want truncated, got %v", err)
	}
}

// IsCode reports whether err is a *Error with the given code; shared by
// the stream tests above.
func IsCode(err error, code ErrorCode) bool {
	e, ok := err.(*Error)
	return ok && e.Code == code
}
