package encoding

import (
	"bufio"
	"io"
)

// maxChunk bounds single allocations made on behalf of length fields
// decoded from untrusted streams whose total size is unknown: reads
// are filled chunk by chunk so a corrupt length hits EOF before it can
// force a giant allocation.
const maxChunk = 1 << 20

// StreamCursor decodes the same varint vocabulary as Cursor but from
// an io.Reader through a fixed-size buffer, so decoding a stream never
// materializes it in memory. When the total input size is known
// (files, in-memory readers) it is supplied at construction and Len
// reports remaining bytes exactly; otherwise Len reports a value large
// enough that size-based sanity checks pass and chunked reads bound
// allocations instead.
//
// Error values and messages match Cursor byte for byte: ErrTruncated /
// ErrOverflow wrapped as "at offset %d: ...", so a consumer switched
// from slurp-and-Cursor to StreamCursor reports identical failures on
// identical inputs.
type StreamCursor struct {
	r    *bufio.Reader
	pos  int
	size int64 // total input size in bytes; < 0 when unknown
}

// NewStreamCursor returns a cursor over r. size is the total number of
// bytes r will yield, or < 0 when unknown.
func NewStreamCursor(r io.Reader, size int64) *StreamCursor {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, 1<<16)
	}
	return &StreamCursor{r: br, size: size}
}

// Pos reports the number of bytes consumed so far.
func (c *StreamCursor) Pos() int { return c.pos }

// Len reports the number of unread bytes when the input size is known;
// with unknown size it returns a conservative maximum so callers'
// "count exceeds remaining input" checks never reject valid streams.
func (c *StreamCursor) Len() int {
	if c.size < 0 {
		return int(^uint(0) >> 1) // max int
	}
	n := c.size - int64(c.pos)
	if n < 0 {
		return 0
	}
	return int(n)
}

// Done reports whether the input is exhausted.
func (c *StreamCursor) Done() bool {
	_, err := c.r.Peek(1)
	return err == io.EOF
}

// Uvarint reads the next unsigned LEB128 varint.
func (c *StreamCursor) Uvarint() (uint64, error) {
	start := c.pos
	var v uint64
	var shift uint
	for i := 0; ; i++ {
		b, err := c.r.ReadByte()
		if err != nil {
			if err == io.EOF {
				return 0, truncatedAt(start)
			}
			return 0, err
		}
		c.pos++
		if i == maxVarintLen64 {
			return 0, overflowAt(start)
		}
		if b < 0x80 {
			if i == maxVarintLen64-1 && b > 1 {
				return 0, overflowAt(start)
			}
			return v | uint64(b)<<shift, nil
		}
		v |= uint64(b&0x7f) << shift
		shift += 7
	}
}

// Varint reads the next zigzag-encoded signed varint.
func (c *StreamCursor) Varint() (int64, error) {
	u, err := c.Uvarint()
	if err != nil {
		return 0, err
	}
	return UnZigZag(u), nil
}

// Uint32 reads a fixed-width little-endian uint32.
func (c *StreamCursor) Uint32() (uint32, error) {
	start := c.pos
	var b [4]byte
	n, err := io.ReadFull(c.r, b[:])
	c.pos += n
	if err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return 0, truncatedAt(start)
		}
		return 0, err
	}
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24, nil
}

// Uint64 reads a fixed-width little-endian uint64.
func (c *StreamCursor) Uint64() (uint64, error) {
	lo, err := c.Uint32()
	if err != nil {
		return 0, err
	}
	hi, err := c.Uint32()
	if err != nil {
		return 0, err
	}
	return uint64(lo) | uint64(hi)<<32, nil
}

// Bytes reads exactly n raw bytes. Unlike Cursor.Bytes the returned
// slice is owned by the caller.
func (c *StreamCursor) Bytes(n int) ([]byte, error) {
	if n < 0 || c.Len() < n {
		return nil, Errf(CodeTruncated, int64(c.pos), "need %d bytes, have %d: %v", n, c.Len(), ErrTruncated)
	}
	// Fill in bounded chunks: when the input size is unknown the Len
	// check above cannot reject a lying length field, so never allocate
	// more than one chunk beyond what the stream has actually yielded.
	buf := make([]byte, 0, minInt(n, maxChunk))
	for len(buf) < n {
		chunk := minInt(n-len(buf), maxChunk)
		start := len(buf)
		buf = append(buf, make([]byte, chunk)...)
		m, err := io.ReadFull(c.r, buf[start:])
		c.pos += m
		if err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return nil, Errf(CodeTruncated, int64(c.pos-m-start),
					"need %d bytes, have %d: %v", n, start+m, ErrTruncated)
			}
			return nil, err
		}
	}
	return buf, nil
}

// Skip advances the cursor by n bytes.
func (c *StreamCursor) Skip(n int) error {
	if n < 0 || c.Len() < n {
		return Errf(CodeTruncated, int64(c.pos), "cannot skip %d bytes, have %d: %v", n, c.Len(), ErrTruncated)
	}
	m, err := c.r.Discard(n)
	c.pos += m
	if err != nil {
		if err == io.EOF {
			return Errf(CodeTruncated, int64(c.pos-m), "cannot skip %d bytes, have %d: %v", n, m, ErrTruncated)
		}
		return err
	}
	return nil
}

// String reads a uvarint length followed by that many bytes.
func (c *StreamCursor) String() (string, error) {
	n, err := c.Uvarint()
	if err != nil {
		return "", err
	}
	b, err := c.Bytes(int(n))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
