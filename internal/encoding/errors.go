package encoding

import "fmt"

// ErrorCode classifies a decode failure so callers can dispatch on the
// failure class (exit codes, retry policy, metrics) without parsing
// message strings.
type ErrorCode uint8

const (
	// CodeUnknown is the zero code: a failure with no classification.
	CodeUnknown ErrorCode = iota
	// CodeTruncated: the input ended before the decode completed.
	CodeTruncated
	// CodeOverflow: a varint did not terminate within 64 bits.
	CodeOverflow
	// CodeBadMagic: the input does not start with the expected format
	// magic — it is not (or is no longer) a file of this format.
	CodeBadMagic
	// CodeBadVersion: recognized format, unsupported version.
	CodeBadVersion
	// CodeCorrupt: structurally invalid content — counts that exceed
	// the input, indices out of range, trailing bytes, malformed
	// series entries.
	CodeCorrupt
	// CodeLimit: the input declared sizes beyond a configured decode
	// resource limit; decoding stopped before allocating for them.
	CodeLimit
	// CodeChecksum: a stored CRC did not match the bytes it covers —
	// the container is recognized and structurally parseable but its
	// content has been altered (bit rot, torn write, tampering).
	CodeChecksum
)

// String names the code for logs and error text.
func (c ErrorCode) String() string {
	switch c {
	case CodeTruncated:
		return "truncated"
	case CodeOverflow:
		return "overflow"
	case CodeBadMagic:
		return "bad-magic"
	case CodeBadVersion:
		return "bad-version"
	case CodeCorrupt:
		return "corrupt"
	case CodeLimit:
		return "limit-exceeded"
	case CodeChecksum:
		return "checksum-mismatch"
	default:
		return "unknown"
	}
}

// Error is a structured decode failure: a machine-dispatchable code,
// the byte offset at which the failure was detected (-1 when unknown
// or not meaningful), and human-readable detail. All decode surfaces
// of the WPP file formats report *Error values, so callers can use
// errors.As to recover the code and offset, and errors.Is against the
// ErrTruncated / ErrOverflow sentinels keeps working.
type Error struct {
	Code   ErrorCode
	Offset int64
	Detail string
	// Err, when non-nil, is the underlying cause (a core or lzw decode
	// failure, an I/O error); Unwrap exposes it to errors.Is/As.
	Err error
}

// Error renders the failure. The format matches the messages the
// pre-structured decoders produced, so error-string parity between the
// batch and streaming paths is preserved.
func (e *Error) Error() string {
	d := e.Detail
	if d == "" && e.Err != nil {
		d = e.Err.Error()
	}
	if d == "" {
		switch e.Code {
		case CodeTruncated:
			d = ErrTruncated.Error()
		case CodeOverflow:
			d = ErrOverflow.Error()
		default:
			d = "encoding: " + e.Code.String()
		}
	}
	if e.Offset >= 0 {
		return fmt.Sprintf("at offset %d: %s", e.Offset, d)
	}
	return d
}

// Is matches the legacy sentinels (ErrTruncated, ErrOverflow) and
// template *Error values: a target with only a Code set matches any
// error of that code.
func (e *Error) Is(target error) bool {
	switch target {
	case ErrTruncated:
		return e.Code == CodeTruncated
	case ErrOverflow:
		return e.Code == CodeOverflow
	}
	if t, ok := target.(*Error); ok {
		return t.Code == e.Code &&
			(t.Offset < 0 || t.Offset == e.Offset) &&
			(t.Detail == "" || t.Detail == e.Detail)
	}
	return false
}

// Unwrap exposes the wrapped cause, if any.
func (e *Error) Unwrap() error { return e.Err }

// Errf constructs a structured decode error. offset < 0 means the
// offset is unknown; the detail string is formatted immediately.
func Errf(code ErrorCode, offset int64, format string, args ...any) *Error {
	return &Error{Code: code, Offset: offset, Detail: fmt.Sprintf(format, args...)}
}

// Wrap classifies an underlying error without losing it: the result
// renders as "<detail>: <err>" (or just the cause when detail is
// empty) and unwraps to err.
func Wrap(code ErrorCode, offset int64, err error, detail string) *Error {
	if detail != "" {
		detail = detail + ": " + err.Error()
	}
	return &Error{Code: code, Offset: offset, Detail: detail, Err: err}
}

// truncatedAt and overflowAt build the cursor-level errors whose
// rendered messages are shared byte for byte by Cursor and
// StreamCursor.
func truncatedAt(offset int) *Error {
	return &Error{Code: CodeTruncated, Offset: int64(offset)}
}

func overflowAt(offset int) *Error {
	return &Error{Code: CodeOverflow, Offset: int64(offset)}
}
