// Package encoding provides the low-level integer codecs shared by the
// WPP/TWPP file formats: unsigned LEB128 varints, zigzag-encoded signed
// varints, and a cursor type for decoding streams of them.
//
// The formats in this repository store almost everything as varints so
// that small block ids and small timestamp deltas (the common case by
// far) take one byte.
package encoding

import (
	"errors"
	"fmt"
)

// ErrTruncated is returned when a decode runs off the end of its input.
var ErrTruncated = errors.New("encoding: truncated input")

// ErrOverflow is returned when a varint does not terminate within the
// maximum width for its type.
var ErrOverflow = errors.New("encoding: varint overflows 64 bits")

// maxVarintLen64 is the maximum number of bytes of a 64-bit varint.
const maxVarintLen64 = 10

// PutUvarint appends the unsigned LEB128 encoding of v to dst and
// returns the extended slice.
func PutUvarint(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

// Uvarint decodes an unsigned LEB128 varint from the front of src. It
// returns the value and the number of bytes consumed.
func Uvarint(src []byte) (uint64, int, error) {
	var v uint64
	var shift uint
	for i, b := range src {
		if i == maxVarintLen64 {
			return 0, 0, ErrOverflow
		}
		if b < 0x80 {
			if i == maxVarintLen64-1 && b > 1 {
				return 0, 0, ErrOverflow
			}
			return v | uint64(b)<<shift, i + 1, nil
		}
		v |= uint64(b&0x7f) << shift
		shift += 7
	}
	return 0, 0, ErrTruncated
}

// ZigZag maps a signed integer to an unsigned one so that values of
// small magnitude (of either sign) encode to small varints.
func ZigZag(v int64) uint64 {
	return uint64(v<<1) ^ uint64(v>>63)
}

// UnZigZag inverts ZigZag.
func UnZigZag(u uint64) int64 {
	return int64(u>>1) ^ -int64(u&1)
}

// PutVarint appends the zigzag varint encoding of v to dst.
func PutVarint(dst []byte, v int64) []byte {
	return PutUvarint(dst, ZigZag(v))
}

// Varint decodes a zigzag varint from the front of src.
func Varint(src []byte) (int64, int, error) {
	u, n, err := Uvarint(src)
	if err != nil {
		return 0, 0, err
	}
	return UnZigZag(u), n, nil
}

// PutUint32 appends v to dst in little-endian order (fixed width).
func PutUint32(dst []byte, v uint32) []byte {
	return append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// Uint32 decodes a fixed-width little-endian uint32 from src.
func Uint32(src []byte) (uint32, error) {
	if len(src) < 4 {
		return 0, ErrTruncated
	}
	return uint32(src[0]) | uint32(src[1])<<8 | uint32(src[2])<<16 | uint32(src[3])<<24, nil
}

// PutUint64 appends v to dst in little-endian order (fixed width).
func PutUint64(dst []byte, v uint64) []byte {
	dst = PutUint32(dst, uint32(v))
	return PutUint32(dst, uint32(v>>32))
}

// Uint64 decodes a fixed-width little-endian uint64 from src.
func Uint64(src []byte) (uint64, error) {
	lo, err := Uint32(src)
	if err != nil {
		return 0, err
	}
	hi, err := Uint32(src[4:])
	if err != nil {
		return 0, err
	}
	return uint64(lo) | uint64(hi)<<32, nil
}

// Cursor decodes a sequence of varints from a byte slice, tracking the
// read position. The zero Cursor over a nil slice is empty but valid.
type Cursor struct {
	buf []byte
	pos int
}

// NewCursor returns a cursor positioned at the start of buf.
func NewCursor(buf []byte) *Cursor {
	return &Cursor{buf: buf}
}

// Pos reports the current byte offset of the cursor.
func (c *Cursor) Pos() int { return c.pos }

// Len reports the number of unread bytes.
func (c *Cursor) Len() int { return len(c.buf) - c.pos }

// Done reports whether the cursor has consumed all input.
func (c *Cursor) Done() bool { return c.pos >= len(c.buf) }

// Uvarint reads the next unsigned varint.
func (c *Cursor) Uvarint() (uint64, error) {
	v, n, err := Uvarint(c.buf[c.pos:])
	if err != nil {
		return 0, cursorErr(err, c.pos)
	}
	c.pos += n
	return v, nil
}

// Varint reads the next zigzag-encoded signed varint.
func (c *Cursor) Varint() (int64, error) {
	v, n, err := Varint(c.buf[c.pos:])
	if err != nil {
		return 0, cursorErr(err, c.pos)
	}
	c.pos += n
	return v, nil
}

// Uint32 reads a fixed-width little-endian uint32.
func (c *Cursor) Uint32() (uint32, error) {
	v, err := Uint32(c.buf[c.pos:])
	if err != nil {
		return 0, cursorErr(err, c.pos)
	}
	c.pos += 4
	return v, nil
}

// Uint64 reads a fixed-width little-endian uint64.
func (c *Cursor) Uint64() (uint64, error) {
	v, err := Uint64(c.buf[c.pos:])
	if err != nil {
		return 0, cursorErr(err, c.pos)
	}
	c.pos += 8
	return v, nil
}

// cursorErr lifts a sentinel from the slice-level decoders into a
// structured *Error carrying the cursor offset.
func cursorErr(err error, pos int) error {
	switch err {
	case ErrTruncated:
		return truncatedAt(pos)
	case ErrOverflow:
		return overflowAt(pos)
	}
	return fmt.Errorf("at offset %d: %w", pos, err)
}

// Bytes reads exactly n raw bytes. The returned slice aliases the
// cursor's buffer; callers must not modify it.
func (c *Cursor) Bytes(n int) ([]byte, error) {
	if n < 0 || c.Len() < n {
		return nil, Errf(CodeTruncated, int64(c.pos), "need %d bytes, have %d: %v", n, c.Len(), ErrTruncated)
	}
	b := c.buf[c.pos : c.pos+n]
	c.pos += n
	return b, nil
}

// Skip advances the cursor by n bytes.
func (c *Cursor) Skip(n int) error {
	if n < 0 || c.Len() < n {
		return Errf(CodeTruncated, int64(c.pos), "cannot skip %d bytes, have %d: %v", n, c.Len(), ErrTruncated)
	}
	c.pos += n
	return nil
}

// String reads a uvarint length followed by that many bytes.
func (c *Cursor) String() (string, error) {
	n, err := c.Uvarint()
	if err != nil {
		return "", err
	}
	b, err := c.Bytes(int(n))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// PutString appends a uvarint-length-prefixed string to dst.
func PutString(dst []byte, s string) []byte {
	dst = PutUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}
