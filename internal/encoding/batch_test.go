package encoding

import (
	"bufio"
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

// mixedUvarints builds a stream mixing 1-byte values (the fast path)
// with multi-byte ones, returning the encoded bytes and the values.
func mixedUvarints(r *rand.Rand, n int) ([]byte, []uint64) {
	var buf []byte
	vals := make([]uint64, n)
	for i := range vals {
		var v uint64
		switch r.Intn(4) {
		case 0, 1:
			v = uint64(r.Intn(0x80)) // single byte
		case 2:
			v = uint64(r.Intn(1 << 20))
		default:
			v = r.Uint64()
		}
		vals[i] = v
		buf = PutUvarint(buf, v)
	}
	return buf, vals
}

// perValueUvarints is the reference decoder: the historical
// one-call-per-value cursor loop.
func perValueUvarints(c *Cursor, dst []uint64) error {
	for i := range dst {
		v, err := c.Uvarint()
		if err != nil {
			return err
		}
		dst[i] = v
	}
	return nil
}

func perValueVarints(c *Cursor, dst []int64) error {
	for i := range dst {
		v, err := c.Varint()
		if err != nil {
			return err
		}
		dst[i] = v
	}
	return nil
}

// errString renders an error for parity comparison; nil becomes "".
func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// checkBatchParity decodes n uvarints from buf both ways and fails the
// test on any divergence in values, final cursor position, or error
// (message, structured code, and offset).
func checkBatchParity(t *testing.T, buf []byte, n int) {
	t.Helper()
	ref := make([]uint64, n)
	refCur := NewCursor(buf)
	refErr := perValueUvarints(refCur, ref)

	got := make([]uint64, n)
	gotCur := NewCursor(buf)
	gotErr := gotCur.UvarintBatch(got)

	if errString(refErr) != errString(gotErr) {
		t.Fatalf("error divergence on %x (n=%d):\n  per-value: %v\n  batch:     %v", buf, n, refErr, gotErr)
	}
	if refErr != nil {
		var re, ge *Error
		if errors.As(refErr, &re) != errors.As(gotErr, &ge) || (re != nil && (re.Code != ge.Code || re.Offset != ge.Offset)) {
			t.Fatalf("structured error divergence on %x: %#v vs %#v", buf, refErr, gotErr)
		}
		if refCur.Pos() != gotCur.Pos() {
			t.Fatalf("error cursor position divergence on %x: per-value %d, batch %d", buf, refCur.Pos(), gotCur.Pos())
		}
		return
	}
	if refCur.Pos() != gotCur.Pos() {
		t.Fatalf("cursor position divergence on %x: per-value %d, batch %d", buf, refCur.Pos(), gotCur.Pos())
	}
	for i := range ref {
		if ref[i] != got[i] {
			t.Fatalf("value divergence at %d on %x: %d vs %d", i, buf, ref[i], got[i])
		}
	}
}

func TestUvarintBatchParity(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		buf, vals := mixedUvarints(r, 1+r.Intn(200))
		checkBatchParity(t, buf, len(vals))
	}
}

// TestUvarintBatchParityCorrupted sweeps every truncation point and
// every single-byte bit flip of encoded streams, asserting the batch
// decoder fails exactly like the per-value loop: same structured code
// at the same offset.
func TestUvarintBatchParityCorrupted(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		buf, vals := mixedUvarints(r, 1+r.Intn(40))
		n := len(vals)
		for cut := 0; cut < len(buf); cut++ {
			checkBatchParity(t, buf[:cut], n)
		}
		for pos := 0; pos < len(buf); pos++ {
			for bit := 0; bit < 8; bit++ {
				mut := bytes.Clone(buf)
				mut[pos] ^= 1 << bit
				checkBatchParity(t, mut, n)
			}
		}
	}
}

// TestUvarintBatchOverflow pins the overflow cases: an 11-byte varint
// and a 10-byte varint whose final byte exceeds 1.
func TestUvarintBatchOverflow(t *testing.T) {
	over1 := bytes.Repeat([]byte{0x80}, 10)
	over1 = append(over1, 0x02) // 11 bytes
	over2 := bytes.Repeat([]byte{0x80}, 9)
	over2 = append(over2, 0x02) // 10 bytes, top byte > 1
	for _, src := range [][]byte{over1, over2} {
		// Lead with a good value so the failure offset is non-zero.
		buf := PutUvarint(nil, 5)
		buf = append(buf, src...)
		checkBatchParity(t, buf, 2)
	}
}

func TestVarintBatchParity(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		n := 1 + r.Intn(100)
		var buf []byte
		vals := make([]int64, n)
		for i := range vals {
			v := int64(r.Uint64())
			if r.Intn(2) == 0 {
				v = int64(r.Intn(128)) - 64
			}
			vals[i] = v
			buf = PutVarint(buf, v)
		}

		ref := make([]int64, n)
		refCur := NewCursor(buf)
		if err := perValueVarints(refCur, ref); err != nil {
			t.Fatal(err)
		}
		got := make([]int64, n)
		gotCur := NewCursor(buf)
		if err := gotCur.VarintBatch(got); err != nil {
			t.Fatal(err)
		}
		for i := range ref {
			if ref[i] != got[i] {
				t.Fatalf("value divergence at %d: %d vs %d", i, ref[i], got[i])
			}
		}
		if refCur.Pos() != gotCur.Pos() {
			t.Fatalf("position divergence: %d vs %d", refCur.Pos(), gotCur.Pos())
		}
		// Truncation sweep for the signed path too.
		for cut := 0; cut < len(buf); cut += 1 + cut/7 {
			rc := NewCursor(buf[:cut])
			re := perValueVarints(rc, make([]int64, n))
			gc := NewCursor(buf[:cut])
			ge := gc.VarintBatch(make([]int64, n))
			if errString(re) != errString(ge) {
				t.Fatalf("truncated error divergence at cut %d: %v vs %v", cut, re, ge)
			}
		}
	}
}

// TestStreamUvarintBatchBuffered drives the buffered batch decoder the
// way RawStreamReader does — batch from the window, per-value at the
// edges — with a tiny bufio buffer so varints straddle the window
// constantly, and checks values and offsets against the per-value
// stream decode.
func TestStreamUvarintBatchBuffered(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	buf, vals := mixedUvarints(r, 500)

	// Reference: per-value offsets.
	refOffs := make([]int, len(vals))
	{
		sc := NewStreamCursor(bytes.NewReader(buf), int64(len(buf)))
		for i := range vals {
			refOffs[i] = sc.Pos()
			v, err := sc.Uvarint()
			if err != nil {
				t.Fatal(err)
			}
			if v != vals[i] {
				t.Fatalf("reference decode diverged at %d", i)
			}
		}
	}

	for _, bufSize := range []int{16, 64, 4096} {
		sc := NewStreamCursor(bufio.NewReaderSize(bytes.NewReader(buf), bufSize), int64(len(buf)))
		var got []uint64
		var offs []int
		var batch [32]uint64
		var boffs [32]int
		for !sc.Done() {
			k := sc.UvarintBatchBuffered(batch[:], boffs[:])
			if k == 0 {
				at := sc.Pos()
				v, err := sc.Uvarint()
				if err != nil {
					t.Fatal(err)
				}
				got = append(got, v)
				offs = append(offs, at)
				continue
			}
			got = append(got, batch[:k]...)
			offs = append(offs, boffs[:k]...)
		}
		if len(got) != len(vals) {
			t.Fatalf("bufSize %d: decoded %d values, want %d", bufSize, len(got), len(vals))
		}
		for i := range vals {
			if got[i] != vals[i] || offs[i] != refOffs[i] {
				t.Fatalf("bufSize %d: divergence at %d: value %d@%d, want %d@%d",
					bufSize, i, got[i], offs[i], vals[i], refOffs[i])
			}
		}
	}
}

// TestStreamBatchTruncatedTail: the batch decoder must leave an
// incomplete trailing varint to the per-value path, which reports the
// same truncation the pure per-value loop does.
func TestStreamBatchTruncatedTail(t *testing.T) {
	buf := PutUvarint(nil, 7)
	buf = PutUvarint(buf, 300)
	buf = append(buf, 0x80) // dangling continuation byte

	perValue := func() error {
		sc := NewStreamCursor(bytes.NewReader(buf), int64(len(buf)))
		for !sc.Done() {
			if _, err := sc.Uvarint(); err != nil {
				return err
			}
		}
		return nil
	}
	hybrid := func() error {
		sc := NewStreamCursor(bytes.NewReader(buf), int64(len(buf)))
		var batch [8]uint64
		for !sc.Done() {
			if k := sc.UvarintBatchBuffered(batch[:], nil); k == 0 {
				if _, err := sc.Uvarint(); err != nil {
					return err
				}
			}
		}
		return nil
	}
	pe, he := perValue(), hybrid()
	if pe == nil || he == nil || pe.Error() != he.Error() {
		t.Fatalf("truncation parity: per-value %v, hybrid %v", pe, he)
	}
}

// FuzzUvarintBatchParity feeds arbitrary bytes to both decoders and
// requires identical outcomes — the regression net for the fast path.
func FuzzUvarintBatchParity(f *testing.F) {
	f.Add([]byte{0x01, 0x02, 0x03}, uint8(3))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}, uint8(1))
	f.Add(bytes.Repeat([]byte{0x80}, 12), uint8(1))
	f.Add(PutUvarint(PutUvarint(nil, 1<<40), 0x7f), uint8(2))
	f.Fuzz(func(t *testing.T, data []byte, n uint8) {
		count := int(n)%64 + 1
		ref := make([]uint64, count)
		refCur := NewCursor(data)
		refErr := perValueUvarints(refCur, ref)

		got := make([]uint64, count)
		gotCur := NewCursor(data)
		gotErr := gotCur.UvarintBatch(got)

		if errString(refErr) != errString(gotErr) {
			t.Fatalf("error divergence: %v vs %v", refErr, gotErr)
		}
		if refCur.Pos() != gotCur.Pos() {
			t.Fatalf("position divergence: %d vs %d", refCur.Pos(), gotCur.Pos())
		}
		if refErr == nil {
			for i := range ref {
				if ref[i] != got[i] {
					t.Fatalf("value divergence at %d", i)
				}
			}
		}
	})
}
