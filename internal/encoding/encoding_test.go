package encoding

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestUvarintRoundTrip(t *testing.T) {
	cases := []uint64{0, 1, 2, 127, 128, 129, 255, 256, 16383, 16384,
		1<<32 - 1, 1 << 32, math.MaxUint64}
	for _, v := range cases {
		buf := PutUvarint(nil, v)
		got, n, err := Uvarint(buf)
		if err != nil {
			t.Fatalf("Uvarint(%d): %v", v, err)
		}
		if got != v || n != len(buf) {
			t.Errorf("Uvarint(%d) = %d (n=%d), want %d (n=%d)", v, got, n, v, len(buf))
		}
	}
}

func TestUvarintRoundTripQuick(t *testing.T) {
	f := func(v uint64) bool {
		buf := PutUvarint(nil, v)
		got, n, err := Uvarint(buf)
		return err == nil && got == v && n == len(buf)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVarintRoundTripQuick(t *testing.T) {
	f := func(v int64) bool {
		buf := PutVarint(nil, v)
		got, n, err := Varint(buf)
		return err == nil && got == v && n == len(buf)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestZigZag(t *testing.T) {
	cases := []struct {
		in   int64
		want uint64
	}{
		{0, 0}, {-1, 1}, {1, 2}, {-2, 3}, {2, 4},
		{math.MaxInt64, math.MaxUint64 - 1},
		{math.MinInt64, math.MaxUint64},
	}
	for _, c := range cases {
		if got := ZigZag(c.in); got != c.want {
			t.Errorf("ZigZag(%d) = %d, want %d", c.in, got, c.want)
		}
		if back := UnZigZag(c.want); back != c.in {
			t.Errorf("UnZigZag(%d) = %d, want %d", c.want, back, c.in)
		}
	}
}

func TestZigZagInverseQuick(t *testing.T) {
	f := func(v int64) bool { return UnZigZag(ZigZag(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSmallMagnitudeIsSmall(t *testing.T) {
	// The whole point of zigzag: -64..63 must fit in one byte.
	for v := int64(-64); v < 64; v++ {
		if got := len(PutVarint(nil, v)); got != 1 {
			t.Errorf("PutVarint(%d) takes %d bytes, want 1", v, got)
		}
	}
}

func TestUvarintTruncated(t *testing.T) {
	buf := PutUvarint(nil, 1<<40)
	for i := 0; i < len(buf); i++ {
		if _, _, err := Uvarint(buf[:i]); err == nil {
			t.Errorf("Uvarint of %d/%d bytes: want error", i, len(buf))
		}
	}
}

func TestUvarintOverflow(t *testing.T) {
	// 11 continuation bytes can never be a valid 64-bit varint.
	buf := bytes.Repeat([]byte{0xff}, 11)
	if _, _, err := Uvarint(buf); err == nil {
		t.Error("Uvarint of 11 0xff bytes: want overflow error")
	}
}

func TestFixedWidthRoundTrip(t *testing.T) {
	b := PutUint32(nil, 0xdeadbeef)
	if v, err := Uint32(b); err != nil || v != 0xdeadbeef {
		t.Errorf("Uint32 = %x, %v", v, err)
	}
	b = PutUint64(nil, 0xdeadbeefcafebabe)
	if v, err := Uint64(b); err != nil || v != 0xdeadbeefcafebabe {
		t.Errorf("Uint64 = %x, %v", v, err)
	}
	if _, err := Uint32([]byte{1, 2}); err == nil {
		t.Error("Uint32 short input: want error")
	}
	if _, err := Uint64([]byte{1, 2, 3, 4, 5}); err == nil {
		t.Error("Uint64 short input: want error")
	}
}

func TestCursorSequence(t *testing.T) {
	var buf []byte
	buf = PutUvarint(buf, 300)
	buf = PutVarint(buf, -7)
	buf = PutUint32(buf, 99)
	buf = PutString(buf, "hello")
	buf = PutUint64(buf, 1<<40)

	c := NewCursor(buf)
	if u, err := c.Uvarint(); err != nil || u != 300 {
		t.Fatalf("Uvarint = %d, %v", u, err)
	}
	if v, err := c.Varint(); err != nil || v != -7 {
		t.Fatalf("Varint = %d, %v", v, err)
	}
	if v, err := c.Uint32(); err != nil || v != 99 {
		t.Fatalf("Uint32 = %d, %v", v, err)
	}
	if s, err := c.String(); err != nil || s != "hello" {
		t.Fatalf("String = %q, %v", s, err)
	}
	if v, err := c.Uint64(); err != nil || v != 1<<40 {
		t.Fatalf("Uint64 = %d, %v", v, err)
	}
	if !c.Done() {
		t.Errorf("cursor not done: %d bytes left", c.Len())
	}
}

func TestCursorErrors(t *testing.T) {
	c := NewCursor([]byte{0x80}) // truncated varint
	if _, err := c.Uvarint(); err == nil {
		t.Error("truncated uvarint: want error")
	}
	c = NewCursor([]byte{1, 2})
	if _, err := c.Bytes(5); err == nil {
		t.Error("Bytes beyond end: want error")
	}
	if err := c.Skip(3); err == nil {
		t.Error("Skip beyond end: want error")
	}
	if err := c.Skip(2); err != nil {
		t.Errorf("Skip(2): %v", err)
	}
	if !c.Done() {
		t.Error("cursor should be done after Skip(2)")
	}
}

func TestCursorBytesAliasing(t *testing.T) {
	buf := []byte{1, 2, 3, 4}
	c := NewCursor(buf)
	b, err := c.Bytes(2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, []byte{1, 2}) {
		t.Errorf("Bytes = %v", b)
	}
	if c.Pos() != 2 || c.Len() != 2 {
		t.Errorf("Pos=%d Len=%d, want 2,2", c.Pos(), c.Len())
	}
}

func TestMixedStreamQuick(t *testing.T) {
	f := func(us []uint64, ss []int64) bool {
		var buf []byte
		for _, u := range us {
			buf = PutUvarint(buf, u)
		}
		for _, s := range ss {
			buf = PutVarint(buf, s)
		}
		c := NewCursor(buf)
		for _, u := range us {
			got, err := c.Uvarint()
			if err != nil || got != u {
				return false
			}
		}
		for _, s := range ss {
			got, err := c.Varint()
			if err != nil || got != s {
				return false
			}
		}
		return c.Done()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
