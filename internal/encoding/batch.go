// Batched varint decoding: decode a whole sequence of varints into a
// caller-provided slice in one pass instead of one call per value.
//
// The hot loops of the compacted decoder read runs of thousands of
// varints whose common case by far is the single-byte encoding. The
// batch decoders exploit that: each iteration bounds-checks one window
// of the input and then consumes a run of single-byte values from it
// with no per-value function call, falling back to the general decoder
// only for multi-byte (or malformed) values.
//
// Error parity: a batch decode fails with exactly the error the
// per-value loop would have produced — same sentinel, same structured
// code, same offset (the first byte of the failing value) — so callers
// can switch between the two paths without changing their error
// surface. This property is asserted exhaustively by the parity tests
// and the fuzz target.

package encoding

// UvarintBatch decodes exactly len(dst) unsigned LEB128 varints from
// the front of src into dst. It returns the number of bytes consumed.
// On error, the returned count is the offset of the first byte of the
// value that failed to decode, and dst's contents past the values
// already decoded are unspecified.
func UvarintBatch(src []byte, dst []uint64) (int, error) {
	pos := 0
	for i := 0; i < len(dst); {
		// Fast path: one bounds check for the window, then a run of
		// single-byte values.
		win := src[pos:]
		max := len(dst) - i
		if max > len(win) {
			max = len(win)
		}
		j := 0
		for j < max && win[j] < 0x80 {
			dst[i] = uint64(win[j])
			i++
			j++
		}
		pos += j
		if i == len(dst) {
			break
		}
		// Slow path: one multi-byte (or truncated/overflowing) value.
		v, n, err := Uvarint(src[pos:])
		if err != nil {
			return pos, err
		}
		dst[i] = v
		pos += n
		i++
	}
	return pos, nil
}

// VarintBatch decodes exactly len(dst) zigzag-encoded signed varints
// from the front of src into dst, with the same contract as
// UvarintBatch.
func VarintBatch(src []byte, dst []int64) (int, error) {
	pos := 0
	for i := 0; i < len(dst); {
		win := src[pos:]
		max := len(dst) - i
		if max > len(win) {
			max = len(win)
		}
		j := 0
		for j < max && win[j] < 0x80 {
			dst[i] = UnZigZag(uint64(win[j]))
			i++
			j++
		}
		pos += j
		if i == len(dst) {
			break
		}
		v, n, err := Varint(src[pos:])
		if err != nil {
			return pos, err
		}
		dst[i] = v
		pos += n
		i++
	}
	return pos, nil
}

// UvarintBatch reads len(dst) unsigned varints. On error the cursor is
// left positioned at the first byte of the failing value — exactly
// where a per-value Uvarint loop would have stopped — and the error
// carries that offset.
func (c *Cursor) UvarintBatch(dst []uint64) error {
	n, err := UvarintBatch(c.buf[c.pos:], dst)
	c.pos += n
	if err != nil {
		return cursorErr(err, c.pos)
	}
	return nil
}

// VarintBatch reads len(dst) zigzag-encoded signed varints with the
// same contract as UvarintBatch.
func (c *Cursor) VarintBatch(dst []int64) error {
	n, err := VarintBatch(c.buf[c.pos:], dst)
	c.pos += n
	if err != nil {
		return cursorErr(err, c.pos)
	}
	return nil
}

// UvarintBatchBuffered decodes as many unsigned varints as fit in both
// dst and the cursor's currently buffered bytes, without touching the
// underlying reader. It returns the number of values decoded; when
// offs is non-nil, offs[k] is set to the stream offset of value k's
// first byte. A value whose encoding is incomplete or malformed within
// the buffered window is left for the caller's per-value path (which
// reports the error with full parity), so this method never fails.
func (c *StreamCursor) UvarintBatchBuffered(dst []uint64, offs []int) int {
	buffered := c.r.Buffered()
	if buffered == 0 {
		return 0
	}
	win, err := c.r.Peek(buffered)
	if err != nil {
		return 0
	}
	n := 0
	pos := 0
	for n < len(dst) {
		v, w, err := Uvarint(win[pos:])
		if err != nil {
			break
		}
		if offs != nil {
			offs[n] = c.pos + pos
		}
		dst[n] = v
		n++
		pos += w
	}
	if pos > 0 {
		// Discard of buffered bytes cannot fail.
		c.r.Discard(pos)
		c.pos += pos
	}
	return n
}
