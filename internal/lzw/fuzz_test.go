package lzw

import (
	"bytes"
	"testing"
)

// FuzzRoundTrip checks compress/decompress identity on arbitrary
// inputs.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte("TOBEORNOTTOBE"))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0}, 1000))
	f.Fuzz(func(t *testing.T, src []byte) {
		got, err := Decompress(Compress(src))
		if err != nil {
			t.Fatalf("round trip error: %v", err)
		}
		if !bytes.Equal(got, src) {
			t.Fatalf("round trip mismatch: %d vs %d bytes", len(got), len(src))
		}
	})
}

// FuzzDecompress feeds arbitrary bytes to the decompressor: errors are
// fine, panics are not.
func FuzzDecompress(f *testing.F) {
	f.Add([]byte{0, 1, 2})
	f.Add(Compress([]byte("hello hello")))
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = Decompress(data)
	})
}
