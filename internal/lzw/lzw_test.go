package lzw

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, src []byte) {
	t.Helper()
	comp := Compress(src)
	got, err := Decompress(comp)
	if err != nil {
		t.Fatalf("Decompress(%d-byte input): %v", len(src), err)
	}
	if !bytes.Equal(got, src) {
		t.Fatalf("round trip mismatch: got %d bytes, want %d", len(got), len(src))
	}
}

func TestRoundTripBasic(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{0},
		{255},
		[]byte("a"),
		[]byte("aa"),
		[]byte("abab"),
		[]byte("TOBEORNOTTOBEORTOBEORNOT"), // the classic LZW example
		[]byte(strings.Repeat("ab", 1000)),
		[]byte(strings.Repeat("x", 100000)),
		[]byte("the quick brown fox jumps over the lazy dog"),
	}
	for _, c := range cases {
		roundTrip(t, c)
	}
}

func TestRoundTripKwKwK(t *testing.T) {
	// "aaa..." exercises the KwKwK case (a code used before it is fully
	// defined) on the second code already.
	for n := 1; n < 300; n++ {
		roundTrip(t, bytes.Repeat([]byte{'a'}, n))
	}
}

func TestRoundTripAllBytes(t *testing.T) {
	src := make([]byte, 256*4)
	for i := range src {
		src[i] = byte(i)
	}
	roundTrip(t, src)
}

func TestRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{1, 10, 100, 1000, 10000, 1 << 17} {
		for _, alphabet := range []int{2, 4, 16, 256} {
			src := make([]byte, n)
			for i := range src {
				src[i] = byte(rng.Intn(alphabet))
			}
			roundTrip(t, src)
		}
	}
}

func TestRoundTripDictionaryOverflow(t *testing.T) {
	// Input long and varied enough to fill the 16-bit dictionary and
	// force a mid-stream clear code.
	rng := rand.New(rand.NewSource(7))
	src := make([]byte, 1<<21)
	for i := range src {
		src[i] = byte(rng.Intn(256))
	}
	roundTrip(t, src)
}

func TestRoundTripQuick(t *testing.T) {
	f := func(src []byte) bool {
		got, err := Decompress(Compress(src))
		return err == nil && bytes.Equal(got, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCompressesRepetitiveInput(t *testing.T) {
	src := []byte(strings.Repeat("abcabcabc", 10000))
	comp := Compress(src)
	if len(comp) >= len(src)/10 {
		t.Errorf("repetitive input compressed to %d bytes (src %d); expected >10x", len(comp), len(src))
	}
}

func TestDecompressCorrupt(t *testing.T) {
	cases := [][]byte{
		{},                 // no EOF code
		{0xff},             // truncated code
		{0xff, 0xff, 0xff}, // codes ahead of the dictionary
	}
	for _, c := range cases {
		if _, err := Decompress(c); err == nil {
			t.Errorf("Decompress(%v): want error", c)
		}
	}
}

func TestDecompressTruncations(t *testing.T) {
	src := []byte(strings.Repeat("hello world ", 500))
	comp := Compress(src)
	// Any strict prefix must either error or decode to something other
	// than the full input (it must never succeed with the full output
	// AND no error... truncations cut the EOF code or a data code).
	for i := 0; i < len(comp)-1; i += 7 {
		got, err := Decompress(comp[:i])
		if err == nil && bytes.Equal(got, src) {
			t.Errorf("truncation to %d bytes decoded to full input without error", i)
		}
	}
}

func TestRatio(t *testing.T) {
	if Ratio(nil) != 0 {
		t.Error("Ratio(nil) != 0")
	}
	if r := Ratio([]byte(strings.Repeat("a", 10000))); r < 10 {
		t.Errorf("Ratio of highly repetitive input = %.2f, want >= 10", r)
	}
}

func BenchmarkCompress(b *testing.B) {
	src := []byte(strings.Repeat("the quick brown fox ", 5000))
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Compress(src)
	}
}

func BenchmarkDecompress(b *testing.B) {
	src := []byte(strings.Repeat("the quick brown fox ", 5000))
	comp := Compress(src)
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decompress(comp); err != nil {
			b.Fatal(err)
		}
	}
}
