// Package lzw implements the Lempel-Ziv-Welch dictionary compression
// algorithm (Welch, "A Technique for High-Performance Data Compression",
// IEEE Computer 1984). The paper uses LZW to compress the dynamic call
// graph component of a compacted TWPP (Zhang & Gupta, PLDI 2001, §2,
// "Compacting the DCG").
//
// The codec uses variable-width codes starting at 9 bits and growing to
// maxWidth bits; when the dictionary fills, a clear code resets it, which
// keeps compression adaptive on long inputs whose statistics drift.
package lzw

import (
	"errors"
	"fmt"
	"sync"
)

const (
	// literalCodes is the number of single-byte codes (0..255).
	literalCodes = 256
	// clearCode resets the dictionary.
	clearCode = 256
	// eofCode terminates the stream.
	eofCode = 257
	// firstCode is the first dynamically assigned code.
	firstCode = 258
	// minWidth is the initial code width in bits.
	minWidth = 9
	// maxWidth is the largest code width; the dictionary holds at most
	// 1<<maxWidth entries before a clear is emitted.
	maxWidth = 16
)

// ErrCorrupt is returned by Decompress when the input is not a valid
// LZW stream produced by Compress.
var ErrCorrupt = errors.New("lzw: corrupt input")

// bitWriter packs codes of varying width, LSB first.
type bitWriter struct {
	out  []byte
	bits uint32
	n    uint // number of valid bits in bits
}

func (w *bitWriter) write(code uint32, width uint) {
	w.bits |= code << w.n
	w.n += width
	for w.n >= 8 {
		w.out = append(w.out, byte(w.bits))
		w.bits >>= 8
		w.n -= 8
	}
}

func (w *bitWriter) flush() {
	if w.n > 0 {
		w.out = append(w.out, byte(w.bits))
		w.bits = 0
		w.n = 0
	}
}

// bitReader unpacks codes of varying width, LSB first.
type bitReader struct {
	in   []byte
	pos  int
	bits uint32
	n    uint
}

func (r *bitReader) read(width uint) (uint32, error) {
	for r.n < width {
		if r.pos >= len(r.in) {
			return 0, ErrCorrupt
		}
		r.bits |= uint32(r.in[r.pos]) << r.n
		r.pos++
		r.n += 8
	}
	code := r.bits & (1<<width - 1)
	r.bits >>= width
	r.n -= width
	return code, nil
}

// Compress returns the LZW encoding of src. The empty input encodes to
// a stream containing just the clear and EOF codes.
func Compress(src []byte) []byte {
	w := &bitWriter{}
	// The dictionary maps (prefix code, next byte) -> code. Packing the
	// key into a uint32 avoids string allocation on the hot path.
	dict := make(map[uint32]uint32, 4096)
	next := uint32(firstCode)
	width := uint(minWidth)

	w.write(clearCode, width)
	if len(src) == 0 {
		w.write(eofCode, width)
		w.flush()
		return w.out
	}

	cur := uint32(src[0])
	for _, b := range src[1:] {
		key := cur<<8 | uint32(b)
		if code, ok := dict[key]; ok {
			cur = code
			continue
		}
		w.write(cur, width)
		dict[key] = next
		next++
		// Grow the width when the next code to be assigned no longer
		// fits. The decoder mirrors this exactly.
		if next == 1<<width && width < maxWidth {
			width++
		}
		if next == 1<<maxWidth {
			w.write(clearCode, width)
			dict = make(map[uint32]uint32, 4096)
			next = firstCode
			width = minWidth
		}
		cur = uint32(b)
	}
	w.write(cur, width)
	w.write(eofCode, width)
	w.flush()
	return w.out
}

// Decompress inverts Compress. It returns ErrCorrupt (possibly wrapped)
// if src is not a valid stream.
func Decompress(src []byte) ([]byte, error) {
	return DecompressLimit(src, 0)
}

// DecompressLimit is Decompress with a cap on the decompressed size:
// when the output would exceed max bytes it fails with a wrapped
// ErrCorrupt instead of allocating further, bounding the memory a
// hostile stream (LZW expands up to ~65000x) can force. max <= 0
// disables the cap.
func DecompressLimit(src []byte, max int) ([]byte, error) {
	return AppendDecompress(nil, src, max)
}

// decodeTables is the decoder's working state: prefix[c] and suffix[c]
// describe dynamically assigned codes (code c expands to the expansion
// of prefix[c] followed by suffix[c]); expandBuf is the scratch the
// expansions are built in. At ~384 KiB it dominates the decoder's
// allocation cost, so instances are pooled across calls.
type decodeTables struct {
	prefix    [1 << maxWidth]uint32
	suffix    [1 << maxWidth]byte
	expandBuf [1 << maxWidth]byte
}

// expansion builds the byte expansion of code right-aligned in
// expandBuf and returns it as a sub-slice. next bounds the codes the
// dictionary has assigned so far.
func (t *decodeTables) expansion(code, next uint32) ([]byte, error) {
	n := len(t.expandBuf)
	for code >= firstCode {
		if code >= next {
			return nil, fmt.Errorf("%w: code %d out of range (next=%d)", ErrCorrupt, code, next)
		}
		n--
		t.expandBuf[n] = t.suffix[code]
		code = t.prefix[code]
	}
	if code >= literalCodes {
		return nil, fmt.Errorf("%w: expansion reaches reserved code %d", ErrCorrupt, code)
	}
	n--
	t.expandBuf[n] = byte(code)
	return t.expandBuf[n:], nil
}

var tablePool = sync.Pool{New: func() any { return new(decodeTables) }}

// AppendDecompress is DecompressLimit appending the decompressed bytes
// to dst (which may be nil, or a recycled buffer truncated to zero
// length) and returning the extended slice. The size cap applies to
// the appended bytes, not dst's prior contents. The decoder's working
// tables are pooled, so a decompress into a dst with sufficient spare
// capacity performs no allocations.
func AppendDecompress(dst, src []byte, max int) ([]byte, error) {
	r := &bitReader{in: src}
	out := dst
	base := len(dst)

	t := tablePool.Get().(*decodeTables)
	defer tablePool.Put(t)

	next := uint32(firstCode)
	width := uint(minWidth)
	const noPrev = uint32(1 << 30)
	prev := noPrev

	for {
		code, err := r.read(width)
		if err != nil {
			return nil, err
		}
		switch {
		case code == eofCode:
			return out, nil
		case code == clearCode:
			next = firstCode
			width = minWidth
			prev = noPrev
			continue
		case code > next || (code == next && prev == noPrev):
			return nil, fmt.Errorf("%w: code %d ahead of dictionary (next=%d)", ErrCorrupt, code, next)
		}

		var exp []byte
		if code == next {
			// The KwKwK case: the code being defined by this very step.
			// Its expansion is expansion(prev) + first byte of same.
			pexp, err := t.expansion(prev, next)
			if err != nil {
				return nil, err
			}
			out = append(out, pexp...)
			out = append(out, pexp[0])
			exp = out[len(out)-len(pexp)-1:]
		} else {
			exp, err = t.expansion(code, next)
			if err != nil {
				return nil, err
			}
			out = append(out, exp...)
		}
		if max > 0 && len(out)-base > max {
			return nil, fmt.Errorf("%w: decompressed output exceeds %d bytes", ErrCorrupt, max)
		}

		if prev != noPrev && next < 1<<maxWidth {
			t.prefix[next] = prev
			t.suffix[next] = exp[0]
			next++
			// The decoder's dictionary lags the encoder's by exactly one
			// entry (the entry for the code just read is created by the
			// encoder before it writes the *next* code), so the width
			// grows one entry early relative to the encoder's test.
			if next == 1<<width-1 && width < maxWidth {
				width++
			}
		}
		prev = code
	}
}

// Ratio reports the compression ratio original/compressed for the given
// input, as a convenience for the benchmark tables. It returns 0 for
// empty input.
func Ratio(src []byte) float64 {
	if len(src) == 0 {
		return 0
	}
	return float64(len(src)) / float64(len(Compress(src)))
}
