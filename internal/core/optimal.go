package core

// Optimal arithmetic-series partitioning. CompactSeries is greedy and
// can split suboptimally — for the timestamps 1,3,5,6,7,8 it eats the
// run 1:5:2 (3 words) and leaves 6:8 (2 words), while the optimum
// spends two singletons on 1,3 and covers 5:8 with one range
// (1+1+2 = 4 words). CompactSeriesOptimal computes the cheapest
// partition by dynamic programming; it is used by the ablation
// benchmarks to bound how much the greedy encoder leaves on the table
// (on real traces: almost nothing).

// CompactSeriesOptimal returns a minimum-word Seq covering exactly the
// strictly increasing timestamps ts. It runs in O(n · r) time where r
// is the length of the longest uniform-step run (worst case O(n²) on
// adversarial inputs, linear on trace-like data).
func CompactSeriesOptimal(ts []Timestamp) Seq {
	n := len(ts)
	if n == 0 {
		return nil
	}
	// dp[i] = minimal words to encode ts[i:]; choice[i] = entry length
	// chosen at i.
	dp := make([]int, n+1)
	choice := make([]int, n)
	for i := n - 1; i >= 0; i-- {
		// Singleton.
		best := dp[i+1] + 1
		bestLen := 1
		if i+1 < n {
			step := ts[i+1] - ts[i]
			// Extend a uniform-step run as far as it stays uniform; a
			// prefix of any length is a candidate entry.
			j := i + 1
			for {
				runLen := j - i + 1
				var cost int
				if step == 1 {
					cost = 2
				} else if runLen >= 3 {
					cost = 3
				} else {
					cost = -1 // a 2-element non-unit series never beats singletons
				}
				if cost > 0 && dp[j+1]+cost < best {
					best = dp[j+1] + cost
					bestLen = runLen
				}
				if j+1 >= n || ts[j+1]-ts[j] != step {
					break
				}
				j++
			}
		}
		dp[i] = best
		choice[i] = bestLen
	}

	var out Seq
	for i := 0; i < n; {
		l := choice[i]
		switch {
		case l == 1:
			out = append(out, Entry{Lo: ts[i], Hi: ts[i], Step: 1})
		default:
			step := ts[i+1] - ts[i]
			out = append(out, Entry{Lo: ts[i], Hi: ts[i+l-1], Step: step})
		}
		i += l
	}
	return out
}

// OptimalWords returns the minimal encodable word count for ts without
// materializing the Seq.
func OptimalWords(ts []Timestamp) int {
	if len(ts) == 0 {
		return 0
	}
	return CompactSeriesOptimal(ts).Words()
}
