package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestOptimalBeatsGreedyExample(t *testing.T) {
	// The canonical greedy failure: 1,3,5,6,7,8.
	ts := []Timestamp{1, 3, 5, 6, 7, 8}
	greedy := CompactSeries(ts)
	opt := CompactSeriesOptimal(ts)
	if greedy.Words() != 5 {
		t.Errorf("greedy words = %d, expected 5 for this example", greedy.Words())
	}
	if opt.Words() != 4 {
		t.Errorf("optimal words = %d, want 4 (%s)", opt.Words(), opt)
	}
	if !reflect.DeepEqual(opt.Expand(), ts) {
		t.Errorf("optimal expansion mismatch: %v", opt.Expand())
	}
}

func TestOptimalNeverWorseThanGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(120))
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.Intn(120)
		ts := make([]Timestamp, n)
		cur := Timestamp(0)
		for i := range ts {
			cur += Timestamp(1 + rng.Intn(6))
			ts[i] = cur
		}
		greedy := CompactSeries(ts)
		opt := CompactSeriesOptimal(ts)
		if opt.Words() > greedy.Words() {
			t.Fatalf("optimal %d > greedy %d for %v", opt.Words(), greedy.Words(), ts)
		}
		if !reflect.DeepEqual(opt.Expand(), ts) {
			t.Fatalf("optimal expansion mismatch for %v: %v", ts, opt.Expand())
		}
	}
}

func TestOptimalAgainstBruteForce(t *testing.T) {
	// Exhaustive minimal cost over all partitions, for short inputs.
	var brute func(ts []Timestamp) int
	brute = func(ts []Timestamp) int {
		if len(ts) == 0 {
			return 0
		}
		best := 1 + brute(ts[1:]) // singleton
		for l := 2; l <= len(ts); l++ {
			step := ts[1] - ts[0]
			uniform := true
			for i := 1; i < l; i++ {
				if ts[i]-ts[i-1] != step {
					uniform = false
					break
				}
			}
			if !uniform {
				break
			}
			var cost int
			switch {
			case step == 1:
				cost = 2
			case l >= 3:
				cost = 3
			default:
				continue
			}
			if c := cost + brute(ts[l:]); c < best {
				best = c
			}
		}
		return best
	}
	rng := rand.New(rand.NewSource(121))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(10)
		ts := make([]Timestamp, n)
		cur := Timestamp(0)
		for i := range ts {
			cur += Timestamp(1 + rng.Intn(4))
			ts[i] = cur
		}
		want := brute(ts)
		if got := OptimalWords(ts); got != want {
			t.Fatalf("OptimalWords(%v) = %d, brute force = %d", ts, got, want)
		}
	}
}

func TestOptimalQuickRoundTrip(t *testing.T) {
	f := func(raw []uint8) bool {
		ts := make([]Timestamp, 0, len(raw))
		cur := Timestamp(0)
		for _, d := range raw {
			cur += Timestamp(d%7) + 1
			ts = append(ts, cur)
		}
		opt := CompactSeriesOptimal(ts)
		if len(ts) == 0 {
			return opt.Count() == 0
		}
		return reflect.DeepEqual(opt.Expand(), ts)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestOptimalEmpty(t *testing.T) {
	if CompactSeriesOptimal(nil) != nil {
		t.Error("optimal of empty input not nil")
	}
	if OptimalWords(nil) != 0 {
		t.Error("OptimalWords(nil) != 0")
	}
}

func BenchmarkGreedyVsOptimal(b *testing.B) {
	rng := rand.New(rand.NewSource(122))
	ts := make([]Timestamp, 10000)
	cur := Timestamp(0)
	for i := range ts {
		cur += Timestamp(1 + rng.Intn(4))
		ts[i] = cur
	}
	b.Run("greedy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			CompactSeries(ts)
		}
		b.ReportMetric(float64(CompactSeries(ts).Words()), "words")
	})
	b.Run("optimal", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			CompactSeriesOptimal(ts)
		}
		b.ReportMetric(float64(CompactSeriesOptimal(ts).Words()), "words")
	})
}
