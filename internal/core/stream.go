package core

import (
	"context"

	"twpp/internal/cfg"
	"twpp/internal/trace"
	"twpp/internal/wpp"
)

// StreamCompactor runs the full compaction pipeline — redundant-trace
// elimination, DBB dictionaries, and the timestamp inversion — online
// over a trace event stream. It wraps wpp.StreamCompactor and performs
// the B -> P(T) inversion incrementally, once per unique trace at the
// moment the trace is interned, so no stage ever sees the whole WPP:
// peak memory stays O(unique traces + open call stack + DCG).
//
// It implements trace.EventSink. Finish returns a TWPP deeply equal to
// core.FromCompacted(wpp.Compact(...)) on the same stream, and the
// same Stats.
type StreamCompactor struct {
	sc *wpp.StreamCompactor
	// traces[f][prov] is the inverted form of function f's prov-th
	// unique trace in intern (provisional) order; Finish rearranges
	// them into first-occurrence order via the wpp remap.
	traces [][]*Trace
}

// NewStreamCompactor returns a streaming pipeline for a program with
// the given function names.
func NewStreamCompactor(funcNames []string) *StreamCompactor {
	s := &StreamCompactor{sc: wpp.NewStreamCompactor(funcNames)}
	s.sc.OnTrace = func(fn cfg.FuncID, prov int, compacted wpp.PathTrace, origLen int) {
		for int(fn) >= len(s.traces) {
			s.traces = append(s.traces, nil)
		}
		// Provisional indices arrive sequentially per function, so the
		// inverted trace lands at index prov by construction.
		s.traces[fn] = append(s.traces[fn], FromPath(compacted))
	}
	return s
}

// EnterCall records the start of an invocation of f.
func (s *StreamCompactor) EnterCall(f cfg.FuncID) { s.sc.EnterCall(f) }

// Block records execution of block id in the current invocation.
func (s *StreamCompactor) Block(id cfg.BlockID) { s.sc.Block(id) }

// ExitCall completes the current invocation.
func (s *StreamCompactor) ExitCall() { s.sc.ExitCall() }

// Finish seals the stream and assembles the TWPP and compaction stats.
func (s *StreamCompactor) Finish() (*TWPP, wpp.Stats, error) {
	return s.FinishCtx(context.Background())
}

// FinishCtx is Finish with cooperative cancellation, threaded through
// the wrapped wpp.StreamCompactor's per-function assembly and checked
// again between functions while rearranging the inverted traces.
func (s *StreamCompactor) FinishCtx(ctx context.Context) (*TWPP, wpp.Stats, error) {
	c, stats, err := s.sc.FinishCtx(ctx)
	if err != nil {
		return nil, stats, err
	}
	remap := s.sc.TraceRemap()
	t := &TWPP{
		FuncNames: c.FuncNames,
		Root:      c.Root,
		Funcs:     make([]FunctionTWPP, len(c.Funcs)),
	}
	for f := range c.Funcs {
		if ctx.Err() != nil {
			return nil, stats, ctx.Err()
		}
		ft := &c.Funcs[f]
		out := &t.Funcs[f]
		out.Fn = ft.Fn
		out.Dicts = ft.Dicts
		out.DictOf = ft.DictOf
		out.CallCount = ft.CallCount
		out.Traces = make([]*Trace, len(ft.Traces))
		if f < len(s.traces) {
			for prov, tr := range s.traces[f] {
				out.Traces[remap[f][prov]] = tr
			}
		}
	}
	return t, stats, nil
}

// Ensure the sink contract stays satisfied.
var _ trace.EventSink = (*StreamCompactor)(nil)
