package core

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestCompactSeriesPaperExample(t *testing.T) {
	// Paper §2: block 2 executing at timestamps 2..6 compacts to the
	// single entry 2:6; the full trace {1->{1}, 2->{2..6}, 6->{7}}
	// becomes {-1}, {2:-6}, {-7} in signed form.
	s := CompactSeries([]Timestamp{2, 3, 4, 5, 6})
	if len(s) != 1 || s[0] != (Entry{Lo: 2, Hi: 6, Step: 1}) {
		t.Fatalf("seq = %v", s)
	}
	signed := s.EncodeSigned(nil)
	if !reflect.DeepEqual(signed, []int64{2, -6}) {
		t.Errorf("signed = %v, want [2 -6]", signed)
	}
}

func TestCompactSeriesSteps(t *testing.T) {
	cases := []struct {
		in   []Timestamp
		want string
	}{
		{[]Timestamp{5}, "[5]"},
		{[]Timestamp{5, 6}, "[5:6]"},
		{[]Timestamp{5, 7}, "[5,7]"},
		{[]Timestamp{5, 7, 9}, "[5:9:2]"},
		{[]Timestamp{1, 2, 3, 10, 20, 30, 40, 99}, "[1:3,10:40:10,99]"},
		{[]Timestamp{2, 20}, "[2,20]"},
		{[]Timestamp{1, 2, 3, 4}, "[1:4]"},
	}
	for _, c := range cases {
		if got := CompactSeries(c.in).String(); got != c.want {
			t.Errorf("CompactSeries(%v) = %s, want %s", c.in, got, c.want)
		}
	}
}

func TestSeriesRoundTripQuick(t *testing.T) {
	f := func(raw []uint16) bool {
		// Build a strictly increasing sequence from random deltas.
		ts := make([]Timestamp, 0, len(raw))
		cur := Timestamp(0)
		for _, d := range raw {
			cur += Timestamp(d%100) + 1
			ts = append(ts, cur)
		}
		s := CompactSeries(ts)
		if !reflect.DeepEqual(s.Expand(), ts) {
			return len(ts) == 0 && s.Count() == 0
		}
		// Wire round trip.
		dec, err := DecodeSigned(s.EncodeSigned(nil))
		if err != nil {
			return false
		}
		return reflect.DeepEqual(dec.Expand(), ts)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSeriesNeverGrows(t *testing.T) {
	// Words() must never exceed the raw count (compaction never loses).
	rng := rand.New(rand.NewSource(40))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(100)
		ts := make([]Timestamp, n)
		cur := Timestamp(0)
		for i := range ts {
			cur += Timestamp(1 + rng.Intn(5))
			ts[i] = cur
		}
		s := CompactSeries(ts)
		if s.Words() > n {
			t.Fatalf("Words %d > raw %d for %v -> %v", s.Words(), n, ts, s)
		}
		if s.Count() != n {
			t.Fatalf("Count %d != %d", s.Count(), n)
		}
	}
}

func TestDecodeSignedErrors(t *testing.T) {
	cases := [][]int64{
		{0},           // zero timestamp
		{5},           // dangling positive
		{1, 2, 3, -4}, // four-value entry
		{5, -4},       // lo > hi
		{2, 6, -3},    // (6-2) not divisible by 3
		{-0},          // zero again
		{3, 5, -0},
	}
	for _, c := range cases {
		if _, err := DecodeSigned(c); err == nil {
			t.Errorf("DecodeSigned(%v): want error", c)
		}
	}
}

func TestDecodeSignedForms(t *testing.T) {
	s, err := DecodeSigned([]int64{-1, 2, -6, 10, 20, -5})
	if err != nil {
		t.Fatal(err)
	}
	want := Seq{
		{Lo: 1, Hi: 1, Step: 1},
		{Lo: 2, Hi: 6, Step: 1},
		{Lo: 10, Hi: 20, Step: 5},
	}
	if !reflect.DeepEqual(s, want) {
		t.Errorf("decoded %v, want %v", s, want)
	}
}

func TestShift(t *testing.T) {
	// The paper's example: decrementing (2:20:2) gives (1:19:2).
	s := Seq{{Lo: 2, Hi: 20, Step: 2}}
	got := s.Shift(-1)
	if got.String() != "[1:19:2]" {
		t.Errorf("Shift(-1) = %s", got.String())
	}
	if s.String() != "[2:20:2]" {
		t.Errorf("Shift mutated receiver: %s", s.String())
	}
}

func TestContains(t *testing.T) {
	s := CompactSeries([]Timestamp{1, 5, 7, 9, 11, 20, 21, 22})
	want := map[Timestamp]bool{1: true, 5: true, 7: true, 9: true, 11: true,
		20: true, 21: true, 22: true}
	for ts := Timestamp(0); ts <= 25; ts++ {
		if s.Contains(ts) != want[ts] {
			t.Errorf("Contains(%d) = %v", ts, s.Contains(ts))
		}
	}
}

func setOp(t *testing.T, name string, op func(a, b Seq) Seq, ref func(a, b map[Timestamp]bool) map[Timestamp]bool) {
	t.Helper()
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 300; trial++ {
		mk := func() (Seq, map[Timestamp]bool) {
			n := rng.Intn(30)
			set := map[Timestamp]bool{}
			ts := []Timestamp{}
			cur := Timestamp(0)
			for i := 0; i < n; i++ {
				cur += Timestamp(1 + rng.Intn(4))
				ts = append(ts, cur)
				set[cur] = true
			}
			return CompactSeries(ts), set
		}
		a, sa := mk()
		b, sb := mk()
		got := op(a, b).Expand()
		wantSet := ref(sa, sb)
		want := make([]Timestamp, 0, len(wantSet))
		for ts := range wantSet {
			want = append(want, ts)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s trial %d:\n a=%s\n b=%s\n got %v\nwant %v", name, trial, a, b, got, want)
		}
	}
}

func TestIntersect(t *testing.T) {
	setOp(t, "intersect", func(a, b Seq) Seq { return a.Intersect(b) },
		func(a, b map[Timestamp]bool) map[Timestamp]bool {
			out := map[Timestamp]bool{}
			for ts := range a {
				if b[ts] {
					out[ts] = true
				}
			}
			return out
		})
}

func TestSubtract(t *testing.T) {
	setOp(t, "subtract", func(a, b Seq) Seq { return a.Subtract(b) },
		func(a, b map[Timestamp]bool) map[Timestamp]bool {
			out := map[Timestamp]bool{}
			for ts := range a {
				if !b[ts] {
					out[ts] = true
				}
			}
			return out
		})
}

func TestUnion(t *testing.T) {
	setOp(t, "union", func(a, b Seq) Seq { return a.Union(b) },
		func(a, b map[Timestamp]bool) map[Timestamp]bool {
			out := map[Timestamp]bool{}
			for ts := range a {
				out[ts] = true
			}
			for ts := range b {
				out[ts] = true
			}
			return out
		})
}

func TestIntersectAlignedSeriesFastPath(t *testing.T) {
	a := Seq{{Lo: 2, Hi: 100, Step: 2}}
	b := Seq{{Lo: 50, Hi: 200, Step: 2}}
	got := a.Intersect(b)
	if got.String() != "[50:100:2]" {
		t.Errorf("aligned intersect = %s", got)
	}
	// Misaligned phase: evens vs odds intersect empty.
	c := Seq{{Lo: 1, Hi: 99, Step: 2}}
	if r := a.Intersect(c); !r.IsEmpty() {
		t.Errorf("evens ∩ odds = %s", r)
	}
}

func TestMinMax(t *testing.T) {
	s := CompactSeries([]Timestamp{3, 4, 5, 9})
	if s.Min() != 3 || s.Max() != 9 {
		t.Errorf("Min/Max = %d/%d", s.Min(), s.Max())
	}
}

func TestEntryAccessors(t *testing.T) {
	e := Entry{Lo: 4, Hi: 16, Step: 4}
	if e.Count() != 4 {
		t.Errorf("Count = %d", e.Count())
	}
	if e.Words() != 3 {
		t.Errorf("Words = %d", e.Words())
	}
	if !e.Contains(8) || e.Contains(9) || e.Contains(20) {
		t.Error("Contains wrong")
	}
	if (Entry{Lo: 7, Hi: 7, Step: 1}).Words() != 1 {
		t.Error("singleton words != 1")
	}
	if (Entry{Lo: 7, Hi: 9, Step: 1}).Words() != 2 {
		t.Error("run words != 2")
	}
}
