package core

import "testing"

// FuzzDecodeSigned feeds arbitrary signed streams to the wire decoder:
// it must never panic, and anything it accepts must re-encode to an
// equivalent timestamp set.
func FuzzDecodeSigned(f *testing.F) {
	f.Add([]byte{2, 6}, true)
	f.Add([]byte{1, 2, 3}, false)
	f.Add([]byte{}, true)
	f.Fuzz(func(t *testing.T, raw []byte, flip bool) {
		vals := make([]int64, len(raw))
		for i, b := range raw {
			v := int64(b%120) + 1
			if (flip && i%2 == 1) || b >= 200 {
				v = -v
			}
			vals[i] = v
		}
		seq, err := DecodeSigned(vals)
		if err != nil {
			return
		}
		back := seq.EncodeSigned(nil)
		seq2, err := DecodeSigned(back)
		if err != nil {
			t.Fatalf("re-decode of re-encoded stream failed: %v (vals %v)", err, vals)
		}
		a, b := seq.Expand(), seq2.Expand()
		if len(a) != len(b) {
			t.Fatalf("expansion mismatch: %v vs %v", a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("expansion mismatch at %d: %v vs %v", i, a, b)
			}
		}
	})
}

// FuzzCompactSeries checks both compactors on arbitrary increasing
// inputs: identical expansions and optimal never exceeding greedy.
func FuzzCompactSeries(f *testing.F) {
	f.Add([]byte{1, 1, 1, 5, 1})
	f.Add([]byte{2, 2, 2, 2})
	f.Fuzz(func(t *testing.T, deltas []byte) {
		if len(deltas) > 500 {
			deltas = deltas[:500]
		}
		ts := make([]Timestamp, 0, len(deltas))
		cur := Timestamp(0)
		for _, d := range deltas {
			cur += Timestamp(d%16) + 1
			ts = append(ts, cur)
		}
		greedy := CompactSeries(ts)
		opt := CompactSeriesOptimal(ts)
		ga, oa := greedy.Expand(), opt.Expand()
		if len(ga) != len(ts) || len(oa) != len(ts) {
			t.Fatalf("expansion length mismatch")
		}
		for i := range ts {
			if ga[i] != ts[i] || oa[i] != ts[i] {
				t.Fatalf("expansion mismatch at %d", i)
			}
		}
		if opt.Words() > greedy.Words() {
			t.Fatalf("optimal %d > greedy %d for %v", opt.Words(), greedy.Words(), ts)
		}
	})
}
