package core

import (
	"math/rand"
	"reflect"
	"testing"

	"twpp/internal/cfg"
	"twpp/internal/trace"
	"twpp/internal/wpp"
)

// randWPP builds nested random calls with plenty of duplicate traces.
func randWPP(rng *rand.Rand) *trace.RawWPP {
	names := []string{"main", "a", "b", "c"}
	b := trace.NewBuilder(names)
	b.EnterCall(0)
	var gen func(depth int)
	gen = func(depth int) {
		steps := 1 + rng.Intn(12)
		for i := 0; i < steps; i++ {
			b.Block(cfg.BlockID(1 + rng.Intn(6)))
			if depth < 4 && rng.Intn(4) == 0 {
				b.EnterCall(cfg.FuncID(1 + rng.Intn(len(names)-1)))
				gen(depth + 1)
				b.ExitCall()
			}
		}
	}
	gen(0)
	b.ExitCall()
	return b.Finish()
}

// TestStreamCompactorMatchesBatchTWPP checks the online pipeline
// (stream compaction + incremental timestamp inversion) produces a
// TWPP deeply equal to the batch Compact + FromCompacted path.
func TestStreamCompactorMatchesBatchTWPP(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 8; i++ {
		w := randWPP(rng)
		c, wantStats := wpp.Compact(w)
		want := FromCompacted(c)

		s := NewStreamCompactor(w.FuncNames)
		w.Replay(s)
		got, gotStats, err := s.Finish()
		if err != nil {
			t.Fatal(err)
		}
		if gotStats != wantStats {
			t.Errorf("iter %d: stats %+v != %+v", i, gotStats, wantStats)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("iter %d: streaming TWPP differs from batch", i)
		}
	}
}

// TestStreamCompactorFinishError propagates stream-shape errors.
func TestStreamCompactorFinishError(t *testing.T) {
	s := NewStreamCompactor(nil)
	s.EnterCall(0)
	if _, _, err := s.Finish(); err == nil {
		t.Error("unclosed call: want error")
	}
}
