package core

import (
	"fmt"

	"twpp/internal/encoding"
)

// corruptf classifies a semantic validation failure of TWPP content —
// timestamps out of range, malformed series entries, lengths that
// don't add up — as structurally corrupt input. Wrapping in
// *encoding.Error keeps the failure class machine-dispatchable end to
// end (exit code 3, HTTP 422), so a serving layer never mistakes
// hostile bytes that passed the wire decode for an internal fault.
// The message is unchanged: Error() renders the wrapped cause.
func corruptf(format string, args ...any) error {
	return &encoding.Error{Code: encoding.CodeCorrupt, Offset: -1, Err: fmt.Errorf(format, args...)}
}
