// Package core implements the timestamped whole program path (TWPP)
// representation — the primary contribution of Zhang & Gupta
// (PLDI 2001). A dictionary-compacted path trace, which maps each time
// step to a dynamic basic block (T -> B), is inverted into a mapping
// from each dynamic basic block to the ordered set of timestamps at
// which it executed (B -> P(T)). Timestamp sets are stored compacted
// as arithmetic series:
//
//	l        a single timestamp
//	l:h      the run l, l+1, ..., h
//	l:h:s    the series l, l+s, l+2s, ..., h
//
// On the wire each entry is one, two, or three integers, and the entry
// boundary is encoded for free in the sign of the entry's final value
// (stored negated), exactly as the paper describes.
package core

import (
	"fmt"
	"sort"
)

// Timestamp is a 1-based position in a compacted path trace.
type Timestamp = int64

// Entry is one arithmetic-series run of timestamps: Lo, Lo+Step, ...,
// Hi. Invariants: 1 <= Lo <= Hi; Step >= 1; (Hi-Lo) divisible by Step;
// singletons have Lo == Hi and Step == 1.
type Entry struct {
	Lo, Hi Timestamp
	Step   Timestamp
}

// Count returns the number of timestamps the entry covers.
func (e Entry) Count() int { return int((e.Hi-e.Lo)/e.Step) + 1 }

// Words returns the number of integers the entry occupies on the wire:
// 1 for a singleton, 2 for a step-1 run, 3 otherwise.
func (e Entry) Words() int {
	switch {
	case e.Lo == e.Hi:
		return 1
	case e.Step == 1:
		return 2
	default:
		return 3
	}
}

// Contains reports whether t is one of the entry's timestamps.
func (e Entry) Contains(t Timestamp) bool {
	return t >= e.Lo && t <= e.Hi && (t-e.Lo)%e.Step == 0
}

// String renders the entry in the paper's notation.
func (e Entry) String() string {
	switch {
	case e.Lo == e.Hi:
		return fmt.Sprintf("%d", e.Lo)
	case e.Step == 1:
		return fmt.Sprintf("%d:%d", e.Lo, e.Hi)
	default:
		return fmt.Sprintf("%d:%d:%d", e.Lo, e.Hi, e.Step)
	}
}

// Seq is a compacted, strictly increasing timestamp set: a list of
// non-overlapping entries in ascending order.
type Seq []Entry

// CompactSeries builds a Seq from a strictly increasing timestamp
// slice, greedily folding maximal arithmetic runs. Runs of three or
// more values (or two consecutive values, which cost no more as a
// range) become series entries.
func CompactSeries(ts []Timestamp) Seq {
	var out Seq
	n := len(ts)
	for i := 0; i < n; {
		if i+1 >= n {
			out = append(out, Entry{Lo: ts[i], Hi: ts[i], Step: 1})
			i++
			continue
		}
		step := ts[i+1] - ts[i]
		j := i + 1
		for j+1 < n && ts[j+1]-ts[j] == step {
			j++
		}
		runLen := j - i + 1
		switch {
		case step == 1 && runLen >= 2:
			out = append(out, Entry{Lo: ts[i], Hi: ts[j], Step: 1})
			i = j + 1
		case runLen >= 3:
			out = append(out, Entry{Lo: ts[i], Hi: ts[j], Step: step})
			i = j + 1
		default:
			out = append(out, Entry{Lo: ts[i], Hi: ts[i], Step: 1})
			i++
		}
	}
	return out
}

// Expand materializes the timestamp set in increasing order.
func (s Seq) Expand() []Timestamp {
	out := make([]Timestamp, 0, s.Count())
	for _, e := range s {
		for t := e.Lo; t <= e.Hi; t += e.Step {
			out = append(out, t)
		}
	}
	return out
}

// Count returns the number of timestamps in the set.
func (s Seq) Count() int {
	n := 0
	for _, e := range s {
		n += e.Count()
	}
	return n
}

// Words returns the wire size of the set in integers.
func (s Seq) Words() int {
	n := 0
	for _, e := range s {
		n += e.Words()
	}
	return n
}

// Contains reports whether t is in the set, by binary search over
// entries.
func (s Seq) Contains(t Timestamp) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i].Hi >= t })
	return i < len(s) && s[i].Contains(t)
}

// Min returns the smallest timestamp; the Seq must be non-empty.
func (s Seq) Min() Timestamp { return s[0].Lo }

// Max returns the largest timestamp; the Seq must be non-empty.
func (s Seq) Max() Timestamp { return s[len(s)-1].Hi }

// Shift returns the set with every timestamp moved by delta (the
// paper's O(entries) simultaneous traversal step: decrementing
// (2:20:2) yields (1:19:2)).
func (s Seq) Shift(delta Timestamp) Seq {
	out := make(Seq, len(s))
	for i, e := range s {
		out[i] = Entry{Lo: e.Lo + delta, Hi: e.Hi + delta, Step: e.Step}
	}
	return out
}

// Intersect returns the set intersection of two Seqs as a fresh Seq.
// Aligned same-step series intersect in O(entries); mismatched entries
// fall back to element enumeration of the smaller entry.
func (s Seq) Intersect(o Seq) Seq {
	var ts []Timestamp
	i, j := 0, 0
	for i < len(s) && j < len(o) {
		a, b := s[i], o[j]
		if a.Hi < b.Lo {
			i++
			continue
		}
		if b.Hi < a.Lo {
			j++
			continue
		}
		// Overlapping ranges. Fast path: identical step and congruent
		// phase.
		if a.Step == b.Step && (a.Lo-b.Lo)%a.Step == 0 {
			lo := maxT(a.Lo, b.Lo)
			hi := minT(a.Hi, b.Hi)
			// Align lo to the series phase.
			if r := (lo - a.Lo) % a.Step; r != 0 {
				lo += a.Step - r
			}
			for t := lo; t <= hi; t += a.Step {
				ts = append(ts, t)
			}
		} else {
			// Enumerate the sparser entry against the other.
			small, big := a, b
			if small.Count() > big.Count() {
				small, big = big, small
			}
			for t := small.Lo; t <= small.Hi; t += small.Step {
				if big.Contains(t) {
					ts = append(ts, t)
				}
			}
		}
		if a.Hi <= b.Hi {
			i++
		}
		if b.Hi <= a.Hi {
			j++
		}
	}
	sort.Slice(ts, func(x, y int) bool { return ts[x] < ts[y] })
	ts = dedupSorted(ts)
	return CompactSeries(ts)
}

// Subtract returns s minus o.
func (s Seq) Subtract(o Seq) Seq {
	var ts []Timestamp
	for _, e := range s {
		for t := e.Lo; t <= e.Hi; t += e.Step {
			if !o.Contains(t) {
				ts = append(ts, t)
			}
		}
	}
	return CompactSeries(ts)
}

// Union returns the set union.
func (s Seq) Union(o Seq) Seq {
	ts := s.Expand()
	ts = append(ts, o.Expand()...)
	sort.Slice(ts, func(x, y int) bool { return ts[x] < ts[y] })
	ts = dedupSorted(ts)
	return CompactSeries(ts)
}

// IsEmpty reports whether the set has no timestamps.
func (s Seq) IsEmpty() bool { return len(s) == 0 }

// String renders the set in the paper's notation, comma separated.
func (s Seq) String() string {
	out := "["
	for i, e := range s {
		if i > 0 {
			out += ","
		}
		out += e.String()
	}
	return out + "]"
}

// EncodeSigned appends the sign-terminated integer encoding of the
// paper: each entry's values with the last one negated.
func (s Seq) EncodeSigned(dst []int64) []int64 {
	for _, e := range s {
		switch e.Words() {
		case 1:
			dst = append(dst, -e.Lo)
		case 2:
			dst = append(dst, e.Lo, -e.Hi)
		default:
			dst = append(dst, e.Lo, e.Hi, -e.Step)
		}
	}
	return dst
}

// DecodeSigned parses a sign-terminated stream produced by
// EncodeSigned, consuming entries until the stream is exhausted. An
// entry is one to three values, terminated by its single negative
// value.
func DecodeSigned(vals []int64) (Seq, error) {
	return DecodeSignedAppend(nil, vals)
}

// DecodeSignedAppend is DecodeSigned appending the decoded entries to
// dst, which may be pre-allocated (or carved from an arena) to make
// the decode allocation-free: a stream of n values decodes to at most
// n entries, so a dst with n spare capacity never grows. It performs
// no allocations of its own beyond growing dst.
func DecodeSignedAppend(dst Seq, vals []int64) (Seq, error) {
	out := dst
	var pend [2]int64
	np := 0
	for i, v := range vals {
		if v > 0 {
			if np == 2 {
				return nil, corruptf("core: entry with more than 3 values at position %d", i)
			}
			pend[np] = v
			np++
			continue
		}
		if v == 0 {
			return nil, corruptf("core: zero value at position %d (timestamps are 1-based)", i)
		}
		last := -v
		if last <= 0 {
			// v was math.MinInt64: negation overflows and the "decoded"
			// value would be a negative timestamp.
			return nil, corruptf("core: value %d at position %d out of range", v, i)
		}
		var e Entry
		switch np {
		case 0:
			e = Entry{Lo: last, Hi: last, Step: 1}
		case 1:
			e = Entry{Lo: pend[0], Hi: last, Step: 1}
		case 2:
			e = Entry{Lo: pend[0], Hi: pend[1], Step: last}
		}
		if e.Lo > e.Hi || e.Step < 1 || (e.Hi-e.Lo)%e.Step != 0 {
			return nil, corruptf("core: malformed entry %s at position %d", e, i)
		}
		out = append(out, e)
		np = 0
	}
	if np != 0 {
		return nil, corruptf("core: %d dangling values at end of stream", np)
	}
	return out, nil
}

func dedupSorted(ts []Timestamp) []Timestamp {
	if len(ts) == 0 {
		return ts
	}
	out := ts[:1]
	for _, t := range ts[1:] {
		if t != out[len(out)-1] {
			out = append(out, t)
		}
	}
	return out
}

func minT(a, b Timestamp) Timestamp {
	if a < b {
		return a
	}
	return b
}

func maxT(a, b Timestamp) Timestamp {
	if a > b {
		return a
	}
	return b
}
