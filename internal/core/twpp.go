package core

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"twpp/internal/cfg"
	"twpp/internal/wpp"
)

// BlockTimes associates one dynamic basic block (identified by its
// head's static block id) with the compacted set of timestamps at
// which it executed within a path trace.
type BlockTimes struct {
	Block cfg.BlockID
	Times Seq
}

// Trace is one path trace in TWPP form: the B -> P(T) mapping of the
// paper, with blocks listed in order of first execution. Len is the
// trace length (the largest timestamp).
type Trace struct {
	Blocks []BlockTimes
	Len    int
}

// FromPath converts a (dictionary-compacted) path trace into TWPP
// form. Timestamps are 1-based positions in the path.
func FromPath(path wpp.PathTrace) *Trace {
	order := make([]cfg.BlockID, 0, 8)
	times := make(map[cfg.BlockID][]Timestamp)
	for i, b := range path {
		if _, ok := times[b]; !ok {
			order = append(order, b)
		}
		times[b] = append(times[b], Timestamp(i+1))
	}
	tr := &Trace{Len: len(path), Blocks: make([]BlockTimes, len(order))}
	for i, b := range order {
		tr.Blocks[i] = BlockTimes{Block: b, Times: CompactSeries(times[b])}
	}
	return tr
}

// ToPath inverts FromPath, reconstructing the path trace. The declared
// length and every series entry are validated before the output is
// allocated, so a corrupt trace whose Len field was inflated (or whose
// entries don't actually cover Len timestamps) fails without a
// length-proportional allocation.
func (t *Trace) ToPath() (wpp.PathTrace, error) {
	if t.Len < 0 {
		return nil, corruptf("core: negative trace length %d", t.Len)
	}
	var total int64
	for _, bt := range t.Blocks {
		for _, e := range bt.Times {
			if e.Step < 1 || e.Lo < 1 || e.Hi < e.Lo {
				return nil, corruptf("core: malformed entry %s for block %d", e, bt.Block)
			}
			if e.Hi > Timestamp(t.Len) {
				return nil, corruptf("core: timestamp %d outside [1,%d] for block %d", e.Hi, t.Len, bt.Block)
			}
			cnt := (e.Hi-e.Lo)/e.Step + 1
			total += cnt
			if total > int64(t.Len) {
				return nil, corruptf("core: %d timestamps exceed declared length %d", total, t.Len)
			}
		}
	}
	if total != int64(t.Len) {
		return nil, corruptf("core: %d of %d timestamps unassigned", int64(t.Len)-total, t.Len)
	}
	out := make(wpp.PathTrace, t.Len)
	for _, bt := range t.Blocks {
		for _, e := range bt.Times {
			for ts := e.Lo; ts <= e.Hi; ts += e.Step {
				if out[ts-1] != 0 {
					return nil, corruptf("core: timestamp %d claimed by blocks %d and %d", ts, out[ts-1], bt.Block)
				}
				out[ts-1] = bt.Block
			}
		}
	}
	return out, nil
}

// TimesOf returns the timestamp set of the given block (empty if the
// block never executed in this trace).
func (t *Trace) TimesOf(b cfg.BlockID) Seq {
	for _, bt := range t.Blocks {
		if bt.Block == b {
			return bt.Times
		}
	}
	return nil
}

// BlockAt returns the block executing at timestamp ts (0 if out of
// range).
func (t *Trace) BlockAt(ts Timestamp) cfg.BlockID {
	for _, bt := range t.Blocks {
		if bt.Times.Contains(ts) {
			return bt.Block
		}
	}
	return 0
}

// Words reports the storage size of the TWPP trace in 32-bit words
// under the paper's accounting: per block, the block id, an entry
// count, and the sign-terminated timestamp values; plus a two-word
// trace header (block count, length).
func (t *Trace) Words() int {
	n := 2
	for _, bt := range t.Blocks {
		n += 2 + bt.Times.Words()
	}
	return n
}

// FunctionTWPP holds the TWPP form of all of one function's unique
// traces, alongside the dictionaries carried over unchanged from the
// wpp stage.
type FunctionTWPP struct {
	Fn cfg.FuncID
	// Traces[i] is the TWPP form of the function's i-th unique trace.
	Traces []*Trace
	// Dicts and DictOf mirror wpp.FunctionTraces.
	Dicts     []wpp.Dictionary
	DictOf    []int
	CallCount int
}

// TWPP is a fully compacted, timestamped whole program path: the
// compacted DCG referencing per-function TWPP traces (paper Figure 7).
type TWPP struct {
	FuncNames []string
	Root      *wpp.CallNode
	Funcs     []FunctionTWPP
}

// FromCompacted converts a dictionary-compacted WPP into TWPP form,
// sequentially.
func FromCompacted(c *wpp.Compacted) *TWPP {
	return FromCompactedWorkers(c, 1)
}

// FromCompactedWorkers is FromCompacted with the per-function
// timestamp inversion fanned out over a bounded worker pool.
// workers <= 0 selects runtime.GOMAXPROCS(0). Functions are converted
// independently and each worker writes only its own t.Funcs[f] slot,
// so the result is identical to the sequential path for any worker
// count.
func FromCompactedWorkers(c *wpp.Compacted, workers int) *TWPP {
	t, err := FromCompactedWorkersCtx(context.Background(), c, workers)
	if err != nil {
		// Background is never canceled; no other error source exists.
		panic(err)
	}
	return t
}

// FromCompactedWorkersCtx is FromCompactedWorkers with cooperative
// cancellation: workers check ctx between functions, so inverting a
// very large compacted WPP can be abandoned promptly. On cancellation
// the partial TWPP is discarded and ctx.Err() is returned.
func FromCompactedWorkersCtx(ctx context.Context, c *wpp.Compacted, workers int) (*TWPP, error) {
	t := &TWPP{
		FuncNames: c.FuncNames,
		Root:      c.Root,
		Funcs:     make([]FunctionTWPP, len(c.Funcs)),
	}
	convert := func(f int) {
		ft := &c.Funcs[f]
		out := &t.Funcs[f]
		out.Fn = ft.Fn
		out.Dicts = ft.Dicts
		out.DictOf = ft.DictOf
		out.CallCount = ft.CallCount
		out.Traces = make([]*Trace, len(ft.Traces))
		for i, path := range ft.Traces {
			out.Traces[i] = FromPath(path)
		}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 || len(c.Funcs) <= 1 {
		for f := range c.Funcs {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			convert(f)
		}
		return t, nil
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for f := range jobs {
				if ctx.Err() != nil {
					continue // drain without working
				}
				convert(f)
			}
		}()
	}
	for f := range c.Funcs {
		jobs <- f
	}
	close(jobs)
	wg.Wait()
	if ctx.Err() != nil {
		return nil, ctx.Err()
	}
	return t, nil
}

// ToCompacted inverts FromCompacted.
func (t *TWPP) ToCompacted() (*wpp.Compacted, error) {
	c := &wpp.Compacted{
		FuncNames: t.FuncNames,
		Root:      t.Root,
		Funcs:     make([]wpp.FunctionTraces, len(t.Funcs)),
	}
	for f := range t.Funcs {
		in := &t.Funcs[f]
		out := &c.Funcs[f]
		out.Fn = in.Fn
		out.Dicts = in.Dicts
		out.DictOf = in.DictOf
		out.CallCount = in.CallCount
		out.Traces = make([]wpp.PathTrace, len(in.Traces))
		out.OrigLen = make([]int, len(in.Traces))
		for i, tr := range in.Traces {
			path, err := tr.ToPath()
			if err != nil {
				return nil, fmt.Errorf("function %d trace %d: %w", f, i, err)
			}
			out.Traces[i] = path
			// Recompute the expanded length from the dictionary.
			n := 0
			dict := in.Dicts[in.DictOf[i]]
			for _, id := range path {
				if chain, ok := dict[id]; ok {
					n += len(chain)
				} else {
					n++
				}
			}
			out.OrigLen[i] = n
		}
	}
	return c, nil
}

// SizeStats reports the TWPP's component sizes in bytes (4 bytes per
// word, the paper's accounting): trace words and dictionary words.
func (t *TWPP) SizeStats() (traceBytes, dictBytes int) {
	for f := range t.Funcs {
		ft := &t.Funcs[f]
		for _, tr := range ft.Traces {
			traceBytes += 4 * tr.Words()
		}
		for _, d := range ft.Dicts {
			dictBytes += 4 * d.Words()
		}
	}
	return traceBytes, dictBytes
}

// VectorStats reports, over every block entry of every unique trace,
// the average timestamp vector length after compaction (entries) and
// before (raw timestamps) — the last column of the paper's Table 6.
func (t *TWPP) VectorStats() (avgCompacted, avgRaw float64) {
	entries, raw, n := 0, 0, 0
	for f := range t.Funcs {
		for _, tr := range t.Funcs[f].Traces {
			for _, bt := range tr.Blocks {
				entries += len(bt.Times)
				raw += bt.Times.Count()
				n++
			}
		}
	}
	if n == 0 {
		return 0, 0
	}
	return float64(entries) / float64(n), float64(raw) / float64(n)
}

// DynamicGraphStats counts the nodes and edges of the dynamic control
// flow graphs of all unique traces (paper Table 6). Each unique trace
// of each function contributes one dynamic CFG whose nodes are the
// distinct blocks it executes and whose edges are the distinct
// consecutive block pairs.
func (t *TWPP) DynamicGraphStats() (nodes, edges int) {
	for f := range t.Funcs {
		ft := &t.Funcs[f]
		for _, tr := range ft.Traces {
			nodes += len(tr.Blocks)
			// Recover the path to count distinct dynamic edges.
			path, err := tr.ToPath()
			if err != nil {
				continue
			}
			seen := make(map[[2]cfg.BlockID]bool)
			for j := 0; j+1 < len(path); j++ {
				seen[[2]cfg.BlockID{path[j], path[j+1]}] = true
			}
			edges += len(seen)
		}
	}
	return nodes, edges
}

// TraceUseCounts walks the dynamic call graph and reports, for
// function fn, how many invocations used each unique trace (indexed
// like Funcs[fn].Traces). Ranking unique traces by these counts yields
// the function's hot paths.
func (t *TWPP) TraceUseCounts(fn cfg.FuncID) []int {
	if int(fn) >= len(t.Funcs) || fn < 0 {
		return nil
	}
	counts := make([]int, len(t.Funcs[fn].Traces))
	var rec func(n *wpp.CallNode)
	rec = func(n *wpp.CallNode) {
		if n.Fn == fn && n.TraceIdx < len(counts) {
			counts[n.TraceIdx]++
		}
		for _, c := range n.Children {
			rec(c)
		}
	}
	if t.Root != nil {
		rec(t.Root)
	}
	return counts
}

// SortedBlockIDs returns the block ids present in the trace, ascending
// (a convenience for deterministic display).
func (t *Trace) SortedBlockIDs() []cfg.BlockID {
	ids := make([]cfg.BlockID, len(t.Blocks))
	for i, bt := range t.Blocks {
		ids[i] = bt.Block
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
