package core

import (
	"math"
	"reflect"
	"testing"
)

// Table-driven edge cases for the sign-terminated arithmetic-series
// encoding: the entry forms (singleton, l:h run, l:h:s series), the
// boundaries where one form hands off to the next, and maximum
// magnitudes. Each case round-trips Encode -> Decode and checks the
// exact wire form, since the decoder infers entry shape purely from
// sign positions.
func TestEncodeSignedEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		seq  Seq
		wire []int64
	}{
		{
			name: "single element",
			seq:  Seq{{Lo: 7, Hi: 7, Step: 1}},
			wire: []int64{-7},
		},
		{
			name: "smallest timestamp",
			seq:  Seq{{Lo: 1, Hi: 1, Step: 1}},
			wire: []int64{-1},
		},
		{
			name: "two-element run is l:h not two singletons",
			seq:  Seq{{Lo: 3, Hi: 4, Step: 1}},
			wire: []int64{3, -4},
		},
		{
			name: "step-1 run",
			seq:  Seq{{Lo: 2, Hi: 9, Step: 1}},
			wire: []int64{2, -9},
		},
		{
			name: "explicit step needs three words",
			seq:  Seq{{Lo: 2, Hi: 10, Step: 4}},
			wire: []int64{2, 10, -4},
		},
		{
			name: "two-element wide gap encodes as series",
			seq:  Seq{{Lo: 1, Hi: 101, Step: 100}},
			wire: []int64{1, 101, -100},
		},
		{
			name: "adjacent entries with sign boundaries",
			seq:  Seq{{Lo: 1, Hi: 5, Step: 2}, {Lo: 6, Hi: 6, Step: 1}, {Lo: 8, Hi: 9, Step: 1}},
			wire: []int64{1, 5, -2, -6, 8, -9},
		},
		{
			name: "maximum magnitude singleton",
			seq:  Seq{{Lo: math.MaxInt64, Hi: math.MaxInt64, Step: 1}},
			wire: []int64{-math.MaxInt64},
		},
		{
			name: "maximum magnitude run",
			seq:  Seq{{Lo: math.MaxInt64 - 1, Hi: math.MaxInt64, Step: 1}},
			wire: []int64{math.MaxInt64 - 1, -math.MaxInt64},
		},
		{
			name: "empty set encodes to nothing",
			seq:  Seq{},
			wire: nil,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			got := tc.seq.EncodeSigned(nil)
			if !reflect.DeepEqual(got, tc.wire) {
				t.Fatalf("EncodeSigned = %v, want %v", got, tc.wire)
			}
			back, err := DecodeSigned(got)
			if err != nil {
				t.Fatalf("DecodeSigned(%v): %v", got, err)
			}
			if len(back) != len(tc.seq) {
				t.Fatalf("round trip %v -> %v", tc.seq, back)
			}
			for i := range back {
				if back[i] != tc.seq[i] {
					t.Fatalf("entry %d: round trip %v -> %v", i, tc.seq[i], back[i])
				}
			}
		})
	}
}

// Hostile wire forms the decoder must reject — each one a distinct
// failure mode of the sign-terminated format.
func TestDecodeSignedEdgeErrors(t *testing.T) {
	cases := []struct {
		name string
		wire []int64
	}{
		{"zero value", []int64{0}},
		{"zero after pending", []int64{3, 0}},
		{"four-value entry", []int64{1, 2, 3, -4}},
		{"dangling single", []int64{5}},
		{"dangling pair", []int64{5, 6}},
		{"inverted run", []int64{9, -3}},
		{"series not hitting hi", []int64{2, 9, -4}},
		{"min-int64 negation overflow", []int64{math.MinInt64}},
		{"min-int64 as series step", []int64{2, 10, math.MinInt64}},
		{"entry after error position", []int64{-1, 0}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			if seq, err := DecodeSigned(tc.wire); err == nil {
				t.Fatalf("DecodeSigned(%v) accepted hostile input: %v", tc.wire, seq)
			}
		})
	}
}

// CompactSeries boundary behavior feeding the encoder: which folds the
// greedy pass takes at the two- and three-element boundaries.
func TestCompactSeriesBoundaries(t *testing.T) {
	cases := []struct {
		name string
		in   []Timestamp
		want Seq
	}{
		{"empty", nil, nil},
		{"singleton", []Timestamp{4}, Seq{{Lo: 4, Hi: 4, Step: 1}}},
		{"pair folds to run", []Timestamp{4, 5}, Seq{{Lo: 4, Hi: 5, Step: 1}}},
		// Two singletons (2 words) beat one series (3 words), so a
		// gapped pair must NOT fold.
		{"pair with gap stays two singletons", []Timestamp{4, 9}, Seq{{Lo: 4, Hi: 4, Step: 1}, {Lo: 9, Hi: 9, Step: 1}}},
		{"three-term series", []Timestamp{1, 4, 7}, Seq{{Lo: 1, Hi: 7, Step: 3}}},
		{
			"step change splits entries",
			[]Timestamp{1, 2, 3, 10, 20, 30},
			Seq{{Lo: 1, Hi: 3, Step: 1}, {Lo: 10, Hi: 30, Step: 10}},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			got := CompactSeries(tc.in)
			if len(got) != len(tc.want) {
				t.Fatalf("CompactSeries(%v) = %v, want %v", tc.in, got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("entry %d: got %v, want %v", i, got[i], tc.want[i])
				}
			}
		})
	}
}
