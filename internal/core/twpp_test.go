package core

import (
	"math/rand"
	"reflect"
	"testing"

	"twpp/internal/cfg"
	"twpp/internal/trace"
	"twpp/internal/wpp"
)

func TestFromPathPaperExample(t *testing.T) {
	// Paper §2: the compacted WPP trace 1.2.2.2.2.2.6 maps to
	// {1 -> {1}, 2 -> {2,3,4,5,6}, 6 -> {7}} and compacts to
	// {1 -> {-1}, 2 -> {2:-6}, 6 -> {-7}}.
	tr := FromPath(wpp.PathTrace{1, 2, 2, 2, 2, 2, 6})
	if tr.Len != 7 || len(tr.Blocks) != 3 {
		t.Fatalf("trace = %+v", tr)
	}
	if tr.Blocks[0].Block != 1 || tr.Blocks[0].Times.String() != "[1]" {
		t.Errorf("block 1 times = %s", tr.Blocks[0].Times)
	}
	if tr.Blocks[1].Block != 2 || tr.Blocks[1].Times.String() != "[2:6]" {
		t.Errorf("block 2 times = %s", tr.Blocks[1].Times)
	}
	if tr.Blocks[2].Block != 6 || tr.Blocks[2].Times.String() != "[7]" {
		t.Errorf("block 6 times = %s", tr.Blocks[2].Times)
	}
	signed := tr.Blocks[1].Times.EncodeSigned(nil)
	if !reflect.DeepEqual(signed, []int64{2, -6}) {
		t.Errorf("block 2 signed = %v", signed)
	}
}

func TestToPathInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(80)
		path := make(wpp.PathTrace, n)
		for i := range path {
			path[i] = cfg.BlockID(1 + rng.Intn(7))
		}
		tr := FromPath(path)
		back, err := tr.ToPath()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !reflect.DeepEqual(back, path) {
			t.Fatalf("trial %d: got %v, want %v", trial, back, path)
		}
	}
}

func TestToPathDetectsCorruption(t *testing.T) {
	cases := []*Trace{
		// Timestamp out of range.
		{Len: 2, Blocks: []BlockTimes{{Block: 1, Times: Seq{{Lo: 1, Hi: 3, Step: 1}}}}},
		// Overlapping claims.
		{Len: 2, Blocks: []BlockTimes{
			{Block: 1, Times: Seq{{Lo: 1, Hi: 2, Step: 1}}},
			{Block: 2, Times: Seq{{Lo: 2, Hi: 2, Step: 1}}},
		}},
		// Gap.
		{Len: 3, Blocks: []BlockTimes{{Block: 1, Times: Seq{{Lo: 1, Hi: 2, Step: 1}}}}},
	}
	for i, tr := range cases {
		if _, err := tr.ToPath(); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}

func TestTimesOfAndBlockAt(t *testing.T) {
	tr := FromPath(wpp.PathTrace{1, 2, 2, 3, 2, 3})
	if got := tr.TimesOf(2).Expand(); !reflect.DeepEqual(got, []Timestamp{2, 3, 5}) {
		t.Errorf("TimesOf(2) = %v", got)
	}
	if tr.TimesOf(99) != nil {
		t.Error("TimesOf(99) != nil")
	}
	wantBlocks := []cfg.BlockID{1, 2, 2, 3, 2, 3}
	for i, want := range wantBlocks {
		if got := tr.BlockAt(Timestamp(i + 1)); got != want {
			t.Errorf("BlockAt(%d) = %d, want %d", i+1, got, want)
		}
	}
	if tr.BlockAt(0) != 0 || tr.BlockAt(7) != 0 {
		t.Error("BlockAt out of range != 0")
	}
}

// pipeline builds the paper's running example end to end:
// raw WPP -> compacted WPP -> TWPP.
func pipeline() (*trace.RawWPP, *wpp.Compacted, *TWPP) {
	b := trace.NewBuilder([]string{"main", "f"})
	pathA := []cfg.BlockID{1, 2, 7, 8, 9, 6, 2, 7, 8, 9, 6, 2, 7, 8, 9, 6, 10}
	pathB := []cfg.BlockID{1, 2, 3, 4, 5, 6, 2, 3, 4, 5, 6, 2, 3, 4, 5, 6, 10}
	calls := [][]cfg.BlockID{pathA, pathA, pathB, pathA, pathB}
	b.EnterCall(0)
	b.Block(1)
	for _, tr := range calls {
		b.Block(2)
		b.Block(3)
		b.EnterCall(1)
		for _, id := range tr {
			b.Block(id)
		}
		b.ExitCall()
		b.Block(4)
	}
	b.Block(6)
	b.ExitCall()
	w := b.Finish()
	c, _ := wpp.Compact(w)
	return w, c, FromCompacted(c)
}

func TestFullPipelineRoundTrip(t *testing.T) {
	w, _, tw := pipeline()
	c2, err := tw.ToCompacted()
	if err != nil {
		t.Fatal(err)
	}
	back := c2.Reconstruct()
	if !trace.Equal(w, back) {
		t.Error("TWPP pipeline did not reconstruct the original WPP")
	}
}

func TestTWPPCompactsLoopTimestamps(t *testing.T) {
	_, _, tw := pipeline()
	// f's compacted trace is 1 2 2 2 10: block 2's timestamps 2:4 form
	// one entry.
	f := tw.Funcs[1]
	if len(f.Traces) != 2 {
		t.Fatalf("f has %d traces", len(f.Traces))
	}
	tr := f.Traces[0]
	if got := tr.TimesOf(2).String(); got != "[2:4]" {
		t.Errorf("block 2 timestamps = %s, want [2:4]", got)
	}
	// Tiny traces carry per-block header overhead (the paper saw the
	// same effect: 099.go's TWPP was 3% larger than its compacted WPP);
	// the win comes on long loops. Verify the long-loop case instead.
	long := FromPath(append(wpp.PathTrace{1}, append(make(wpp.PathTrace, 0, 1000),
		func() wpp.PathTrace {
			var p wpp.PathTrace
			for i := 0; i < 1000; i++ {
				p = append(p, 2)
			}
			return append(p, 6)
		}()...)...))
	if long.Words() > 12 {
		t.Errorf("1000-iteration loop trace takes %d words, want <= 12", long.Words())
	}
}

func TestSizeAndVectorStats(t *testing.T) {
	_, _, tw := pipeline()
	traceBytes, dictBytes := tw.SizeStats()
	if traceBytes <= 0 || dictBytes <= 0 {
		t.Errorf("SizeStats = %d, %d", traceBytes, dictBytes)
	}
	avgC, avgRaw := tw.VectorStats()
	if avgC <= 0 || avgRaw < avgC {
		t.Errorf("VectorStats = %.2f, %.2f", avgC, avgRaw)
	}
	nodes, edges := tw.DynamicGraphStats()
	if nodes <= 0 || edges <= 0 {
		t.Errorf("DynamicGraphStats = %d, %d", nodes, edges)
	}
}

func TestRandomPipelineRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 100; trial++ {
		numFuncs := 2 + rng.Intn(3)
		names := make([]string, numFuncs)
		for i := range names {
			names[i] = string(rune('a' + i))
		}
		b := trace.NewBuilder(names)
		var emit func(f, depth int)
		emit = func(f, depth int) {
			b.EnterCall(cfg.FuncID(f))
			n := 1 + rng.Intn(15)
			for i := 0; i < n; i++ {
				b.Block(cfg.BlockID(1 + rng.Intn(5)))
				if depth < 2 && rng.Intn(8) == 0 {
					emit(rng.Intn(numFuncs), depth+1)
				}
			}
			b.ExitCall()
		}
		emit(0, 0)
		w := b.Finish()
		c, _ := wpp.Compact(w)
		tw := FromCompacted(c)
		c2, err := tw.ToCompacted()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !trace.Equal(w, c2.Reconstruct()) {
			t.Fatalf("trial %d: round trip failed", trial)
		}
	}
}

func TestSortedBlockIDs(t *testing.T) {
	tr := FromPath(wpp.PathTrace{5, 3, 9, 3, 5})
	if got := tr.SortedBlockIDs(); !reflect.DeepEqual(got, []cfg.BlockID{3, 5, 9}) {
		t.Errorf("SortedBlockIDs = %v", got)
	}
}

func TestTraceUseCounts(t *testing.T) {
	_, _, tw := pipeline()
	counts := tw.TraceUseCounts(1)
	// f's five calls split 3/2 between its two unique traces.
	if len(counts) != 2 || counts[0]+counts[1] != 5 {
		t.Fatalf("counts = %v", counts)
	}
	if counts[0] != 3 || counts[1] != 2 {
		t.Errorf("counts = %v, want [3 2]", counts)
	}
	if tw.TraceUseCounts(99) != nil {
		t.Error("out-of-range function: want nil")
	}
	main := tw.TraceUseCounts(0)
	if len(main) != 1 || main[0] != 1 {
		t.Errorf("main counts = %v", main)
	}
}
