package wpp

import "testing"

// TestInternerCollision forces distinct traces into the same hash
// bucket and checks the verified-equality lookup keeps them apart:
// collisions may share a bucket but can never merge distinct contents
// or split duplicates.
func TestInternerCollision(t *testing.T) {
	a := PathTrace{1, 2, 3}
	b := PathTrace{4, 5, 6}
	store := []PathTrace{}
	in := newInterner()
	const h = 0xdeadbeef // same forced hash for every insert

	add := func(tr PathTrace) int {
		idx, ok := in.lookup(h, func(i int) bool { return tracesEqual(store[i], tr) })
		if !ok {
			idx = len(store)
			store = append(store, tr)
			in.insert(h, idx)
		}
		return idx
	}

	ia := add(a)
	ib := add(b)
	if ia == ib {
		t.Fatalf("colliding distinct traces merged: both got index %d", ia)
	}
	if got := add(append(PathTrace(nil), a...)); got != ia {
		t.Errorf("duplicate of a interned at %d, want %d", got, ia)
	}
	if got := add(append(PathTrace(nil), b...)); got != ib {
		t.Errorf("duplicate of b interned at %d, want %d", got, ib)
	}
	if len(store) != 2 {
		t.Errorf("store holds %d traces, want 2", len(store))
	}
}

// TestHashTraceBasics pins hash properties the interner relies on:
// content determines the hash, nil and empty agree, and prefixes
// differ from their extensions.
func TestHashTraceBasics(t *testing.T) {
	if hashTrace(nil) != hashTrace(PathTrace{}) {
		t.Error("nil and empty trace hash differently")
	}
	a := PathTrace{1, 2, 2, 2, 10}
	if hashTrace(a) != hashTrace(append(PathTrace(nil), a...)) {
		t.Error("equal contents hash differently")
	}
	if hashTrace(a) == hashTrace(a[:4]) {
		t.Error("prefix shares hash with full trace")
	}
	if tracesEqual(a, a[:4]) {
		t.Error("prefix compares equal to full trace")
	}
}
