package wpp

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"twpp/internal/cfg"
	"twpp/internal/trace"
)

// paperWPP builds the running example of the paper's Figures 1-5:
// main's loop calls f five times; f takes one of two paths, each with
// a 3-iteration inner loop.
func paperWPP() *trace.RawWPP {
	b := trace.NewBuilder([]string{"main", "f"})
	pathA := []cfg.BlockID{1, 2, 7, 8, 9, 6, 2, 7, 8, 9, 6, 2, 7, 8, 9, 6, 10}
	pathB := []cfg.BlockID{1, 2, 3, 4, 5, 6, 2, 3, 4, 5, 6, 2, 3, 4, 5, 6, 10}
	calls := [][]cfg.BlockID{pathA, pathA, pathB, pathA, pathB}

	b.EnterCall(0)
	b.Block(1)
	for _, tr := range calls {
		b.Block(2)
		b.Block(3)
		b.EnterCall(1)
		for _, id := range tr {
			b.Block(id)
		}
		b.ExitCall()
		b.Block(4)
	}
	b.Block(6)
	b.ExitCall()
	return b.Finish()
}

func TestCompactPaperExample(t *testing.T) {
	w := paperWPP()
	c, stats := Compact(w)

	// Redundancy removal: f's 5 calls produce exactly 2 unique traces.
	f := &c.Funcs[1]
	if len(f.Traces) != 2 {
		t.Fatalf("f unique traces = %d, want 2", len(f.Traces))
	}
	if f.CallCount != 5 {
		t.Errorf("f call count = %d, want 5", f.CallCount)
	}
	main := &c.Funcs[0]
	if len(main.Traces) != 1 || main.CallCount != 1 {
		t.Errorf("main: %d traces, %d calls", len(main.Traces), main.CallCount)
	}

	// Dictionary creation: the paper's Figure 5 compacts f's two
	// traces to 1.2.2.2.6.10 style sequences with chains 2.7.8.9 /
	// 2.3.4.5 in the dictionaries. Expanding must reproduce the
	// originals.
	pathA := PathTrace{1, 2, 7, 8, 9, 6, 2, 7, 8, 9, 6, 2, 7, 8, 9, 6, 10}
	pathB := PathTrace{1, 2, 3, 4, 5, 6, 2, 3, 4, 5, 6, 2, 3, 4, 5, 6, 10}
	got0 := f.Expand(0)
	got1 := f.Expand(1)
	if !reflect.DeepEqual(got0, pathA) || !reflect.DeepEqual(got1, pathB) {
		t.Errorf("expanded traces mismatch:\n%v\n%v", got0, got1)
	}
	// The chains must actually compact: compacted traces shorter than
	// the originals, with the loop body folded into the head id 2.
	for i, tr := range f.Traces {
		if len(tr) >= f.OrigLen[i] {
			t.Errorf("trace %d not compacted: %v (orig len %d)", i, tr, f.OrigLen[i])
		}
	}
	// The maximal chain through the loop body is 2.7.8.9.6: block 6 is
	// always entered from 9 and the chain is always exited at 6 (which
	// then branches back to 2 or on to 10).
	dict0 := f.Dicts[f.DictOf[0]]
	if chain, ok := dict0[2]; !ok || !reflect.DeepEqual(chain, PathTrace{2, 7, 8, 9, 6}) {
		t.Errorf("dict chain for 2 = %v, want [2 7 8 9 6]", chain)
	}
	// Compacted form of pathA: 1 [27896] [27896] [27896] 10 — the same
	// shape as the paper's main-trace example 1.2.2.2.2.2.6.
	if want := (PathTrace{1, 2, 2, 2, 10}); !reflect.DeepEqual(f.Traces[0], want) {
		t.Errorf("compacted trace = %v, want %v", f.Traces[0], want)
	}

	// Stats: raw = 5*17+12 blocks... main trace: 1 + 5*(2,3,4) + 6 =
	// 17 blocks; f: 5*17 = 85. Total 102 blocks -> 408 bytes.
	if stats.RawTraceBytes != 4*(17+85) {
		t.Errorf("RawTraceBytes = %d", stats.RawTraceBytes)
	}
	// After redundancy: main 17 + 2 unique f traces of 17 = 51 blocks.
	if stats.AfterRedundancy != 4*51 {
		t.Errorf("AfterRedundancy = %d, want %d", stats.AfterRedundancy, 4*51)
	}
	if stats.UniqueTraces != 3 || stats.Calls != 6 {
		t.Errorf("UniqueTraces=%d Calls=%d", stats.UniqueTraces, stats.Calls)
	}
	if stats.AfterDictionary >= stats.AfterRedundancy {
		t.Errorf("dictionaries did not shrink: %d >= %d", stats.AfterDictionary, stats.AfterRedundancy)
	}
}

func TestReconstructPaperExample(t *testing.T) {
	w := paperWPP()
	c, _ := Compact(w)
	back := c.Reconstruct()
	if !trace.Equal(w, back) {
		t.Errorf("reconstruction mismatch:\n got %v\nwant %v", back.Linear(), w.Linear())
	}
}

func TestCompactTraceEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		in   PathTrace
	}{
		{"empty", PathTrace{}},
		{"single", PathTrace{1}},
		{"straight line", PathTrace{1, 2, 3, 4, 5}},
		{"pure loop pair", PathTrace{1, 2, 1, 2}},
		{"loop ending mid-chain", PathTrace{1, 2, 1, 2, 1}},
		{"self loop", PathTrace{1, 1, 1, 1}},
		{"first block re-entered", PathTrace{2, 3, 1, 2, 3}},
		{"last block chain head", PathTrace{1, 2, 3, 1, 2}},
		{"branchy", PathTrace{1, 2, 4, 1, 3, 4, 1, 2, 4}},
		{"nested repetition", PathTrace{1, 2, 3, 2, 3, 2, 3, 4, 1, 2, 3, 2, 3, 4}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			compacted, dict := compactTrace(c.in)
			// Expand back.
			var out PathTrace
			for _, id := range compacted {
				if chain, ok := dict[id]; ok {
					out = append(out, chain...)
				} else {
					out = append(out, id)
				}
			}
			if len(c.in) == 0 && len(out) == 0 {
				return
			}
			if !reflect.DeepEqual(out, c.in) {
				t.Errorf("round trip: got %v, want %v (compacted %v, dict %v)",
					out, c.in, compacted, dict)
			}
			// Chains are length >= 2 and disjoint from each other by
			// construction of heads; every chain interior block never
			// appears in the compacted trace.
			interior := map[cfg.BlockID]bool{}
			for _, chain := range dict {
				if len(chain) < 2 {
					t.Errorf("dictionary chain of length %d", len(chain))
				}
				for _, id := range chain[1:] {
					interior[id] = true
				}
			}
			for _, id := range compacted {
				if interior[id] {
					t.Errorf("interior block %d appears in compacted trace %v (dict %v)", id, compacted, dict)
				}
			}
		})
	}
}

func TestStraightLineCollapsesToHead(t *testing.T) {
	compacted, dict := compactTrace(PathTrace{1, 2, 3, 4, 5})
	if !reflect.DeepEqual(compacted, PathTrace{1}) {
		t.Errorf("compacted = %v, want [1]", compacted)
	}
	if !reflect.DeepEqual(dict[1], PathTrace{1, 2, 3, 4, 5}) {
		t.Errorf("dict = %v", dict)
	}
}

func TestLoopBodyCollapses(t *testing.T) {
	// 1 (2 3 4)x3 5: chain (2,3,4) repeated; compacted 1 2 2 2 5...
	// and 1,5 may merge into chains with the loop structure: verify by
	// expansion only, plus that 3 and 4 vanish.
	in := PathTrace{1, 2, 3, 4, 2, 3, 4, 2, 3, 4, 5}
	compacted, dict := compactTrace(in)
	for _, id := range compacted {
		if id == 3 || id == 4 {
			t.Errorf("interior ids survive: %v", compacted)
		}
	}
	var out PathTrace
	for _, id := range compacted {
		if chain, ok := dict[id]; ok {
			out = append(out, chain...)
		} else {
			out = append(out, id)
		}
	}
	if !reflect.DeepEqual(out, in) {
		t.Errorf("round trip failed: %v", out)
	}
}

// randomTrace builds a random path trace that looks like control flow
// (limited alphabet, loopy structure).
func randomTrace(rng *rand.Rand, n int) PathTrace {
	alphabet := 2 + rng.Intn(8)
	tr := make(PathTrace, n)
	for i := range tr {
		tr[i] = cfg.BlockID(1 + rng.Intn(alphabet))
	}
	return tr
}

func TestCompactTraceRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	for trial := 0; trial < 500; trial++ {
		in := randomTrace(rng, 1+rng.Intn(60))
		compacted, dict := compactTrace(in)
		var out PathTrace
		for _, id := range compacted {
			if chain, ok := dict[id]; ok {
				out = append(out, chain...)
			} else {
				out = append(out, id)
			}
		}
		if !reflect.DeepEqual(out, in) {
			t.Fatalf("trial %d: round trip failed\n in %v\nout %v\ncompacted %v\ndict %v",
				trial, in, out, compacted, dict)
		}
	}
}

func TestCompactTraceQuick(t *testing.T) {
	f := func(raw []byte) bool {
		in := make(PathTrace, len(raw))
		for i, b := range raw {
			in[i] = cfg.BlockID(1 + b%6)
		}
		compacted, dict := compactTrace(in)
		var out PathTrace
		for _, id := range compacted {
			if chain, ok := dict[id]; ok {
				out = append(out, chain...)
			} else {
				out = append(out, id)
			}
		}
		if len(in) == 0 {
			return len(out) == 0
		}
		return reflect.DeepEqual(out, in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// randomWPP builds a random multi-call WPP.
func randomWPP(rng *rand.Rand) *trace.RawWPP {
	numFuncs := 2 + rng.Intn(4)
	names := make([]string, numFuncs)
	for i := range names {
		names[i] = string(rune('a' + i))
	}
	b := trace.NewBuilder(names)
	var emit func(f, depth int)
	emit = func(f, depth int) {
		b.EnterCall(cfg.FuncID(f))
		n := 1 + rng.Intn(12)
		for i := 0; i < n; i++ {
			b.Block(cfg.BlockID(1 + rng.Intn(6)))
			if depth < 3 && rng.Intn(6) == 0 {
				emit(rng.Intn(numFuncs), depth+1)
			}
		}
		b.ExitCall()
	}
	emit(0, 0)
	return b.Finish()
}

func TestCompactReconstructRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 200; trial++ {
		w := randomWPP(rng)
		c, stats := Compact(w)
		if stats.AfterRedundancy > stats.RawTraceBytes {
			t.Fatalf("trial %d: redundancy removal grew the trace", trial)
		}
		back := c.Reconstruct()
		if !trace.Equal(w, back) {
			t.Fatalf("trial %d: reconstruction mismatch", trial)
		}
	}
}

func TestUniqueTraceDistribution(t *testing.T) {
	w := paperWPP()
	c, _ := Compact(w)
	uniques, calls := c.UniqueTraceDistribution()
	if len(uniques) != 2 || len(calls) != 2 {
		t.Fatalf("distribution sizes: %v %v", uniques, calls)
	}
	totalCalls := calls[0] + calls[1]
	if totalCalls != 6 {
		t.Errorf("total calls = %d, want 6", totalCalls)
	}
}

func TestDictionaryWordsAndIdentity(t *testing.T) {
	d1 := Dictionary{2: PathTrace{2, 7, 8, 9}}
	d2 := Dictionary{2: PathTrace{2, 7, 8, 9}}
	d3 := Dictionary{2: PathTrace{2, 3, 4, 5}}
	if hashDict(d1) != hashDict(d2) || !dictsEqual(d1, d2) {
		t.Error("equal dictionaries have different identities")
	}
	if dictsEqual(d1, d3) {
		t.Error("different dictionaries compare equal")
	}
	if hashDict(d1) == hashDict(d3) {
		t.Error("different dictionaries share a hash (FNV collision in a 4-word input)")
	}
	if d1.Words() != 6 { // head + len + 4 chain ids
		t.Errorf("Words = %d, want 6", d1.Words())
	}
}
