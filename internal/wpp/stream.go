package wpp

import (
	"context"
	"fmt"
	"sort"

	"twpp/internal/cfg"
)

// StreamCompactor performs the paper's first three compaction
// transformations online, one trace event at a time, without ever
// holding the full WPP: each call's path trace is buffered only while
// the call is open, and on exit it is interned against the function's
// unique traces (hash + verified equality) and either discarded as
// redundant or DBB-compacted on the spot. Peak memory is
// O(unique traces + open call stack + DCG) instead of O(trace).
//
// It implements trace.EventSink, so it can be driven from a live
// tracer, from trace.RawWPP.Replay, or — the production path — from a
// raw WPP file streamed through wppfile. Like trace.Builder it panics
// on events that violate call nesting; feed untrusted streams through
// trace.Demux, which turns those violations into errors before the
// sink sees them.
//
// Finish produces a Compacted and Stats identical (deeply, and hence
// byte-identically once encoded) to CompactWorkers on the same event
// stream. The one ordering wrinkle: the batch path interns traces in
// preorder (a call's trace is seen at entry, parent before children),
// while a streaming compactor only knows a call's trace at exit
// (children before parent). Each unique trace therefore records the
// earliest EnterCall sequence number among the calls that produced it,
// and Finish sorts unique traces into that first-entry order —
// restoring the documented first-occurrence order — then rewrites the
// provisional DCG indices.
type StreamCompactor struct {
	// OnTrace, when non-nil, is invoked synchronously each time a new
	// unique trace is interned, with the owning function, the
	// provisional unique-trace index (sequential per function, in
	// intern order), the dictionary-compacted trace, and the original
	// (pre-dictionary) length. Downstream stages hook here to process
	// each unique trace exactly once, incrementally; after Finish,
	// TraceRemap converts provisional indices to final ones.
	OnTrace func(fn cfg.FuncID, provIdx int, compacted PathTrace, origLen int)

	funcNames []string
	funcs     []streamFunc
	stack     []streamFrame
	root      *CallNode
	seq       int // EnterCall counter: global first-occurrence clock
	blocks    int
	calls     int
	// spare recycles block buffers of calls whose traces proved
	// redundant — the overwhelmingly common case (Figure 8) — so
	// steady-state ingestion allocates only on new unique traces.
	spare    []PathTrace
	remap    [][]int
	finished bool
}

// uniqueTrace is one interned unique trace: the original block
// sequence (kept for verified-equality lookups), its DBB-compacted
// form and dictionary, and the earliest EnterCall sequence that
// produced it.
type uniqueTrace struct {
	orig     PathTrace
	comp     PathTrace
	dict     Dictionary
	firstSeq int
}

// streamFunc is the per-function intern state.
type streamFunc struct {
	in        *Interner
	uniq      []uniqueTrace
	callCount int
}

// streamFrame is one open call: its DCG node, the trace buffered so
// far, and its EnterCall sequence number.
type streamFrame struct {
	node *CallNode
	tr   PathTrace
	seq  int
}

// NewStreamCompactor returns a compactor for a program with the given
// function names (they become Compacted.FuncNames; functions beyond
// the name table may still appear in the stream).
func NewStreamCompactor(funcNames []string) *StreamCompactor {
	return &StreamCompactor{funcNames: funcNames}
}

// EnterCall records the start of an invocation of f.
func (s *StreamCompactor) EnterCall(f cfg.FuncID) {
	for int(f) >= len(s.funcs) {
		s.funcs = append(s.funcs, streamFunc{in: newInterner()})
	}
	n := &CallNode{Fn: f}
	if len(s.stack) == 0 {
		if s.root != nil {
			panic("wpp: multiple root calls in event stream")
		}
		s.root = n
	} else {
		p := &s.stack[len(s.stack)-1]
		p.node.Children = append(p.node.Children, n)
		p.node.ChildPos = append(p.node.ChildPos, len(p.tr))
	}
	var tr PathTrace
	if k := len(s.spare); k > 0 {
		tr = s.spare[k-1][:0]
		s.spare = s.spare[:k-1]
	}
	s.stack = append(s.stack, streamFrame{node: n, tr: tr, seq: s.seq})
	s.seq++
}

// Block records execution of block id in the current invocation.
func (s *StreamCompactor) Block(id cfg.BlockID) {
	if len(s.stack) == 0 {
		panic("wpp: block event outside any call")
	}
	fr := &s.stack[len(s.stack)-1]
	fr.tr = append(fr.tr, id)
	s.blocks++
}

// ExitCall completes the current invocation: its trace is interned
// against the function's unique traces and, when new, DBB-compacted
// immediately (and announced via OnTrace).
func (s *StreamCompactor) ExitCall() {
	if len(s.stack) == 0 {
		panic("wpp: exit event outside any call")
	}
	fr := s.stack[len(s.stack)-1]
	s.stack = s.stack[:len(s.stack)-1]
	fs := &s.funcs[fr.node.Fn]
	h := hashTrace(fr.tr)
	idx, ok := fs.in.lookup(h, func(i int) bool { return tracesEqual(fs.uniq[i].orig, fr.tr) })
	if !ok {
		idx = len(fs.uniq)
		comp, dict := compactTrace(fr.tr)
		fs.uniq = append(fs.uniq, uniqueTrace{orig: fr.tr, comp: comp, dict: dict, firstSeq: fr.seq})
		fs.in.insert(h, idx)
		if s.OnTrace != nil {
			s.OnTrace(fr.node.Fn, idx, comp, len(fr.tr))
		}
	} else {
		if fr.seq < fs.uniq[idx].firstSeq {
			fs.uniq[idx].firstSeq = fr.seq
		}
		if cap(fr.tr) > 0 {
			s.spare = append(s.spare, fr.tr)
		}
	}
	fr.node.TraceIdx = idx
	fs.callCount++
	s.calls++
}

// Finish seals the stream and assembles the Compacted: unique traces
// are ordered by first occurrence, dictionaries deduplicated in that
// order, provisional DCG indices rewritten, and stats accumulated —
// all exactly as the batch path would have produced them.
func (s *StreamCompactor) Finish() (*Compacted, Stats, error) {
	return s.FinishCtx(context.Background())
}

// FinishCtx is Finish with cooperative cancellation: the per-function
// assembly loop checks ctx between functions, so sealing a stream with
// very many functions can be abandoned promptly. Once FinishCtx has
// been called — even if canceled — the compactor is sealed and cannot
// be finished again.
func (s *StreamCompactor) FinishCtx(ctx context.Context) (*Compacted, Stats, error) {
	if s.finished {
		return nil, Stats{}, fmt.Errorf("wpp: StreamCompactor already finished")
	}
	if len(s.stack) != 0 {
		return nil, Stats{}, fmt.Errorf("wpp: event stream ended with %d unclosed calls", len(s.stack))
	}
	if s.root == nil {
		return nil, Stats{}, fmt.Errorf("wpp: event stream contained no calls")
	}
	s.finished = true

	numFuncs := len(s.funcNames)
	if len(s.funcs) > numFuncs {
		numFuncs = len(s.funcs)
	}
	c := &Compacted{
		FuncNames: s.funcNames,
		Root:      s.root,
		Funcs:     make([]FunctionTraces, numFuncs),
	}
	for f := range c.Funcs {
		c.Funcs[f].Fn = cfg.FuncID(f)
	}

	var stats Stats
	stats.RawTraceBytes = 4 * s.blocks
	stats.Calls = s.calls

	s.remap = make([][]int, numFuncs)
	for f := range s.funcs {
		if ctx.Err() != nil {
			return nil, Stats{}, ctx.Err()
		}
		fs := &s.funcs[f]
		ft := &c.Funcs[f]
		ft.CallCount = fs.callCount
		n := len(fs.uniq)
		if n == 0 {
			continue
		}
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(i, j int) bool {
			return fs.uniq[order[i]].firstSeq < fs.uniq[order[j]].firstSeq
		})
		remap := make([]int, n)
		for final, prov := range order {
			remap[prov] = final
		}
		s.remap[f] = remap

		ft.Traces = make([]PathTrace, 0, n)
		ft.OrigLen = make([]int, 0, n)
		ft.DictOf = make([]int, 0, n)
		dictSeen := newInterner()
		for _, prov := range order {
			u := &fs.uniq[prov]
			dh := hashDict(u.dict)
			di, ok := dictSeen.lookup(dh, func(i int) bool { return dictsEqual(ft.Dicts[i], u.dict) })
			if !ok {
				di = len(ft.Dicts)
				dictSeen.insert(dh, di)
				ft.Dicts = append(ft.Dicts, u.dict)
			}
			ft.Traces = append(ft.Traces, u.comp)
			ft.OrigLen = append(ft.OrigLen, len(u.orig))
			ft.DictOf = append(ft.DictOf, di)
			stats.AfterRedundancy += 4 * len(u.orig)
			stats.UniqueTraces++
		}
		for _, tr := range ft.Traces {
			stats.AfterDictionary += 4 * len(tr)
		}
		for _, d := range ft.Dicts {
			stats.DictionaryBytes += 4 * d.Words()
		}
	}
	stats.AfterDictionary += stats.DictionaryBytes

	var rewrite func(n *CallNode)
	rewrite = func(n *CallNode) {
		n.TraceIdx = s.remap[n.Fn][n.TraceIdx]
		for _, ch := range n.Children {
			rewrite(ch)
		}
	}
	rewrite(s.root)
	return c, stats, nil
}

// TraceRemap returns, for each function, the mapping from provisional
// unique-trace indices (the order OnTrace reported) to final indices
// in the Compacted. It is only valid after Finish.
func (s *StreamCompactor) TraceRemap() [][]int { return s.remap }
