// Package wpp implements the first three compaction transformations of
// Zhang & Gupta (PLDI 2001, §2) on a raw whole program path:
//
//  1. partitioning the WPP into per-function path traces linked by the
//     dynamic call graph (Figure 2);
//  2. eliminating redundant (duplicate) path traces produced by
//     different calls to the same function (Figure 3);
//  3. replacing dynamic basic blocks — chains of static blocks that a
//     path trace always enters at the head and leaves at the tail —
//     with their head id, recording the chains in per-trace
//     dictionaries (Figures 4 and 5).
//
// The result, Compacted, preserves enough information to reconstruct
// the original WPP exactly, and is the input to the timestamp
// transformation in internal/core.
package wpp

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"twpp/internal/cfg"
	"twpp/internal/trace"
)

// PathTrace is a block id sequence: either an original per-call trace
// or a dictionary-compacted one. Dedup of traces and dictionaries is
// by 64-bit content hash with verified equality (see intern.go); the
// earlier string-key scheme allocated per call and was the pipeline's
// hottest allocation.
type PathTrace []cfg.BlockID

// Dictionary maps a dynamic-basic-block head to the full chain of
// static block ids it replaces (chains always have length >= 2; heads
// not present expand to themselves).
type Dictionary map[cfg.BlockID]PathTrace

// Words reports the dictionary's size in 32-bit words (head + length +
// chain entries per chain), the unit the paper's tables use.
func (d Dictionary) Words() int {
	n := 0
	for _, chain := range d {
		n += 2 + len(chain)
	}
	return n
}

// FunctionTraces holds all stored trace data for one function: its
// deduplicated compacted traces and their dictionaries.
type FunctionTraces struct {
	Fn cfg.FuncID
	// Traces are the unique path traces in dictionary-compacted form,
	// in order of first occurrence.
	Traces []PathTrace
	// OrigLen[i] is the length (block count) of Traces[i] before
	// dictionary compaction.
	OrigLen []int
	// Dicts are the function's unique dictionaries.
	Dicts []Dictionary
	// DictOf[i] is the index into Dicts of the dictionary for
	// Traces[i].
	DictOf []int
	// CallCount is the number of invocations of this function in the
	// WPP.
	CallCount int
}

// Expand returns unique trace i in its original (pre-dictionary)
// block sequence.
func (ft *FunctionTraces) Expand(i int) PathTrace {
	tr := ft.Traces[i]
	dict := ft.Dicts[ft.DictOf[i]]
	out := make(PathTrace, 0, ft.OrigLen[i])
	for _, id := range tr {
		if chain, ok := dict[id]; ok {
			out = append(out, chain...)
		} else {
			out = append(out, id)
		}
	}
	return out
}

// CallNode is an invocation in the compacted DCG: it references one of
// the callee function's unique traces rather than owning a trace.
type CallNode struct {
	Fn       cfg.FuncID
	TraceIdx int // index into Funcs[Fn].Traces
	Children []*CallNode
	// ChildPos[i] is the child's call position counted in blocks of
	// this call's *original* (expanded) trace, exactly as in
	// trace.CallNode.
	ChildPos []int
}

// Compacted is the fully compacted WPP of the paper's Figure 5.
type Compacted struct {
	FuncNames []string
	Root      *CallNode
	// Funcs holds per-function trace blocks, indexed by FuncID. A
	// function never called has a zero-value entry.
	Funcs []FunctionTraces
}

// Stats captures the per-stage sizes reported in Table 2, all in
// bytes with the paper's 4-bytes-per-block-id accounting.
type Stats struct {
	// RawTraceBytes is the size of all per-call traces before any
	// compaction.
	RawTraceBytes int
	// AfterRedundancy is the size after duplicate trace elimination.
	AfterRedundancy int
	// AfterDictionary is the size after DBB compaction: compacted
	// traces plus dictionaries.
	AfterDictionary int
	// DictionaryBytes is the dictionaries' share of AfterDictionary.
	DictionaryBytes int
	// UniqueTraces counts unique traces across all functions.
	UniqueTraces int
	// Calls counts invocations.
	Calls int
}

// Compact runs partitioning, redundancy elimination, and DBB
// dictionary creation over a raw WPP, sequentially.
func Compact(w *trace.RawWPP) (*Compacted, Stats) {
	return CompactWorkers(w, 1)
}

// CompactWorkers is Compact with the per-function DBB-discovery stage
// fanned out over a bounded worker pool. workers <= 0 selects
// runtime.GOMAXPROCS(0). The output is deterministic: per-function
// results are merged in function order, so the Compacted value and the
// accumulated Stats are identical to the sequential (workers == 1)
// path for any worker count.
func CompactWorkers(w *trace.RawWPP, workers int) (*Compacted, Stats) {
	c, stats, err := CompactWorkersCtx(context.Background(), w, workers)
	if err != nil {
		// Background is never canceled; no other error source exists.
		panic(err)
	}
	return c, stats
}

// CompactWorkersCtx is CompactWorkers with cooperative cancellation:
// the DCG walk checks ctx every few thousand nodes and the
// DBB-discovery pool checks it between functions, so a canceled
// context abandons a large compaction promptly. On cancellation the
// partial Compacted is discarded and ctx.Err() is returned.
func CompactWorkersCtx(ctx context.Context, w *trace.RawWPP, workers int) (*Compacted, Stats, error) {
	numFuncs := len(w.FuncNames)
	// Functions can appear in the DCG beyond the name table when names
	// are absent; size by scanning.
	w.Walk(func(n *trace.CallNode) {
		if int(n.Fn) >= numFuncs {
			numFuncs = int(n.Fn) + 1
		}
	})

	c := &Compacted{
		FuncNames: w.FuncNames,
		Funcs:     make([]FunctionTraces, numFuncs),
	}
	for f := range c.Funcs {
		c.Funcs[f].Fn = cfg.FuncID(f)
	}

	var stats Stats
	stats.RawTraceBytes = 4 * w.NumBlocks()

	// Stage 1+2: partition per function and deduplicate original
	// traces. seen[f] interns trace contents by hash; unique indices
	// point into a per-function intermediate list of original traces.
	seen := make([]*Interner, numFuncs)
	orig := make([][]PathTrace, numFuncs)
	for f := range seen {
		seen[f] = newInterner()
	}

	// The DCG walk polls ctx every stride nodes; once canceled it
	// unwinds without visiting further children.
	const cancelStride = 1 << 12
	visited := 0
	canceled := false
	var build func(n *trace.CallNode) *CallNode
	build = func(n *trace.CallNode) *CallNode {
		if canceled {
			return nil
		}
		visited++
		if visited%cancelStride == 0 && ctx.Err() != nil {
			canceled = true
			return nil
		}
		f := int(n.Fn)
		tr := PathTrace(w.Traces[n.Trace])
		h := hashTrace(tr)
		idx, ok := seen[f].lookup(h, func(i int) bool { return tracesEqual(orig[f][i], tr) })
		if !ok {
			idx = len(orig[f])
			seen[f].insert(h, idx)
			orig[f] = append(orig[f], tr)
		}
		cn := &CallNode{Fn: n.Fn, TraceIdx: idx}
		c.Funcs[f].CallCount++
		stats.Calls++
		for i, ch := range n.Children {
			cn.Children = append(cn.Children, build(ch))
			cn.ChildPos = append(cn.ChildPos, n.ChildPos[i])
		}
		return cn
	}
	c.Root = build(w.Root)
	if canceled || ctx.Err() != nil {
		return nil, Stats{}, ctx.Err()
	}

	// Stage 3: per unique trace, discover DBBs and compact; then
	// deduplicate dictionaries per function. Functions are mutually
	// independent here, so the work fans out over a bounded pool; each
	// worker writes only its own c.Funcs[f] slot and partial-stats
	// slot, and the partials are summed in function order afterwards so
	// the Stats accumulate identically to a sequential run.
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	partial := make([]Stats, numFuncs)
	compactFunc := func(f int) {
		ft := &c.Funcs[f]
		ps := &partial[f]
		dictSeen := newInterner()
		for _, tr := range orig[f] {
			ps.AfterRedundancy += 4 * len(tr)
			compacted, dict := compactTrace(tr)
			dh := hashDict(dict)
			di, ok := dictSeen.lookup(dh, func(i int) bool { return dictsEqual(ft.Dicts[i], dict) })
			if !ok {
				di = len(ft.Dicts)
				dictSeen.insert(dh, di)
				ft.Dicts = append(ft.Dicts, dict)
			}
			ft.Traces = append(ft.Traces, compacted)
			ft.OrigLen = append(ft.OrigLen, len(tr))
			ft.DictOf = append(ft.DictOf, di)
			ps.UniqueTraces++
		}
		for _, tr := range ft.Traces {
			ps.AfterDictionary += 4 * len(tr)
		}
		for _, d := range ft.Dicts {
			ps.DictionaryBytes += 4 * d.Words()
		}
	}
	if workers == 1 || numFuncs <= 1 {
		for f := range orig {
			if ctx.Err() != nil {
				return nil, Stats{}, ctx.Err()
			}
			compactFunc(f)
		}
	} else {
		jobs := make(chan int)
		var wg sync.WaitGroup
		for i := 0; i < workers; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for f := range jobs {
					if ctx.Err() != nil {
						continue // drain without working
					}
					compactFunc(f)
				}
			}()
		}
		for f := range orig {
			jobs <- f
		}
		close(jobs)
		wg.Wait()
		if ctx.Err() != nil {
			return nil, Stats{}, ctx.Err()
		}
	}
	for f := range partial {
		ps := &partial[f]
		stats.AfterRedundancy += ps.AfterRedundancy
		stats.AfterDictionary += ps.AfterDictionary
		stats.DictionaryBytes += ps.DictionaryBytes
		stats.UniqueTraces += ps.UniqueTraces
	}
	stats.AfterDictionary += stats.DictionaryBytes
	return c, stats, nil
}

// compactTrace finds the dynamic basic blocks of one path trace and
// returns the compacted trace along with the dictionary of chains.
func compactTrace(tr PathTrace) (PathTrace, Dictionary) {
	if len(tr) == 0 {
		return PathTrace{}, Dictionary{}
	}
	// Dynamic CFG: successor/predecessor sets of each block restricted
	// to this trace. succ[b] == 0 means none yet; -1 means multiple.
	succ := make(map[cfg.BlockID]cfg.BlockID)
	pred := make(map[cfg.BlockID]cfg.BlockID)
	const multi = cfg.BlockID(-1)
	for i := 0; i+1 < len(tr); i++ {
		u, v := tr[i], tr[i+1]
		if s, ok := succ[u]; !ok {
			succ[u] = v
		} else if s != v {
			succ[u] = multi
		}
		if p, ok := pred[v]; !ok {
			pred[v] = u
		} else if p != u {
			pred[v] = multi
		}
	}

	// chainEdge(u) reports whether the edge u -> succ[u] can be inside
	// a DBB: u has a unique dynamic successor v, v has a unique dynamic
	// predecessor (necessarily u), and v != u.
	chainEdge := func(u cfg.BlockID) (cfg.BlockID, bool) {
		v, ok := succ[u]
		if !ok || v == multi || v == u {
			return 0, false
		}
		if pred[v] != u { // covers the multi case too
			return 0, false
		}
		return v, true
	}

	// "Always entered from the first block": the trace's first block
	// must begin a chain, so sever any chain edge that enters it.
	// "Always exited from the last block": the trace's last block must
	// end a chain, so sever its outgoing chain edge.
	banStart := map[cfg.BlockID]bool{tr[0]: true}
	banOut := map[cfg.BlockID]bool{tr[len(tr)-1]: true}

	// Heads: blocks that start a maximal chain. A block b starts a
	// chain if it has an outgoing chain edge and either no incoming
	// chain edge or its incoming chain edge is severed.
	hasIncomingChain := func(v cfg.BlockID) bool {
		if banStart[v] {
			return false
		}
		u, ok := pred[v]
		if !ok || u == multi {
			return false
		}
		if banOut[u] {
			return false
		}
		w, ok := chainEdge(u)
		return ok && w == v
	}
	outgoingChain := func(u cfg.BlockID) (cfg.BlockID, bool) {
		if banOut[u] {
			return 0, false
		}
		v, ok := chainEdge(u)
		if !ok || banStart[v] {
			return 0, false
		}
		return v, true
	}

	dict := Dictionary{}
	inChain := map[cfg.BlockID]bool{}
	for b := range succ {
		if _, ok := outgoingChain(b); !ok {
			continue
		}
		if hasIncomingChain(b) {
			continue // interior node
		}
		// Walk the chain from head b. Cycles are impossible here: a
		// cycle has no head (every node has an incoming chain edge)
		// unless severed — and severing is what created this head.
		chain := PathTrace{b}
		seen := map[cfg.BlockID]bool{b: true}
		for u := b; ; {
			v, ok := outgoingChain(u)
			if !ok || seen[v] {
				break
			}
			chain = append(chain, v)
			seen[v] = true
			u = v
		}
		if len(chain) >= 2 {
			dict[b] = chain
			for _, id := range chain {
				inChain[id] = true
			}
		}
	}
	// Also ban chains through the final block of the trace when it has
	// no successors at all (it may not appear in succ); nothing to do —
	// such a block can only be a chain tail, which is fine.

	// Rewrite the trace: each occurrence of a chain head is followed by
	// the full chain (guaranteed by construction); emit the head and
	// skip the rest.
	var out PathTrace
	for i := 0; i < len(tr); {
		b := tr[i]
		if chain, ok := dict[b]; ok {
			// Defensive check: the construction guarantees a full
			// occurrence; verify in debug fashion.
			for j, cb := range chain {
				if i+j >= len(tr) || tr[i+j] != cb {
					panic(fmt.Sprintf("wpp: partial DBB occurrence of %v at %d in %v", chain, i, tr))
				}
			}
			out = append(out, b)
			i += len(chain)
		} else {
			out = append(out, b)
			i++
		}
	}
	return out, dict
}

// Reconstruct inverts the compaction, rebuilding the raw WPP (DCG with
// one trace per call). The result is Linear-equal to the input of
// Compact.
func (c *Compacted) Reconstruct() *trace.RawWPP {
	w := &trace.RawWPP{FuncNames: c.FuncNames}
	var rec func(n *CallNode) *trace.CallNode
	rec = func(n *CallNode) *trace.CallNode {
		ft := &c.Funcs[n.Fn]
		tn := &trace.CallNode{Fn: n.Fn, Trace: len(w.Traces)}
		w.Traces = append(w.Traces, ft.Expand(n.TraceIdx))
		for i, ch := range n.Children {
			tn.Children = append(tn.Children, rec(ch))
			tn.ChildPos = append(tn.ChildPos, n.ChildPos[i])
		}
		return tn
	}
	w.Root = rec(c.Root)
	return w
}

// UniqueTraceDistribution returns, for each function that is called at
// least once, the pair (unique trace count, call count) — the data
// behind Figure 8's redundancy CDF.
func (c *Compacted) UniqueTraceDistribution() (uniques, calls []int) {
	for f := range c.Funcs {
		ft := &c.Funcs[f]
		if ft.CallCount == 0 {
			continue
		}
		uniques = append(uniques, len(ft.Traces))
		calls = append(calls, ft.CallCount)
	}
	return uniques, calls
}
