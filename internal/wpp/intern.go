package wpp

import (
	"sort"

	"twpp/internal/cfg"
)

// Trace and dictionary interning by 64-bit hash with collision
// verification. The previous implementation keyed dedup maps on
// PathTrace.key(), which allocated a 4*len(trace)-byte string per
// *call* — the hottest allocation in the pipeline, since redundant
// calls vastly outnumber unique traces (paper Figure 8). Hashing is
// allocation-free; correctness never depends on hash quality because
// every hash hit is verified by full content comparison, so a
// colliding pair simply shares a bucket.

// FNV-1a over 32-bit words. Word-at-a-time (rather than per byte)
// keeps the loop tight; the offset basis and prime are the standard
// 64-bit FNV parameters.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// hashTrace returns a 64-bit content hash of a block-id sequence.
func hashTrace(t PathTrace) uint64 {
	h := uint64(fnvOffset64)
	for _, id := range t {
		h ^= uint64(uint32(id))
		h *= fnvPrime64
	}
	return h
}

// tracesEqual reports content equality of two block-id sequences.
func tracesEqual(a, b PathTrace) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// hashDict returns a 64-bit content hash of a dictionary: chains in
// ascending head order, each as head, length, chain ids — the same
// canonical serialization order the file encoder uses.
func hashDict(d Dictionary) uint64 {
	heads := d.sortedHeads()
	h := uint64(fnvOffset64)
	word := func(v uint32) {
		h ^= uint64(v)
		h *= fnvPrime64
	}
	for _, head := range heads {
		chain := d[head]
		word(uint32(head))
		word(uint32(len(chain)))
		for _, id := range chain {
			word(uint32(id))
		}
	}
	return h
}

// dictsEqual reports content equality of two dictionaries.
func dictsEqual(a, b Dictionary) bool {
	if len(a) != len(b) {
		return false
	}
	for head, chain := range a {
		if !tracesEqual(b[head], chain) {
			return false
		}
	}
	return true
}

// sortedHeads returns the dictionary's chain heads in ascending order.
func (d Dictionary) sortedHeads() []cfg.BlockID {
	heads := make([]cfg.BlockID, 0, len(d))
	for h := range d {
		heads = append(heads, h)
	}
	sort.Slice(heads, func(i, j int) bool { return heads[i] < heads[j] })
	return heads
}

// Interner deduplicates values by 64-bit hash with verified equality.
// It stores only bucket lists of candidate indices; the values
// themselves live with the caller, which supplies an equality check
// against its own storage — so one implementation serves both the
// batch path (values in a slice) and the streaming path (values inside
// per-trace records). The segment merger reuses it for cross-segment
// re-deduplication of path traces and dictionaries.
type Interner struct {
	buckets map[uint64][]int
}

// NewInterner builds an empty interner.
func NewInterner() *Interner {
	return &Interner{buckets: make(map[uint64][]int)}
}

func newInterner() *Interner { return NewInterner() }

// lookup returns the index of a previously inserted value with hash h
// for which same reports true. Hash collisions only cost extra same
// calls, never a wrong match.
func (in *Interner) lookup(h uint64, same func(idx int) bool) (int, bool) {
	for _, idx := range in.buckets[h] {
		if same(idx) {
			return idx, true
		}
	}
	return 0, false
}

// insert records idx as a candidate for hash h.
func (in *Interner) insert(h uint64, idx int) {
	in.buckets[h] = append(in.buckets[h], idx)
}

// Lookup is the exported form of lookup.
func (in *Interner) Lookup(h uint64, same func(idx int) bool) (int, bool) {
	return in.lookup(h, same)
}

// Insert is the exported form of insert.
func (in *Interner) Insert(h uint64, idx int) { in.insert(h, idx) }

// Reset empties the interner, keeping the bucket map's storage so a
// pooled interner warms up once.
func (in *Interner) Reset() {
	clear(in.buckets)
}

// HashDict is the exported form of hashDict: the canonical 64-bit
// FNV-1a content hash of a dictionary.
func HashDict(d Dictionary) uint64 { return hashDict(d) }

// DictsEqual is the exported form of dictsEqual.
func DictsEqual(a, b Dictionary) bool { return dictsEqual(a, b) }

// HashTrace is the exported form of hashTrace.
func HashTrace(t PathTrace) uint64 { return hashTrace(t) }

// TracesEqual is the exported form of tracesEqual.
func TracesEqual(a, b PathTrace) bool { return tracesEqual(a, b) }
