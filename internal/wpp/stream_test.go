package wpp

import (
	"math/rand"
	"reflect"
	"testing"

	"twpp/internal/cfg"
	"twpp/internal/trace"
)

// streamCompact replays w through a StreamCompactor and returns the
// result, failing the test on stream errors.
func streamCompact(t *testing.T, w *trace.RawWPP) (*Compacted, Stats, *StreamCompactor) {
	t.Helper()
	s := NewStreamCompactor(w.FuncNames)
	w.Replay(s)
	c, stats, err := s.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return c, stats, s
}

// recursiveWPP exercises the ordering wrinkle the streaming path must
// undo: with recursion, inner calls complete (and intern) before the
// outer call whose trace must come first in first-occurrence order.
func recursiveWPP() *trace.RawWPP {
	b := trace.NewBuilder([]string{"main", "a"})
	b.EnterCall(0)
	b.Block(1)
	b.EnterCall(1) // outer a: trace {5, 9}
	b.Block(5)
	b.EnterCall(1) // inner a: trace {6, 9}
	b.Block(6)
	b.EnterCall(1) // innermost a: trace {5, 9} again (dedups with outer)
	b.Block(5)
	b.Block(9)
	b.ExitCall()
	b.Block(9)
	b.ExitCall()
	b.Block(9)
	b.ExitCall()
	b.Block(2)
	b.ExitCall()
	return b.Finish()
}

// TestStreamCompactorMatchesBatch checks the streaming compactor
// produces a Compacted and Stats deeply equal to the batch path on
// hand-built and random WPPs, including recursive shapes where intern
// order differs from first-occurrence order.
func TestStreamCompactorMatchesBatch(t *testing.T) {
	cases := map[string]*trace.RawWPP{
		"paper":     paperWPP(),
		"recursive": recursiveWPP(),
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 6; i++ {
		cases["rand"+string(rune('0'+i))] = randStreamWPP(rng)
	}
	for name, w := range cases {
		t.Run(name, func(t *testing.T) {
			want, wantStats := Compact(w)
			got, gotStats, _ := streamCompact(t, w)
			if gotStats != wantStats {
				t.Errorf("stats: stream %+v != batch %+v", gotStats, wantStats)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("Compacted differs from batch")
			}
		})
	}
}

// TestStreamCompactorFirstOccurrenceOrder pins the documented trace
// order directly: the outer recursive call is entered first, so its
// trace must be unique trace 0 even though the inner call interned
// first.
func TestStreamCompactorFirstOccurrenceOrder(t *testing.T) {
	c, _, _ := streamCompact(t, recursiveWPP())
	a := &c.Funcs[1]
	if len(a.Traces) != 2 {
		t.Fatalf("a unique traces = %d, want 2", len(a.Traces))
	}
	if got := a.Expand(0); !tracesEqual(got, PathTrace{5, 9}) {
		t.Errorf("trace 0 expands to %v, want [5 9] (outer call's trace)", got)
	}
	if got := a.Expand(1); !tracesEqual(got, PathTrace{6, 9}) {
		t.Errorf("trace 1 expands to %v, want [6 9]", got)
	}
	if a.CallCount != 3 {
		t.Errorf("a calls = %d, want 3", a.CallCount)
	}
}

// TestStreamCompactorOnTraceRemap checks the OnTrace hook fires once
// per unique trace with provisional indices that TraceRemap maps onto
// the final layout.
func TestStreamCompactorOnTraceRemap(t *testing.T) {
	w := recursiveWPP()
	type seen struct {
		fn      cfg.FuncID
		prov    int
		comp    PathTrace
		origLen int
	}
	var hooks []seen
	s := NewStreamCompactor(w.FuncNames)
	s.OnTrace = func(fn cfg.FuncID, prov int, comp PathTrace, origLen int) {
		hooks = append(hooks, seen{fn, prov, comp, origLen})
	}
	w.Replay(s)
	c, stats, err := s.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(hooks) != stats.UniqueTraces {
		t.Fatalf("OnTrace fired %d times, want %d", len(hooks), stats.UniqueTraces)
	}
	remap := s.TraceRemap()
	perFn := map[cfg.FuncID]int{}
	for _, h := range hooks {
		if h.prov != perFn[h.fn] {
			t.Errorf("fn %d: provisional index %d, want sequential %d", h.fn, h.prov, perFn[h.fn])
		}
		perFn[h.fn]++
		final := remap[h.fn][h.prov]
		ft := &c.Funcs[h.fn]
		if !tracesEqual(ft.Traces[final], h.comp) {
			t.Errorf("fn %d prov %d -> final %d: compacted trace mismatch", h.fn, h.prov, final)
		}
		if ft.OrigLen[final] != h.origLen {
			t.Errorf("fn %d final %d: OrigLen %d, want %d", h.fn, final, ft.OrigLen[final], h.origLen)
		}
	}
}

// TestStreamCompactorErrors covers the stream-shape errors Finish
// reports.
func TestStreamCompactorErrors(t *testing.T) {
	s := NewStreamCompactor(nil)
	if _, _, err := s.Finish(); err == nil {
		t.Error("empty stream: want error")
	}
	s = NewStreamCompactor(nil)
	s.EnterCall(0)
	if _, _, err := s.Finish(); err == nil {
		t.Error("unclosed call: want error")
	}
	s = NewStreamCompactor(nil)
	s.EnterCall(0)
	s.ExitCall()
	if _, _, err := s.Finish(); err != nil {
		t.Errorf("well-formed stream: %v", err)
	}
	if _, _, err := s.Finish(); err == nil {
		t.Error("double Finish: want error")
	}
}

// randStreamWPP mirrors the root fuzz generator: nested random calls
// over a handful of functions, heavy on duplicate traces.
func randStreamWPP(rng *rand.Rand) *trace.RawWPP {
	names := []string{"main", "a", "b", "c"}
	b := trace.NewBuilder(names)
	b.EnterCall(0)
	var gen func(depth int)
	gen = func(depth int) {
		steps := 1 + rng.Intn(12)
		for i := 0; i < steps; i++ {
			b.Block(cfg.BlockID(1 + rng.Intn(6)))
			if depth < 4 && rng.Intn(4) == 0 {
				b.EnterCall(cfg.FuncID(1 + rng.Intn(len(names)-1)))
				gen(depth + 1)
				b.ExitCall()
			}
		}
	}
	gen(0)
	b.ExitCall()
	return b.Finish()
}
