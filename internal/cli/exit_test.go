package cli

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"testing"

	"twpp/internal/encoding"
	"twpp/internal/trace"
)

func TestExitCodeClassification(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"nil is OK", nil, ExitOK},
		{"plain error is failure", errors.New("boom"), ExitFailure},
		{"usage error", Usagef("missing -in"), ExitUsage},
		{"wrapped usage error", fmt.Errorf("outer: %w", Usagef("x")), ExitUsage},
		{"canceled", context.Canceled, ExitCanceled},
		{"deadline", context.DeadlineExceeded, ExitCanceled},
		{"wrapped cancellation", fmt.Errorf("compact: %w", context.Canceled), ExitCanceled},
		{"truncated", encoding.Errf(encoding.CodeTruncated, 5, "cut short"), ExitTruncated},
		{"overflow counts as truncated", encoding.Errf(encoding.CodeOverflow, 5, "overflow"), ExitTruncated},
		{"bad magic is corrupt", encoding.Errf(encoding.CodeBadMagic, 0, "magic"), ExitCorrupt},
		{"bad version is corrupt", encoding.Errf(encoding.CodeBadVersion, 4, "version"), ExitCorrupt},
		{"corrupt", encoding.Errf(encoding.CodeCorrupt, 9, "garbage"), ExitCorrupt},
		{"limit", encoding.Errf(encoding.CodeLimit, 9, "too big"), ExitLimit},
		{"wrapped decode error", fmt.Errorf("open: %w", encoding.Errf(encoding.CodeLimit, 0, "cap")), ExitLimit},
		{"stream error is corrupt", &trace.StreamError{Kind: trace.StreamExitUnderflow, Pos: 3}, ExitCorrupt},
		{"wrapped stream error", fmt.Errorf("replay: %w", &trace.StreamError{Kind: trace.StreamEmpty, Pos: -1}), ExitCorrupt},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			if got := ExitCode(tc.err); got != tc.want {
				t.Fatalf("ExitCode(%v) = %d, want %d", tc.err, got, tc.want)
			}
		})
	}
}

// Usage classification must win over any decode error carried inside
// the message chain — a usage error is always the operator's problem.
func TestUsageWinsOverWrappedDecode(t *testing.T) {
	err := fmt.Errorf("%w: %w", Usagef("bad flag"), encoding.Errf(encoding.CodeCorrupt, 0, "x"))
	if got := ExitCode(err); got != ExitUsage {
		t.Fatalf("exit %d, want %d", got, ExitUsage)
	}
}

func TestHTTPStatusMapping(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"nil is 200", nil, http.StatusOK},
		{"usage is 400", Usagef("bad param"), http.StatusBadRequest},
		{"corrupt is 422", encoding.Errf(encoding.CodeCorrupt, 0, "x"), http.StatusUnprocessableEntity},
		{"truncated is 422", encoding.Errf(encoding.CodeTruncated, 0, "x"), http.StatusUnprocessableEntity},
		{"limit is 422", encoding.Errf(encoding.CodeLimit, 0, "x"), http.StatusUnprocessableEntity},
		{"stream error is 422", &trace.StreamError{Kind: trace.StreamEmpty, Pos: -1}, http.StatusUnprocessableEntity},
		{"deadline is 504", context.DeadlineExceeded, http.StatusGatewayTimeout},
		{"canceled is 504", context.Canceled, http.StatusGatewayTimeout},
		{"plain error is 500", errors.New("boom"), http.StatusInternalServerError},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			if got := HTTPStatus(tc.err); got != tc.want {
				t.Fatalf("HTTPStatus(%v) = %d, want %d", tc.err, got, tc.want)
			}
		})
	}
}

func TestCodeNames(t *testing.T) {
	want := map[int]string{
		ExitOK: "ok", ExitFailure: "error", ExitUsage: "usage",
		ExitCorrupt: "corrupt", ExitTruncated: "truncated",
		ExitLimit: "limit", ExitCanceled: "canceled", 99: "error",
	}
	for code, name := range want {
		if got := CodeName(code); got != name {
			t.Errorf("CodeName(%d) = %q, want %q", code, got, name)
		}
	}
}
