// Package cli holds plumbing shared by the twpp command-line tools:
// exit codes keyed to the structured decode error classes, and the
// usage-error type that selects the usage exit code.
package cli

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"os"

	"twpp/internal/encoding"
	"twpp/internal/trace"
)

// Exit codes. Scripts dispatch on these instead of parsing stderr:
// 3 and 4 distinguish "the file is damaged" from "the file is cut
// short" (retry a transfer), 5 flags inputs rejected by a decode
// resource limit, 6 flags interruption.
const (
	// ExitOK: success.
	ExitOK = 0
	// ExitFailure: any error with no more specific class (I/O,
	// execution failures, internal errors).
	ExitFailure = 1
	// ExitUsage: bad command line (missing or contradictory flags).
	ExitUsage = 2
	// ExitCorrupt: the input file or stream is structurally invalid —
	// wrong magic or version, malformed content, broken call nesting.
	ExitCorrupt = 3
	// ExitTruncated: the input ended early (or a varint overflowed).
	ExitTruncated = 4
	// ExitLimit: the input declared sizes beyond a decode resource
	// limit (OpenOptions.Max*).
	ExitLimit = 5
	// ExitCanceled: the operation was canceled or timed out.
	ExitCanceled = 6
)

// UsageError marks a command-line usage failure; ExitCode maps it to
// ExitUsage.
type UsageError struct{ Msg string }

func (e *UsageError) Error() string { return e.Msg }

// Usagef builds a UsageError.
func Usagef(format string, args ...any) error {
	return &UsageError{Msg: fmt.Sprintf(format, args...)}
}

// ExitCode classifies err into one of the exit codes above using
// errors.As/Is over the structured error types, never message text.
func ExitCode(err error) int {
	if err == nil {
		return ExitOK
	}
	var ue *UsageError
	if errors.As(err, &ue) {
		return ExitUsage
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return ExitCanceled
	}
	var de *encoding.Error
	if errors.As(err, &de) {
		switch de.Code {
		case encoding.CodeTruncated, encoding.CodeOverflow:
			return ExitTruncated
		case encoding.CodeLimit:
			return ExitLimit
		default:
			// CodeBadMagic, CodeBadVersion, CodeCorrupt, and
			// CodeChecksum: the input is damaged or not ours.
			return ExitCorrupt
		}
	}
	var se *trace.StreamError
	if errors.As(err, &se) {
		return ExitCorrupt
	}
	return ExitFailure
}

// CodeName names an exit code for structured logs and error bodies,
// so a reader can dispatch on "corrupt"/"truncated"/"limit" without
// memorizing the numbers.
func CodeName(code int) string {
	switch code {
	case ExitOK:
		return "ok"
	case ExitUsage:
		return "usage"
	case ExitCorrupt:
		return "corrupt"
	case ExitTruncated:
		return "truncated"
	case ExitLimit:
		return "limit"
	case ExitCanceled:
		return "canceled"
	default:
		return "error"
	}
}

// HTTPStatus maps err's exit-code class to the HTTP status a serving
// surface returns for it. The discipline mirrors the exit codes:
// hostile or damaged input is the client's fault (4xx, so a corrupt
// mounted file or query never masquerades as a server fault), an
// expired per-request deadline is a timeout, and anything unclassified
// is a 500.
func HTTPStatus(err error) int {
	switch ExitCode(err) {
	case ExitOK:
		return http.StatusOK
	case ExitUsage:
		return http.StatusBadRequest
	case ExitCorrupt, ExitTruncated, ExitLimit:
		return http.StatusUnprocessableEntity
	case ExitCanceled:
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

// Exit terminates the process with err's exit code, printing
// "tool: err" to stderr first when err is non-nil.
func Exit(tool string, err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
	}
	os.Exit(ExitCode(err))
}
