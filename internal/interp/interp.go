// Package interp executes minilang control flow graphs with whole
// program path instrumentation. It plays the role Trimaran's
// instrumented binaries played for Zhang & Gupta (PLDI 2001): every
// basic block entry and every call/return is reported to a Tracer,
// producing the raw WPP that the compaction pipeline consumes.
package interp

import (
	"errors"
	"fmt"

	"twpp/internal/cfg"
	"twpp/internal/minilang"
)

// Tracer receives control flow events during execution. trace.Builder
// is the standard implementation; NopTracer discards events.
type Tracer interface {
	EnterCall(f cfg.FuncID)
	Block(b cfg.BlockID)
	ExitCall()
}

// NopTracer discards all events (for untraced reference runs).
type NopTracer struct{}

// EnterCall implements Tracer.
func (NopTracer) EnterCall(cfg.FuncID) {}

// Block implements Tracer.
func (NopTracer) Block(cfg.BlockID) {}

// ExitCall implements Tracer.
func (NopTracer) ExitCall() {}

// Limits bound an execution. Zero values select defaults.
type Limits struct {
	// MaxSteps bounds the number of block executions (default 50M).
	MaxSteps int
	// MaxDepth bounds the call stack (default 10000).
	MaxDepth int
}

func (l Limits) withDefaults() Limits {
	if l.MaxSteps == 0 {
		l.MaxSteps = 50_000_000
	}
	if l.MaxDepth == 0 {
		l.MaxDepth = 10_000
	}
	return l
}

// Common execution errors.
var (
	ErrMaxSteps = errors.New("interp: step limit exceeded")
	ErrMaxDepth = errors.New("interp: call depth limit exceeded")
)

// RuntimeError is a language-level execution failure (bad index, wrong
// type, etc.) with the source position of the offending node.
type RuntimeError struct {
	Pos minilang.Pos
	Msg string
}

func (e *RuntimeError) Error() string {
	return fmt.Sprintf("interp: runtime error at %s: %s", e.Pos, e.Msg)
}

// Value is an integer or an array reference.
type Value struct {
	Int int64
	Arr []int64 // non-nil means array value
}

// IsArray reports whether v holds an array.
func (v Value) IsArray() bool { return v.Arr != nil }

// Result is the outcome of a completed execution.
type Result struct {
	// Output collects print() arguments in order.
	Output []int64
	// Steps is the number of blocks executed.
	Steps int
	// ReturnValue is main's return value (0 if none).
	ReturnValue int64
}

// Interp executes one program.
type Interp struct {
	prog   *cfg.Program
	tracer Tracer
	limits Limits
	input  []int64
	inPos  int
	out    []int64
	steps  int
	depth  int
}

// New prepares an interpreter for prog. input feeds `read`
// statements (reads past the end yield 0).
func New(prog *cfg.Program, tracer Tracer, input []int64, limits Limits) *Interp {
	if tracer == nil {
		tracer = NopTracer{}
	}
	return &Interp{prog: prog, tracer: tracer, input: input, limits: limits.withDefaults()}
}

// Run executes main to completion.
func (in *Interp) Run() (*Result, error) {
	ret, err := in.call(in.prog.MainID(), nil, minilang.Pos{Line: 1, Col: 1})
	if err != nil {
		return nil, err
	}
	return &Result{Output: in.out, Steps: in.steps, ReturnValue: ret.Int}, nil
}

// Run is a convenience: build an interpreter and execute.
func Run(prog *cfg.Program, tracer Tracer, input []int64, limits Limits) (*Result, error) {
	return New(prog, tracer, input, limits).Run()
}

// frame is one activation record.
type frame struct {
	vars map[string]Value
}

func (in *Interp) call(f cfg.FuncID, args []Value, pos minilang.Pos) (Value, error) {
	if in.depth >= in.limits.MaxDepth {
		return Value{}, ErrMaxDepth
	}
	g := in.prog.Graph(f)
	if g == nil {
		return Value{}, &RuntimeError{pos, fmt.Sprintf("no such function id %d", f)}
	}
	if len(args) != len(g.Fn.Params) {
		return Value{}, &RuntimeError{pos, fmt.Sprintf("%s expects %d args, got %d", g.Fn.Name, len(g.Fn.Params), len(args))}
	}
	fr := &frame{vars: make(map[string]Value, len(args)+4)}
	for i, p := range g.Fn.Params {
		fr.vars[p] = args[i]
	}

	in.depth++
	in.tracer.EnterCall(f)
	defer func() {
		in.tracer.ExitCall()
		in.depth--
	}()

	blk := g.Entry
	for {
		if in.steps >= in.limits.MaxSteps {
			return Value{}, ErrMaxSteps
		}
		in.steps++
		in.tracer.Block(blk.ID)

		for _, s := range blk.Stmts {
			if err := in.stmt(fr, s); err != nil {
				return Value{}, err
			}
		}

		switch t := blk.Term.(type) {
		case nil:
			// Exit block reached (only via Ret, which returns directly);
			// reaching it by fallthrough means the block structure is
			// corrupt.
			return Value{}, &RuntimeError{g.Fn.Pos, "fell into exit block"}
		case *cfg.Goto:
			blk = t.Target
		case *cfg.CondJump:
			v, err := in.eval(fr, t.Cond)
			if err != nil {
				return Value{}, err
			}
			if v.IsArray() {
				return Value{}, &RuntimeError{t.Cond.Position(), "array used as condition"}
			}
			if v.Int != 0 {
				blk = t.Then
			} else {
				blk = t.Else
			}
		case *cfg.Ret:
			var ret Value
			if t.Value != nil {
				v, err := in.eval(fr, t.Value)
				if err != nil {
					return Value{}, err
				}
				ret = v
			}
			// The exit block executes (and is traced) as part of the
			// return, matching the paper's traces which end on the exit
			// block id.
			if in.steps >= in.limits.MaxSteps {
				return Value{}, ErrMaxSteps
			}
			in.steps++
			in.tracer.Block(t.Exit.ID)
			return ret, nil
		}
	}
}

func (in *Interp) stmt(fr *frame, s minilang.Stmt) error {
	switch x := s.(type) {
	case *minilang.VarStmt:
		v, err := in.eval(fr, x.Value)
		if err != nil {
			return err
		}
		fr.vars[x.Name] = v
		return nil
	case *minilang.AssignStmt:
		v, err := in.eval(fr, x.Value)
		if err != nil {
			return err
		}
		if x.Index == nil {
			fr.vars[x.Name] = v
			return nil
		}
		arr, ok := fr.vars[x.Name]
		if !ok || !arr.IsArray() {
			return &RuntimeError{x.Pos, fmt.Sprintf("%s is not an array", x.Name)}
		}
		idx, err := in.eval(fr, x.Index)
		if err != nil {
			return err
		}
		if idx.IsArray() {
			return &RuntimeError{x.Index.Position(), "array used as index"}
		}
		if idx.Int < 0 || idx.Int >= int64(len(arr.Arr)) {
			return &RuntimeError{x.Pos, fmt.Sprintf("index %d out of range [0,%d)", idx.Int, len(arr.Arr))}
		}
		if v.IsArray() {
			return &RuntimeError{x.Pos, "cannot store array into array element"}
		}
		arr.Arr[idx.Int] = v.Int
		return nil
	case *minilang.PrintStmt:
		for _, a := range x.Args {
			v, err := in.eval(fr, a)
			if err != nil {
				return err
			}
			if v.IsArray() {
				return &RuntimeError{a.Position(), "cannot print array"}
			}
			in.out = append(in.out, v.Int)
		}
		return nil
	case *minilang.ReadStmt:
		var v int64
		if in.inPos < len(in.input) {
			v = in.input[in.inPos]
			in.inPos++
		}
		fr.vars[x.Name] = Value{Int: v}
		return nil
	case *minilang.ExprStmt:
		_, err := in.eval(fr, x.X)
		return err
	default:
		return &RuntimeError{s.Position(), fmt.Sprintf("statement %T in straight-line position", s)}
	}
}

func (in *Interp) eval(fr *frame, e minilang.Expr) (Value, error) {
	switch x := e.(type) {
	case *minilang.NumberLit:
		return Value{Int: x.Value}, nil

	case *minilang.Ident:
		v, ok := fr.vars[x.Name]
		if !ok {
			return Value{}, &RuntimeError{x.Pos, fmt.Sprintf("undefined variable %q", x.Name)}
		}
		return v, nil

	case *minilang.IndexExpr:
		arr, ok := fr.vars[x.Name]
		if !ok || !arr.IsArray() {
			return Value{}, &RuntimeError{x.Pos, fmt.Sprintf("%s is not an array", x.Name)}
		}
		idx, err := in.eval(fr, x.Index)
		if err != nil {
			return Value{}, err
		}
		if idx.IsArray() {
			return Value{}, &RuntimeError{x.Index.Position(), "array used as index"}
		}
		if idx.Int < 0 || idx.Int >= int64(len(arr.Arr)) {
			return Value{}, &RuntimeError{x.Pos, fmt.Sprintf("index %d out of range [0,%d)", idx.Int, len(arr.Arr))}
		}
		return Value{Int: arr.Arr[idx.Int]}, nil

	case *minilang.UnaryExpr:
		v, err := in.eval(fr, x.X)
		if err != nil {
			return Value{}, err
		}
		if v.IsArray() {
			return Value{}, &RuntimeError{x.Pos, "unary operator on array"}
		}
		switch x.Op {
		case minilang.Minus:
			return Value{Int: -v.Int}, nil
		case minilang.Not:
			if v.Int == 0 {
				return Value{Int: 1}, nil
			}
			return Value{Int: 0}, nil
		}
		return Value{}, &RuntimeError{x.Pos, fmt.Sprintf("unknown unary operator %v", x.Op)}

	case *minilang.BinaryExpr:
		// Short-circuit logical operators.
		if x.Op == minilang.AndAnd || x.Op == minilang.OrOr {
			l, err := in.eval(fr, x.X)
			if err != nil {
				return Value{}, err
			}
			if l.IsArray() {
				return Value{}, &RuntimeError{x.Pos, "logical operator on array"}
			}
			if x.Op == minilang.AndAnd && l.Int == 0 {
				return Value{Int: 0}, nil
			}
			if x.Op == minilang.OrOr && l.Int != 0 {
				return Value{Int: 1}, nil
			}
			r, err := in.eval(fr, x.Y)
			if err != nil {
				return Value{}, err
			}
			if r.IsArray() {
				return Value{}, &RuntimeError{x.Pos, "logical operator on array"}
			}
			if r.Int != 0 {
				return Value{Int: 1}, nil
			}
			return Value{Int: 0}, nil
		}
		l, err := in.eval(fr, x.X)
		if err != nil {
			return Value{}, err
		}
		r, err := in.eval(fr, x.Y)
		if err != nil {
			return Value{}, err
		}
		if l.IsArray() || r.IsArray() {
			return Value{}, &RuntimeError{x.Pos, "arithmetic on array"}
		}
		b2i := func(b bool) int64 {
			if b {
				return 1
			}
			return 0
		}
		switch x.Op {
		case minilang.Plus:
			return Value{Int: l.Int + r.Int}, nil
		case minilang.Minus:
			return Value{Int: l.Int - r.Int}, nil
		case minilang.Star:
			return Value{Int: l.Int * r.Int}, nil
		case minilang.Slash:
			// Total semantics: division by zero yields zero, so randomly
			// generated workloads cannot fault here.
			if r.Int == 0 {
				return Value{Int: 0}, nil
			}
			return Value{Int: l.Int / r.Int}, nil
		case minilang.Percent:
			if r.Int == 0 {
				return Value{Int: 0}, nil
			}
			return Value{Int: l.Int % r.Int}, nil
		case minilang.Lt:
			return Value{Int: b2i(l.Int < r.Int)}, nil
		case minilang.Le:
			return Value{Int: b2i(l.Int <= r.Int)}, nil
		case minilang.Gt:
			return Value{Int: b2i(l.Int > r.Int)}, nil
		case minilang.Ge:
			return Value{Int: b2i(l.Int >= r.Int)}, nil
		case minilang.EqEq:
			return Value{Int: b2i(l.Int == r.Int)}, nil
		case minilang.NotEq:
			return Value{Int: b2i(l.Int != r.Int)}, nil
		}
		return Value{}, &RuntimeError{x.Pos, fmt.Sprintf("unknown operator %v", x.Op)}

	case *minilang.CallExpr:
		switch x.Name {
		case minilang.BuiltinAlloc:
			n, err := in.eval(fr, x.Args[0])
			if err != nil {
				return Value{}, err
			}
			if n.IsArray() || n.Int < 0 || n.Int > 1<<24 {
				return Value{}, &RuntimeError{x.Pos, fmt.Sprintf("bad alloc size %v", n.Int)}
			}
			return Value{Arr: make([]int64, n.Int)}, nil
		case minilang.BuiltinLen:
			a, err := in.eval(fr, x.Args[0])
			if err != nil {
				return Value{}, err
			}
			if !a.IsArray() {
				return Value{}, &RuntimeError{x.Pos, "len of non-array"}
			}
			return Value{Int: int64(len(a.Arr))}, nil
		}
		callee := in.prog.Src.Func(x.Name)
		if callee == nil {
			return Value{}, &RuntimeError{x.Pos, fmt.Sprintf("undefined function %q", x.Name)}
		}
		args := make([]Value, len(x.Args))
		for i, a := range x.Args {
			v, err := in.eval(fr, a)
			if err != nil {
				return Value{}, err
			}
			args[i] = v
		}
		return in.call(cfg.FuncID(callee.Index), args, x.Pos)

	default:
		return Value{}, &RuntimeError{e.Position(), fmt.Sprintf("unknown expression %T", e)}
	}
}
