package interp

import (
	"reflect"
	"testing"

	"twpp/internal/cfg"
	"twpp/internal/minilang"
	"twpp/internal/trace"
)

// traceOf runs src and returns the built WPP.
func traceOf(t *testing.T, src string, input []int64) (*trace.RawWPP, *cfg.Program) {
	t.Helper()
	prog, err := minilang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	g, err := cfg.Build(prog, cfg.MaxBlocks)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(prog.Funcs))
	for i, fn := range prog.Funcs {
		names[i] = fn.Name
	}
	b := trace.NewBuilder(names)
	if _, err := Run(g, b, input, Limits{}); err != nil {
		t.Fatal(err)
	}
	return b.Finish(), g
}

func TestCallInsideConditionTraced(t *testing.T) {
	// The call inside the if-condition must appear as a child of main
	// positioned after the block holding the condition was entered.
	src := `
func main() {
    var x = 1;
    if (check(x) > 0) {
        x = 2;
    }
    print(x);
}
func check(v) { return v; }
`
	w, g := traceOf(t, src, nil)
	if len(w.Root.Children) != 1 {
		t.Fatalf("children = %d", len(w.Root.Children))
	}
	pos := w.Root.ChildPos[0]
	mainTrace := w.Traces[w.Root.Trace]
	if pos < 1 || pos > len(mainTrace) {
		t.Fatalf("child position %d out of range (trace %v)", pos, mainTrace)
	}
	// The block executing at position pos must be the one whose
	// terminator condition contains the call.
	blk := g.Graphs[0].Block(mainTrace[pos-1])
	cj, ok := blk.Term.(*cfg.CondJump)
	if !ok {
		t.Fatalf("call-position block B%d has terminator %T", blk.ID, blk.Term)
	}
	var eff cfg.Effects
	cfg.ExprEffects(cj.Cond, &eff)
	if len(eff.Calls) != 1 || eff.Calls[0] != "check" {
		t.Errorf("condition calls = %v", eff.Calls)
	}
	// Full reconstruction still holds.
	back, err := trace.FromLinear(w.Linear(), w.FuncNames)
	if err != nil {
		t.Fatal(err)
	}
	if !trace.Equal(w, back) {
		t.Error("round trip failed")
	}
}

func TestCallInsideReturnTraced(t *testing.T) {
	// A call in a return expression happens before the exit block is
	// traced: the child position must be before the final (exit) block
	// of the parent trace.
	src := `
func main() {
    print(outer());
}
func outer() {
    return inner() + 1;
}
func inner() { return 41; }
`
	w, _ := traceOf(t, src, nil)
	outerNode := w.Root.Children[0]
	if len(outerNode.Children) != 1 {
		t.Fatalf("outer children = %d", len(outerNode.Children))
	}
	outerTrace := w.Traces[outerNode.Trace]
	pos := outerNode.ChildPos[0]
	if pos >= len(outerTrace) {
		t.Errorf("inner call recorded after the exit block: pos %d, trace %v", pos, outerTrace)
	}
}

func TestNestedCallsDeepDCG(t *testing.T) {
	src := `
func main() { print(a(3)); }
func a(n) { return b(n) + 1; }
func b(n) { return c(n) + 1; }
func c(n) { return n; }
`
	w, _ := traceOf(t, src, nil)
	depth := 0
	n := w.Root
	for len(n.Children) > 0 {
		n = n.Children[0]
		depth++
	}
	if depth != 3 {
		t.Errorf("DCG depth = %d, want 3", depth)
	}
	counts := w.CallsPerFunc()
	want := map[cfg.FuncID]int{0: 1, 1: 1, 2: 1, 3: 1}
	if !reflect.DeepEqual(counts, want) {
		t.Errorf("CallsPerFunc = %v", counts)
	}
}

func TestRecursiveTracing(t *testing.T) {
	src := `
func main() { print(fact(4)); }
func fact(n) {
    if (n <= 1) {
        return 1;
    }
    return n * fact(n - 1);
}
`
	w, g := traceOf(t, src, nil)
	counts := w.CallsPerFunc()
	factID := cfg.FuncID(g.Src.Func("fact").Index)
	if counts[factID] != 4 {
		t.Errorf("fact called %d times, want 4", counts[factID])
	}
	// The recursion chain must be a path in the DCG: fact -> fact ->
	// fact -> fact.
	n := w.Root.Children[0]
	chain := 1
	for len(n.Children) > 0 {
		n = n.Children[0]
		if n.Fn != factID {
			t.Fatalf("unexpected callee %d in recursion chain", n.Fn)
		}
		chain++
	}
	if chain != 4 {
		t.Errorf("recursion chain length = %d, want 4", chain)
	}
	if err := trace.Validate(w, g); err != nil {
		t.Errorf("recursive WPP invalid: %v", err)
	}
}

func TestShortCircuitTracingSkipsCallee(t *testing.T) {
	src := `
func main() {
    var x = 0 && probe();
    var y = 1 || probe();
    print(x + y);
}
func probe() { return 1; }
`
	w, _ := traceOf(t, src, nil)
	if len(w.Root.Children) != 0 {
		t.Errorf("short-circuited calls were traced: %d children", len(w.Root.Children))
	}
}
