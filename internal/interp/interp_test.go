package interp

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"twpp/internal/cfg"
	"twpp/internal/minilang"
	"twpp/internal/trace"
)

func run(t *testing.T, src string, input []int64) *Result {
	t.Helper()
	res, err := runErr(src, input)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

func runErr(src string, input []int64) (*Result, error) {
	prog, err := minilang.Parse(src)
	if err != nil {
		return nil, err
	}
	g, err := cfg.Build(prog, cfg.MaxBlocks)
	if err != nil {
		return nil, err
	}
	return Run(g, nil, input, Limits{})
}

func TestArithmetic(t *testing.T) {
	res := run(t, `
func main() {
    print(1 + 2 * 3, 10 - 4, 7 / 2, 7 % 3, -5, 100 / 0, 100 % 0);
}`, nil)
	want := []int64{7, 6, 3, 1, -5, 0, 0}
	if !reflect.DeepEqual(res.Output, want) {
		t.Errorf("output = %v, want %v", res.Output, want)
	}
}

func TestComparisonsAndLogic(t *testing.T) {
	res := run(t, `
func main() {
    print(1 < 2, 2 <= 2, 3 > 4, 4 >= 4, 5 == 5, 5 != 5);
    print(1 && 2, 0 && 1, 0 || 0, 0 || 7, !0, !9);
}`, nil)
	want := []int64{1, 1, 0, 1, 1, 0, 1, 0, 0, 1, 1, 0}
	if !reflect.DeepEqual(res.Output, want) {
		t.Errorf("output = %v, want %v", res.Output, want)
	}
}

func TestShortCircuitSkipsCalls(t *testing.T) {
	res := run(t, `
func main() {
    var x = 0 && boom();
    var y = 1 || boom();
    print(x, y);
}
func boom() {
    print(999);
    return 1;
}`, nil)
	want := []int64{0, 1}
	if !reflect.DeepEqual(res.Output, want) {
		t.Errorf("output = %v, want %v (boom must not run)", res.Output, want)
	}
}

func TestControlFlow(t *testing.T) {
	res := run(t, `
func main() {
    var total = 0;
    for (var i = 1; i <= 10; i = i + 1) {
        if (i % 2 == 0) {
            total = total + i;
        }
    }
    var j = 0;
    while (j < 100) {
        j = j + 1;
        if (j == 7) {
            break;
        }
    }
    print(total, j);
}`, nil)
	want := []int64{30, 7}
	if !reflect.DeepEqual(res.Output, want) {
		t.Errorf("output = %v, want %v", res.Output, want)
	}
}

func TestContinue(t *testing.T) {
	res := run(t, `
func main() {
    var s = 0;
    for (var i = 0; i < 10; i = i + 1) {
        if (i % 3 != 0) {
            continue;
        }
        s = s + i;
    }
    print(s);
}`, nil)
	if res.Output[0] != 0+3+6+9 {
		t.Errorf("output = %v, want [18]", res.Output)
	}
}

func TestFunctionsAndRecursion(t *testing.T) {
	res := run(t, `
func main() {
    print(fib(10), fact(5));
}
func fib(n) {
    if (n < 2) {
        return n;
    }
    return fib(n - 1) + fib(n - 2);
}
func fact(n) {
    if (n <= 1) {
        return 1;
    }
    return n * fact(n - 1);
}`, nil)
	want := []int64{55, 120}
	if !reflect.DeepEqual(res.Output, want) {
		t.Errorf("output = %v, want %v", res.Output, want)
	}
}

func TestArrays(t *testing.T) {
	res := run(t, `
func main() {
    var a = alloc(5);
    for (var i = 0; i < len(a); i = i + 1) {
        a[i] = i * i;
    }
    fill(a, 3, 99);
    print(a[0], a[2], a[3], a[4], len(a));
}
func fill(arr, pos, v) {
    arr[pos] = v;
    return 0;
}`, nil)
	want := []int64{0, 4, 99, 16, 5}
	if !reflect.DeepEqual(res.Output, want) {
		t.Errorf("output = %v, want %v (arrays are by-reference)", res.Output, want)
	}
}

func TestReadInput(t *testing.T) {
	res := run(t, `
func main() {
    read a;
    read b;
    read c;
    print(a, b, c);
}`, []int64{10, 20})
	want := []int64{10, 20, 0} // reads past end yield 0
	if !reflect.DeepEqual(res.Output, want) {
		t.Errorf("output = %v, want %v", res.Output, want)
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := []struct {
		src, wantSub string
	}{
		{`func main() { var a = alloc(3); print(a[5]); }`, "out of range"},
		{`func main() { var a = alloc(3); a[0-1] = 1; }`, "out of range"},
		{`func main() { print(x); }`, "undefined variable"},
		{`func main() { var x = 1; print(x[0]); }`, "not an array"},
		{`func main() { var a = alloc(2); print(a + 1); }`, "arithmetic on array"},
		{`func main() { var a = alloc(2); if (a) { } }`, "condition"},
		{`func main() { var a = alloc(2); print(a); }`, "cannot print"},
		{`func main() { var a = alloc(0 - 1); }`, "bad alloc"},
		{`func main() { print(len(3)); }`, "len of non-array"},
	}
	for _, c := range cases {
		_, err := runErr(c.src, nil)
		if err == nil {
			t.Errorf("%q: want error containing %q", c.src, c.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%q: error %q, want substring %q", c.src, err, c.wantSub)
		}
	}
}

func TestStepLimit(t *testing.T) {
	prog, _ := minilang.Parse(`func main() { while (1 == 1) { } }`)
	g, _ := cfg.Build(prog, cfg.MaxBlocks)
	_, err := Run(g, nil, nil, Limits{MaxSteps: 1000})
	if !errors.Is(err, ErrMaxSteps) {
		t.Errorf("err = %v, want ErrMaxSteps", err)
	}
}

func TestDepthLimit(t *testing.T) {
	prog, _ := minilang.Parse(`
func main() { rec(0); }
func rec(n) { return rec(n + 1); }`)
	g, _ := cfg.Build(prog, cfg.MaxBlocks)
	_, err := Run(g, nil, nil, Limits{MaxDepth: 50})
	if !errors.Is(err, ErrMaxDepth) {
		t.Errorf("err = %v, want ErrMaxDepth", err)
	}
}

func TestReturnValue(t *testing.T) {
	res := run(t, `func main() { return 42; }`, nil)
	if res.ReturnValue != 42 {
		t.Errorf("ReturnValue = %d, want 42", res.ReturnValue)
	}
}

const tracedSrc = `
func main() {
    var x = 0;
    for (var i = 0; i < 5; i = i + 1) {
        x = f(x);
    }
    print(x);
}
func f(a) {
    var j = 0;
    while (j < 3) {
        j = j + 1;
    }
    return a + j;
}
`

func TestTracedExecution(t *testing.T) {
	prog, err := minilang.Parse(tracedSrc)
	if err != nil {
		t.Fatal(err)
	}
	g, err := cfg.Build(prog, cfg.MaxBlocks)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(prog.Funcs))
	for i, fn := range prog.Funcs {
		names[i] = fn.Name
	}
	b := trace.NewBuilder(names)
	res, err := Run(g, b, nil, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	w := b.Finish()

	if res.Output[0] != 15 {
		t.Errorf("output = %v, want [15]", res.Output)
	}
	if w.NumCalls() != 6 { // main + 5 calls to f
		t.Errorf("NumCalls = %d, want 6", w.NumCalls())
	}
	counts := w.CallsPerFunc()
	if counts[0] != 1 || counts[1] != 5 {
		t.Errorf("CallsPerFunc = %v", counts)
	}
	// The trace block count matches the interpreter's step count.
	if w.NumBlocks() != res.Steps {
		t.Errorf("NumBlocks = %d, steps = %d", w.NumBlocks(), res.Steps)
	}
	// All five calls of f follow the identical path (3 iterations):
	// the traces must be equal.
	f := w.Root.Children
	if len(f) != 5 {
		t.Fatalf("main has %d children", len(f))
	}
	first := w.Traces[f[0].Trace]
	for i, c := range f {
		if !reflect.DeepEqual(w.Traces[c.Trace], first) {
			t.Errorf("call %d trace %v != %v", i, w.Traces[c.Trace], first)
		}
	}
	// Every trace ends at the function's exit block.
	w.Walk(func(n *trace.CallNode) {
		tr := w.Traces[n.Trace]
		gph := g.Graph(n.Fn)
		if len(tr) == 0 || tr[len(tr)-1] != gph.Exit.ID {
			t.Errorf("trace of %s does not end at exit: %v", w.FuncName(n.Fn), tr)
		}
		if tr[0] != gph.Entry.ID {
			t.Errorf("trace of %s does not start at entry: %v", w.FuncName(n.Fn), tr)
		}
	})
	// The linear form must be parseable back.
	w2, err := trace.FromLinear(w.Linear(), names)
	if err != nil {
		t.Fatal(err)
	}
	if !trace.Equal(w, w2) {
		t.Error("traced WPP did not round trip through Linear")
	}
}

func TestTraceBlockIDsAreValid(t *testing.T) {
	prog, _ := minilang.Parse(tracedSrc)
	g, _ := cfg.Build(prog, cfg.MaxBlocks)
	b := trace.NewBuilder([]string{"main", "f"})
	if _, err := Run(g, b, nil, Limits{}); err != nil {
		t.Fatal(err)
	}
	w := b.Finish()
	w.Walk(func(n *trace.CallNode) {
		gph := g.Graph(n.Fn)
		prev := cfg.BlockID(0)
		for _, id := range w.Traces[n.Trace] {
			blk := gph.Block(id)
			if blk == nil {
				t.Fatalf("trace mentions unknown block %d", id)
			}
			if prev != 0 {
				// Consecutive trace entries must be CFG edges.
				ok := false
				for _, s := range gph.Block(prev).Succs {
					if s.ID == id {
						ok = true
					}
				}
				if !ok {
					t.Fatalf("trace edge B%d->B%d is not a CFG edge in %s", prev, id, gph.Fn.Name)
				}
			}
			prev = id
		}
	})
}
