package bench

import (
	"fmt"
	"io"

	"twpp/internal/core"
	"twpp/internal/dataflow"
	"twpp/internal/lzw"
	"twpp/internal/wpp"
)

// Ablation quantifies the contribution of each design decision in the
// compacted TWPP representation, per benchmark:
//
//   - DBB dictionaries: TWPP built over dictionary-compacted traces
//     versus TWPP built over fully expanded traces;
//   - arithmetic-series timestamp encoding: sign-terminated series
//     entries versus raw timestamp lists;
//   - LZW on the DCG: compressed versus raw call graph bytes.
//
// All trace sizes use the paper's 4-bytes-per-word accounting.
type Ablation struct {
	Name string
	// Full is the shipped representation: dictionaries + series.
	Full int
	// NoDict keeps series encoding but expands all DBB dictionaries.
	NoDict int
	// NoSeries keeps dictionaries but stores every timestamp
	// individually.
	NoSeries int
	// Neither uses expanded traces and raw timestamps — the naive
	// B -> P(T) representation.
	Neither int
	// DCGRaw and DCGLZW are the dynamic call graph bytes before and
	// after LZW.
	DCGRaw, DCGLZW int
}

// MeasureAblation computes the ablation sizes for one benchmark run.
func MeasureAblation(r *Result) (*Ablation, error) {
	a := &Ablation{Name: r.Profile.Name}
	tw := r.TWPP

	traceB, dictB := tw.SizeStats()
	a.Full = traceB + dictB

	for f := range tw.Funcs {
		ft := &tw.Funcs[f]
		for i, tr := range ft.Traces {
			// NoSeries: per block, header words plus one word per raw
			// timestamp; plus the trace header; dictionaries kept.
			ns := 2
			for _, bt := range tr.Blocks {
				ns += 2 + bt.Times.Count()
			}
			a.NoSeries += 4 * ns

			// NoDict: rebuild the TWPP over the expanded path.
			g, err := dataflow.Build(ft, i)
			if err != nil {
				return nil, err
			}
			expanded := core.FromPath(g.Path())
			a.NoDict += 4 * expanded.Words()

			// Neither: expanded path, raw timestamps.
			nn := 2
			for _, bt := range expanded.Blocks {
				nn += 2 + bt.Times.Count()
			}
			a.Neither += 4 * nn
		}
		for _, d := range ft.Dicts {
			w := 4 * d.Words()
			a.NoSeries += w
		}
	}

	// DCG: serialize the compacted call graph and compare raw vs LZW.
	raw := encodeDCGForAblation(tw.Root)
	a.DCGRaw = len(raw)
	a.DCGLZW = len(lzw.Compress(raw))
	return a, nil
}

// encodeDCGForAblation serializes the compacted DCG with the same
// preorder varint scheme the file format uses, so the LZW ratio
// measured here matches what the stored file achieves.
func encodeDCGForAblation(root *wpp.CallNode) []byte {
	var buf []byte
	var rec func(n *wpp.CallNode)
	rec = func(n *wpp.CallNode) {
		buf = appendUvarint(buf, uint64(n.Fn))
		buf = appendUvarint(buf, uint64(n.TraceIdx))
		buf = appendUvarint(buf, uint64(len(n.Children)))
		prev := 0
		for i, c := range n.Children {
			buf = appendUvarint(buf, uint64(n.ChildPos[i]-prev))
			prev = n.ChildPos[i]
			rec(c)
		}
	}
	if root != nil {
		rec(root)
	}
	return buf
}

func appendUvarint(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

// AblationTable prints the ablation study.
func AblationTable(w io.Writer, abls []*Ablation) {
	fmt.Fprintln(w, "Ablation: contribution of each design decision (trace store bytes; factor vs full)")
	fmt.Fprintf(w, "%-16s %12s %14s %14s %14s %16s\n",
		"Program", "full(MB)", "no dict", "no series", "neither", "DCG lzw ratio")
	for _, a := range abls {
		fmt.Fprintf(w, "%-16s %12.2f %7.2f (x%4.2f) %7.2f (x%4.2f) %7.2f (x%4.2f) %10.1fx\n",
			a.Name,
			float64(a.Full)/1e6,
			float64(a.NoDict)/1e6, float64(a.NoDict)/float64(a.Full),
			float64(a.NoSeries)/1e6, float64(a.NoSeries)/float64(a.Full),
			float64(a.Neither)/1e6, float64(a.Neither)/float64(a.Full),
			float64(a.DCGRaw)/float64(a.DCGLZW))
	}
}
