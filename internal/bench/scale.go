// The GOMAXPROCS scale-out harness: measures how warm extraction and
// serving throughput grow with available parallelism. Reports in this
// shape (BENCH_*_scale.json) are the multi-core line of the repo's
// performance trajectory. NumCPU is always recorded: on a single-core
// host the 1/4/8 curve is honestly flat (oversubscription measures
// scheduling overhead, not scale-out), and the field lets a reader
// tell that apart from a scaling regression.

package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"twpp/internal/cfg"
	"twpp/internal/wppfile"
)

// DefaultScaleProcs is the GOMAXPROCS axis the scale harness sweeps.
var DefaultScaleProcs = []int{1, 4, 8}

// ScaleRun is one GOMAXPROCS point of a scale-out sweep.
type ScaleRun struct {
	GoMaxProcs   int     `json:"gomaxprocs"`
	Workers      int     `json:"workers"`
	Ops          int     `json:"ops"`
	WallMs       float64 `json:"wall_ms"`
	OpsPerS      float64 `json:"ops_per_s"`
	NsPerExtract int64   `json:"ns_per_extract,omitempty"`
	AllocsPerOp  float64 `json:"allocs_per_op"`
	Goroutines   int     `json:"goroutines"`

	// Oversubscribed marks a point forced past NumCPU: its numbers
	// measure scheduling overhead on shared cores, not scale-out, and
	// must not be read as a scaling regression. Sweeps only contain
	// such points when the caller explicitly forced them
	// (-force-procs); by default the axis is clamped to NumCPU.
	Oversubscribed bool `json:"oversubscribed,omitempty"`

	// Segment-scale fields (zero in GOMAXPROCS sweeps): the live
	// segment count behind the extraction surface, and whether the
	// point was measured after folding the container back to one
	// segment.
	Segments int  `json:"segments,omitempty"`
	Merged   bool `json:"merged,omitempty"`

	// Serving-mode fields (zero in pure-extraction sweeps).
	P50Us         float64 `json:"p50_us,omitempty"`
	P99Us         float64 `json:"p99_us,omitempty"`
	CacheHits     uint64  `json:"cache_hits,omitempty"`
	RespCacheHits uint64  `json:"respcache_hits,omitempty"`
}

// ScaleReport is a full sweep: one ScaleRun per GOMAXPROCS point.
type ScaleReport struct {
	// Kind is "extract" (pooled in-process extraction) or "serve"
	// (full HTTP request path).
	Kind   string     `json:"kind"`
	NumCPU int        `json:"num_cpu"`
	Note   string     `json:"note,omitempty"`
	Runs   []ScaleRun `json:"runs"`
}

// Speedup is throughput at the last (widest) point over the first
// (GOMAXPROCS=1) point; zero when the sweep is degenerate.
func (r *ScaleReport) Speedup() float64 {
	if len(r.Runs) < 2 || r.Runs[0].OpsPerS == 0 {
		return 0
	}
	return r.Runs[len(r.Runs)-1].OpsPerS / r.Runs[0].OpsPerS
}

// WriteJSON writes the report to path, indented for diffability.
func (r *ScaleReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ScaleNote describes the host's parallelism budget for a report; the
// single-core caveat is spelled out so flat curves read as what they
// are.
func ScaleNote() string {
	n := runtime.NumCPU()
	if n == 1 {
		return "single-CPU host: GOMAXPROCS > 1 oversubscribes one core, so the curve is expected to be flat"
	}
	return fmt.Sprintf("%d CPUs available", n)
}

// ClampProcs prepares a GOMAXPROCS axis for an honest sweep: unless
// force is set, every point past NumCPU collapses to NumCPU (then
// consecutive duplicates drop), because oversubscribing cores
// measures scheduler overhead, not scale-out — the misleading-p99
// failure mode the scale reports used to have. With force the axis
// passes through unchanged and the oversubscribed points must be
// marked as such in their runs.
func ClampProcs(procs []int, force bool) []int {
	if force {
		return procs
	}
	n := runtime.NumCPU()
	out := make([]int, 0, len(procs))
	for _, p := range procs {
		if p > n {
			p = n
		}
		if len(out) > 0 && out[len(out)-1] == p {
			continue
		}
		out = append(out, p)
	}
	return out
}

// RunExtractScale sweeps warm pooled extraction (ExtractFunctionInto,
// decode cache off) over the GOMAXPROCS axis: at each point, procs
// workers each extract every function of the compacted file at path
// for iters rounds through a private ExtractBuffer. The warm-up round
// runs outside the timed window, so the measured region is the
// steady-state zero-allocation path.
//
// The axis is clamped to NumCPU unless force is set; forced points
// past NumCPU are recorded with Oversubscribed so readers can tell
// scheduling overhead from a scaling regression.
func RunExtractScale(path string, procs []int, iters int, force bool) (*ScaleReport, error) {
	if len(procs) == 0 {
		procs = DefaultScaleProcs
	}
	procs = ClampProcs(procs, force)
	if iters <= 0 {
		iters = 50
	}
	cf, err := wppfile.OpenCompactedOptions(path, wppfile.OpenOptions{})
	if err != nil {
		return nil, err
	}
	defer cf.Close()
	fns := cf.Functions()
	if len(fns) == 0 {
		return nil, fmt.Errorf("bench: no functions in %s", path)
	}

	rep := &ScaleReport{Kind: "extract", NumCPU: runtime.NumCPU(), Note: ScaleNote()}
	for _, p := range procs {
		old := runtime.GOMAXPROCS(p)
		run, err := extractScalePoint(cf, fns, p, iters)
		runtime.GOMAXPROCS(old)
		if err != nil {
			return nil, err
		}
		run.Oversubscribed = p > rep.NumCPU
		rep.Runs = append(rep.Runs, *run)
	}
	return rep, nil
}

// extractScalePoint measures one GOMAXPROCS point: p workers, each
// doing iters passes over every function with its own pooled buffer.
func extractScalePoint(cf *wppfile.CompactedFile, fns []cfg.FuncID, p, iters int) (*ScaleRun, error) {
	// Warm each worker's buffer (grows arenas and dictionary maps to
	// the corpus's largest shapes) outside the timed window.
	bufs := make([]*wppfile.ExtractBuffer, p)
	for i := range bufs {
		bufs[i] = wppfile.GetExtractBuffer()
		for _, fn := range fns {
			if _, err := cf.ExtractFunctionInto(fn, bufs[i]); err != nil {
				return nil, err
			}
		}
	}
	defer func() {
		for _, b := range bufs {
			wppfile.PutExtractBuffer(b)
		}
	}()

	ops := p * iters * len(fns)
	var wg sync.WaitGroup
	errs := make(chan error, p)
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	start := time.Now()
	goroutines := runtime.NumGoroutine() + p
	for w := 0; w < p; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := bufs[w]
			for it := 0; it < iters; it++ {
				for _, fn := range fns {
					if _, err := cf.ExtractFunctionInto(fn, buf); err != nil {
						errs <- err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)
	runtime.ReadMemStats(&m1)
	close(errs)
	for err := range errs {
		return nil, err
	}

	return &ScaleRun{
		GoMaxProcs:   p,
		Workers:      p,
		Ops:          ops,
		WallMs:       float64(wall.Nanoseconds()) / 1e6,
		OpsPerS:      float64(ops) / wall.Seconds(),
		NsPerExtract: wall.Nanoseconds() / int64(ops),
		AllocsPerOp:  float64(m1.Mallocs-m0.Mallocs) / float64(ops),
		Goroutines:   goroutines,
	}, nil
}
