// Package bench generates the synthetic SPECint95-like workloads and
// runs the experiment harness that regenerates every table and figure
// of Zhang & Gupta (PLDI 2001).
//
// The paper collected WPPs from five SPECint95 benchmarks through the
// Trimaran infrastructure. Those binaries and inputs are not
// reproducible here, so each benchmark is replaced by a *profile*: a
// generated minilang program whose dynamic characteristics — calls per
// function, unique path traces per function, loop length and
// regularity — are tuned to mimic what the paper reports for that
// benchmark. The absolute trace sizes are scaled down (MBs rather than
// 100s of MBs) so the suite runs in minutes; the compaction *factors*
// and access-time *ratios* are the reproduced quantities.
package bench

import (
	"fmt"
	"math/rand"
	"strings"
)

// BodyStyle selects the control structure of generated worker loop
// bodies, the main lever on DBB-dictionary and TWPP compressibility.
type BodyStyle int

const (
	// Regular bodies are straight-line: the whole loop body collapses
	// into one dynamic basic block and timestamps form long arithmetic
	// series (perl/ijpeg-like behavior; huge TWPP gains).
	Regular BodyStyle = iota
	// Periodic bodies branch on a modular condition: outcomes repeat
	// with a short period, so each arm's timestamps still form
	// arithmetic series (li/gcc-like).
	Periodic
	// Irregular bodies branch on a pseudo-random recurrence computed
	// in-program: outcomes are aperiodic, defeating both DBB chains
	// and arithmetic series (go-like; TWPP ≈ 1x as in the paper, where
	// 099.go's TWPP was 3% *larger*).
	Irregular
)

// Profile parameterizes one synthetic benchmark.
type Profile struct {
	// Name of the benchmark this profile mimics, e.g. "099.go-like".
	Name string
	// Seed makes generation deterministic.
	Seed int64
	// NumFuncs is the number of worker functions.
	NumFuncs int
	// DriverIters is the number of iterations of main's driver loop;
	// scaled by the harness Scale knob.
	DriverIters int
	// MaxVariants bounds the number of unique path traces a worker can
	// produce (the X axis of the paper's Figure 8): each call selects
	// one of MaxVariants (selector, trip count) combinations.
	MaxVariants int
	// LoopLo and LoopHi bound worker loop trip counts.
	LoopLo, LoopHi int
	// Style selects loop body structure.
	Style BodyStyle
	// ColdFraction of the functions are called rarely (every 64th
	// driver iteration), giving the hot/cold skew the file index
	// exploits.
	ColdFraction float64
	// TailFraction of the functions receive near-unique argument pairs
	// on every call, so almost every invocation produces a fresh path
	// trace. This reproduces the heavy tail of the paper's Figure 8
	// (functions with hundreds of unique traces) and keeps the
	// redundancy-removal factor in the paper's 5.66-9.50 band rather
	// than collapsing everything.
	TailFraction float64
	// NestedCalls makes a fraction of workers call a helper inside
	// their loops, deepening the DCG.
	NestedCalls bool
	// DeadFuncs is the number of generated functions that are never
	// called. Real benchmark binaries carry large amounts of code the
	// profiled input never reaches (the paper's Table 6 shows static
	// flow graphs far larger than the cumulative dynamic ones); dead
	// functions reproduce that static/dynamic asymmetry without
	// affecting the traces.
	DeadFuncs int
}

// Profiles returns the five benchmark profiles mimicking Table 1's
// programs. Scale multiplies driver iterations (1.0 ≈ a few million
// trace blocks per benchmark, matching the paper's shape at roughly
// 1/100th the size).
func Profiles() []Profile {
	return []Profile{
		{
			// 099.go: branchy, irregular control flow; many unique
			// traces per function (50% of calls from functions with
			// <= 50 unique traces); dictionaries help modestly and
			// TWPP adds nothing (x0.97 in the paper).
			Name: "099.go-like", Seed: 99, NumFuncs: 40, DriverIters: 800,
			MaxVariants: 50, LoopLo: 6, LoopHi: 26, Style: Irregular,
			ColdFraction: 0.25, TailFraction: 0.16, NestedCalls: true, DeadFuncs: 1300,
		},
		{
			// 126.gcc: very many functions, moderate redundancy
			// (<= 25 unique traces), mixed regularity.
			Name: "126.gcc-like", Seed: 126, NumFuncs: 120, DriverIters: 600,
			MaxVariants: 25, LoopLo: 5, LoopHi: 18, Style: Periodic,
			ColdFraction: 0.4, TailFraction: 0.24, NestedCalls: true, DeadFuncs: 1800,
		},
		{
			// 130.li: small interpreter, few unique traces (57-80% of
			// calls from functions with <= 5), short regular loops,
			// strong TWPP gains (x4.81).
			Name: "130.li-like", Seed: 130, NumFuncs: 30, DriverIters: 800,
			MaxVariants: 5, LoopLo: 12, LoopHi: 40, Style: Periodic,
			ColdFraction: 0.2, TailFraction: 0.40, NestedCalls: true, DeadFuncs: 700,
		},
		{
			// 132.ijpeg: image kernels: long regular loops, few
			// variants, strong redundancy removal (x9.5) and good
			// TWPP gains (x3.65).
			Name: "132.ijpeg-like", Seed: 132, NumFuncs: 25, DriverIters: 250,
			MaxVariants: 4, LoopLo: 80, LoopHi: 220, Style: Regular,
			ColdFraction: 0.2, TailFraction: 0.20, NestedCalls: false, DeadFuncs: 120,
		},
		{
			// 134.perl: very regular interpreter loops, tiny variant
			// count, extreme TWPP gains (x85 in the paper).
			Name: "134.perl-like", Seed: 134, NumFuncs: 35, DriverIters: 70,
			MaxVariants: 3, LoopLo: 250, LoopHi: 700, Style: Regular,
			ColdFraction: 0.3, TailFraction: 0.12, NestedCalls: false, DeadFuncs: 250,
		},
	}
}

// ProfileByName finds a profile by (prefix of its) name.
func ProfileByName(name string) (Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name || strings.HasPrefix(p.Name, name) {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("bench: unknown profile %q", name)
}

// Generate emits the minilang source of the profile's program. scale
// multiplies the driver iteration count.
func (p Profile) Generate(scale float64) string {
	rng := rand.New(rand.NewSource(p.Seed))
	var b strings.Builder

	iters := int(float64(p.DriverIters) * scale)
	if iters < 1 {
		iters = 1
	}

	// Driver.
	fmt.Fprintf(&b, "// Synthetic workload %s (seed %d).\n", p.Name, p.Seed)
	b.WriteString("func main() {\n")
	b.WriteString("    var i = 0;\n")
	fmt.Fprintf(&b, "    while (i < %d) {\n", iters)
	tailFuncs := int(float64(p.NumFuncs) * p.TailFraction)
	for f := 0; f < p.NumFuncs; f++ {
		lo := p.LoopLo + rng.Intn(p.LoopHi-p.LoopLo+1)
		var call string
		if f < tailFuncs {
			// Tail function: selector and trip count cycle with
			// coprime periods (13 and 23), so the argument pair — and
			// hence the path trace — cycles through lcm(13,23) = 299
			// distinct values: a heavy (but bounded) unique-trace tail.
			call = fmt.Sprintf("w%d(i %% 13, %d + ((i * 7) %% 23));", f, p.LoopLo)
			fmt.Fprintf(&b, "        %s\n", call)
			continue
		}
		cold := rng.Float64() < p.ColdFraction
		variants := 1 + rng.Intn(p.MaxVariants)
		// Selector and trip count derived from the driver counter so
		// each function sees `variants` distinct argument pairs.
		sels := 1 + rng.Intn(variants)
		trips := (variants + sels - 1) / sels
		call = fmt.Sprintf("w%d(i %% %d, %d + (i %% %d));", f, sels, lo, trips)
		if cold {
			fmt.Fprintf(&b, "        if (i %% 64 == %d) {\n            %s\n        }\n", rng.Intn(64), call)
		} else {
			fmt.Fprintf(&b, "        %s\n", call)
		}
	}
	b.WriteString("        i = i + 1;\n")
	b.WriteString("    }\n")
	b.WriteString("    print(i);\n")
	b.WriteString("}\n\n")

	// Workers.
	for f := 0; f < p.NumFuncs; f++ {
		p.generateWorker(&b, rng, f)
	}
	// Never-called functions (cold code).
	for f := 0; f < p.DeadFuncs; f++ {
		generateDeadFunc(&b, rng, f)
	}
	// Shared helper for nested calls.
	if p.NestedCalls {
		b.WriteString(`
func helper(v) {
    var r = 0;
    var k = 0;
    while (k < 3) {
        r = r + v;
        k = k + 1;
    }
    return r;
}
`)
	}
	return b.String()
}

// generateWorker emits one worker function. Every worker's loop body
// has two sections:
//
//   - a *call-constant* section of branches conditioned only on the
//     selector argument: within one invocation every iteration takes
//     the same arms, so the blocks form chains in the dynamic CFG —
//     exactly the dynamic basic blocks the dictionary stage folds;
//
//   - a *varying* section whose structure depends on the profile's
//     style, controlling whether the remaining timestamps form
//     arithmetic series (Periodic/Regular) or not (Irregular).
func (p Profile) generateWorker(b *strings.Builder, rng *rand.Rand, f int) {
	fmt.Fprintf(b, "func w%d(sel, n) {\n", f)
	b.WriteString("    var acc = sel;\n")
	// Prologue branch: distinct selectors reach distinct paths, which
	// multiplies unique traces beyond trip-count variation.
	if rng.Intn(2) == 0 {
		b.WriteString("    if (sel % 2 == 0) {\n        acc = acc + 1;\n    } else {\n        acc = acc * 2;\n    }\n")
	}
	b.WriteString("    var j = 0;\n")
	b.WriteString("    while (j < n) {\n")

	// Call-constant section: chain fodder. More constant branches =
	// longer chains = bigger dictionary wins.
	var constBranches int
	switch p.Style {
	case Regular:
		constBranches = 2 + rng.Intn(3) // ijpeg/perl: long chains
	case Periodic:
		constBranches = 1 + rng.Intn(2) // li/gcc: moderate chains
	case Irregular:
		constBranches = 1 // go: short chains (x1.58 in the paper)
	}
	for c := 0; c < constBranches; c++ {
		div := 2 + (c+rng.Intn(3))%5
		fmt.Fprintf(b, "        if (sel %% %d == %d) {\n", div, rng.Intn(div))
		fmt.Fprintf(b, "            acc = acc + %d;\n", 1+rng.Intn(9))
		b.WriteString("        } else {\n")
		fmt.Fprintf(b, "            acc = acc - %d;\n", 1+rng.Intn(5))
		b.WriteString("        }\n")
	}

	// Varying section.
	switch p.Style {
	case Regular:
		// Nothing varies within a call: the whole body is one chain
		// and the compacted trace is a pure arithmetic series.
	case Periodic:
		period := 2 + rng.Intn(4)
		fmt.Fprintf(b, "        if ((j + sel) %% %d == 0) {\n", period)
		b.WriteString("            acc = acc + j;\n")
		b.WriteString("        } else {\n")
		b.WriteString("            acc = acc - 1;\n")
		b.WriteString("        }\n")
	case Irregular:
		// In-program linear congruential recurrence drives the
		// branches: aperiodic in j, so arm timestamps do not form
		// arithmetic series and the TWPP stage gains nothing.
		fmt.Fprintf(b, "        acc = (acc * %d + %d) %% 8191;\n", 1103515245%8191, 12345)
		b.WriteString("        if (acc % 2 == 0) {\n")
		b.WriteString("            acc = acc + 3;\n")
		b.WriteString("        } else {\n")
		fmt.Fprintf(b, "            if (acc %% %d == 1) {\n", 3+rng.Intn(4))
		b.WriteString("                acc = acc + 7;\n")
		b.WriteString("            } else {\n")
		b.WriteString("                acc = acc - 5;\n")
		b.WriteString("            }\n")
		b.WriteString("        }\n")
	}
	if p.NestedCalls && rng.Intn(3) == 0 {
		b.WriteString("        if (j == 0) {\n            acc = acc + helper(sel);\n        }\n")
	}
	b.WriteString("        j = j + 1;\n")
	b.WriteString("    }\n")
	b.WriteString("    return acc;\n")
	b.WriteString("}\n\n")
}

// generateDeadFunc emits one function that the driver never calls:
// cold code that inflates the static flow graphs exactly as unexercised
// library code inflates real binaries.
func generateDeadFunc(b *strings.Builder, rng *rand.Rand, f int) {
	fmt.Fprintf(b, "func dead%d(p, q) {\n", f)
	b.WriteString("    var r = p;\n")
	branches := 6 + rng.Intn(8)
	for c := 0; c < branches; c++ {
		switch rng.Intn(3) {
		case 0:
			fmt.Fprintf(b, "    if (r %% %d == %d) {\n        r = r + q;\n    } else {\n        r = r - %d;\n    }\n",
				2+rng.Intn(5), rng.Intn(2), 1+rng.Intn(4))
		case 1:
			fmt.Fprintf(b, "    while (r > %d) {\n        r = r / 2;\n    }\n", 10+rng.Intn(90))
		case 2:
			fmt.Fprintf(b, "    for (var k%d = 0; k%d < q; k%d = k%d + 1) {\n        r = r + k%d;\n    }\n",
				c, c, c, c, c)
		}
	}
	b.WriteString("    return r;\n")
	b.WriteString("}\n\n")
}
