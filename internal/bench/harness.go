package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"twpp/internal/cfg"
	"twpp/internal/core"
	"twpp/internal/interp"
	"twpp/internal/minilang"
	"twpp/internal/sequitur"
	"twpp/internal/trace"
	"twpp/internal/wpp"
	"twpp/internal/wppfile"
)

// Result holds everything measured for one benchmark: the inputs to
// Tables 1-3 and 6 plus the artifacts (files, program, TWPP) the
// timing experiments of Tables 4-5 and the Figure analyses consume.
type Result struct {
	Profile Profile

	// Program and execution shape.
	Prog        *cfg.Program
	StaticFuncs int
	Calls       int
	Blocks      int

	// Table 1: raw component sizes (bytes).
	RawDCGBytes   int
	RawTraceBytes int

	// Table 2: per-stage trace sizes (bytes).
	Stats          wpp.Stats
	TWPPTraceBytes int
	TWPPDictBytes  int

	// Table 3: compacted on-disk component sizes (bytes).
	FileHeader int64
	FileDCG    int64
	FileBlocks int64
	FileTotal  int64

	// Table 6 inputs.
	StaticNodes, StaticEdges int
	DynNodes, DynEdges       int
	AvgVecCompact, AvgVecRaw float64

	// Figure 8 inputs: per called function, unique trace count and
	// call count.
	Uniques, CallCounts []int

	// Pipeline timings (with Workers goroutines): the three compaction
	// transformations, the TWPP timestamp inversion, and the on-disk
	// encode.
	Workers     int
	CompactTime time.Duration
	TWPPTime    time.Duration
	EncodeTime  time.Duration

	// Artifacts.
	TWPP     *core.TWPP
	RawPath  string
	CompPath string
}

// CompactThroughput reports compaction speed in raw-trace MB/s over
// the whole compact+invert+encode pipeline.
func (r *Result) CompactThroughput() float64 {
	total := r.CompactTime + r.TWPPTime + r.EncodeTime
	if total == 0 {
		return 0
	}
	return float64(r.RawTraceBytes) / total.Seconds() / 1e6
}

// Run generates, executes, compacts, and serializes one benchmark
// sequentially, collecting all size statistics. Files are written
// under dir.
func Run(p Profile, scale float64, dir string) (*Result, error) {
	return RunWorkers(p, scale, dir, 1)
}

// RunWorkers is Run with the compaction pipeline's per-function work
// fanned out over workers goroutines (<= 0 selects GOMAXPROCS). The
// produced artifacts are identical for every worker count.
func RunWorkers(p Profile, scale float64, dir string, workers int) (*Result, error) {
	src := p.Generate(scale)
	prog, err := minilang.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("bench %s: generated program does not parse: %w", p.Name, err)
	}
	cfgProg, err := cfg.Build(prog, cfg.MaxBlocks)
	if err != nil {
		return nil, fmt.Errorf("bench %s: %w", p.Name, err)
	}
	names := make([]string, len(prog.Funcs))
	for i, fn := range prog.Funcs {
		names[i] = fn.Name
	}
	builder := trace.NewBuilder(names)
	if _, err := interp.Run(cfgProg, builder, nil, interp.Limits{MaxSteps: 200_000_000}); err != nil {
		return nil, fmt.Errorf("bench %s: execution failed: %w", p.Name, err)
	}
	w := builder.Finish()

	res := &Result{Profile: p, Prog: cfgProg, StaticFuncs: len(prog.Funcs), Workers: workers}
	res.Calls = w.NumCalls()
	res.Blocks = w.NumBlocks()
	res.RawDCGBytes, res.RawTraceBytes = w.RawSizes()

	start := time.Now()
	compacted, stats := wpp.CompactWorkers(w, workers)
	res.CompactTime = time.Since(start)
	res.Stats = stats
	res.Uniques, res.CallCounts = compacted.UniqueTraceDistribution()

	start = time.Now()
	tw := core.FromCompactedWorkers(compacted, workers)
	res.TWPPTime = time.Since(start)
	res.TWPP = tw
	res.TWPPTraceBytes, res.TWPPDictBytes = tw.SizeStats()
	res.DynNodes, res.DynEdges = tw.DynamicGraphStats()
	res.AvgVecCompact, res.AvgVecRaw = tw.VectorStats()
	for _, g := range cfgProg.Graphs {
		res.StaticNodes += len(g.Blocks)
		res.StaticEdges += g.NumEdges()
	}

	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
		res.RawPath = filepath.Join(dir, p.Name+".wpp")
		res.CompPath = filepath.Join(dir, p.Name+".twpp")
		if err := wppfile.WriteRaw(res.RawPath, w); err != nil {
			return nil, err
		}
		start = time.Now()
		data, err := wppfile.EncodeCompactedWorkers(tw, workers)
		if err != nil {
			return nil, err
		}
		res.EncodeTime = time.Since(start)
		if err := os.WriteFile(res.CompPath, data, 0o644); err != nil {
			return nil, err
		}
		cf, err := wppfile.OpenCompacted(res.CompPath)
		if err != nil {
			return nil, err
		}
		defer cf.Close()
		res.FileHeader, res.FileDCG, res.FileBlocks, err = cf.SectionSizes()
		if err != nil {
			return nil, err
		}
		res.FileTotal = res.FileHeader + res.FileDCG + res.FileBlocks
	}
	return res, nil
}

// RunAll runs every profile sequentially.
func RunAll(scale float64, dir string) ([]*Result, error) {
	return RunAllWorkers(scale, dir, 1)
}

// RunAllWorkers runs every profile with the given compaction worker
// pool size.
func RunAllWorkers(scale float64, dir string, workers int) ([]*Result, error) {
	var out []*Result
	for _, p := range Profiles() {
		r, err := RunWorkers(p, scale, dir, workers)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// CompactionFactor is Table 3's bottom line: raw total size over
// compacted file size.
func (r *Result) CompactionFactor() float64 {
	if r.FileTotal == 0 {
		return 0
	}
	return float64(r.RawDCGBytes+r.RawTraceBytes) / float64(r.FileTotal)
}

// ---------------------------------------------------------------------
// Table 4: per-function extraction timing.
// ---------------------------------------------------------------------

// ExtractTiming measures the time to extract a single function's path
// traces from the uncompacted file (full scan) and from the compacted
// indexed file (one seek). Every function present in the WPP is
// measured once; avg and max are over functions, as in Table 4. A
// second pass over the compacted file measures cache-served
// extraction, and the decode cache's hit/miss counters are captured so
// reports can verify the cache actually engaged.
type ExtractTiming struct {
	AvgUncompacted, MaxUncompacted time.Duration
	AvgCompacted, MaxCompacted     time.Duration
	AvgCached, MaxCached           time.Duration
	CacheHits, CacheMisses         uint64
	Functions                      int
}

// defaultBenchCacheEntries sizes the decode cache for extraction
// timing: large enough that the warm pass is all hits for every
// benchmark profile.
const defaultBenchCacheEntries = 1024

// Speedup is the paper's headline ratio avg(U)/avg(C).
func (t *ExtractTiming) Speedup() float64 {
	if t.AvgCompacted == 0 {
		return 0
	}
	return float64(t.AvgUncompacted) / float64(t.AvgCompacted)
}

// MeasureExtraction runs the Table 4 experiment on one benchmark's
// files. maxFuncs caps the number of functions scanned on the slow
// path (0 = all); the compacted path always measures all functions.
// The compacted file is opened with the decode cache enabled: the
// first pass measures cold (seek+decode) extraction and populates the
// cache, the second pass measures cache-served extraction, and the
// resulting hit/miss counters flow into the timing (they were silently
// dropped before, so `twpp-bench -json` reported no cache activity).
func MeasureExtraction(r *Result, maxFuncs int) (*ExtractTiming, error) {
	cf, err := wppfile.OpenCompactedOptions(r.CompPath, wppfile.OpenOptions{
		CacheEntries: defaultBenchCacheEntries,
	})
	if err != nil {
		return nil, err
	}
	defer cf.Close()
	fns := cf.Functions()
	if len(fns) == 0 {
		return nil, fmt.Errorf("bench: no functions in %s", r.CompPath)
	}
	scanFns := fns
	if maxFuncs > 0 && len(scanFns) > maxFuncs {
		scanFns = scanFns[:maxFuncs] // hottest first; mirrors paper's per-function averages
	}

	t := &ExtractTiming{Functions: len(scanFns)}
	for _, fn := range scanFns {
		start := time.Now()
		if _, err := wppfile.ScanRawForFunction(r.RawPath, fn); err != nil {
			return nil, err
		}
		d := time.Since(start)
		t.AvgUncompacted += d
		if d > t.MaxUncompacted {
			t.MaxUncompacted = d
		}
	}
	for _, fn := range scanFns {
		start := time.Now()
		if _, err := cf.ExtractFunction(fn); err != nil {
			return nil, err
		}
		d := time.Since(start)
		t.AvgCompacted += d
		if d > t.MaxCompacted {
			t.MaxCompacted = d
		}
	}
	// Warm pass: the same extractions again, now cache-served (as a
	// query server performs them after warmup).
	for _, fn := range scanFns {
		start := time.Now()
		if _, err := cf.ExtractFunction(fn); err != nil {
			return nil, err
		}
		d := time.Since(start)
		t.AvgCached += d
		if d > t.MaxCached {
			t.MaxCached = d
		}
	}
	t.AvgUncompacted /= time.Duration(len(scanFns))
	t.AvgCompacted /= time.Duration(len(scanFns))
	t.AvgCached /= time.Duration(len(scanFns))
	t.CacheHits, t.CacheMisses = cf.CacheStats()
	return t, nil
}

// ---------------------------------------------------------------------
// Table 5: Sequitur (Larus) baseline comparison.
// ---------------------------------------------------------------------

// SequiturComparison holds the Table 5 measurements for one benchmark.
type SequiturComparison struct {
	// Sizes in bytes.
	SequiturBytes int
	TWPPBytes     int64
	// Per-function extraction from the Sequitur grammar, split into
	// the paper's read (decode) and process (expand+collect) phases.
	ReadTime, ProcessTime time.Duration
	// TWPP indexed extraction time for the same functions.
	TWPPTime time.Duration
	// CompressTime is how long Sequitur took to build the grammar
	// (not reported in the paper's tables; informative).
	CompressTime time.Duration
	Functions    int
}

// SizeRatio is TWPP size / Sequitur size (the paper reports Sequitur
// smaller by an average factor 3.92).
func (s *SequiturComparison) SizeRatio() float64 {
	if s.SequiturBytes == 0 {
		return 0
	}
	return float64(s.TWPPBytes) / float64(s.SequiturBytes)
}

// AccessRatio is Sequitur extraction time / TWPP extraction time (the
// paper reports 89-553x).
func (s *SequiturComparison) AccessRatio() float64 {
	if s.TWPPTime == 0 {
		return 0
	}
	return float64(s.ReadTime+s.ProcessTime) / float64(s.TWPPTime)
}

// MeasureSequitur rebuilds the benchmark's linear WPP, compresses it
// with Sequitur, and times per-function extraction from both
// representations, averaging over at most maxFuncs functions (0 =
// all).
func MeasureSequitur(r *Result, maxFuncs int) (*SequiturComparison, error) {
	raw, err := wppfile.ReadRaw(r.RawPath)
	if err != nil {
		return nil, err
	}
	stream := raw.Linear()

	s := &SequiturComparison{TWPPBytes: r.FileTotal}
	start := time.Now()
	comp := sequitur.CompressWPP(stream)
	s.CompressTime = time.Since(start)
	s.SequiturBytes = comp.Size()

	cf, err := wppfile.OpenCompacted(r.CompPath)
	if err != nil {
		return nil, err
	}
	defer cf.Close()
	fns := cf.Functions()
	if maxFuncs > 0 && len(fns) > maxFuncs {
		fns = fns[:maxFuncs]
	}
	s.Functions = len(fns)
	for _, fn := range fns {
		// Read phase: parse the stored grammar.
		start = time.Now()
		dec, err := sequitur.Decode(comp.Data)
		if err != nil {
			return nil, err
		}
		s.ReadTime += time.Since(start)
		// Process phase: expand and collect the function's traces.
		start = time.Now()
		if _, err := extractDecoded(dec, int(fn)); err != nil {
			return nil, err
		}
		s.ProcessTime += time.Since(start)

		start = time.Now()
		if _, err := cf.ExtractFunction(fn); err != nil {
			return nil, err
		}
		s.TWPPTime += time.Since(start)
	}
	n := time.Duration(len(fns))
	s.ReadTime /= n
	s.ProcessTime /= n
	s.TWPPTime /= n
	return s, nil
}

// extractDecoded collects function f's traces from a decoded grammar
// (the process phase of Larus-style extraction).
func extractDecoded(d *sequitur.Decoded, f int) (int, error) {
	want := sequitur.EnterMarker(f)
	depthTarget := -1
	depth := 0
	traces := 0
	var streamErr error
	err := d.ExpandFunc(func(sym uint32) {
		if streamErr != nil {
			return
		}
		switch {
		case sym == sequitur.ExitMarker:
			if depth == 0 {
				streamErr = fmt.Errorf("bench: EXIT underflow")
				return
			}
			depth--
			if depthTarget == depth {
				depthTarget = -1
				traces++
			}
		case sym >= sequitur.EnterMarker(0):
			if sym == want && depthTarget == -1 {
				depthTarget = depth
			}
			depth++
		}
	})
	if err != nil {
		return 0, err
	}
	if streamErr != nil {
		return 0, streamErr
	}
	return traces, nil
}

// ---------------------------------------------------------------------
// Figure 8: trace redundancy CDF.
// ---------------------------------------------------------------------

// RedundancyCDF returns, for each threshold N in thresholds, the
// percentage of all function calls attributable to functions with at
// most N unique path traces.
func (r *Result) RedundancyCDF(thresholds []int) []float64 {
	type fn struct{ uniq, calls int }
	fns := make([]fn, len(r.Uniques))
	total := 0
	for i := range r.Uniques {
		fns[i] = fn{r.Uniques[i], r.CallCounts[i]}
		total += r.CallCounts[i]
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].uniq < fns[j].uniq })
	out := make([]float64, len(thresholds))
	for i, th := range thresholds {
		covered := 0
		for _, f := range fns {
			if f.uniq <= th {
				covered += f.calls
			}
		}
		if total > 0 {
			out[i] = 100 * float64(covered) / float64(total)
		}
	}
	return out
}
