// The segment-scale harness: measures how warm pooled extraction
// latency behaves as one dataset spreads over a growing number of
// live segments (1 -> 4 -> 16), and again after the background merger
// folds each multi-segment container back to one generation. The
// headline property this records is flat latency — per-function
// extraction stays within a small factor of the single-segment cost
// because each segment contributes at most one seek — and a warm
// allocs/op of zero, the same pooled path budget as single-file
// extraction.

package bench

import (
	"context"
	"fmt"
	"path/filepath"
	"runtime"
	"time"

	"twpp/internal/segment"
	"twpp/internal/wppfile"
)

// DefaultSegmentCounts is the segment-count axis RunSegmentScale
// sweeps.
var DefaultSegmentCounts = []int{1, 4, 16}

// RunSegmentScale reads the compacted file at path, seals it into
// segmented containers of each requested segment count under dir, and
// measures warm pooled extraction (Set.ExtractFunctionInto through a
// reused segment.Buffer) at every point. Multi-segment points are
// measured twice: live, and again after MergeAll folds the container
// to one segment — so the report shows both the fan-out cost and that
// merging restores the single-segment baseline.
func RunSegmentScale(path, dir string, counts []int, iters int) (*ScaleReport, error) {
	if len(counts) == 0 {
		counts = DefaultSegmentCounts
	}
	if iters <= 0 {
		iters = 50
	}
	cf, err := wppfile.OpenCompactedOptions(path, wppfile.OpenOptions{})
	if err != nil {
		return nil, err
	}
	tw, err := cf.ReadAll()
	cf.Close()
	if err != nil {
		return nil, err
	}

	rep := &ScaleReport{Kind: "segments", NumCPU: runtime.NumCPU(), Note: ScaleNote()}
	for _, n := range counts {
		segDir := filepath.Join(dir, fmt.Sprintf("segscale-%d", n))
		if _, err := segment.Write(segDir, tw, segment.WriteOptions{Segments: n}); err != nil {
			return nil, err
		}
		set, err := segment.Open(segDir, wppfile.OpenOptions{})
		if err != nil {
			return nil, err
		}
		run, err := segmentScalePoint(set, iters)
		if err != nil {
			set.Close()
			return nil, err
		}
		rep.Runs = append(rep.Runs, *run)
		if set.SegmentCount() > 1 {
			mg := segment.NewMerger(set, segment.MergeOptions{})
			if _, err := mg.MergeAll(context.Background()); err != nil {
				set.Close()
				return nil, err
			}
			run, err = segmentScalePoint(set, iters)
			if err != nil {
				set.Close()
				return nil, err
			}
			run.Merged = true
			rep.Runs = append(rep.Runs, *run)
		}
		set.Close()
	}
	return rep, nil
}

// segmentScalePoint measures one container's warm pooled extraction:
// a single worker extracting every function for iters rounds through
// one reused Buffer. The warm-up round (which grows the buffer's
// arenas and dedup tables to the corpus's largest shapes) runs
// outside the timed window, so the measured region is the
// steady-state path.
func segmentScalePoint(set *segment.Set, iters int) (*ScaleRun, error) {
	fns := set.Functions()
	if len(fns) == 0 {
		return nil, fmt.Errorf("bench: segmented container %s has no functions", set.Dir())
	}
	buf := segment.GetBuffer()
	defer segment.PutBuffer(buf)
	for _, fn := range fns {
		if _, err := set.ExtractFunctionInto(fn, buf); err != nil {
			return nil, err
		}
	}

	ops := iters * len(fns)
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for it := 0; it < iters; it++ {
		for _, fn := range fns {
			if _, err := set.ExtractFunctionInto(fn, buf); err != nil {
				return nil, err
			}
		}
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&m1)

	return &ScaleRun{
		GoMaxProcs:   runtime.GOMAXPROCS(0),
		Workers:      1,
		Ops:          ops,
		WallMs:       float64(wall.Nanoseconds()) / 1e6,
		OpsPerS:      float64(ops) / wall.Seconds(),
		NsPerExtract: wall.Nanoseconds() / int64(ops),
		AllocsPerOp:  float64(m1.Mallocs-m0.Mallocs) / float64(ops),
		Goroutines:   runtime.NumGoroutine(),
		Segments:     set.SegmentCount(),
	}, nil
}

// SegmentLatencyRatio is the worst live multi-segment ns/extract over
// the single-segment baseline; zero when the sweep lacks either. The
// flat-latency acceptance bar is this ratio staying small (<= 1.25 on
// quiet hosts).
func (r *ScaleReport) SegmentLatencyRatio() float64 {
	var base, worst int64
	for _, run := range r.Runs {
		if run.Merged {
			continue
		}
		if run.Segments == 1 && base == 0 {
			base = run.NsPerExtract
		}
		if run.Segments > 1 && run.NsPerExtract > worst {
			worst = run.NsPerExtract
		}
	}
	if base == 0 || worst == 0 {
		return 0
	}
	return float64(worst) / float64(base)
}
