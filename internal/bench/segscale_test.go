package bench

import (
	"runtime"
	"testing"
)

func TestClampProcs(t *testing.T) {
	n := runtime.NumCPU()
	clamped := ClampProcs([]int{1, 4, 8}, false)
	for _, p := range clamped {
		if p > n {
			t.Errorf("clamped axis contains %d > NumCPU %d", p, n)
		}
	}
	for i := 1; i < len(clamped); i++ {
		if clamped[i] <= clamped[i-1] {
			t.Errorf("clamped axis not strictly increasing: %v", clamped)
		}
	}
	// Forced sweeps pass through unchanged.
	forced := ClampProcs([]int{1, 4, 8}, true)
	if len(forced) != 3 || forced[2] != 8 {
		t.Errorf("forced axis altered: %v", forced)
	}
}

func TestRunExtractScaleMarksOversubscription(t *testing.T) {
	dir := t.TempDir()
	prof, err := ProfileByName("099.go-like")
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(prof, 0.03, dir)
	if err != nil {
		t.Fatal(err)
	}
	over := runtime.NumCPU() + 1
	rep, err := RunExtractScale(r.CompPath, []int{1, over}, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Runs) != 2 {
		t.Fatalf("forced sweep has %d runs, want 2", len(rep.Runs))
	}
	if rep.Runs[0].Oversubscribed {
		t.Error("GOMAXPROCS=1 marked oversubscribed")
	}
	if !rep.Runs[1].Oversubscribed {
		t.Errorf("GOMAXPROCS=%d (> NumCPU %d) not marked oversubscribed", over, runtime.NumCPU())
	}

	// The default (unforced) sweep must contain no oversubscribed
	// point at all.
	honest, err := RunExtractScale(r.CompPath, []int{1, over}, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, run := range honest.Runs {
		if run.Oversubscribed || run.GoMaxProcs > runtime.NumCPU() {
			t.Errorf("honest sweep ran an oversubscribed point: %+v", run)
		}
	}
}

// The segment sweep is the flat-latency evidence: every point must
// measure, merged points must be back to one segment, and the warm
// pooled path must not allocate per op.
func TestRunSegmentScale(t *testing.T) {
	dir := t.TempDir()
	prof, err := ProfileByName("099.go-like")
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(prof, 0.05, dir)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunSegmentScale(r.CompPath, dir, []int{1, 4}, 3)
	if err != nil {
		t.Fatal(err)
	}
	// 1 live, 4 live, 4-merged: three runs.
	if len(rep.Runs) != 3 {
		t.Fatalf("runs = %d, want 3: %+v", len(rep.Runs), rep.Runs)
	}
	if rep.Runs[0].Segments != 1 || rep.Runs[0].Merged {
		t.Errorf("first point should be the live single segment: %+v", rep.Runs[0])
	}
	if rep.Runs[1].Segments < 2 || rep.Runs[1].Merged {
		t.Errorf("second point should be live multi-segment: %+v", rep.Runs[1])
	}
	if !rep.Runs[2].Merged || rep.Runs[2].Segments != 1 {
		t.Errorf("third point should be merged back to one segment: %+v", rep.Runs[2])
	}
	for _, run := range rep.Runs {
		if run.NsPerExtract <= 0 || run.Ops <= 0 {
			t.Errorf("point %+v has no measurement", run)
		}
		// The warm pooled path must stay allocation-free; allow a
		// trace of runtime noise (timer/GC bookkeeping).
		if run.AllocsPerOp > 0.5 {
			t.Errorf("segments=%d merged=%v: %.2f allocs/op, want ~0", run.Segments, run.Merged, run.AllocsPerOp)
		}
	}
	if ratio := rep.SegmentLatencyRatio(); ratio <= 0 {
		t.Errorf("SegmentLatencyRatio = %.2f, want > 0", ratio)
	}
}
