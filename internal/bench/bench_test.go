package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"twpp/internal/cfg"
	"twpp/internal/interp"
	"twpp/internal/minilang"
	"twpp/internal/trace"
	"twpp/internal/wppfile"
)

func TestProfilesGenerateValidPrograms(t *testing.T) {
	for _, p := range Profiles() {
		src := p.Generate(0.02)
		prog, err := minilang.Parse(src)
		if err != nil {
			t.Fatalf("%s: generated program does not parse: %v", p.Name, err)
		}
		g, err := cfg.Build(prog, cfg.MaxBlocks)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		names := make([]string, len(prog.Funcs))
		for i, fn := range prog.Funcs {
			names[i] = fn.Name
		}
		b := trace.NewBuilder(names)
		if _, err := interp.Run(g, b, nil, interp.Limits{}); err != nil {
			t.Fatalf("%s: execution failed: %v", p.Name, err)
		}
		w := b.Finish()
		if w.NumCalls() < 2 {
			t.Errorf("%s: only %d calls", p.Name, w.NumCalls())
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := Profiles()[0]
	if p.Generate(0.1) != p.Generate(0.1) {
		t.Error("generation is not deterministic")
	}
}

func TestProfileByName(t *testing.T) {
	if _, err := ProfileByName("134.perl-like"); err != nil {
		t.Error(err)
	}
	if _, err := ProfileByName("134"); err != nil {
		t.Error("prefix lookup failed")
	}
	if _, err := ProfileByName("nope"); err == nil {
		t.Error("unknown profile: want error")
	}
}

func TestRunSmallScale(t *testing.T) {
	dir := t.TempDir()
	for _, p := range Profiles() {
		r, err := Run(p, 0.03, dir)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if r.Calls == 0 || r.Blocks == 0 {
			t.Errorf("%s: empty result", p.Name)
		}
		// Compaction must reduce size at every stage.
		if r.Stats.AfterRedundancy > r.Stats.RawTraceBytes {
			t.Errorf("%s: redundancy removal grew traces", p.Name)
		}
		if r.Stats.AfterDictionary > r.Stats.AfterRedundancy {
			t.Errorf("%s: dictionaries grew traces (%d > %d)", p.Name,
				r.Stats.AfterDictionary, r.Stats.AfterRedundancy)
		}
		if r.CompactionFactor() < 1 {
			t.Errorf("%s: compaction factor %.2f < 1", p.Name, r.CompactionFactor())
		}
		// Files must exist and be loadable.
		cf, err := wppfile.OpenCompacted(r.CompPath)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if len(cf.Functions()) == 0 {
			t.Errorf("%s: empty index", p.Name)
		}
		cf.Close()
	}
}

func TestShapeDifferencesBetweenProfiles(t *testing.T) {
	dir := t.TempDir()
	perl, err := Run(mustProfile(t, "134"), 0.3, dir)
	if err != nil {
		t.Fatal(err)
	}
	golike, err := Run(mustProfile(t, "099"), 0.1, dir)
	if err != nil {
		t.Fatal(err)
	}
	// TWPP gain (dict stage -> TWPP) must be much larger for the
	// regular perl-like workload than for the irregular go-like one.
	gain := func(r *Result) float64 {
		return float64(r.Stats.AfterDictionary) / float64(r.TWPPTraceBytes+r.TWPPDictBytes)
	}
	if gain(perl) < 2*gain(golike) {
		t.Errorf("TWPP gain: perl-like %.2f vs go-like %.2f; expected a clear separation",
			gain(perl), gain(golike))
	}
	// Redundancy-removal factor should be strong for both (paper:
	// 5.66-9.50).
	for _, r := range []*Result{perl, golike} {
		f := float64(r.Stats.RawTraceBytes) / float64(r.Stats.AfterRedundancy)
		if f < 2 {
			t.Errorf("%s: redundancy factor %.2f too low", r.Profile.Name, f)
		}
	}
}

func mustProfile(t *testing.T, name string) Profile {
	t.Helper()
	p, err := ProfileByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestMeasureExtraction(t *testing.T) {
	dir := t.TempDir()
	r, err := Run(mustProfile(t, "130"), 0.05, dir)
	if err != nil {
		t.Fatal(err)
	}
	timing, err := MeasureExtraction(r, 10)
	if err != nil {
		t.Fatal(err)
	}
	if timing.Functions == 0 || timing.AvgUncompacted == 0 {
		t.Errorf("timing = %+v", timing)
	}
	// The indexed path must win. At tiny scales the margin is small,
	// so only require it not to lose.
	if timing.Speedup() < 1 {
		t.Errorf("speedup = %.2f < 1", timing.Speedup())
	}
	// Regression: the extraction harness must engage the decode cache
	// and surface its counters — the warm pass is all hits, the cold
	// pass all misses.
	if timing.CacheHits != uint64(timing.Functions) {
		t.Errorf("CacheHits = %d, want %d (one per warm-pass extraction)", timing.CacheHits, timing.Functions)
	}
	if timing.CacheMisses != uint64(timing.Functions) {
		t.Errorf("CacheMisses = %d, want %d (one per cold-pass extraction)", timing.CacheMisses, timing.Functions)
	}
	if timing.AvgCached == 0 {
		t.Error("AvgCached = 0, want > 0")
	}
}

// Regression for twpp-bench -json omitting the cache counters: the
// report must carry cache_hits/cache_misses as explicit keys (never
// dropped by omitempty) whenever extraction timing ran.
func TestJSONReportCarriesCacheCounters(t *testing.T) {
	dir := t.TempDir()
	r, err := Run(mustProfile(t, "130"), 0.05, dir)
	if err != nil {
		t.Fatal(err)
	}
	timing, err := MeasureExtraction(r, 5)
	if err != nil {
		t.Fatal(err)
	}
	rep := BuildJSONReport(0.05, 1, []*Result{r}, []*ExtractTiming{timing}, nil)
	p := rep.Profiles[0]
	if p.CacheHits == 0 || p.CacheMisses == 0 {
		t.Errorf("report cache counters = %d/%d, want both > 0", p.CacheHits, p.CacheMisses)
	}
	if p.ExtractCachedAvgNs == 0 {
		t.Error("extract_cached_avg_ns = 0, want > 0")
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"cache_hits"`, `"cache_misses"`, `"extract_cached_avg_ns"`} {
		if !strings.Contains(string(data), key) {
			t.Errorf("JSON report missing %s:\n%s", key, data)
		}
	}
}

func TestMeasureSequitur(t *testing.T) {
	dir := t.TempDir()
	r, err := Run(mustProfile(t, "130"), 0.05, dir)
	if err != nil {
		t.Fatal(err)
	}
	c, err := MeasureSequitur(r, 5)
	if err != nil {
		t.Fatal(err)
	}
	if c.SequiturBytes == 0 || c.Functions != 5 {
		t.Errorf("comparison = %+v", c)
	}
	if c.AccessRatio() < 1 {
		t.Errorf("sequitur extraction should be slower: ratio %.2f", c.AccessRatio())
	}
}

func TestRedundancyCDFMonotone(t *testing.T) {
	dir := t.TempDir()
	r, err := Run(mustProfile(t, "126"), 0.05, dir)
	if err != nil {
		t.Fatal(err)
	}
	th := []int{1, 2, 5, 10, 25, 50, 100}
	cdf := r.RedundancyCDF(th)
	for i := 1; i < len(cdf); i++ {
		if cdf[i] < cdf[i-1] {
			t.Errorf("CDF not monotone: %v", cdf)
		}
	}
	if cdf[len(cdf)-1] < 99 {
		t.Errorf("CDF does not approach 100%%: %v", cdf)
	}
}

func TestTablePrinters(t *testing.T) {
	dir := t.TempDir()
	r, err := Run(mustProfile(t, "134"), 0.05, dir)
	if err != nil {
		t.Fatal(err)
	}
	results := []*Result{r}
	timing, err := MeasureExtraction(r, 3)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := MeasureSequitur(r, 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	Table1(&buf, results)
	Table2(&buf, results)
	Table3(&buf, results)
	Table4(&buf, results, []*ExtractTiming{timing})
	Table5(&buf, results, []*SequiturComparison{comp})
	Table6(&buf, results)
	Figure8(&buf, results)
	Summary(&buf, results, []*ExtractTiming{timing})
	out := buf.String()
	for _, want := range []string{"Table 1", "Table 2", "Table 3", "Table 4",
		"Table 5", "Table 6", "Figure 8", "134.perl-like", "compaction factors"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestMeasureAblation(t *testing.T) {
	dir := t.TempDir()
	r, err := Run(mustProfile(t, "134"), 0.3, dir)
	if err != nil {
		t.Fatal(err)
	}
	a, err := MeasureAblation(r)
	if err != nil {
		t.Fatal(err)
	}
	// Dropping either optimization must not shrink the store, and for
	// the regular perl-like workload both must hurt substantially.
	if a.NoDict < a.Full || a.NoSeries < a.Full || a.Neither < a.NoDict || a.Neither < a.NoSeries {
		t.Errorf("ablation ordering violated: %+v", a)
	}
	if float64(a.Neither) < 3*float64(a.Full) {
		t.Errorf("perl-like: naive representation only %.2fx of full; expected > 3x (%+v)",
			float64(a.Neither)/float64(a.Full), a)
	}
	if a.DCGLZW >= a.DCGRaw {
		t.Errorf("LZW did not compress the DCG: %d >= %d", a.DCGLZW, a.DCGRaw)
	}
	var buf bytes.Buffer
	AblationTable(&buf, []*Ablation{a})
	if !strings.Contains(buf.String(), "Ablation") {
		t.Error("AblationTable output missing header")
	}
}
