package bench

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// mb formats a byte count in MB with two decimals (the paper's unit).
func mb(n int64) string { return fmt.Sprintf("%8.2f", float64(n)/1e6) }

// Table1 prints the raw WPP component sizes (paper Table 1).
func Table1(w io.Writer, results []*Result) {
	fmt.Fprintln(w, "Table 1: sample input traces (sizes in MB)")
	fmt.Fprintf(w, "%-16s %10s %12s %12s %10s %10s\n", "Program", "DCG(MB)", "traces(MB)", "total(MB)", "calls", "blocks")
	for _, r := range results {
		fmt.Fprintf(w, "%-16s %10s %12s %12s %10d %10d\n",
			r.Profile.Name, mb(int64(r.RawDCGBytes)), mb(int64(r.RawTraceBytes)),
			mb(int64(r.RawDCGBytes+r.RawTraceBytes)), r.Calls, r.Blocks)
	}
}

// Table2 prints per-transformation trace compaction (paper Table 2).
func Table2(w io.Writer, results []*Result) {
	fmt.Fprintln(w, "Table 2: WPP trace compaction due to various transformations (MB, factor vs previous stage)")
	fmt.Fprintf(w, "%-16s %18s %18s %18s %12s\n",
		"Program", "redund.removal", "dict.creation", "compacted TWPP", "OWPP/CTWPP")
	for _, r := range results {
		raw := float64(r.Stats.RawTraceBytes)
		red := float64(r.Stats.AfterRedundancy)
		dict := float64(r.Stats.AfterDictionary)
		twpp := float64(r.TWPPTraceBytes + r.TWPPDictBytes)
		fmt.Fprintf(w, "%-16s %9.2f (x%5.2f) %9.2f (x%5.2f) %9.2f (x%5.2f) %12.1f\n",
			r.Profile.Name,
			red/1e6, raw/red,
			dict/1e6, red/dict,
			twpp/1e6, dict/twpp,
			raw/twpp)
	}
}

// Table3 prints the overall compaction factor with the on-disk
// component breakdown (paper Table 3).
func Table3(w io.Writer, results []*Result) {
	fmt.Fprintln(w, "Table 3: overall compaction factor (on-disk compacted TWPP file)")
	fmt.Fprintf(w, "%-16s %12s %12s %12s %12s %10s\n",
		"Program", "DCG(MB)", "traces(MB)", "dicts+ix(MB)", "total(MB)", "factor")
	for _, r := range results {
		// Blocks section holds traces+dictionaries; the header holds
		// the index. Approximate the paper's trace/dict split using
		// the in-memory word accounting.
		traces := int64(r.TWPPTraceBytes)
		rest := r.FileTotal - r.FileDCG - traces
		if rest < 0 {
			traces = r.FileBlocks
			rest = r.FileHeader
		}
		fmt.Fprintf(w, "%-16s %12s %12s %12s %12s %9.1fx\n",
			r.Profile.Name, mb(r.FileDCG), mb(traces), mb(rest), mb(r.FileTotal),
			r.CompactionFactor())
	}
}

// Table4 prints per-function extraction timings (paper Table 4).
func Table4(w io.Writer, results []*Result, timings []*ExtractTiming) {
	fmt.Fprintln(w, "Table 4: extraction times for a single function")
	fmt.Fprintf(w, "%-16s %12s %12s %12s %12s %10s\n",
		"Program", "avg.U", "max.U", "avg.C", "max.C", "U/C(avg)")
	for i, r := range results {
		t := timings[i]
		fmt.Fprintf(w, "%-16s %12s %12s %12s %12s %9.0fx\n",
			r.Profile.Name, fmtDur(t.AvgUncompacted), fmtDur(t.MaxUncompacted),
			fmtDur(t.AvgCompacted), fmtDur(t.MaxCompacted), t.Speedup())
	}
}

// Table5 prints the Sequitur (Larus baseline) comparison (paper
// Table 5).
func Table5(w io.Writer, results []*Result, comps []*SequiturComparison) {
	fmt.Fprintln(w, "Table 5: compacted trace sizes and extraction times vs Sequitur (Larus)")
	fmt.Fprintf(w, "%-16s %12s %12s %26s %12s %10s\n",
		"Program", "Seq(MB)", "TWPP(MB)", "Seq read+process=total", "TWPP", "Seq/TWPP")
	for i, r := range results {
		c := comps[i]
		fmt.Fprintf(w, "%-16s %12s %12s %10s+%s=%s %12s %9.0fx\n",
			r.Profile.Name, mb(int64(c.SequiturBytes)), mb(c.TWPPBytes),
			fmtDur(c.ReadTime), fmtDur(c.ProcessTime), fmtDur(c.ReadTime+c.ProcessTime),
			fmtDur(c.TWPPTime), c.AccessRatio())
	}
}

// Table6 prints static vs dynamic flow graph sizes (paper Table 6).
func Table6(w io.Writer, results []*Result) {
	fmt.Fprintln(w, "Table 6: sizes of static and dynamic flow graphs")
	fmt.Fprintf(w, "%-16s %10s %10s %10s %10s %18s\n",
		"Program", "static N", "static E", "dyn N", "dyn E", "avg |T| (raw)")
	for _, r := range results {
		fmt.Fprintf(w, "%-16s %10d %10d %10d %10d %10.1f (%.1f)\n",
			r.Profile.Name, r.StaticNodes, r.StaticEdges, r.DynNodes, r.DynEdges,
			r.AvgVecCompact, r.AvgVecRaw)
	}
}

// Figure8 prints the trace-redundancy CDF as rows of percentages per
// threshold (paper Figure 8).
func Figure8(w io.Writer, results []*Result) {
	thresholds := []int{1, 2, 5, 10, 25, 50, 100, 200, 300}
	fmt.Fprintln(w, "Figure 8: % of function calls from functions with at most N unique path traces")
	fmt.Fprintf(w, "%-16s", "Program")
	for _, th := range thresholds {
		fmt.Fprintf(w, " %6d", th)
	}
	fmt.Fprintln(w)
	for _, r := range results {
		cdf := r.RedundancyCDF(thresholds)
		fmt.Fprintf(w, "%-16s", r.Profile.Name)
		for _, v := range cdf {
			fmt.Fprintf(w, " %5.1f%%", v)
		}
		fmt.Fprintln(w)
	}
}

// fmtDur renders a duration with µs resolution in a fixed width.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

// Summary prints a one-paragraph recap mirroring the paper's headline
// claims: overall compaction factors and extraction speedups.
func Summary(w io.Writer, results []*Result, timings []*ExtractTiming) {
	var factors, speedups []float64
	for i, r := range results {
		factors = append(factors, r.CompactionFactor())
		if timings != nil && timings[i] != nil {
			speedups = append(speedups, timings[i].Speedup())
		}
	}
	fmt.Fprintf(w, "Overall compaction factors: %s (paper: 7 to 64)\n", fmtRange(factors))
	if len(speedups) > 0 {
		fmt.Fprintf(w, "Extraction speedups: %s (paper: >3 orders of magnitude on average)\n", fmtRange(speedups))
	}
}

func fmtRange(vals []float64) string {
	if len(vals) == 0 {
		return "n/a"
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return strings.TrimSpace(fmt.Sprintf("%.0f to %.0f", lo, hi))
}
