package bench

import (
	"io"
	"os"
	"runtime"
	"sync"
	"time"

	"twpp/internal/core"
	"twpp/internal/wpp"
	"twpp/internal/wppfile"
)

// MemoryStats compares the peak heap footprint of the batch compaction
// pipeline (slurp file, compact, invert, encode to a byte slice)
// against the streaming pipeline (bounded reader, online compaction,
// writer-based encode) on the same raw WPP file.
type MemoryStats struct {
	BatchPeakHeap  uint64 // bytes above the pre-run baseline
	BatchAllocs    uint64 // heap objects allocated during the run
	StreamPeakHeap uint64
	StreamAllocs   uint64
}

// Ratio is batch peak heap over streaming peak heap (> 1 means the
// streaming pipeline is leaner).
func (m *MemoryStats) Ratio() float64 {
	if m.StreamPeakHeap == 0 {
		return 0
	}
	return float64(m.BatchPeakHeap) / float64(m.StreamPeakHeap)
}

// PeakHeap runs fn and reports the peak heap growth (bytes above the
// pre-call baseline) and the number of heap allocations it performed.
// The peak is observed by a sampler polling the runtime twice per
// millisecond, so very short-lived spikes between samples can be
// missed; for the multi-millisecond pipeline runs measured here the
// error is small. The caller should be the only allocating goroutine.
func PeakHeap(fn func() error) (peakBytes, mallocs uint64, err error) {
	runtime.GC()
	var base runtime.MemStats
	runtime.ReadMemStats(&base)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var peak uint64
	wg.Add(1)
	go func() {
		defer wg.Done()
		var ms runtime.MemStats
		for {
			select {
			case <-stop:
				return
			default:
			}
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > peak {
				peak = ms.HeapAlloc
			}
			time.Sleep(500 * time.Microsecond)
		}
	}()

	err = fn()

	close(stop)
	wg.Wait()
	var final runtime.MemStats
	runtime.ReadMemStats(&final)
	if final.HeapAlloc > peak {
		peak = final.HeapAlloc
	}
	if peak > base.HeapAlloc {
		peakBytes = peak - base.HeapAlloc
	}
	mallocs = final.Mallocs - base.Mallocs
	return peakBytes, mallocs, err
}

// MeasureMemory runs both pipelines over r's raw WPP file and reports
// their peak heap footprints. Output bytes go to io.Discard so only
// pipeline working memory is measured.
func MeasureMemory(r *Result, workers int) (*MemoryStats, error) {
	m := &MemoryStats{}

	var err error
	m.BatchPeakHeap, m.BatchAllocs, err = PeakHeap(func() error {
		w, err := wppfile.ReadRaw(r.RawPath)
		if err != nil {
			return err
		}
		c, _ := wpp.CompactWorkers(w, workers)
		tw := core.FromCompactedWorkers(c, workers)
		data, err := wppfile.EncodeCompactedWorkers(tw, workers)
		if err != nil {
			return err
		}
		_, err = io.Discard.Write(data)
		return err
	})
	if err != nil {
		return nil, err
	}

	m.StreamPeakHeap, m.StreamAllocs, err = PeakHeap(func() error {
		f, err := os.Open(r.RawPath)
		if err != nil {
			return err
		}
		defer f.Close()
		fi, err := f.Stat()
		if err != nil {
			return err
		}
		rr, err := wppfile.NewRawStreamReader(f, fi.Size())
		if err != nil {
			return err
		}
		s := core.NewStreamCompactor(rr.Names())
		if err := rr.Replay(s); err != nil {
			return err
		}
		tw, _, err := s.Finish()
		if err != nil {
			return err
		}
		_, err = wppfile.EncodeCompactedTo(io.Discard, tw, workers)
		return err
	})
	if err != nil {
		return nil, err
	}
	return m, nil
}
