package bench

import (
	"encoding/json"
	"os"
	"runtime"
	"time"
)

// JSONReport is the machine-readable output of cmd/twpp-bench -json:
// per-profile compaction throughput and extraction latency. Files in
// this shape (BENCH_*.json) form the repo's performance trajectory
// across PRs.
type JSONReport struct {
	// Scale is the workload scale factor the run used.
	Scale float64 `json:"scale"`
	// Workers is the compaction worker pool size.
	Workers int `json:"workers"`
	// GoMaxProcs records the parallelism available to the run.
	GoMaxProcs int           `json:"gomaxprocs"`
	Profiles   []JSONProfile `json:"profiles"`
	// ScaleOut, when the run swept the GOMAXPROCS axis (-scale-procs),
	// is the warm pooled-extraction scale-out curve.
	ScaleOut *ScaleReport `json:"scale_out,omitempty"`
	// SegmentScale, when the run swept the segment-count axis
	// (-segments), is the segmented-container extraction curve:
	// ns/extract and allocs/op as live segments grow 1 -> 4 -> 16,
	// pre- and post-merge.
	SegmentScale *ScaleReport `json:"segment_scale,omitempty"`
}

// JSONProfile is one benchmark profile's measurements.
type JSONProfile struct {
	Name   string `json:"name"`
	Blocks int    `json:"trace_blocks"`
	Calls  int    `json:"calls"`

	// Sizes (bytes) and the overall compaction factor.
	RawBytes         int     `json:"raw_bytes"`
	CompactedBytes   int64   `json:"compacted_file_bytes"`
	CompactionFactor float64 `json:"compaction_factor"`

	// Compaction pipeline timings (ns) and raw-trace throughput.
	CompactNs        int64   `json:"compact_ns"`
	TWPPNs           int64   `json:"twpp_ns"`
	EncodeNs         int64   `json:"encode_ns"`
	ThroughputMBPerS float64 `json:"compact_mb_per_s"`

	// Per-function extraction latency (ns), averaged and worst-case
	// over the measured functions; zero when extraction timing was not
	// run.
	ExtractFunctions      int     `json:"extract_functions,omitempty"`
	ExtractAvgNs          int64   `json:"extract_avg_ns,omitempty"`
	ExtractMaxNs          int64   `json:"extract_max_ns,omitempty"`
	ScanAvgNs             int64   `json:"scan_avg_ns,omitempty"`
	ScanMaxNs             int64   `json:"scan_max_ns,omitempty"`
	ExtractSpeedupOverRaw float64 `json:"extract_speedup_over_raw,omitempty"`

	// Cache-served extraction latency (ns) and the decode cache's
	// hit/miss counters over both extraction passes. Deliberately not
	// omitempty: a zero must be visible as a zero (these counters were
	// previously dropped from the report entirely, which hid the
	// cache's behaviour from the performance trajectory).
	ExtractCachedAvgNs int64  `json:"extract_cached_avg_ns"`
	ExtractCachedMaxNs int64  `json:"extract_cached_max_ns"`
	CacheHits          uint64 `json:"cache_hits"`
	CacheMisses        uint64 `json:"cache_misses"`

	// Pipeline memory footprint (bytes above baseline / heap objects),
	// batch vs streaming over the same raw file; zero when memory
	// measurement was not run.
	PeakHeapBytes       uint64  `json:"peak_heap_bytes,omitempty"`
	AllocsPerOp         uint64  `json:"allocs_per_op,omitempty"`
	StreamPeakHeapBytes uint64  `json:"stream_peak_heap_bytes,omitempty"`
	StreamAllocsPerOp   uint64  `json:"stream_allocs_per_op,omitempty"`
	StreamHeapRatio     float64 `json:"stream_heap_ratio,omitempty"`
}

// BuildJSONReport assembles the report from run results and optional
// extraction timings and memory measurements (either slice may be nil
// or shorter than results).
func BuildJSONReport(scale float64, workers int, results []*Result, timings []*ExtractTiming, mems []*MemoryStats) *JSONReport {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	rep := &JSONReport{Scale: scale, Workers: workers, GoMaxProcs: runtime.GOMAXPROCS(0)}
	for i, r := range results {
		p := JSONProfile{
			Name:             r.Profile.Name,
			Blocks:           r.Blocks,
			Calls:            r.Calls,
			RawBytes:         r.RawDCGBytes + r.RawTraceBytes,
			CompactedBytes:   r.FileTotal,
			CompactionFactor: r.CompactionFactor(),
			CompactNs:        r.CompactTime.Nanoseconds(),
			TWPPNs:           r.TWPPTime.Nanoseconds(),
			EncodeNs:         r.EncodeTime.Nanoseconds(),
			ThroughputMBPerS: r.CompactThroughput(),
		}
		if i < len(timings) && timings[i] != nil {
			t := timings[i]
			p.ExtractFunctions = t.Functions
			p.ExtractAvgNs = t.AvgCompacted.Nanoseconds()
			p.ExtractMaxNs = t.MaxCompacted.Nanoseconds()
			p.ScanAvgNs = t.AvgUncompacted.Nanoseconds()
			p.ScanMaxNs = t.MaxUncompacted.Nanoseconds()
			p.ExtractSpeedupOverRaw = t.Speedup()
			p.ExtractCachedAvgNs = t.AvgCached.Nanoseconds()
			p.ExtractCachedMaxNs = t.MaxCached.Nanoseconds()
			p.CacheHits = t.CacheHits
			p.CacheMisses = t.CacheMisses
		}
		if i < len(mems) && mems[i] != nil {
			m := mems[i]
			p.PeakHeapBytes = m.BatchPeakHeap
			p.AllocsPerOp = m.BatchAllocs
			p.StreamPeakHeapBytes = m.StreamPeakHeap
			p.StreamAllocsPerOp = m.StreamAllocs
			p.StreamHeapRatio = m.Ratio()
		}
		rep.Profiles = append(rep.Profiles, p)
	}
	return rep
}

// WriteJSON writes the report to path, indented for diffability.
func (r *JSONReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// TotalPipeline sums one profile's compact, invert, and encode times.
func (p *JSONProfile) TotalPipeline() time.Duration {
	return time.Duration(p.CompactNs + p.TWPPNs + p.EncodeNs)
}
