// Writer: seals a compacted TWPP into one or more small v2 segment
// files plus a manifest. Functions pack into segments hottest-first;
// a function whose traces exceed the per-segment budget is split into
// trace windows across consecutive segments (a trace itself is never
// split). Because the windows partition each function's unique-trace
// list in order, the set-merged view concatenates back to exactly the
// single-file trace order — segmented extraction is byte-identical to
// the single-file container.

package segment

import (
	"context"
	"fmt"
	"os"
	"path/filepath"

	"twpp/internal/cfg"
	"twpp/internal/core"
	"twpp/internal/wppfile"
)

// DefaultSegmentBytes is the per-segment payload budget when
// WriteOptions leaves both sizing knobs zero.
const DefaultSegmentBytes = int64(4) << 20

// WriteOptions configures Write and NewWriter.
type WriteOptions struct {
	// SegmentBytes is the target encoded payload per segment; a
	// segment seals once its block bytes reach it. 0 selects
	// DefaultSegmentBytes (unless Segments is set). The floor is one
	// trace per segment: a single trace larger than the budget still
	// seals as one oversized segment.
	SegmentBytes int64
	// Segments, when > 0, overrides SegmentBytes with
	// ceil(total-payload / Segments): "aim for about this many
	// segments" — the benchmark knob.
	Segments int
	// Workers sizes each segment encode's worker pool (0 selects
	// GOMAXPROCS).
	Workers int
}

// Writer accumulates sessions into a new segmented container
// directory. Add seals each TWPP into one or more segments; Finish
// writes the generation-1 manifest, the commit point — a crash before
// Finish leaves no manifest and therefore no container.
//
// Only the first Add's dynamic call graph is retained (flagged
// FlagDCG); its trace indices are valid set-global indices because the
// first session's traces occupy the head of every merged per-function
// trace list.
type Writer struct {
	dir      string
	opts     WriteOptions
	entries  []Entry
	names    []string
	ordinal  int
	session  uint64
	haveDCG  bool
	finished bool
}

// NewWriter creates dir (which must not already contain a manifest)
// and returns a Writer sealing into it.
func NewWriter(dir string, opts WriteOptions) (*Writer, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if _, err := os.Stat(filepath.Join(dir, ManifestName)); err == nil {
		return nil, fmt.Errorf("segment: %s already contains a manifest", dir)
	}
	return &Writer{dir: dir, opts: opts}, nil
}

// Add seals t into one or more v2 segment files. The first Add's call
// graph becomes the container's DCG.
func (w *Writer) Add(t *core.TWPP) error {
	return w.AddContext(context.Background(), t)
}

// AddContext is Add with cooperative cancellation between segment
// seals.
func (w *Writer) AddContext(ctx context.Context, t *core.TWPP) error {
	if w.finished {
		return fmt.Errorf("segment: writer already finished")
	}
	if len(w.names) == 0 {
		w.names = t.FuncNames
	}
	// One session per Add: all of this TWPP's segments share it, so a
	// function split across them merges by disjoint concatenation.
	w.session++
	plans := planSegments(t, w.opts.resolveBudget(t))
	for i, plan := range plans {
		if err := ctx.Err(); err != nil {
			return err
		}
		carryDCG := !w.haveDCG && i == 0 && t.Root != nil
		seg := buildSegmentTWPP(t, plan, carryDCG)
		entry, err := w.seal(seg, carryDCG)
		if err != nil {
			return err
		}
		w.entries = append(w.entries, entry)
		if carryDCG {
			w.haveDCG = true
		}
	}
	return nil
}

// Finish writes the manifest, committing the container at
// generation 1.
func (w *Writer) Finish() (*Manifest, error) {
	if w.finished {
		return nil, fmt.Errorf("segment: writer already finished")
	}
	if len(w.entries) == 0 {
		return nil, fmt.Errorf("segment: nothing sealed")
	}
	w.finished = true
	m := &Manifest{Generation: 1, Segments: w.entries}
	if err := WriteManifest(w.dir, m); err != nil {
		return nil, err
	}
	return m, nil
}

// seal encodes one segment TWPP to its canonical file name and returns
// its manifest entry.
func (w *Writer) seal(t *core.TWPP, carryDCG bool) (Entry, error) {
	e, err := sealSegment(w.dir, t, 1, w.ordinal, w.opts.Workers, w.session, carryDCG)
	if err != nil {
		return Entry{}, err
	}
	w.ordinal++
	return e, nil
}

// Write seals t into dir as a new segmented container: NewWriter +
// Add + Finish.
func Write(dir string, t *core.TWPP, opts WriteOptions) (*Manifest, error) {
	w, err := NewWriter(dir, opts)
	if err != nil {
		return nil, err
	}
	if err := w.Add(t); err != nil {
		return nil, err
	}
	return w.Finish()
}

// resolveBudget turns the sizing knobs into a concrete per-segment
// byte budget.
func (o WriteOptions) resolveBudget(t *core.TWPP) int64 {
	if o.Segments > 0 {
		total := int64(0)
		var scratch []byte
		for _, fn := range wppfile.HotOrder(t) {
			ft := &t.Funcs[fn]
			for _, d := range ft.Dicts {
				scratch = wppfile.AppendDictionary(scratch[:0], d)
				total += int64(len(scratch))
			}
			for i, tr := range ft.Traces {
				scratch = wppfile.AppendTraceRecord(scratch[:0], ft.DictOf[i], tr)
				total += int64(len(scratch))
			}
		}
		budget := (total + int64(o.Segments) - 1) / int64(o.Segments)
		if budget < 1 {
			budget = 1
		}
		return budget
	}
	if o.SegmentBytes > 0 {
		return o.SegmentBytes
	}
	return DefaultSegmentBytes
}

// window is one function's contiguous trace range [Lo, Hi) assigned to
// a segment, with its apportioned call count.
type window struct {
	Fn        cfg.FuncID
	Lo, Hi    int
	CallCount int
}

// planSegments packs t's functions (hottest first, traces in order)
// into segments of roughly budget encoded-payload bytes each. The
// total call count of a split function is apportioned so every window
// gets at least 1 (the encoder drops zero-call functions) and the
// windows sum to the original: continuation windows get 1 call each,
// the first window the remainder. CallCount >= unique traces >=
// windows, so the remainder is always positive.
func planSegments(t *core.TWPP, budget int64) [][]window {
	var (
		plans   [][]window
		cur     []window
		curSize int64
		scratch []byte
	)
	seal := func() {
		if len(cur) > 0 {
			plans = append(plans, cur)
			cur, curSize = nil, 0
		}
	}
	for _, fn := range wppfile.HotOrder(t) {
		ft := &t.Funcs[fn]
		dictCounted := make(map[int]bool, len(ft.Dicts))
		open := false
		var wlo int
		closeWindow := func(hi int) {
			if !open {
				return
			}
			cur = append(cur, window{Fn: fn, Lo: wlo, Hi: hi})
			open = false
		}
		for i, tr := range ft.Traces {
			cost := int64(0)
			if di := ft.DictOf[i]; !dictCounted[di] {
				scratch = wppfile.AppendDictionary(scratch[:0], ft.Dicts[di])
				cost += int64(len(scratch))
				dictCounted[di] = true
			}
			scratch = wppfile.AppendTraceRecord(scratch[:0], ft.DictOf[i], tr)
			cost += int64(len(scratch))
			// Seal before adding when the segment already has content
			// and this trace would push it past the budget.
			if curSize > 0 && curSize+cost > budget {
				closeWindow(i)
				seal()
				// A dictionary shared across the split is re-emitted in
				// the new segment's window.
				clear(dictCounted)
				dictCounted[ft.DictOf[i]] = true
			}
			if !open {
				open, wlo = true, i
			}
			curSize += cost
		}
		closeWindow(len(ft.Traces))
	}
	seal()

	// Apportion call counts: count each function's windows, then give
	// continuation windows 1 call each and the first window the
	// remainder.
	nwin := make(map[cfg.FuncID]int)
	for _, p := range plans {
		for _, w := range p {
			nwin[w.Fn]++
		}
	}
	firstSeen := make(map[cfg.FuncID]bool, len(nwin))
	for pi := range plans {
		for wi := range plans[pi] {
			w := &plans[pi][wi]
			if !firstSeen[w.Fn] {
				firstSeen[w.Fn] = true
				w.CallCount = t.Funcs[w.Fn].CallCount - (nwin[w.Fn] - 1)
			} else {
				w.CallCount = 1
			}
		}
	}
	return plans
}

// buildSegmentTWPP materializes one planned segment as a standalone
// TWPP: full name table, the windows' trace slices, per-window
// dictionaries deduplicated in first-use order, and the DCG only when
// this segment carries it.
func buildSegmentTWPP(t *core.TWPP, plan []window, carryDCG bool) *core.TWPP {
	seg := &core.TWPP{
		FuncNames: t.FuncNames,
		Funcs:     make([]core.FunctionTWPP, len(t.Funcs)),
	}
	for f := range seg.Funcs {
		seg.Funcs[f].Fn = cfg.FuncID(f)
	}
	if carryDCG {
		seg.Root = t.Root
	}
	for _, w := range plan {
		src := &t.Funcs[w.Fn]
		dst := &seg.Funcs[w.Fn]
		dst.CallCount = w.CallCount
		dst.Traces = src.Traces[w.Lo:w.Hi:w.Hi]
		dst.DictOf = make([]int, 0, w.Hi-w.Lo)
		// Window-local dictionary list in first-use order. The source
		// Dicts are already content-unique, so index identity is
		// content identity.
		remap := make(map[int]int)
		for i := w.Lo; i < w.Hi; i++ {
			di := src.DictOf[i]
			ni, ok := remap[di]
			if !ok {
				ni = len(dst.Dicts)
				remap[di] = ni
				dst.Dicts = append(dst.Dicts, src.Dicts[di])
			}
			dst.DictOf = append(dst.DictOf, ni)
		}
	}
	return seg
}
