package segment_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"twpp/internal/cfg"
	"twpp/internal/core"
	"twpp/internal/segment"
	"twpp/internal/testkit"
	"twpp/internal/wpp"
	"twpp/internal/wppfile"
)

// buildTWPP compacts a generated WPP into TWPP form.
func buildTWPP(t *testing.T, c testkit.Config) *core.TWPP {
	t.Helper()
	w := testkit.Generate(c)
	cc, _ := wpp.Compact(w)
	return core.FromCompacted(cc)
}

// writeSegmented seals tw into a fresh container under t.TempDir and
// opens it.
func writeSegmented(t *testing.T, tw *core.TWPP, opts segment.WriteOptions) (string, *segment.Set) {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "seg")
	if _, err := segment.Write(dir, tw, opts); err != nil {
		t.Fatalf("Write: %v", err)
	}
	set, err := segment.Open(dir, wppfile.OpenOptions{VerifyChecksums: true})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { set.Close() })
	return dir, set
}

func TestManifestRoundTrip(t *testing.T) {
	m := &segment.Manifest{
		Generation: 7,
		Segments: []segment.Entry{
			{Name: "seg-000001-0000.twpp", Size: 123, Hash: 0xdeadbeefcafe, Flags: segment.FlagDCG, Session: 1},
			{Name: "seg-000001-0001.twpp", Size: 456, Hash: 42, Session: 900},
		},
	}
	got, err := segment.DecodeManifest(segment.EncodeManifest(m))
	if err != nil {
		t.Fatalf("DecodeManifest: %v", err)
	}
	if got.Generation != m.Generation || len(got.Segments) != len(m.Segments) {
		t.Fatalf("round trip: got %+v", got)
	}
	for i := range m.Segments {
		if got.Segments[i] != m.Segments[i] {
			t.Errorf("entry %d: got %+v, want %+v", i, got.Segments[i], m.Segments[i])
		}
	}
	if got.DCGIndex() != 0 {
		t.Errorf("DCGIndex = %d, want 0", got.DCGIndex())
	}
}

// Every single-bit flip and every truncation of an encoded manifest
// must fail decoding with a structured error — the checksum-first
// contract — and never panic.
func TestManifestCorruptionSweep(t *testing.T) {
	m := &segment.Manifest{
		Generation: 3,
		Segments: []segment.Entry{
			{Name: "seg-000001-0000.twpp", Size: 4096, Hash: 0x0102030405060708, Flags: segment.FlagDCG},
			{Name: "seg-000001-0001.twpp", Size: 8192, Hash: 0x1112131415161718},
			{Name: "seg-000002-0000.twpp", Size: 16384, Hash: 0x2122232425262728},
		},
	}
	data := segment.EncodeManifest(m)
	if _, err := segment.DecodeManifest(data); err != nil {
		t.Fatalf("pristine manifest rejected: %v", err)
	}
	testkit.SweepBitFlips(data, 1, func(mu testkit.Mutation) {
		_, err := segment.DecodeManifest(mu.Data)
		if err == nil {
			t.Fatalf("%s: corrupted manifest accepted", mu.Desc)
		}
		if !testkit.Structured(err) {
			t.Fatalf("%s: unstructured error %v", mu.Desc, err)
		}
	})
	testkit.SweepTruncations(data, 1, func(mu testkit.Mutation) {
		_, err := segment.DecodeManifest(mu.Data)
		if err == nil {
			t.Fatalf("%s: truncated manifest accepted", mu.Desc)
		}
		if !testkit.Structured(err) {
			t.Fatalf("%s: unstructured error %v", mu.Desc, err)
		}
	})
}

// Opening a container whose segment bytes were tampered with must fail
// with a structured checksum error: the manifest hash pins the exact
// sealed bytes.
func TestOpenRejectsTamperedSegment(t *testing.T) {
	tw := buildTWPP(t, testkit.Config{Shape: testkit.Irregular, Seed: 11})
	dir, set := writeSegmented(t, tw, segment.WriteOptions{Segments: 3, Workers: 1})
	set.Close()

	man, err := segment.ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	name := filepath.Join(dir, man.Segments[len(man.Segments)-1].Name)
	data, err := os.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(name, testkit.BitFlip(data, len(data)/2, 3), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = segment.Open(dir, wppfile.OpenOptions{VerifyChecksums: true})
	if err == nil {
		t.Fatal("tampered segment opened cleanly")
	}
	if !testkit.Structured(err) {
		t.Fatalf("unstructured error: %v", err)
	}
}

// The same input segments must always fold to byte-identical merged
// output — the determinism gate `make test` runs.
func TestMergeDeterminism(t *testing.T) {
	tw := buildTWPP(t, testkit.Config{Shape: testkit.Irregular, Seed: 5, Calls: 96})

	mergedBytes := func() []byte {
		dir, set := writeSegmented(t, tw, segment.WriteOptions{Segments: 5, Workers: 1})
		if set.SegmentCount() < 2 {
			t.Fatalf("want >= 2 segments, got %d", set.SegmentCount())
		}
		mg := segment.NewMerger(set, segment.MergeOptions{Workers: 2})
		if _, err := mg.MergeAll(context.Background()); err != nil {
			t.Fatalf("MergeAll: %v", err)
		}
		man, err := segment.ReadManifest(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(man.Segments) != 1 {
			t.Fatalf("want 1 segment after MergeAll, got %d", len(man.Segments))
		}
		data, err := os.ReadFile(filepath.Join(dir, man.Segments[0].Name))
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a, b := mergedBytes(), mergedBytes()
	if !bytes.Equal(a, b) {
		t.Fatalf("merge is not deterministic: %d vs %d bytes", len(a), len(b))
	}
}

// Two sessions appended to one Writer must merge keep-first: summed
// call counts, first session's DCG, and a trace list equal to the
// deduplicated concatenation (checked against an independent quadratic
// merge).
func TestMultiSessionAppend(t *testing.T) {
	t1 := buildTWPP(t, testkit.Config{Shape: testkit.Periodic, Seed: 1})
	t2 := buildTWPP(t, testkit.Config{Shape: testkit.Periodic, Seed: 2})

	dir := filepath.Join(t.TempDir(), "seg")
	w, err := segment.NewWriter(dir, segment.WriteOptions{Segments: 2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Add(t1); err != nil {
		t.Fatal(err)
	}
	if err := w.Add(t2); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	set, err := segment.Open(dir, wppfile.OpenOptions{VerifyChecksums: true})
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()

	for fn := range t1.Funcs {
		want := quadraticMerge(&t1.Funcs[fn], &t2.Funcs[fn])
		if want.CallCount == 0 {
			continue
		}
		got, err := set.ExtractFunction(cfg.FuncID(fn))
		if err != nil {
			t.Fatalf("fn %d: %v", fn, err)
		}
		if err := testkit.EqualFunctionTWPP(want, got); err != nil {
			t.Errorf("fn %d: %v", fn, err)
		}
	}

	// The DCG must be session 1's, valid against the merged numbering.
	root, err := set.ReadDCG()
	if err != nil {
		t.Fatalf("ReadDCG: %v", err)
	}
	if root.Fn != t1.Root.Fn || root.TraceIdx != t1.Root.TraceIdx {
		t.Errorf("DCG root (%d,%d), want (%d,%d)", root.Fn, root.TraceIdx, t1.Root.Fn, t1.Root.TraceIdx)
	}
}

// Session tags drive the disjoint fast path: one Add stamps all its
// segments with one session, a second Add gets the next, and folding a
// mixed-session run mints a fresh id — while folding a single-session
// run keeps the session, so disjointness survives partial merges.
func TestSessionTags(t *testing.T) {
	t1 := buildTWPP(t, testkit.Config{Shape: testkit.Periodic, Seed: 1})
	t2 := buildTWPP(t, testkit.Config{Shape: testkit.Periodic, Seed: 2})

	// Single-session container: a partial fold keeps the session.
	oneDir, oneSet := writeSegmented(t, buildTWPP(t, testkit.Config{Shape: testkit.Irregular, Seed: 5, Calls: 96}),
		segment.WriteOptions{Segments: 4, Workers: 1})
	if oneSet.SegmentCount() < 3 {
		t.Fatalf("want >= 3 segments, got %d", oneSet.SegmentCount())
	}
	mg := segment.NewMerger(oneSet, segment.MergeOptions{MaxRun: 2, Workers: 1})
	if did, err := mg.MergeOnce(context.Background()); err != nil || !did {
		t.Fatalf("MergeOnce: did=%v err=%v", did, err)
	}
	oneMan, err := segment.ReadManifest(oneDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range oneMan.Segments {
		if e.Session != 1 {
			t.Errorf("single-session fold changed session: %s has %d, want 1", e.Name, e.Session)
		}
	}

	dir := filepath.Join(t.TempDir(), "seg")
	w, err := segment.NewWriter(dir, segment.WriteOptions{Segments: 2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Add(t1); err != nil {
		t.Fatal(err)
	}
	if err := w.Add(t2); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	man, err := segment.ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	sessions := make(map[uint64]int)
	var max uint64
	for _, e := range man.Segments {
		if e.Session == 0 {
			t.Errorf("segment %s sealed without a session", e.Name)
		}
		sessions[e.Session]++
		if e.Session > max {
			max = e.Session
		}
	}
	if len(sessions) != 2 {
		t.Fatalf("two Adds should yield two sessions, got %v", sessions)
	}

	// Folding the whole (mixed-session) container mints a fresh id.
	set, err := segment.Open(dir, wppfile.OpenOptions{VerifyChecksums: true})
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	if _, err := segment.NewMerger(set, segment.MergeOptions{Workers: 1}).MergeAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	man, err = segment.ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(man.Segments) != 1 {
		t.Fatalf("want 1 segment after MergeAll, got %d", len(man.Segments))
	}
	if got := man.Segments[0].Session; got <= max {
		t.Errorf("mixed-session fold kept session %d, want a fresh id > %d", got, max)
	}
}

// quadraticMerge is an intentionally naive keep-first merge of two
// function blocks, used as an independent reference for the set's
// hashed merge.
func quadraticMerge(a, b *core.FunctionTWPP) *core.FunctionTWPP {
	out := &core.FunctionTWPP{Fn: a.Fn, CallCount: a.CallCount + b.CallCount}
	add := func(src *core.FunctionTWPP) {
		for i, tr := range src.Traces {
			d := src.Dicts[src.DictOf[i]]
			dup := false
			for j, have := range out.Traces {
				if twppEqual(have, tr) && wpp.DictsEqual(out.Dicts[out.DictOf[j]], d) {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			di := -1
			for j, have := range out.Dicts {
				if wpp.DictsEqual(have, d) {
					di = j
					break
				}
			}
			if di < 0 {
				di = len(out.Dicts)
				out.Dicts = append(out.Dicts, d)
			}
			out.Traces = append(out.Traces, tr)
			out.DictOf = append(out.DictOf, di)
		}
	}
	add(a)
	add(b)
	return out
}

func twppEqual(a, b *core.Trace) bool {
	if a.Len != b.Len || len(a.Blocks) != len(b.Blocks) {
		return false
	}
	for i := range a.Blocks {
		if a.Blocks[i].Block != b.Blocks[i].Block || len(a.Blocks[i].Times) != len(b.Blocks[i].Times) {
			return false
		}
		for j := range a.Blocks[i].Times {
			if a.Blocks[i].Times[j] != b.Blocks[i].Times[j] {
				return false
			}
		}
	}
	return true
}

// Refresh must pick up a merge committed through a different Set on
// the same directory, changing the content hash.
func TestRefreshAfterExternalMerge(t *testing.T) {
	tw := buildTWPP(t, testkit.Config{Shape: testkit.Regular, Seed: 3})
	dir, set := writeSegmented(t, tw, segment.WriteOptions{Segments: 3, Workers: 1})

	other, err := segment.Open(dir, wppfile.OpenOptions{VerifyChecksums: true})
	if err != nil {
		t.Fatal(err)
	}
	defer other.Close()
	h0, _ := other.ContentHash()

	if _, err := segment.NewMerger(set, segment.MergeOptions{Workers: 1}).MergeAll(context.Background()); err != nil {
		t.Fatalf("MergeAll: %v", err)
	}
	// The merger deleted the folded files; `other` still holds open
	// handles (POSIX keeps them readable) but Refresh must move it to
	// the new generation.
	changed, err := other.Refresh()
	if err != nil {
		t.Fatalf("Refresh: %v", err)
	}
	if !changed {
		t.Fatal("Refresh did not observe the new generation")
	}
	if h1, _ := other.ContentHash(); h1 == h0 {
		t.Error("content hash unchanged across merge")
	}
	if changed, err = other.Refresh(); err != nil || changed {
		t.Errorf("second Refresh = (%v, %v), want (false, nil)", changed, err)
	}
}

// The soak the ISSUE demands: concurrent queries over both extraction
// paths must stay correct and error-free while merges fold the
// container underneath them, one generation at a time. Run with -race.
func TestConcurrentQueriesDuringMerge(t *testing.T) {
	tw := buildTWPP(t, testkit.Config{Shape: testkit.Irregular, Seed: 9, Calls: 120})
	_, set := writeSegmented(t, tw, segment.WriteOptions{Segments: 8, Workers: 1})
	if set.SegmentCount() < 4 {
		t.Fatalf("want >= 4 segments for the soak, got %d", set.SegmentCount())
	}

	// Reference extractions from the unsegmented encode.
	ref := make(map[cfg.FuncID]*core.FunctionTWPP)
	refData, err := wppfile.EncodeCompactedFormat(tw, 1, wppfile.FormatV2)
	if err != nil {
		t.Fatal(err)
	}
	refPath := filepath.Join(t.TempDir(), "ref.twpp")
	if err := os.WriteFile(refPath, refData, 0o644); err != nil {
		t.Fatal(err)
	}
	cf, err := wppfile.OpenCompacted(refPath)
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	fns := cf.Functions()
	for _, fn := range fns {
		ft, err := cf.ExtractFunction(fn)
		if err != nil {
			t.Fatal(err)
		}
		ref[fn] = ft
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := segment.GetBuffer()
			defer segment.PutBuffer(buf)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				fn := fns[(i+g)%len(fns)]
				var got *core.FunctionTWPP
				var err error
				if g%2 == 0 {
					got, err = set.ExtractFunctionInto(fn, buf)
				} else {
					got, err = set.ExtractFunctionCtx(context.Background(), fn)
				}
				if err != nil {
					errs <- fmt.Errorf("extract fn %d: %w", fn, err)
					return
				}
				if err := testkit.EqualFunctionTWPP(ref[fn], got); err != nil {
					errs <- fmt.Errorf("fn %d diverged under merge: %w", fn, err)
					return
				}
			}
		}(g)
	}

	// Fold two segments at a time so readers cross several generations.
	mg := segment.NewMerger(set, segment.MergeOptions{MaxRun: 2, Workers: 1})
	for set.SegmentCount() > 1 {
		did, err := mg.MergeOnce(context.Background())
		if err != nil {
			t.Fatalf("MergeOnce: %v", err)
		}
		if !did {
			break
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if set.SegmentCount() != 1 {
		t.Errorf("soak ended with %d segments", set.SegmentCount())
	}
}

// Queries racing Close must either succeed or fail with os.ErrClosed —
// never crash or return partial data.
func TestCloseDrainsReaders(t *testing.T) {
	tw := buildTWPP(t, testkit.Config{Shape: testkit.Regular, Seed: 13})
	_, set := writeSegmented(t, tw, segment.WriteOptions{Segments: 3, Workers: 1})
	fns := set.Functions()

	errs := make(chan error, 4)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if _, err := set.ExtractFunction(fns[i%len(fns)]); err != nil {
					if !errors.Is(err, os.ErrClosed) {
						errs <- fmt.Errorf("unexpected error racing Close: %w", err)
					}
					return
				}
			}
		}()
	}
	set.Close()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// FuzzManifestDecode asserts the structured-error contract on
// arbitrary manifest bytes and, when decoding succeeds, that encode
// round-trips to an equal manifest.
func FuzzManifestDecode(f *testing.F) {
	f.Add(segment.EncodeManifest(&segment.Manifest{
		Generation: 1,
		Segments: []segment.Entry{
			{Name: "seg-000001-0000.twpp", Size: 64, Hash: 99, Flags: segment.FlagDCG},
		},
	}))
	f.Add([]byte{})
	f.Add([]byte("TWPS"))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := segment.DecodeManifest(data)
		if err != nil {
			if !testkit.Structured(err) {
				t.Fatalf("unstructured error: %v", err)
			}
			return
		}
		back, err := segment.DecodeManifest(segment.EncodeManifest(m))
		if err != nil {
			t.Fatalf("re-decode of valid manifest: %v", err)
		}
		if back.Generation != m.Generation || len(back.Segments) != len(m.Segments) {
			t.Fatalf("round trip mismatch: %+v vs %+v", back, m)
		}
	})
}
