// Append: the hot write path. Where Writer creates a brand-new
// container (generation 1) from a batch of sessions, Append seals one
// more session into a container that is already live — the operation a
// long-running ingest service performs once per finished stream. The
// new session's segments are written under the NEXT generation's names
// (never colliding with live files), its entries go to the tail of the
// manifest, and the manifest rewrite is the atomic commit point:
// concurrent readers (a colocated or remote twpp-serve) observe either
// the old container or the old container plus the whole new session,
// never a partial session. A crash between segment writes and the
// manifest rewrite leaves only unreferenced files.
//
// Trace-numbering invariant: appending at the tail keeps every earlier
// session's traces at the head of each merged per-function trace list,
// so the container DCG (first session, FlagDCG) keeps valid set-global
// indices. The appended session gets the next write-session id, so its
// own windows stay provably disjoint for the spanning merge.
//
// Unlike Writer.Add — which strips the root call graph from every
// session after the first — Append keeps the session's own DCG section
// in its first segment's bytes (only the FlagDCG manifest bit is
// withheld when the container already has one). That makes a
// single-segment appended session byte-identical to the offline
// streaming pipeline's v2 file for the same events, which is the
// ingest parity oracle's invariant; nothing reads an unflagged DCG
// section, so readers are unaffected.

package segment

import (
	"fmt"
	"os"
	"path/filepath"

	"twpp/internal/core"
	"twpp/internal/wppfile"
)

// sealSegment encodes one segment TWPP as a v2 file under the
// canonical name for (generation, ordinal) and returns its manifest
// entry. Shared by Writer.seal (generation 1) and Append (later
// generations).
func sealSegment(dir string, t *core.TWPP, generation uint64, ordinal int, workers int, session uint64, flagDCG bool) (Entry, error) {
	data, err := wppfile.EncodeCompactedFormat(t, workers, wppfile.FormatV2)
	if err != nil {
		return Entry{}, err
	}
	hash, ok := wppfile.ContentHashBytes(data)
	if !ok {
		return Entry{}, fmt.Errorf("segment: encoded segment has no content hash")
	}
	name := segmentName(generation, ordinal)
	if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
		return Entry{}, err
	}
	e := Entry{Name: name, Size: int64(len(data)), Hash: hash, Session: session}
	if flagDCG {
		e.Flags |= FlagDCG
	}
	return e, nil
}

// Append seals t as one new write session at the tail of the existing
// container in dir and commits it by rewriting the manifest at the
// next generation. It returns the new manifest; the appended session's
// entries are the trailing run sharing the highest session id. Append
// is not safe for concurrent use on one directory — callers (the
// ingest server) serialize appends per container; concurrent READERS
// are fine, they pick the new generation up via Set.Refresh.
func Append(dir string, t *core.TWPP, opts WriteOptions) (*Manifest, error) {
	man, err := ReadManifest(dir)
	if err != nil {
		return nil, err
	}
	gen := man.Generation + 1
	var session uint64
	for _, e := range man.Segments {
		if e.Session > session {
			session = e.Session
		}
	}
	session++
	hasDCG := man.DCGIndex() >= 0

	plans := planSegments(t, opts.resolveBudget(t))
	var written []string
	fail := func(err error) (*Manifest, error) {
		for _, name := range written {
			os.Remove(filepath.Join(dir, name))
		}
		return nil, err
	}
	nm := &Manifest{Generation: gen}
	nm.Segments = append(nm.Segments, man.Segments...)
	for i, plan := range plans {
		// The session's own call graph rides in its first segment's
		// bytes either way; it becomes the container DCG only when no
		// live segment carries one.
		carryRoot := i == 0 && t.Root != nil
		seg := buildSegmentTWPP(t, plan, carryRoot)
		entry, err := sealSegment(dir, seg, gen, i, opts.Workers, session, carryRoot && !hasDCG)
		if err != nil {
			return fail(err)
		}
		written = append(written, entry.Name)
		nm.Segments = append(nm.Segments, entry)
	}
	if len(written) == 0 {
		return nil, fmt.Errorf("segment: nothing to append")
	}
	if err := WriteManifest(dir, nm); err != nil {
		return fail(err)
	}
	return nm, nil
}
