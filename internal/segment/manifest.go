// Package segment implements segmented TWPP containers: a directory
// holding a small manifest plus N sealed v2 segment files, each a
// complete compacted container in its own right. The layout is
// LSM-shaped — writers seal small segments, a background merger folds
// adjacent runs into larger ones — while reads preserve the paper's
// one-positioned-read-per-function invariant within every segment.
//
// The manifest is the unit of atomicity: it names the live segments in
// order, records each one's size and content hash (derived from the v2
// trailer directory CRC), and carries a generation number that
// advances on every rewrite. Swapping in a merged generation is a
// write-temp-then-rename of this one small file, so concurrent readers
// observe either the old segment list or the new one, never a mix.
//
// Global trace numbering invariant: the traces of a function are the
// keep-first deduplicated concatenation of its per-segment trace lists
// in manifest order. Folding an adjacent run of segments into one
// never changes that global order (a first occurrence stays a first
// occurrence), so the dynamic call graph — stored once, in the segment
// flagged FlagDCG, with set-global trace indices — stays valid across
// merges without rewriting.
package segment

import (
	"fmt"
	"os"
	"path/filepath"

	"twpp/internal/encoding"
	"twpp/internal/wppfile"
)

// ManifestName is the manifest's file name inside a container
// directory. Its presence is how CLIs auto-detect a segmented
// container.
const ManifestName = "MANIFEST"

// MagicManifest is the manifest magic ("TWPS" big-endian), distinct
// from the segment files' own container magic.
const MagicManifest = 0x54575053

// ManifestVersion is the current manifest format version.
const ManifestVersion = 1

// Entry flags.
const (
	// FlagDCG marks the segment carrying the container's dynamic call
	// graph (with set-global trace indices). At most one live segment
	// carries it.
	FlagDCG = 1 << 0
)

// Entry describes one live segment in manifest order.
type Entry struct {
	// Name is the segment's file name, relative to the container
	// directory.
	Name string
	// Size is the segment file's byte size, checked at open.
	Size int64
	// Hash is the segment's content hash (CompactedFile.ContentHash:
	// v2 directory CRC32-C combined with the size), checked against
	// the opened segment.
	Hash uint64
	// Flags carries FlagDCG and future per-segment bits.
	Flags uint64
	// Session identifies the write session that sealed this segment
	// (one ordinal per Writer.Add; merges mint fresh ids unless every
	// folded input shares one). Windows sealed by the same session
	// partition one compaction's unique-trace lists, so a function
	// spanning only same-session segments merges by pure
	// concatenation — no per-trace dedup hashing. 0 means unknown and
	// always forces the full dedup path.
	Session uint64
}

// Manifest is the decoded manifest: the ordered live-segment list and
// its generation.
type Manifest struct {
	// Generation advances by one on every manifest rewrite (initial
	// write, merge swap, append).
	Generation uint64
	// Segments lists the live segments in read order.
	Segments []Entry
}

// DCGIndex returns the index of the FlagDCG segment, or -1.
func (m *Manifest) DCGIndex() int {
	for i, e := range m.Segments {
		if e.Flags&FlagDCG != 0 {
			return i
		}
	}
	return -1
}

// EncodeManifest serializes a manifest: magic, version, generation,
// entry count, entries (name, size, hash, flags, session), then a
// CRC32-C of everything preceding it.
func EncodeManifest(m *Manifest) []byte {
	buf := encoding.PutUint32(nil, MagicManifest)
	buf = encoding.PutUvarint(buf, ManifestVersion)
	buf = encoding.PutUvarint(buf, m.Generation)
	buf = encoding.PutUvarint(buf, uint64(len(m.Segments)))
	for _, e := range m.Segments {
		buf = encoding.PutString(buf, e.Name)
		buf = encoding.PutUvarint(buf, uint64(e.Size))
		buf = encoding.PutUint64(buf, e.Hash)
		buf = encoding.PutUvarint(buf, e.Flags)
		buf = encoding.PutUvarint(buf, e.Session)
	}
	return encoding.PutUint32(buf, wppfile.Checksum(buf))
}

// DecodeManifest parses manifest bytes, verifying the trailing
// checksum before trusting any field lengths. All failures are
// structured encoding errors: CodeBadMagic / CodeBadVersion for the
// prefix, CodeTruncated / CodeChecksum / CodeCorrupt for the body.
func DecodeManifest(data []byte) (*Manifest, error) {
	if len(data) < 4+1+4 {
		return nil, encoding.Errf(encoding.CodeTruncated, 0,
			"segment: manifest too short (%d bytes)", len(data))
	}
	magic, err := encoding.Uint32(data)
	if err != nil {
		return nil, err
	}
	if magic != MagicManifest {
		return nil, encoding.Errf(encoding.CodeBadMagic, 0,
			"segment: bad manifest magic %08x", magic)
	}
	// Checksum covers everything before the trailing 4 bytes; verify
	// it first so a flipped length field cannot direct a huge read.
	body, tail := data[:len(data)-4], data[len(data)-4:]
	want, err := encoding.Uint32(tail)
	if err != nil {
		return nil, err
	}
	if got := wppfile.Checksum(body); got != want {
		return nil, encoding.Errf(encoding.CodeChecksum, int64(len(body)),
			"segment: manifest checksum mismatch: stored %08x, computed %08x", want, got)
	}
	c := encoding.NewCursor(body[4:])
	version, err := c.Uvarint()
	if err != nil {
		return nil, err
	}
	if version != ManifestVersion {
		return nil, encoding.Errf(encoding.CodeBadVersion, int64(c.Pos()),
			"segment: unsupported manifest version %d", version)
	}
	m := &Manifest{}
	if m.Generation, err = c.Uvarint(); err != nil {
		return nil, err
	}
	n, err := c.Uvarint()
	if err != nil {
		return nil, err
	}
	// Each entry needs at least 12 bytes (1-byte name length, 1-byte
	// size, 8-byte hash, 1-byte flags, 1-byte session), so a hostile
	// count cannot demand more entries than the body could hold.
	if n > uint64(c.Len())/12 {
		return nil, encoding.Errf(encoding.CodeCorrupt, int64(c.Pos()),
			"segment: manifest declares %d segments, only %d bytes remain", n, c.Len())
	}
	seen := make(map[string]bool, n)
	dcg := false
	for i := uint64(0); i < n; i++ {
		var e Entry
		if e.Name, err = c.String(); err != nil {
			return nil, err
		}
		size, err := c.Uvarint()
		if err != nil {
			return nil, err
		}
		e.Size = int64(size)
		if e.Hash, err = readUint64(c); err != nil {
			return nil, err
		}
		if e.Flags, err = c.Uvarint(); err != nil {
			return nil, err
		}
		if e.Session, err = c.Uvarint(); err != nil {
			return nil, err
		}
		if e.Name == "" || e.Name != filepath.Base(e.Name) || e.Name == "." || e.Name == ".." {
			return nil, encoding.Errf(encoding.CodeCorrupt, int64(c.Pos()),
				"segment: manifest entry %d has invalid name %q", i, e.Name)
		}
		if seen[e.Name] {
			return nil, encoding.Errf(encoding.CodeCorrupt, int64(c.Pos()),
				"segment: manifest lists segment %q twice", e.Name)
		}
		seen[e.Name] = true
		if e.Flags&FlagDCG != 0 {
			if dcg {
				return nil, encoding.Errf(encoding.CodeCorrupt, int64(c.Pos()),
					"segment: manifest flags two DCG segments")
			}
			dcg = true
		}
		m.Segments = append(m.Segments, e)
	}
	if !c.Done() {
		return nil, encoding.Errf(encoding.CodeCorrupt, int64(c.Pos()),
			"segment: %d trailing bytes after manifest entries", c.Len())
	}
	return m, nil
}

// readUint64 reads a fixed 8-byte big-endian value through the cursor.
func readUint64(c *encoding.Cursor) (uint64, error) {
	b, err := c.Bytes(8)
	if err != nil {
		return 0, err
	}
	return encoding.Uint64(b)
}

// ReadManifest loads and decodes dir's manifest.
func ReadManifest(dir string) (*Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, err
	}
	return DecodeManifest(data)
}

// WriteManifest atomically installs m as dir's manifest: the bytes go
// to a temp file in the same directory, are fsynced, and are renamed
// over ManifestName. Readers (in this or another process) observe
// either the previous manifest or this one in full.
func WriteManifest(dir string, m *Manifest) error {
	tmp, err := os.CreateTemp(dir, ManifestName+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	cleanup := func() {
		tmp.Close()
		os.Remove(tmpName)
	}
	if _, err := tmp.Write(EncodeManifest(m)); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, filepath.Join(dir, ManifestName)); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}

// IsSegmented reports whether path is a segmented-container directory
// (a directory containing a manifest).
func IsSegmented(path string) bool {
	fi, err := os.Stat(path)
	if err != nil || !fi.IsDir() {
		return false
	}
	_, err = os.Stat(filepath.Join(path, ManifestName))
	return err == nil
}

// segmentName builds the canonical segment file name: the generation
// that sealed it plus its ordinal within that generation. Names never
// collide across generations, so a merged segment never overwrites a
// live one.
func segmentName(generation uint64, ordinal int) string {
	return fmt.Sprintf("seg-%06d-%04d.twpp", generation, ordinal)
}
