// Buffer: the pooled arena for Set.ExtractFunctionInto. It holds one
// wppfile.ExtractBuffer per segment a function may span, plus the
// merged-result slices and flat open-addressing dedup tables, so the
// spanning-merge path performs zero heap allocations once warm — the
// same contract PR 6 established for single-file pooled extraction.

package segment

import (
	"sync"

	"twpp/internal/cfg"
	"twpp/internal/core"
	"twpp/internal/wpp"
	"twpp/internal/wppfile"
)

// Buffer is a reusable extraction arena for Set.ExtractFunctionInto.
// Results alias the buffer and are valid only until its next use. A
// Buffer must not be used concurrently; pool them with
// GetBuffer/PutBuffer.
type Buffer struct {
	// parts holds one lazily-acquired decode buffer per segment the
	// current function spans; they are retained across calls and
	// returned to the wppfile pool by PutBuffer.
	parts   []*wppfile.ExtractBuffer
	results []*core.FunctionTWPP

	// Merged-result arenas, truncated (not freed) between calls.
	ptrs   []*core.Trace
	dictOf []int
	dicts  []wpp.Dictionary

	// Per-part scratch: each part dictionary's hash (computed once per
	// dictionary, not once per trace) and its remapped merged index.
	dictHash  []uint64
	dictRemap []int

	traceTab dedupTable
	dictTab  dedupTable

	ft core.FunctionTWPP
}

var bufPool = sync.Pool{New: func() any { return &Buffer{} }}

// GetBuffer returns a pooled Buffer.
func GetBuffer() *Buffer { return bufPool.Get().(*Buffer) }

// PutBuffer returns b (and its per-segment sub-buffers) to the pools.
// Results previously extracted into b must no longer be referenced.
func PutBuffer(b *Buffer) {
	if b == nil {
		return
	}
	for i, eb := range b.parts {
		if eb != nil {
			wppfile.PutExtractBuffer(eb)
			b.parts[i] = nil
		}
	}
	bufPool.Put(b)
}

// part returns the i-th per-segment decode buffer, acquiring it from
// the wppfile pool on first use.
func (b *Buffer) part(i int) *wppfile.ExtractBuffer {
	for len(b.parts) <= i {
		b.parts = append(b.parts, nil)
	}
	if b.parts[i] == nil {
		b.parts[i] = wppfile.GetExtractBuffer()
	}
	return b.parts[i]
}

// partResults returns the scratch slice for per-segment extraction
// results, sized n.
func (b *Buffer) partResults(n int) []*core.FunctionTWPP {
	if cap(b.results) < n {
		b.results = make([]*core.FunctionTWPP, n)
	}
	return b.results[:n]
}

// dedupTable is a flat open-addressing index from content hash to
// candidate position in a caller-owned list. It stores position+1 in
// each slot (0 = empty) and resolves collisions by linear probing with
// a caller-supplied equality check, so resetting is a memclr — no map,
// no per-entry allocation.
type dedupTable struct {
	slots []int32
	mask  uint64
}

// reset sizes the table for up to n insertions and clears it.
func (d *dedupTable) reset(n int) {
	need := 8
	for need < 2*n {
		need <<= 1
	}
	if cap(d.slots) < need {
		d.slots = make([]int32, need)
	} else {
		d.slots = d.slots[:need]
		clear(d.slots)
	}
	d.mask = uint64(need - 1)
}

// find probes for a candidate with hash h satisfying same. It returns
// the candidate position, or the slot index to pass to insert when
// absent.
func (d *dedupTable) find(h uint64, same func(pos int) bool) (pos int, slot int, ok bool) {
	i := h & d.mask
	for {
		v := d.slots[i]
		if v == 0 {
			return 0, int(i), false
		}
		if same(int(v - 1)) {
			return int(v - 1), 0, true
		}
		i = (i + 1) & d.mask
	}
}

// insert records candidate position pos at the slot find returned.
func (d *dedupTable) insert(slot, pos int) { d.slots[slot] = int32(pos + 1) }

// FNV-1a, matching internal/wpp's interner constants.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvMix(h, x uint64) uint64 {
	h ^= x & 0xffffffff
	h *= fnvPrime64
	h ^= x >> 32
	h *= fnvPrime64
	return h
}

// hashTWPPTrace hashes a decoded TWPP trace's full content: length,
// block ids, and every timestamp run.
func hashTWPPTrace(tr *core.Trace) uint64 {
	h := fnvMix(fnvMix(uint64(fnvOffset64), uint64(tr.Len)), uint64(len(tr.Blocks)))
	for _, bt := range tr.Blocks {
		h = fnvMix(h, uint64(bt.Block))
		h = fnvMix(h, uint64(len(bt.Times)))
		for _, e := range bt.Times {
			h = fnvMix(h, uint64(e.Lo))
			h = fnvMix(h, uint64(e.Hi))
			h = fnvMix(h, uint64(e.Step))
		}
	}
	return h
}

// twppTracesEqual reports deep equality of two decoded TWPP traces.
func twppTracesEqual(a, b *core.Trace) bool {
	if a.Len != b.Len || len(a.Blocks) != len(b.Blocks) {
		return false
	}
	for i := range a.Blocks {
		x, y := &a.Blocks[i], &b.Blocks[i]
		if x.Block != y.Block || len(x.Times) != len(y.Times) {
			return false
		}
		for j := range x.Times {
			if x.Times[j] != y.Times[j] {
				return false
			}
		}
	}
	return true
}

// hashDictUnordered hashes a dictionary without sorting its heads:
// per-chain hashes combine commutatively (sum), so map iteration order
// does not matter and the hot read path stays allocation-free (unlike
// wpp.HashDict, which sorts heads into a fresh slice).
func hashDictUnordered(d wpp.Dictionary) uint64 {
	var sum uint64
	for head, chain := range d {
		h := fnvMix(uint64(fnvOffset64), uint64(head))
		h = fnvMix(h, uint64(len(chain)))
		for _, b := range chain {
			h = fnvMix(h, uint64(b))
		}
		sum += h
	}
	return fnvMix(sum, uint64(len(d)))
}

// mergeParts merges a function's per-segment extraction results in
// manifest order with keep-first deduplication of traces, re-deriving
// the deduplicated dictionary list in merged first-use order — exactly
// the set-global trace numbering the DCG references. With buf nil it
// allocates a standalone result (sharing the immutable per-segment
// Trace and Dictionary values); with buf non-nil it reuses buf's
// arenas and allocates nothing once warm.
//
// disjoint asserts the parts are trace windows of one write session:
// the (trace, dictionary) pair determines the original path, so a
// session's unique-trace list holds no duplicate pairs and windows
// partitioning it cannot overlap. The merge then skips per-trace
// hashing entirely — traces concatenate, only dictionaries dedup —
// producing the identical result at a fraction of the cost.
func mergeParts(fn cfg.FuncID, parts []*core.FunctionTWPP, disjoint bool, buf *Buffer) *core.FunctionTWPP {
	ntr, nd, calls := 0, 0, 0
	for _, p := range parts {
		ntr += len(p.Traces)
		nd += len(p.Dicts)
		calls += p.CallCount
	}

	var (
		ptrs      []*core.Trace
		dictOf    []int
		dicts     []wpp.Dictionary
		dictHash  []uint64
		dictRemap []int
		traceTab  *dedupTable
		dictTab   *dedupTable
	)
	if buf != nil {
		ptrs = buf.ptrs[:0]
		dictOf = buf.dictOf[:0]
		dicts = buf.dicts[:0]
		dictHash = buf.dictHash[:0]
		dictRemap = buf.dictRemap[:0]
		traceTab, dictTab = &buf.traceTab, &buf.dictTab
	} else {
		ptrs = make([]*core.Trace, 0, ntr)
		dictOf = make([]int, 0, ntr)
		dicts = make([]wpp.Dictionary, 0, nd)
		traceTab, dictTab = new(dedupTable), new(dedupTable)
	}
	if !disjoint {
		traceTab.reset(ntr)
	}
	dictTab.reset(nd)

	// mergeDict interns one part dictionary (hash dh) into the merged
	// list, returning its merged index. Part dictionary lists are in
	// first-use order, so interning them part by part preserves the
	// merged first-use order byte-for-byte.
	mergeDict := func(d wpp.Dictionary, dh uint64) int {
		di, dslot, dok := dictTab.find(dh, func(pos int) bool {
			return wpp.DictsEqual(dicts[pos], d)
		})
		if !dok {
			di = len(dicts)
			dictTab.insert(dslot, di)
			dicts = append(dicts, d)
		}
		return di
	}

	for _, p := range parts {
		if disjoint {
			// Pure concatenation: every trace is a first occurrence.
			// Only dictionaries dedup — a dictionary shared across a
			// window split was re-emitted in the continuation window.
			dictRemap = dictRemap[:0]
			for _, d := range p.Dicts {
				dictRemap = append(dictRemap, mergeDict(d, hashDictUnordered(d)))
			}
			ptrs = append(ptrs, p.Traces...)
			for _, pd := range p.DictOf {
				dictOf = append(dictOf, dictRemap[pd])
			}
			continue
		}
		// Hash each part dictionary once, not once per trace.
		dictHash = dictHash[:0]
		for _, d := range p.Dicts {
			dictHash = append(dictHash, hashDictUnordered(d))
		}
		for i, tr := range p.Traces {
			d := p.Dicts[p.DictOf[i]]
			dh := dictHash[p.DictOf[i]]
			// A trace's identity is the (compacted trace, dictionary)
			// pair: distinct original paths can compact to equal trace
			// bytes under different dictionaries, so keep-first dedup
			// must compare both.
			h := fnvMix(hashTWPPTrace(tr), dh)
			if _, slot, ok := traceTab.find(h, func(pos int) bool {
				return twppTracesEqual(ptrs[pos], tr) && wpp.DictsEqual(dicts[dictOf[pos]], d)
			}); !ok {
				traceTab.insert(slot, len(ptrs))
				ptrs = append(ptrs, tr)
				dictOf = append(dictOf, mergeDict(d, dh))
			}
		}
	}

	if buf != nil {
		buf.ptrs, buf.dictOf, buf.dicts = ptrs, dictOf, dicts
		buf.dictHash, buf.dictRemap = dictHash, dictRemap
		buf.ft = core.FunctionTWPP{Fn: fn, Traces: ptrs, Dicts: dicts, DictOf: dictOf, CallCount: calls}
		return &buf.ft
	}
	return &core.FunctionTWPP{Fn: fn, Traces: ptrs, Dicts: dicts, DictOf: dictOf, CallCount: calls}
}
