// Merger: folds adjacent runs of small segments into one larger
// segment at the next manifest generation. The fold extracts every
// function from the run in manifest order, re-deduplicates traces
// keep-first (preserving the set-global numbering, so the DCG's trace
// indices survive unchanged), re-ranks the merged hottest-first index
// through the encoder, writes the merged segment under the new
// generation's name, and atomically swaps the manifest. Readers drain
// on the old view before the folded files are deleted.

package segment

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"twpp/internal/cfg"
	"twpp/internal/core"
	"twpp/internal/wppfile"
)

// MergeOptions configures a Merger.
type MergeOptions struct {
	// MinRun is the smallest adjacent run worth folding; values < 2 act
	// as 2.
	MinRun int
	// MaxRun caps how many segments one fold consumes (0 = unlimited).
	MaxRun int
	// MaxBytes limits folding to segments of at most this size
	// (0 = fold any size).
	MaxBytes int64
	// Workers sizes the merged segment's encode pool (0 selects
	// GOMAXPROCS).
	Workers int
}

// Merger folds a Set's segments in the background. Methods are safe
// to call while readers query the Set concurrently; merges themselves
// serialize on the Set's swap lock.
type Merger struct {
	set  *Set
	opts MergeOptions
}

// NewMerger returns a Merger folding segments of set.
func NewMerger(set *Set, opts MergeOptions) *Merger {
	if opts.MinRun < 2 {
		opts.MinRun = 2
	}
	return &Merger{set: set, opts: opts}
}

// MergeOnce performs at most one fold: the leftmost longest adjacent
// run of eligible segments (size <= MaxBytes when set), clamped to
// MaxRun. It reports whether a fold happened. The fold is
// deterministic — the same input segments always produce a
// byte-identical merged segment.
func (m *Merger) MergeOnce(ctx context.Context) (bool, error) {
	s := m.set
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	if s.closed.Load() {
		return false, fmt.Errorf("segment: set: %w", os.ErrClosed)
	}
	v := s.view.Load()
	if v == nil {
		return false, fmt.Errorf("segment: set: %w", os.ErrClosed)
	}
	lo, hi := m.pickRun(v.man)
	if hi-lo < m.opts.MinRun {
		return false, nil
	}
	entry, err := m.fold(ctx, v, lo, hi)
	if err != nil {
		return false, err
	}

	nm := &Manifest{Generation: v.man.Generation + 1}
	nm.Segments = append(nm.Segments, v.man.Segments[:lo]...)
	nm.Segments = append(nm.Segments, entry)
	nm.Segments = append(nm.Segments, v.man.Segments[hi:]...)
	if err := WriteManifest(s.dir, nm); err != nil {
		os.Remove(filepath.Join(s.dir, entry.Name))
		return false, err
	}
	nv, err := openView(s.dir, nm, s.opts, v)
	if err != nil {
		// The manifest on disk now names a segment we cannot open;
		// surface loudly rather than half-swap.
		return false, err
	}
	obsolete := make([]string, 0, hi-lo)
	for _, e := range v.man.Segments[lo:hi] {
		obsolete = append(obsolete, e.Name)
	}
	// swap waits for in-flight readers of the old view to drain and
	// closes the folded segments' handles; only then are their files
	// unlinked.
	s.swap(nv)
	for _, name := range obsolete {
		os.Remove(filepath.Join(s.dir, name))
	}
	return true, nil
}

// MergeAll folds repeatedly until no eligible run remains, returning
// the number of folds performed.
func (m *Merger) MergeAll(ctx context.Context) (int, error) {
	n := 0
	for {
		did, err := m.MergeOnce(ctx)
		if err != nil || !did {
			return n, err
		}
		n++
	}
}

// Run folds on a fixed interval until ctx is cancelled.
func (m *Merger) Run(ctx context.Context, interval time.Duration) error {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
			if _, err := m.MergeOnce(ctx); err != nil {
				return err
			}
		}
	}
}

// pickRun chooses the leftmost longest adjacent run of eligible
// segments, clamped to MaxRun.
func (m *Merger) pickRun(man *Manifest) (lo, hi int) {
	eligible := func(e Entry) bool {
		return m.opts.MaxBytes <= 0 || e.Size <= m.opts.MaxBytes
	}
	bestLo, bestHi := 0, 0
	i := 0
	for i < len(man.Segments) {
		if !eligible(man.Segments[i]) {
			i++
			continue
		}
		j := i
		for j < len(man.Segments) && eligible(man.Segments[j]) {
			j++
		}
		if j-i > bestHi-bestLo {
			bestLo, bestHi = i, j
		}
		i = j
	}
	if m.opts.MaxRun > 0 && bestHi-bestLo > m.opts.MaxRun {
		bestHi = bestLo + m.opts.MaxRun
	}
	return bestLo, bestHi
}

// fold extracts segments [lo, hi) of v, merges them into one TWPP, and
// seals it as the next generation's segment file. It returns the new
// manifest entry; the file is written but not yet referenced by any
// manifest.
func (m *Merger) fold(ctx context.Context, v *setView, lo, hi int) (Entry, error) {
	run := v.segs[lo:hi]

	// Union of the run's functions; merged call counts decide nothing
	// here — the encoder re-ranks hottest-first from the merged
	// CallCount sums.
	maxFn := len(v.names)
	present := make(map[cfg.FuncID]bool)
	for _, cf := range run {
		for _, fn := range cf.Functions() {
			present[fn] = true
			if int(fn) >= maxFn {
				maxFn = int(fn) + 1
			}
		}
	}
	t := &core.TWPP{
		FuncNames: v.names,
		Funcs:     make([]core.FunctionTWPP, maxFn),
	}
	for f := range t.Funcs {
		t.Funcs[f].Fn = cfg.FuncID(f)
	}
	parts := make([]*core.FunctionTWPP, 0, hi-lo)
	for fn := range present {
		if err := ctx.Err(); err != nil {
			return Entry{}, err
		}
		parts = parts[:0]
		// disjoint when every owner in the run shares one non-zero
		// write session: its windows partition one unique-trace list,
		// so the merge is pure concatenation (see mergeParts).
		var ownerSess uint64
		disjoint := true
		for ri, cf := range run {
			p, err := cf.ExtractFunctionCtx(ctx, fn)
			if err != nil {
				if errors.Is(err, wppfile.ErrNoFunction) {
					continue
				}
				return Entry{}, err
			}
			sess := v.man.Segments[lo+ri].Session
			if len(parts) == 0 {
				ownerSess = sess
			}
			disjoint = disjoint && sess != 0 && sess == ownerSess
			parts = append(parts, p)
		}
		if len(parts) == 1 {
			t.Funcs[fn] = *parts[0]
		} else {
			t.Funcs[fn] = *mergeParts(fn, parts, disjoint, nil)
		}
	}

	// The run carrying the container's DCG passes it — with its
	// unchanged set-global trace indices — into the merged segment.
	carryDCG := v.dcgSeg >= lo && v.dcgSeg < hi
	if carryDCG {
		root, err := v.segs[v.dcgSeg].ReadDCG()
		if err != nil {
			return Entry{}, err
		}
		t.Root = root
	}

	data, err := wppfile.EncodeCompactedFormat(t, m.opts.Workers, wppfile.FormatV2)
	if err != nil {
		return Entry{}, err
	}
	hash, ok := wppfile.ContentHashBytes(data)
	if !ok {
		return Entry{}, fmt.Errorf("segment: merged segment has no content hash")
	}
	name := segmentName(v.man.Generation+1, lo)
	if err := os.WriteFile(filepath.Join(m.set.dir, name), data, 0o644); err != nil {
		return Entry{}, err
	}
	e := Entry{Name: name, Size: int64(len(data)), Hash: hash, Session: foldSession(v.man, lo, hi)}
	if carryDCG {
		e.Flags |= FlagDCG
	}
	return e, nil
}

// foldSession picks the merged segment's write session. When every
// folded input shares one non-zero session the output keeps it — the
// merged traces are still that session's windows in order, so
// disjointness with the session's remaining segments survives the
// fold. Otherwise the deduplicated output gets a fresh session id
// above every live one, forcing the full dedup path against any
// other segment.
func foldSession(man *Manifest, lo, hi int) uint64 {
	common := man.Segments[lo].Session
	for _, e := range man.Segments[lo:hi] {
		if e.Session != common {
			common = 0
			break
		}
	}
	if common != 0 {
		return common
	}
	var max uint64
	for _, e := range man.Segments {
		if e.Session > max {
			max = e.Session
		}
	}
	return max + 1
}
