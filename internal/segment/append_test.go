package segment_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"twpp/internal/cfg"
	"twpp/internal/segment"
	"twpp/internal/testkit"
	"twpp/internal/wppfile"
)

// Append must extend a live container by one session: a reader opened
// before the append picks the new generation up via Refresh and then
// extracts the keep-first merge of both sessions, and the container
// DCG stays session 1's.
func TestAppendSession(t *testing.T) {
	t1 := buildTWPP(t, testkit.Config{Shape: testkit.Periodic, Seed: 1})
	t2 := buildTWPP(t, testkit.Config{Shape: testkit.Periodic, Seed: 2})

	dir, set := writeSegmented(t, t1, segment.WriteOptions{Workers: 1})
	man, err := segment.Append(dir, t2, segment.WriteOptions{Workers: 1})
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	if man.Generation != 2 {
		t.Fatalf("generation = %d, want 2", man.Generation)
	}
	last := man.Segments[len(man.Segments)-1]
	if last.Session != 2 {
		t.Fatalf("appended session = %d, want 2", last.Session)
	}
	if last.Flags&segment.FlagDCG != 0 {
		t.Fatalf("appended segment stole the DCG flag")
	}
	if refreshed, err := set.Refresh(); err != nil || !refreshed {
		t.Fatalf("Refresh: refreshed=%v err=%v", refreshed, err)
	}

	for fn := range t1.Funcs {
		want := quadraticMerge(&t1.Funcs[fn], &t2.Funcs[fn])
		if want.CallCount == 0 {
			continue
		}
		got, err := set.ExtractFunction(cfg.FuncID(fn))
		if err != nil {
			t.Fatalf("fn %d: %v", fn, err)
		}
		if err := testkit.EqualFunctionTWPP(want, got); err != nil {
			t.Errorf("fn %d: %v", fn, err)
		}
	}
	root, err := set.ReadDCG()
	if err != nil {
		t.Fatalf("ReadDCG: %v", err)
	}
	if root.Fn != t1.Root.Fn || root.TraceIdx != t1.Root.TraceIdx {
		t.Errorf("DCG root (%d,%d), want (%d,%d)", root.Fn, root.TraceIdx, t1.Root.Fn, t1.Root.TraceIdx)
	}
}

// The ingest parity cornerstone: a session appended as a single
// segment must be byte-identical to the offline streaming pipeline's
// v2 file for the same events — Append keeps the session's own DCG
// section in its bytes even though the container flag stays with
// session 1.
func TestAppendSegmentByteParity(t *testing.T) {
	t1 := buildTWPP(t, testkit.Config{Shape: testkit.Regular, Seed: 3})
	t2 := buildTWPP(t, testkit.Config{Shape: testkit.Irregular, Seed: 7})

	dir, _ := writeSegmented(t, t1, segment.WriteOptions{Workers: 1})
	man, err := segment.Append(dir, t2, segment.WriteOptions{Workers: 1})
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	last := man.Segments[len(man.Segments)-1]
	got, err := os.ReadFile(filepath.Join(dir, last.Name))
	if err != nil {
		t.Fatal(err)
	}
	want, err := wppfile.EncodeCompactedFormat(t2, 1, wppfile.FormatV2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("appended segment differs from offline encode: %d vs %d bytes", len(got), len(want))
	}
}

// Repeated appends keep minting fresh session ids and bumping the
// generation; a failed append (unwritable dir) leaves the old manifest
// untouched.
func TestAppendSequence(t *testing.T) {
	base := buildTWPP(t, testkit.Config{Shape: testkit.Periodic, Seed: 1})
	dir, _ := writeSegmented(t, base, segment.WriteOptions{Workers: 1})

	for i := 2; i <= 4; i++ {
		tw := buildTWPP(t, testkit.Config{Shape: testkit.Periodic, Seed: int64(i)})
		man, err := segment.Append(dir, tw, segment.WriteOptions{Workers: 1})
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if man.Generation != uint64(i) {
			t.Fatalf("append %d: generation %d", i, man.Generation)
		}
		if got := man.Segments[len(man.Segments)-1].Session; got != uint64(i) {
			t.Fatalf("append %d: session %d", i, got)
		}
	}
	man, err := segment.ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range man.Segments {
		if e.Flags&segment.FlagDCG != 0 {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("container has %d DCG flags, want 1", n)
	}
}
