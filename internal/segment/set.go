// Set: the read side of a segmented container. A Set holds an
// immutable view (the decoded manifest plus one opened CompactedFile
// per live segment) behind an atomic pointer; queries acquire the
// view with a reference count, so a concurrent manifest swap (merge,
// refresh) installs the new generation without blocking readers and
// retires the old generation's handles only after the last in-flight
// query drains. Every query runs against exactly one view — one
// generation, never a mix.

package segment

import (
	"context"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"twpp/internal/cfg"
	"twpp/internal/core"
	"twpp/internal/encoding"
	"twpp/internal/wpp"
	"twpp/internal/wppfile"
)

// Set is an opened segmented container. It implements
// wppfile.Container and is safe for concurrent use; see the package
// comment for the swap protocol.
type Set struct {
	dir  string
	opts wppfile.OpenOptions

	view   atomic.Pointer[setView]
	swapMu sync.Mutex
	closed atomic.Bool
}

var _ wppfile.Container = (*Set)(nil)

// setView is one immutable generation of the container: the manifest,
// the opened segments in manifest order, and the merged per-function
// index.
type setView struct {
	man   *Manifest
	segs  []*wppfile.CompactedFile
	index map[cfg.FuncID]*fnInfo
	// order is the merged hottest-first ranking: summed call count
	// descending, id ascending — the same rule hotOrder applies inside
	// each segment.
	order  []cfg.FuncID
	names  []string
	dcgSeg int
	hash   uint64
	// refs counts in-flight queries; the swapper waits for it to reach
	// zero before closing handles absent from the next view.
	refs atomic.Int64
}

// fnInfo is one function's merged index entry.
type fnInfo struct {
	calls    int
	blockLen int
	// owners lists the segments holding a trace window of the
	// function, in manifest order — the order whose concatenation is
	// the set-global trace numbering.
	owners []int
	// session is the first owner's write session; disjoint reports
	// that every owner shares that one non-zero session. Windows of a
	// single session partition one compaction's unique (trace, dict)
	// list — the pair determines the original path, so no duplicates
	// can exist within a session — and the spanning merge degenerates
	// to concatenation with no per-trace dedup hashing.
	session  uint64
	disjoint bool
}

// Open opens the segmented container in dir. opts applies to every
// segment (each gets its own decode cache of opts.CacheEntries).
func Open(dir string, opts wppfile.OpenOptions) (*Set, error) {
	man, err := ReadManifest(dir)
	if err != nil {
		return nil, err
	}
	v, err := openView(dir, man, opts, nil)
	if err != nil {
		return nil, err
	}
	s := &Set{dir: dir, opts: opts}
	s.view.Store(v)
	return s, nil
}

// openView opens a manifest's segments, reusing handles from a prior
// view when the (name, hash) pair is unchanged. On error every
// newly-opened handle is closed; reused handles stay open (the prior
// view still owns them).
func openView(dir string, man *Manifest, opts wppfile.OpenOptions, prior *setView) (*setView, error) {
	if len(man.Segments) == 0 {
		return nil, encoding.Errf(encoding.CodeCorrupt, 0, "segment: manifest lists no segments")
	}
	reuse := make(map[string]*wppfile.CompactedFile)
	if prior != nil {
		for i, e := range prior.man.Segments {
			reuse[e.Name] = prior.segs[i]
		}
	}
	v := &setView{man: man, dcgSeg: man.DCGIndex()}
	var opened []*wppfile.CompactedFile
	fail := func(err error) (*setView, error) {
		for _, cf := range opened {
			cf.Close()
		}
		return nil, err
	}
	for _, e := range man.Segments {
		if cf, ok := reuse[e.Name]; ok {
			if h, hok := cf.ContentHash(); hok && h == e.Hash {
				v.segs = append(v.segs, cf)
				continue
			}
		}
		cf, err := wppfile.OpenCompactedOptions(filepath.Join(dir, e.Name), opts)
		if err != nil {
			return fail(err)
		}
		opened = append(opened, cf)
		h, ok := cf.ContentHash()
		if !ok || h != e.Hash {
			return fail(encoding.Errf(encoding.CodeChecksum, 0,
				"segment: %s content hash %016x does not match manifest %016x", e.Name, h, e.Hash))
		}
		v.segs = append(v.segs, cf)
	}

	// Merged per-function index: owners in manifest order, call counts
	// and block lengths summed across windows.
	v.index = make(map[cfg.FuncID]*fnInfo)
	for si, cf := range v.segs {
		if n := cf.Names(); len(n) > len(v.names) {
			v.names = n
		}
		sess := man.Segments[si].Session
		for _, fn := range cf.Functions() {
			info := v.index[fn]
			if info == nil {
				info = &fnInfo{session: sess, disjoint: sess != 0}
				v.index[fn] = info
			} else if sess != info.session {
				info.disjoint = false
			}
			info.calls += cf.CallCount(fn)
			info.blockLen += cf.BlockLength(fn)
			info.owners = append(info.owners, si)
		}
	}
	v.order = make([]cfg.FuncID, 0, len(v.index))
	for fn := range v.index {
		v.order = append(v.order, fn)
	}
	sort.Slice(v.order, func(i, j int) bool {
		a, b := v.index[v.order[i]], v.index[v.order[j]]
		if a.calls != b.calls {
			return a.calls > b.calls
		}
		return v.order[i] < v.order[j]
	})

	// Container identity: generation plus every live segment's content
	// hash — changes on every swap, so ETags and response-cache keys
	// derived from it invalidate on merge.
	h := fnv.New64a()
	var b [8]byte
	put := func(x uint64) {
		for i := 0; i < 8; i++ {
			b[i] = byte(x >> (8 * i))
		}
		h.Write(b[:])
	}
	put(man.Generation)
	for _, e := range man.Segments {
		put(e.Hash)
	}
	v.hash = h.Sum64()
	return v, nil
}

// acquire pins the current view for one query.
func (s *Set) acquire() (*setView, error) {
	for {
		if s.closed.Load() {
			return nil, fmt.Errorf("segment: set: %w", os.ErrClosed)
		}
		v := s.view.Load()
		if v == nil {
			return nil, fmt.Errorf("segment: set: %w", os.ErrClosed)
		}
		v.refs.Add(1)
		if s.view.Load() == v {
			return v, nil
		}
		// A swap raced in between load and pin; retry on the new view.
		v.refs.Add(-1)
	}
}

func (v *setView) release() { v.refs.Add(-1) }

// swap installs nv, waits for the old view's queries to drain, and
// closes every handle the new view does not share. Callers hold
// swapMu.
func (s *Set) swap(nv *setView) {
	old := s.view.Load()
	s.view.Store(nv)
	if old == nil {
		return
	}
	for old.refs.Load() != 0 {
		runtime.Gosched()
	}
	live := make(map[*wppfile.CompactedFile]bool)
	if nv != nil {
		for _, cf := range nv.segs {
			live[cf] = true
		}
	}
	for _, cf := range old.segs {
		if !live[cf] {
			cf.Close()
		}
	}
}

// Refresh re-reads the manifest from disk and, when its generation
// advanced, atomically swaps the new view in. It reports whether a
// swap happened — the cross-process path for picking up merges done
// elsewhere; in-process merges swap directly.
func (s *Set) Refresh() (bool, error) {
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	if s.closed.Load() {
		return false, fmt.Errorf("segment: set: %w", os.ErrClosed)
	}
	man, err := ReadManifest(s.dir)
	if err != nil {
		return false, err
	}
	cur := s.view.Load()
	if cur != nil && man.Generation == cur.man.Generation {
		return false, nil
	}
	nv, err := openView(s.dir, man, s.opts, cur)
	if err != nil {
		return false, err
	}
	s.swap(nv)
	return true, nil
}

// Close retires the current view and closes every segment. Queries
// started after Close fail with os.ErrClosed; in-flight queries
// drain first.
func (s *Set) Close() error {
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	if s.closed.Swap(true) {
		return nil
	}
	old := s.view.Load()
	s.view.Store(nil)
	if old == nil {
		return nil
	}
	for old.refs.Load() != 0 {
		runtime.Gosched()
	}
	var first error
	for _, cf := range old.segs {
		if err := cf.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Dir returns the container directory.
func (s *Set) Dir() string { return s.dir }

// Generation reports the live manifest generation.
func (s *Set) Generation() uint64 {
	if v := s.view.Load(); v != nil {
		return v.man.Generation
	}
	return 0
}

// SegmentCount reports the number of live segments.
func (s *Set) SegmentCount() int {
	if v := s.view.Load(); v != nil {
		return len(v.segs)
	}
	return 0
}

// Functions returns the merged function ids, hottest first (summed
// call count descending, id ascending).
func (s *Set) Functions() []cfg.FuncID {
	v := s.view.Load()
	if v == nil {
		return nil
	}
	out := make([]cfg.FuncID, len(v.order))
	copy(out, v.order)
	return out
}

// CallCount reports fn's total invocation count across segments.
func (s *Set) CallCount(fn cfg.FuncID) int {
	if v := s.view.Load(); v != nil {
		if info := v.index[fn]; info != nil {
			return info.calls
		}
	}
	return 0
}

// BlockLength reports the summed encoded size of fn's blocks across
// segments.
func (s *Set) BlockLength(fn cfg.FuncID) int {
	if v := s.view.Load(); v != nil {
		if info := v.index[fn]; info != nil {
			return info.blockLen
		}
	}
	return 0
}

// Names returns the function name table.
func (s *Set) Names() []string {
	if v := s.view.Load(); v != nil {
		return v.names
	}
	return nil
}

// FormatVersion reports FormatV2: every segment is a v2 container.
func (s *Set) FormatVersion() int { return wppfile.FormatV2 }

// ContentHash returns the container identity: a hash over the
// manifest generation and every live segment's content hash. It
// changes whenever a merge (or any manifest rewrite) swaps in a new
// generation.
func (s *Set) ContentHash() (uint64, bool) {
	if v := s.view.Load(); v != nil {
		return v.hash, true
	}
	return 0, false
}

// SectionSizes sums the Table 3 breakdown across live segments.
func (s *Set) SectionSizes() (header, dcg, blocks int64, err error) {
	v := s.view.Load()
	if v == nil {
		return 0, 0, 0, fmt.Errorf("segment: set: %w", os.ErrClosed)
	}
	for _, cf := range v.segs {
		h, d, b, err := cf.SectionSizes()
		if err != nil {
			return 0, 0, 0, err
		}
		header += h
		dcg += d
		blocks += b
	}
	return header, dcg, blocks, nil
}

// CacheStats sums decode-cache hits and misses across segments.
func (s *Set) CacheStats() (hits, misses uint64) {
	v := s.view.Load()
	if v == nil {
		return 0, 0
	}
	for _, cf := range v.segs {
		h, m := cf.CacheStats()
		hits += h
		misses += m
	}
	return hits, misses
}

// CacheShardStats aggregates per-shard decode-cache counters across
// segments (shard i sums every segment's shard i).
func (s *Set) CacheShardStats() []wppfile.CacheShardStats {
	v := s.view.Load()
	if v == nil {
		return nil
	}
	var out []wppfile.CacheShardStats
	for _, cf := range v.segs {
		for i, st := range cf.CacheShardStats() {
			if i == len(out) {
				out = append(out, wppfile.CacheShardStats{})
			}
			out[i].Hits += st.Hits
			out[i].Misses += st.Misses
		}
	}
	return out
}

// ExtractFunction merges fn's trace windows across live segments:
// single-owner functions delegate to that segment's one-seek
// extraction; spanning functions extract each window and merge with
// keep-first deduplication, preserving the set-global trace order.
func (s *Set) ExtractFunction(fn cfg.FuncID) (*core.FunctionTWPP, error) {
	return s.ExtractFunctionCtx(context.Background(), fn)
}

// ExtractFunctionCtx is ExtractFunction with cooperative cancellation.
// The result is freshly assembled (or segment-cache shared) and safe
// to retain; treat it as read-only.
func (s *Set) ExtractFunctionCtx(ctx context.Context, fn cfg.FuncID) (*core.FunctionTWPP, error) {
	v, err := s.acquire()
	if err != nil {
		return nil, err
	}
	defer v.release()
	info := v.index[fn]
	if info == nil {
		return nil, fmt.Errorf("segment: function %d: %w", fn, wppfile.ErrNoFunction)
	}
	if len(info.owners) == 1 {
		return v.segs[info.owners[0]].ExtractFunctionCtx(ctx, fn)
	}
	parts := make([]*core.FunctionTWPP, len(info.owners))
	for i, si := range info.owners {
		if parts[i], err = v.segs[si].ExtractFunctionCtx(ctx, fn); err != nil {
			return nil, err
		}
	}
	return mergeParts(fn, parts, info.disjoint, nil), nil
}

// ExtractFunctionInto is the pooled extraction path: zero heap
// allocations once buf is warm. The result aliases buf (and, for
// spanning functions, buf's per-segment sub-buffers) and is valid only
// until buf's next use — the same ownership contract as
// wppfile.ExtractFunctionInto.
func (s *Set) ExtractFunctionInto(fn cfg.FuncID, buf *Buffer) (*core.FunctionTWPP, error) {
	return s.ExtractFunctionIntoCtx(context.Background(), fn, buf)
}

// ExtractFunctionIntoCtx is ExtractFunctionInto with cooperative
// cancellation.
func (s *Set) ExtractFunctionIntoCtx(ctx context.Context, fn cfg.FuncID, buf *Buffer) (*core.FunctionTWPP, error) {
	v, err := s.acquire()
	if err != nil {
		return nil, err
	}
	defer v.release()
	info := v.index[fn]
	if info == nil {
		return nil, fmt.Errorf("segment: function %d: %w", fn, wppfile.ErrNoFunction)
	}
	if len(info.owners) == 1 {
		return v.segs[info.owners[0]].ExtractFunctionIntoCtx(ctx, fn, buf.part(0))
	}
	parts := buf.partResults(len(info.owners))
	for i, si := range info.owners {
		if parts[i], err = v.segs[si].ExtractFunctionIntoCtx(ctx, fn, buf.part(i)); err != nil {
			return nil, err
		}
	}
	return mergeParts(fn, parts, info.disjoint, buf), nil
}

// ReadDCG decodes the dynamic call graph from the FlagDCG segment.
// Its trace indices are set-global (see the package comment).
func (s *Set) ReadDCG() (*wpp.CallNode, error) {
	v, err := s.acquire()
	if err != nil {
		return nil, err
	}
	defer v.release()
	if v.dcgSeg < 0 {
		return nil, encoding.Errf(encoding.CodeCorrupt, 0,
			"segment: no segment carries the dynamic call graph")
	}
	return v.segs[v.dcgSeg].ReadDCG()
}

// ReadAll reconstructs the complete TWPP from the merged view,
// validating every DCG reference against the merged trace lists.
func (s *Set) ReadAll() (*core.TWPP, error) {
	v, err := s.acquire()
	if err != nil {
		return nil, err
	}
	defer v.release()

	var root *wpp.CallNode
	if v.dcgSeg >= 0 {
		if root, err = v.segs[v.dcgSeg].ReadDCG(); err != nil {
			return nil, err
		}
	}
	maxFn := len(v.names)
	for _, fn := range v.order {
		if int(fn) >= maxFn {
			maxFn = int(fn) + 1
		}
	}
	t := &core.TWPP{
		FuncNames: v.names,
		Root:      root,
		Funcs:     make([]core.FunctionTWPP, maxFn),
	}
	for f := range t.Funcs {
		t.Funcs[f].Fn = cfg.FuncID(f)
	}
	for _, fn := range v.order {
		info := v.index[fn]
		parts := make([]*core.FunctionTWPP, len(info.owners))
		for i, si := range info.owners {
			if parts[i], err = v.segs[si].ExtractFunction(fn); err != nil {
				return nil, err
			}
		}
		if len(parts) == 1 {
			t.Funcs[fn] = *parts[0]
		} else {
			t.Funcs[fn] = *mergeParts(fn, parts, info.disjoint, nil)
		}
	}
	var walk func(n *wpp.CallNode) error
	walk = func(n *wpp.CallNode) error {
		if n == nil {
			return nil
		}
		if int(n.Fn) >= len(t.Funcs) || n.TraceIdx < 0 || n.TraceIdx >= len(t.Funcs[n.Fn].Traces) {
			return encoding.Errf(encoding.CodeCorrupt, 0,
				"segment: DCG node references function %d trace %d, not in container", n.Fn, n.TraceIdx)
		}
		for _, ch := range n.Children {
			if err := walk(ch); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(root); err != nil {
		return nil, err
	}
	return t, nil
}
